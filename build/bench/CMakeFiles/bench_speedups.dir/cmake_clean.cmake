file(REMOVE_RECURSE
  "CMakeFiles/bench_speedups.dir/bench_speedups.cpp.o"
  "CMakeFiles/bench_speedups.dir/bench_speedups.cpp.o.d"
  "bench_speedups"
  "bench_speedups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
