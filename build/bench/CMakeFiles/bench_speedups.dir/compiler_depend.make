# Empty compiler generated dependencies file for bench_speedups.
# This may be replaced when dependencies are built.
