file(REMOVE_RECURSE
  "CMakeFiles/bench_flattening.dir/bench_flattening.cpp.o"
  "CMakeFiles/bench_flattening.dir/bench_flattening.cpp.o.d"
  "bench_flattening"
  "bench_flattening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flattening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
