# Empty dependencies file for bench_flattening.
# This may be replaced when dependencies are built.
