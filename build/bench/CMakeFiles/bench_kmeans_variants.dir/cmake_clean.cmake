file(REMOVE_RECURSE
  "CMakeFiles/bench_kmeans_variants.dir/bench_kmeans_variants.cpp.o"
  "CMakeFiles/bench_kmeans_variants.dir/bench_kmeans_variants.cpp.o.d"
  "bench_kmeans_variants"
  "bench_kmeans_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kmeans_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
