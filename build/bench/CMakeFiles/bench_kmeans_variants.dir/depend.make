# Empty dependencies file for bench_kmeans_variants.
# This may be replaced when dependencies are built.
