file(REMOVE_RECURSE
  "CMakeFiles/bench_fusion_memory.dir/bench_fusion_memory.cpp.o"
  "CMakeFiles/bench_fusion_memory.dir/bench_fusion_memory.cpp.o.d"
  "bench_fusion_memory"
  "bench_fusion_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fusion_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
