# Empty dependencies file for bench_fusion_memory.
# This may be replaced when dependencies are built.
