file(REMOVE_RECURSE
  "CMakeFiles/bench_compile_time.dir/bench_compile_time.cpp.o"
  "CMakeFiles/bench_compile_time.dir/bench_compile_time.cpp.o.d"
  "bench_compile_time"
  "bench_compile_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compile_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
