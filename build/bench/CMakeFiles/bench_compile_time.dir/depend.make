# Empty dependencies file for bench_compile_time.
# This may be replaced when dependencies are built.
