
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablations.cpp" "bench/CMakeFiles/bench_ablations.dir/bench_ablations.cpp.o" "gcc" "bench/CMakeFiles/bench_ablations.dir/bench_ablations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bench_suite/CMakeFiles/fut_bench_suite.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/fut_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/fut_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/fut_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/refimpl/CMakeFiles/fut_refimpl.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/fut_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/check/CMakeFiles/fut_check.dir/DependInfo.cmake"
  "/root/repo/build/src/uniq/CMakeFiles/fut_uniq.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/fut_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/flatten/CMakeFiles/fut_flatten.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fut_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/locality/CMakeFiles/fut_locality.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fut_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
