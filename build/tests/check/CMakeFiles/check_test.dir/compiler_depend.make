# Empty compiler generated dependencies file for check_test.
# This may be replaced when dependencies are built.
