file(REMOVE_RECURSE
  "CMakeFiles/check_test.dir/check_test.cpp.o"
  "CMakeFiles/check_test.dir/check_test.cpp.o.d"
  "check_test"
  "check_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
