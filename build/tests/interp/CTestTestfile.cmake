# CMake generated Testfile for 
# Source directory: /root/repo/tests/interp
# Build directory: /root/repo/build/tests/interp
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/interp/interp_test[1]_include.cmake")
include("/root/repo/build/tests/interp/interp_value_test[1]_include.cmake")
