file(REMOVE_RECURSE
  "CMakeFiles/interp_value_test.dir/value_test.cpp.o"
  "CMakeFiles/interp_value_test.dir/value_test.cpp.o.d"
  "interp_value_test"
  "interp_value_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interp_value_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
