if(EXISTS "/root/repo/build/tests/interp/interp_value_test")
  if(NOT EXISTS "/root/repo/build/tests/interp/interp_value_test[1]_tests.cmake" OR
     NOT "/root/repo/build/tests/interp/interp_value_test[1]_tests.cmake" IS_NEWER_THAN "/root/repo/build/tests/interp/interp_value_test" OR
     NOT "/root/repo/build/tests/interp/interp_value_test[1]_tests.cmake" IS_NEWER_THAN "${CMAKE_CURRENT_LIST_FILE}")
    include("/usr/share/cmake-3.25/Modules/GoogleTestAddTests.cmake")
    gtest_discover_tests_impl(
      TEST_EXECUTABLE [==[/root/repo/build/tests/interp/interp_value_test]==]
      TEST_EXECUTOR [==[]==]
      TEST_WORKING_DIR [==[/root/repo/build/tests/interp]==]
      TEST_EXTRA_ARGS [==[]==]
      TEST_PROPERTIES [==[]==]
      TEST_PREFIX [==[]==]
      TEST_SUFFIX [==[]==]
      TEST_FILTER [==[]==]
      NO_PRETTY_TYPES [==[FALSE]==]
      NO_PRETTY_VALUES [==[FALSE]==]
      TEST_LIST [==[interp_value_test_TESTS]==]
      CTEST_FILE [==[/root/repo/build/tests/interp/interp_value_test[1]_tests.cmake]==]
      TEST_DISCOVERY_TIMEOUT [==[5]==]
      TEST_XML_OUTPUT_DIR [==[]==]
    )
  endif()
  include("/root/repo/build/tests/interp/interp_value_test[1]_tests.cmake")
else()
  add_test(interp_value_test_NOT_BUILT interp_value_test_NOT_BUILT)
endif()
