# CMake generated Testfile for 
# Source directory: /root/repo/tests/testutil
# Build directory: /root/repo/build/tests/testutil
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
