file(REMOVE_RECURSE
  "libfut_testutil.a"
)
