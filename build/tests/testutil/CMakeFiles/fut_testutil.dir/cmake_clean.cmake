file(REMOVE_RECURSE
  "CMakeFiles/fut_testutil.dir/TestUtil.cpp.o"
  "CMakeFiles/fut_testutil.dir/TestUtil.cpp.o.d"
  "libfut_testutil.a"
  "libfut_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
