# Empty compiler generated dependencies file for fut_testutil.
# This may be replaced when dependencies are built.
