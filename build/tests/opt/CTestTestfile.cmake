# CMake generated Testfile for 
# Source directory: /root/repo/tests/opt
# Build directory: /root/repo/build/tests/opt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/opt/opt_simplify_test[1]_include.cmake")
