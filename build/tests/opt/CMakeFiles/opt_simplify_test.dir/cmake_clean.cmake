file(REMOVE_RECURSE
  "CMakeFiles/opt_simplify_test.dir/simplify_test.cpp.o"
  "CMakeFiles/opt_simplify_test.dir/simplify_test.cpp.o.d"
  "opt_simplify_test"
  "opt_simplify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opt_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
