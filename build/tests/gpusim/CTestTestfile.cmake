# CMake generated Testfile for 
# Source directory: /root/repo/tests/gpusim
# Build directory: /root/repo/build/tests/gpusim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/gpusim/gpusim_device_test[1]_include.cmake")
include("/root/repo/build/tests/gpusim/gpusim_segmented_test[1]_include.cmake")
