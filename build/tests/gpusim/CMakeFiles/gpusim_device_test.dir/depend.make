# Empty dependencies file for gpusim_device_test.
# This may be replaced when dependencies are built.
