file(REMOVE_RECURSE
  "CMakeFiles/gpusim_device_test.dir/device_test.cpp.o"
  "CMakeFiles/gpusim_device_test.dir/device_test.cpp.o.d"
  "gpusim_device_test"
  "gpusim_device_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
