# Empty dependencies file for gpusim_segmented_test.
# This may be replaced when dependencies are built.
