file(REMOVE_RECURSE
  "CMakeFiles/gpusim_segmented_test.dir/segmented_test.cpp.o"
  "CMakeFiles/gpusim_segmented_test.dir/segmented_test.cpp.o.d"
  "gpusim_segmented_test"
  "gpusim_segmented_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpusim_segmented_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
