# Empty dependencies file for locality_test.
# This may be replaced when dependencies are built.
