file(REMOVE_RECURSE
  "CMakeFiles/locality_test.dir/locality_test.cpp.o"
  "CMakeFiles/locality_test.dir/locality_test.cpp.o.d"
  "locality_test"
  "locality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
