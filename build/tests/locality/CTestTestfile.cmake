# CMake generated Testfile for 
# Source directory: /root/repo/tests/locality
# Build directory: /root/repo/build/tests/locality
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/locality/locality_test[1]_include.cmake")
