file(REMOVE_RECURSE
  "CMakeFiles/parser_lexer_test.dir/lexer_test.cpp.o"
  "CMakeFiles/parser_lexer_test.dir/lexer_test.cpp.o.d"
  "parser_lexer_test"
  "parser_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
