file(REMOVE_RECURSE
  "CMakeFiles/parser_frontend_test.dir/frontend_test.cpp.o"
  "CMakeFiles/parser_frontend_test.dir/frontend_test.cpp.o.d"
  "parser_frontend_test"
  "parser_frontend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
