# Empty compiler generated dependencies file for parser_frontend_test.
# This may be replaced when dependencies are built.
