# CMake generated Testfile for 
# Source directory: /root/repo/tests/parser
# Build directory: /root/repo/build/tests/parser
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/parser/parser_frontend_test[1]_include.cmake")
include("/root/repo/build/tests/parser/parser_lexer_test[1]_include.cmake")
