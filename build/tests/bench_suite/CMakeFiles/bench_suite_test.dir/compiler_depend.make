# Empty compiler generated dependencies file for bench_suite_test.
# This may be replaced when dependencies are built.
