file(REMOVE_RECURSE
  "CMakeFiles/bench_suite_test.dir/benchmarks_test.cpp.o"
  "CMakeFiles/bench_suite_test.dir/benchmarks_test.cpp.o.d"
  "bench_suite_test"
  "bench_suite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
