# CMake generated Testfile for 
# Source directory: /root/repo/tests/bench_suite
# Build directory: /root/repo/build/tests/bench_suite
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bench_suite/bench_suite_test[1]_include.cmake")
