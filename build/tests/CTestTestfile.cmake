# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("testutil")
subdirs("ir")
subdirs("interp")
subdirs("parser")
subdirs("uniq")
subdirs("check")
subdirs("opt")
subdirs("fusion")
subdirs("flatten")
subdirs("gpusim")
subdirs("locality")
subdirs("bench_suite")
subdirs("driver")
