file(REMOVE_RECURSE
  "CMakeFiles/flatten_test.dir/flatten_test.cpp.o"
  "CMakeFiles/flatten_test.dir/flatten_test.cpp.o.d"
  "flatten_test"
  "flatten_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flatten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
