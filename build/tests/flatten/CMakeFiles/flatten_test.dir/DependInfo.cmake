
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flatten/flatten_test.cpp" "tests/flatten/CMakeFiles/flatten_test.dir/flatten_test.cpp.o" "gcc" "tests/flatten/CMakeFiles/flatten_test.dir/flatten_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/testutil/CMakeFiles/fut_testutil.dir/DependInfo.cmake"
  "/root/repo/build/src/flatten/CMakeFiles/fut_flatten.dir/DependInfo.cmake"
  "/root/repo/build/src/fusion/CMakeFiles/fut_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fut_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/fut_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/fut_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/fut_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
