file(REMOVE_RECURSE
  "CMakeFiles/ir_prim_test.dir/prim_test.cpp.o"
  "CMakeFiles/ir_prim_test.dir/prim_test.cpp.o.d"
  "ir_prim_test"
  "ir_prim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_prim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
