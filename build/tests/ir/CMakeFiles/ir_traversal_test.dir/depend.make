# Empty dependencies file for ir_traversal_test.
# This may be replaced when dependencies are built.
