file(REMOVE_RECURSE
  "CMakeFiles/ir_traversal_test.dir/traversal_test.cpp.o"
  "CMakeFiles/ir_traversal_test.dir/traversal_test.cpp.o.d"
  "ir_traversal_test"
  "ir_traversal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_traversal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
