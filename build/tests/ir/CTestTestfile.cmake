# CMake generated Testfile for 
# Source directory: /root/repo/tests/ir
# Build directory: /root/repo/build/tests/ir
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ir/ir_prim_test[1]_include.cmake")
include("/root/repo/build/tests/ir/ir_traversal_test[1]_include.cmake")
