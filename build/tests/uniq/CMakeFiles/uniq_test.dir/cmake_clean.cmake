file(REMOVE_RECURSE
  "CMakeFiles/uniq_test.dir/uniqueness_test.cpp.o"
  "CMakeFiles/uniq_test.dir/uniqueness_test.cpp.o.d"
  "uniq_test"
  "uniq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uniq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
