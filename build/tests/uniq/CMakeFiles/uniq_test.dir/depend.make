# Empty dependencies file for uniq_test.
# This may be replaced when dependencies are built.
