# Empty compiler generated dependencies file for fusion_stream_rules_test.
# This may be replaced when dependencies are built.
