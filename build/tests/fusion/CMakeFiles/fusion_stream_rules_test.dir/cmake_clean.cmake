file(REMOVE_RECURSE
  "CMakeFiles/fusion_stream_rules_test.dir/stream_rules_test.cpp.o"
  "CMakeFiles/fusion_stream_rules_test.dir/stream_rules_test.cpp.o.d"
  "fusion_stream_rules_test"
  "fusion_stream_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fusion_stream_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
