# CMake generated Testfile for 
# Source directory: /root/repo/tests/fusion
# Build directory: /root/repo/build/tests/fusion
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/fusion/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/fusion/fusion_stream_rules_test[1]_include.cmake")
