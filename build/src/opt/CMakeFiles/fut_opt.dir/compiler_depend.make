# Empty compiler generated dependencies file for fut_opt.
# This may be replaced when dependencies are built.
