file(REMOVE_RECURSE
  "CMakeFiles/fut_opt.dir/Simplify.cpp.o"
  "CMakeFiles/fut_opt.dir/Simplify.cpp.o.d"
  "libfut_opt.a"
  "libfut_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
