file(REMOVE_RECURSE
  "libfut_opt.a"
)
