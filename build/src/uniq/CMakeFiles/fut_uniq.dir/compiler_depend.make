# Empty compiler generated dependencies file for fut_uniq.
# This may be replaced when dependencies are built.
