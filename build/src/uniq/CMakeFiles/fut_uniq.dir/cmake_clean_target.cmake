file(REMOVE_RECURSE
  "libfut_uniq.a"
)
