file(REMOVE_RECURSE
  "CMakeFiles/fut_uniq.dir/Uniqueness.cpp.o"
  "CMakeFiles/fut_uniq.dir/Uniqueness.cpp.o.d"
  "libfut_uniq.a"
  "libfut_uniq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_uniq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
