file(REMOVE_RECURSE
  "CMakeFiles/fut_driver.dir/Compiler.cpp.o"
  "CMakeFiles/fut_driver.dir/Compiler.cpp.o.d"
  "libfut_driver.a"
  "libfut_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
