file(REMOVE_RECURSE
  "libfut_driver.a"
)
