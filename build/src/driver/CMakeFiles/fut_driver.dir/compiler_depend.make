# Empty compiler generated dependencies file for fut_driver.
# This may be replaced when dependencies are built.
