file(REMOVE_RECURSE
  "CMakeFiles/futharkcc.dir/Main.cpp.o"
  "CMakeFiles/futharkcc.dir/Main.cpp.o.d"
  "futharkcc"
  "futharkcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futharkcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
