# Empty dependencies file for futharkcc.
# This may be replaced when dependencies are built.
