# CMake generated Testfile for 
# Source directory: /root/repo/src/fusion
# Build directory: /root/repo/build/src/fusion
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
