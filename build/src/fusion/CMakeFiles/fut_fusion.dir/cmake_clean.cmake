file(REMOVE_RECURSE
  "CMakeFiles/fut_fusion.dir/Fusion.cpp.o"
  "CMakeFiles/fut_fusion.dir/Fusion.cpp.o.d"
  "CMakeFiles/fut_fusion.dir/StreamRules.cpp.o"
  "CMakeFiles/fut_fusion.dir/StreamRules.cpp.o.d"
  "libfut_fusion.a"
  "libfut_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
