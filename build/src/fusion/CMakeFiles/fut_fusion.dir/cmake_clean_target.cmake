file(REMOVE_RECURSE
  "libfut_fusion.a"
)
