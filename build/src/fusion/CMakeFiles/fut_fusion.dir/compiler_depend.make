# Empty compiler generated dependencies file for fut_fusion.
# This may be replaced when dependencies are built.
