# Empty compiler generated dependencies file for fut_check.
# This may be replaced when dependencies are built.
