file(REMOVE_RECURSE
  "CMakeFiles/fut_check.dir/Check.cpp.o"
  "CMakeFiles/fut_check.dir/Check.cpp.o.d"
  "libfut_check.a"
  "libfut_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
