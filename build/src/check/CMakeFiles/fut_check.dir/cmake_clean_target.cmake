file(REMOVE_RECURSE
  "libfut_check.a"
)
