file(REMOVE_RECURSE
  "CMakeFiles/fut_flatten.dir/Flatten.cpp.o"
  "CMakeFiles/fut_flatten.dir/Flatten.cpp.o.d"
  "libfut_flatten.a"
  "libfut_flatten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_flatten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
