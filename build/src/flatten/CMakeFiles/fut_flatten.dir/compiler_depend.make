# Empty compiler generated dependencies file for fut_flatten.
# This may be replaced when dependencies are built.
