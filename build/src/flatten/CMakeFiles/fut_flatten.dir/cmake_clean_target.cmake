file(REMOVE_RECURSE
  "libfut_flatten.a"
)
