file(REMOVE_RECURSE
  "libfut_gpusim.a"
)
