file(REMOVE_RECURSE
  "CMakeFiles/fut_gpusim.dir/Device.cpp.o"
  "CMakeFiles/fut_gpusim.dir/Device.cpp.o.d"
  "libfut_gpusim.a"
  "libfut_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
