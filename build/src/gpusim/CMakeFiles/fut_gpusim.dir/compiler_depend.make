# Empty compiler generated dependencies file for fut_gpusim.
# This may be replaced when dependencies are built.
