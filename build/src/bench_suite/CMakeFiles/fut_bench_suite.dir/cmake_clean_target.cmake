file(REMOVE_RECURSE
  "libfut_bench_suite.a"
)
