file(REMOVE_RECURSE
  "CMakeFiles/fut_bench_suite.dir/Benchmarks.cpp.o"
  "CMakeFiles/fut_bench_suite.dir/Benchmarks.cpp.o.d"
  "libfut_bench_suite.a"
  "libfut_bench_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_bench_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
