# Empty compiler generated dependencies file for fut_bench_suite.
# This may be replaced when dependencies are built.
