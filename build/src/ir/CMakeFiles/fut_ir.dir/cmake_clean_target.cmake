file(REMOVE_RECURSE
  "libfut_ir.a"
)
