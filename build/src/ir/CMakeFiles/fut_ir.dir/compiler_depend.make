# Empty compiler generated dependencies file for fut_ir.
# This may be replaced when dependencies are built.
