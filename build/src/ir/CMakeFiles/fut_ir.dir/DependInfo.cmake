
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/Builder.cpp" "src/ir/CMakeFiles/fut_ir.dir/Builder.cpp.o" "gcc" "src/ir/CMakeFiles/fut_ir.dir/Builder.cpp.o.d"
  "/root/repo/src/ir/IR.cpp" "src/ir/CMakeFiles/fut_ir.dir/IR.cpp.o" "gcc" "src/ir/CMakeFiles/fut_ir.dir/IR.cpp.o.d"
  "/root/repo/src/ir/Prim.cpp" "src/ir/CMakeFiles/fut_ir.dir/Prim.cpp.o" "gcc" "src/ir/CMakeFiles/fut_ir.dir/Prim.cpp.o.d"
  "/root/repo/src/ir/Printer.cpp" "src/ir/CMakeFiles/fut_ir.dir/Printer.cpp.o" "gcc" "src/ir/CMakeFiles/fut_ir.dir/Printer.cpp.o.d"
  "/root/repo/src/ir/Traversal.cpp" "src/ir/CMakeFiles/fut_ir.dir/Traversal.cpp.o" "gcc" "src/ir/CMakeFiles/fut_ir.dir/Traversal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
