# Empty dependencies file for fut_ir.
# This may be replaced when dependencies are built.
