file(REMOVE_RECURSE
  "CMakeFiles/fut_ir.dir/Builder.cpp.o"
  "CMakeFiles/fut_ir.dir/Builder.cpp.o.d"
  "CMakeFiles/fut_ir.dir/IR.cpp.o"
  "CMakeFiles/fut_ir.dir/IR.cpp.o.d"
  "CMakeFiles/fut_ir.dir/Prim.cpp.o"
  "CMakeFiles/fut_ir.dir/Prim.cpp.o.d"
  "CMakeFiles/fut_ir.dir/Printer.cpp.o"
  "CMakeFiles/fut_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/fut_ir.dir/Traversal.cpp.o"
  "CMakeFiles/fut_ir.dir/Traversal.cpp.o.d"
  "libfut_ir.a"
  "libfut_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
