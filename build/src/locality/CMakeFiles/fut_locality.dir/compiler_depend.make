# Empty compiler generated dependencies file for fut_locality.
# This may be replaced when dependencies are built.
