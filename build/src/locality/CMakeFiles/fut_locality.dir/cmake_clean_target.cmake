file(REMOVE_RECURSE
  "libfut_locality.a"
)
