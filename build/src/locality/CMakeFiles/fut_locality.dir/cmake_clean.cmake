file(REMOVE_RECURSE
  "CMakeFiles/fut_locality.dir/Locality.cpp.o"
  "CMakeFiles/fut_locality.dir/Locality.cpp.o.d"
  "libfut_locality.a"
  "libfut_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
