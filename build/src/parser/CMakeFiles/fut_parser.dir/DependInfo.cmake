
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parser/Desugar.cpp" "src/parser/CMakeFiles/fut_parser.dir/Desugar.cpp.o" "gcc" "src/parser/CMakeFiles/fut_parser.dir/Desugar.cpp.o.d"
  "/root/repo/src/parser/Lexer.cpp" "src/parser/CMakeFiles/fut_parser.dir/Lexer.cpp.o" "gcc" "src/parser/CMakeFiles/fut_parser.dir/Lexer.cpp.o.d"
  "/root/repo/src/parser/Parser.cpp" "src/parser/CMakeFiles/fut_parser.dir/Parser.cpp.o" "gcc" "src/parser/CMakeFiles/fut_parser.dir/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/fut_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
