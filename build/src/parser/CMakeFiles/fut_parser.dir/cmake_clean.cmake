file(REMOVE_RECURSE
  "CMakeFiles/fut_parser.dir/Desugar.cpp.o"
  "CMakeFiles/fut_parser.dir/Desugar.cpp.o.d"
  "CMakeFiles/fut_parser.dir/Lexer.cpp.o"
  "CMakeFiles/fut_parser.dir/Lexer.cpp.o.d"
  "CMakeFiles/fut_parser.dir/Parser.cpp.o"
  "CMakeFiles/fut_parser.dir/Parser.cpp.o.d"
  "libfut_parser.a"
  "libfut_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
