file(REMOVE_RECURSE
  "libfut_parser.a"
)
