# Empty dependencies file for fut_parser.
# This may be replaced when dependencies are built.
