file(REMOVE_RECURSE
  "libfut_refimpl.a"
)
