# Empty compiler generated dependencies file for fut_refimpl.
# This may be replaced when dependencies are built.
