file(REMOVE_RECURSE
  "CMakeFiles/fut_refimpl.dir/RefImpl.cpp.o"
  "CMakeFiles/fut_refimpl.dir/RefImpl.cpp.o.d"
  "libfut_refimpl.a"
  "libfut_refimpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_refimpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
