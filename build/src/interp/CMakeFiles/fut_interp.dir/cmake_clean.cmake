file(REMOVE_RECURSE
  "CMakeFiles/fut_interp.dir/Interp.cpp.o"
  "CMakeFiles/fut_interp.dir/Interp.cpp.o.d"
  "CMakeFiles/fut_interp.dir/Value.cpp.o"
  "CMakeFiles/fut_interp.dir/Value.cpp.o.d"
  "libfut_interp.a"
  "libfut_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fut_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
