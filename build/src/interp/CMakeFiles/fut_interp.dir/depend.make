# Empty dependencies file for fut_interp.
# This may be replaced when dependencies are built.
