file(REMOVE_RECURSE
  "libfut_interp.a"
)
