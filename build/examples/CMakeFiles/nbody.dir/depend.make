# Empty dependencies file for nbody.
# This may be replaced when dependencies are built.
