file(REMOVE_RECURSE
  "CMakeFiles/nbody.dir/nbody.cpp.o"
  "CMakeFiles/nbody.dir/nbody.cpp.o.d"
  "nbody"
  "nbody.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
