# Empty compiler generated dependencies file for mandelbrot.
# This may be replaced when dependencies are built.
