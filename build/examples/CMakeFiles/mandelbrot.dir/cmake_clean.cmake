file(REMOVE_RECURSE
  "CMakeFiles/mandelbrot.dir/mandelbrot.cpp.o"
  "CMakeFiles/mandelbrot.dir/mandelbrot.cpp.o.d"
  "mandelbrot"
  "mandelbrot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mandelbrot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
