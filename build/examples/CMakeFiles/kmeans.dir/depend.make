# Empty dependencies file for kmeans.
# This may be replaced when dependencies are built.
