//===- differential_test.cpp - Compiled-vs-reference differential tests ------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Twenty seeded random programs (map / reduce / scan / mask / in-place /
/// loop nests over i32) are run through the reference interpreter and
/// through the full compile-to-gpusim pipeline, and the results must be
/// bit-identical — once fault-free, and once with a 1% injected fault
/// rate so retries and interpreter fallback are also value-preserving.
/// On failure the seed and full program source are in the assertion
/// message, so any mismatch reproduces directly.
///
//===----------------------------------------------------------------------===//

#include "Differential.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

constexpr uint64_t kNumSeeds = 20;

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, FaultFree) {
  GeneratedProgram GP = generateProgram(GetParam());
  DifferentialOutcome O = runDifferential(GP);
  EXPECT_TRUE(O.Ok) << O.Message;
}

TEST_P(DifferentialTest, UnderFaultInjection) {
  GeneratedProgram GP = generateProgram(GetParam());
  gpusim::ResilienceParams RP;
  RP.Faults.LaunchFailRate = 0.01;
  RP.Faults.CorruptRate = 0.01;
  RP.Faults.Seed = GetParam() ^ 0xfa17edULL;
  DifferentialOutcome O = runDifferential(GP, RP);
  EXPECT_TRUE(O.Ok) << O.Message;
}

TEST_P(DifferentialTest, UnderHeavyFaultsWithFallback) {
  // A fault rate high enough that some kernels exhaust their retries;
  // the run must then degrade to the interpreter and still agree.
  GeneratedProgram GP = generateProgram(GetParam());
  gpusim::ResilienceParams RP;
  RP.Faults.LaunchFailRate = 0.4;
  RP.Faults.Seed = GetParam() * 31 + 7;
  RP.InterpFallback = true;
  DifferentialOutcome O = runDifferential(GP, RP);
  EXPECT_TRUE(O.Ok) << O.Message;
}

TEST_P(DifferentialTest, Sharded2Devices) {
  GeneratedProgram GP = generateProgram(GetParam());
  DifferentialOutcome O =
      runDifferential(GP, gpusim::ResilienceParams(),
                      gpusim::DeviceParams::gtx780(), /*Devices=*/2);
  EXPECT_TRUE(O.Ok) << O.Message;
}

TEST_P(DifferentialTest, Sharded4Devices) {
  GeneratedProgram GP = generateProgram(GetParam());
  DifferentialOutcome O =
      runDifferential(GP, gpusim::ResilienceParams(),
                      gpusim::DeviceParams::gtx780(), /*Devices=*/4);
  EXPECT_TRUE(O.Ok) << O.Message;
}

TEST_P(DifferentialTest, ShardedMatchesSingleDeviceBaseline) {
  // The sharded path at N devices must agree bit-for-bit not only with
  // the reference interpreter but with the explicit --devices=1 baseline,
  // which exercises the pinned N=1 no-op invariant through the same knob.
  GeneratedProgram GP = generateProgram(GetParam());
  DifferentialOutcome Base =
      runDifferential(GP, gpusim::ResilienceParams(),
                      gpusim::DeviceParams::gtx780(), /*Devices=*/1);
  EXPECT_TRUE(Base.Ok) << Base.Message;
  DifferentialOutcome Sharded =
      runDifferential(GP, gpusim::ResilienceParams(),
                      gpusim::DeviceParams::gtx780(), /*Devices=*/4);
  EXPECT_TRUE(Sharded.Ok) << Sharded.Message;
}

TEST_P(DifferentialTest, ShardedUnderFaultInjection) {
  // Fault retries serialise the whole device group; the recomputed
  // sharded launch must still be value-preserving.
  GeneratedProgram GP = generateProgram(GetParam());
  gpusim::ResilienceParams RP;
  RP.Faults.LaunchFailRate = 0.01;
  RP.Faults.CorruptRate = 0.01;
  RP.Faults.Seed = GetParam() ^ 0xfa17edULL;
  DifferentialOutcome O = runDifferential(
      GP, RP, gpusim::DeviceParams::gtx780(), /*Devices=*/2);
  EXPECT_TRUE(O.Ok) << O.Message;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(0, kNumSeeds));

TEST(DifferentialGenerator, IsDeterministic) {
  for (uint64_t Seed : {0ULL, 7ULL, 19ULL}) {
    GeneratedProgram A = generateProgram(Seed);
    GeneratedProgram B = generateProgram(Seed);
    EXPECT_EQ(A.Source, B.Source);
    ASSERT_EQ(A.Args.size(), B.Args.size());
    for (size_t I = 0; I < A.Args.size(); ++I)
      EXPECT_TRUE(A.Args[I] == B.Args[I]);
  }
}

TEST(DifferentialGenerator, SeedsDiffer) {
  // Not a strict requirement seed-by-seed, but the pool as a whole must
  // not collapse to one program.
  int Distinct = 0;
  GeneratedProgram First = generateProgram(0);
  for (uint64_t Seed = 1; Seed < kNumSeeds; ++Seed)
    if (generateProgram(Seed).Source != First.Source)
      ++Distinct;
  EXPECT_GT(Distinct, 15);
}

} // namespace
