//===- artifact_hash_test.cpp - Artifact cache-key determinism ------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The artifact cache's correctness rests on two properties pinned here:
///
///  * determinism — compiling the same source with the same options
///    always reproduces the same canonical DeviceProgram::str() dump and
///    the same CompileResult::fingerprint() (what quarantine-recompile
///    relies on), and
///  * stability — the golden fingerprint of a fixed program is pinned to
///    a constant, so a compiler pass that changes its output (or a
///    printer change that alters the canonical dump) fails this test
///    instead of silently invalidating every cached artifact.
///
/// Cache *keys* (source + canonical options, no compilation involved)
/// are additionally checked to separate on every semantically relevant
/// option and to ignore verification-only toggles.
///
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <gtest/gtest.h>

using namespace fut;

namespace {

const char *kPinned = "fun main (n: i32): i32 =\n"
                      "  reduce (+) 0 (map (\\(i: i32): i32 -> i * i) "
                      "(iota n))\n";

/// Golden fingerprint of kPinned under default options.  An intentional
/// pipeline change may update this constant — but only with the
/// understanding that it invalidates every previously cached artifact.
constexpr uint64_t kPinnedFingerprint = 0xebd660d5e978cf6aULL;

TEST(ArtifactHash, CompilationIsDeterministic) {
  NameSource N1, N2;
  auto A = compileSource(kPinned, N1);
  auto B = compileSource(kPinned, N2);
  ASSERT_TRUE(static_cast<bool>(A)) << A.getError().str();
  ASSERT_TRUE(static_cast<bool>(B)) << B.getError().str();
  EXPECT_EQ(A->P.str(), B->P.str());
  EXPECT_EQ(A->MemPlan.str(), B->MemPlan.str());
  EXPECT_EQ(A->fingerprint(), B->fingerprint());
}

TEST(ArtifactHash, GoldenFingerprintIsPinned) {
  NameSource N;
  auto A = compileSource(kPinned, N);
  ASSERT_TRUE(static_cast<bool>(A)) << A.getError().str();
  EXPECT_EQ(A->fingerprint(), kPinnedFingerprint)
      << "the canonical artifact dump changed; if intentional, update "
         "the golden constant (this invalidates cached artifacts)";
}

TEST(ArtifactHash, CanonicalDumpIsNonTrivial) {
  NameSource N;
  auto A = compileSource(kPinned, N);
  ASSERT_TRUE(static_cast<bool>(A)) << A.getError().str();
  EXPECT_NE(A->P.str().find("kernel"), std::string::npos)
      << "the canonical dump should show the extracted kernels";
}

TEST(ArtifactHash, CacheKeySeparatesSemanticOptions) {
  CompilerOptions Base;
  uint64_t KBase = artifactCacheKey(kPinned, Base);

  CompilerOptions NoFusion = Base;
  NoFusion.EnableFusion = false;
  CompilerOptions NoKernels = Base;
  NoKernels.ExtractKernels = false;
  CompilerOptions NoPlan = Base;
  NoPlan.PlanMemory = false;
  CompilerOptions NoTiling = Base;
  NoTiling.Locality.EnableTiling = false;
  CompilerOptions NoInterchange = Base;
  NoInterchange.Flatten.EnableInterchange = false;

  EXPECT_NE(KBase, artifactCacheKey(kPinned, NoFusion));
  EXPECT_NE(KBase, artifactCacheKey(kPinned, NoKernels));
  EXPECT_NE(KBase, artifactCacheKey(kPinned, NoPlan));
  EXPECT_NE(KBase, artifactCacheKey(kPinned, NoTiling));
  EXPECT_NE(KBase, artifactCacheKey(kPinned, NoInterchange));
  EXPECT_NE(KBase, artifactCacheKey("fun main: i32 = 1\n", Base));
}

TEST(ArtifactHash, CacheKeyIgnoresVerificationToggles) {
  CompilerOptions Base;
  uint64_t KBase = artifactCacheKey(kPinned, Base);

  // Verification gates whether compilation is accepted, never what it
  // produces: toggling it must not split the cache.
  CompilerOptions NoVerify = Base;
  NoVerify.VerifyIR = false;
  NoVerify.InternalChecks = false;
  EXPECT_EQ(KBase, artifactCacheKey(kPinned, NoVerify));
}

TEST(ArtifactHash, FingerprintCoversTheMemoryPlan) {
  // Same source, planning on vs off: the artifacts differ (one carries a
  // plan) and so must the fingerprints.
  NameSource N1, N2;
  CompilerOptions WithPlan;
  CompilerOptions NoPlan;
  NoPlan.PlanMemory = false;
  auto A = compileSource(kPinned, N1, WithPlan);
  auto B = compileSource(kPinned, N2, NoPlan);
  ASSERT_TRUE(static_cast<bool>(A)) << A.getError().str();
  ASSERT_TRUE(static_cast<bool>(B)) << B.getError().str();
  EXPECT_NE(A->fingerprint(), B->fingerprint());
}

} // namespace
