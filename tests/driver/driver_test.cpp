//===- driver_test.cpp - Tests for the pipeline driver ----------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "gpusim/Device.h"
#include "interp/Interp.h"
#include "ir/Traversal.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}

int countKernelsIn(const Body &B) {
  int N = 0;
  for (const Stm &S : B.Stms) {
    if (S.E->kind() == ExpKind::Kernel)
      ++N;
    forEachChildBody(*S.E,
                     [&](const Body &In) { N += countKernelsIn(In); });
  }
  return N;
}

} // namespace

TEST(DriverTest, FrontendErrorsPropagate) {
  NameSource NS;
  EXPECT_ERR_CONTAINS(compileSource("fun main (x: i32): i32 = y", NS),
                      "unbound variable");
}

TEST(DriverTest, UniquenessErrorsPropagate) {
  NameSource NS;
  EXPECT_ERR_CONTAINS(
      compileSource("fun main (n: i32) (a: [n]i32): [n]i32 =\n"
                    "  a with [0] <- 1",
                    NS),
      "not consumable");
}

TEST(DriverTest, UniquenessCheckCanBeDisabled) {
  // (Useful for compiling deliberately unsafe code in tests; the
  // interpreter still computes the persistent-update semantics.)
  NameSource NS;
  CompilerOptions O;
  O.CheckUniqueness = false;
  auto C = compileSource("fun main (n: i32) (a: [n]i32): [n]i32 =\n"
                         "  a with [0] <- 1",
                         NS, O);
  ASSERT_OK(C);
}

TEST(DriverTest, PhaseTogglesActuallyToggle) {
  const char *Src = "fun main (n: i32) (xs: [n]i32): i32 =\n"
                    "  reduce (+) 0 (map (+1) xs)";

  NameSource NS1;
  auto Full = compileSource(Src, NS1);
  ASSERT_OK(Full);
  EXPECT_EQ(Full->Fusion.Redomap, 1);
  EXPECT_GE(countKernelsIn(Full->P.Funs[0].FBody), 1);

  NameSource NS2;
  CompilerOptions NoFuse;
  NoFuse.EnableFusion = false;
  auto Unfused = compileSource(Src, NS2, NoFuse);
  ASSERT_OK(Unfused);
  EXPECT_EQ(Unfused->Fusion.total(), 0);

  NameSource NS3;
  CompilerOptions NoKernels;
  NoKernels.ExtractKernels = false;
  auto HostOnly = compileSource(Src, NS3, NoKernels);
  ASSERT_OK(HostOnly);
  EXPECT_EQ(countKernelsIn(HostOnly->P.Funs[0].FBody), 0);
}

TEST(DriverTest, AllConfigurationsAgreeSemantically) {
  const char *Src =
      "fun main (n: i32) (xs: [n]i32): ([n]i32, i32) =\n"
      "  let ys = map (\\(x: i32): i32 -> x * x + 1) xs\n"
      "  let s = reduce max 0 ys\n"
      "  in (map (\\(y: i32): i32 -> y % (s + 1)) ys, s)";
  std::vector<Value> Args = {iv(9), ivec(randomInts(9, 5, 0, 9))};

  std::vector<CompilerOptions> Configs(5);
  Configs[1].EnableFusion = false;
  Configs[2].Locality.EnableCoalescing = false;
  Configs[3].Locality.EnableTiling = false;
  Configs[4].ExtractKernels = false;

  std::vector<Value> Want;
  for (size_t I = 0; I < Configs.size(); ++I) {
    NameSource NS;
    auto C = compileSource(Src, NS, Configs[I]);
    ASSERT_OK(C);
    gpusim::Device D;
    auto R = D.runMain(C->P, Args);
    ASSERT_TRUE(static_cast<bool>(R)) << "config " << I << ": "
                                      << R.getError().str();
    if (I == 0) {
      Want = R->Outputs;
      continue;
    }
    ASSERT_EQ(R->Outputs.size(), Want.size());
    for (size_t J = 0; J < Want.size(); ++J)
      EXPECT_TRUE(R->Outputs[J].approxEqual(Want[J]))
          << "config " << I << ", output " << J;
  }
}

TEST(DriverTest, InternalChecksCatchMalformedPasses) {
  // Simulate a buggy pass by compiling, mangling the program, and
  // re-entering the pipeline: the re-check must fire.
  NameSource NS;
  auto C = compileSource("fun main (x: i32): i32 = x + 1", NS);
  ASSERT_OK(C);
  Program P = std::move(C->P);
  ASSERT_FALSE(P.Funs[0].FBody.Stms.empty());
  // Reference a bogus name.
  P.Funs[0].FBody.Result = {SubExp::var(VName("bogus", 999999))};
  auto Again = compileProgram(std::move(P), NS);
  EXPECT_ERR_CONTAINS(Again, "internal error");
}

TEST(DriverTest, MultiFunctionProgramsInlineAndCompile) {
  const char *Src =
      "fun scale (n: i32) (xs: [n]i32) (c: i32): [n]i32 =\n"
      "  map (\\(x: i32): i32 -> x * c) xs\n"
      "fun main (n: i32) (xs: [n]i32): i32 =\n"
      "  reduce (+) 0 (scale n xs 3)";
  NameSource NS;
  auto C = compileSource(Src, NS);
  ASSERT_OK(C);
  // After inlining + dead-function removal only main remains.
  EXPECT_EQ(C->P.Funs.size(), 1u);
  gpusim::Device D;
  auto R = D.runMain(C->P, {iv(4), ivec({1, 2, 3, 4})});
  ASSERT_OK(R);
  EXPECT_EQ(R->Outputs[0], iv(30));
}
