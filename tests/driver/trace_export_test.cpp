//===- trace_export_test.cpp - Chrome-trace schema and cost-audit tests ------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the trace layer's Chrome trace_event export end to end: the
/// JSON parses, spans nest properly on the timeline, every kernel span
/// carries simulated cycles and the coalesced/scattered transaction
/// breakdown, and the trace composes with fault injection — retry events
/// appear, and no simulated cycle is double-counted: the per-kernel span
/// cycles sum exactly to CostReport::KernelCycles, the retry instants sum
/// to RetryCycles, and TotalCycles obeys the two-engine invariants —
/// bounded above by the serial sum
/// KernelCycles + HostCycles + TransferCycles + RetryCycles (to which the
/// --sync ablation pins it exactly) and below by each engine's busy time.
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Compiler.h"
#include "support/Json.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace fut;

namespace {

const char *kProgram =
    "fun main (n: i32) (xs: [n]i32): ([n]i32, i32) =\n"
    "  let ys = map (\\(x: i32): i32 -> x * 3 + 1) xs\n"
    "  let zs = scan (+) 0 ys\n"
    "  let s = reduce max (0 - 1000000) zs\n"
    "  in (zs, s)\n";

std::vector<Value> programArgs() {
  std::vector<PrimValue> Elems;
  for (int I = 0; I < 128; ++I)
    Elems.push_back(PrimValue::makeI32(I * 3 - 190));
  std::vector<Value> Args;
  Args.push_back(Value::scalar(PrimValue::makeI32(128)));
  Args.push_back(Value::array(ScalarKind::I32, {128}, std::move(Elems)));
  return Args;
}

/// Compiles and runs kProgram under a fresh enabled trace session and
/// returns the device result; the session stays enabled for inspection
/// (callers clear it).
ErrorOr<gpusim::RunResult>
runTraced(const gpusim::ResilienceParams &RP = gpusim::ResilienceParams(),
          gpusim::DeviceParams DP = gpusim::DeviceParams::gtx780()) {
  auto &TS = trace::TraceSession::global();
  TS.clear();
  TS.setEnabled(true);
  CompilerOptions Opts;
  NameSource Names;
  auto C = compileSource(kProgram, Names, Opts);
  if (!C)
    return C.getError();
  DeviceRunOptions RO;
  RO.Device = DP;
  RO.Resilience = RP;
  return runOnDevice(C->P, programArgs(), RO);
}

void endSession() {
  trace::TraceSession::global().setEnabled(false);
  trace::TraceSession::global().clear();
}

double sumKernelSpanCycles() {
  double Sum = 0;
  for (const trace::TraceEvent &E : trace::TraceSession::global().events())
    if (!E.Instant && E.Name.rfind("kernel:", 0) == 0) {
      const trace::TraceArg *A = E.findArg("cycles");
      EXPECT_NE(A, nullptr) << "kernel span without cycles: " << E.Name;
      if (A)
        Sum += A->Num;
    }
  return Sum;
}

double sumRetryInstantCycles(int *Count = nullptr) {
  double Sum = 0;
  for (const trace::TraceEvent &E : trace::TraceSession::global().events())
    if (E.Instant && E.Name == "retry-backoff") {
      if (Count)
        ++*Count;
      const trace::TraceArg *A = E.findArg("cycles");
      EXPECT_NE(A, nullptr) << "retry instant without cycles";
      if (A)
        Sum += A->Num;
    }
  return Sum;
}

TEST(TraceExport, ChromeTraceParsesWithExpectedSchema) {
  auto R = runTraced();
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();

  auto Doc = json::parse(trace::TraceSession::global().chromeTraceJson());
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().str();
  ASSERT_TRUE(Doc->isObject());
  const json::Value *Events = Doc->get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  EXPECT_FALSE(Events->Arr.empty());

  int PassSpans = 0, KernelSpans = 0;
  std::vector<std::string> ThreadNames;
  for (const json::Value &E : Events->Arr) {
    ASSERT_TRUE(E.isObject());
    std::string Ph = E.getString("ph");
    EXPECT_TRUE(Ph == "X" || Ph == "i" || Ph == "C" || Ph == "M")
        << "ph=" << Ph;
    EXPECT_FALSE(E.getString("name").empty());
    if (Ph == "M") {
      // Thread-name metadata announcing the per-engine tracks.
      EXPECT_EQ(E.getString("name"), "thread_name");
      const json::Value *Args = E.get("args");
      ASSERT_NE(Args, nullptr);
      ThreadNames.push_back(Args->getString("name"));
      continue;
    }
    if (Ph == "X") {
      EXPECT_NE(E.get("ts"), nullptr);
      EXPECT_NE(E.get("dur"), nullptr);
      EXPECT_GE(E.getNumber("dur", -1), 0);
    }
    std::string Name = E.getString("name");
    if (Name.rfind("pass:", 0) == 0)
      ++PassSpans;
    if (Name.rfind("kernel:", 0) == 0) {
      ++KernelSpans;
      const json::Value *Args = E.get("args");
      ASSERT_NE(Args, nullptr) << Name;
      EXPECT_GT(Args->getNumber("cycles", -1), 0);
      double Tx = Args->getNumber("global_tx", -1);
      double Co = Args->getNumber("coalesced_tx", -1);
      double Sc = Args->getNumber("scattered_tx", -1);
      EXPECT_GE(Tx, 0);
      EXPECT_GE(Co, 0);
      EXPECT_GE(Sc, 0);
      EXPECT_EQ(Tx, Co + Sc) << "transaction breakdown must partition";
    }
  }
  // One span per compiler pass, one per kernel launch.
  EXPECT_GE(PassSpans, 5); // frontend, uniqueness, inline, simplify x3, ...
  EXPECT_GE(KernelSpans, 2);
  // Both device engines register their tracks.
  EXPECT_NE(std::find(ThreadNames.begin(), ThreadNames.end(), "copy-engine"),
            ThreadNames.end());
  EXPECT_NE(std::find(ThreadNames.begin(), ThreadNames.end(),
                      "compute-engine"),
            ThreadNames.end());
  endSession();
}

TEST(TraceExport, SpansNestOnTheTimeline) {
  auto R = runTraced();
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();

  auto Doc = json::parse(trace::TraceSession::global().chromeTraceJson());
  ASSERT_TRUE(static_cast<bool>(Doc)) << Doc.getError().str();
  const json::Value *Events = Doc->get("traceEvents");
  ASSERT_NE(Events, nullptr);

  struct Span {
    std::string Name;
    double Start, End;
  };
  std::vector<Span> Spans;
  for (const json::Value &E : Events->Arr)
    if (E.getString("ph") == "X")
      Spans.push_back({E.getString("name"), E.getNumber("ts"),
                       E.getNumber("ts") + E.getNumber("dur")});

  // Spans must form a forest: any two either nest or are disjoint.
  const double Eps = 0.5; // µs slack for clock granularity
  for (size_t A = 0; A < Spans.size(); ++A)
    for (size_t B = A + 1; B < Spans.size(); ++B) {
      const Span &X = Spans[A], &Y = Spans[B];
      bool Disjoint =
          X.End <= Y.Start + Eps || Y.End <= X.Start + Eps;
      bool XinY = X.Start >= Y.Start - Eps && X.End <= Y.End + Eps;
      bool YinX = Y.Start >= X.Start - Eps && Y.End <= X.End + Eps;
      EXPECT_TRUE(Disjoint || XinY || YinX)
          << X.Name << " [" << X.Start << "," << X.End << ") overlaps "
          << Y.Name << " [" << Y.Start << "," << Y.End << ")";
    }

  // Kernel spans must sit inside the device-run span.
  const Span *DeviceRun = nullptr;
  for (const Span &S : Spans)
    if (S.Name == "device-run")
      DeviceRun = &S;
  ASSERT_NE(DeviceRun, nullptr);
  for (const Span &S : Spans)
    if (S.Name.rfind("kernel:", 0) == 0) {
      EXPECT_GE(S.Start, DeviceRun->Start - Eps);
      EXPECT_LE(S.End, DeviceRun->End + Eps);
    }
  endSession();
}

TEST(TraceExport, KernelSpanCyclesSumToCostReport) {
  auto R = runTraced();
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  double SpanSum = sumKernelSpanCycles();
  EXPECT_NEAR(SpanSum, R->Cost.KernelCycles,
              1e-6 * std::max(1.0, R->Cost.KernelCycles));
  endSession();
}

TEST(TraceExport, CostTotalsArePinnedFaultFree) {
  // Asynchronous (default) mode: TotalCycles is the two-engine makespan,
  // bounded above by the serial sum and below by each engine's busy time.
  auto R = runTraced();
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  const gpusim::CostReport &C = R->Cost;
  double Serial =
      C.KernelCycles + C.HostCycles + C.TransferCycles + C.RetryCycles;
  EXPECT_LE(C.TotalCycles, Serial);
  EXPECT_GE(C.TotalCycles, std::max(C.CopyEngineBusy, C.ComputeEngineBusy));
  EXPECT_DOUBLE_EQ(C.OverlapSavedCycles, Serial - C.TotalCycles);
  EXPECT_EQ(C.RetryCycles, 0);
  EXPECT_EQ(C.FaultsInjected, 0);
  EXPECT_EQ(C.GlobalTransactions,
            C.CoalescedTransactions + C.ScatteredTransactions);
  endSession();

  // --sync ablation: the serial accounting of the pre-async model, exact
  // to the bit (the pinned constant is the historical TotalCycles for
  // this program on gtx780).
  gpusim::DeviceParams DP = gpusim::DeviceParams::gtx780();
  DP.AsyncTimeline = false;
  auto RSync = runTraced(gpusim::ResilienceParams(), DP);
  ASSERT_TRUE(static_cast<bool>(RSync)) << RSync.getError().str();
  const gpusim::CostReport &CS = RSync->Cost;
  EXPECT_DOUBLE_EQ(CS.TotalCycles, CS.KernelCycles + CS.HostCycles +
                                       CS.TransferCycles + CS.RetryCycles);
  EXPECT_DOUBLE_EQ(CS.TotalCycles, 15032.4);
  EXPECT_DOUBLE_EQ(CS.CopyEngineBusy, 0);
  EXPECT_DOUBLE_EQ(CS.ComputeEngineBusy, 0);
  EXPECT_DOUBLE_EQ(CS.OverlapSavedCycles, 0);
  endSession();
}

TEST(TraceExport, FaultInjectionComposesWithoutDoubleCounting) {
  // Find a fault seed whose run both injects faults and succeeds; the
  // stream is deterministic per seed, so the scan itself is deterministic.
  bool Found = false;
  for (uint64_t Seed = 1; Seed <= 50 && !Found; ++Seed) {
    gpusim::ResilienceParams RP;
    RP.Faults.LaunchFailRate = 0.25;
    RP.Faults.CorruptRate = 0.1;
    RP.Faults.Seed = Seed;
    RP.MaxRetries = 8;
    auto R = runTraced(RP);
    if (!R || R->InterpFallback || R->Cost.FaultsInjected == 0) {
      endSession();
      continue;
    }
    Found = true;

    int RetryInstants = 0;
    double RetrySum = sumRetryInstantCycles(&RetryInstants);
    EXPECT_GT(RetryInstants, 0) << "retried run must emit retry instants";
    EXPECT_EQ(RetryInstants, R->Cost.RetriedLaunches);
    EXPECT_NEAR(RetrySum, R->Cost.RetryCycles,
                1e-6 * std::max(1.0, R->Cost.RetryCycles));

    int FaultInstants = 0;
    for (const trace::TraceEvent &E :
         trace::TraceSession::global().events())
      if (E.Instant && (E.Name == "fault:launch-failed" ||
                        E.Name == "fault:result-corrupted"))
        ++FaultInstants;
    EXPECT_EQ(FaultInstants, R->Cost.FaultsInjected);

    // Retried kernels appear once per actual execution, and their span
    // cycles still sum exactly to KernelCycles — nothing double-counted.
    double SpanSum = sumKernelSpanCycles();
    EXPECT_NEAR(SpanSum, R->Cost.KernelCycles,
                1e-6 * std::max(1.0, R->Cost.KernelCycles));

    const gpusim::CostReport &C = R->Cost;
    double Serial =
        C.KernelCycles + C.HostCycles + C.TransferCycles + C.RetryCycles;
    EXPECT_LE(C.TotalCycles, Serial);
    // Retry backoffs serialise the device, so they are never hidden by
    // engine overlap.
    EXPECT_GE(C.TotalCycles,
              std::max(C.CopyEngineBusy, C.ComputeEngineBusy) +
                  C.RetryCycles);
    EXPECT_GT(C.RetryCycles, 0);
    endSession();
  }
  EXPECT_TRUE(Found)
      << "no seed in 1..50 produced a faulty-but-successful run";
}

TEST(TraceExport, WatchdogFallbackKeepsTotalsAndEmitsInstant) {
  gpusim::DeviceParams DP = gpusim::DeviceParams::gtx780();
  DP.WatchdogKernelCycles = 1; // every kernel is killed immediately
  gpusim::ResilienceParams RP;
  RP.InterpFallback = true;
  auto R = runTraced(RP, DP);
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  ASSERT_TRUE(R->InterpFallback);

  // The killed kernel's span records the cycles actually charged.
  double SpanSum = sumKernelSpanCycles();
  EXPECT_NEAR(SpanSum, R->Cost.KernelCycles, 1e-9);
  EXPECT_EQ(R->Cost.WatchdogKills, 1);

  bool SawKill = false, SawFallback = false;
  for (const trace::TraceEvent &E : trace::TraceSession::global().events()) {
    if (E.Instant && E.Name == "watchdog-kill")
      SawKill = true;
    if (E.Instant && E.Name == "interp-fallback")
      SawFallback = true;
  }
  EXPECT_TRUE(SawKill);
  EXPECT_TRUE(SawFallback);

  const gpusim::CostReport &C = R->Cost;
  EXPECT_DOUBLE_EQ(C.TotalCycles, C.KernelCycles + C.HostCycles +
                                      C.TransferCycles + C.RetryCycles);
  endSession();
}

} // namespace
