//===- locality_test.cpp - Tests for coalescing and tiling ------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "locality/Locality.h"

#include "driver/Compiler.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Traversal.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;

namespace {

/// Compiles through the pipeline up to and including the locality pass.
CompileResult compiled(const std::string &Src, LocalityOptions L = {}) {
  NameSource NS;
  CompilerOptions O;
  O.Locality = L;
  auto C = compileSource(Src, NS, O);
  EXPECT_TRUE(static_cast<bool>(C)) << C.getError().str();
  return C ? C.take() : CompileResult{};
}

/// Finds the first kernel in a body (recursively).
const KernelExp *firstKernel(const Body &B) {
  for (const Stm &S : B.Stms) {
    if (const auto *K = expDynCast<KernelExp>(S.E.get()))
      return K;
    const KernelExp *Found = nullptr;
    forEachChildBody(*S.E, [&](const Body &Inner) {
      if (!Found)
        Found = firstKernel(Inner);
    });
    if (Found)
      return Found;
  }
  return nullptr;
}

bool anyInputTransposed(const Body &B) {
  bool Found = false;
  std::function<void(const Body &)> Scan = [&](const Body &Bo) {
    for (const Stm &S : Bo.Stms) {
      if (const auto *K = expDynCast<KernelExp>(S.E.get()))
        for (const KernelExp::KInput &In : K->Inputs)
          Found = Found || !isIdentityPerm(In.LayoutPerm);
      forEachChildBody(*S.E, Scan);
    }
  };
  Scan(B);
  return Found;
}

bool anyInputTiled(const Body &B) {
  bool Found = false;
  std::function<void(const Body &)> Scan = [&](const Body &Bo) {
    for (const Stm &S : Bo.Stms) {
      if (const auto *K = expDynCast<KernelExp>(S.E.get()))
        for (const KernelExp::KInput &In : K->Inputs)
          Found = Found || In.Tiled;
      forEachChildBody(*S.E, Scan);
    }
  };
  Scan(B);
  return Found;
}

} // namespace

TEST(LocalityTest, RowSumsGetColumnMajorLayout) {
  // The paper's canonical example: map (\xs -> reduce (+) 0 xs) xss is
  // resolved by making xss column-major.
  CompileResult C = compiled("fun main (a: [n][m]f32): [n]f32 =\n"
                             "  map (\\(row: [m]f32): f32 ->\n"
                             "         reduce (+) 0.0 row) a");
  EXPECT_GE(C.Locality.CoalescedInputs, 1);
  EXPECT_TRUE(anyInputTransposed(C.P.Funs[0].FBody))
      << printProgram(C.P);
}

TEST(LocalityTest, ElementwiseMapNeedsNoTransposition) {
  CompileResult C = compiled(
      "fun main (n: i32) (xs: [n]f32): [n]f32 = map (\\(x: f32): f32 -> "
      "x * 2.0) xs");
  EXPECT_FALSE(anyInputTransposed(C.P.Funs[0].FBody));
  EXPECT_FALSE(anyInputTiled(C.P.Funs[0].FBody));
}

TEST(LocalityTest, TwoDimensionalMapIsAlreadyCoalesced) {
  // a[i][j] with j the fast thread index: identity layout is right.
  CompileResult C = compiled(
      "fun main (a: [n][m]f32): [n][m]f32 =\n"
      "  map (\\(row: [m]f32): [m]f32 -> map (\\(x: f32): f32 -> x + "
      "1.0) row) a");
  EXPECT_FALSE(anyInputTransposed(C.P.Funs[0].FBody))
      << printProgram(C.P);
}

TEST(LocalityTest, InvariantArrayIsTiled) {
  CompileResult C = compiled(
      "fun main (n: i32) (bodies: [n]f32): [n]f32 =\n"
      "  map (\\(p: f32): f32 ->\n"
      "         reduce (+) 0.0 (map (\\(q: f32): f32 -> q - p) bodies))\n"
      "      bodies");
  EXPECT_GE(C.Locality.TiledInputs, 1);
  EXPECT_TRUE(anyInputTiled(C.P.Funs[0].FBody)) << printProgram(C.P);
}

TEST(LocalityTest, TilingCanBeDisabled) {
  LocalityOptions L;
  L.EnableTiling = false;
  CompileResult C = compiled(
      "fun main (n: i32) (bodies: [n]f32): [n]f32 =\n"
      "  map (\\(p: f32): f32 ->\n"
      "         reduce (+) 0.0 (map (\\(q: f32): f32 -> q - p) bodies))\n"
      "      bodies",
      L);
  EXPECT_EQ(C.Locality.TiledInputs, 0);
  EXPECT_FALSE(anyInputTiled(C.P.Funs[0].FBody));
}

TEST(LocalityTest, IndirectIndexedArrayIsTiled) {
  // The LavaMD pattern: pos[nb][j] where nb comes from a neighbour list.
  CompileResult C = compiled(
      "fun main (p: i32) (pos: [b][p]f32) (nbrs: [b][4]i32): [b]f32 =\n"
      "  map (\\(bi: i32): f32 ->\n"
      "         loop (f = 0.0) for ni < 4 do\n"
      "           let nb = nbrs[bi, ni]\n"
      "           in loop (f) for j < p do f + pos[nb, j])\n"
      "      (iota b)");
  EXPECT_TRUE(anyInputTiled(C.P.Funs[0].FBody)) << printProgram(C.P);
}

TEST(LocalityTest, ArrayResultsAreStoredTransposed) {
  // A kernel producing one row per thread stores the result with the
  // thread index innermost so writes coalesce.
  CompileResult C = compiled(
      "fun main (n: i32) (xs: [n]f32): [n][8]f32 =\n"
      "  map (\\(x: f32): [8]f32 ->\n"
      "         map (\\(i: i32): f32 -> x + f32 i) (iota 8)) xs");
  // Either the nested map became a 2-D grid (scalar results, fine) or the
  // per-thread array result is marked transposed.
  const KernelExp *K = firstKernel(C.P.Funs[0].FBody);
  ASSERT_NE(K, nullptr);
  if (K->GridDims.size() == 1)
    EXPECT_TRUE(K->TransposedOutputs) << printProgram(C.P);
}

TEST(LocalityTest, MixedAccessPatternTilesWholesaleReads) {
  // bodies is read both at the thread's own index and wholesale: the
  // wholesale read dominates, so the input is tiled.
  CompileResult C = compiled(
      "fun main (n: i32) (bodies: [n]f32): [n]f32 =\n"
      "  map (\\(i: i32): f32 ->\n"
      "         let own = bodies[i]\n"
      "         in own + reduce (+) 0.0 bodies)\n"
      "      (iota n)");
  EXPECT_TRUE(anyInputTiled(C.P.Funs[0].FBody)) << printProgram(C.P);
}

TEST(LocalityTest, SegmentedReduceWithGridTransposes) {
  // Same as RowSums but checking the G5 / segmented path stays
  // semantically intact under the layout change (end-to-end).
  NameSource NS;
  auto C = compileSource("fun main (a: [n][m]f32): [n]f32 =\n"
                         "  map (\\(row: [m]f32): f32 ->\n"
                         "         reduce (+) 0.0 row) a",
                         NS);
  ASSERT_OK(C);
  // Execution correctness of transposed layouts is covered by
  // gpusim_device_test; here we only require the pass to have fired.
  EXPECT_GE(C->Locality.CoalescedInputs, 1);
}
