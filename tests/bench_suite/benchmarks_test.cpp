//===- benchmarks_test.cpp - Integration tests for the 16 benchmarks -------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Every benchmark must compile through the full pipeline, pass the
// uniqueness checker, run on the simulated device, and produce the same
// values as the reference interpreter.  The reference configurations must
// also compile and run.  Finally, the headline properties of the paper's
// evaluation must hold: Futhark wins where the paper says it wins, and
// loses where it loses.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Benchmarks.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::bench;

namespace {

class BenchmarkSweep : public ::testing::TestWithParam<std::string> {};

std::vector<std::string> benchmarkNames() {
  std::vector<std::string> Out;
  for (const BenchmarkDef &B : allBenchmarks())
    Out.push_back(B.Name);
  return Out;
}

} // namespace

TEST_P(BenchmarkSweep, CompilesRunsAndMatchesReference) {
  const BenchmarkDef *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  auto R = runBenchmark(*B, CompilerOptions{},
                        gpusim::DeviceParams::gtx780(), /*Verify=*/true);
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  EXPECT_GT(R->Cost.TotalCycles, 0);
  EXPECT_GE(R->Cost.KernelLaunches, 1)
      << "every benchmark must actually use the device";
}

TEST_P(BenchmarkSweep, PlannedPeakNeverExceedsRuntimePeak) {
  // The static memory plan must match or beat the runtime manager's peak
  // residency on every benchmark, while keeping cycles and results
  // bit-identical — the planner only changes byte accounting.
  const BenchmarkDef *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  gpusim::DeviceParams Planned = gpusim::DeviceParams::gtx780();
  gpusim::DeviceParams Runtime = Planned;
  Runtime.UseMemPlan = false;
  auto RPlan = runBenchmark(*B, CompilerOptions{}, Planned);
  ASSERT_TRUE(static_cast<bool>(RPlan)) << RPlan.getError().str();
  auto RRun = runBenchmark(*B, CompilerOptions{}, Runtime);
  ASSERT_TRUE(static_cast<bool>(RRun)) << RRun.getError().str();

  EXPECT_GT(RPlan->Cost.PlannedPeakBytes, 0);
  EXPECT_LE(RPlan->Cost.PeakDeviceBytes, RPlan->Cost.PlannedPeakBytes)
      << "observed residency must stay within the plan's layout";
  EXPECT_LE(RPlan->Cost.PeakDeviceBytes, RRun->Cost.PeakDeviceBytes)
      << "the plan may never do worse than the runtime manager";
  // Note: PlannedPeakBytes itself (the static bound) may exceed the
  // runtime manager's peak — it sums every materialised slab regardless
  // of when each was live, whereas the runtime counter is time-aware.

  EXPECT_DOUBLE_EQ(RPlan->Cost.TotalCycles, RRun->Cost.TotalCycles);
  EXPECT_EQ(RPlan->Cost.KernelLaunches, RRun->Cost.KernelLaunches);
  EXPECT_EQ(RPlan->Cost.TransferredBytes, RRun->Cost.TransferredBytes);
  ASSERT_EQ(RPlan->Outputs.size(), RRun->Outputs.size());
  for (size_t J = 0; J < RPlan->Outputs.size(); ++J)
    EXPECT_TRUE(RPlan->Outputs[J].approxEqual(RRun->Outputs[J]));
}

TEST_P(BenchmarkSweep, ReferenceConfigurationRuns) {
  const BenchmarkDef *B = findBenchmark(GetParam());
  ASSERT_NE(B, nullptr);
  auto R = runBenchmark(*B, refCompilerOptions(B->Ref),
                        gpusim::DeviceParams::gtx780());
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  EXPECT_GT(R->Cost.TotalCycles, 0);
}

INSTANTIATE_TEST_SUITE_P(All, BenchmarkSweep,
                         ::testing::ValuesIn(benchmarkNames()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           return I.param;
                         });

TEST(BenchmarkShape, WinnersAndLosersMatchThePaper) {
  // The paper's qualitative claims: Futhark wins big on NN, wins on
  // K-means/Backprop/Myocyte/Crystal/N-body, and loses on CFD/HotSpot/
  // LavaMD (GTX).  Checked with loose bounds so the test is robust to
  // cost-model adjustments.
  struct Expect {
    const char *Name;
    double Lo, Hi;
  };
  const Expect Cases[] = {
      {"nn", 8, 40},         {"kmeans", 1.5, 6},   {"backprop", 1.3, 5},
      {"myocyte", 2, 10},    {"crystal", 2.5, 10}, {"nbody", 3, 14},
      {"cfd", 0.5, 1.0},     {"hotspot", 0.5, 1.0}, {"lavamd", 0.4, 1.0},
      {"locvolcalib", 0.4, 1.0},
  };
  for (const Expect &E : Cases) {
    const BenchmarkDef *B = findBenchmark(E.Name);
    ASSERT_NE(B, nullptr) << E.Name;
    auto S = measureSpeedup(*B, gpusim::DeviceParams::gtx780());
    ASSERT_TRUE(static_cast<bool>(S)) << E.Name << ": "
                                      << S.getError().str();
    EXPECT_GE(S->Speedup, E.Lo) << E.Name;
    EXPECT_LE(S->Speedup, E.Hi) << E.Name;
  }
}

TEST(BenchmarkShape, NNGainsLessOnTheAMDDevice) {
  // Section 6.1: NN's speedup is smaller on the W8100 because of kernel
  // launch overhead.
  const BenchmarkDef *B = findBenchmark("nn");
  auto G = measureSpeedup(*B, gpusim::DeviceParams::gtx780());
  auto A = measureSpeedup(*B, gpusim::DeviceParams::w8100());
  ASSERT_TRUE(static_cast<bool>(G) && static_cast<bool>(A));
  EXPECT_LT(A->Speedup, G->Speedup / 1.5);
}

TEST(BenchmarkShape, HotSpotCrossoverBetweenDevices) {
  // The reference's time tiling pays off on the NVIDIA-like device but
  // not on the AMD-like one: the speedup crosses 1.0 between them.
  const BenchmarkDef *B = findBenchmark("hotspot");
  auto G = measureSpeedup(*B, gpusim::DeviceParams::gtx780());
  auto A = measureSpeedup(*B, gpusim::DeviceParams::w8100());
  ASSERT_TRUE(static_cast<bool>(G) && static_cast<bool>(A));
  EXPECT_LT(G->Speedup, 1.0);
  EXPECT_GT(A->Speedup, 1.0);
}

TEST(BenchmarkShape, AblationDirectionsHold) {
  // Disabling an optimisation never helps the benchmarks the paper lists
  // as depending on it.
  struct Case {
    const char *Bench;
    enum { Fusion, Coalescing, Tiling } What;
  };
  const Case Cases[] = {{"crystal", Case::Fusion},
                        {"myocyte", Case::Coalescing},
                        {"nbody", Case::Tiling},
                        {"mriq", Case::Tiling}};
  for (const Case &C : Cases) {
    const BenchmarkDef *B = findBenchmark(C.Bench);
    ASSERT_NE(B, nullptr);
    CompilerOptions Off;
    if (C.What == Case::Fusion)
      Off.EnableFusion = false;
    else if (C.What == Case::Coalescing)
      Off.Locality.EnableCoalescing = false;
    else
      Off.Locality.EnableTiling = false;
    auto Full = runBenchmark(*B, CompilerOptions{},
                             gpusim::DeviceParams::gtx780());
    auto Disabled = runBenchmark(*B, Off, gpusim::DeviceParams::gtx780());
    ASSERT_TRUE(static_cast<bool>(Full) && static_cast<bool>(Disabled))
        << C.Bench;
    EXPECT_GT(Disabled->Cost.TotalCycles, Full->Cost.TotalCycles * 1.05)
        << C.Bench << ": disabling the optimisation should cost >5%";
  }
}
