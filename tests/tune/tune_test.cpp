//===- tune_test.cpp - Autotuner contracts ---------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// The autotuner's contracts: determinism (same seed, same descent path,
// same answer), the bit-identity hard constraint (no candidate that
// changes the outputs is ever accepted — and on this compiler none may
// even exist, so OutputMismatches must be zero), and monotonicity (the
// tuned configuration is never worse than the baseline, because the
// baseline is in the lattice).
//
//===----------------------------------------------------------------------===//

#include "tune/Tune.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::tune;

namespace {

/// A deliberately small benchmark so the whole lattice walk stays cheap:
/// a narrow histogram (sensitive to HistLocalWidthMax and workgroup
/// size) feeding a transpose-flavoured reduction (sensitive to tiling).
bench::BenchmarkDef tinyBench() {
  bench::BenchmarkDef B;
  B.Name = "tune-tiny";
  B.Suite = "test";
  B.Source =
      "fun main (n: i32) (xs: [n]i32): i32 =\n"
      "  let bins = map (\\(x: i32): i32 -> x % 64) xs\n"
      "  let ones = map (\\(x: i32): i32 -> 1) xs\n"
      "  let h = reduce_by_index (replicate 64 0) (+) 0 bins ones\n"
      "  in reduce (+) 0 h\n";
  B.MakeInputs = [] {
    std::vector<PrimValue> Elems;
    for (int64_t I = 0; I < 512; ++I)
      Elems.push_back(PrimValue::makeI32(static_cast<int32_t>(I * 37 % 911)));
    return std::vector<Value>{
        Value::scalar(PrimValue::makeI32(512)),
        Value::array(ScalarKind::I32, {512}, std::move(Elems))};
  };
  return B;
}

TuneOptions quick() {
  TuneOptions O;
  O.Rounds = 1;
  return O;
}

} // namespace

TEST(TuneTest, BaselineIsNeverBeatenByWorse) {
  auto R = tuneBenchmark(tinyBench(), quick());
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  EXPECT_GT(R->BaselineCycles, 0);
  EXPECT_LE(R->BestCycles, R->BaselineCycles);
  EXPECT_GT(R->Evals, 1);
  EXPECT_EQ(R->OutputMismatches, 0)
      << "a device knob changed the program's outputs";
}

TEST(TuneTest, SameSeedSameAnswer) {
  auto A = tuneBenchmark(tinyBench(), quick());
  auto B = tuneBenchmark(tinyBench(), quick());
  ASSERT_TRUE(static_cast<bool>(A)) << A.getError().str();
  ASSERT_TRUE(static_cast<bool>(B)) << B.getError().str();
  EXPECT_TRUE(A->Best == B->Best) << A->Best.str() << " vs " << B->Best.str();
  EXPECT_EQ(A->BestCycles, B->BestCycles);
  EXPECT_EQ(A->Evals, B->Evals);
}

TEST(TuneTest, PipelineOracleAlsoHoldsTheConstraint) {
  TuneOptions O = quick();
  O.Device.CostModelName = "pipeline";
  auto R = tuneBenchmark(tinyBench(), O);
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  EXPECT_LE(R->BestCycles, R->BaselineCycles);
  EXPECT_EQ(R->OutputMismatches, 0);
}

TEST(TuneTest, JsonReportIsWellFormed) {
  auto R = tuneBenchmark(tinyBench(), quick());
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  std::string J = toJson({*R});
  EXPECT_NE(J.find("\"bench\": \"tune-tiny\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"baseline_cycles\""), std::string::npos);
  EXPECT_NE(J.find("\"best\""), std::string::npos);
  EXPECT_NE(J.find("\"output_mismatches\": 0"), std::string::npos) << J;
}
