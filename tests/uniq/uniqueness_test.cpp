//===- uniqueness_test.cpp - Tests for the uniqueness type system ----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Golden tests for Section 3: the accepted/rejected programs follow the
// paper's examples (the modify function, Fig 4, Fig 7).
//
//===----------------------------------------------------------------------===//

#include "uniq/Uniqueness.h"

#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;

namespace {

/// Compiles source and runs the uniqueness checker.
MaybeError checkSource(const std::string &Src) {
  NameSource NS;
  auto P = frontend(Src, NS);
  EXPECT_TRUE(static_cast<bool>(P)) << P.getError().str();
  if (!P)
    return CompilerError("frontend failed");
  return checkProgramUniqueness(*P);
}

#define EXPECT_UNIQ_OK(SRC)                                                    \
  do {                                                                         \
    auto Err_ = checkSource(SRC);                                              \
    EXPECT_FALSE(static_cast<bool>(Err_))                                      \
        << "unexpected error: " << Err_.getError().str();                      \
  } while (false)

#define EXPECT_UNIQ_ERR(SRC, SUBSTR)                                           \
  do {                                                                         \
    auto Err_ = checkSource(SRC);                                              \
    ASSERT_TRUE(static_cast<bool>(Err_)) << "expected a uniqueness error";     \
    EXPECT_NE(Err_.getError().Message.find(SUBSTR), std::string::npos)         \
        << "actual error: " << Err_.getError().Message;                        \
  } while (false)

} // namespace

TEST(UniquenessTest, ModifyFunctionFromSection3) {
  // The paper's canonical example: a unique parameter updated in place.
  EXPECT_UNIQ_OK(
      "fun modify (n: i32) (a: *[n]i32) (i: i32) (x: [n]i32): *[n]i32 =\n"
      "  a with [i] <- a[i] + x[i]\n"
      "fun main (n: i32) (a: *[n]i32) (i: i32) (x: [n]i32): *[n]i32 =\n"
      "  modify n a i x");
}

TEST(UniquenessTest, UpdatingNonUniqueParameterFails) {
  EXPECT_UNIQ_ERR("fun main (n: i32) (a: [n]i32): [n]i32 =\n"
                  "  a with [0] <- 1",
                  "not consumable");
}

TEST(UniquenessTest, UpdatingFreshArrayIsFine) {
  EXPECT_UNIQ_OK("fun main (n: i32): [n]i32 =\n"
                 "  let a = replicate n 0\n"
                 "  in a with [0] <- 1");
}

TEST(UniquenessTest, UseAfterConsumeFails) {
  EXPECT_UNIQ_ERR("fun main (n: i32): i32 =\n"
                  "  let a = replicate n 0\n"
                  "  let b = a with [0] <- 1\n"
                  "  in a[1]",
                  "consumed");
}

TEST(UniquenessTest, UseOfAliasAfterConsumeFails) {
  // c aliases a (slice); consuming a kills c too.
  EXPECT_UNIQ_ERR("fun main (n: i32): i32 =\n"
                  "  let a = replicate n (replicate n 0)\n"
                  "  let c = a[0]\n"
                  "  let b = a with [0, 0] <- 1\n"
                  "  in c[0]",
                  "consumed");
}

TEST(UniquenessTest, ScalarReadDoesNotAlias) {
  // ALIAS-INDEXARRAY: a scalar read is free of aliases, so it survives the
  // consumption of its source array.
  EXPECT_UNIQ_OK("fun main (n: i32): i32 =\n"
                 "  let a = replicate n 0\n"
                 "  let x = a[0]\n"
                 "  let b = a with [0] <- 1\n"
                 "  in x + b[0]");
}

TEST(UniquenessTest, DoubleConsumeFails) {
  EXPECT_UNIQ_ERR("fun modify (n: i32) (a: *[n]i32): *[n]i32 =\n"
                  "  a with [0] <- 1\n"
                  "fun main (n: i32): i32 =\n"
                  "  let a = replicate n 0\n"
                  "  let b = modify n a\n"
                  "  let c = modify n a\n"
                  "  in b[0] + c[0]",
                  "consumed");
}

TEST(UniquenessTest, CopyBreaksAliasing) {
  EXPECT_UNIQ_OK("fun main (n: i32) (a: [n]i32): i32 =\n"
                 "  let c = copy a\n"
                 "  let b = c with [0] <- 1\n"
                 "  in a[0] + b[0]");
}

TEST(UniquenessTest, MapLambdaMayConsumeItsParameterFig7) {
  // Fig 7 (first part): "This one is OK and considered to consume 'as'."
  EXPECT_UNIQ_OK("fun main (n: i32) (m: i32): [n][m]i32 =\n"
                 "  let as = replicate n (replicate m 0)\n"
                 "  in map (\\(a: [m]i32): [m]i32 -> a with [0] <- 2) as");
}

TEST(UniquenessTest, MapLambdaConsumingItsParameterConsumesInput) {
  // ... and because the map consumes as, as is dead afterwards.
  EXPECT_UNIQ_ERR(
      "fun main (n: i32) (m: i32): i32 =\n"
      "  let as = replicate n (replicate m 0)\n"
      "  let bs = map (\\(a: [m]i32): [m]i32 -> a with [0] <- 2) as\n"
      "  in as[0, 0]",
      "consumed");
}

TEST(UniquenessTest, MapLambdaMustNotConsumeFreeVariableFig7) {
  // Fig 7 (second part): "This one is NOT safe, since d is not a formal
  // parameter."
  EXPECT_UNIQ_ERR(
      "fun main (n: i32) (m: i32): [n][m]i32 =\n"
      "  let d = iota m\n"
      "  in map (\\(i: i32): [m]i32 -> d with [i] <- 2) (iota n)",
      "free variable");
}

TEST(UniquenessTest, LoopMayConsumeMergeParameterFig4a) {
  EXPECT_UNIQ_OK(
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  loop (counts = replicate k 0) for i < n do\n"
      "    let cluster = membership[i]\n"
      "    in counts with [cluster] <- counts[cluster] + 1");
}

TEST(UniquenessTest, LoopMustNotConsumeFreeVariable) {
  EXPECT_UNIQ_ERR("fun main (n: i32): [n]i32 =\n"
                  "  let d = replicate n 0\n"
                  "  let r = loop (x = 0) for i < n do\n"
                  "    let d2 = d with [i] <- x\n"
                  "    in x + d2[0]\n"
                  "  in replicate n r",
                  "outside the loop");
}

TEST(UniquenessTest, StreamRedAccumulatorUpdateFig4c) {
  // Fig 4c: the accumulator is declared unique and updated in place.
  EXPECT_UNIQ_OK(
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  stream_red (map (+))\n"
      "    (\\(acc: *[k]i32) (chunk: [chunksize]i32): [k]i32 ->\n"
      "       loop (acc) for i < chunksize do\n"
      "         let cluster = chunk[i]\n"
      "         in acc with [cluster] <- acc[cluster] + 1)\n"
      "    (replicate k 0) membership");
}

TEST(UniquenessTest, ReduceOperatorMustNotConsume) {
  EXPECT_UNIQ_ERR(
      "fun main (n: i32) (k: i32): [k]i32 =\n"
      "  let zeros = replicate n (replicate k 0)\n"
      "  in reduce (\\(x: [k]i32) (y: [k]i32): [k]i32 ->\n"
      "               x with [0] <- y[0])\n"
      "            (replicate k 0) zeros",
      "must not consume");
}

TEST(UniquenessTest, PassingConsumedArrayToUniqueParamFails) {
  EXPECT_UNIQ_ERR("fun modify (n: i32) (a: *[n]i32): *[n]i32 =\n"
                  "  a with [0] <- 1\n"
                  "fun main (n: i32) (x: [n]i32): i32 =\n"
                  "  let a = replicate n 0\n"
                  "  let b = modify n a\n"
                  "  in a[0]",
                  "consumed");
}

TEST(UniquenessTest, PassingNonUniqueParamAsUniqueArgFails) {
  EXPECT_UNIQ_ERR("fun modify (n: i32) (a: *[n]i32): *[n]i32 =\n"
                  "  a with [0] <- 1\n"
                  "fun main (n: i32) (x: [n]i32): *[n]i32 =\n"
                  "  modify n x",
                  "not consumable");
}

TEST(UniquenessTest, UniqueResultMustNotAliasNonUniqueParam) {
  EXPECT_UNIQ_ERR("fun main (n: i32) (x: [n]i32): *[n]i32 = x",
                  "aliases non-unique parameter");
}

TEST(UniquenessTest, NonUniqueResultMayAliasParam) {
  EXPECT_UNIQ_OK("fun main (n: i32) (x: [n]i32): [n]i32 = x");
}

TEST(UniquenessTest, SequentialObservationThenConsumptionIsFine) {
  // Reading before updating in the same iteration is the canonical
  // read-modify-write; the ANF ordering places the read first.
  EXPECT_UNIQ_OK("fun main (n: i32): [n]i32 =\n"
                 "  let a = replicate n 0\n"
                 "  let a[0] = a[0] + 1\n"
                 "  in a");
}

TEST(UniquenessTest, BranchConsumptionPropagates) {
  EXPECT_UNIQ_ERR("fun main (n: i32) (c: bool): i32 =\n"
                  "  let a = replicate n 0\n"
                  "  let b = if c then a with [0] <- 1 else replicate n 2\n"
                  "  in a[0]",
                  "consumed");
}
