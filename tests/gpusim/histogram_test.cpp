//===- histogram_test.cpp - SegHist lowering and atomic accounting ---------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// The reduce_by_index device model: the local-subhistogram vs
// global-atomics lowering switch at HistLocalWidthMax (results must be
// bit-identical either side of the boundary, only the cost profile may
// change), and exactly-once conflict accounting under fault-injected
// retries — launch failures never start the kernel and must charge no
// atomic traffic, while detected-corruption retries run to completion and
// must charge every attempt.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Device.h"
#include "gpusim/Faults.h"

#include "driver/Compiler.h"
#include "interp/Interp.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;
using namespace fut::gpusim;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}

/// A counting histogram of fixed width W; the bin map fuses into the
/// SegHist kernel, so the flattened program is a single kernel.
std::string histSrc(int64_t W) {
  std::string Ws = std::to_string(W);
  return "fun main (n: i32) (xs: [n]i32): [" + Ws + "]i32 =\n"
         "  let bins = map (\\(x: i32): i32 -> x % " + Ws + ") xs\n"
         "  let ones = map (\\(x: i32): i32 -> 1) xs\n"
         "  in reduce_by_index (replicate " + Ws + " 0) (+) 0 bins ones\n";
}

/// Highly colliding input: every element lands in one of three bins.
std::vector<Value> collidingArgs(int64_t N) {
  std::vector<int64_t> Xs;
  for (int64_t I = 0; I < N; ++I)
    Xs.push_back(I % 3);
  return {iv(static_cast<int32_t>(N)), ivec(Xs)};
}

Program compiled(const std::string &Src) {
  NameSource NS;
  auto C = compileSource(Src, NS);
  EXPECT_TRUE(static_cast<bool>(C)) << C.getError().str();
  return C ? std::move(C->P) : Program();
}

std::vector<Value> reference(const std::string &Src,
                             const std::vector<Value> &Args) {
  NameSource NS;
  auto Ref = frontend(Src, NS);
  EXPECT_TRUE(static_cast<bool>(Ref)) << Ref.getError().str();
  Interpreter I(*Ref);
  auto Want = I.run(Args);
  EXPECT_TRUE(static_cast<bool>(Want)) << Want.getError().str();
  return Want ? Want.take() : std::vector<Value>();
}

void expectOutputsEqual(const std::vector<Value> &Got,
                        const std::vector<Value> &Want) {
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_TRUE(Got[I] == Want[I])
        << "result " << I << ":\ngot:  " << Got[I].str()
        << "\nwant: " << Want[I].str();
}

} // namespace

//===----------------------------------------------------------------------===//
// The lowering switch at HistLocalWidthMax
//===----------------------------------------------------------------------===//

TEST(HistLoweringTest, BoundaryWidthsAreBitIdenticalEitherStrategy) {
  // Widths one below, at, and one above a tiny threshold: the strategy
  // flips between width 8 and 9, the results never do.
  DeviceParams Small = DeviceParams::gtx780();
  Small.HistLocalWidthMax = 8;
  DeviceParams Global = DeviceParams::gtx780();
  Global.HistLocalWidthMax = 0; // forces global atomics at any width

  std::vector<Value> Args = collidingArgs(256);
  for (int64_t W : {int64_t(7), int64_t(8), int64_t(9)}) {
    std::string Src = histSrc(W);
    Program P = compiled(Src);
    auto A = Device(Small).runMain(P, Args);
    auto B = Device(Global).runMain(P, Args);
    ASSERT_OK(A);
    ASSERT_OK(B);
    std::vector<Value> Want = reference(Src, Args);
    expectOutputsEqual(A->Outputs, Want);
    expectOutputsEqual(B->Outputs, Want);
  }
}

TEST(HistLoweringTest, StrategiesHaveDistinctCostProfiles) {
  // At and below the threshold the local strategy owns the kernel:
  // scratchpad traffic, a coalesced merge, zero conflicts.  One past it
  // the global strategy pays per-collision serialisation on this
  // three-bin-heavy input.
  DeviceParams Small = DeviceParams::gtx780();
  Small.HistLocalWidthMax = 8;

  std::vector<Value> Args = collidingArgs(256);
  for (int64_t W : {int64_t(7), int64_t(8)}) {
    Program P = compiled(histSrc(W));
    auto R = Device(Small).runMain(P, Args);
    ASSERT_OK(R);
    EXPECT_GT(R->Cost.AtomicTransactions, 0) << "merge traffic at W=" << W;
    EXPECT_EQ(R->Cost.AtomicConflicts, 0)
        << "local subhistograms must not charge global conflicts";
    EXPECT_GT(R->Cost.LocalAccesses, 0);
  }

  Program P9 = compiled(histSrc(9));
  auto G = Device(Small).runMain(P9, Args);
  ASSERT_OK(G);
  EXPECT_GT(G->Cost.AtomicConflicts, 0)
      << "colliding input under global atomics must serialise";

  // The same width under a local-capable device charges no conflicts:
  // only the threshold moved, so the profile difference is the strategy.
  DeviceParams Big = DeviceParams::gtx780();
  Big.HistLocalWidthMax = 9;
  auto L = Device(Big).runMain(P9, Args);
  ASSERT_OK(L);
  EXPECT_EQ(L->Cost.AtomicConflicts, 0);
  EXPECT_NE(L->Cost.AtomicTransactions, G->Cost.AtomicTransactions);
  expectOutputsEqual(L->Outputs, G->Outputs);
}

//===----------------------------------------------------------------------===//
// Exactly-once atomic accounting under fault-injected retries
//===----------------------------------------------------------------------===//

TEST(HistFaultsTest, FailedLaunchesChargeNoAtomics) {
  // A transient launch failure never starts the kernel, so however many
  // retries the fault stream forces, the atomic counters must equal the
  // fault-free run's.
  std::string Src = histSrc(16);
  Program P = compiled(Src);
  std::vector<Value> Args = collidingArgs(256);

  auto Clean = Device(DeviceParams::gtx780()).runMain(P, Args);
  ASSERT_OK(Clean);
  EXPECT_GT(Clean->Cost.AtomicTransactions, 0);

  ResilienceParams RS;
  RS.InterpFallback = false;
  RS.MaxRetries = 20;
  RS.Faults.LaunchFailRate = 0.5;
  RS.Faults.Seed = 5;
  auto Faulty = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  ASSERT_OK(Faulty);
  EXPECT_GT(Faulty->Cost.RetriedLaunches, 0)
      << "seed 5 must inject at least one launch failure";
  EXPECT_EQ(Faulty->Cost.AtomicTransactions, Clean->Cost.AtomicTransactions);
  EXPECT_EQ(Faulty->Cost.AtomicConflicts, Clean->Cost.AtomicConflicts);
  expectOutputsEqual(Faulty->Outputs, reference(Src, Args));
}

TEST(HistFaultsTest, CorruptedRunsChargeEveryAttemptExactlyOnce) {
  // Detected corruption runs the kernel to completion before discarding
  // the result: every attempt charges its atomic traffic exactly once, so
  // the faulted counters are an integer multiple of the clean ones —
  // clean count times (1 + retries of the single histogram kernel).  The
  // colliding input is already in range for 16 bins, so it serves as both
  // index and value and the program flattens to exactly one kernel.
  std::string Src =
      "fun main (n: i32) (xs: [n]i32): [16]i32 =\n"
      "  reduce_by_index (replicate 16 0) (+) 0 xs xs\n";
  Program P = compiled(Src);
  std::vector<Value> Args = collidingArgs(256);

  auto Clean = Device(DeviceParams::gtx780()).runMain(P, Args);
  ASSERT_OK(Clean);
  ASSERT_GT(Clean->Cost.AtomicTransactions, 0);
  ASSERT_EQ(Clean->Cost.KernelLaunches, 1)
      << "one SegHist kernel, so every retry below belongs to it";

  ResilienceParams RS;
  RS.InterpFallback = false;
  RS.MaxRetries = 20;
  RS.Faults.CorruptRate = 0.5;
  RS.Faults.Seed = 3;
  auto Faulty = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  ASSERT_OK(Faulty);
  ASSERT_GT(Faulty->Cost.RetriedLaunches, 0)
      << "seed 3 must corrupt at least one result";
  int64_t Attempts = 1 + Faulty->Cost.RetriedLaunches;
  EXPECT_EQ(Faulty->Cost.AtomicTransactions,
            Clean->Cost.AtomicTransactions * Attempts);
  EXPECT_EQ(Faulty->Cost.AtomicConflicts,
            Clean->Cost.AtomicConflicts * Attempts);
  expectOutputsEqual(Faulty->Outputs, reference(Src, Args));
}

TEST(HistFaultsTest, AtomicCountersAreDeterministic) {
  std::string Src = histSrc(16);
  Program P = compiled(Src);
  std::vector<Value> Args = collidingArgs(256);
  ResilienceParams RS;
  RS.InterpFallback = false;
  RS.MaxRetries = 20;
  RS.Faults.CorruptRate = 0.5;
  RS.Faults.Seed = 3;
  auto A = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  auto B = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  ASSERT_OK(A);
  ASSERT_OK(B);
  EXPECT_EQ(A->Cost.AtomicTransactions, B->Cost.AtomicTransactions);
  EXPECT_EQ(A->Cost.AtomicConflicts, B->Cost.AtomicConflicts);
  EXPECT_EQ(A->Cost.TotalCycles, B->Cost.TotalCycles);
}
