//===- costmodel_test.cpp - Pluggable cost-model tests ---------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// The CostModel seam: the roofline model must reproduce the historical
// inline formula exactly (byte-identity of default cost lines rests on
// it), the pipeline model must be a refinement that never undercuts the
// roofline on the same counters, model selection must be a typed Config
// error for unknown names, device over-reservation must be a typed Config
// error instead of a silently clamped 1-byte card, and the two models must
// agree bit-for-bit on outputs and on every model-independent counter.
//
//===----------------------------------------------------------------------===//

#include "gpusim/CostModel.h"
#include "gpusim/Device.h"

#include "driver/Compiler.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;
using namespace fut::gpusim;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}

/// Compiles once; runs on the device under \p DP.
ErrorOr<RunResult> run(const std::string &Src,
                       const std::vector<Value> &Args,
                       const DeviceParams &DP) {
  NameSource NS;
  auto C = compileSource(Src, NS, CompilerOptions());
  EXPECT_TRUE(static_cast<bool>(C)) << C.getError().str();
  if (!C)
    return C.getError();
  DeviceRunOptions RO;
  RO.Device = DP;
  RO.MemPlan = &C->MemPlan;
  return runOnDevice(C->P, Args, RO);
}

const char *kMapSrc =
    "fun main (n: i32) (xs: [n]i32): [n]i32 = map (+1) xs";

const char *kDivergentSrc =
    "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
    "  map (\\(x: i32): i32 ->\n"
    "         if x % 2 == 0 then x else x * 3 + x * x - 1) xs\n";

const char *kHistSrc =
    "fun main (n: i32) (xs: [n]i32): [32]i32 =\n"
    "  let bins = map (\\(x: i32): i32 -> x % 32) xs\n"
    "  let ones = map (\\(x: i32): i32 -> 1) xs\n"
    "  in reduce_by_index (replicate 32 0) (+) 0 bins ones\n";

} // namespace

//===----------------------------------------------------------------------===//
// The model seam itself
//===----------------------------------------------------------------------===//

TEST(CostModelTest, ByNameRegistry) {
  EXPECT_EQ(CostModel::byName("roofline"), &CostModel::roofline());
  EXPECT_EQ(CostModel::byName("pipeline"), &CostModel::pipeline());
  EXPECT_EQ(CostModel::byName("warp-speed"), nullptr);
  EXPECT_EQ(CostModel::byName(""), nullptr);
  EXPECT_STREQ(CostModel::roofline().name(), "roofline");
  EXPECT_STREQ(CostModel::pipeline().name(), "pipeline");
}

TEST(CostModelTest, RooflineMatchesInlineFormula) {
  DeviceParams P = DeviceParams::gtx780();
  CostReport K;
  K.ComputeOps = 123456;
  K.GlobalTransactions = 2048;
  K.AtomicTransactions = 17;
  K.AtomicConflicts = 5;
  K.LocalAccesses = 333;
  K.PrivateAccesses = 98765;
  K.TiledElementBytes = 1 << 16;
  KernelProfile Prof;

  // The exact historical expression, term for term — EXPECT_EQ, not
  // EXPECT_NEAR: byte-identity of default cost lines rests on this.
  double TiledTx = static_cast<double>(K.TiledElementBytes) /
                   std::max(1, P.tileWidth()) / P.SegmentBytes;
  double ComputeT = K.ComputeOps / P.ComputeOpsPerCycle;
  double MemT = (K.GlobalTransactions + TiledTx + K.AtomicTransactions +
                 K.AtomicConflicts) /
                P.GlobalTxPerCycle;
  double LocalT = K.LocalAccesses / P.LocalAccessesPerCycle;
  double PrivT = K.PrivateAccesses / P.PrivateAccessesPerCycle;
  double Expect = P.LaunchCycles +
                  std::max(std::max(ComputeT, MemT), std::max(LocalT, PrivT));

  EXPECT_EQ(CostModel::roofline().kernelCycles(P, K, Prof), Expect);
}

TEST(CostModelTest, TileWidthZeroFollowsWorkgroupSize) {
  DeviceParams P = DeviceParams::gtx780();
  P.TileWidth = 0;
  EXPECT_EQ(P.tileWidth(), P.WorkgroupSize);
  P.TileWidth = 128;
  EXPECT_EQ(P.tileWidth(), 128);
}

TEST(CostModelTest, PipelineNeverUndercutsRoofline) {
  // Occupancy <= 1 and the added stall terms only ever inflate a term, so
  // on identical counters the pipeline estimate dominates the roofline.
  DeviceParams P = DeviceParams::gtx780();
  CostReport K;
  K.ComputeOps = 50000;
  K.GlobalTransactions = 1000;
  K.LocalAccesses = 200;
  K.PrivateAccesses = 400;
  for (int64_t Warps : {int64_t(1), int64_t(4), int64_t(1000)}) {
    KernelProfile Prof;
    Prof.Warps = Warps;
    Prof.WarpIssueOps = K.ComputeOps / 32;
    Prof.CoalescerExcessTx = 64;
    Prof.BankConflictExtra = 16;
    EXPECT_GE(CostModel::pipeline().kernelCycles(P, K, Prof),
              CostModel::roofline().kernelCycles(P, K, Prof))
        << "warps=" << Warps;
  }
}

TEST(CostModelTest, PipelineReducesToRooflineAtSaturation) {
  // Uniform warps saturating every scheduler slot, no stalls, no slack:
  // the pipeline model degenerates to the roofline exactly.
  DeviceParams P = DeviceParams::gtx780();
  P.PipelineStageSlack = 0;
  CostReport K;
  K.ComputeOps = 32000; // 1000 uniform full warps, 1 op per lane step
  K.GlobalTransactions = 10;
  KernelProfile Prof;
  Prof.Warps = 100000; // >= NumSMs * WarpSchedulerSlots
  Prof.WarpIssueOps = K.ComputeOps / 32;
  EXPECT_EQ(CostModel::pipeline().kernelCycles(P, K, Prof),
            CostModel::roofline().kernelCycles(P, K, Prof));
}

//===----------------------------------------------------------------------===//
// Typed Config errors
//===----------------------------------------------------------------------===//

TEST(CostModelTest, UnknownCostModelIsConfigError) {
  DeviceParams DP = DeviceParams::gtx780();
  DP.CostModelName = "warp-speed";
  auto R = run(kMapSrc, {iv(64), ivec(randomInts(64, 1))}, DP);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.getError().Kind, ErrorKind::Config);
  EXPECT_NE(R.getError().Message.find("warp-speed"), std::string::npos);
}

TEST(CostModelTest, OverReservationIsConfigError) {
  // The old behaviour silently clamped an over-reserved device to a
  // 1-byte effective capacity and let the run OOM (or worse, crawl
  // through transfers); now it is rejected before launch.
  DeviceParams DP = DeviceParams::gtx780();
  DP.ReservedBytes = DP.DeviceMemBytes; // reservation == capacity
  auto R = run(kMapSrc, {iv(64), ivec(randomInts(64, 2))}, DP);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.getError().Kind, ErrorKind::Config);
  EXPECT_NE(R.getError().Message.find("over-reserved"), std::string::npos);

  DP.ReservedBytes = DP.DeviceMemBytes + 12345; // beyond capacity
  auto R2 = run(kMapSrc, {iv(64), ivec(randomInts(64, 2))}, DP);
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_EQ(R2.getError().Kind, ErrorKind::Config);
}

TEST(CostModelTest, NegativeReservationIsConfigError) {
  DeviceParams DP = DeviceParams::gtx780();
  DP.ReservedBytes = -1;
  auto R = run(kMapSrc, {iv(64), ivec(randomInts(64, 3))}, DP);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.getError().Kind, ErrorKind::Config);
}

TEST(CostModelTest, ValidReservationStillRuns) {
  DeviceParams DP = DeviceParams::gtx780();
  DP.ReservedBytes = DP.DeviceMemBytes / 2;
  auto R = run(kMapSrc, {iv(64), ivec(randomInts(64, 4))}, DP);
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
}

//===----------------------------------------------------------------------===//
// Cross-model agreement
//===----------------------------------------------------------------------===//

TEST(CostModelTest, CrossModelBitIdenticalOutputsAndCounters) {
  for (const char *Src : {kMapSrc, kDivergentSrc, kHistSrc}) {
    std::vector<Value> Args = {iv(256), ivec(randomInts(256, 5))};
    DeviceParams Roof = DeviceParams::gtx780();
    Roof.CostModelName = "roofline";
    DeviceParams Pipe = Roof;
    Pipe.CostModelName = "pipeline";

    auto R = run(Src, Args, Roof);
    auto P = run(Src, Args, Pipe);
    ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
    ASSERT_TRUE(static_cast<bool>(P)) << P.getError().str();

    ASSERT_EQ(R->Outputs.size(), P->Outputs.size());
    for (size_t I = 0; I < R->Outputs.size(); ++I)
      EXPECT_TRUE(R->Outputs[I] == P->Outputs[I])
          << "result " << I << " diverged between cost models";

    const CostReport &RC = R->Cost;
    const CostReport &PC = P->Cost;
    EXPECT_EQ(RC.KernelLaunches, PC.KernelLaunches);
    EXPECT_EQ(RC.GlobalTransactions, PC.GlobalTransactions);
    EXPECT_EQ(RC.TransferredBytes, PC.TransferredBytes);
    EXPECT_EQ(RC.AtomicTransactions, PC.AtomicTransactions);
    EXPECT_EQ(RC.AtomicConflicts, PC.AtomicConflicts);
    EXPECT_EQ(RC.LocalAccesses, PC.LocalAccesses);
    EXPECT_EQ(RC.CoalescedTransactions + RC.ScatteredTransactions,
              RC.GlobalTransactions);
    EXPECT_EQ(PC.CoalescedTransactions + PC.ScatteredTransactions,
              PC.GlobalTransactions);

    // Both runs price both models per launch, so the calibration pair is
    // recorded symmetrically regardless of which model was charged.
    EXPECT_EQ(RC.RooflineKernelCycles, PC.RooflineKernelCycles);
    EXPECT_EQ(RC.PipelineKernelCycles, PC.PipelineKernelCycles);
    EXPECT_GT(RC.RooflineKernelCycles, 0);
    EXPECT_GE(RC.PipelineKernelCycles, RC.RooflineKernelCycles);
  }
}

TEST(CostModelTest, RooflineChargesRooflineAndPipelineChargesPipeline) {
  std::vector<Value> Args = {iv(128), ivec(randomInts(128, 6))};
  DeviceParams Roof = DeviceParams::gtx780();
  DeviceParams Pipe = Roof;
  Pipe.CostModelName = "pipeline";
  auto R = run(kDivergentSrc, Args, Roof);
  auto P = run(kDivergentSrc, Args, Pipe);
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  ASSERT_TRUE(static_cast<bool>(P)) << P.getError().str();
  EXPECT_EQ(R->Cost.CostModelUsed, "roofline");
  EXPECT_EQ(P->Cost.CostModelUsed, "pipeline");
  EXPECT_EQ(R->Cost.KernelCycles, R->Cost.RooflineKernelCycles);
  EXPECT_EQ(P->Cost.KernelCycles, P->Cost.PipelineKernelCycles);
}

//===----------------------------------------------------------------------===//
// The pipeline profile's observables
//===----------------------------------------------------------------------===//

TEST(CostModelTest, UniformMapHasNoDivergentWarps) {
  auto R = run(kMapSrc, {iv(256), ivec(randomInts(256, 7))},
               DeviceParams::gtx780());
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  EXPECT_GT(R->Cost.WarpsSimulated, 0);
  EXPECT_EQ(R->Cost.DivergentWarps, 0);
}

TEST(CostModelTest, BranchyMapHasDivergentWarps) {
  // Mixed parity inside every warp: the two branch arms cost different op
  // counts, so lane op counts differ within a warp.
  std::vector<int64_t> Xs;
  for (int64_t I = 0; I < 256; ++I)
    Xs.push_back(I);
  auto R = run(kDivergentSrc, {iv(256), ivec(Xs)}, DeviceParams::gtx780());
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  EXPECT_GT(R->Cost.WarpsSimulated, 0);
  EXPECT_GT(R->Cost.DivergentWarps, 0);
}

TEST(CostModelTest, NarrowLocalHistogramHasBankConflicts) {
  // 32 bins onto 32 banks with random keys: collisions within a warp
  // batch are near-certain on the local-subhistogram path.
  auto R = run(kHistSrc, {iv(1024), ivec(randomInts(1024, 8, 0, 1 << 20))},
               DeviceParams::gtx780());
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  EXPECT_GT(R->Cost.BankConflictExtra, 0);
}

TEST(CostModelTest, CostLineMentionsModelOnlyWhenNotDefault) {
  std::vector<Value> Args = {iv(64), ivec(randomInts(64, 9))};
  DeviceParams Roof = DeviceParams::gtx780();
  DeviceParams Pipe = Roof;
  Pipe.CostModelName = "pipeline";
  auto R = run(kMapSrc, Args, Roof);
  auto P = run(kMapSrc, Args, Pipe);
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  ASSERT_TRUE(static_cast<bool>(P)) << P.getError().str();
  // Default cost lines must stay byte-identical to the pre-CostModel
  // output, so the clause only appears under a non-default model.
  EXPECT_EQ(R->Cost.str().find("costmodel="), std::string::npos);
  EXPECT_NE(P->Cost.str().find("costmodel=pipeline"), std::string::npos);
}
