//===- segmented_test.cpp - Segmented kernel edge cases ---------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Exercises the segmented-reduction/scan machinery (footnote 5 / rule G5)
// on the simulated device: empty inputs, single elements, non-commutative
// operators, per-segment independence, and the two thread mappings
// (thread-per-segment with a grid, parallel-within-segment without).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gpusim/Device.h"
#include "interp/Interp.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;
using namespace fut::gpusim;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}

std::vector<Value> runOnDevice(const std::string &Src,
                               const std::vector<Value> &Args) {
  NameSource NS;
  auto C = compileSource(Src, NS);
  EXPECT_TRUE(static_cast<bool>(C)) << C.getError().str();
  if (!C)
    return {};
  Device D;
  auto R = D.runMain(C->P, Args);
  EXPECT_TRUE(static_cast<bool>(R)) << R.getError().str();
  return R ? std::move(R->Outputs) : std::vector<Value>{};
}

} // namespace

TEST(SegmentedTest, EmptyReduceYieldsNeutral) {
  auto R = runOnDevice(
      "fun main (n: i32) (xs: [n]i32): i32 = reduce (+) 0 xs",
      {iv(0), ivec({})});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0], iv(0));
}

TEST(SegmentedTest, SingleElementReduce) {
  auto R = runOnDevice(
      "fun main (n: i32) (xs: [n]i32): i32 = reduce (+) 0 xs",
      {iv(1), ivec({42})});
  EXPECT_EQ(R[0], iv(42));
}

TEST(SegmentedTest, EmptyScanYieldsEmpty) {
  auto R = runOnDevice(
      "fun main (n: i32) (xs: [n]i32): [n]i32 = scan (+) 0 xs",
      {iv(0), ivec({})});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].numElems(), 0);
}

TEST(SegmentedTest, NonCommutativeOperatorOrderPreserved) {
  // Matrix-like 2x2 "operator" encoded on pairs would be overkill; use
  // string-concat-like order sensitivity via f(a,b) = a*10 + b on digits.
  // Associative? (a*10+b)*10+c == a*100+b*10+c: yes on digit streams with
  // neutral 0 (leading zeros vanish).
  auto R = runOnDevice(
      "fun main (n: i32) (xs: [n]i32): i32 =\n"
      "  reduce (\\(a: i32) (b: i32): i32 -> a * 10 + b) 0 xs",
      {iv(4), ivec({1, 2, 3, 4})});
  EXPECT_EQ(R[0], iv(1234));
}

TEST(SegmentedTest, SegmentsAreIndependent) {
  // Per-row maxima of a matrix with adversarial values.
  auto R = runOnDevice(
      "fun main (a: [n][m]i32): [n]i32 =\n"
      "  map (\\(row: [m]i32): i32 -> reduce max 0 row) a",
      {Value::array(ScalarKind::I32, {3, 2},
                    {PrimValue::makeI32(9), PrimValue::makeI32(1),
                     PrimValue::makeI32(2), PrimValue::makeI32(8),
                     PrimValue::makeI32(5), PrimValue::makeI32(5)})});
  EXPECT_EQ(R[0], ivec({9, 8, 5}));
}

TEST(SegmentedTest, SegScanMatchesInterpreterPerSegment) {
  const char *Src = "fun main (a: [n][m]i32): [n][m]i32 =\n"
                    "  map (\\(row: [m]i32): [m]i32 -> scan (+) 0 row) a";
  std::vector<int64_t> Flat = randomInts(24, 99, 0, 9);
  std::vector<PrimValue> Data;
  for (int64_t X : Flat)
    Data.push_back(PrimValue::makeI32(static_cast<int32_t>(X)));
  Value In = Value::array(ScalarKind::I32, {4, 6}, Data);

  NameSource NS;
  auto Ref = frontend(Src, NS);
  ASSERT_OK(Ref);
  Interpreter I(*Ref);
  auto Want = I.run({In});
  ASSERT_OK(Want);

  auto Got = runOnDevice(Src, {In});
  ASSERT_EQ(Got.size(), 1u);
  EXPECT_EQ(Got[0], (*Want)[0]);
}

TEST(SegmentedTest, TupleReduceOnDevice) {
  // Two accumulators (min + argmin), the NN operator.
  auto R = runOnDevice(
      "fun main (n: i32) (xs: [n]i32): (i32, i32) =\n"
      "  reduce (\\(v1: i32, i1: i32) (v2: i32, i2: i32): (i32, i32) ->\n"
      "            if v1 < v2 then (v1, i1) else (v2, i2))\n"
      "         (1000000, -1) (zip xs (iota n))",
      {iv(6), ivec({5, 3, 8, 1, 9, 1})});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0], iv(1));
  // With the strict < the fold keeps the *right* operand on ties, so the
  // later duplicate minimum (index 5) wins — matching the interpreter's
  // left-fold semantics.
  EXPECT_EQ(R[1], iv(5));
}

TEST(SegmentedTest, ManySmallSegments) {
  // 64 segments of width 3 — exercises warp batching across segments in
  // thread-per-segment mode.
  std::vector<PrimValue> Data;
  for (int I = 0; I < 64 * 3; ++I)
    Data.push_back(PrimValue::makeI32(I % 7));
  auto R = runOnDevice(
      "fun main (a: [n][m]i32): [n]i32 =\n"
      "  map (\\(row: [m]i32): i32 -> reduce (+) 0 row) a",
      {Value::array(ScalarKind::I32, {64, 3}, Data)});
  ASSERT_EQ(R.size(), 1u);
  for (int I = 0; I < 64; ++I) {
    int Want = (3 * I) % 7 + (3 * I + 1) % 7 + (3 * I + 2) % 7;
    EXPECT_EQ(R[0].at({I}).asInt64(), Want) << "segment " << I;
  }
}

TEST(SegmentedTest, GridlessReduceCoalesces) {
  // A full (gridless) reduction parallelises within the segment: its
  // element reads are consecutive -> near-minimal transactions.
  NameSource NS;
  auto C = compileSource(
      "fun main (n: i32) (xs: [n]i32): i32 = reduce (+) 0 xs", NS);
  ASSERT_OK(C);
  Device D;
  auto R = D.runMain(C->P, {iv(4096), ivec(randomInts(4096, 3, 0, 9))});
  ASSERT_OK(R);
  // 4096 i32 reads = 16 KiB = 128 segments of 128 B (plus result writes).
  EXPECT_LE(R->Cost.GlobalTransactions, 256);
}

TEST(SegmentedTest, VectorisedOperatorFallbackWithoutG5) {
  // With G5 disabled the vectorised reduce runs with array-valued
  // elements; results must be identical.
  const char *Src =
      "fun main (k: i32) (n: i32) (ms: [n]i32): [k]i32 =\n"
      "  let incr = map (\\(c: i32): [k]i32 ->\n"
      "        let z = replicate k 0\n"
      "        in z with [c] <- 1) ms\n"
      "  in reduce (map (+)) (replicate k 0) incr";
  std::vector<Value> Args = {iv(4), iv(50), ivec(randomInts(50, 8, 0, 3))};

  NameSource NS1, NS2;
  auto CG5 = compileSource(Src, NS1);
  CompilerOptions NoG5;
  NoG5.Flatten.EnableSegReduce = false;
  auto CNo = compileSource(Src, NS2, NoG5);
  ASSERT_OK(CG5);
  ASSERT_OK(CNo);
  EXPECT_GE(CG5->Flatten.VectorisedReduceInterchanges, 1);
  EXPECT_EQ(CNo->Flatten.VectorisedReduceInterchanges, 0);

  Device D;
  auto R1 = D.runMain(CG5->P, Args);
  auto R2 = D.runMain(CNo->P, Args);
  ASSERT_OK(R1);
  ASSERT_OK(R2);
  EXPECT_EQ(R1->Outputs[0], R2->Outputs[0]);
}
