//===- timeline_test.cpp - Two-engine timeline and buffer-manager tests -----===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// The asynchronous device model: EngineTimeline scheduling rules (overlap,
// launch pipelining, barriers, the makespan <= serial-sum invariant), the
// --sync ablation reproducing the historical serial cycle counts bit for
// bit, and regressions for the three accounting bugs the timeline work
// exposed — the device-memory leak across loop iterations, the per-result-
// position double charge for final downloads, and the hard-coded 4-byte
// element width in tiled-traffic costing.
//
//===----------------------------------------------------------------------===//

#include "gpusim/BufferManager.h"
#include "gpusim/Device.h"
#include "gpusim/Timeline.h"

#include "driver/Compiler.h"
#include "interp/Interp.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

using namespace fut;
using namespace fut::test;
using namespace fut::gpusim;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }

std::vector<Value> i32Args(int N) {
  std::vector<PrimValue> E;
  for (int I = 0; I < N; ++I)
    E.push_back(PrimValue::makeI32(I * 3 - 190));
  std::vector<Value> A;
  A.push_back(iv(N));
  A.push_back(Value::array(ScalarKind::I32, {N}, std::move(E)));
  return A;
}

std::vector<Value> f32Args2(int N) {
  std::vector<PrimValue> E1, E2;
  for (int I = 0; I < N; ++I) {
    E1.push_back(PrimValue::makeF32(0.5f * I));
    E2.push_back(PrimValue::makeF32(1.0f / (I + 1)));
  }
  std::vector<Value> A;
  A.push_back(iv(N));
  A.push_back(Value::array(ScalarKind::F32, {N}, std::move(E1)));
  A.push_back(Value::array(ScalarKind::F32, {N}, std::move(E2)));
  return A;
}

Program compiled(const std::string &Src) {
  NameSource NS;
  auto C = compileSource(Src, NS);
  EXPECT_TRUE(static_cast<bool>(C)) << C.getError().str();
  return C ? std::move(C->P) : Program();
}

ErrorOr<RunResult> run(const std::string &Src, const std::vector<Value> &Args,
                       DeviceParams DP = DeviceParams::gtx780()) {
  Program P = compiled(Src);
  return Device(DP).runMain(P, Args);
}

double serialSum(const CostReport &C) {
  return C.KernelCycles + C.HostCycles + C.TransferCycles + C.RetryCycles;
}

// The three pinned programs whose pre-async TotalCycles the --sync
// ablation must reproduce exactly (constants captured at the commit that
// introduced the timeline).
const char *kTraceSrc =
    "fun main (n: i32) (xs: [n]i32): ([n]i32, i32) =\n"
    "  let ys = map (\\(x: i32): i32 -> x * 3 + 1) xs\n"
    "  let zs = scan (+) 0 ys\n"
    "  let s = reduce max (0 - 1000000) zs\n"
    "  in (zs, s)\n";

const char *kLoopSrc =
    "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
    "  loop (ys = xs) for i < 5 do\n"
    "    map (\\(y: i32): i32 -> y + i) ys\n";

const char *kPipeSrc =
    "fun main (n: i32) (xs: [n]f32) (ws: [n]f32): f32 =\n"
    "  let a = map (\\(x: f32) (w: f32): f32 -> x * w + 0.5) xs ws\n"
    "  let b = scan (+) 0.0 a\n"
    "  let c = map (\\(x: f32): f32 -> x * 0.25) b\n"
    "  in reduce (+) 0.0 c\n";

} // namespace

//===----------------------------------------------------------------------===//
// EngineTimeline scheduling rules
//===----------------------------------------------------------------------===//

TEST(EngineTimelineTest, UploadOverlapsInFlightKernel) {
  EngineTimeline TL;
  ScheduledCmd K = TL.kernel(/*DepsReady=*/0, /*LaunchCycles=*/10,
                             /*PipelineFrac=*/0.5, /*ExecCycles=*/100);
  // First kernel on an idle device pays the full launch cost.
  EXPECT_DOUBLE_EQ(K.Start, 10);
  EXPECT_DOUBLE_EQ(K.End, 110);

  // An independent upload issued while the kernel is in flight runs on
  // the copy engine from host time 0.
  ScheduledCmd U = TL.upload(50);
  EXPECT_DOUBLE_EQ(U.Start, 0);
  EXPECT_DOUBLE_EQ(U.End, 50);
  EXPECT_TRUE(U.OverlappedOtherEngine);

  // Makespan is the kernel's end, not the serial sum 110 + 50.
  EXPECT_DOUBLE_EQ(TL.makespan(), 110);
  EXPECT_DOUBLE_EQ(TL.copyBusy(), 50);
}

TEST(EngineTimelineTest, DownloadOfEarlyResultOverlapsLaterKernel) {
  EngineTimeline TL;
  ScheduledCmd K1 = TL.kernel(0, 10, 0.5, 100); // ends at 110
  TL.kernel(K1.End, 10, 0.5, 200);              // in flight until ~315
  // K1's buffer is ready at 110; the host blocks on the download while
  // the second kernel keeps computing.
  ScheduledCmd D = TL.download(40, K1.End);
  EXPECT_DOUBLE_EQ(D.Start, 110);
  EXPECT_DOUBLE_EQ(D.End, 150);
  EXPECT_TRUE(D.OverlappedOtherEngine);
  // The second kernel, not the download, determines the makespan.
  EXPECT_GT(TL.makespan(), D.End);
}

TEST(EngineTimelineTest, BackToBackKernelsPipelineTheLaunch) {
  EngineTimeline TL;
  ScheduledCmd K1 = TL.kernel(0, 10, 0.5, 100);
  ScheduledCmd K2 = TL.kernel(K1.End, 10, 0.5, 100);
  // The second kernel only serialises the un-pipelined launch residue:
  // (1 - 0.5) * 10 cycles after the engine frees, not the full 10.
  EXPECT_DOUBLE_EQ(K2.Start, K1.End + 5);
  // Serial model would charge 2 * (10 + 100) = 220.
  EXPECT_DOUBLE_EQ(TL.makespan(), 215);
}

TEST(EngineTimelineTest, BarrierSerialisesBothEngines) {
  EngineTimeline TL;
  TL.kernel(0, 10, 0.5, 100);
  TL.upload(500); // copy engine busy past the kernel
  double Before = TL.makespan();
  TL.barrier(64);
  EXPECT_DOUBLE_EQ(TL.makespan(), Before + 64);
  // Nothing issued after the barrier can start before it.
  ScheduledCmd U = TL.upload(1);
  EXPECT_GE(U.Start, Before + 64);
  ScheduledCmd K = TL.kernel(0, 10, 0.5, 1);
  EXPECT_GE(K.Start, Before + 64);
}

TEST(EngineTimelineTest, RecvWaitsForCrossDeviceDependencyNotTheHost) {
  EngineTimeline TL;
  // The producing device finishes the block at cycle 300 (on its own
  // timeline); this device's copy engine and host are both idle at 0.
  ScheduledCmd R = TL.recv(40, /*SrcReady=*/300);
  EXPECT_DOUBLE_EQ(R.Start, 300);
  EXPECT_DOUBLE_EQ(R.End, 340);
  // Non-blocking: the receiving host does not advance — only the copy
  // engine is committed.
  EXPECT_DOUBLE_EQ(TL.hostClock(), 0);
  EXPECT_DOUBLE_EQ(TL.makespan(), 340);
  EXPECT_DOUBLE_EQ(TL.copyBusy(), 40);

  // A ready source (SrcReady in the past) degenerates to upload timing:
  // the in-order copy queue, not the dependency, decides the start.
  ScheduledCmd R2 = TL.recv(10, /*SrcReady=*/50);
  EXPECT_DOUBLE_EQ(R2.Start, R.End);
  EXPECT_DOUBLE_EQ(R2.End, R.End + 10);
  EXPECT_DOUBLE_EQ(TL.hostClock(), 0);
}

TEST(EngineTimelineTest, RecvOrderingOnTheCopyEngine) {
  EngineTimeline TL;
  // An upload occupies the copy engine first; the receive queues behind
  // it in order even though its cross-device dependency was ready long
  // before.
  ScheduledCmd U = TL.upload(100);
  ScheduledCmd R = TL.recv(30, /*SrcReady=*/20);
  EXPECT_DOUBLE_EQ(R.Start, U.End);
  EXPECT_DOUBLE_EQ(R.End, U.End + 30);

  // And a later blocking download queues behind the receive: the host
  // finally synchronises at its end.
  ScheduledCmd D = TL.download(5, /*SrcReady=*/0);
  EXPECT_DOUBLE_EQ(D.Start, R.End);
  EXPECT_DOUBLE_EQ(TL.hostClock(), D.End);
}

TEST(EngineTimelineTest, RecvOverlapsInFlightKernel) {
  EngineTimeline TL;
  ScheduledCmd K = TL.kernel(0, 10, 0.5, 200); // in flight until 210
  ScheduledCmd R = TL.recv(50, /*SrcReady=*/0);
  EXPECT_DOUBLE_EQ(R.Start, 0);
  EXPECT_TRUE(R.OverlappedOtherEngine);
  // The kernel, not the inter-device copy, determines the makespan.
  EXPECT_DOUBLE_EQ(TL.makespan(), K.End);
}

TEST(EngineTimelineTest, RecvRespectsBarriers) {
  EngineTimeline TL;
  TL.kernel(0, 10, 0.5, 100);
  double Before = TL.makespan();
  TL.barrier(64);
  // A receive issued after a retry barrier cannot start before it, even
  // with an immediately-ready source block.
  ScheduledCmd R = TL.recv(8, /*SrcReady=*/0);
  EXPECT_GE(R.Start, Before + 64);
  // And a receive whose dependency lands beyond the barrier waits for
  // the dependency, not the barrier.
  ScheduledCmd R2 = TL.recv(8, /*SrcReady=*/R.End + 500);
  EXPECT_DOUBLE_EQ(R2.Start, R.End + 500);
}

TEST(EngineTimelineTest, HostClockSyncAcrossPeerTimelines) {
  // Two devices share one logical host: before issuing on B, the driver
  // syncs B's host clock forward to A's (DeviceGroup's rule, "no device
  // launches work the host has not reached yet").
  EngineTimeline A, B;
  A.host(120); // host-side work accounted on A's timeline
  EXPECT_DOUBLE_EQ(A.hostClock(), 120);
  EXPECT_DOUBLE_EQ(B.hostClock(), 0);

  B.syncHost(A.hostClock());
  EXPECT_DOUBLE_EQ(B.hostClock(), 120);
  // Monotone: syncing to an older time never moves the clock backwards.
  B.syncHost(60);
  EXPECT_DOUBLE_EQ(B.hostClock(), 120);

  // A non-blocking receive starts no earlier than the synced host time,
  // and still leaves the host clock untouched.
  ScheduledCmd R = B.recv(10, /*SrcReady=*/0);
  EXPECT_DOUBLE_EQ(R.Start, 120);
  EXPECT_DOUBLE_EQ(B.hostClock(), 120);
  // A blocking download is what finally advances the shared host.
  ScheduledCmd D = B.download(10, R.End);
  EXPECT_DOUBLE_EQ(B.hostClock(), D.End);
  EXPECT_GT(B.hostClock(), 120);
}

TEST(EngineTimelineTest, MakespanNeverExceedsSerialSum) {
  // A deterministic mixed command sequence; after every command the
  // makespan stays bounded by the sum of the serial charges.
  EngineTimeline TL;
  double Serial = 0;
  double Ready = 0;
  for (int I = 0; I < 64; ++I) {
    switch (I % 5) {
    case 0: {
      double C = 10 + (I % 7) * 3;
      TL.host(C);
      Serial += C;
      break;
    }
    case 1: {
      double C = 20 + (I % 11) * 5;
      ScheduledCmd U = TL.upload(C);
      Ready = U.End;
      Serial += C;
      break;
    }
    case 2:
    case 3: {
      double L = 10, Exec = 50 + (I % 13) * 9;
      ScheduledCmd K = TL.kernel(Ready, L, 0.5, Exec);
      Ready = K.End;
      Serial += L + Exec;
      break;
    }
    case 4: {
      double C = 15 + (I % 3) * 4;
      TL.download(C, Ready);
      Serial += C;
      break;
    }
    }
    EXPECT_LE(TL.makespan(), Serial + 1e-9) << "command " << I;
    EXPECT_LE(TL.copyBusy(), TL.makespan() + 1e-9);
    EXPECT_LE(TL.computeBusy(), TL.makespan() + 1e-9);
  }
}

//===----------------------------------------------------------------------===//
// --sync ablation: the pre-async serial model, bit for bit
//===----------------------------------------------------------------------===//

TEST(SyncAblationTest, ReproducesHistoricalTotalsBitForBit) {
  DeviceParams GTX = DeviceParams::gtx780();
  GTX.AsyncTimeline = false;
  DeviceParams AMD = DeviceParams::w8100();
  AMD.AsyncTimeline = false;

  struct Pin {
    const char *Src;
    std::vector<Value> Args;
    double TotalGTX, TotalAMD;
  };
  const Pin Pins[] = {
      {kTraceSrc, i32Args(128), 15032.4, 66033.130434782608},
      {kLoopSrc, i32Args(64), 25056.0, 110056.69565217392},
      {kPipeSrc, f32Args2(256), 20066.0, 88068.260869565216},
  };
  for (const Pin &Pn : Pins) {
    auto G = run(Pn.Src, Pn.Args, GTX);
    ASSERT_TRUE(static_cast<bool>(G)) << G.getError().str();
    EXPECT_DOUBLE_EQ(G->Cost.TotalCycles, Pn.TotalGTX);
    EXPECT_DOUBLE_EQ(G->Cost.TotalCycles, serialSum(G->Cost));
    auto A = run(Pn.Src, Pn.Args, AMD);
    ASSERT_TRUE(static_cast<bool>(A)) << A.getError().str();
    EXPECT_DOUBLE_EQ(A->Cost.TotalCycles, Pn.TotalAMD);
  }

  // Component pins for one program, so a compensating error inside the
  // serial sum cannot slip through.
  auto G = run(kTraceSrc, i32Args(128), GTX);
  ASSERT_TRUE(static_cast<bool>(G));
  EXPECT_DOUBLE_EQ(G->Cost.KernelCycles, 15008.4);
  EXPECT_DOUBLE_EQ(G->Cost.HostCycles, 24.0);
  EXPECT_DOUBLE_EQ(G->Cost.TransferCycles, 0.0);
  EXPECT_DOUBLE_EQ(G->Cost.ExcludedTransferCycles, 128.0);
}

//===----------------------------------------------------------------------===//
// Asynchronous-mode invariants and savings
//===----------------------------------------------------------------------===//

TEST(AsyncTimelineTest, TotalBoundedByBusyAndSerial) {
  const std::pair<const char *, std::vector<Value>> Cases[] = {
      {kTraceSrc, i32Args(128)},
      {kLoopSrc, i32Args(64)},
      {kPipeSrc, f32Args2(256)},
  };
  for (const auto &[Src, Args] : Cases) {
    auto R = run(Src, Args);
    ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
    const CostReport &C = R->Cost;
    EXPECT_GE(C.TotalCycles, std::max(C.CopyEngineBusy, C.ComputeEngineBusy));
    EXPECT_LE(C.TotalCycles, serialSum(C));
    EXPECT_DOUBLE_EQ(C.OverlapSavedCycles, serialSum(C) - C.TotalCycles);
  }
}

TEST(AsyncTimelineTest, AsyncBeatsSyncOnKernelPipelines) {
  // Back-to-back dependent kernels pipeline part of the launch cost, so
  // the async makespan is strictly below the serial total.
  DeviceParams Sync = DeviceParams::gtx780();
  Sync.AsyncTimeline = false;
  for (const char *Src : {kTraceSrc, kLoopSrc, kPipeSrc}) {
    std::vector<Value> Args =
        Src == kPipeSrc ? f32Args2(256) : i32Args(Src == kLoopSrc ? 64 : 128);
    auto A = run(Src, Args);
    auto S = run(Src, Args, Sync);
    ASSERT_TRUE(static_cast<bool>(A)) << A.getError().str();
    ASSERT_TRUE(static_cast<bool>(S)) << S.getError().str();
    EXPECT_LT(A->Cost.TotalCycles, S->Cost.TotalCycles) << Src;
    // The schedule changes the clock, never the answer.
    ASSERT_EQ(A->Outputs.size(), S->Outputs.size());
    for (size_t I = 0; I < A->Outputs.size(); ++I)
      EXPECT_TRUE(A->Outputs[I].approxEqual(S->Outputs[I]));
  }
}

//===----------------------------------------------------------------------===//
// Bugfix regressions
//===----------------------------------------------------------------------===//

TEST(BufferManagerTest, LoopIntermediatesAreReleased) {
  // Five loop iterations over a 1024-byte array: the serial model leaked
  // every iteration's output (kernel results were only released by a host
  // readback), so a 3072-byte device OOMed on iteration 3.  With
  // rebinding release + the liveness sweep, peak residency stays at two
  // buffers and the run fits.  This pins the --no-mem-plan ablation path
  // (the free-list counters only exist in runtime mode).
  DeviceParams DP = DeviceParams::gtx780();
  DP.DeviceMemBytes = 3072;
  DP.UseMemPlan = false;
  Program P = compiled(kLoopSrc);
  ResilienceParams RS;
  RS.InterpFallback = false; // an OOM must fail, not degrade
  auto R = Device(DP, RS).runMain(P, i32Args(256));
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  EXPECT_FALSE(R->InterpFallback);
  EXPECT_LE(R->Cost.PeakDeviceBytes, 3072);
  // At least the four superseded iteration outputs were freed.
  EXPECT_GE(R->Cost.FreedBytes, 4 * 1024);
  // Freed blocks are re-used for the equal-sized next iteration.
  EXPECT_GT(R->Cost.FreeListHits, 0);

  // The fault-free answer is unchanged by memory management.
  NameSource NS;
  auto Ref = frontend(kLoopSrc, NS);
  ASSERT_TRUE(static_cast<bool>(Ref));
  Interpreter I(*Ref);
  auto Want = I.run(i32Args(256));
  ASSERT_TRUE(static_cast<bool>(Want));
  ASSERT_EQ(R->Outputs.size(), Want->size());
  EXPECT_TRUE(R->Outputs[0].approxEqual((*Want)[0]));
}

TEST(BufferManagerTest, PlannedLoopUsesHoistedDoubleBuffer) {
  // The same loop under the static memory plan: the carried array and the
  // merge parameter share one hoisted double-buffered slab, so per-
  // iteration rebinds are hoisted-slab flips, residency still fits the
  // 3072-byte device, and — the core invariant — simulated cycles are
  // bit-identical to the runtime-managed ablation.
  DeviceParams Planned = DeviceParams::gtx780();
  Planned.DeviceMemBytes = 3072;
  DeviceParams Runtime = Planned;
  Runtime.UseMemPlan = false;
  Program P = compiled(kLoopSrc);
  ResilienceParams RS;
  RS.InterpFallback = false;

  auto RPlan = Device(Planned, RS).runMain(P, i32Args(256));
  ASSERT_TRUE(static_cast<bool>(RPlan)) << RPlan.getError().str();
  auto RRun = Device(Runtime, RS).runMain(P, i32Args(256));
  ASSERT_TRUE(static_cast<bool>(RRun)) << RRun.getError().str();

  EXPECT_LE(RPlan->Cost.PeakDeviceBytes, 3072);
  // Observed residency stays within the plan-derived bound — a genuine
  // cross-check of the static layout against what the run charged, not a
  // copy of the same counter.
  EXPECT_GT(RPlan->Cost.PlannedPeakBytes, 0);
  EXPECT_LE(RPlan->Cost.PeakDeviceBytes, RPlan->Cost.PlannedPeakBytes);
  EXPECT_GT(RPlan->Cost.HoistedAllocs, 0);
  // The plan never does worse than the runtime manager on peak bytes.
  EXPECT_LE(RPlan->Cost.PeakDeviceBytes, RRun->Cost.PeakDeviceBytes);
  EXPECT_LE(RPlan->Cost.PlannedPeakBytes, RRun->Cost.PeakDeviceBytes);
  // Runtime mode reports no plan counters.
  EXPECT_EQ(RRun->Cost.PlannedPeakBytes, 0);
  EXPECT_EQ(RRun->Cost.HoistedAllocs, 0);

  // Cycle accounting is mode-independent.
  EXPECT_DOUBLE_EQ(RPlan->Cost.TotalCycles, RRun->Cost.TotalCycles);
  EXPECT_DOUBLE_EQ(RPlan->Cost.KernelCycles, RRun->Cost.KernelCycles);
  EXPECT_DOUBLE_EQ(RPlan->Cost.TransferCycles, RRun->Cost.TransferCycles);
  EXPECT_EQ(RPlan->Cost.KernelLaunches, RRun->Cost.KernelLaunches);

  // ... and so are the results.
  ASSERT_EQ(RPlan->Outputs.size(), RRun->Outputs.size());
  for (size_t I = 0; I < RPlan->Outputs.size(); ++I)
    EXPECT_TRUE(RPlan->Outputs[I].approxEqual(RRun->Outputs[I]));
}

TEST(BufferManagerTest, AdjacentFreeRangesCoalesceOnRelease) {
  // Interleaved alloc/free regression: two adjacent 512-byte blocks are
  // released, then a 1024-byte allocation arrives.  The historical
  // size-only free list kept two 512-byte entries and could never serve
  // it; coalesced offset-aware ranges merge into one 1024-byte block and
  // hit.
  DeviceBufferManager M(0); // Runtime mode: no plan installed.
  VName A("a", 1), B("b", 2), C("c", 3), D("d", 4);
  EXPECT_TRUE(M.bind(A, 512, 0));
  EXPECT_TRUE(M.bind(B, 512, 0));
  EXPECT_EQ(M.liveBytes(), 1024);
  M.release(A);
  M.release(B);
  EXPECT_EQ(M.liveBytes(), 0);
  EXPECT_EQ(M.freeListHits(), 0);

  EXPECT_TRUE(M.bind(C, 1024, 0));
  EXPECT_EQ(M.freeListHits(), 1);
  EXPECT_EQ(M.freeListReusedBytes(), 1024);
  // The arena did not grow: the whole allocation came from the merged
  // range, so peak stays at one kilobyte.
  EXPECT_EQ(M.peakBytes(), 1024);

  // Release out of order and re-coalesce across the hole.
  EXPECT_TRUE(M.bind(D, 256, 0));
  M.release(C);
  M.release(D);
  VName E2("e", 5);
  EXPECT_TRUE(M.bind(E2, 1280, 0));
  EXPECT_EQ(M.freeListHits(), 2);
  EXPECT_EQ(M.peakBytes(), 1280);
}

TEST(BufferManagerTest, SameVariableReturnedTwiceDownloadsOnce) {
  // The final-download loop used to charge ExcludedTransferCycles once
  // per result position; (ys, ys) is one buffer and one download.
  const char *Src = "fun main (n: i32) (xs: [n]i32): ([n]i32, [n]i32) =\n"
                    "  let ys = map (\\(x: i32): i32 -> x + 1) xs\n"
                    "  in (ys, ys)\n";
  DeviceParams DP = DeviceParams::gtx780();
  auto R = run(Src, i32Args(64), DP);
  ASSERT_TRUE(static_cast<bool>(R)) << R.getError().str();
  const int64_t Bytes = 64 * 4;
  // One excluded upload of xs, one excluded download of ys.
  EXPECT_EQ(R->Cost.TransferredBytes, 2 * Bytes);
  EXPECT_DOUBLE_EQ(R->Cost.ExcludedTransferCycles,
                   2 * Bytes / DP.TransferBytesPerCycle);
}

TEST(TiledCostTest, ElementWidthReachesTiledTraffic) {
  // The N-body pattern triggers one-dimensional tiling.  The old formula
  // charged tiled traffic as TiledElementTouches * 4 bytes regardless of
  // the element kind, undercharging f64 tiles by half.
  const char *F32Src =
      "fun main (n: i32) (bodies: [n]f32): [n]f32 =\n"
      "  map (\\(p: f32): f32 ->\n"
      "         reduce (+) 0.0 (map (\\(q: f32): f32 -> q - p) bodies))\n"
      "      bodies";
  const char *F64Src =
      "fun main (n: i32) (bodies: [n]f64): [n]f64 =\n"
      "  map (\\(p: f64): f64 ->\n"
      "         reduce (+) 0.0f64 (map (\\(q: f64): f64 -> q - p) bodies))\n"
      "      bodies";

  auto MakeArgs = [](ScalarKind K, int N) {
    std::vector<PrimValue> E;
    for (int I = 0; I < N; ++I)
      E.push_back(K == ScalarKind::F32 ? PrimValue::makeF32(0.25f * I)
                                       : PrimValue::makeF64(0.25 * I));
    std::vector<Value> A;
    A.push_back(iv(N));
    A.push_back(Value::array(K, {N}, std::move(E)));
    return A;
  };

  auto RF = run(F32Src, MakeArgs(ScalarKind::F32, 128));
  auto RD = run(F64Src, MakeArgs(ScalarKind::F64, 128));
  ASSERT_TRUE(static_cast<bool>(RF)) << RF.getError().str();
  ASSERT_TRUE(static_cast<bool>(RD)) << RD.getError().str();

  ASSERT_GT(RF->Cost.TiledElementTouches, 0) << "tiling did not fire";
  EXPECT_EQ(RF->Cost.TiledElementTouches, RD->Cost.TiledElementTouches);
  // Byte totals carry the real element widths.
  EXPECT_EQ(RF->Cost.TiledElementBytes, 4 * RF->Cost.TiledElementTouches);
  EXPECT_EQ(RD->Cost.TiledElementBytes, 8 * RD->Cost.TiledElementTouches);
  // Transaction pins: 16512 touches through a 256-thread workgroup over
  // 128-byte segments is 2 tiled transactions at 4 bytes/element and 4 at
  // 8 bytes/element, on top of 4 (f32) / 8 (f64) output-write
  // transactions.  The old width-blind formula charged the f64 run only 2
  // tiled transactions (a total of 10, not 12); the f32 charge is
  // bit-identical under both formulas.
  EXPECT_EQ(RF->Cost.GlobalTransactions, 6);
  EXPECT_EQ(RD->Cost.GlobalTransactions, 12);
}

TEST(BufferManagerTest, ReadbackKeepsDeviceCopyValid) {
  // Dual residency: a host reduce over a kernel result forces a readback,
  // but a later kernel re-using the same array must not re-upload it.
  // (In --sync mode the historical phantom re-upload is reproduced.)
  const char *Src =
      "fun main (n: i32) (xs: [n]i32): ([n]i32, i32) =\n"
      "  let ys = map (\\(x: i32): i32 -> x * 3) xs\n"
      "  let s = ys[0]\n"
      "  let zs = map (\\(y: i32): i32 -> y + s) ys\n"
      "  in (zs, s)\n";
  DeviceParams Sync = DeviceParams::gtx780();
  Sync.AsyncTimeline = false;
  auto A = run(Src, i32Args(64));
  auto S = run(Src, i32Args(64), Sync);
  ASSERT_TRUE(static_cast<bool>(A)) << A.getError().str();
  ASSERT_TRUE(static_cast<bool>(S)) << S.getError().str();
  // Sync pays readback + re-upload of ys; async only the readback.
  EXPECT_EQ(S->Cost.TransferredBytes - A->Cost.TransferredBytes, 64 * 4);
  EXPECT_GT(S->Cost.TransferCycles, A->Cost.TransferCycles);
}
