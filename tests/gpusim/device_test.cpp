//===- device_test.cpp - End-to-end compiler + simulator tests -------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Full-pipeline correctness (device results == reference interpreter on
// the unoptimised program) and cost-model properties: coalescing reduces
// transactions, tiling reduces transactions, fusion reduces traffic, and
// uncoalesced access costs roughly a warp's worth more.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Device.h"

#include "driver/Compiler.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;
using namespace fut::gpusim;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}
Value fvec(const std::vector<double> &Xs) {
  return makeVectorValue(ScalarKind::F32, Xs);
}

/// Compiles + runs on the device, checking outputs against the reference
/// interpretation of the unoptimised program; returns the cost report.
CostReport runChecked(const std::string &Src, const std::vector<Value> &Args,
                      CompilerOptions Opts = {},
                      DeviceParams DP = DeviceParams::gtx780()) {
  NameSource NS;
  auto Ref = frontend(Src, NS);
  EXPECT_TRUE(static_cast<bool>(Ref)) << Ref.getError().str();
  Interpreter RefI(*Ref);
  auto Want = RefI.run(Args);
  EXPECT_TRUE(static_cast<bool>(Want)) << Want.getError().str();

  auto C = compileSource(Src, NS, Opts);
  EXPECT_TRUE(static_cast<bool>(C)) << C.getError().str();
  if (!C)
    return {};

  Device D(DP);
  auto R = D.runMain(C->P, Args);
  EXPECT_TRUE(static_cast<bool>(R))
      << R.getError().str() << "\n"
      << printProgram(C->P);
  if (!R || !Want)
    return {};

  EXPECT_EQ(R->Outputs.size(), Want->size());
  for (size_t I = 0; I < Want->size() && I < R->Outputs.size(); ++I)
    EXPECT_TRUE(R->Outputs[I].approxEqual((*Want)[I]))
        << "result " << I << ":\ndevice: " << R->Outputs[I].str()
        << "\nreference: " << (*Want)[I].str() << "\n"
        << printProgram(C->P);
  return R->Cost;
}

Value matrix(int64_t R, int64_t C, uint64_t Seed) {
  return makeMatrixValue(ScalarKind::F32, R, C,
                         randomDoubles(R * C, Seed, 0, 10));
}

} // namespace

TEST(DeviceTest, MapKernelRuns) {
  CostReport Cost = runChecked(
      "fun main (n: i32) (xs: [n]i32): [n]i32 = map (+1) xs",
      {iv(100), ivec(randomInts(100, 1))});
  EXPECT_EQ(Cost.KernelLaunches, 1);
  EXPECT_GT(Cost.GlobalTransactions, 0);
  EXPECT_GT(Cost.TotalCycles, 0);
}

TEST(DeviceTest, CoalescedMapUsesFewTransactions) {
  // 1024 reads + 1024 writes of i32, perfectly coalesced:
  // 2 * 1024 * 4B / 128B = 64 transactions.
  CostReport Cost = runChecked(
      "fun main (n: i32) (xs: [n]i32): [n]i32 = map (+1) xs",
      {iv(1024), ivec(randomInts(1024, 2))});
  EXPECT_LE(Cost.GlobalTransactions, 80);
  EXPECT_GE(Cost.GlobalTransactions, 64);
}

TEST(DeviceTest, ReduceOnDevice) {
  std::vector<int64_t> Data = randomInts(1000, 3, 0, 10);
  int64_t Want = 0;
  for (int64_t X : Data)
    Want += X;
  NameSource NS;
  auto C = compileSource(
      "fun main (n: i32) (xs: [n]i32): i32 = reduce (+) 0 xs", NS);
  ASSERT_OK(C);
  Device D;
  auto R = D.runMain(C->P, {iv(1000), ivec(Data)});
  ASSERT_OK(R);
  EXPECT_EQ(R->Outputs[0].getScalar().getInt(), Want);
}

TEST(DeviceTest, RowSumsCoalescingReducesCost) {
  // map (\row -> reduce (+) 0 row): uncoalesced without the transposition
  // optimisation.  Compare transactions with coalescing on and off.
  const char *Src = "fun main (a: [n][m]f32): [n]f32 =\n"
                    "  map (\\(row: [m]f32): f32 ->\n"
                    "         reduce (+) 0.0 row) a";
  Value A = matrix(64, 64, 11);

  CompilerOptions On;
  CompilerOptions Off;
  Off.Locality.EnableCoalescing = false;
  CostReport COn = runChecked(Src, {A}, On);
  CostReport COff = runChecked(Src, {A}, Off);

  EXPECT_LT(COn.GlobalTransactions, COff.GlobalTransactions)
      << "coalescing should reduce memory transactions";
  // Uncoalesced segment-striding costs about a warp's factor more.
  EXPECT_GE(static_cast<double>(COff.GlobalTransactions) /
                std::max<int64_t>(1, COn.GlobalTransactions),
            4.0);
}

TEST(DeviceTest, TilingReducesTransactions) {
  // The N-body pattern: every thread reads the whole invariant array.
  const char *Src =
      "fun main (n: i32) (bodies: [n]f32): [n]f32 =\n"
      "  map (\\(p: f32): f32 ->\n"
      "         reduce (+) 0.0 (map (\\(q: f32): f32 -> q - p) bodies))\n"
      "      bodies";
  std::vector<Value> Args = {iv(128), fvec(randomDoubles(128, 5))};

  CompilerOptions On;
  CompilerOptions Off;
  Off.Locality.EnableTiling = false;
  CostReport COn = runChecked(Src, Args, On);
  CostReport COff = runChecked(Src, Args, Off);

  EXPECT_GT(COn.LocalAccesses, 0) << "tiled reads go through local memory";
  EXPECT_LT(COn.GlobalTransactions, COff.GlobalTransactions);
}

TEST(DeviceTest, FusionReducesTraffic) {
  const char *Src = "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                    "  map (+1) (map (*2) (map (+3) xs))";
  std::vector<Value> Args = {iv(2048), ivec(randomInts(2048, 7))};

  CompilerOptions Fused;
  CompilerOptions Unfused;
  Unfused.EnableFusion = false;
  CostReport CF = runChecked(Src, Args, Fused);
  CostReport CU = runChecked(Src, Args, Unfused);

  EXPECT_EQ(CF.KernelLaunches, 1);
  EXPECT_EQ(CU.KernelLaunches, 3);
  EXPECT_LT(CF.GlobalTransactions, CU.GlobalTransactions);
  EXPECT_LT(CF.TotalCycles, CU.TotalCycles);
}

TEST(DeviceTest, HostLoopLaunchesKernelPerIteration) {
  const char *Src =
      "fun main (n: i32) (xs: [n]f32) (iters: i32): [n]f32 =\n"
      "  loop (a = xs) for t < iters do map (\\(x: f32): f32 -> x * 0.9) a";
  CostReport Cost = runChecked(Src, {iv(256), fvec(randomDoubles(256, 9)),
                                     iv(5)});
  EXPECT_EQ(Cost.KernelLaunches, 5);
}

TEST(DeviceTest, KMeansCountsFullPipeline) {
  const char *Src =
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  stream_red (map (+))\n"
      "    (\\(acc: *[k]i32) (chunk: [chunksize]i32): [k]i32 ->\n"
      "       loop (acc) for i < chunksize do\n"
      "         let cluster = chunk[i]\n"
      "         in acc with [cluster] <- acc[cluster] + 1)\n"
      "    (replicate k 0) membership";
  std::vector<int64_t> Member = randomInts(500, 13, 0, 4);
  CostReport Cost = runChecked(Src, {iv(5), iv(500), ivec(Member)});
  EXPECT_GE(Cost.KernelLaunches, 2); // chunked fold + segmented combine
}

TEST(DeviceTest, LaunchOverheadDiffersBetweenDevices) {
  const char *Src = "fun main (n: i32) (xs: [n]i32): [n]i32 = map (+1) xs";
  std::vector<Value> Args = {iv(64), ivec(randomInts(64, 17))};
  CostReport A = runChecked(Src, Args, {}, DeviceParams::gtx780());
  CostReport B = runChecked(Src, Args, {}, DeviceParams::w8100());
  // A tiny kernel is dominated by launch overhead: the W8100-like device
  // must be slower (the NN effect of Section 6.1).
  EXPECT_GT(B.KernelCycles, A.KernelCycles);
}

TEST(DeviceTest, SequentialHostReduceForcesTransfer) {
  // A program whose reduce is kept on the host (kernels disabled) pays
  // host cycles; the device version does not.
  const char *Src = "fun main (n: i32) (xs: [n]i32): i32 =\n"
                    "  reduce (+) 0 (map (*2) xs)";
  std::vector<Value> Args = {iv(4096), ivec(randomInts(4096, 19))};

  NameSource NS1;
  auto OnDev = compileSource(Src, NS1);
  ASSERT_OK(OnDev);
  NameSource NS2;
  CompilerOptions NoKernels;
  NoKernels.ExtractKernels = false;
  auto OnHost = compileSource(Src, NS2, NoKernels);
  ASSERT_OK(OnHost);

  Device D;
  auto RDev = D.runMain(OnDev->P, Args);
  auto RHost = D.runMain(OnHost->P, Args);
  ASSERT_OK(RDev);
  ASSERT_OK(RHost);
  EXPECT_EQ(RDev->Outputs[0], RHost->Outputs[0]);
  EXPECT_GT(RHost->Cost.HostCycles, RDev->Cost.HostCycles * 10);
  EXPECT_LT(RDev->Cost.TotalCycles, RHost->Cost.TotalCycles);
}

TEST(DeviceTest, MatMulLikeNestedKernel) {
  const char *Src =
      "fun main (a: [n][m]f32) (b: [m][p]f32): [n][p]f32 =\n"
      "  map (\\(arow: [m]f32): [p]f32 ->\n"
      "         map (\\(j: i32): f32 ->\n"
      "                let col = map (\\(i: i32): f32 -> b[i, j]) (iota m)\n"
      "                in reduce (+) 0.0 (map (*) arow col))\n"
      "             (iota p))\n"
      "      a";
  CostReport Cost = runChecked(Src, {matrix(8, 12, 21), matrix(12, 6, 22)});
  EXPECT_GE(Cost.KernelLaunches, 1);
}

TEST(DeviceTest, CostReportPrints) {
  CostReport Cost = runChecked(
      "fun main (n: i32) (xs: [n]i32): [n]i32 = map (+1) xs",
      {iv(32), ivec(randomInts(32, 23))});
  std::string S = Cost.str();
  EXPECT_NE(S.find("cycles="), std::string::npos);
  EXPECT_NE(S.find("launches=1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Randomised full-pipeline semantics sweep
//===----------------------------------------------------------------------===//

struct E2ECase {
  const char *Name;
  const char *Src;
};

class DevicePreservation : public ::testing::TestWithParam<E2ECase> {};

TEST_P(DevicePreservation, DeviceMatchesReference) {
  std::vector<int64_t> Data = randomInts(77, 31, 0, 20);
  runChecked(GetParam().Src, {iv(77), ivec(Data)});
}

INSTANTIATE_TEST_SUITE_P(
    Programs, DevicePreservation,
    ::testing::Values(
        E2ECase{"scanmap", "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                           "  scan (+) 0 (map (+1) xs)"},
        E2ECase{"updateloop",
                "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                "  loop (a = replicate n 0) for i < n do\n"
                "    a with [i] <- xs[i] * 2"},
        E2ECase{"maxofsquares",
                "fun main (n: i32) (xs: [n]i32): i32 =\n"
                "  reduce max 0 (map (\\(x: i32): i32 -> x * x) xs)"},
        E2ECase{"nestedseq",
                "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                "  map (\\(x: i32): i32 ->\n"
                "         loop (acc = 0) for i < 8 do acc * 2 + x) xs"},
        E2ECase{"histogram",
                "fun main (n: i32) (xs: [n]i32): [21]i32 =\n"
                "  stream_red (map (+))\n"
                "    (\\(acc: *[21]i32) (c: [csz]i32): [21]i32 ->\n"
                "       loop (acc) for i < csz do\n"
                "         let b = c[i] % 21\n"
                "         in acc with [b] <- acc[b] + 1)\n"
                "    (replicate 21 0) xs"}),
    [](const ::testing::TestParamInfo<E2ECase> &Info) {
      return Info.param.Name;
    });
