//===- faults_test.cpp - Fault injection and resilient-runtime tests --------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// The failure paths of the device model and the host runtime: device
// memory accounting at the exact capacity threshold, deterministic
// watchdog kills, transient-fault retry with simulated-cycle backoff, and
// graceful degradation to the reference interpreter on persistent device
// failure.  Everything is seeded, so every failure is reproducible.
//
//===----------------------------------------------------------------------===//

#include "gpusim/Device.h"
#include "gpusim/Faults.h"

#include "driver/Compiler.h"
#include "interp/Interp.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;
using namespace fut::gpusim;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}

const char *MapSrc = "fun main (n: i32) (xs: [n]i32): [n]i32 = map (+1) xs";

const char *LoopSrc =
    "fun main (n: i32) (xs: [n]i32) (iters: i32): [n]i32 =\n"
    "  loop (a = xs) for t < iters do map (+2) a";

/// Compiles through the full pipeline.
Program compiled(const std::string &Src) {
  NameSource NS;
  auto C = compileSource(Src, NS);
  EXPECT_TRUE(static_cast<bool>(C)) << C.getError().str();
  return C ? std::move(C->P) : Program();
}

/// The fault-free oracle: the reference interpretation of the unoptimised
/// program.
std::vector<Value> reference(const std::string &Src,
                             const std::vector<Value> &Args) {
  NameSource NS;
  auto Ref = frontend(Src, NS);
  EXPECT_TRUE(static_cast<bool>(Ref)) << Ref.getError().str();
  Interpreter I(*Ref);
  auto Want = I.run(Args);
  EXPECT_TRUE(static_cast<bool>(Want)) << Want.getError().str();
  return Want ? Want.take() : std::vector<Value>();
}

void expectOutputsEqual(const std::vector<Value> &Got,
                        const std::vector<Value> &Want) {
  ASSERT_EQ(Got.size(), Want.size());
  for (size_t I = 0; I < Want.size(); ++I)
    EXPECT_TRUE(Got[I].approxEqual(Want[I]))
        << "result " << I << ":\ngot:  " << Got[I].str()
        << "\nwant: " << Want[I].str();
}

} // namespace

//===----------------------------------------------------------------------===//
// FaultPlan determinism
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, SameSeedSameSequence) {
  FaultConfig C;
  C.LaunchFailRate = 0.37;
  C.Seed = 9001;
  FaultPlan A(C), B(C);
  std::vector<bool> SeqA, SeqB;
  for (int I = 0; I < 200; ++I)
    SeqA.push_back(A.nextLaunchFails());
  for (int I = 0; I < 200; ++I)
    SeqB.push_back(B.nextLaunchFails());
  EXPECT_EQ(SeqA, SeqB);
  A.reset();
  for (int I = 0; I < 200; ++I)
    EXPECT_EQ(A.nextLaunchFails(), SeqA[I]);
}

TEST(FaultPlanTest, RateExtremes) {
  FaultConfig Never;
  Never.LaunchFailRate = 0.0;
  Never.Seed = 7;
  FaultPlan N(Never);
  for (int I = 0; I < 100; ++I)
    EXPECT_FALSE(N.nextLaunchFails());

  FaultConfig Always;
  Always.LaunchFailRate = 1.0;
  Always.Seed = 7;
  FaultPlan Y(Always);
  for (int I = 0; I < 100; ++I)
    EXPECT_TRUE(Y.nextLaunchFails());
}

TEST(FaultPlanTest, RateRoughlyHonoured) {
  FaultConfig C;
  C.LaunchFailRate = 0.25;
  C.Seed = 123;
  FaultPlan P(C);
  int Fails = 0;
  for (int I = 0; I < 4000; ++I)
    Fails += P.nextLaunchFails();
  EXPECT_GT(Fails, 800);
  EXPECT_LT(Fails, 1200);
}

//===----------------------------------------------------------------------===//
// Device memory accounting
//===----------------------------------------------------------------------===//

TEST(FaultsTest, OOMExactThreshold) {
  Program P = compiled(MapSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 1))};
  // One kernel: 256 x i32 input uploaded (1024 bytes) + 256 x i32 output
  // (1024 bytes) live simultaneously.
  const int64_t Needed = 2048;

  ResilienceParams NoFallback;
  NoFallback.InterpFallback = false;

  DeviceParams Fits = DeviceParams::gtx780();
  Fits.DeviceMemBytes = Needed;
  auto Ok = Device(Fits, NoFallback).runMain(P, Args);
  ASSERT_OK(Ok);
  EXPECT_FALSE(Ok->InterpFallback);

  DeviceParams Tight = Fits;
  Tight.DeviceMemBytes = Needed - 1;
  auto Oom = Device(Tight, NoFallback).runMain(P, Args);
  ASSERT_FALSE(static_cast<bool>(Oom)) << "expected device OOM";
  EXPECT_EQ(Oom.getError().Kind, ErrorKind::DeviceOOM);
  EXPECT_NE(Oom.getError().Message.find("out of memory"), std::string::npos)
      << Oom.getError().Message;
}

TEST(FaultsTest, OOMOnUploadIsTyped) {
  Program P = compiled(MapSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 2))};
  ResilienceParams NoFallback;
  NoFallback.InterpFallback = false;
  DeviceParams Tiny = DeviceParams::gtx780();
  Tiny.DeviceMemBytes = 512; // smaller than the input alone
  auto Oom = Device(Tiny, NoFallback).runMain(P, Args);
  ASSERT_FALSE(static_cast<bool>(Oom));
  EXPECT_EQ(Oom.getError().Kind, ErrorKind::DeviceOOM);
}

TEST(FaultsTest, OOMFallsBackToInterpreter) {
  Program P = compiled(MapSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 3))};
  DeviceParams Tight = DeviceParams::gtx780();
  Tight.DeviceMemBytes = 2047;
  auto R = Device(Tight).runMain(P, Args); // fallback on by default
  ASSERT_OK(R);
  EXPECT_TRUE(R->InterpFallback);
  EXPECT_EQ(R->FallbackError.Kind, ErrorKind::DeviceOOM);
  expectOutputsEqual(R->Outputs, reference(MapSrc, Args));
}

TEST(FaultsTest, ZeroCapacityMeansUnlimited) {
  Program P = compiled(MapSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 4))};
  ResilienceParams NoFallback;
  NoFallback.InterpFallback = false;
  DeviceParams Unlimited = DeviceParams::gtx780();
  Unlimited.DeviceMemBytes = 0;
  auto R = Device(Unlimited, NoFallback).runMain(P, Args);
  ASSERT_OK(R);
}

//===----------------------------------------------------------------------===//
// Watchdog
//===----------------------------------------------------------------------===//

TEST(FaultsTest, WatchdogKillsRunawayKernel) {
  Program P = compiled(MapSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 5))};
  ResilienceParams NoFallback;
  NoFallback.InterpFallback = false;
  DeviceParams DP = DeviceParams::gtx780();
  DP.WatchdogKernelCycles = 100; // below even the launch overhead
  auto R = Device(DP, NoFallback).runMain(P, Args);
  ASSERT_FALSE(static_cast<bool>(R)) << "expected a watchdog kill";
  EXPECT_EQ(R.getError().Kind, ErrorKind::Watchdog);
}

TEST(FaultsTest, WatchdogKillFallsBackWithCounter) {
  Program P = compiled(MapSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 6))};
  DeviceParams DP = DeviceParams::gtx780();
  DP.WatchdogKernelCycles = 100;
  auto R = Device(DP).runMain(P, Args);
  ASSERT_OK(R);
  EXPECT_TRUE(R->InterpFallback);
  EXPECT_EQ(R->FallbackError.Kind, ErrorKind::Watchdog);
  EXPECT_EQ(R->Cost.WatchdogKills, 1);
  expectOutputsEqual(R->Outputs, reference(MapSrc, Args));
}

TEST(FaultsTest, TotalCycleBudgetKillsRun) {
  Program P = compiled(LoopSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 7)), iv(5)};
  ResilienceParams NoFallback;
  NoFallback.InterpFallback = false;
  DeviceParams DP = DeviceParams::gtx780();
  // Five kernel launches at >= 5000 cycles each; a 5500-cycle run budget
  // dies partway through.
  DP.WatchdogTotalCycles = 5500;
  auto R = Device(DP, NoFallback).runMain(P, Args);
  ASSERT_FALSE(static_cast<bool>(R)) << "expected a watchdog kill";
  EXPECT_EQ(R.getError().Kind, ErrorKind::Watchdog);
}

//===----------------------------------------------------------------------===//
// Transient faults: retry, backoff, determinism
//===----------------------------------------------------------------------===//

TEST(FaultsTest, RetryThenSucceedMatchesReference) {
  Program P = compiled(LoopSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 8)), iv(6)};

  ResilienceParams RS;
  RS.InterpFallback = false; // force completion on the device itself
  RS.MaxRetries = 20;
  RS.Faults.LaunchFailRate = 0.5;
  RS.Faults.Seed = 1;
  auto R = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  ASSERT_OK(R);
  EXPECT_FALSE(R->InterpFallback);

  // Six launches at a 50% transient failure rate: this seed must inject
  // at least one fault (the stream is deterministic, so this is stable).
  EXPECT_GT(R->Cost.FaultsInjected, 0);
  EXPECT_GT(R->Cost.RetriedLaunches, 0);
  EXPECT_GT(R->Cost.RetryCycles, 0);
  EXPECT_GE(R->Cost.FaultsInjected, R->Cost.RetriedLaunches);

  // The retried run still computes exactly the fault-free answer.
  expectOutputsEqual(R->Outputs, reference(LoopSrc, Args));

  // Retry cycles are part of the total: the backoff barriers serialise
  // the device, so overlap never hides them behind engine busy time.
  EXPECT_GE(R->Cost.TotalCycles,
            R->Cost.ComputeEngineBusy + R->Cost.RetryCycles);
}

TEST(FaultsTest, SameSeedReproducesSameCounters) {
  Program P = compiled(LoopSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 8)), iv(6)};
  ResilienceParams RS;
  RS.InterpFallback = false;
  RS.MaxRetries = 20;
  RS.Faults.LaunchFailRate = 0.5;
  RS.Faults.Seed = 1;

  auto A = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  auto B = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  ASSERT_OK(A);
  ASSERT_OK(B);
  EXPECT_EQ(A->Cost.FaultsInjected, B->Cost.FaultsInjected);
  EXPECT_EQ(A->Cost.RetriedLaunches, B->Cost.RetriedLaunches);
  EXPECT_EQ(A->Cost.RetryCycles, B->Cost.RetryCycles);
  EXPECT_EQ(A->Cost.TotalCycles, B->Cost.TotalCycles);

  // A different seed draws a different decision stream.  (Aggregate
  // counters can collide between seeds, so compare the streams directly.)
  FaultConfig C1 = RS.Faults, C2 = RS.Faults;
  C2.Seed = 2;
  FaultPlan P1(C1), P2(C2);
  bool Differ = false;
  for (int I = 0; I < 64 && !Differ; ++I)
    Differ = P1.nextLaunchFails() != P2.nextLaunchFails();
  EXPECT_TRUE(Differ);
}

TEST(FaultsTest, DetectedCorruptionIsRecomputed) {
  Program P = compiled(LoopSrc);
  std::vector<Value> Args = {iv(256), ivec(randomInts(256, 9)), iv(6)};
  ResilienceParams RS;
  RS.InterpFallback = false;
  RS.MaxRetries = 20;
  RS.Faults.CorruptRate = 0.5;
  RS.Faults.Seed = 3;
  auto R = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  ASSERT_OK(R);
  EXPECT_GT(R->Cost.FaultsInjected, 0);
  EXPECT_GT(R->Cost.RetryCycles, 0);
  // Corrupted kernels ran (and are charged) before being recomputed.
  EXPECT_GT(R->Cost.KernelLaunches, 6);
  expectOutputsEqual(R->Outputs, reference(LoopSrc, Args));
}

//===----------------------------------------------------------------------===//
// Persistent failure: interpreter fallback
//===----------------------------------------------------------------------===//

TEST(FaultsTest, PersistentFaultFallsBackToInterpreter) {
  Program P = compiled(MapSrc);
  std::vector<Value> Args = {iv(64), ivec(randomInts(64, 10))};
  ResilienceParams RS;
  RS.MaxRetries = 3;
  RS.Faults.LaunchFailRate = 1.0; // every launch fails: persistent
  RS.Faults.Seed = 4;
  auto R = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  ASSERT_OK(R);
  EXPECT_TRUE(R->InterpFallback);
  EXPECT_EQ(R->FallbackError.Kind, ErrorKind::TransientFault);
  EXPECT_EQ(R->Cost.RetriedLaunches, 3);
  EXPECT_EQ(R->Cost.FaultsInjected, 4); // initial attempt + three retries
  expectOutputsEqual(R->Outputs, reference(MapSrc, Args));
}

TEST(FaultsTest, PersistentFaultWithoutFallbackIsTyped) {
  Program P = compiled(MapSrc);
  std::vector<Value> Args = {iv(64), ivec(randomInts(64, 11))};
  ResilienceParams RS;
  RS.InterpFallback = false;
  RS.MaxRetries = 2;
  RS.Faults.LaunchFailRate = 1.0;
  RS.Faults.Seed = 5;
  auto R = Device(DeviceParams::gtx780(), RS).runMain(P, Args);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.getError().Kind, ErrorKind::TransientFault);
  EXPECT_NE(R.getError().Message.find("retries exhausted"),
            std::string::npos)
      << R.getError().Message;
}

TEST(FaultsTest, CompileStyleErrorsDoNotFallBack) {
  // A genuine runtime error (index out of bounds) fails identically on the
  // interpreter, so the runtime must not mask it behind a fallback.
  Program P = compiled("fun main (n: i32) (xs: [n]i32): i32 = xs[n]");
  std::vector<Value> Args = {iv(8), ivec(randomInts(8, 12))};
  auto R = Device(DeviceParams::gtx780()).runMain(P, Args);
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.getError().Kind, ErrorKind::FallbackExhausted);
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

TEST(FaultsTest, CostReportPrintsResilienceCounters) {
  CostReport C;
  C.RetriedLaunches = 2;
  C.RetryCycles = 6000;
  C.FaultsInjected = 3;
  C.WatchdogKills = 1;
  std::string S = C.str();
  EXPECT_NE(S.find("retries=2"), std::string::npos) << S;
  EXPECT_NE(S.find("retrycycles=6000"), std::string::npos) << S;
  EXPECT_NE(S.find("faults=3"), std::string::npos) << S;
  EXPECT_NE(S.find("wdkills=1"), std::string::npos) << S;
}

TEST(FaultsTest, RunOnDeviceHelperThreadsPolicyThrough) {
  Program P = compiled(MapSrc);
  std::vector<Value> Args = {iv(64), ivec(randomInts(64, 13))};
  DeviceRunOptions RO;
  RO.Resilience.Faults.LaunchFailRate = 1.0;
  RO.Resilience.Faults.Seed = 6;
  auto R = runOnDevice(P, Args, RO);
  ASSERT_OK(R);
  EXPECT_TRUE(R->InterpFallback);
  expectOutputsEqual(R->Outputs, reference(MapSrc, Args));
}
