//===- memplan_golden_test.cpp - Pinned --print-mem-plan output -----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
//
// Pins the stable textual format of MemoryPlan::str(), which is what the
// --print-mem-plan driver flag emits.  Any change to the planner's
// placement decisions or to the dump format shows up here as an exact
// string diff.
//
//===----------------------------------------------------------------------===//

#include "mem/MemPlan.h"

#include "driver/Compiler.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

TEST(MemPlanGolden, LoopWithInKernelConsumption) {
  // A loop whose body produces t and then consumes it in a row-updating
  // kernel: the whole iteration collapses into one hoisted double-buffered
  // slab — merge parameter in one half, both kernel results sharing the
  // other via the consume/loop alias chain.
  NameSource NS;
  auto C = compileSource(
      "fun main (xss: [4][8]i32): [4][8]i32 =\n"
      "  loop (a = xss) for i < 3 do\n"
      "    let t = map (\\(r: [8]i32): [8]i32 ->\n"
      "                   map (\\(x: i32): i32 -> x + 1) r) a\n"
      "    in map (\\(r: [8]i32): [8]i32 -> r with [0] <- 5) t",
      NS);
  ASSERT_OK(C);
  EXPECT_EQ(C->MemPlan.str(),
            "memory plan\n"
            "fun main: 1 slabs, arena 256 bytes, 1 hoisted, 0 reused\n"
            "  slab 0: 2x 128 bytes, hoisted double-buffer\n"
            "    a_1: half 1, 128 bytes, alias of dist_29 (loop), "
            "live [1,3]\n"
            "    dist_25: half 0, 128 bytes, loop-carried, live [2,3]\n"
            "    dist_29: half 0, 128 bytes, alias of dist_25 (consume), "
            "live [1,3]\n"
            "    loopres_11: half 0, 128 bytes, alias of dist_29 (loop), "
            "live [1,3]\n");
}

TEST(MemPlanGolden, PipelineWithSymbolicSizesAndReuse) {
  // Symbolically sized pipeline: ys dies into the scan, so its slab is
  // reused for the scan result (equal symbolic size), while the scan input
  // needs its own.
  NameSource NS;
  auto C = compileSource(
      "fun main (n: i32) (xs: [n]i32): i32 =\n"
      "  let ys = map (\\(x: i32): i32 -> x * 3) xs\n"
      "  let zs = scan (\\(a: i32) (b: i32): i32 -> a + b) 0 ys\n"
      "  in reduce (\\(a: i32) (b: i32): i32 -> a + b) 0 zs",
      NS);
  ASSERT_OK(C);
  EXPECT_EQ(C->MemPlan.str(),
            "memory plan\n"
            "fun main: 2 slabs, arena 0 bytes, 0 hoisted, 1 reused\n"
            "  slab 0: dyn [n_0]i32\n"
            "    xs_1: offset 0, dyn [n_0]i32, live [0,1]\n"
            "    scanr_25: offset 0, dyn [n_0]i32, reuse, live [2,3]\n"
            "  slab 1: dyn [n_0]i32\n"
            "    dist_17: offset 0, dyn [n_0]i32, live [1,2]\n");
}
