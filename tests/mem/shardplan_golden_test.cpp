//===- shardplan_golden_test.cpp - Pinned --print-shard-plan output --------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
//
// Pins the stable textual format of ShardPlan::str(), which is what the
// --print-shard-plan driver flag emits, and the N=1 no-op invariant: at
// one device the shard plan must change nothing observable — not the
// artifact fingerprint, not the cache key, not a cycle or byte of the
// simulated run.
//
//===----------------------------------------------------------------------===//

#include "shard/ShardPlan.h"

#include "driver/Compiler.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

/// Constant sizes throughout: blocks, transfer bytes and peaks are all
/// static, so the dump pins the planner's concrete decisions.
const char *kConstProgram =
    "fun main (x: i32): ([16]i32, i32) =\n"
    "  let a = map (\\(i: i32): i32 -> i * 2 + x) (iota 16)\n"
    "  let b = map (\\(y: i32): i32 -> y * y + x) a\n"
    "  let s = reduce (+) 0 b\n"
    "  in (b, s)\n";

/// Runtime-sized pipeline: width, blocks and bytes are all symbolic, so
/// the dump pins the symbolic rendering and the host-gather edge.
const char *kSymbolicProgram =
    "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
    "  let ys = map (\\(x: i32): i32 -> x * 2 + 1) xs\n"
    "  in map (\\(y: i32): i32 -> y * y) ys\n";

/// A histogram tail: the value map fuses into the SegHist kernel, the
/// index producer stays a separate aligned kernel, and the plan must mark
/// the histogram for partial-merge with an explicit merge edge.
const char *kHistProgram =
    "fun main (x: i32): [8]i32 =\n"
    "  let a = map (\\(i: i32): i32 -> i % 8) (iota 16)\n"
    "  let v = map (\\(i: i32): i32 -> i + x) (iota 16)\n"
    "  in reduce_by_index (replicate 8 0) (+) 0 a v\n";

} // namespace

TEST(ShardPlanGolden, ConstantWidthPipelineAtTwoDevices) {
  // The fused map kernel shards 16 rows as [0,8)[8,16); its partitioned
  // output feeds the gridless reduction whole, so the plan must carry the
  // 64-byte all-gather and a 64-byte static peak on both devices.
  NameSource NS;
  CompilerOptions Opts;
  Opts.Devices = 2;
  auto C = compileSource(kConstProgram, NS, Opts);
  ASSERT_OK(C);
  EXPECT_EQ(C->Shards.str(),
            "shard plan (devices=2)\n"
            "function 'main': 2 kernels (1 sharded), 1 transfers\n"
            "  kernel 0: sharded width=16i32 blocks=[0,8)[8,16)\n"
            "    output dist_26\n"
            "  kernel 1: whole (gridless segmented reduction)\n"
            "    input dist_26: broadcast\n"
            "  transfer 'dist_26': kernel 0 -> kernel 1 (all-gather, "
            "64 bytes)\n"
            "  peak bytes/device: 64 64\n");
}

TEST(ShardPlanGolden, SymbolicWidthPipelineAtFourDevices) {
  // Symbolic width n_0: no static blocks (cut at runtime), the aligned
  // input classification, a symbolic host gather for the returned array,
  // and unknown (-1) peaks on all four devices.
  NameSource NS;
  CompilerOptions Opts;
  Opts.Devices = 4;
  auto C = compileSource(kSymbolicProgram, NS, Opts);
  ASSERT_OK(C);
  EXPECT_EQ(C->Shards.str(),
            "shard plan (devices=4)\n"
            "function 'main': 1 kernels (1 sharded), 1 transfers\n"
            "  kernel 0: sharded width=n_0\n"
            "    input xs_1: aligned\n"
            "    output dist_20\n"
            "  transfer 'dist_20': kernel 0 -> host (gather, symbolic)\n"
            "  peak bytes/device: -1 -1 -1 -1\n");
}

TEST(ShardPlanGolden, SingleDevicePlanIsDegenerate) {
  // At one device the plan still exists (the analysis is device-count
  // independent) but every kernel owns all of [0, W).
  NameSource NS;
  auto C = compileSource(kConstProgram, NS);
  ASSERT_OK(C);
  EXPECT_EQ(C->Shards.Devices, 1);
  EXPECT_EQ(C->Shards.str(),
            "shard plan (devices=1)\n"
            "function 'main': 2 kernels (1 sharded), 1 transfers\n"
            "  kernel 0: sharded width=16i32 blocks=[0,16)\n"
            "    output dist_26\n"
            "  kernel 1: whole (gridless segmented reduction)\n"
            "    input dist_26: broadcast\n"
            "  transfer 'dist_26': kernel 0 -> kernel 1 (all-gather, "
            "64 bytes)\n"
            "  peak bytes/device: 64\n");
}

TEST(ShardPlanGolden, HistogramMergePlanAtTwoDevices) {
  // The SegHist kernel shards along its 16 input elements but its
  // destination is broadcast and its output replicated: the plan says
  // "hist-merge", skips the dest in the aligned classification, and
  // carries a producer==consumer merge edge (32 bytes of partials folded
  // with the operator) instead of an all-gather.
  NameSource NS;
  CompilerOptions Opts;
  Opts.Devices = 2;
  auto C = compileSource(kHistProgram, NS, Opts);
  ASSERT_OK(C);
  EXPECT_EQ(C->Shards.str(),
            "shard plan (devices=2)\n"
            "function 'main': 2 kernels (2 sharded), 1 transfers\n"
            "  kernel 0: sharded width=16i32 blocks=[0,8)[8,16)\n"
            "    output dist_21\n"
            "  kernel 1: sharded width=16i32 blocks=[0,8)[8,16) "
            "hist-merge\n"
            "    input dist_21: aligned\n"
            "    input repl_9: broadcast\n"
            "    output hist_32\n"
            "  transfer 'hist_32': kernel 1 -> kernel 1 (merge, 32 bytes)\n"
            "  peak bytes/device: 96 64\n");
}

TEST(ShardPlanGolden, TidRebindStaysAligned) {
  // Regression: a thread body that rebinds the thread index through a
  // let (a copy the simplifier does not always collapse inside kernels)
  // must still classify xs[j] as an aligned access — the planner used to
  // see the rebound name, miss the tid identity, and fall back to
  // broadcasting the input to every device.
  NameSource NS;
  VName Tid = NS.fresh("tid");
  VName Xs = NS.fresh("xs");
  VName J = NS.fresh("j");
  VName V = NS.fresh("v");
  Type ArrTy =
      Type::array(ScalarKind::I32, {SubExp::constant(PrimValue::makeI32(16))});

  auto K = std::make_unique<KernelExp>();
  K->Op = KernelExp::OpKind::ThreadBody;
  K->GridDims = {SubExp::constant(PrimValue::makeI32(16))};
  K->ThreadIndices = {Tid};
  K->Inputs.push_back({Xs, ArrTy, {}, false});
  Body TB;
  TB.Stms.emplace_back(
      std::vector<Param>{Param(J, Type::scalar(ScalarKind::I32))},
      std::make_unique<SubExpExp>(SubExp::var(Tid)));
  TB.Stms.emplace_back(
      std::vector<Param>{Param(V, Type::scalar(ScalarKind::I32))},
      std::make_unique<IndexExp>(Xs, std::vector<SubExp>{SubExp::var(J)}));
  TB.Result = {SubExp::var(V)};
  K->ThreadBody = std::move(TB);
  K->RetTypes = {ArrTy};

  Stm S({Param(NS.fresh("out"), ArrTy)}, std::move(K));
  shard::KernelShardability A = shard::analyseShardability(
      *expCast<KernelExp>(S.E.get()), S, /*TopLevel=*/true);
  ASSERT_TRUE(A.Sharded) << A.WhyNot;
  ASSERT_EQ(A.Inputs.size(), 1u);
  EXPECT_EQ(A.Inputs[0].Arr, Xs);
  EXPECT_EQ(A.Inputs[0].Class, shard::InputClass::Aligned)
      << "tid rebound through a let must stay an aligned access";
}

TEST(ShardPlanGolden, PlanIsDeterministic) {
  for (int Devices : {2, 4}) {
    NameSource N1, N2;
    CompilerOptions Opts;
    Opts.Devices = Devices;
    auto A = compileSource(kConstProgram, N1, Opts);
    auto B = compileSource(kConstProgram, N2, Opts);
    ASSERT_OK(A);
    ASSERT_OK(B);
    EXPECT_EQ(A->Shards.str(), B->Shards.str());
    EXPECT_EQ(A->fingerprint(), B->fingerprint());
  }
}

TEST(ShardPlanGolden, SingleDeviceIsNoOp) {
  // The pinned no-op: an explicit --devices=1 compile must be
  // artifact-identical to a default compile — same cache key, same
  // fingerprint — and a run wired through the shard plan at one device
  // must reproduce the default run cycle-for-cycle and byte-for-byte.
  NameSource N1, N2;
  auto Plain = compileSource(kConstProgram, N1);
  CompilerOptions One;
  One.Devices = 1;
  auto Pinned = compileSource(kConstProgram, N2, One);
  ASSERT_OK(Plain);
  ASSERT_OK(Pinned);
  EXPECT_EQ(artifactCacheKey(kConstProgram, CompilerOptions()),
            artifactCacheKey(kConstProgram, One));
  EXPECT_EQ(Plain->fingerprint(), Pinned->fingerprint());
  EXPECT_EQ(Plain->Shards.str(), Pinned->Shards.str());

  std::vector<Value> Args = {Value::scalar(PrimValue::makeI32(3))};
  DeviceRunOptions RO;
  RO.MemPlan = &Plain->MemPlan;
  auto Base = runOnDevice(Plain->P, Args, RO);
  ASSERT_OK(Base);

  DeviceRunOptions RO1;
  RO1.MemPlan = &Pinned->MemPlan;
  RO1.Shards = &Pinned->Shards;
  RO1.Devices = 1;
  auto Sharded = runOnDevice(Pinned->P, Args, RO1);
  ASSERT_OK(Sharded);

  ASSERT_EQ(Base->Outputs.size(), Sharded->Outputs.size());
  for (size_t I = 0; I < Base->Outputs.size(); ++I)
    EXPECT_TRUE(Base->Outputs[I] == Sharded->Outputs[I]);
  EXPECT_EQ(Base->Cost.TotalCycles, Sharded->Cost.TotalCycles);
  EXPECT_EQ(Base->Cost.PeakDeviceBytes, Sharded->Cost.PeakDeviceBytes);
  EXPECT_EQ(Base->Cost.str(), Sharded->Cost.str());
}

TEST(ShardPlanGolden, DeviceCountEntersArtifactOnlyAboveOne) {
  // Two devices is a different artifact (different cache key and
  // fingerprint); one device is not.
  CompilerOptions Two;
  Two.Devices = 2;
  EXPECT_NE(artifactCacheKey(kConstProgram, CompilerOptions()),
            artifactCacheKey(kConstProgram, Two));
  NameSource N1, N2;
  auto Plain = compileSource(kConstProgram, N1);
  auto Sharded = compileSource(kConstProgram, N2, Two);
  ASSERT_OK(Plain);
  ASSERT_OK(Sharded);
  EXPECT_NE(Plain->fingerprint(), Sharded->fingerprint());
}
