//===- memplan_test.cpp - Static memory planner unit tests ----------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
//
// Exercises the mem/ analyses and the planner on flattened pipelines:
// liveness of loop-carried arrays, interference on the concat-length-CSE
// regression program, double-buffer hoisting on a two-deep loop nest, and
// in-kernel consumption aliasing.
//
//===----------------------------------------------------------------------===//

#include "mem/MemPlan.h"

#include "check/Verify.h"
#include "driver/Compiler.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

/// Compiles through the full pipeline and returns the result, asserting
/// success.
CompileResult compiled(const std::string &Src) {
  NameSource NS;
  auto C = compileSource(Src, NS);
  EXPECT_TRUE(static_cast<bool>(C))
      << (C ? "" : C.getError().str());
  return C.take();
}

const FunDef &mainFun(const Program &P) {
  const FunDef *F = P.findFun("main");
  EXPECT_NE(F, nullptr);
  return *F;
}

/// Asserts the re-deriving plan verifier accepts the compiled plan.
void expectPlanOk(const CompileResult &C) {
  MaybeError Err = verifyMemoryPlan(C.P, C.MemPlan, "memplan");
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.getError().Message;
}

} // namespace

//===----------------------------------------------------------------------===//
// Liveness
//===----------------------------------------------------------------------===//

TEST(MemPlanLiveness, LoopCarriedArraysLiveAcrossWholeLoop) {
  CompileResult C = compiled(
      "fun main (xs: [8]i32): [8]i32 =\n"
      "  loop (a = xs) for i < 4 do map (\\(x: i32): i32 -> x + 1) a");
  mem::FunMemAnalysis A = mem::analyseFun(mainFun(C.P));

  // The merge parameter and the in-loop kernel output both carry storage
  // across iterations: their intervals must span the whole loop body, not
  // just their syntactic uses, and be flagged loop-carried.
  const mem::LiveInterval *Merge = nullptr, *Result = nullptr;
  for (const mem::LiveInterval &I : A.Intervals.Intervals) {
    if (I.MergeParam)
      Merge = &I;
    else if (I.LoopCarried)
      Result = &I;
  }
  ASSERT_NE(Merge, nullptr) << "no merge-parameter interval";
  ASSERT_NE(Result, nullptr) << "no loop-carried result interval";
  EXPECT_TRUE(Merge->LoopCarried);
  // Both cover the same span — the whole loop.
  EXPECT_EQ(Merge->Start, Result->Start);
  EXPECT_EQ(Merge->End, Result->End);
  EXPECT_LT(Merge->Start, Merge->End);
  EXPECT_TRUE(mem::interfere(*Merge, *Result));

  // They are linked by a loop-result alias edge (double-buffer halves).
  bool SawLoopEdge = false;
  for (const mem::AliasEdge &E : A.Aliases)
    if (E.Kind == mem::AliasKind::LoopResult)
      SawLoopEdge = true;
  EXPECT_TRUE(SawLoopEdge);
}

TEST(MemPlanLiveness, ArrayLiveIntoLoopSurvivesEveryIteration) {
  // xs is read inside the loop on every iteration, so its storage must be
  // extended to the loop's end even though its last syntactic use is the
  // loop's first statement.
  CompileResult C = compiled(
      "fun main (n: i32) (xs: [8]i32): [8]i32 =\n"
      "  loop (a = xs) for i < 4 do\n"
      "    map (\\(x: i32) (y: i32): i32 -> x + y) a xs");
  mem::FunMemAnalysis A = mem::analyseFun(mainFun(C.P));

  const mem::LiveInterval *Carried = nullptr;
  for (const mem::LiveInterval &I : A.Intervals.Intervals)
    if (I.LoopCarried && !I.MergeParam)
      Carried = &I;
  ASSERT_NE(Carried, nullptr);
  // xs is a parameter (Start == 0) and must stay live through the loop's
  // last statement.
  const FunDef &F = mainFun(C.P);
  const mem::LiveInterval *Xs = A.Intervals.lookup(F.Params.back().Name);
  ASSERT_NE(Xs, nullptr);
  EXPECT_EQ(Xs->Start, 0);
  EXPECT_GE(Xs->End, Carried->End);
}

//===----------------------------------------------------------------------===//
// Interference on the concat-length-CSE regression program
//===----------------------------------------------------------------------===//

TEST(MemPlanInterference, ConcatLengthCseProgram) {
  // The regression program behind tests/regress/cases/concat-length-cse.fut:
  // two reductions over concat a0 a0, whose intermediates interfere with
  // the live-to-the-end a0.
  CompileResult C = compiled(
      "fun main (n: i32) (a0: [n]i32): ([n]i32, i32) =\n"
      "  let s0 = reduce (\\(a: i32) (b: i32): i32 -> a + b) (0 + 3)\n"
      "                  (concat a0 a0)\n"
      "  let s1 = reduce (\\(a: i32) (b: i32): i32 -> a + b) (0 + 1)\n"
      "                  (concat a0 a0)\n"
      "  let check = reduce (\\(a: i32) (b: i32): i32 -> a + b) 0 a0\n"
      "  in (a0, check + s0 + s1)");
  mem::FunMemAnalysis A = mem::analyseFun(mainFun(C.P));

  // a0 is returned, so it interferes with every intermediate.
  const FunDef &F = mainFun(C.P);
  const mem::LiveInterval *A0 = A.Intervals.lookup(F.Params.back().Name);
  ASSERT_NE(A0, nullptr);
  int Interfering = 0;
  for (const mem::LiveInterval &I : A.Intervals.Intervals)
    if (!(I.Name == A0->Name) && mem::interfere(*A0, I))
      ++Interfering;
  EXPECT_GE(Interfering, 1);

  // The plan must separate simultaneously-live arrays; the re-deriving
  // verifier agrees.
  const mem::FunPlan *FP = C.MemPlan.forFun("main");
  ASSERT_NE(FP, nullptr);
  EXPECT_FALSE(FP->Entries.empty());
  expectPlanOk(C);

  // a0 must not share a slab range with anything live at the same time
  // (spot-check of what the verifier enforces wholesale).
  if (const mem::PlanEntry *EA = FP->lookup(A0->Name))
    for (const mem::PlanEntry &E : FP->Entries)
      if (!(E.Name == A0->Name) && E.Slab == EA->Slab) {
        const mem::LiveInterval *I = A.Intervals.lookup(E.Name);
        ASSERT_NE(I, nullptr);
        EXPECT_FALSE(mem::interfere(*A0, *I))
            << E.Name.str() << " shares a0's slab while live";
      }
}

//===----------------------------------------------------------------------===//
// Double-buffer hoisting
//===----------------------------------------------------------------------===//

TEST(MemPlanHoisting, TwoDeepLoopNestGetsHoistedDoubleBuffer) {
  CompileResult C = compiled(
      "fun main (xs: [8]i32): [8]i32 =\n"
      "  loop (a = xs) for i < 3 do\n"
      "    loop (b = a) for j < 2 do\n"
      "      map (\\(x: i32): i32 -> x + 1) b");
  const mem::FunPlan *FP = C.MemPlan.forFun("main");
  ASSERT_NE(FP, nullptr);

  // The carried storage chain (inner kernel output -> inner merge param /
  // pattern -> outer merge param) collapses into hoisted double-buffered
  // slabs allocated once, outside the loops.
  EXPECT_GE(FP->HoistedSlabs, 1);
  int HoistedEntries = 0, HalfOne = 0;
  for (const mem::PlanEntry &E : FP->Entries) {
    if (E.Hoisted)
      ++HoistedEntries;
    if (E.Hoisted && E.BufferIndex == 1)
      ++HalfOne;
  }
  EXPECT_GE(HoistedEntries, 2); // At least result + merge param.
  EXPECT_GE(HalfOne, 1);        // A merge param reads the other half.
  for (const mem::SlabInfo &S : FP->Slabs)
    if (S.Hoisted && S.Bytes >= 0)
      EXPECT_EQ(S.Bytes % 2, 0); // Two equal halves.

  expectPlanOk(C);
}

//===----------------------------------------------------------------------===//
// In-kernel consumption aliasing
//===----------------------------------------------------------------------===//

TEST(MemPlanConsume, InPlaceRowUpdateKernelAliasesConsumedInput) {
  // t's last use is the row-updating kernel producing u: the plan lets u
  // own t's block instead of charging both simultaneously.
  CompileResult C = compiled(
      "fun main (xss: [4][4]i32): [4][4]i32 =\n"
      "  let t = map (\\(r: [4]i32): [4]i32 ->\n"
      "                 map (\\(x: i32): i32 -> x * 2) r) xss\n"
      "  let u = map (\\(a: [4]i32): [4]i32 -> a with [0] <- 7) t\n"
      "  in u");
  mem::FunMemAnalysis A = mem::analyseFun(mainFun(C.P));

  bool SawConsume = false;
  for (const mem::AliasEdge &E : A.Aliases)
    if (E.Kind == mem::AliasKind::Consume)
      SawConsume = true;
  EXPECT_TRUE(SawConsume) << "no consumption alias edge derived";

  const mem::FunPlan *FP = C.MemPlan.forFun("main");
  ASSERT_NE(FP, nullptr);
  const mem::PlanEntry *Consumer = nullptr;
  for (const mem::PlanEntry &E : FP->Entries)
    if (E.HasAlias && E.Alias == mem::AliasKind::Consume)
      Consumer = &E;
  ASSERT_NE(Consumer, nullptr);
  const mem::PlanEntry *Source = FP->lookup(Consumer->AliasOf);
  ASSERT_NE(Source, nullptr);
  EXPECT_EQ(Consumer->Slab, Source->Slab);

  expectPlanOk(C);
}

TEST(MemPlanConsume, MergeParamIsNeverConsumedByKernel) {
  // The row-updating kernel consumes the loop's merge parameter — legal
  // surface code (Fig 4a), but the planner must not alias the kernel
  // output onto the merge parameter's block: the previous iteration's
  // half of the double buffer has to stay intact while the new one is
  // written.
  CompileResult C = compiled(
      "fun main (n: i32): [4][4]i32 =\n"
      "  loop (a = replicate 4 (replicate 4 n)) for i < 2 do\n"
      "    map (\\(r: [4]i32): [4]i32 -> r with [0] <- 7) a");
  mem::FunMemAnalysis A = mem::analyseFun(mainFun(C.P));
  for (const mem::AliasEdge &E : A.Aliases)
    EXPECT_NE(E.Kind, mem::AliasKind::Consume)
        << E.Dst.str() << " claims to consume " << E.Src.str();
  expectPlanOk(C);
}

//===----------------------------------------------------------------------===//
// Planner determinism
//===----------------------------------------------------------------------===//

TEST(MemPlan, PlanIsDeterministic) {
  const char *Src =
      "fun main (n: i32) (xs: [n]i32): i32 =\n"
      "  let ys = map (\\(x: i32): i32 -> x * 3) xs\n"
      "  in reduce (\\(a: i32) (b: i32): i32 -> a + b) 0 ys";
  CompileResult C1 = compiled(Src);
  CompileResult C2 = compiled(Src);
  EXPECT_EQ(C1.MemPlan.str(), C2.MemPlan.str());
}
