//===- verify_test.cpp - Tests for the type-rederiving IR verifier ---------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The verifier's contract: accept everything the real pipeline produces,
/// and reject a deliberately broken rewrite at the pass boundary that
/// produced it, naming the pass and the offending binding.  The broken
/// rewrite is injected through CompilerOptions::PostPassHook, the
/// test-only corruption point that runs before the verifier at every pass
/// boundary.
///
//===----------------------------------------------------------------------===//

#include "check/Verify.h"

#include "driver/Compiler.h"
#include "ir/Builder.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

Type i32s() { return Type::scalar(ScalarKind::I32); }

} // namespace

TEST(VerifyTest, AcceptsFrontendOutput) {
  NameSource NS;
  auto P = frontend("fun main (n: i32) (xs: [n]i32): i32 =\n"
                    "  reduce (+) 0 (map (+1) xs)",
                    NS);
  ASSERT_OK(P);
  auto Err = verifyProgram(*P, "frontend", {});
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.getError().str();
}

TEST(VerifyTest, AcceptsWholePipelineOutput) {
  // compileSource already verifies after every pass (VerifyIR defaults
  // on); additionally verify the final flattened program explicitly.
  NameSource NS;
  auto C = compileSource(
      "fun main (a: [n][m]f32) (steps: i32): [n][m]f32 =\n"
      "  map (\\(row: [m]f32): [m]f32 ->\n"
      "         loop (r = row) for t < steps do\n"
      "           map (\\(x: f32): f32 -> x * 0.5) r)\n"
      "      a",
      NS);
  ASSERT_OK(C);
  VerifyOptions VO;
  VO.Flattened = true;
  auto Err = verifyProgram(C->P, "final", VO);
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.getError().str();
}

TEST(VerifyTest, BrokenRewriteCaughtAtPassBoundaryWithBindingName) {
  // Corrupt the program right after the simplify pass: re-declare the
  // first binding of main at the wrong rank.  The verifier must fail
  // compilation with an ErrorKind::Verify diagnostic naming both the pass
  // and the binding.  Structural checks are disabled so the verifier is
  // provably the layer that catches it.
  NameSource NS;
  CompilerOptions Opts;
  Opts.InternalChecks = false;
  std::string Corrupted;
  Opts.PostPassHook = [&](Program &P, const std::string &Pass) {
    if (Pass != "simplify" || !Corrupted.empty())
      return;
    FunDef *F = P.findFun("main");
    ASSERT_NE(F, nullptr);
    ASSERT_FALSE(F->FBody.Stms.empty());
    Param &Pat = F->FBody.Stms.front().Pat.front();
    Pat.Ty = Type::array(Pat.Ty.elemKind(), {i32(3), i32(3), i32(3)});
    Corrupted = Pat.Name.str();
  };
  auto C = compileSource("fun main (n: i32) (xs: [n]i32): i32 =\n"
                         "  reduce (+) 0 (map (\\(x: i32): i32 -> x + n) xs)",
                         NS, Opts);
  ASSERT_FALSE(static_cast<bool>(C)) << "corrupted program compiled";
  ASSERT_FALSE(Corrupted.empty()) << "hook never fired";
  const CompilerError &E = C.getError();
  EXPECT_EQ(E.Kind, ErrorKind::Verify) << E.str();
  EXPECT_NE(E.Message.find("after pass 'simplify'"), std::string::npos)
      << E.str();
  EXPECT_NE(E.Message.find(Corrupted), std::string::npos) << E.str();
}

TEST(VerifyTest, DanglingOperandNamesTheBinding) {
  NameSource NS;
  VName Ghost = NS.fresh("ghost");
  BodyBuilder BB(NS);
  VName R = BB.bind("r", i32s(),
                    std::make_unique<BinOpExp>(BinOp::Add, SubExp::var(Ghost),
                                               i32(1)));
  Program P = singleFun({}, {i32s()}, BB.finish({SubExp::var(R)}));
  auto Err = verifyProgram(P, "test-pass", {});
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_EQ(Err.getError().Kind, ErrorKind::Verify);
  EXPECT_NE(Err.getError().Message.find("unbound"), std::string::npos)
      << Err.getError().str();
  EXPECT_NE(Err.getError().Message.find(R.str()), std::string::npos)
      << Err.getError().str();
}

TEST(VerifyTest, ConsumedArrayObservedAgainDetected) {
  // let b = a with [0] <- x consumes a; reading a afterwards violates the
  // post-uniq discipline the verifier enforces on every pass's output.
  NameSource NS;
  VName A = NS.fresh("a"), X = NS.fresh("x");
  Type ArrT = Type::array(ScalarKind::I32, {i32(4)});
  BodyBuilder BB(NS);
  VName B = BB.bind("b", ArrT,
                    std::make_unique<UpdateExp>(
                        A, std::vector<SubExp>{i32(0)}, SubExp::var(X)));
  SubExp Read = BB.index(A, {i32(0)}, i32s());
  Program P = singleFun({Param(A, ArrT), Param(X, i32s())}, {i32s()},
                        BB.finish({Read}));
  (void)B;
  auto Err = verifyProgram(P, "test-pass", {});
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.getError().Message.find("consumed"), std::string::npos)
      << Err.getError().str();
}

TEST(VerifyTest, HostSOACRejectedOnlyAfterFlattening) {
  NameSource NS;
  VName Xs = NS.fresh("xs");
  Type ArrT = Type::array(ScalarKind::I32, {i32(4)});
  VName LP = NS.fresh("p");
  BodyBuilder LB(NS);
  Lambda Id({Param(LP, i32s())}, LB.finish({SubExp::var(LP)}), {i32s()});
  BodyBuilder BB(NS);
  VName M = BB.bind("m", ArrT,
                    std::make_unique<MapExp>(i32(4), std::move(Id),
                                             std::vector<VName>{Xs}));
  Program P = singleFun({Param(Xs, ArrT)}, {ArrT},
                        BB.finish({SubExp::var(M)}));

  // Before kernel extraction a host map is fine...
  auto Pre = verifyProgram(P, "simplify", {});
  EXPECT_FALSE(static_cast<bool>(Pre)) << Pre.getError().str();

  // ...after it, it is nested parallelism that escaped flattening.
  VerifyOptions Flat;
  Flat.Flattened = true;
  auto Post = verifyProgram(P, "kernel-extraction", Flat);
  ASSERT_TRUE(static_cast<bool>(Post));
  EXPECT_NE(Post.getError().Message.find("host-level"), std::string::npos)
      << Post.getError().str();

  // ...unless the ablation pipeline legitimately leaves SOACs on the host.
  Flat.AllowHostSOACs = true;
  auto Ablation = verifyProgram(P, "kernel-extraction", Flat);
  EXPECT_FALSE(static_cast<bool>(Ablation)) << Ablation.getError().str();
}

TEST(VerifyTest, PatternTypeMismatchDetected) {
  NameSource NS;
  BodyBuilder BB(NS);
  // iota 4 derives [4]i32 but the pattern declares a scalar.
  VName R = BB.bind("r", i32s(), std::make_unique<IotaExp>(i32(4)));
  Program P = singleFun({}, {i32s()}, BB.finish({SubExp::var(R)}));
  auto Err = verifyProgram(P, "test-pass", {});
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.getError().Message.find(R.str()), std::string::npos)
      << Err.getError().str();
}

TEST(VerifyTest, OverlappingMemoryPlanRejected) {
  // Corrupt the memory plan right after planning: collapse every entry
  // onto slab 0 at offset 0.  The two map results are simultaneously
  // live (both feed the final reduce), so the re-deriving plan verifier
  // must reject the layout, naming the pass and the slab.
  NameSource NS;
  CompilerOptions Opts;
  bool Corrupted = false;
  Opts.PostPlanHook = [&](mem::MemoryPlan &MP) {
    for (mem::FunPlan &FP : MP.Funs) {
      if (FP.Entries.size() < 2)
        continue;
      for (mem::PlanEntry &E : FP.Entries) {
        E.Slab = 0;
        E.Offset = 0;
        E.BufferIndex = 0;
        Corrupted = true;
      }
      for (mem::SlabInfo &S : FP.Slabs)
        S.Hoisted = false;
    }
  };
  auto C = compileSource(
      "fun main (n: i32) (xs: [n]i32): i32 =\n"
      "  let a = map (\\(x: i32): i32 -> x + 1) xs\n"
      "  let b = map (\\(x: i32): i32 -> x * 2) xs\n"
      "  in reduce (\\(p: i32) (q: i32): i32 -> p + q) 0\n"
      "            (map (\\(p: i32) (q: i32): i32 -> p + q) a b)",
      NS, Opts);
  ASSERT_FALSE(static_cast<bool>(C)) << "overlapping plan accepted";
  ASSERT_TRUE(Corrupted) << "hook never fired";
  const CompilerError &E = C.getError();
  EXPECT_EQ(E.Kind, ErrorKind::Verify) << E.str();
  EXPECT_NE(E.Message.find("after pass 'memplan'"), std::string::npos)
      << E.str();
  EXPECT_NE(E.Message.find("overlap in slab"), std::string::npos) << E.str();
}

TEST(VerifyTest, FabricatedAliasInPlanRejected) {
  // A plan claiming a consumption alias no let/consume/loop edge
  // justifies must be rejected even if the byte layout happens to be
  // consistent.
  NameSource NS;
  CompilerOptions Opts;
  bool Corrupted = false;
  Opts.PostPlanHook = [&](mem::MemoryPlan &MP) {
    for (mem::FunPlan &FP : MP.Funs)
      for (size_t I = 1; I < FP.Entries.size(); ++I)
        if (!FP.Entries[I].HasAlias) {
          FP.Entries[I].HasAlias = true;
          FP.Entries[I].AliasOf = FP.Entries[0].Name;
          FP.Entries[I].Alias = mem::AliasKind::Consume;
          Corrupted = true;
          return;
        }
  };
  auto C = compileSource(
      "fun main (n: i32) (xs: [n]i32): i32 =\n"
      "  let a = map (\\(x: i32): i32 -> x + 1) xs\n"
      "  in reduce (\\(p: i32) (q: i32): i32 -> p + q) 0 a",
      NS, Opts);
  ASSERT_FALSE(static_cast<bool>(C)) << "fabricated alias accepted";
  ASSERT_TRUE(Corrupted) << "hook never fired";
  EXPECT_EQ(C.getError().Kind, ErrorKind::Verify) << C.getError().str();
  EXPECT_NE(C.getError().Message.find("memplan"), std::string::npos)
      << C.getError().str();
}

TEST(VerifyTest, AcceptsEveryPipelinePlan) {
  // The plan verifier runs inside compileSource on every compile (the
  // default VerifyIR); a loop + consumption heavy program must come out
  // with a verified plan.
  NameSource NS;
  auto C = compileSource(
      "fun main (n: i32) (xss: [4][8]i32): [4][8]i32 =\n"
      "  loop (a = xss) for i < 3 do\n"
      "    let t = map (\\(r: [8]i32): [8]i32 ->\n"
      "                   map (\\(x: i32): i32 -> x + 1) r) a\n"
      "    in map (\\(r: [8]i32): [8]i32 -> r with [0] <- 5) t",
      NS);
  ASSERT_OK(C);
  const mem::FunPlan *FP = C->MemPlan.forFun("main");
  ASSERT_NE(FP, nullptr);
  EXPECT_FALSE(FP->Entries.empty());
  MaybeError Err = verifyMemoryPlan(C->P, C->MemPlan, "memplan");
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.getError().Message;
}
