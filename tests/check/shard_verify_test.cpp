//===- shard_verify_test.cpp - Tests for the shard-plan verifier -----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shard-plan verifier's contract, mirroring the memory-plan verifier
/// tests: accept every plan the planner produces, and reject a plan
/// corrupted at the pass boundary — overlapping row ownership, a dropped
/// boundary transfer, an over-budget shard — with an ErrorKind::Verify
/// diagnostic naming the pass and the defect.  Corruptions are injected
/// through CompilerOptions::PostShardPlanHook, which runs between the
/// planner and the verifier.
///
//===----------------------------------------------------------------------===//

#include "check/Verify.h"

#include "driver/Compiler.h"
#include "ir/Builder.h"
#include "shard/ShardPlan.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

/// Constant sizes throughout, so the planner records concrete blocks, a
/// concrete all-gather transfer (kernel 0's partitioned output feeds the
/// unsharded segmented reduction whole) and static per-device peaks —
/// giving every corruption below a guaranteed target.
const char *kConstProgram =
    "fun main (x: i32): ([16]i32, i32) =\n"
    "  let a = map (\\(i: i32): i32 -> i * 2 + x) (iota 16)\n"
    "  let b = map (\\(y: i32): i32 -> y * y + x) a\n"
    "  let s = reduce (+) 0 b\n"
    "  in (b, s)\n";

/// The first function plan holding a sharded constant-width kernel.
shard::FunShardPlan *shardedFun(shard::ShardPlan &SP) {
  for (shard::FunShardPlan &FP : SP.Funs)
    for (shard::KernelShard &KS : FP.Kernels)
      if (KS.Sharded && KS.ConstWidth >= 0 && KS.Blocks.size() >= 2)
        return &FP;
  return nullptr;
}

/// Compiles kConstProgram at two devices with \p Corrupt applied to the
/// shard plan, and expects the verifier to reject with a message
/// containing every string in \p Expect.
void expectRejected(const std::function<void(shard::ShardPlan &)> &Corrupt,
                    const std::vector<std::string> &Expect) {
  NameSource NS;
  CompilerOptions Opts;
  Opts.Devices = 2;
  bool Fired = false;
  Opts.PostShardPlanHook = [&](shard::ShardPlan &SP) {
    Corrupt(SP);
    Fired = true;
  };
  auto C = compileSource(kConstProgram, NS, Opts);
  ASSERT_TRUE(Fired) << "corruption hook never fired";
  ASSERT_FALSE(static_cast<bool>(C)) << "corrupted shard plan compiled";
  const CompilerError &E = C.getError();
  EXPECT_EQ(E.Kind, ErrorKind::Verify) << E.str();
  EXPECT_NE(E.Message.find("after pass 'shardplan'"), std::string::npos)
      << E.str();
  for (const std::string &S : Expect)
    EXPECT_NE(E.Message.find(S), std::string::npos)
        << "missing '" << S << "' in: " << E.str();
}

} // namespace

TEST(ShardVerifyTest, AcceptsPlannerOutput) {
  // compileSource runs the verifier after the planner (VerifyIR defaults
  // on); an untouched plan must pass at every device count.
  for (int Devices : {1, 2, 4, 8}) {
    NameSource NS;
    CompilerOptions Opts;
    Opts.Devices = Devices;
    auto C = compileSource(kConstProgram, NS, Opts);
    ASSERT_OK(C);
    EXPECT_FALSE(static_cast<bool>(
        verifyShardPlan(C->P, C->Shards, "shardplan")));
  }
}

TEST(ShardVerifyTest, AcceptsGeneratedPrograms) {
  // The planner/verifier pair must also agree on symbolic-width plans;
  // the differential generator's programs have runtime-sized chains.
  NameSource NS;
  CompilerOptions Opts;
  Opts.Devices = 4;
  auto C = compileSource(
      "fun main (n: i32) (a0: [n]i32): ([n]i32, i32) =\n"
      "  let a1 = map (\\(x: i32): i32 -> x * 3 - 1) a0\n"
      "  let a2 = scan (+) 0 a1\n"
      "  let s0 = reduce (+) 0 a2\n"
      "  in (a2, s0)\n",
      NS, Opts);
  ASSERT_OK(C);
}

TEST(ShardVerifyTest, OverlappingOwnershipRejected) {
  // Slide device 1's block start one row left so rows [7,8) land on both
  // devices: exclusive ownership is violated.
  expectRejected(
      [](shard::ShardPlan &SP) {
        shard::FunShardPlan *FP = shardedFun(SP);
        ASSERT_NE(FP, nullptr);
        for (shard::KernelShard &KS : FP->Kernels)
          if (KS.Sharded && KS.ConstWidth >= 0 && KS.Blocks.size() >= 2) {
            KS.Blocks[1].first -= 1;
            return;
          }
      },
      {"owned by more than one device"});
}

TEST(ShardVerifyTest, OwnershipGapRejected) {
  // The dual defect: slide device 1's block start one row right and some
  // row is computed by no device at all.
  expectRejected(
      [](shard::ShardPlan &SP) {
        shard::FunShardPlan *FP = shardedFun(SP);
        ASSERT_NE(FP, nullptr);
        for (shard::KernelShard &KS : FP->Kernels)
          if (KS.Sharded && KS.ConstWidth >= 0 && KS.Blocks.size() >= 2) {
            KS.Blocks[1].first += 1;
            return;
          }
      },
      {"owned by no device"});
}

TEST(ShardVerifyTest, DroppedBoundaryTransferRejected) {
  // Remove the recorded all-gather: kernel 0's partitioned output is then
  // consumed whole by the reduction with no transfer to reassemble it.
  expectRejected(
      [](shard::ShardPlan &SP) {
        shard::FunShardPlan *FP = shardedFun(SP);
        ASSERT_NE(FP, nullptr);
        ASSERT_FALSE(FP->Transfers.empty());
        FP->Transfers.clear();
      },
      {"missing inter-device transfer"});
}

TEST(ShardVerifyTest, OverBudgetShardRejected) {
  // A one-byte budget no 64-byte shard can fit: the verifier re-derives
  // the peaks rather than trusting PlannedPeakBytes.
  expectRejected(
      [](shard::ShardPlan &SP) {
        shard::FunShardPlan *FP = shardedFun(SP);
        ASSERT_NE(FP, nullptr);
        FP->PerDeviceMemBytes = 1;
        // Forge the planner's own accounting too: the verifier must not
        // believe it.
        for (int64_t &B : FP->PlannedPeakBytes)
          B = 0;
      },
      {"over the per-device budget of 1"});
}

TEST(ShardVerifyTest, WidthMismatchRejected) {
  // Claim the kernel shards a different outer width than its grid has.
  expectRejected(
      [](shard::ShardPlan &SP) {
        shard::FunShardPlan *FP = shardedFun(SP);
        ASSERT_NE(FP, nullptr);
        for (shard::KernelShard &KS : FP->Kernels)
          if (KS.Sharded) {
            KS.Width = i32(999);
            return;
          }
      },
      {"but its outer grid dimension is"});
}

TEST(ShardVerifyTest, UnshardableKernelMarkedShardedRejected) {
  // Promote the gridless segmented reduction to sharded: the verifier's
  // independent analyseShardability re-derivation must refuse it.
  expectRejected(
      [](shard::ShardPlan &SP) {
        shard::FunShardPlan *FP = shardedFun(SP);
        ASSERT_NE(FP, nullptr);
        for (shard::KernelShard &KS : FP->Kernels)
          if (!KS.Sharded) {
            KS.Sharded = true;
            KS.ConstWidth = -1; // sidestep the block checks
            return;
          }
      },
      {"marked sharded but cannot be partitioned"});
}
