//===- check_test.cpp - Tests for the IR consistency checker ---------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "check/Check.h"

#include "driver/Compiler.h"
#include "ir/Builder.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

Type i32s() { return Type::scalar(ScalarKind::I32); }

} // namespace

TEST(CheckTest, FrontendOutputIsWellFormed) {
  NameSource NS;
  auto P = frontend("fun main (n: i32) (xs: [n]i32): i32 =\n"
                    "  reduce (+) 0 (map (+1) xs)",
                    NS);
  ASSERT_OK(P);
  auto Err = checkProgram(*P);
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.getError().str();
}

TEST(CheckTest, WholePipelineOutputIsWellFormed) {
  NameSource NS;
  auto C = compileSource(
      "fun main (a: [n][m]f32) (steps: i32): [n][m]f32 =\n"
      "  map (\\(row: [m]f32): [m]f32 ->\n"
      "         loop (r = row) for t < steps do\n"
      "           map (\\(x: f32): f32 -> x * 0.5) r)\n"
      "      a",
      NS);
  ASSERT_OK(C);
  auto Err = checkProgram(C->P);
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.getError().str();
}

TEST(CheckTest, UnboundVariableDetected) {
  NameSource NS;
  VName Ghost = NS.fresh("ghost");
  BodyBuilder BB(NS);
  SubExp R = BB.binOp(BinOp::Add, SubExp::var(Ghost), i32(1),
                      ScalarKind::I32);
  Program P = singleFun({}, {i32s()}, BB.finish({R}));
  auto Err = checkProgram(P);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.getError().Message.find("unbound"), std::string::npos);
}

TEST(CheckTest, DoubleBindingDetected) {
  NameSource NS;
  VName X = NS.fresh("x");
  BodyBuilder BB(NS);
  BB.append({Param(X, i32s())}, subExpE(i32(1)));
  BB.append({Param(X, i32s())}, subExpE(i32(2)));
  Program P = singleFun({}, {i32s()}, BB.finish({SubExp::var(X)}));
  auto Err = checkProgram(P);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.getError().Message.find("bound twice"), std::string::npos);
}

TEST(CheckTest, PatternArityMismatchDetected) {
  NameSource NS;
  VName C = NS.fresh("c");
  BodyBuilder TB(NS), EB(NS), BB(NS);
  Body Then = TB.finish({i32(1), i32(2)});
  Body Else = EB.finish({i32(3), i32(4)});
  // The if produces two values but the pattern binds one.
  VName R = NS.fresh("r");
  BB.append({Param(R, i32s())},
            std::make_unique<IfExp>(SubExp::var(C), std::move(Then),
                                    std::move(Else),
                                    std::vector<Type>{i32s(), i32s()}));
  Program P = singleFun({Param(C, Type::scalar(ScalarKind::Bool))},
                        {i32s()}, BB.finish({SubExp::var(R)}));
  auto Err = checkProgram(P);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.getError().Message.find("arity"), std::string::npos);
}

TEST(CheckTest, BadPermutationDetected) {
  NameSource NS;
  VName A = NS.fresh("a");
  BodyBuilder BB(NS);
  VName T = BB.bind("t", Type::array(ScalarKind::I32, {i32(2), i32(2)}),
                    std::make_unique<RearrangeExp>(std::vector<int>{0, 0},
                                                   A));
  Program P = singleFun(
      {Param(A, Type::array(ScalarKind::I32, {i32(2), i32(2)}))},
      {Type::array(ScalarKind::I32, {i32(2), i32(2)})},
      BB.finish({SubExp::var(T)}));
  auto Err = checkProgram(P);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.getError().Message.find("permutation"), std::string::npos);
}

TEST(CheckTest, ScalarUsedAsArrayDetected) {
  NameSource NS;
  VName X = NS.fresh("x");
  BodyBuilder BB(NS);
  SubExp R = BB.index(X, {i32(0)}, i32s());
  Program P = singleFun({Param(X, i32s())}, {i32s()}, BB.finish({R}));
  auto Err = checkProgram(P);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.getError().Message.find("scalar"), std::string::npos);
}

TEST(CheckTest, ReduceOperatorArityDetected) {
  NameSource NS;
  VName Xs = NS.fresh("xs");
  BodyBuilder BB(NS);
  // A reduce whose operator takes one parameter instead of two.
  VName P1 = NS.fresh("p");
  BodyBuilder LB(NS);
  Lambda Bad({Param(P1, i32s())}, LB.finish({SubExp::var(P1)}), {i32s()});
  VName R = BB.bind("r", i32s(),
                    std::make_unique<ReduceExp>(
                        i32(4), std::move(Bad), std::vector<SubExp>{i32(0)},
                        std::vector<VName>{Xs}));
  Program P = singleFun({Param(Xs, Type::array(ScalarKind::I32, {i32(4)}))},
                        {i32s()}, BB.finish({SubExp::var(R)}));
  auto Err = checkProgram(P);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.getError().Message.find("parameters"), std::string::npos);
}

TEST(CheckTest, AllBenchmarkPipelinesRecheck) {
  // The driver runs the checker after every phase (InternalChecks); this
  // test asserts the final artifact of a deep pipeline also rechecks
  // standalone.
  NameSource NS;
  auto C = compileSource(
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  stream_red (map (+))\n"
      "    (\\(acc: *[k]i32) (chunk: [chunksize]i32): [k]i32 ->\n"
      "       loop (acc) for i < chunksize do\n"
      "         let cl = chunk[i]\n"
      "         in acc with [cl] <- acc[cl] + 1)\n"
      "    (replicate k 0) membership",
      NS);
  ASSERT_OK(C);
  auto Err = checkProgram(C->P);
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.getError().str();
}
