//===- interp_test.cpp - Tests for the reference interpreter ---------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "ir/Builder.h"
#include "TestUtil.h"

#include <gtest/gtest.h>
#include <numeric>

using namespace fut;
using namespace fut::test;

namespace {

Type i32s() { return Type::scalar(ScalarKind::I32); }
Type i32v(SubExp D) { return Type::array(ScalarKind::I32, {D}); }

/// fun main (n: i32) (xs: [n]i32): ... with a body built by Fn.
Program vecProgram(
    const std::function<Body(NameSource &, VName N, VName Xs)> &MkBody,
    std::vector<Type> RetTypes) {
  NameSource NS;
  VName N = NS.fresh("n");
  VName Xs = NS.fresh("xs");
  Body B = MkBody(NS, N, Xs);
  return singleFun({Param(N, i32s()), Param(Xs, i32v(SubExp::var(N)))},
                   std::move(RetTypes), std::move(B));
}

Value vec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}
Value i32val(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }

} // namespace

TEST(InterpTest, MapAddsOne) {
  Program P = vecProgram(
      [](NameSource &NS, VName N, VName Xs) {
        BodyBuilder BB(NS);
        VName X = NS.fresh("x");
        BodyBuilder LB(NS);
        SubExp R = LB.binOp(BinOp::Add, SubExp::var(X), i32(1),
                            ScalarKind::I32);
        Lambda Fn({Param(X, i32s())}, LB.finish({R}), {i32s()});
        VName Out = BB.bind("out", i32v(SubExp::var(N)),
                            std::make_unique<MapExp>(
                                SubExp::var(N), std::move(Fn),
                                std::vector<VName>{Xs}));
        return BB.finish({SubExp::var(Out)});
      },
      {i32v(SubExp())});

  auto R = runOk(P, {i32val(4), vec({1, 2, 3, 4})});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0], vec({2, 3, 4, 5}));
}

TEST(InterpTest, ReduceSums) {
  Program P = vecProgram(
      [](NameSource &NS, VName N, VName Xs) {
        BodyBuilder BB(NS);
        Lambda Fn = binOpLambda(BinOp::Add, ScalarKind::I32, NS);
        VName Out = BB.bind("out", i32s(),
                            std::make_unique<ReduceExp>(
                                SubExp::var(N), std::move(Fn),
                                std::vector<SubExp>{i32(0)},
                                std::vector<VName>{Xs}));
        return BB.finish({SubExp::var(Out)});
      },
      {i32s()});

  auto R = runOk(P, {i32val(5), vec({1, 2, 3, 4, 5})});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0], i32val(15));
}

TEST(InterpTest, ScanComputesPrefixSums) {
  Program P = vecProgram(
      [](NameSource &NS, VName N, VName Xs) {
        BodyBuilder BB(NS);
        Lambda Fn = binOpLambda(BinOp::Add, ScalarKind::I32, NS);
        VName Out = BB.bind("out", i32v(SubExp::var(N)),
                            std::make_unique<ScanExp>(
                                SubExp::var(N), std::move(Fn),
                                std::vector<SubExp>{i32(0)},
                                std::vector<VName>{Xs}));
        return BB.finish({SubExp::var(Out)});
      },
      {i32v(SubExp())});

  auto R = runOk(P, {i32val(4), vec({1, 2, 3, 4})});
  EXPECT_EQ(R[0], vec({1, 3, 6, 10}));
}

TEST(InterpTest, LoopAccumulates) {
  // loop (acc = 0) for i < n do acc + xs[i]
  Program P = vecProgram(
      [](NameSource &NS, VName N, VName Xs) {
        BodyBuilder BB(NS);
        VName Acc = NS.fresh("acc");
        VName I = NS.fresh("i");
        BodyBuilder LB(NS);
        SubExp Xi = LB.index(Xs, {SubExp::var(I)}, i32s());
        SubExp R = LB.binOp(BinOp::Add, SubExp::var(Acc), Xi,
                            ScalarKind::I32);
        VName Out = BB.bind(
            "out", i32s(),
            std::make_unique<LoopExp>(
                std::vector<Param>{Param(Acc, i32s())},
                std::vector<SubExp>{i32(0)}, I, SubExp::var(N),
                LB.finish({R})));
        return BB.finish({SubExp::var(Out)});
      },
      {i32s()});

  auto R = runOk(P, {i32val(4), vec({10, 20, 30, 40})});
  EXPECT_EQ(R[0], i32val(100));
}

TEST(InterpTest, InPlaceUpdate) {
  Program P = vecProgram(
      [](NameSource &NS, VName N, VName Xs) {
        BodyBuilder BB(NS);
        VName Ys = BB.bind("ys", i32v(SubExp::var(N)),
                           std::make_unique<UpdateExp>(
                               Xs, std::vector<SubExp>{i32(1)}, i32(99)));
        return BB.finish({SubExp::var(Ys)});
      },
      {i32v(SubExp())});

  auto R = runOk(P, {i32val(3), vec({1, 2, 3})});
  EXPECT_EQ(R[0], vec({1, 99, 3}));
}

TEST(InterpTest, UpdateOutOfBoundsFails) {
  Program P = vecProgram(
      [](NameSource &NS, VName N, VName Xs) {
        BodyBuilder BB(NS);
        VName Ys = BB.bind("ys", i32v(SubExp::var(N)),
                           std::make_unique<UpdateExp>(
                               Xs, std::vector<SubExp>{i32(7)}, i32(0)));
        return BB.finish({SubExp::var(Ys)});
      },
      {i32v(SubExp())});
  Interpreter I(P);
  EXPECT_ERR_CONTAINS(I.run({i32val(3), vec({1, 2, 3})}), "out of bounds");
}

TEST(InterpTest, IotaReplicateConcat) {
  NameSource NS;
  BodyBuilder BB(NS);
  VName A = BB.bind("a", i32v(i32(3)),
                    std::make_unique<IotaExp>(i32(3), ScalarKind::I32));
  VName B = BB.bind("b", i32v(i32(2)),
                    std::make_unique<ReplicateExp>(i32(2), i32(7), i32s()));
  VName C = BB.bind("c", i32v(i32(5)),
                    std::make_unique<ConcatExp>(std::vector<VName>{A, B}));
  Program P = singleFun({}, {i32v(i32(5))}, BB.finish({SubExp::var(C)}));
  auto R = runOk(P, {});
  EXPECT_EQ(R[0], vec({0, 1, 2, 7, 7}));
}

TEST(InterpTest, RearrangeTransposes) {
  NameSource NS;
  VName M = NS.fresh("m");
  BodyBuilder BB(NS);
  VName T = BB.bind("t", Type::array(ScalarKind::I32, {i32(3), i32(2)}),
                    std::make_unique<RearrangeExp>(std::vector<int>{1, 0}, M));
  Program P = singleFun({Param(M, Type::array(ScalarKind::I32,
                                              {i32(2), i32(3)}))},
                        {Type::array(ScalarKind::I32, {i32(3), i32(2)})},
                        BB.finish({SubExp::var(T)}));
  Value In = Value::array(ScalarKind::I32, {2, 3},
                          {PrimValue::makeI32(1), PrimValue::makeI32(2),
                           PrimValue::makeI32(3), PrimValue::makeI32(4),
                           PrimValue::makeI32(5), PrimValue::makeI32(6)});
  auto R = runOk(P, {In});
  Value Want = Value::array(ScalarKind::I32, {3, 2},
                            {PrimValue::makeI32(1), PrimValue::makeI32(4),
                             PrimValue::makeI32(2), PrimValue::makeI32(5),
                             PrimValue::makeI32(3), PrimValue::makeI32(6)});
  EXPECT_EQ(R[0], Want);
}

TEST(InterpTest, IfBranches) {
  NameSource NS;
  VName C = NS.fresh("c");
  BodyBuilder BB(NS);
  BodyBuilder TB(NS);
  Body Then = TB.finish({i32(1)});
  BodyBuilder EB(NS);
  Body Else = EB.finish({i32(2)});
  VName R = BB.bind("r", i32s(),
                    std::make_unique<IfExp>(SubExp::var(C), std::move(Then),
                                            std::move(Else),
                                            std::vector<Type>{i32s()}));
  Program P = singleFun({Param(C, Type::scalar(ScalarKind::Bool))}, {i32s()},
                        BB.finish({SubExp::var(R)}));
  EXPECT_EQ(runOk(P, {Value::scalar(PrimValue::makeBool(true))})[0],
            i32val(1));
  EXPECT_EQ(runOk(P, {Value::scalar(PrimValue::makeBool(false))})[0],
            i32val(2));
}

TEST(InterpTest, IrregularMapFails) {
  // map (\i -> iota i) (iota n) produces irregular rows -> dynamic error,
  // matching the paper's dynamically checked regularity.
  NameSource NS;
  VName N = NS.fresh("n");
  BodyBuilder BB(NS);
  VName Is = BB.bind("is", i32v(SubExp::var(N)),
                     std::make_unique<IotaExp>(SubExp::var(N),
                                               ScalarKind::I32));
  VName I = NS.fresh("i");
  BodyBuilder LB(NS);
  VName Row = LB.bind("row", i32v(SubExp::var(I)),
                      std::make_unique<IotaExp>(SubExp::var(I),
                                                ScalarKind::I32));
  Lambda Fn({Param(I, i32s())}, LB.finish({SubExp::var(Row)}),
            {i32v(SubExp::var(I))});
  VName Out = BB.bind("out",
                      Type::array(ScalarKind::I32, {SubExp::var(N),
                                                    SubExp::var(N)}),
                      std::make_unique<MapExp>(SubExp::var(N), std::move(Fn),
                                               std::vector<VName>{Is}));
  Program P = singleFun({Param(N, i32s())},
                        {Type::array(ScalarKind::I32, {SubExp::var(N)})},
                        BB.finish({SubExp::var(Out)}));
  Interpreter In(P);
  EXPECT_ERR_CONTAINS(In.run({i32val(3)}), "irregular");
}

//===----------------------------------------------------------------------===//
// Streaming SOACs: the chunking-invariance property of Section 4.
//===----------------------------------------------------------------------===//

namespace {

/// stream_red (+) (\m acc chunk -> acc + sum chunk) 0 xs.
Program streamRedSum() {
  NameSource NS;
  VName N = NS.fresh("n");
  VName Xs = NS.fresh("xs");
  BodyBuilder BB(NS);

  Lambda Red = binOpLambda(BinOp::Add, ScalarKind::I32, NS);

  VName M = NS.fresh("m");
  VName Acc = NS.fresh("acc");
  VName Chunk = NS.fresh("chunk");
  BodyBuilder FB(NS);
  Lambda SumFn = binOpLambda(BinOp::Add, ScalarKind::I32, NS);
  VName S = FB.bind("s", i32s(),
                    std::make_unique<ReduceExp>(
                        SubExp::var(M), std::move(SumFn),
                        std::vector<SubExp>{i32(0)},
                        std::vector<VName>{Chunk}));
  SubExp R = FB.binOp(BinOp::Add, SubExp::var(Acc), SubExp::var(S),
                      ScalarKind::I32);
  Lambda Fold({Param(M, i32s()), Param(Acc, i32s()),
               Param(Chunk, i32v(SubExp::var(M)))},
              FB.finish({R}), {i32s()});

  VName Out = BB.bind("out", i32s(),
                      std::make_unique<StreamExp>(
                          StreamExp::FormKind::Red, SubExp::var(N),
                          std::move(Red), 1, std::vector<SubExp>{i32(0)},
                          std::move(Fold), std::vector<VName>{Xs}));
  return singleFun({Param(N, i32s()), Param(Xs, i32v(SubExp::var(N)))},
                   {i32s()}, BB.finish({SubExp::var(Out)}));
}

} // namespace

class StreamChunkingSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(StreamChunkingSweep, StreamRedIsChunkInvariant) {
  Program P = streamRedSum();
  std::vector<int64_t> Data = randomInts(37, 123);
  int64_t Want = std::accumulate(Data.begin(), Data.end(), int64_t(0));
  InterpOptions Opts;
  Opts.StreamChunk = GetParam();
  auto R = runOk(P, {i32val(37), vec(Data)}, Opts);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].getScalar().getInt(), Want);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, StreamChunkingSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 36, 37, 100));

TEST(InterpTest, StreamSeqThreadsAccumulator) {
  // stream_seq (\m acc chunk -> (acc + sum chunk, map (+acc) chunk)) 0 xs:
  // per-chunk results depend on the running accumulator.
  NameSource NS;
  VName N = NS.fresh("n");
  VName Xs = NS.fresh("xs");
  BodyBuilder BB(NS);

  VName M = NS.fresh("m");
  VName Acc = NS.fresh("acc");
  VName Chunk = NS.fresh("chunk");
  BodyBuilder FB(NS);
  Lambda SumFn = binOpLambda(BinOp::Add, ScalarKind::I32, NS);
  VName S = FB.bind("s", i32s(),
                    std::make_unique<ReduceExp>(
                        SubExp::var(M), std::move(SumFn),
                        std::vector<SubExp>{i32(0)},
                        std::vector<VName>{Chunk}));
  SubExp NewAcc = FB.binOp(BinOp::Add, SubExp::var(Acc), SubExp::var(S),
                           ScalarKind::I32);
  VName X = NS.fresh("x");
  BodyBuilder MB(NS);
  SubExp MR = MB.binOp(BinOp::Add, SubExp::var(X), SubExp::var(Acc),
                       ScalarKind::I32);
  Lambda MapFn({Param(X, i32s())}, MB.finish({MR}), {i32s()});
  VName Mapped = FB.bind("mapped", i32v(SubExp::var(M)),
                         std::make_unique<MapExp>(SubExp::var(M),
                                                  std::move(MapFn),
                                                  std::vector<VName>{Chunk}));
  Lambda Fold({Param(M, i32s()), Param(Acc, i32s()),
               Param(Chunk, i32v(SubExp::var(M)))},
              FB.finish({NewAcc, SubExp::var(Mapped)}),
              {i32s(), i32v(SubExp::var(M))});

  auto Outs = BB.bindMulti("out", {i32s(), i32v(SubExp::var(N))},
                           std::make_unique<StreamExp>(
                               StreamExp::FormKind::Seq, SubExp::var(N),
                               Lambda(), 1, std::vector<SubExp>{i32(0)},
                               std::move(Fold), std::vector<VName>{Xs}));
  Program P = singleFun({Param(N, i32s()), Param(Xs, i32v(SubExp::var(N)))},
                        {i32s(), i32v(SubExp::var(N))},
                        BB.finish({SubExp::var(Outs[0]),
                                   SubExp::var(Outs[1])}));

  // With chunk size 2 on [1,2,3,4]: chunk1 acc 0 -> mapped [1,2], acc 3;
  // chunk2 acc 3 -> mapped [6,7], acc 10.
  InterpOptions Opts;
  Opts.StreamChunk = 2;
  auto R = runOk(P, {i32val(4), vec({1, 2, 3, 4})}, Opts);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0], i32val(10));
  EXPECT_EQ(R[1], vec({1, 2, 6, 7}));
}

TEST(InterpTest, ShapeMismatchDetected) {
  Program P = vecProgram(
      [](NameSource &NS, VName N, VName Xs) {
        BodyBuilder BB(NS);
        return BB.finish({SubExp::var(Xs)});
      },
      {i32v(SubExp())});
  Interpreter I(P);
  // Claim n=5 but pass 3 elements.
  EXPECT_ERR_CONTAINS(I.run({i32val(5), vec({1, 2, 3})}), "shape mismatch");
}

TEST(InterpTest, StepLimitGuards) {
  // loop (x=0) for i < 1000000 do x+1 with a tiny step budget.
  Program P = vecProgram(
      [](NameSource &NS, VName N, VName Xs) {
        BodyBuilder BB(NS);
        VName Acc = NS.fresh("acc");
        VName I = NS.fresh("i");
        BodyBuilder LB(NS);
        SubExp R = LB.binOp(BinOp::Add, SubExp::var(Acc), i32(1),
                            ScalarKind::I32);
        VName Out = BB.bind("out", i32s(),
                            std::make_unique<LoopExp>(
                                std::vector<Param>{Param(Acc, i32s())},
                                std::vector<SubExp>{i32(0)}, I,
                                i32(1000000), LB.finish({R})));
        return BB.finish({SubExp::var(Out)});
      },
      {i32s()});
  InterpOptions Opts;
  Opts.MaxSteps = 1000;
  Interpreter I(P, Opts);
  EXPECT_ERR_CONTAINS(I.run({i32val(0), vec({})}), "step limit");
}
