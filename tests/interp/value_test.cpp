//===- value_test.cpp - Tests for the runtime value representation ---------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include <gtest/gtest.h>

using namespace fut;

namespace {

Value mat23() {
  return Value::array(ScalarKind::I32, {2, 3},
                      {PrimValue::makeI32(1), PrimValue::makeI32(2),
                       PrimValue::makeI32(3), PrimValue::makeI32(4),
                       PrimValue::makeI32(5), PrimValue::makeI32(6)});
}

} // namespace

TEST(ValueTest, ScalarBasics) {
  Value V = Value::scalar(PrimValue::makeF64(2.5));
  EXPECT_TRUE(V.isScalar());
  EXPECT_EQ(V.rank(), 0);
  EXPECT_EQ(V.numElems(), 1);
  EXPECT_EQ(V.elemKind(), ScalarKind::F64);
}

TEST(ValueTest, ArrayShapeAndIndexing) {
  Value M = mat23();
  EXPECT_EQ(M.rank(), 2);
  EXPECT_EQ(M.outerSize(), 2);
  EXPECT_EQ(M.rowElems(), 3);
  EXPECT_EQ(M.numElems(), 6);
  EXPECT_EQ(M.at({1, 2}), PrimValue::makeI32(6));
  EXPECT_EQ(M.flatIndex({1, 0}), 3);
  EXPECT_TRUE(M.inBounds({1, 2}));
  EXPECT_FALSE(M.inBounds({2, 0}));
  EXPECT_FALSE(M.inBounds({0, -1}));
}

TEST(ValueTest, RowSlicing) {
  Value M = mat23();
  Value R1 = M.row(1);
  EXPECT_EQ(R1.rank(), 1);
  EXPECT_EQ(R1.outerSize(), 3);
  EXPECT_EQ(R1.at({0}), PrimValue::makeI32(4));

  // A full-depth slice is a scalar.
  Value S = M.slice({0, 1});
  EXPECT_TRUE(S.isScalar());
  EXPECT_EQ(S.getScalar(), PrimValue::makeI32(2));
}

TEST(ValueTest, CopyOnWriteSharing) {
  Value A = mat23();
  Value B = A; // shares the payload
  EXPECT_FALSE(A.uniquelyHeld());
  B.flatMut()[0] = PrimValue::makeI32(99);
  // The write went to a private copy.
  EXPECT_EQ(A.at({0, 0}), PrimValue::makeI32(1));
  EXPECT_EQ(B.at({0, 0}), PrimValue::makeI32(99));
}

TEST(ValueTest, UniquelyHeldUpdatesInPlace) {
  Value A = mat23();
  EXPECT_TRUE(A.uniquelyHeld());
  const PrimValue *Before = A.flat().data();
  A.flatMut()[0] = PrimValue::makeI32(7);
  EXPECT_EQ(A.flat().data(), Before)
      << "no copy for a uniquely held array (the O(1) update of §3)";
}

TEST(ValueTest, EqualityIsStructural) {
  EXPECT_EQ(mat23(), mat23());
  Value Other = mat23();
  Other.flatMut()[5] = PrimValue::makeI32(0);
  EXPECT_NE(mat23(), Other);
  // Shape matters even with equal payloads.
  Value Flat = Value::array(ScalarKind::I32, {6},
                            mat23().flat());
  EXPECT_NE(mat23(), Flat);
}

TEST(ValueTest, ApproxEqualTolerance) {
  Value A = makeVectorValue(ScalarKind::F32, {1.0, 2.0, 3.0});
  Value B = makeVectorValue(ScalarKind::F32, {1.0 + 1e-7, 2.0, 3.0});
  Value C = makeVectorValue(ScalarKind::F32, {1.1, 2.0, 3.0});
  EXPECT_TRUE(A.approxEqual(B));
  EXPECT_FALSE(A.approxEqual(C));
  // Kind-sensitive.
  Value D = makeVectorValue(ScalarKind::F64, {1.0, 2.0, 3.0});
  EXPECT_FALSE(A.approxEqual(D));
}

TEST(ValueTest, FilledArrayAndHelpers) {
  Value Z = Value::filledArray(ScalarKind::F32, {4}, PrimValue::makeF32(0));
  EXPECT_EQ(Z.numElems(), 4);
  for (int64_t I = 0; I < 4; ++I)
    EXPECT_EQ(Z.at({I}), PrimValue::makeF32(0));

  Value M = makeMatrixValue(ScalarKind::F64, 2, 2, {1, 2, 3, 4});
  EXPECT_EQ(M.at({1, 1}), PrimValue::makeF64(4));
  Value IV = makeIntVectorValue(ScalarKind::I64, {10, 20});
  EXPECT_EQ(IV.at({1}), PrimValue::makeI64(20));
}

TEST(ValueTest, EmptyArrays) {
  Value E = Value::array(ScalarKind::I32, {0}, {});
  EXPECT_EQ(E.numElems(), 0);
  EXPECT_EQ(E.outerSize(), 0);
  EXPECT_EQ(E, Value::array(ScalarKind::I32, {0}, {}));
  EXPECT_NE(E, Value::array(ScalarKind::F32, {0}, {}));
}

TEST(ValueTest, StringificationTruncates) {
  std::vector<double> Big(100, 1.0);
  Value V = makeVectorValue(ScalarKind::F32, Big);
  std::string S = V.str();
  EXPECT_NE(S.find("..."), std::string::npos);
  EXPECT_LT(S.size(), 2000u);
}
