//===- flatten_test.cpp - Tests for kernel extraction ----------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Property: flattening preserves semantics (checked against the reference
// interpreter), and produces the kernel structures Section 5 prescribes
// (including the Fig 11 example).
//
//===----------------------------------------------------------------------===//

#include "flatten/Flatten.h"

#include "fusion/Fusion.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "ir/Traversal.h"
#include "opt/Simplify.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

struct Compiled {
  Program Before;
  Program After;
  FlattenStats Stats;
};

Compiled compileAndFlatten(const std::string &Src, bool Fuse = true,
                           FlattenOptions Opts = {}) {
  NameSource NS;
  auto P = frontend(Src, NS);
  EXPECT_TRUE(static_cast<bool>(P)) << P.getError().str();
  Compiled Out{Program{}, P ? P.take() : Program{}, {}};
  inlineFunctions(Out.After, NS);
  simplifyProgram(Out.After, NS);
  if (Fuse)
    fuseProgram(Out.After, NS);
  simplifyProgram(Out.After, NS);
  for (const FunDef &F : Out.After.Funs)
    Out.Before.Funs.push_back(
        {F.Name, F.Params, F.RetTypes, cloneBody(F.FBody)});
  Out.Stats = extractKernels(Out.After, NS, Opts);
  simplifyProgram(Out.After, NS);
  return Out;
}

int countKernels(const Body &B, KernelExp::OpKind Op) {
  int N = 0;
  for (const Stm &S : B.Stms) {
    if (const auto *K = expDynCast<KernelExp>(S.E.get()))
      if (K->Op == Op)
        ++N;
    forEachChildBody(*S.E, [&](const Body &Inner) {
      N += countKernels(Inner, Op);
    });
  }
  return N;
}

/// SOACs remaining at host level (outside kernels) — should always be 0
/// after flattening.
int hostSOACs(const Body &B) {
  int N = 0;
  for (const Stm &S : B.Stms) {
    if (S.E->isSOAC())
      ++N;
    if (const auto *L = expDynCast<LoopExp>(S.E.get()))
      N += hostSOACs(L->LoopBody);
    if (const auto *I = expDynCast<IfExp>(S.E.get())) {
      N += hostSOACs(I->Then);
      N += hostSOACs(I->Else);
    }
  }
  return N;
}

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}
Value fvec(const std::vector<double> &Xs) {
  return makeVectorValue(ScalarKind::F32, Xs);
}

void expectSame(const Compiled &C, const std::vector<Value> &Args) {
  Interpreter I1(C.Before), I2(C.After);
  auto R1 = I1.run(Args);
  auto R2 = I2.run(Args);
  ASSERT_TRUE(static_cast<bool>(R1)) << R1.getError().str();
  ASSERT_TRUE(static_cast<bool>(R2))
      << R2.getError().str() << "\n"
      << printProgram(C.After);
  ASSERT_EQ(R1->size(), R2->size());
  for (size_t I = 0; I < R1->size(); ++I)
    EXPECT_TRUE((*R1)[I].approxEqual((*R2)[I]))
        << "result " << I << ":\n"
        << (*R1)[I].str() << "\nvs\n"
        << (*R2)[I].str() << "\n"
        << printProgram(C.After);
}

} // namespace

TEST(FlattenTest, SimpleMapBecomesKernel) {
  Compiled C = compileAndFlatten(
      "fun main (n: i32) (xs: [n]i32): [n]i32 = map (+1) xs");
  EXPECT_EQ(C.Stats.ThreadKernels, 1);
  EXPECT_EQ(hostSOACs(C.After.Funs[0].FBody), 0);
  expectSame(C, {iv(4), ivec({1, 2, 3, 4})});
}

TEST(FlattenTest, NestedMapBecomesDeepGrid) {
  Compiled C = compileAndFlatten(
      "fun main (a: [n][m]i32): [n][m]i32 =\n"
      "  map (\\(row: [m]i32): [m]i32 -> map (*2) row) a");
  // One kernel with a two-dimensional grid.
  const Body &B = C.After.Funs[0].FBody;
  bool Found = false;
  std::function<void(const Body &)> Scan = [&](const Body &Bo) {
    for (const Stm &S : Bo.Stms) {
      if (const auto *K = expDynCast<KernelExp>(S.E.get())) {
        Found = true;
        EXPECT_EQ(K->GridDims.size(), 2u) << printProgram(C.After);
      }
      forEachChildBody(*S.E, Scan);
    }
  };
  Scan(B);
  EXPECT_TRUE(Found);
  expectSame(C, {makeMatrixValue(ScalarKind::I32, 2, 3,
                                 {1, 2, 3, 4, 5, 6})});
}

TEST(FlattenTest, MapReduceRowSums) {
  Compiled C = compileAndFlatten(
      "fun main (a: [n][m]f32): [n]f32 =\n"
      "  map (\\(row: [m]f32): f32 -> reduce (+) 0.0 row) a",
      /*Fuse=*/false);
  EXPECT_EQ(C.Stats.SegReduces, 1);
  expectSame(C, {makeMatrixValue(ScalarKind::F32, 3, 2,
                                 {1, 2, 3, 4, 5, 6})});
}

TEST(FlattenTest, PaperIntroExample) {
  Compiled C = compileAndFlatten(
      "fun main (xss: [n][m]f32): ([n][m]f32, [n]f32) =\n"
      "  let r = map (\\(row: [m]f32): ([m]f32, f32) ->\n"
      "       let row2 = map (\\(x: f32): f32 -> x + 1.0) row\n"
      "       let s = reduce (+) 0.0 row\n"
      "       in (row2, s))\n"
      "    xss\n"
      "  in r");
  EXPECT_EQ(hostSOACs(C.After.Funs[0].FBody), 0);
  expectSame(C, {makeMatrixValue(ScalarKind::F32, 2, 3,
                                 {1, 2, 3, 4, 5, 6})});
}

TEST(FlattenTest, HostReduceBecomesSegReduce) {
  Compiled C = compileAndFlatten(
      "fun main (n: i32) (xs: [n]i32): i32 = reduce (+) 0 xs",
      /*Fuse=*/false);
  EXPECT_EQ(C.Stats.SegReduces, 1);
  expectSame(C, {iv(5), ivec({1, 2, 3, 4, 5})});
}

TEST(FlattenTest, HostScanBecomesSegScan) {
  Compiled C = compileAndFlatten(
      "fun main (n: i32) (xs: [n]i32): [n]i32 = scan (+) 0 xs",
      /*Fuse=*/false);
  EXPECT_EQ(C.Stats.SegScans, 1);
  expectSame(C, {iv(5), ivec({1, 2, 3, 4, 5})});
}

TEST(FlattenTest, VectorisedReduceBecomesSegmentedG5) {
  // Rule G5: reduce (map (+)) (replicate k 0) over [n][k] data.
  Compiled C = compileAndFlatten(
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  let increments =\n"
      "    map (\\(cluster: i32): [k]i32 ->\n"
      "           let incr = replicate k 0\n"
      "           let incr[cluster] = 1\n"
      "           in incr)\n"
      "        membership\n"
      "  in reduce (map (+)) (replicate k 0) increments",
      /*Fuse=*/false);
  EXPECT_GE(C.Stats.VectorisedReduceInterchanges, 1)
      << printProgram(C.After);
  expectSame(C, {iv(3), iv(6), ivec({0, 1, 0, 2, 1, 0})});
}

TEST(FlattenTest, MapLoopInterchangeG7) {
  // A loop separating the outer map from an inner map (the LocVolCalib
  // structure): G7 hoists the loop to the host.
  const char *Src =
      "fun main (a: [n][m]f32) (steps: i32): [n][m]f32 =\n"
      "  map (\\(row: [m]f32): [m]f32 ->\n"
      "         loop (r = row) for t < steps do\n"
      "           map (\\(x: f32): f32 -> x * 0.5 + 1.0) r)\n"
      "      a";
  Compiled C = compileAndFlatten(Src);
  EXPECT_EQ(C.Stats.Interchanges, 1) << printProgram(C.After);
  // The loop must now be at host level containing a kernel.
  bool HostLoopWithKernel = false;
  for (const Stm &S : C.After.Funs[0].FBody.Stms)
    if (const auto *L = expDynCast<LoopExp>(S.E.get()))
      HostLoopWithKernel =
          countKernels(L->LoopBody, KernelExp::OpKind::ThreadBody) > 0;
  EXPECT_TRUE(HostLoopWithKernel) << printProgram(C.After);
  expectSame(C, {makeMatrixValue(ScalarKind::F32, 2, 3,
                                 {1, 2, 3, 4, 5, 6}),
                 iv(3)});
}

TEST(FlattenTest, InterchangeDisabledSequentialises) {
  const char *Src =
      "fun main (a: [n][m]f32) (steps: i32): [n][m]f32 =\n"
      "  map (\\(row: [m]f32): [m]f32 ->\n"
      "         loop (r = row) for t < steps do\n"
      "           map (\\(x: f32): f32 -> x * 0.5 + 1.0) r)\n"
      "      a";
  FlattenOptions Opts;
  Opts.EnableInterchange = false;
  Compiled C = compileAndFlatten(Src, true, Opts);
  EXPECT_EQ(C.Stats.Interchanges, 0);
  expectSame(C, {makeMatrixValue(ScalarKind::F32, 2, 3,
                                 {1, 2, 3, 4, 5, 6}),
                 iv(2)});
}

TEST(FlattenTest, IrregularInnerSizeIsSequentialised) {
  // The paper's Fig 11 pattern: scan (+) 0 (iota p) where p is variant to
  // the nest — would create an irregular array, so it is sequentialised.
  const char *Src =
      "fun main (ps: [m]i32): [m]i32 =\n"
      "  map (\\(p: i32): i32 ->\n"
      "         let cs = scan (+) 0 (iota p)\n"
      "         in reduce (+) 0 cs)\n"
      "      ps";
  Compiled C = compileAndFlatten(Src, /*Fuse=*/false);
  EXPECT_GE(C.Stats.SequentialisedSOACs, 1);
  EXPECT_EQ(C.Stats.SegScans, 0);
  expectSame(C, {ivec({1, 2, 3, 4})});
}

TEST(FlattenTest, Fig11ComplicatedNesting) {
  // The (slightly de-contrived) example of Fig 11: an outer map over an
  // inner map with irregular sequential work, plus a loop with a nested
  // map-reduce, distributing into several perfect nests.
  const char *Src =
      "fun main (pss: [m][m]i32) (q: i32): ([m][m]i32, [m][m]i32) =\n"
      "  let r = map (\\(ps: [m]i32): ([m]i32, [m]i32) ->\n"
      "        let ass = map (\\(p: i32): i32 ->\n"
      "                let cs = scan (+) 0 (iota p)\n"
      "                let r2 = reduce (+) 0 cs\n"
      "                in r2 + p) ps\n"
      "        let bs =\n"
      "          loop (ws = ps) for i < q do\n"
      "            map (\\(a: i32) (w: i32): i32 ->\n"
      "                   let d = a * 2\n"
      "                   let e = d + w\n"
      "                   in 2 * e)\n"
      "                ass ws\n"
      "        in (ass, bs)) pss\n"
      "  in r";
  Compiled C = compileAndFlatten(Src);
  EXPECT_GE(C.Stats.Interchanges, 1) << printProgram(C.After);
  EXPECT_EQ(hostSOACs(C.After.Funs[0].FBody), 0);
  expectSame(C, {Value::array(ScalarKind::I32, {2, 2},
                              {PrimValue::makeI32(1), PrimValue::makeI32(2),
                               PrimValue::makeI32(3),
                               PrimValue::makeI32(4)}),
                 iv(3)});
}

TEST(FlattenTest, StreamRedBecomesChunkedKernels) {
  Compiled C = compileAndFlatten(
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  stream_red (map (+))\n"
      "    (\\(acc: *[k]i32) (chunk: [chunksize]i32): [k]i32 ->\n"
      "       loop (acc) for i < chunksize do\n"
      "         let cluster = chunk[i]\n"
      "         in acc with [cluster] <- acc[cluster] + 1)\n"
      "    (replicate k 0) membership");
  EXPECT_GE(C.Stats.ThreadKernels, 1);
  EXPECT_GE(C.Stats.SegReduces, 1);
  EXPECT_EQ(hostSOACs(C.After.Funs[0].FBody), 0) << printProgram(C.After);
  expectSame(C, {iv(3), iv(8), ivec({0, 1, 0, 2, 1, 0, 2, 2})});
}

TEST(FlattenTest, HostLoopWithInnerMapStaysHostLoop) {
  // HotSpot-like: a sequential host loop of stencil kernels.
  const char *Src =
      "fun main (n: i32) (xs: [n]f32) (iters: i32): [n]f32 =\n"
      "  loop (a = xs) for t < iters do\n"
      "    map (\\(i: i32): f32 ->\n"
      "           let l = if i > 0 then a[i - 1] else a[i]\n"
      "           let r = if i < n - 1 then a[i + 1] else a[i]\n"
      "           in (l + r + a[i]) / 3.0)\n"
      "        (iota n)";
  Compiled C = compileAndFlatten(Src);
  EXPECT_GE(C.Stats.ThreadKernels, 1);
  EXPECT_EQ(hostSOACs(C.After.Funs[0].FBody), 0);
  expectSame(C, {iv(5), fvec({1, 2, 3, 4, 5}), iv(3)});
}

TEST(FlattenTest, MandelbrotLikeLoopStaysInThread) {
  // A sequential scalar loop inside a map must NOT be interchanged
  // (it would make the program memory-bound, as the paper notes).
  const char *Src =
      "fun main (n: i32) (cs: [n]f32): [n]i32 =\n"
      "  map (\\(c: f32): i32 ->\n"
      "         let (z, count) = loop ((z, count) = (0.0, 0)) for i < 16 do\n"
      "           let z2 = z * z + c\n"
      "           let cnt = if z2 < 2.0 then count + 1 else count\n"
      "           in (z2, cnt)\n"
      "         in count)\n"
      "      cs";
  Compiled C = compileAndFlatten(Src);
  EXPECT_EQ(C.Stats.Interchanges, 0);
  EXPECT_EQ(C.Stats.ThreadKernels, 1);
  expectSame(C, {iv(4), fvec({0.1, -0.5, 0.3, -1.0})});
}

TEST(FlattenTest, FusedRedomapSequentialisedInsideMap) {
  // N-body structure: after fusion the inner map+reduce is a stream_red,
  // which a nested context sequentialises (Section 5.1 heuristics).
  const char *Src =
      "fun main (n: i32) (bodies: [n]f32): [n]f32 =\n"
      "  map (\\(p: f32): f32 ->\n"
      "         reduce (+) 0.0 (map (\\(q: f32): f32 -> q - p) bodies))\n"
      "      bodies";
  Compiled C = compileAndFlatten(Src);
  EXPECT_GE(C.Stats.SequentialisedSOACs, 1);
  EXPECT_EQ(C.Stats.ThreadKernels, 1);
  expectSame(C, {iv(4), fvec({1, 2, 3, 4})});
}

// Regression for the checked-lookup sweep: the flattener's name-resolution
// maps (TopTypes, Avail, InnerTypes) are read with .at() instead of
// operator[], so a missing key is a loud lookup failure instead of a
// silently default-inserted empty Type/Expansion that would flow onward as
// a rank-0 i32.  These programs drive every converted read site — the
// host-level reduce_by_index index-array type lookup, the loop-in-map
// merge-init expansion lookup, and the segment-result typing of kernel
// body results — and must still flatten and agree with the interpreter.
TEST(FlattenTest, CheckedLookupsResolveAcrossConstructs) {
  // TopTypes.at(IndexArr): a computed (non-iota) index array.
  Compiled Hist = compileAndFlatten(
      "fun main (n: i32) (xs: [n]i32): [8]i32 =\n"
      "  let bins = map (\\(x: i32): i32 -> x % 8) xs\n"
      "  let ones = map (\\(x: i32): i32 -> 1) xs\n"
      "  in reduce_by_index (replicate 8 0) (+) 0 bins ones");
  std::vector<int64_t> Data = randomInts(12, 11, 0, 99);
  expectSame(Hist, {iv(12), ivec(Data)});

  // Avail.at(init)/InnerTypes.at(result): a sequential loop inside a map
  // whose merge init is an expanded inner binding (the G7 interchange
  // path), with a multi-value flavour via the outer map's own results.
  Compiled LoopInMap = compileAndFlatten(
      "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
      "  map (\\(x: i32): i32 ->\n"
      "        let s = x + 1\n"
      "        in loop (a = s) for i < 3 do a * 2 - 1) xs");
  expectSame(LoopInMap, {iv(12), ivec(Data)});
}

//===----------------------------------------------------------------------===//
// Randomised semantics-preservation sweep
//===----------------------------------------------------------------------===//

struct FlattenCase {
  const char *Name;
  const char *Src;
};

class FlattenPreservation : public ::testing::TestWithParam<FlattenCase> {};

TEST_P(FlattenPreservation, SameResults) {
  Compiled C = compileAndFlatten(GetParam().Src);
  std::vector<int64_t> Data = randomInts(12, 7, 0, 9);
  expectSame(C, {iv(12), ivec(Data)});
}

INSTANTIATE_TEST_SUITE_P(
    Programs, FlattenPreservation,
    ::testing::Values(
        FlattenCase{"mapchain",
                    "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                    "  map (+1) (map (*2) (map (+3) xs))"},
        FlattenCase{"mapreduce",
                    "fun main (n: i32) (xs: [n]i32): i32 =\n"
                    "  reduce (+) 0 (map (\\(x: i32): i32 -> x * x) xs)"},
        FlattenCase{"scanofmap",
                    "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                    "  scan (+) 0 (map (+1) xs)"},
        FlattenCase{"loopofmaps",
                    "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                    "  loop (a = xs) for i < 4 do map (+1) a"},
        FlattenCase{"maxreduce",
                    "fun main (n: i32) (xs: [n]i32): i32 =\n"
                    "  reduce max 0 (map (*3) xs)"}),
    [](const ::testing::TestParamInfo<FlattenCase> &Info) {
      return Info.param.Name;
    });
