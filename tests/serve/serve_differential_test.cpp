//===- serve_differential_test.cpp - Differential harness through serve ---===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seeded differential harness routed through futharkcc-serve: each
/// generated program is served three ways — cold cache, warm cache
/// (second request of the same source, which must be a cache hit), and
/// under 1% injected faults — and every response must be bit-identical
/// to the reference interpreter run of the unoptimised frontend output.
/// This is the end-to-end proof that the serving layer's caching,
/// admission and recovery machinery is value-transparent.
///
//===----------------------------------------------------------------------===//

#include "Differential.h"
#include "parser/Desugar.h"
#include "serve/Serve.h"

#include <gtest/gtest.h>

#include <map>

using namespace fut;
using namespace fut::test;

namespace {

using serve::ServeResponse;

constexpr uint64_t kNumSeeds = 20;

/// Reference leg: the unoptimised frontend output on the plain
/// interpreter (same as runDifferential's reference side).
ErrorOr<std::vector<Value>> referenceRun(const GeneratedProgram &GP) {
  NameSource Names;
  auto P = frontend(GP.Source, Names);
  if (!P)
    return P.getError();
  InterpOptions IO;
  IO.ConsumeOnUpdate = true;
  Program Prog = P.take();
  Interpreter I(Prog, IO);
  return I.run(GP.Args);
}

void expectMatches(const ServeResponse &R, const std::vector<Value> &Ref,
                   const GeneratedProgram &GP, const char *Leg) {
  ASSERT_TRUE(R.Ok) << Leg << " leg failed (seed " << GP.Seed
                    << "): " << R.Message << "\nprogram:\n"
                    << GP.Source;
  ASSERT_EQ(R.Outputs.size(), Ref.size())
      << Leg << " arity mismatch (seed " << GP.Seed << ")";
  for (size_t J = 0; J < Ref.size(); ++J)
    EXPECT_TRUE(R.Outputs[J] == Ref[J])
        << Leg << " result " << J << " differs (seed " << GP.Seed
        << ")\n  served:    " << R.Outputs[J].str()
        << "\n  reference: " << Ref[J].str() << "\nprogram:\n"
        << GP.Source;
}

class ServeDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServeDifferentialTest, ColdWarmAndFaultyLegsMatchReference) {
  GeneratedProgram GP = generateProgram(GetParam());
  auto Ref = referenceRun(GP);
  ASSERT_TRUE(static_cast<bool>(Ref))
      << "reference failed (seed " << GP.Seed
      << "): " << Ref.getError().str();

  serve::Server S;
  auto Submit = [&](double Arrival, double FaultRate, uint64_t Seed) {
    serve::ServeRequest R;
    R.Source = GP.Source;
    R.Args = GP.Args;
    R.ArrivalCycle = Arrival;
    R.Limits.LaunchFailRate = FaultRate;
    R.Limits.CorruptRate = FaultRate;
    R.Limits.FaultSeed = Seed;
    return S.submit(std::move(R));
  };
  uint64_t Cold = Submit(0, 0, 0);
  uint64_t Warm = Submit(1e7, 0, 0);
  uint64_t Faulty = Submit(2e7, 0.01, GetParam() ^ 0x5e77eULL);

  // The drain may complete requests in any order, so key responses by id
  // and demand every submitted id is actually present — operator[] would
  // silently default-construct a miss, and a default ServeResponse has
  // CacheHit == false, which is exactly what the cold leg expects.
  std::map<uint64_t, ServeResponse> ById;
  for (ServeResponse &R : S.drain())
    ById.emplace(R.Id, std::move(R));
  ASSERT_EQ(ById.size(), 3u);
  for (uint64_t Id : {Cold, Warm, Faulty})
    ASSERT_EQ(ById.count(Id), 1u)
        << "drain lost request " << Id << " (seed " << GP.Seed << ")";

  expectMatches(ById.at(Cold), *Ref, GP, "cold");
  EXPECT_FALSE(ById.at(Cold).CacheHit)
      << "first request of this source cannot be a cache hit (seed "
      << GP.Seed << ")";
  expectMatches(ById.at(Warm), *Ref, GP, "warm");
  EXPECT_TRUE(ById.at(Warm).CacheHit)
      << "second identical request must be served from the cache (seed "
      << GP.Seed << ")";
  expectMatches(ById.at(Faulty), *Ref, GP, "faulty");
  EXPECT_TRUE(ById.at(Faulty).CacheHit)
      << "third identical request must be served from the cache (seed "
      << GP.Seed << ")";
  // Pin the hit count independently of drain order: exactly one of the
  // three responses compiled, whichever it was.
  int Hits = 0;
  for (const auto &[Id, R] : ById)
    Hits += R.CacheHit ? 1 : 0;
  EXPECT_EQ(Hits, 2) << "exactly one leg compiles (seed " << GP.Seed << ")";
  EXPECT_EQ(S.stats().Compiles, 1)
      << "one artifact serves all three legs (seed " << GP.Seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeDifferentialTest,
                         ::testing::Range<uint64_t>(0, kNumSeeds));

} // namespace
