//===- artifact_store_test.cpp - On-disk artifact cache contracts ---------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence contracts of the serving layer's artifact store:
/// serialization round-trips the complete CompileResult (program, memory
/// plan, shard plan, pass statistics — same fingerprint, same canonical
/// dumps, same execution results), a restarted server serves its former
/// working set from disk as cache hits without a single compile, and a
/// corrupted file is rejected by the fingerprint check and degrades to a
/// recompile that overwrites it.
///
//===----------------------------------------------------------------------===//

#include "serve/ArtifactStore.h"
#include "serve/Serve.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace fut;
using namespace fut::serve;

namespace {

/// Covers every major IR shape: a loop (with AD tape when differentiated),
/// maps, a reduce, and scalar glue.
const char *kTrain = "fun main (n: i32) (w0: f64): f64 =\n"
                     "  let xs = map (\\(i: i32): f64 -> f64 i / 64.0f64)\n"
                     "               (iota n)\n"
                     "  let w = loop (w = w0) for t < 8 do\n"
                     "    let g = reduce (+) 0.0f64\n"
                     "              (map (\\(x: f64): f64 -> w * x - x) xs)\n"
                     "    in w - 0.1f64 * g\n"
                     "  in w\n";

const char *kHist = "fun main (n: i32): i32 =\n"
                    "  let bins = map (\\(i: i32): i32 -> i % 16) (iota n)\n"
                    "  let ones = map (\\(i: i32): i32 -> 1) (iota n)\n"
                    "  let h = reduce_by_index (replicate 16 0) (+) 0\n"
                    "            bins ones\n"
                    "  in reduce (+) 0 h\n";

/// A fresh empty directory under the system temp root.
std::string freshDir(const std::string &Name) {
  std::string Dir =
      (std::filesystem::temp_directory_path() / ("futa_" + Name)).string();
  std::filesystem::remove_all(Dir);
  return Dir;
}

CompileResult compile(const char *Source, const CompilerOptions &Opts = {}) {
  NameSource Names;
  auto C = compileSource(Source, Names, Opts);
  EXPECT_TRUE(static_cast<bool>(C)) << (C ? "" : C.getError().str());
  return C.take();
}

std::vector<Value> run(const CompileResult &C, const std::vector<Value> &Args,
                       const std::string &Fun = "main") {
  DeviceRunOptions RO;
  RO.Device.AsyncTimeline = false;
  RO.MemPlan = &C.MemPlan;
  auto R = runOnDevice(C.P, Args, RO, Fun);
  EXPECT_TRUE(static_cast<bool>(R)) << (R ? "" : R.getError().str());
  return R ? R->Outputs : std::vector<Value>{};
}

ServeRequest request(const char *Source, int32_t N,
                     const CompilerOptions &Opts = {}) {
  ServeRequest R;
  R.Source = Source;
  R.Args.push_back(Value::scalar(PrimValue::makeI32(N)));
  R.Compile = Opts;
  return R;
}

TEST(ArtifactStoreTest, SerializationRoundTripsTheWholeArtifact) {
  CompileResult C = compile(kHist);
  std::string Bytes = serializeArtifact(C);
  auto D = deserializeArtifact(Bytes);
  ASSERT_TRUE(static_cast<bool>(D)) << D.getError().str();

  // Content addressing: the decoded artifact is the same artifact.
  EXPECT_EQ(D->fingerprint(), C.fingerprint());
  EXPECT_EQ(D->P.str(), C.P.str());
  EXPECT_EQ(D->MemPlan.str(), C.MemPlan.str());
  EXPECT_EQ(D->Shards.str(), C.Shards.str());
  EXPECT_EQ(D->Flatten.SegHists, C.Flatten.SegHists);
  EXPECT_EQ(D->Fusion.Vertical, C.Fusion.Vertical);
  EXPECT_EQ(D->Locality.CoalescedInputs, C.Locality.CoalescedInputs);

  // And it executes: same outputs from the decoded program and plan.
  std::vector<Value> Args = {Value::scalar(PrimValue::makeI32(96))};
  std::vector<Value> A = run(C, Args), B = run(*D, Args);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_TRUE(A[I] == B[I]);
}

TEST(ArtifactStoreTest, RoundTripsDifferentiatedAndShardedArtifacts) {
  // The VJP pipeline exercises loops, the tape accounting in the memory
  // plan, and branchy adjoint code; Devices=2 makes the shard plan part
  // of the fingerprint.
  CompilerOptions Opts;
  Opts.VJP = "main";
  Opts.Devices = 2;
  CompileResult C = compile(kTrain, Opts);
  ASSERT_NE(C.P.findFun("main_vjp"), nullptr);

  auto D = deserializeArtifact(serializeArtifact(C));
  ASSERT_TRUE(static_cast<bool>(D)) << D.getError().str();
  EXPECT_EQ(D->fingerprint(), C.fingerprint());
  EXPECT_EQ(D->P.str(), C.P.str());
  EXPECT_EQ(D->MemPlan.str(), C.MemPlan.str());
  EXPECT_EQ(D->Shards.str(), C.Shards.str());

  const mem::FunPlan *FP = D->MemPlan.forFun("main_vjp");
  ASSERT_NE(FP, nullptr);
  EXPECT_EQ(FP->TapeArrays, C.MemPlan.forFun("main_vjp")->TapeArrays);

  std::vector<Value> Args = {Value::scalar(PrimValue::makeI32(64)),
                             Value::scalar(PrimValue::makeF64(0.25)),
                             Value::scalar(PrimValue::makeF64(1.0))};
  std::vector<Value> A = run(C, Args, "main_vjp");
  std::vector<Value> B = run(*D, Args, "main_vjp");
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_TRUE(A[I] == B[I]);
}

TEST(ArtifactStoreTest, RejectsGarbageAndMissingKeys) {
  EXPECT_FALSE(static_cast<bool>(deserializeArtifact("")));
  EXPECT_FALSE(static_cast<bool>(deserializeArtifact("not an artifact")));

  // Trailing garbage after a valid payload is rejected too.
  std::string Bytes = serializeArtifact(compile(kHist));
  EXPECT_TRUE(static_cast<bool>(deserializeArtifact(Bytes)));
  EXPECT_FALSE(static_cast<bool>(deserializeArtifact(Bytes + "x")));

  ArtifactStore Store(freshDir("missing"));
  EXPECT_FALSE(Store.exists(42));
  EXPECT_FALSE(static_cast<bool>(Store.load(42)));
}

TEST(ArtifactStoreTest, SaveLoadByKey) {
  std::string Dir = freshDir("saveload");
  ArtifactStore Store(Dir);
  CompileResult C = compile(kHist);
  uint64_t Key = artifactCacheKey(kHist, CompilerOptions{});

  ASSERT_TRUE(Store.save(Key, C));
  EXPECT_TRUE(Store.exists(Key));
  auto D = Store.load(Key);
  ASSERT_TRUE(static_cast<bool>(D)) << D.getError().str();
  EXPECT_EQ(D->fingerprint(), C.fingerprint());
  std::filesystem::remove_all(Dir);
}

TEST(ArtifactStoreTest, WarmRestartServesFromDiskWithoutCompiling) {
  std::string Dir = freshDir("warm");
  ServerConfig SC;
  SC.ArtifactDir = Dir;

  // First server instance: compiles once, persists the artifact.
  std::vector<Value> ColdOutputs;
  {
    Server A(SC);
    A.submit(request(kHist, 128));
    auto R = A.drain();
    ASSERT_EQ(R.size(), 1u);
    ASSERT_TRUE(R[0].Ok) << R[0].Message;
    EXPECT_FALSE(R[0].CacheHit);
    EXPECT_EQ(A.stats().Compiles, 1);
    EXPECT_EQ(A.stats().DiskStores, 1);
    EXPECT_EQ(A.stats().DiskHits, 0);
    ColdOutputs = R[0].Outputs;
  }

  // Second instance, fresh in-memory cache, same directory: the request
  // is served from disk as a cache hit — the compiler never runs.
  {
    Server B(SC);
    B.submit(request(kHist, 128));
    auto R = B.drain();
    ASSERT_EQ(R.size(), 1u);
    ASSERT_TRUE(R[0].Ok) << R[0].Message;
    EXPECT_TRUE(R[0].CacheHit);
    EXPECT_EQ(B.stats().Compiles, 0);
    EXPECT_EQ(B.stats().DiskHits, 1);
    EXPECT_EQ(B.stats().CacheHits, 1);
    ASSERT_EQ(R[0].Outputs.size(), ColdOutputs.size());
    for (size_t I = 0; I < ColdOutputs.size(); ++I)
      EXPECT_TRUE(R[0].Outputs[I] == ColdOutputs[I]);
    // The loaded artifact must reproduce the deterministic fingerprint.
    EXPECT_EQ(B.cachedFingerprint(kHist, CompilerOptions{}),
              compile(kHist).fingerprint());
  }
  std::filesystem::remove_all(Dir);
}

TEST(ArtifactStoreTest, WarmRestartIsKeyedByCompilerOptions) {
  // Same source, different semantically relevant options: distinct keys,
  // so a warm restart with the other options still compiles.
  std::string Dir = freshDir("keyed");
  ServerConfig SC;
  SC.ArtifactDir = Dir;
  {
    Server A(SC);
    ServeRequest R0 = request(kTrain, 64);
    R0.Args.push_back(Value::scalar(PrimValue::makeF64(0.25)));
    A.submit(std::move(R0));
    auto R = A.drain();
    ASSERT_EQ(R.size(), 1u);
    EXPECT_TRUE(R[0].Ok) << R[0].Message;
    EXPECT_EQ(A.stats().Compiles, 1);
    EXPECT_EQ(A.stats().DiskStores, 1);
  }
  {
    CompilerOptions Vjp;
    Vjp.VJP = "main";
    Server B(SC);
    ServeRequest R0 = request(kTrain, 64, Vjp);
    R0.Args.push_back(Value::scalar(PrimValue::makeF64(0.25)));
    B.submit(std::move(R0));
    B.drain();
    EXPECT_EQ(B.stats().DiskHits, 0);
    EXPECT_EQ(B.stats().Compiles, 1);
    EXPECT_EQ(B.stats().DiskStores, 1);
  }
  std::filesystem::remove_all(Dir);
}

TEST(ArtifactStoreTest, CorruptFileDegradesToRecompileAndIsRewritten) {
  std::string Dir = freshDir("corrupt");
  ServerConfig SC;
  SC.ArtifactDir = Dir;
  {
    Server A(SC);
    A.submit(request(kHist, 128));
    A.drain();
    ASSERT_EQ(A.stats().DiskStores, 1);
  }

  // Flip one byte in the middle of the stored artifact.
  uint64_t Key = artifactCacheKey(kHist, CompilerOptions{});
  std::string Path = ArtifactStore(Dir).pathFor(Key);
  {
    std::fstream F(Path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(F));
    F.seekg(0, std::ios::end);
    auto Size = static_cast<long>(F.tellg());
    ASSERT_GT(Size, 64);
    F.seekg(Size / 2);
    char C = 0;
    F.get(C);
    F.seekp(Size / 2);
    F.put(static_cast<char>(C ^ 0x5a));
  }
  EXPECT_FALSE(static_cast<bool>(ArtifactStore(Dir).load(Key)));

  // A fresh server detects the corruption, recompiles, serves correctly,
  // and overwrites the bad file.
  {
    Server B(SC);
    B.submit(request(kHist, 128));
    auto R = B.drain();
    ASSERT_EQ(R.size(), 1u);
    EXPECT_TRUE(R[0].Ok) << R[0].Message;
    EXPECT_FALSE(R[0].CacheHit);
    EXPECT_EQ(B.stats().DiskCorrupt, 1);
    EXPECT_EQ(B.stats().DiskHits, 0);
    EXPECT_EQ(B.stats().Compiles, 1);
    EXPECT_EQ(B.stats().DiskStores, 1);
  }
  auto D = ArtifactStore(Dir).load(Key);
  EXPECT_TRUE(static_cast<bool>(D)) << (D ? "" : D.getError().str());
  std::filesystem::remove_all(Dir);
}

} // namespace
