//===- serve_test.cpp - The serving layer's robustness contracts ----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contracts of futharkcc-serve, each as a test: artifact caching
/// (hit/miss, options keying, LRU bounds), bounded-queue load shedding
/// with typed Overload errors, deadlines (queued expiry and completion
/// overrun), per-request fault isolation (one tenant's injected faults
/// never poison the cache or another tenant), quarantine-recompile of
/// persistently failing artifacts, graceful degradation to the reference
/// interpreter, capacity-aware admission (summed reservations never
/// exceed device memory), and drain completeness (every submission gets
/// exactly one response — never a hang, never a drop).
///
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace fut;
using namespace fut::serve;

namespace {

const char *kSumSq = "fun main (n: i32): i32 =\n"
                     "  reduce (+) 0 (map (\\(i: i32): i32 -> i * i) "
                     "(iota n))\n";

const char *kScan = "fun main (n: i32): i32 =\n"
                    "  let s = scan (+) 0 (iota n)\n"
                    "  in s[n - 1]\n";

ServeRequest request(const char *Source, int32_t N, double Arrival = 0) {
  ServeRequest R;
  R.Source = Source;
  R.Args.push_back(Value::scalar(PrimValue::makeI32(N)));
  R.ArrivalCycle = Arrival;
  return R;
}

/// Drains and indexes responses by id.
std::map<uint64_t, ServeResponse> drainById(Server &S) {
  std::map<uint64_t, ServeResponse> ById;
  for (ServeResponse &R : S.drain())
    ById.emplace(R.Id, std::move(R));
  return ById;
}

TEST(ServeCache, RepeatedProgramHitsAfterFirstMiss) {
  Server S;
  S.submit(request(kSumSq, 64, 0));
  S.submit(request(kSumSq, 64, 1000));
  S.submit(request(kSumSq, 64, 2000));
  auto R = drainById(S);
  ASSERT_EQ(R.size(), 3u);
  for (uint64_t Id : {1u, 2u, 3u})
    ASSERT_EQ(R.count(Id), 1u) << "missing response id " << Id;
  EXPECT_FALSE(R.at(1).CacheHit);
  EXPECT_TRUE(R.at(2).CacheHit);
  EXPECT_TRUE(R.at(3).CacheHit);
  for (auto &KV : R) {
    EXPECT_TRUE(KV.second.Ok) << KV.second.Message;
    EXPECT_FALSE(KV.second.InterpFallback);
  }
  EXPECT_EQ(S.cacheSize(), 1u);
  EXPECT_EQ(S.stats().Compiles, 1);
  EXPECT_EQ(S.stats().CacheHits, 2);
  EXPECT_EQ(S.stats().CacheMisses, 1);
  // Hits must be visibly cheaper on the simulated timeline: they skip
  // the CompileCycles charge.
  EXPECT_LT(R.at(2).serviceCycles(), R.at(1).serviceCycles());
}

TEST(ServeCache, CompilerOptionsKeyTheArtifact) {
  Server S;
  ServeRequest A = request(kSumSq, 64, 0);
  ServeRequest B = request(kSumSq, 64, 1000);
  B.Compile.EnableFusion = false;
  S.submit(std::move(A));
  S.submit(std::move(B));
  auto R = drainById(S);
  ASSERT_EQ(R.count(1), 1u);
  ASSERT_EQ(R.count(2), 1u);
  EXPECT_FALSE(R.at(1).CacheHit);
  EXPECT_FALSE(R.at(2).CacheHit) << "different options must not share an "
                                    "artifact";
  EXPECT_EQ(S.cacheSize(), 2u);
  EXPECT_EQ(S.stats().Compiles, 2);
}

TEST(ServeCache, LruEvictionBoundsTheCache) {
  ServerConfig C;
  C.MaxCacheEntries = 1;
  Server S(C);
  S.submit(request(kSumSq, 64, 0));
  S.submit(request(kScan, 64, 100000));
  S.submit(request(kSumSq, 64, 200000));
  auto R = drainById(S);
  for (auto &KV : R)
    EXPECT_TRUE(KV.second.Ok) << KV.second.Message;
  EXPECT_EQ(S.cacheSize(), 1u);
  // The third request re-compiles: its entry was the one evicted.
  ASSERT_EQ(R.count(3), 1u);
  EXPECT_FALSE(R.at(3).CacheHit);
  EXPECT_EQ(S.stats().Compiles, 3);
}

TEST(ServeQueue, OverloadIsShedTyped) {
  ServerConfig C;
  C.MaxQueueDepth = 2;
  Server S(C);
  // Five simultaneous arrivals into a depth-2 queue: the first is
  // admitted immediately (it goes queue -> device within the same
  // instant), two wait, and the rest must be shed as Overload.
  for (int I = 0; I < 5; ++I)
    S.submit(request(kSumSq, 64, 0));
  auto R = drainById(S);
  ASSERT_EQ(R.size(), 5u);
  int Ok = 0, Shed = 0;
  for (auto &KV : R) {
    if (KV.second.Ok)
      ++Ok;
    else {
      EXPECT_EQ(KV.second.Error, ErrorKind::Overload) << KV.second.Message;
      ++Shed;
    }
  }
  EXPECT_EQ(Shed, S.stats().ShedOverload);
  EXPECT_GT(Shed, 0);
  EXPECT_GT(Ok, 0);
  EXPECT_EQ(Ok + Shed, 5);
}

TEST(ServeDeadline, QueuedExpiryIsShedTyped) {
  Server S;
  // First request occupies the device (compile + run); the second's
  // deadline expires while it waits behind it.
  S.submit(request(kSumSq, 64, 0));
  ServeRequest Late = request(kScan, 64, 1);
  Late.Limits.DeadlineCycles = 10; // far less than CompileCycles
  S.submit(std::move(Late));
  auto R = drainById(S);
  ASSERT_EQ(R.count(1), 1u);
  ASSERT_EQ(R.count(2), 1u);
  EXPECT_TRUE(R.at(1).Ok);
  EXPECT_FALSE(R.at(2).Ok);
  EXPECT_EQ(R.at(2).Error, ErrorKind::Deadline);
  EXPECT_EQ(R.at(2).Attempts, 0) << "expired requests must not run";
  EXPECT_EQ(S.stats().ShedDeadline, 1);
}

TEST(ServeDeadline, CompletionOverrunIsReported) {
  Server S;
  ServeRequest Rq = request(kSumSq, 64, 0);
  Rq.Limits.DeadlineCycles = 1; // admitted instantly, but any run overruns
  S.submit(std::move(Rq));
  auto R = drainById(S);
  ASSERT_EQ(R.count(1), 1u);
  EXPECT_FALSE(R.at(1).Ok);
  EXPECT_EQ(R.at(1).Error, ErrorKind::Deadline);
  EXPECT_GE(R.at(1).Attempts, 1)
      << "the run happened; only the contract broke";
  EXPECT_TRUE(R.at(1).Outputs.empty());
  EXPECT_EQ(S.stats().DeadlineMissed, 1);
}

TEST(ServeIsolation, OneTenantsFaultsNeverPoisonAnother) {
  Server S;
  // Tenant A: every launch fails, no fallback allowed -> typed failure.
  ServeRequest A = request(kSumSq, 64, 0);
  A.Limits.LaunchFailRate = 1.0;
  A.Limits.FaultSeed = 7;
  A.Limits.AllowFallback = false;
  // Tenant B: same program, clean limits, arrives later.
  ServeRequest B = request(kSumSq, 64, 1);
  S.submit(std::move(A));
  S.submit(std::move(B));
  auto R = drainById(S);
  ASSERT_EQ(R.count(1), 1u);
  ASSERT_EQ(R.count(2), 1u);
  EXPECT_FALSE(R.at(1).Ok);
  EXPECT_TRUE(R.at(1).Error == ErrorKind::TransientFault ||
              R.at(1).Error == ErrorKind::Watchdog ||
              R.at(1).Error == ErrorKind::DeviceOOM)
      << R.at(1).Message;
  // B is served from the same cache entry, cleanly, on the device.
  EXPECT_TRUE(R.at(2).Ok) << R.at(2).Message;
  EXPECT_TRUE(R.at(2).CacheHit);
  EXPECT_FALSE(R.at(2).InterpFallback);
  ASSERT_EQ(R.at(2).Outputs.size(), 1u);
}

TEST(ServeIsolation, PerRequestLimitsAreIndependent) {
  Server S;
  // A watchdog budget only request 1 carries: it kills request 1's
  // kernels, and must not leak into request 2 (same program, no budget).
  ServeRequest A = request(kSumSq, 4096, 0);
  A.Limits.WatchdogKernelCycles = 1; // every kernel overruns this
  A.Limits.AllowFallback = false;
  ServeRequest B = request(kSumSq, 4096, 1);
  S.submit(std::move(A));
  S.submit(std::move(B));
  auto R = drainById(S);
  ASSERT_EQ(R.count(1), 1u);
  ASSERT_EQ(R.count(2), 1u);
  EXPECT_FALSE(R.at(1).Ok);
  EXPECT_EQ(R.at(1).Error, ErrorKind::Watchdog) << R.at(1).Message;
  EXPECT_TRUE(R.at(2).Ok) << R.at(2).Message;
  EXPECT_FALSE(R.at(2).InterpFallback);
}

TEST(ServeDegradation, PersistentFaultsFallBackToInterpreter) {
  Server S;
  ServeRequest A = request(kSumSq, 64, 0);
  A.Limits.LaunchFailRate = 1.0;
  A.Limits.FaultSeed = 3;
  S.submit(std::move(A));
  // A clean request afterwards: the artifact (possibly recompiled by
  // quarantine) still serves from the device.
  S.submit(request(kSumSq, 64, 1));
  auto R = drainById(S);
  ASSERT_EQ(R.count(1), 1u);
  ASSERT_EQ(R.count(2), 1u);
  EXPECT_TRUE(R.at(1).Ok) << R.at(1).Message;
  EXPECT_TRUE(R.at(1).InterpFallback) << "100% launch failures must degrade";
  EXPECT_TRUE(R.at(1).Recompiled) << "quarantine must have recompiled first";
  EXPECT_TRUE(R.at(2).Ok) << R.at(2).Message;
  EXPECT_FALSE(R.at(2).InterpFallback);
  ASSERT_EQ(R.at(1).Outputs.size(), R.at(2).Outputs.size());
  ASSERT_FALSE(R.at(1).Outputs.empty());
  EXPECT_TRUE(R.at(1).Outputs[0] == R.at(2).Outputs[0])
      << "degraded and device results must agree";
  EXPECT_EQ(S.stats().Quarantined, 1);
  EXPECT_EQ(S.stats().Recompiles, 1);
  EXPECT_EQ(S.stats().Fallbacks, 1);
}

TEST(ServeDegradation, QuarantineRecompilesAtMostOnce) {
  Server S;
  // Two independent all-faulty requests against one artifact: the first
  // quarantine-recompiles it; the second must not recompile again.
  for (int I = 0; I < 2; ++I) {
    ServeRequest A = request(kSumSq, 64, I * 1000000.0);
    A.Limits.LaunchFailRate = 1.0;
    A.Limits.FaultSeed = 11 + I;
    S.submit(std::move(A));
  }
  auto R = drainById(S);
  ASSERT_EQ(R.count(1), 1u);
  ASSERT_EQ(R.count(2), 1u);
  EXPECT_TRUE(R.at(1).Ok && R.at(1).InterpFallback);
  EXPECT_TRUE(R.at(2).Ok && R.at(2).InterpFallback);
  EXPECT_EQ(S.stats().Quarantined, 1);
  EXPECT_EQ(S.stats().Recompiles, 1);
}

TEST(ServeAdmission, ReservationsNeverExceedCapacity) {
  ServerConfig C;
  // Capacity just over two sumsq reservations (~1 KiB each plus the
  // launch-transient margin): at most two tenants pack at once.
  C.Device.DeviceMemBytes = 4096;
  Server S(C);
  // Solo-profile first, then a burst of identical requests to pack.
  S.submit(request(kSumSq, 64, 0));
  for (int I = 0; I < 8; ++I)
    S.submit(request(kSumSq, 64, 1000000.0 + I));
  auto R = drainById(S);
  ASSERT_EQ(R.size(), 9u);
  for (auto &KV : R) {
    EXPECT_TRUE(KV.second.Ok) << KV.second.Message;
    EXPECT_FALSE(KV.second.InterpFallback) << KV.second.Message;
  }
  const ServerStats &St = S.stats();
  EXPECT_GT(St.PackedRuns, 0) << "profiled requests should pack";
  EXPECT_GT(St.PeakResidentTenants, 1);
  EXPECT_LE(St.PeakReservedBytes, C.Device.DeviceMemBytes)
      << "admission must never oversubscribe the device";
  EXPECT_GT(St.PeakReservedBytes, 0);
}

TEST(ServeAdmission, PackedTenantsCarryTheirReservation) {
  Server S;
  S.submit(request(kSumSq, 64, 0));
  S.submit(request(kSumSq, 64, 1000000.0));
  S.submit(request(kSumSq, 64, 1000001.0));
  auto R = drainById(S);
  for (uint64_t Id : {1u, 2u, 3u})
    ASSERT_EQ(R.count(Id), 1u) << "missing response id " << Id;
  EXPECT_TRUE(R.at(1).Solo) << "first run of a signature profiles solo";
  EXPECT_EQ(R.at(1).ReservedBytes, 0);
  for (uint64_t Id : {2u, 3u}) {
    EXPECT_FALSE(R.at(Id).Solo);
    EXPECT_GT(R.at(Id).ReservedBytes, 0)
        << "packed tenants run against an explicit reservation";
    EXPECT_TRUE(R.at(Id).Ok) << R.at(Id).Message;
  }
}

TEST(ServeDrain, EverySubmissionGetsExactlyOneResponse) {
  ServerConfig C;
  C.MaxQueueDepth = 3;
  Server S(C);
  const int N = 20;
  std::set<uint64_t> Ids;
  for (int I = 0; I < N; ++I) {
    ServeRequest Rq = request(I % 2 ? kSumSq : kScan, 64, I * 500.0);
    Rq.Limits.LaunchFailRate = I % 3 == 0 ? 0.5 : 0.0;
    Rq.Limits.FaultSeed = I;
    Ids.insert(S.submit(std::move(Rq)));
  }
  std::vector<ServeResponse> R = S.drain();
  EXPECT_EQ(R.size(), static_cast<size_t>(N));
  std::set<uint64_t> Seen;
  for (const ServeResponse &Resp : R)
    EXPECT_TRUE(Seen.insert(Resp.Id).second) << "duplicate response";
  EXPECT_EQ(Seen, Ids);
  // The queue drained: a second drain has nothing to do.
  EXPECT_TRUE(S.drain().empty());
}

TEST(ServeFingerprint, StableAcrossServersAndRecompiles) {
  CompilerOptions Opts;
  Server A, B;
  A.submit(request(kSumSq, 64, 0));
  B.submit(request(kSumSq, 64, 0));
  A.drain();
  B.drain();
  uint64_t FA = A.cachedFingerprint(kSumSq, Opts);
  uint64_t FB = B.cachedFingerprint(kSumSq, Opts);
  EXPECT_NE(FA, 0u);
  EXPECT_EQ(FA, FB) << "compilation must be deterministic";
}

TEST(ServeConfig, OverReservedDeviceIsRejectedBeforeLaunch) {
  // Regression: a server configured with ReservedBytes at (or above) the
  // card's capacity used to run every request against a silently clamped
  // 1-byte device.  Now the materialised per-request DeviceParams fail
  // validation and the request is rejected with a typed Config error
  // before any launch — and explicitly without degrading to the
  // interpreter, which would mask the operator mistake.
  ServerConfig C;
  C.Device.ReservedBytes = C.Device.DeviceMemBytes;
  Server S(C);
  S.submit(request(kSumSq, 64, 0));
  auto R = drainById(S);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_FALSE(R.at(1).Ok);
  EXPECT_EQ(R.at(1).Error, ErrorKind::Config);
  EXPECT_NE(R.at(1).Message.find("over-reserved"), std::string::npos)
      << R.at(1).Message;
  EXPECT_FALSE(R.at(1).InterpFallback);
  EXPECT_EQ(R.at(1).Attempts, 0);
  EXPECT_EQ(S.stats().ConfigRejected, 1);
  EXPECT_EQ(S.stats().Fallbacks, 0);
}

TEST(ServeConfig, SaneReservationStillServes) {
  // A reservation below capacity is a legitimate configuration (some of
  // the card belongs to another process): requests still complete.
  ServerConfig C;
  C.Device.ReservedBytes = C.Device.DeviceMemBytes / 4;
  Server S(C);
  S.submit(request(kSumSq, 64, 0));
  auto R = drainById(S);
  ASSERT_EQ(R.size(), 1u);
  EXPECT_TRUE(R.at(1).Ok) << R.at(1).Message;
  EXPECT_EQ(S.stats().ConfigRejected, 0);
}

} // namespace
