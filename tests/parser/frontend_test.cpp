//===- frontend_test.cpp - Parse + desugar + interpret round trips ---------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "parser/Desugar.h"

#include "interp/Interp.h"
#include "ir/Printer.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

/// Compiles source and runs main on the given arguments.
std::vector<Value> runSource(const std::string &Src,
                             const std::vector<Value> &Args,
                             InterpOptions Opts = {}) {
  NameSource NS;
  auto P = frontend(Src, NS);
  EXPECT_TRUE(static_cast<bool>(P)) << P.getError().str() << "\nsource:\n"
                                    << Src;
  if (!P)
    return {};
  Interpreter I(*P, Opts);
  auto R = I.run(Args);
  EXPECT_TRUE(static_cast<bool>(R)) << R.getError().str() << "\nprogram:\n"
                                    << printProgram(*P);
  if (!R)
    return {};
  return R.take();
}

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value fv(float V) { return Value::scalar(PrimValue::makeF32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}
Value fvec(const std::vector<double> &Xs) {
  return makeVectorValue(ScalarKind::F32, Xs);
}

} // namespace

TEST(FrontendTest, ScalarArithmetic) {
  auto R = runSource("fun main (x: i32) (y: i32): i32 = x * y + 2", //
                     {iv(3), iv(4)});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0], iv(14));
}

TEST(FrontendTest, PrecedenceAndUnary) {
  auto R = runSource("fun main (x: i32): i32 = -x + 2 * 3 ** 2", {iv(1)});
  EXPECT_EQ(R[0], iv(17));
}

TEST(FrontendTest, LetChainsWithoutIn) {
  auto R = runSource("fun main (x: i32): i32 =\n"
                     "  let a = x + 1\n"
                     "  let b = a * 2\n"
                     "  in b - x",
                     {iv(5)});
  EXPECT_EQ(R[0], iv(7));
}

TEST(FrontendTest, TuplesAndMultiReturn) {
  auto R = runSource("fun main (x: i32): (i32, i32) =\n"
                     "  let (a, b) = (x + 1, x - 1) in (b, a)",
                     {iv(10)});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0], iv(9));
  EXPECT_EQ(R[1], iv(11));
}

TEST(FrontendTest, MapWithLambda) {
  auto R = runSource(
      "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
      "  map (\\(x: i32): i32 -> x + 1) xs",
      {iv(3), ivec({1, 2, 3})});
  EXPECT_EQ(R[0], ivec({2, 3, 4}));
}

TEST(FrontendTest, MapWithSection) {
  auto R = runSource("fun main (n: i32) (xs: [n]i32): [n]i32 = map (+1) xs",
                     {iv(3), ivec({1, 2, 3})});
  EXPECT_EQ(R[0], ivec({2, 3, 4}));
}

TEST(FrontendTest, ReduceWithSection) {
  auto R = runSource("fun main (n: i32) (xs: [n]i32): i32 = reduce (+) 0 xs",
                     {iv(4), ivec({1, 2, 3, 4})});
  EXPECT_EQ(R[0], iv(10));
}

TEST(FrontendTest, ReduceMinBuiltin) {
  auto R = runSource(
      "fun main (n: i32) (xs: [n]i32): i32 = reduce min 1000 xs",
      {iv(4), ivec({5, 2, 9, 3})});
  EXPECT_EQ(R[0], iv(2));
}

TEST(FrontendTest, ScanPrefixSums) {
  auto R = runSource("fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                     "  scan (+) 0 xs",
                     {iv(4), ivec({1, 2, 3, 4})});
  EXPECT_EQ(R[0], ivec({1, 3, 6, 10}));
}

TEST(FrontendTest, MapOverTwoArrays) {
  auto R = runSource(
      "fun main (n: i32) (xs: [n]i32) (ys: [n]i32): [n]i32 =\n"
      "  map (\\(x: i32) (y: i32): i32 -> x * y) xs ys",
      {iv(3), ivec({1, 2, 3}), ivec({4, 5, 6})});
  EXPECT_EQ(R[0], ivec({4, 10, 18}));
}

TEST(FrontendTest, NestedMapReducePaperIntro) {
  // The exact example of Section 2.2: row increments and row sums.
  const char *Src =
      "fun main (xss: [n][m]f32): ([n][m]f32, [n]f32) =\n"
      "  let r = map (\\(row: [m]f32): ([m]f32, f32) ->\n"
      "       let row2 = map (\\(x: f32): f32 -> x + 1.0) row\n"
      "       let s = reduce (+) 0.0 row\n"
      "       in (row2, s))\n"
      "    xss\n"
      "  in r";
  auto R = runSource(Src, {makeMatrixValue(ScalarKind::F32, 2, 3,
                                           {1, 2, 3, 4, 5, 6})});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0], makeMatrixValue(ScalarKind::F32, 2, 3,
                                  {2, 3, 4, 5, 6, 7}));
  EXPECT_TRUE(R[1].approxEqual(fvec({6, 15})));
}

TEST(FrontendTest, LoopWithIndexing) {
  auto R = runSource("fun main (n: i32) (xs: [n]i32): i32 =\n"
                     "  loop (acc = 0) for i < n do acc + xs[i]",
                     {iv(4), ivec({1, 2, 3, 4})});
  EXPECT_EQ(R[0], iv(10));
}

TEST(FrontendTest, LoopImplicitInit) {
  auto R = runSource("fun main (x: i32): i32 =\n"
                     "  let acc = x in\n"
                     "  loop (acc) for i < 3 do acc * 2",
                     {iv(1)});
  EXPECT_EQ(R[0], iv(8));
}

TEST(FrontendTest, InPlaceUpdateSugar) {
  auto R = runSource("fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                     "  let xs[0] = 42 in xs",
                     {iv(3), ivec({1, 2, 3})});
  EXPECT_EQ(R[0], ivec({42, 2, 3}));
}

TEST(FrontendTest, WithExpression) {
  auto R = runSource("fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                     "  xs with [1] <- 7",
                     {iv(3), ivec({1, 2, 3})});
  EXPECT_EQ(R[0], ivec({1, 7, 3}));
}

TEST(FrontendTest, SequentialKMeansCountsFig4a) {
  // Figure 4a: sequential counting of cluster sizes.
  const char *Src =
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  loop (counts = replicate k 0) for i < n do\n"
      "    let cluster = membership[i]\n"
      "    in counts with [cluster] <- counts[cluster] + 1";
  auto R = runSource(Src, {iv(3), iv(6), ivec({0, 1, 0, 2, 1, 0})});
  EXPECT_EQ(R[0], ivec({3, 2, 1}));
}

TEST(FrontendTest, ParallelKMeansCountsFig4b) {
  // Figure 4b: map to increment vectors, reduce with vectorised (+).
  const char *Src =
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  let increments =\n"
      "    map (\\(cluster: i32): [k]i32 ->\n"
      "           let incr = replicate k 0\n"
      "           let incr[cluster] = 1\n"
      "           in incr)\n"
      "        membership\n"
      "  let counts = reduce (map (+)) (replicate k 0) increments\n"
      "  in counts";
  auto R = runSource(Src, {iv(3), iv(6), ivec({0, 1, 0, 2, 1, 0})});
  EXPECT_EQ(R[0], ivec({3, 2, 1}));
}

TEST(FrontendTest, StreamRedKMeansCountsFig4c) {
  // Figure 4c: efficiently sequentialised parallel counting.
  const char *Src =
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  stream_red (map (+))\n"
      "    (\\(acc: *[k]i32) (chunk: [chunksize]i32): [k]i32 ->\n"
      "       loop (acc) for i < chunksize do\n"
      "         let cluster = chunk[i]\n"
      "         in acc with [cluster] <- acc[cluster] + 1)\n"
      "    (replicate k 0) membership";
  for (int64_t Chunk : {0, 1, 2, 3, 7}) {
    InterpOptions Opts;
    Opts.StreamChunk = Chunk;
    auto R = runSource(Src, {iv(3), iv(6), ivec({0, 1, 0, 2, 1, 0})}, Opts);
    EXPECT_EQ(R[0], ivec({3, 2, 1})) << "chunk size " << Chunk;
  }
}

TEST(FrontendTest, IfThenElse) {
  auto R = runSource("fun main (x: i32): i32 =\n"
                     "  if x < 0 then -x else x",
                     {iv(-5)});
  EXPECT_EQ(R[0], iv(5));
}

TEST(FrontendTest, ShortCircuitAnd) {
  // i < n && xs[i] > 0 must not index out of bounds when i >= n.
  auto R = runSource(
      "fun main (n: i32) (xs: [n]i32) (i: i32): bool =\n"
      "  i < n && xs[i] > 0",
      {iv(3), ivec({1, 2, 3}), iv(10)});
  EXPECT_EQ(R[0], Value::scalar(PrimValue::makeBool(false)));
}

TEST(FrontendTest, UserFunctionCall) {
  auto R = runSource("fun square (x: i32): i32 = x * x\n"
                     "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                     "  map square xs",
                     {iv(3), ivec({1, 2, 3})});
  EXPECT_EQ(R[0], ivec({1, 4, 9}));
}

TEST(FrontendTest, FunctionReturningArray) {
  auto R = runSource("fun addv (n: i32) (a: [n]i32) (b: [n]i32): [n]i32 =\n"
                     "  map (+) a b\n"
                     "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                     "  addv n xs xs",
                     {iv(3), ivec({1, 2, 3})});
  EXPECT_EQ(R[0], ivec({2, 4, 6}));
}

TEST(FrontendTest, TransposeAndIndex) {
  auto R = runSource(
      "fun main (a: [n][m]i32): i32 = (transpose a)[0, 1]",
      {Value::array(ScalarKind::I32, {2, 3},
                    {PrimValue::makeI32(1), PrimValue::makeI32(2),
                     PrimValue::makeI32(3), PrimValue::makeI32(4),
                     PrimValue::makeI32(5), PrimValue::makeI32(6)})});
  EXPECT_EQ(R[0], iv(4)); // transposed[0][1] = a[1][0] = 4
}

TEST(FrontendTest, ZipAndTupleLambda) {
  // Minimum with argmin, as in the NN benchmark's reduce operator.
  const char *Src =
      "fun main (n: i32) (xs: [n]f32): (f32, i32) =\n"
      "  reduce (\\(v1: f32, i1: i32) (v2: f32, i2: i32): (f32, i32) ->\n"
      "            if v1 < v2 then (v1, i1) else (v2, i2))\n"
      "         (1000000.0, -1)\n"
      "         (zip xs (iota n))";
  auto R = runSource(Src, {iv(4), fvec({5, 2, 9, 3})});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_TRUE(R[0].approxEqual(fv(2)));
  EXPECT_EQ(R[1], iv(1));
}

TEST(FrontendTest, MathBuiltinsAndConversion) {
  auto R = runSource(
      "fun main (x: f32): f32 = sqrt (x * x) + exp 0.0 + f32 1",
      {fv(3)});
  EXPECT_TRUE(R[0].approxEqual(fv(5)));
}

TEST(FrontendTest, StreamSeqSobolStyle) {
  // A stream_seq that computes prefix sums chunk-wise (rule F5 pattern).
  const char *Src =
      "fun main (n: i32) (xs: [n]i32): i32 =\n"
      "  let (total, ys) = stream_seq\n"
      "    (\\(acc: i32) (c: [csz]i32): (i32, [csz]i32) ->\n"
      "       let sums = scan (+) 0 c\n"
      "       let shifted = map (+acc) sums\n"
      "       let newacc = if csz > 0 then shifted[csz - 1] else acc\n"
      "       in (newacc, shifted))\n"
      "    0 xs\n"
      "  in total + ys[n - 1]";
  InterpOptions Opts;
  Opts.StreamChunk = 2;
  auto R = runSource(Src, {iv(5), ivec({1, 2, 3, 4, 5})}, Opts);
  EXPECT_EQ(R[0], iv(30)); // total = 15, last prefix = 15
}

TEST(FrontendTest, ErrorsAreReported) {
  NameSource NS;
  EXPECT_ERR_CONTAINS(frontend("fun main (x: i32): i32 = y", NS),
                      "unbound variable");
  EXPECT_ERR_CONTAINS(frontend("fun main (x: i32): i32 = x + true", NS),
                      "bool literal");
  EXPECT_ERR_CONTAINS(frontend("fun main (x: i32): i32 = foo x", NS),
                      "unknown function");
  EXPECT_ERR_CONTAINS(
      frontend("fun main (x: i32): (i32, i32) = x", NS), "returns 1 values");
  EXPECT_ERR_CONTAINS(frontend("fun main (x: i32): i32 = x +", NS),
                      "expected an expression");
}

TEST(FrontendTest, CommentsAreIgnored) {
  auto R = runSource("-- leading comment\n"
                     "fun main (x: i32): i32 = -- trailing\n"
                     "  x + 1 -- end\n",
                     {iv(1)});
  EXPECT_EQ(R[0], iv(2));
}

TEST(FrontendTest, LengthBuiltin) {
  auto R = runSource("fun main (xs: []i32): i32 = length xs",
                     {ivec({5, 6, 7})});
  EXPECT_EQ(R[0], iv(3));
}

TEST(FrontendTest, MatrixVectorProduct) {
  const char *Src =
      "fun main (a: [n][m]f32) (v: [m]f32): [n]f32 =\n"
      "  map (\\(row: [m]f32): f32 ->\n"
      "         reduce (+) 0.0 (map (*) row v))\n"
      "      a";
  auto R = runSource(Src, {makeMatrixValue(ScalarKind::F32, 2, 2,
                                           {1, 2, 3, 4}),
                           fvec({1, 1})});
  EXPECT_TRUE(R[0].approxEqual(fvec({3, 7})));
}
