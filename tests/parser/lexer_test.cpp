//===- lexer_test.cpp - Tests for the tokeniser -----------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;

namespace {

std::vector<Token> lexOk(const std::string &S) {
  auto T = lexSource(S);
  EXPECT_TRUE(static_cast<bool>(T)) << T.getError().str();
  return T ? T.take() : std::vector<Token>{};
}

} // namespace

TEST(LexerTest, IdentifiersAndKeywords) {
  auto Ts = lexOk("fun main let x' loop");
  ASSERT_EQ(Ts.size(), 6u); // incl. Eof
  EXPECT_TRUE(Ts[0].isId("fun"));
  EXPECT_TRUE(Ts[1].isId("main"));
  EXPECT_TRUE(Ts[2].isId("let"));
  EXPECT_EQ(Ts[3].Text, "x'");
  EXPECT_TRUE(Ts[4].isId("loop"));
  EXPECT_TRUE(Ts[5].is(TokKind::Eof));
}

TEST(LexerTest, IntegerLiteralsWithSuffixes) {
  auto Ts = lexOk("42 7i64 0i32");
  EXPECT_EQ(Ts[0].Kind, TokKind::IntLit);
  EXPECT_EQ(Ts[0].IntVal, 42);
  EXPECT_EQ(Ts[0].Suffix, "");
  EXPECT_EQ(Ts[1].IntVal, 7);
  EXPECT_EQ(Ts[1].Suffix, "i64");
  EXPECT_EQ(Ts[2].Suffix, "i32");
}

TEST(LexerTest, FloatLiterals) {
  auto Ts = lexOk("1.5 2.0f64 1e-3 3f32");
  EXPECT_EQ(Ts[0].Kind, TokKind::FloatLit);
  EXPECT_DOUBLE_EQ(Ts[0].FloatVal, 1.5);
  EXPECT_EQ(Ts[1].Suffix, "f64");
  EXPECT_DOUBLE_EQ(Ts[2].FloatVal, 1e-3);
  // A suffix alone makes it a float.
  EXPECT_EQ(Ts[3].Kind, TokKind::FloatLit);
  EXPECT_EQ(Ts[3].Suffix, "f32");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto Ts = lexOk("-> <- <= >= == != && || ** * ( ) [ ] , : = \\ < > !");
  TokKind Want[] = {TokKind::Arrow,    TokKind::LeftArrow, TokKind::Leq,
                    TokKind::Geq,      TokKind::EqEq,      TokKind::NotEq,
                    TokKind::AmpAmp,   TokKind::PipePipe,  TokKind::StarStar,
                    TokKind::Star,     TokKind::LParen,    TokKind::RParen,
                    TokKind::LBracket, TokKind::RBracket,  TokKind::Comma,
                    TokKind::Colon,    TokKind::Equals,    TokKind::Backslash,
                    TokKind::Lt,       TokKind::Gt,        TokKind::Bang};
  ASSERT_EQ(Ts.size(), std::size(Want) + 1);
  for (size_t I = 0; I < std::size(Want); ++I)
    EXPECT_EQ(Ts[I].Kind, Want[I]) << "token " << I;
}

TEST(LexerTest, CommentsSkipped) {
  auto Ts = lexOk("a -- whole line\nb -- trailing");
  ASSERT_EQ(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[1].Text, "b");
}

TEST(LexerTest, LocationsTracked) {
  auto Ts = lexOk("a\n  b");
  EXPECT_EQ(Ts[0].Loc.Line, 1);
  EXPECT_EQ(Ts[0].Loc.Col, 1);
  EXPECT_EQ(Ts[1].Loc.Line, 2);
  EXPECT_EQ(Ts[1].Loc.Col, 3);
}

TEST(LexerTest, MinusVsArrowVsNegative) {
  auto Ts = lexOk("a - b -> -1");
  EXPECT_EQ(Ts[1].Kind, TokKind::Minus);
  EXPECT_EQ(Ts[3].Kind, TokKind::Arrow);
  EXPECT_EQ(Ts[4].Kind, TokKind::Minus); // unary minus is the parser's job
  EXPECT_EQ(Ts[5].Kind, TokKind::IntLit);
}

TEST(LexerTest, BadInputRejected) {
  EXPECT_ERR_CONTAINS(lexSource("a ? b"), "unexpected character");
  EXPECT_ERR_CONTAINS(lexSource("a & b"), "expected '&&'");
  EXPECT_ERR_CONTAINS(lexSource("1i7"), "unknown numeric suffix");
}

TEST(LexerTest, DotWithoutDigitIsNotAFloat) {
  // "1.x" must not lex as a float (field access is not in the language,
  // so the dot is simply rejected).
  auto T = lexSource("1.x");
  EXPECT_FALSE(static_cast<bool>(T));
}
