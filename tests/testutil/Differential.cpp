//===- Differential.cpp - Seeded differential test harness ----------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "Differential.h"

#include "driver/Compiler.h"
#include "parser/Desugar.h"
#include "support/Utils.h"

#include <sstream>

using namespace fut;
using namespace fut::test;

namespace {

/// Generation state: a linear chain of length-n arrays (a0, a1, ...) plus
/// accumulated scalars (s0, s1, ...).  Every step consumes the newest
/// array and produces the next, so the chain threads cleanly through the
/// uniqueness checker even when a step consumes its input in place.
struct Gen {
  SplitMix64 Rng;
  std::ostringstream Body;
  int NextArr = 0;
  int NextScalar = 0;
  std::vector<std::string> Scalars;
  int64_t N; // length of every chain array, known to the generator

  explicit Gen(uint64_t Seed, int64_t N) : Rng(Seed), N(N) {}

  std::string arr() const { return "a" + std::to_string(NextArr); }
  std::string newArr() { return "a" + std::to_string(++NextArr); }
  std::string newScalar() {
    std::string S = "s" + std::to_string(NextScalar++);
    Scalars.push_back(S);
    return S;
  }

  int64_t smallConst() { return static_cast<int64_t>(Rng.nextBelow(19)) - 9; }
  int64_t posConst() { return static_cast<int64_t>(Rng.nextBelow(8)) + 2; }

  /// A scalar expression in \p X, optionally referencing a known scalar.
  std::string scalarExpr(const std::string &X) {
    switch (Rng.nextBelow(5)) {
    case 0:
      return X + " * " + std::to_string(posConst()) + " + " +
             std::to_string(smallConst());
    case 1:
      return X + " % " + std::to_string(posConst()) + " - " +
             std::to_string(smallConst());
    case 2:
      return X + " - " + X + " / " + std::to_string(posConst());
    case 3:
      if (!Scalars.empty())
        return X + " + " + Scalars[Rng.nextBelow(Scalars.size())];
      return X + " + " + std::to_string(smallConst());
    default:
      return std::to_string(smallConst()) + " - " + X;
    }
  }

  void stepMap() {
    std::string In = arr(), Out = newArr();
    Body << "  let " << Out << " = map (\\(x: i32): i32 -> "
         << scalarExpr("x") << ") " << In << "\n";
  }

  /// Filter encoded as a conditional mask (the language has no filter).
  void stepMask() {
    std::string In = arr(), Out = newArr();
    int64_t D = posConst();
    Body << "  let " << Out << " = map (\\(x: i32): i32 -> if x % "
         << D << " == 0 then " << scalarExpr("x") << " else "
         << std::to_string(smallConst()) << ") " << In << "\n";
  }

  void stepScan() {
    std::string In = arr(), Out = newArr();
    // Parenthesised: a bare negative neutral would parse as binary minus.
    Body << "  let " << Out << " = scan (+) (0 + "
         << std::to_string(smallConst()) << ") " << In << "\n";
  }

  void stepReduce() {
    std::string In = arr(), S = newScalar();
    switch (Rng.nextBelow(3)) {
    case 0:
      Body << "  let " << S << " = reduce (+) 0 " << In << "\n";
      break;
    case 1:
      Body << "  let " << S << " = reduce min 1000000 " << In << "\n";
      break;
    default:
      Body << "  let " << S << " = reduce max (0 - 1000000) " << In
           << "\n";
      break;
    }
  }

  /// In-place update of a fresh copy: the chain array may be aliased by
  /// an earlier binding's view, so consume a freshly mapped copy instead.
  void stepInPlace() {
    std::string In = arr(), Fresh = newArr();
    Body << "  let " << Fresh << " = map (\\(x: i32): i32 -> x + 0) "
         << In << "\n";
    std::string Out = newArr();
    int64_t Idx = static_cast<int64_t>(Rng.nextBelow(N));
    Body << "  let " << Out << " = " << Fresh << " with [" << Idx
         << "] <- " << Fresh << "[" << Idx << "] * 2 + "
         << std::to_string(smallConst()) << "\n";
  }

  void stepZipIota() {
    std::string In = arr(), Out = newArr();
    Body << "  let " << Out
         << " = map (\\(x: i32) (i: i32): i32 -> x * 2 - i) " << In
         << " (iota n)\n";
  }

  /// A sequential loop inside every thread of a map nest.
  void stepMapLoop() {
    std::string In = arr(), Out = newArr();
    int64_t Trips = posConst();
    Body << "  let " << Out
         << " = map (\\(x: i32): i32 -> loop (acc = x) for i < "
         << Trips << " do acc + i * " << std::to_string(posConst())
         << ") " << In << "\n";
  }

  /// A nested reduction over a thread-private iota.
  void stepMapReduce() {
    std::string In = arr(), Out = newArr();
    int64_t Inner = posConst();
    Body << "  let " << Out
         << " = map (\\(x: i32): i32 -> reduce (+) x (iota " << Inner
         << ")) " << In << "\n";
  }

  /// A histogram-style loop over the chain array into a replicated
  /// accumulator, reduced back to a scalar.
  void stepHistogram() {
    std::string In = arr(), S = newScalar();
    int64_t K = posConst();
    Body << "  let " << S << " = reduce (+) 0\n"
         << "    (loop (h = replicate " << K << " 0) for i < n do\n"
         << "      let c = " << In << "[i] % " << K << "\n"
         << "      let c = if c < 0 then c + " << K << " else c\n"
         << "      in h with [c] <- h[c] + 1)\n";
  }

  void step() {
    switch (Rng.nextBelow(9)) {
    case 0:
      return stepMap();
    case 1:
      return stepMask();
    case 2:
      return stepScan();
    case 3:
      return stepReduce();
    case 4:
      return stepInPlace();
    case 5:
      return stepZipIota();
    case 6:
      return stepMapLoop();
    case 7:
      return stepMapReduce();
    default:
      return stepHistogram();
    }
  }
};

} // namespace

GeneratedProgram fut::test::generateProgram(uint64_t Seed) {
  // Mix the seed so consecutive seeds give unrelated programs.
  SplitMix64 Setup(Seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);
  int64_t N = 4 + static_cast<int64_t>(Setup.nextBelow(37));
  int Steps = 3 + static_cast<int>(Setup.nextBelow(5));

  Gen G(Setup.next(), N);
  G.Body << "fun main (n: i32) (a0: [n]i32): ([n]i32, i32) =\n";
  for (int I = 0; I < Steps; ++I)
    G.step();

  // Fold every scalar produced along the way into the checksum so no
  // construct's result escapes the comparison.
  G.Body << "  let check = reduce (+) 0 " << G.arr() << "\n";
  std::string Check = "check";
  for (const std::string &S : G.Scalars)
    Check += " + " + S;
  G.Body << "  in (" << G.arr() << ", " << Check << ")\n";

  GeneratedProgram GP;
  GP.Seed = Seed;
  GP.Source = G.Body.str();

  std::vector<PrimValue> Elems;
  for (int64_t I = 0; I < N; ++I)
    Elems.push_back(PrimValue::makeI32(
        static_cast<int32_t>(Setup.nextBelow(101)) - 50));
  GP.Args.push_back(Value::scalar(PrimValue::makeI32(static_cast<int32_t>(N))));
  GP.Args.push_back(Value::array(ScalarKind::I32, {N}, std::move(Elems)));
  return GP;
}

DifferentialOutcome
fut::test::runDifferential(const GeneratedProgram &GP,
                           const gpusim::ResilienceParams &RP,
                           const gpusim::DeviceParams &DP, int Devices) {
  auto Fail = [&](const std::string &What) {
    DifferentialOutcome O;
    O.Ok = false;
    std::ostringstream OS;
    OS << What << "\nseed: " << GP.Seed << "\nprogram:\n" << GP.Source;
    O.Message = OS.str();
    return O;
  };

  // Reference: the unoptimised frontend output on the plain interpreter.
  NameSource RefNames;
  auto RefProg = frontend(GP.Source, RefNames);
  if (!RefProg)
    return Fail("frontend failed: " + RefProg.getError().str());
  InterpOptions IO;
  IO.ConsumeOnUpdate = true;
  Program RefP = RefProg.take(); // Interpreter holds a reference
  Interpreter I(RefP, IO);
  auto Ref = I.run(GP.Args);
  if (!Ref)
    return Fail("reference interpreter failed: " + Ref.getError().str());

  // Subject: the full pipeline on the simulated device.
  NameSource Names;
  CompilerOptions CO;
  CO.Devices = Devices;
  auto C = compileSource(GP.Source, Names, CO);
  if (!C)
    return Fail("compilation failed: " + C.getError().str());
  DeviceRunOptions RO;
  RO.Device = DP;
  RO.Resilience = RP;
  if (Devices > 1) {
    RO.Shards = &C->Shards;
    RO.Devices = Devices;
  }
  auto R = runOnDevice(C->P, GP.Args, RO);
  if (!R)
    return Fail("device run failed: " + R.getError().str());

  if (R->Outputs.size() != Ref->size())
    return Fail("result arity mismatch: device returned " +
                std::to_string(R->Outputs.size()) + ", reference " +
                std::to_string(Ref->size()));
  for (size_t J = 0; J < Ref->size(); ++J)
    if (!(R->Outputs[J] == (*Ref)[J]))
      return Fail("result " + std::to_string(J) +
                  " differs\n  device:    " + R->Outputs[J].str() +
                  "\n  reference: " + (*Ref)[J].str());

  DifferentialOutcome O;
  O.Ok = true;
  return O;
}
