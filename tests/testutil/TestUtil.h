//===- TestUtil.h - Shared helpers for the test suite -----------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_TESTS_TESTUTIL_H
#define FUTHARKCC_TESTS_TESTUTIL_H

#include "interp/Interp.h"
#include "ir/Builder.h"
#include "ir/IR.h"
#include "support/Error.h"

#include <gtest/gtest.h>

namespace fut {
namespace test {

/// Wraps a single body as a complete one-function program.
Program singleFun(std::vector<Param> Params, std::vector<Type> RetTypes,
                  Body B);

/// Runs main and asserts success, returning the results.
std::vector<Value> runOk(const Program &P, const std::vector<Value> &Args,
                         InterpOptions Opts = {});

/// Random generators with a fixed seed.
std::vector<double> randomDoubles(size_t N, uint64_t Seed, double Lo = -10,
                                  double Hi = 10);
std::vector<int64_t> randomInts(size_t N, uint64_t Seed, int64_t Lo = -100,
                                int64_t Hi = 100);

} // namespace test
} // namespace fut

/// gtest helpers for ErrorOr.
#define ASSERT_OK(EXPR)                                                        \
  do {                                                                         \
    auto &&Res_ = (EXPR);                                                      \
    ASSERT_TRUE(static_cast<bool>(Res_)) << Res_.getError().str();             \
  } while (false)

#define EXPECT_ERR_CONTAINS(EXPR, SUBSTR)                                      \
  do {                                                                         \
    auto &&Res_ = (EXPR);                                                      \
    ASSERT_FALSE(static_cast<bool>(Res_)) << "expected failure";               \
    EXPECT_NE(Res_.getError().Message.find(SUBSTR), std::string::npos)         \
        << "actual error: " << Res_.getError().Message;                        \
  } while (false)

#endif // FUTHARKCC_TESTS_TESTUTIL_H
