//===- Differential.h - Seeded differential test harness --------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of random surface programs together with a harness
/// that runs each program twice — once on the reference interpreter
/// (straight from the frontend, no optimisation, no faults) and once
/// through the full compile pipeline onto the simulated device — and
/// demands bit-identical results.
///
/// Generated programs are integer-only (i32): the pipeline reorders
/// reductions, which is only value-preserving for genuinely associative
/// operators, so exact equality would not survive floating point.  The
/// construct pool covers the surface the paper's pipeline cares about:
/// map nests, reduce, scan, conditional masking (the language has no
/// filter; a mask map is the standard encoding), in-place updates on
/// fresh arrays, iota, replicate, and sequential loops inside maps.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_TESTS_DIFFERENTIAL_H
#define FUTHARKCC_TESTS_DIFFERENTIAL_H

#include "gpusim/Device.h"
#include "interp/Interp.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fut {
namespace test {

/// A generated program plus matching arguments for its entry point.
struct GeneratedProgram {
  uint64_t Seed = 0;
  std::string Source;
  std::vector<Value> Args;
};

/// Deterministically generates program number \p Seed: same seed, same
/// program and inputs, forever.
GeneratedProgram generateProgram(uint64_t Seed);

/// The outcome of one differential run; on mismatch, Message carries the
/// seed, the source and both results so the failure reproduces from the
/// test log alone.
struct DifferentialOutcome {
  bool Ok = false;
  std::string Message;
};

/// Runs \p GP through both execution paths and compares bit-for-bit.
/// \p RP configures the device's fault injection — the harness's results
/// must be identical under fault-free and faulty (retried / degraded)
/// execution alike.  \p Devices > 1 routes the device leg through the
/// sharded path (compiled with a shard plan and executed on a
/// DeviceGroup); results must stay bit-identical to the reference at any
/// device count.
DifferentialOutcome
runDifferential(const GeneratedProgram &GP,
                const gpusim::ResilienceParams &RP = gpusim::ResilienceParams(),
                const gpusim::DeviceParams &DP = gpusim::DeviceParams::gtx780(),
                int Devices = 1);

} // namespace test
} // namespace fut

#endif // FUTHARKCC_TESTS_DIFFERENTIAL_H
