//===- TestUtil.cpp - Shared helpers for the test suite --------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"

#include "support/Utils.h"

using namespace fut;

Program fut::test::singleFun(std::vector<Param> Params,
                             std::vector<Type> RetTypes, Body B) {
  Program P;
  FunDef F;
  F.Name = "main";
  F.Params = std::move(Params);
  F.RetTypes = std::move(RetTypes);
  F.FBody = std::move(B);
  P.Funs.push_back(std::move(F));
  return P;
}

std::vector<Value> fut::test::runOk(const Program &P,
                                    const std::vector<Value> &Args,
                                    InterpOptions Opts) {
  Interpreter I(P, Opts);
  auto Res = I.run(Args);
  EXPECT_TRUE(static_cast<bool>(Res)) << Res.getError().str();
  if (!Res)
    return {};
  return Res.take();
}

std::vector<double> fut::test::randomDoubles(size_t N, uint64_t Seed,
                                             double Lo, double Hi) {
  SplitMix64 Rng(Seed);
  std::vector<double> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = Rng.nextDouble(Lo, Hi);
  return Out;
}

std::vector<int64_t> fut::test::randomInts(size_t N, uint64_t Seed,
                                           int64_t Lo, int64_t Hi) {
  SplitMix64 Rng(Seed);
  std::vector<int64_t> Out(N);
  for (size_t I = 0; I < N; ++I)
    Out[I] = Lo + static_cast<int64_t>(Rng.nextBelow(
                      static_cast<uint64_t>(Hi - Lo + 1)));
  return Out;
}
