//===- gradcheck_test.cpp - Tests for the gradient-check fuzzer -------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The gradient oracle is itself test infrastructure (CI runs a 150-seed
/// sweep of it), so these tests pin its load-bearing properties: seeded
/// generation is bit-stable, a smoke range of seeds passes the check with
/// margin, plan subsets stay well-typed under the oracle (the shrinker's
/// soundness condition), and the shrinker actually minimises a genuinely
/// failing case.  The failing case is honest, not an injected compiler
/// bug: a reduce max over exactly tied inputs sits on the kink of a
/// piecewise-differentiable function, where the VJP's subgradient (seed to
/// the first attainer) and central differences (half the seed) must
/// disagree — inputs the continuous random sampler produces with
/// probability zero.
///
//===----------------------------------------------------------------------===//

#include "fuzz/GradFuzz.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::fuzz;

TEST(GradFuzzTest, GenerationIsDeterministic) {
  for (uint64_t Seed : {1u, 7u, 180u, 499u}) {
    FuzzCase A = generateGrad(Seed);
    FuzzCase B = generateGrad(Seed);
    EXPECT_EQ(A.Source, B.Source) << "seed " << Seed;
    ASSERT_EQ(A.Args.size(), B.Args.size());
    for (size_t I = 0; I < A.Args.size(); ++I)
      EXPECT_TRUE(A.Args[I] == B.Args[I]) << "seed " << Seed << " arg " << I;
  }
}

TEST(GradFuzzTest, FixedSeedsPassTheGradientCheck) {
  // A small always-on smoke; CI runs the 150-seed sweep.  The margin
  // assertion keeps the oracle honest: passing with rel errors anywhere
  // near the tolerance would mean the generator drifted towards
  // ill-conditioned programs.
  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    GradOutcome O = runGradientCheck(generateGrad(Seed));
    EXPECT_TRUE(O.Ok) << "seed " << Seed << ":\n" << O.Message;
    EXPECT_LT(O.MaxRelErr, GradRelTol / 100) << "seed " << Seed;
  }
}

TEST(GradFuzzTest, PlanSubsetsStayWellTyped) {
  // The shrinker removes arbitrary steps; any subset must still render a
  // well-typed program whose gradients check out.
  GradPlan P = sampleGradPlan(180);
  ASSERT_GE(P.Steps.size(), 3u);
  for (size_t Drop = 0; Drop < P.Steps.size(); ++Drop) {
    GradPlan Q = P;
    Q.Steps.erase(Q.Steps.begin() + static_cast<long>(Drop));
    GradOutcome O = runGradientCheck(renderGradPlan(Q, 180));
    EXPECT_TRUE(O.Ok) << "dropped step " << Drop << ":\n" << O.Message;
  }
}

TEST(GradFuzzTest, EveryStepKindPassesInIsolation) {
  // One-step plans per construct: a regression here names the adjoint
  // rule that broke rather than whatever seed happened to hit it.
  for (int K = 0; K <= static_cast<int>(GradStep::Kind::RbiGather); ++K) {
    for (int Variant : {0, 1, 2, 3, 4}) {
      GradPlan P;
      P.N = 5;
      P.X0 = 0.37;
      P.Input = {1.25, -0.8, 0.31, 1.9, -1.33};
      GradStep S;
      S.K = static_cast<GradStep::Kind>(K);
      S.Variant = Variant;
      S.Pos = 3;
      S.Small = -4;
      S.SRef = 1;
      P.Steps = {S};
      GradOutcome O = runGradientCheck(renderGradPlan(P, 7000 + K));
      EXPECT_TRUE(O.Ok) << "kind " << K << " variant " << Variant << ":\n"
                        << O.Message;
    }
  }
}

TEST(GradFuzzTest, TiedMaxFailsAndShrinksToTheCulprit) {
  // Exactly tied inputs put reduce max on its kink: the VJP routes the
  // whole seed to the first attainer while central differences see half a
  // seed, so the oracle must flag the case — and the shrinker must strip
  // the unrelated smooth map while keeping the failure failing.
  GradPlan P;
  P.N = 6;
  P.X0 = 0.4;
  P.Input.assign(6, 1.0);
  GradStep SmoothMap;
  SmoothMap.K = GradStep::Kind::Map;
  SmoothMap.Variant = 0; // sin x + cos (x * 0.5): preserves the ties
  GradStep Max;
  Max.K = GradStep::Kind::MaxReduce;
  P.Steps = {SmoothMap, Max};

  GradOutcome O = runGradientCheck(renderGradPlan(P, 999));
  ASSERT_FALSE(O.Ok) << "tied max should not pass a finite-difference check";
  EXPECT_NE(O.Message.find("gradient mismatch"), std::string::npos)
      << O.Message;

  GradShrinkResult SR = shrinkGrad(P, 999);
  EXPECT_GE(SR.StepsRemoved, 1) << "the smooth map is removable";
  EXPECT_LE(SR.MinimalPlan.N, P.N);
  EXPECT_FALSE(runGradientCheck(SR.Minimal).Ok)
      << "the minimal case must still fail";
  EXPECT_NE(SR.Message.find("gradient mismatch"), std::string::npos);
}
