//===- vjp_test.cpp - Tests for reverse-mode AD (VJP) ------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
//
// Every compile here runs with the default options, i.e. the type-rederiving
// IR verifier after every pass and the memory-plan verifier on the flattened
// result — so each test doubles as "the generated adjoints pass the
// verifiers unmodified".
//
//===----------------------------------------------------------------------===//

#include "ad/Vjp.h"

#include "driver/Compiler.h"
#include "interp/Interp.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace fut;
using namespace fut::test;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value dv(double V) { return Value::scalar(PrimValue::makeF64(V)); }
Value dvec(const std::vector<double> &Xs) {
  return makeVectorValue(ScalarKind::F64, Xs);
}

/// Compiles \p Src with --vjp=main through the full default pipeline
/// (verifier on at every pass boundary, memory planner + plan verifier on
/// the flattened result).
ErrorOr<CompileResult> compileVjp(const std::string &Src,
                                  CompilerOptions O = {}) {
  NameSource NS;
  O.VJP = "main";
  return compileSource(Src, NS, O);
}

/// Runs a function on the reference interpreter under consume-on-update
/// semantics (the semantics the AD save-on-consume copies assume).
std::vector<Value> interpFun(const Program &P, const std::string &Fun,
                             const std::vector<Value> &Args) {
  InterpOptions IO;
  IO.ConsumeOnUpdate = true;
  Interpreter I(P, IO);
  auto R = I.runFunction(Fun, Args);
  EXPECT_TRUE(static_cast<bool>(R)) << R.getError().str();
  return R ? R.take() : std::vector<Value>{};
}

/// Central finite differences of a scalar-result primal with respect to
/// one component of one argument, through the interpreter.
double centralFd(const Program &P, const std::vector<Value> &Args,
                 size_t ArgIdx, int64_t Elem) {
  auto Perturb = [&](double H) {
    std::vector<Value> A = Args;
    if (A[ArgIdx].isScalar()) {
      A[ArgIdx] = dv(A[ArgIdx].getScalar().getFloat() + H);
    } else {
      Value V = A[ArgIdx];
      V.flatMut()[static_cast<size_t>(Elem)] = PrimValue::makeF64(
          V.flat()[static_cast<size_t>(Elem)].getFloat() + H);
      A[ArgIdx] = V;
    }
    auto R = interpFun(P, "main", A);
    return R[0].getScalar().getFloat();
  };
  double X = Args[ArgIdx].isScalar()
                 ? Args[ArgIdx].getScalar().getFloat()
                 : Args[ArgIdx].flat()[static_cast<size_t>(Elem)].getFloat();
  double H = 1e-6 * std::max(1.0, std::fabs(X));
  return (Perturb(H) - Perturb(-H)) / (2 * H);
}

} // namespace

TEST(VjpTest, ScalarSquare) {
  auto C = compileVjp("fun main (x: f64): f64 = x * x");
  ASSERT_OK(C);
  // main_vjp : (x, seed) -> (x*x, 2*x*seed)
  auto R = interpFun(C->P, "main_vjp", {dv(3.0), dv(1.0)});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_DOUBLE_EQ(R[0].getScalar().getFloat(), 9.0);
  EXPECT_DOUBLE_EQ(R[1].getScalar().getFloat(), 6.0);

  // The seed scales the pullback linearly.
  R = interpFun(C->P, "main_vjp", {dv(3.0), dv(-2.5)});
  EXPECT_DOUBLE_EQ(R[1].getScalar().getFloat(), -15.0);
}

TEST(VjpTest, ScalarChainOfUnOps) {
  auto C = compileVjp("fun main (x: f64): f64 = exp (sin (x * x))");
  ASSERT_OK(C);
  double X = 0.7;
  auto R = interpFun(C->P, "main_vjp", {dv(X), dv(1.0)});
  double Want = std::exp(std::sin(X * X)) * std::cos(X * X) * 2 * X;
  EXPECT_NEAR(R[1].getScalar().getFloat(), Want, 1e-12);
}

TEST(VjpTest, MapReduceSumOfSquares) {
  auto C = compileVjp(
      "fun main (n: i32) (xs: [n]f64): f64 =\n"
      "  reduce (+) 0.0f64 (map (\\(x: f64): f64 -> x * x) xs)");
  ASSERT_OK(C);
  std::vector<double> Xs{1.0, -2.0, 3.5, 0.0};
  auto R = interpFun(C->P, "main_vjp", {iv(4), dvec(Xs), dv(1.0)});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_DOUBLE_EQ(R[0].getScalar().getFloat(), 1.0 + 4.0 + 12.25);
  ASSERT_TRUE(R[1].isArray());
  for (size_t I = 0; I < Xs.size(); ++I)
    EXPECT_DOUBLE_EQ(R[1].flat()[I].getFloat(), 2 * Xs[I]) << "at " << I;
}

TEST(VjpTest, MapFreeVariableGetsReducedAdjoint) {
  // d/dc sum(c * x_i) = sum(x_i): the free variable's per-element
  // contributions must be reduced with (+).
  auto C = compileVjp(
      "fun main (n: i32) (c: f64) (xs: [n]f64): f64 =\n"
      "  reduce (+) 0.0f64 (map (\\(x: f64): f64 -> c * x) xs)");
  ASSERT_OK(C);
  std::vector<double> Xs{1.0, 2.0, 3.0};
  auto R = interpFun(C->P, "main_vjp", {iv(3), dv(2.0), dvec(Xs), dv(1.0)});
  ASSERT_EQ(R.size(), 3u);
  EXPECT_DOUBLE_EQ(R[1].getScalar().getFloat(), 6.0); // adj(c)
  for (size_t I = 0; I < Xs.size(); ++I)
    EXPECT_DOUBLE_EQ(R[2].flat()[I].getFloat(), 2.0); // adj(xs) = c
}

TEST(VjpTest, DotProduct) {
  auto C = compileVjp(
      "fun main (n: i32) (xs: [n]f64) (ys: [n]f64): f64 =\n"
      "  reduce (+) 0.0f64 (map (\\(x: f64) (y: f64): f64 -> x * y) xs ys)");
  ASSERT_OK(C);
  std::vector<double> Xs{1.0, 2.0, 3.0}, Ys{4.0, 5.0, 6.0};
  auto R = interpFun(C->P, "main_vjp", {iv(3), dvec(Xs), dvec(Ys), dv(1.0)});
  ASSERT_EQ(R.size(), 3u);
  EXPECT_DOUBLE_EQ(R[0].getScalar().getFloat(), 32.0);
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_DOUBLE_EQ(R[1].flat()[I].getFloat(), Ys[I]);
    EXPECT_DOUBLE_EQ(R[2].flat()[I].getFloat(), Xs[I]);
  }
}

TEST(VjpTest, ReduceMulExchangesPrefixSuffix) {
  // d/dx_i prod(xs) = prod_{j != i} x_j, including through a zero.
  auto C = compileVjp("fun main (n: i32) (xs: [n]f64): f64 =\n"
                      "  reduce (*) 1.0f64 xs");
  ASSERT_OK(C);
  std::vector<double> Xs{2.0, 0.0, 3.0, -1.5};
  auto R = interpFun(C->P, "main_vjp", {iv(4), dvec(Xs), dv(1.0)});
  EXPECT_DOUBLE_EQ(R[0].getScalar().getFloat(), 0.0);
  for (size_t I = 0; I < Xs.size(); ++I) {
    double Want = 1.0;
    for (size_t J = 0; J < Xs.size(); ++J)
      if (J != I)
        Want *= Xs[J];
    EXPECT_DOUBLE_EQ(R[1].flat()[I].getFloat(), Want) << "at " << I;
  }
}

TEST(VjpTest, ReduceMaxRoutesSeedToFirstAttainer) {
  auto C = compileVjp("fun main (n: i32) (xs: [n]f64): f64 =\n"
                      "  reduce max 0.0f64 xs");
  ASSERT_OK(C);
  std::vector<double> Xs{1.0, 7.0, 3.0, 7.0};
  auto R = interpFun(C->P, "main_vjp", {iv(4), dvec(Xs), dv(2.0)});
  EXPECT_DOUBLE_EQ(R[0].getScalar().getFloat(), 7.0);
  std::vector<double> Want{0.0, 2.0, 0.0, 0.0}; // first attainer only
  for (size_t I = 0; I < Xs.size(); ++I)
    EXPECT_DOUBLE_EQ(R[1].flat()[I].getFloat(), Want[I]) << "at " << I;
}

TEST(VjpTest, ReduceMaxNeutralAttainsNoAdjoint) {
  // When the neutral element wins, no input element receives the seed.
  auto C = compileVjp("fun main (n: i32) (xs: [n]f64): f64 =\n"
                      "  reduce max 0.0f64 xs");
  ASSERT_OK(C);
  std::vector<double> Xs{-1.0, -7.0, -3.0};
  auto R = interpFun(C->P, "main_vjp", {iv(3), dvec(Xs), dv(2.0)});
  EXPECT_DOUBLE_EQ(R[0].getScalar().getFloat(), 0.0);
  for (size_t I = 0; I < Xs.size(); ++I)
    EXPECT_DOUBLE_EQ(R[1].flat()[I].getFloat(), 0.0) << "at " << I;
}

TEST(VjpTest, ScanSumIsSuffixSumOfSeeds) {
  auto C = compileVjp("fun main (n: i32) (xs: [n]f64): [n]f64 =\n"
                      "  scan (+) 0.0f64 xs");
  ASSERT_OK(C);
  std::vector<double> Xs{1.0, 2.0, 3.0, 4.0};
  std::vector<double> Seeds{1.0, 10.0, 100.0, 1000.0};
  auto R = interpFun(C->P, "main_vjp", {iv(4), dvec(Xs), dvec(Seeds)});
  ASSERT_EQ(R.size(), 2u);
  // adj(x_i) = sum_{j >= i} seed_j.
  std::vector<double> Want{1111.0, 1110.0, 1100.0, 1000.0};
  for (size_t I = 0; I < Xs.size(); ++I)
    EXPECT_DOUBLE_EQ(R[1].flat()[I].getFloat(), Want[I]) << "at " << I;
}

TEST(VjpTest, LoopPower) {
  // acc = x^n via a loop; d/dx = n * x^(n-1).
  auto C = compileVjp("fun main (x: f64) (n: i32): f64 =\n"
                      "  loop (acc = 1.0f64) for i < n do acc * x");
  ASSERT_OK(C);
  auto R = interpFun(C->P, "main_vjp", {dv(1.5), iv(4), dv(1.0)});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_NEAR(R[0].getScalar().getFloat(), std::pow(1.5, 4), 1e-12);
  EXPECT_NEAR(R[1].getScalar().getFloat(), 4 * std::pow(1.5, 3), 1e-12);
}

TEST(VjpTest, MemoryPlanAccountsTheTape) {
  // A pinned trip count makes the stack-of-iterates statically sized: one
  // tape array of 16 f64 iterates.  The primal plan must stay tape-free,
  // and a runtime trip count must be accounted as symbolic, not silently
  // dropped.
  auto C = compileVjp("fun main (x: f64): f64 =\n"
                      "  loop (acc = 1.0f64) for i < 16 do acc * x * 0.9f64");
  ASSERT_OK(C);
  const mem::FunPlan *FP = C->MemPlan.forFun("main_vjp");
  ASSERT_NE(FP, nullptr);
  EXPECT_EQ(FP->TapeArrays, 1);
  EXPECT_EQ(FP->TapeSymbolic, 0);
  EXPECT_EQ(FP->TapeBytes, 16 * 8);
  const mem::FunPlan *Primal = C->MemPlan.forFun("main");
  ASSERT_NE(Primal, nullptr);
  EXPECT_EQ(Primal->TapeArrays, 0);
  EXPECT_EQ(Primal->TapeBytes, 0);
  EXPECT_NE(C->MemPlan.str().find("stack-of-iterates"), std::string::npos);

  auto D = compileVjp("fun main (x: f64) (n: i32): f64 =\n"
                      "  loop (acc = 1.0f64) for i < n do acc * x");
  ASSERT_OK(D);
  const mem::FunPlan *DP = D->MemPlan.forFun("main_vjp");
  ASSERT_NE(DP, nullptr);
  EXPECT_EQ(DP->TapeArrays, 1);
  EXPECT_EQ(DP->TapeSymbolic, 1);
  EXPECT_EQ(DP->TapeBytes, 0);
}

TEST(VjpTest, LoopOverArrayIterates) {
  // A loop whose merge parameter depends on the previous iterate and an
  // indexed element: acc' = acc * xs[i].  The tape must restore each
  // iterate for the reverse sweep.
  auto C = compileVjp("fun main (n: i32) (xs: [n]f64): f64 =\n"
                      "  loop (acc = 1.0f64) for i < n do acc * xs[i]");
  ASSERT_OK(C);
  std::vector<double> Xs{2.0, 3.0, 4.0};
  auto R = interpFun(C->P, "main_vjp", {iv(3), dvec(Xs), dv(1.0)});
  EXPECT_DOUBLE_EQ(R[0].getScalar().getFloat(), 24.0);
  std::vector<double> Want{12.0, 8.0, 6.0};
  for (size_t I = 0; I < Xs.size(); ++I)
    EXPECT_DOUBLE_EQ(R[1].flat()[I].getFloat(), Want[I]) << "at " << I;
}

TEST(VjpTest, InPlaceUpdateMasksOverwrittenCell) {
  // ys[0] is overwritten before the reduce, so xs[0]'s contribution
  // through ys[0] must vanish; the stored value is a constant, so its
  // adjoint is dropped entirely.
  auto C = compileVjp(
      "fun main (n: i32) (xs: [n]f64): f64 =\n"
      "  let ys = map (\\(x: f64): f64 -> x * 2.0f64) xs\n"
      "  let ys[0] = 5.0f64\n"
      "  in reduce (+) 0.0f64 ys");
  ASSERT_OK(C);
  std::vector<double> Xs{1.0, 2.0, 3.0};
  auto R = interpFun(C->P, "main_vjp", {iv(3), dvec(Xs), dv(1.0)});
  EXPECT_DOUBLE_EQ(R[0].getScalar().getFloat(), 5.0 + 4.0 + 6.0);
  std::vector<double> Want{0.0, 2.0, 2.0};
  for (size_t I = 0; I < Xs.size(); ++I)
    EXPECT_DOUBLE_EQ(R[1].flat()[I].getFloat(), Want[I]) << "at " << I;
}

TEST(VjpTest, UpdateRoutesAdjointToStoredValue) {
  // The overwritten cell's adjoint flows to the *stored value* x, on top
  // of x's direct contribution: y = [x*2, x*3] with y[0] <- x gives
  // d(sum)/dx = 1 + 3 (cell 0's map contribution is masked out).
  auto C = compileVjp(
      "fun main (x: f64): f64 =\n"
      "  let cs = map (\\(i: i32): f64 -> f64 (i + 2)) (iota 2)\n"
      "  let ys = map (\\(c: f64): f64 -> x * c) cs\n"
      "  let ys[0] = x\n"
      "  in reduce (+) 0.0f64 ys");
  ASSERT_OK(C);
  auto R = interpFun(C->P, "main_vjp", {dv(10.0), dv(1.0)});
  EXPECT_DOUBLE_EQ(R[0].getScalar().getFloat(), 10.0 + 30.0);
  EXPECT_DOUBLE_EQ(R[1].getScalar().getFloat(), 4.0);
}

TEST(VjpTest, ReduceByIndexGathersContributions) {
  // hist = reduce_by_index dest (+) 0 is vs; adj(vs_j) = seed[is_j] when
  // the bin is in range, 0 otherwise; adj(dest) = seed.
  auto C = compileVjp(
      "fun main (n: i32) (is: [n]i32) (vs: [n]f64): [4]f64 =\n"
      "  reduce_by_index (replicate 4 0.0f64) (+) 0.0f64 is vs");
  ASSERT_OK(C);
  std::vector<double> Vs{1.0, 2.0, 3.0, 4.0};
  auto R = interpFun(
      C->P, "main_vjp",
      {iv(4), makeIntVectorValue(ScalarKind::I32, {0, 2, 9, 2}),
       dvec(Vs), dvec({1.0, 10.0, 100.0, 1000.0})});
  ASSERT_EQ(R.size(), 2u);
  EXPECT_DOUBLE_EQ(R[0].flat()[0].getFloat(), 1.0);
  EXPECT_DOUBLE_EQ(R[0].flat()[2].getFloat(), 2.0 + 4.0);
  std::vector<double> Want{1.0, 100.0, 0.0, 100.0}; // bin 9 out of range
  for (size_t I = 0; I < Vs.size(); ++I)
    EXPECT_DOUBLE_EQ(R[1].flat()[I].getFloat(), Want[I]) << "at " << I;
}

TEST(VjpTest, InactiveIntParamsGetNoAdjoint) {
  auto C = compileVjp("fun main (n: i32) (x: f64): f64 = x * x");
  ASSERT_OK(C);
  const FunDef *G = C->P.findFun("main_vjp");
  ASSERT_NE(G, nullptr);
  // Params: n, x, seed.  Results: primal, adj(x) — nothing for n.
  EXPECT_EQ(G->Params.size(), 3u);
  EXPECT_EQ(G->RetTypes.size(), 2u);
}

TEST(VjpTest, IfBranchesPullBackSeparately) {
  auto C = compileVjp("fun main (x: f64): f64 =\n"
                      "  if x < 0.0f64 then x * x else x * 3.0f64");
  ASSERT_OK(C);
  auto R = interpFun(C->P, "main_vjp", {dv(-2.0), dv(1.0)});
  EXPECT_DOUBLE_EQ(R[1].getScalar().getFloat(), -4.0);
  R = interpFun(C->P, "main_vjp", {dv(2.0), dv(1.0)});
  EXPECT_DOUBLE_EQ(R[1].getScalar().getFloat(), 3.0);
}

TEST(VjpTest, FiniteDifferenceSpotCheck) {
  const char *Src =
      "fun main (n: i32) (xs: [n]f64): f64 =\n"
      "  let ys = map (\\(x: f64): f64 -> exp (x * 0.1f64) + sin x) xs\n"
      "  in reduce (+) 0.0f64 ys";
  auto C = compileVjp(Src);
  ASSERT_OK(C);
  std::vector<double> Xs{0.3, -1.2, 2.7, 0.0, -0.5};
  std::vector<Value> Args{iv(5), dvec(Xs)};
  std::vector<Value> VjpArgs = Args;
  VjpArgs.push_back(dv(1.0));
  auto R = interpFun(C->P, "main_vjp", VjpArgs);
  for (size_t I = 0; I < Xs.size(); ++I) {
    double Fd = centralFd(C->P, Args, 1, static_cast<int64_t>(I));
    EXPECT_NEAR(R[1].flat()[I].getFloat(), Fd, 1e-5) << "at " << I;
  }
}

TEST(VjpTest, DeviceMatchesInterpreter) {
  // The generated adjoint code must survive the full pipeline (fusion,
  // flattening, memory planning — all verified) and run on the simulated
  // device.  Floats may be re-associated by kernel extraction, so the
  // comparison is approximate, not bitwise.
  auto C = compileVjp(
      "fun main (n: i32) (xs: [n]f64): f64 =\n"
      "  reduce (+) 0.0f64 (map (\\(x: f64): f64 -> x * x) xs)");
  ASSERT_OK(C);
  std::vector<double> Xs{1.0, -2.0, 3.5, 0.25};
  std::vector<Value> Args{iv(4), dvec(Xs), dv(1.0)};
  auto FromInterp = interpFun(C->P, "main_vjp", Args);

  DeviceRunOptions RO;
  RO.MemPlan = &C->MemPlan;
  auto R = runOnDevice(C->P, Args, RO, "main_vjp");
  ASSERT_OK(R);
  ASSERT_EQ(R->Outputs.size(), FromInterp.size());
  for (size_t I = 0; I < FromInterp.size(); ++I)
    EXPECT_TRUE(R->Outputs[I].approxEqual(FromInterp[I]))
        << "output " << I << ": " << R->Outputs[I].str() << " vs "
        << FromInterp[I].str();
}

TEST(VjpTest, UnsupportedReductionOperatorIsNamed) {
  EXPECT_ERR_CONTAINS(compileVjp("fun main (n: i32) (xs: [n]f64): f64 =\n"
                                 "  reduce (\\(a: f64) (b: f64): f64 -> "
                                 "a / b) 1.0f64 xs"),
                      "vjp: ");
}

TEST(VjpTest, UnknownFunctionIsNamed) {
  NameSource NS;
  CompilerOptions O;
  O.VJP = "nosuchfun";
  EXPECT_ERR_CONTAINS(compileSource("fun main (x: f64): f64 = x", NS, O),
                      "no function named");
}

TEST(VjpTest, VjpEntersCacheKey) {
  CompilerOptions Plain, Grad;
  Grad.VJP = "main";
  EXPECT_NE(Plain.cacheCanonical(), Grad.cacheCanonical());
  // And the default stays byte-identical (pinned golden hashes elsewhere).
  EXPECT_EQ(Plain.cacheCanonical().find("vjp"), std::string::npos);
  const std::string Src = "fun main (x: f64): f64 = x * x";
  EXPECT_NE(artifactCacheKey(Src, Plain), artifactCacheKey(Src, Grad));
}
