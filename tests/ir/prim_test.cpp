//===- prim_test.cpp - Tests for primitive values and operators ------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "ir/Prim.h"

#include "TestUtil.h"

#include <cstdint>
#include <gtest/gtest.h>

using namespace fut;

TEST(PrimValueTest, KindsAndAccessors) {
  EXPECT_EQ(PrimValue::makeI32(42).getInt(), 42);
  EXPECT_EQ(PrimValue::makeI64(1LL << 40).getInt(), 1LL << 40);
  EXPECT_FLOAT_EQ(PrimValue::makeF32(1.5f).getFloat(), 1.5f);
  EXPECT_DOUBLE_EQ(PrimValue::makeF64(2.5).getFloat(), 2.5);
  EXPECT_TRUE(PrimValue::makeBool(true).getBool());
}

TEST(PrimValueTest, I32Truncates) {
  PrimValue V = PrimValue::makeI32(static_cast<int32_t>(0x1'0000'0001LL));
  EXPECT_EQ(V.getInt(), 1);
}

TEST(PrimValueTest, ZeroOf) {
  EXPECT_EQ(PrimValue::zeroOf(ScalarKind::I32), PrimValue::makeI32(0));
  EXPECT_EQ(PrimValue::zeroOf(ScalarKind::F64), PrimValue::makeF64(0.0));
  EXPECT_EQ(PrimValue::zeroOf(ScalarKind::Bool), PrimValue::makeBool(false));
}

TEST(PrimValueTest, EqualityIsKindSensitive) {
  EXPECT_NE(PrimValue::makeI32(1), PrimValue::makeI64(1));
  EXPECT_EQ(PrimValue::makeI32(7), PrimValue::makeI32(7));
}

TEST(PrimOpsTest, IntegerArithmetic) {
  auto Eval = [](BinOp Op, int64_t A, int64_t B) {
    auto R = evalBinOp(Op, PrimValue::makeI32(static_cast<int32_t>(A)),
                       PrimValue::makeI32(static_cast<int32_t>(B)));
    EXPECT_TRUE(static_cast<bool>(R));
    return R.take().getInt();
  };
  EXPECT_EQ(Eval(BinOp::Add, 3, 4), 7);
  EXPECT_EQ(Eval(BinOp::Sub, 3, 4), -1);
  EXPECT_EQ(Eval(BinOp::Mul, 3, 4), 12);
  EXPECT_EQ(Eval(BinOp::Min, 3, 4), 3);
  EXPECT_EQ(Eval(BinOp::Max, 3, 4), 4);
  EXPECT_EQ(Eval(BinOp::Pow, 2, 10), 1024);
}

TEST(PrimOpsTest, FloorDivisionSemantics) {
  // Futhark-style floor division: -7 / 2 == -4, -7 % 2 == 1.
  auto Div = evalBinOp(BinOp::Div, PrimValue::makeI32(-7),
                       PrimValue::makeI32(2));
  auto Mod = evalBinOp(BinOp::Mod, PrimValue::makeI32(-7),
                       PrimValue::makeI32(2));
  ASSERT_OK(Div);
  ASSERT_OK(Mod);
  EXPECT_EQ(Div.take().getInt(), -4);
  EXPECT_EQ(Mod.take().getInt(), 1);
}

TEST(PrimOpsTest, DivisionByZeroFails) {
  EXPECT_ERR_CONTAINS(evalBinOp(BinOp::Div, PrimValue::makeI32(1),
                                PrimValue::makeI32(0)),
                      "division by zero");
  EXPECT_ERR_CONTAINS(evalBinOp(BinOp::Mod, PrimValue::makeI64(1),
                                PrimValue::makeI64(0)),
                      "modulo by zero");
}

TEST(PrimOpsTest, MismatchedKindsFail) {
  EXPECT_ERR_CONTAINS(evalBinOp(BinOp::Add, PrimValue::makeI32(1),
                                PrimValue::makeF32(1.0f)),
                      "mismatched kinds");
}

TEST(PrimOpsTest, ComparisonsYieldBool) {
  auto R = evalBinOp(BinOp::Lt, PrimValue::makeF64(1.0),
                     PrimValue::makeF64(2.0));
  ASSERT_OK(R);
  EXPECT_EQ(R.take(), PrimValue::makeBool(true));
  EXPECT_EQ(binOpResultKind(BinOp::Lt, ScalarKind::F64), ScalarKind::Bool);
  EXPECT_EQ(binOpResultKind(BinOp::Add, ScalarKind::F64), ScalarKind::F64);
}

TEST(PrimOpsTest, F32ArithmeticRoundsToSinglePrecision) {
  auto R = evalBinOp(BinOp::Add, PrimValue::makeF32(1e8f),
                     PrimValue::makeF32(1.0f));
  ASSERT_OK(R);
  // In f32, 1e8 + 1 == 1e8.
  EXPECT_FLOAT_EQ(static_cast<float>(R.take().getFloat()), 1e8f);
}

TEST(PrimOpsTest, UnaryOps) {
  auto Abs = evalUnOp(UnOp::Abs, PrimValue::makeI32(-5));
  ASSERT_OK(Abs);
  EXPECT_EQ(Abs.take().getInt(), 5);

  auto Sqrt = evalUnOp(UnOp::Sqrt, PrimValue::makeF64(9.0));
  ASSERT_OK(Sqrt);
  EXPECT_DOUBLE_EQ(Sqrt.take().getFloat(), 3.0);

  auto Neg = evalUnOp(UnOp::Neg, PrimValue::makeF32(2.0f));
  ASSERT_OK(Neg);
  EXPECT_FLOAT_EQ(static_cast<float>(Neg.take().getFloat()), -2.0f);

  EXPECT_ERR_CONTAINS(evalUnOp(UnOp::Sqrt, PrimValue::makeI32(4)),
                      "undefined");
}

TEST(PrimOpsTest, LogicalOps) {
  auto R = evalBinOp(BinOp::LogAnd, PrimValue::makeBool(true),
                     PrimValue::makeBool(false));
  ASSERT_OK(R);
  EXPECT_FALSE(R.take().getBool());
  EXPECT_ERR_CONTAINS(evalBinOp(BinOp::LogAnd, PrimValue::makeI32(1),
                                PrimValue::makeI32(1)),
                      "undefined");
}

TEST(PrimOpsTest, Conversions) {
  EXPECT_EQ(evalConvOp({ScalarKind::F64, ScalarKind::I32},
                       PrimValue::makeF64(3.9)),
            PrimValue::makeI32(3));
  EXPECT_EQ(evalConvOp({ScalarKind::I32, ScalarKind::F64},
                       PrimValue::makeI32(3)),
            PrimValue::makeF64(3.0));
  EXPECT_EQ(evalConvOp({ScalarKind::I64, ScalarKind::I32},
                       PrimValue::makeI64((1LL << 32) + 5)),
            PrimValue::makeI32(5));
}

class BinOpKindSweep
    : public ::testing::TestWithParam<std::tuple<BinOp, ScalarKind>> {};

TEST_P(BinOpKindSweep, DefinedOpsEvaluateAndPreserveKind) {
  auto [Op, K] = GetParam();
  if (!binOpDefinedOn(Op, K))
    GTEST_SKIP() << "op not defined on kind";
  PrimValue A = PrimValue::zeroOf(K);
  PrimValue B = K == ScalarKind::Bool
                    ? PrimValue::makeBool(true)
                    : (isIntKind(K) ? PrimValue::makeI32(1) : A);
  // Normalise B to the right kind.
  B = evalConvOp({B.kind(), K}, B);
  auto R = evalBinOp(Op, A, B);
  ASSERT_OK(R);
  EXPECT_EQ(R.take().kind(), binOpResultKind(Op, K));
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAllKinds, BinOpKindSweep,
    ::testing::Combine(
        ::testing::Values(BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min,
                          BinOp::Max, BinOp::LogAnd, BinOp::LogOr, BinOp::Eq,
                          BinOp::Neq, BinOp::Lt, BinOp::Leq, BinOp::Gt,
                          BinOp::Geq),
        ::testing::Values(ScalarKind::Bool, ScalarKind::I32, ScalarKind::I64,
                          ScalarKind::F32, ScalarKind::F64)));

TEST(PrimOpsTest, SignedOverflowWrapsToTwosComplement) {
  // Add/Sub/Mul/Neg wrap modulo 2^64 instead of invoking signed-overflow
  // UB; the interpreter, constant folder and simulated device all funnel
  // through these, so wrapping here pins the semantics everywhere.
  auto I64 = [](int64_t V) { return PrimValue::makeI64(V); };
  auto Add = evalBinOp(BinOp::Add, I64(INT64_MAX), I64(1));
  ASSERT_OK(Add);
  EXPECT_EQ(Add.take().getInt(), INT64_MIN);

  auto Sub = evalBinOp(BinOp::Sub, I64(INT64_MIN), I64(1));
  ASSERT_OK(Sub);
  EXPECT_EQ(Sub.take().getInt(), INT64_MAX);

  auto Mul = evalBinOp(BinOp::Mul, I64(INT64_MIN), I64(-1));
  ASSERT_OK(Mul);
  EXPECT_EQ(Mul.take().getInt(), INT64_MIN);

  auto Neg = evalUnOp(UnOp::Neg, I64(INT64_MIN));
  ASSERT_OK(Neg);
  EXPECT_EQ(Neg.take().getInt(), INT64_MIN);

  auto Abs = evalUnOp(UnOp::Abs, I64(INT64_MIN));
  ASSERT_OK(Abs);
  EXPECT_EQ(Abs.take().getInt(), INT64_MIN);
}

TEST(PrimOpsTest, DivisionOverflowIsATypedRuntimeError) {
  // INT64_MIN / -1 has no representable result; it must be the same typed
  // runtime error on every execution path, never UB.
  auto Div = evalBinOp(BinOp::Div, PrimValue::makeI64(INT64_MIN),
                       PrimValue::makeI64(-1));
  ASSERT_FALSE(static_cast<bool>(Div));
  EXPECT_EQ(Div.getError().Kind, ErrorKind::Runtime);
  EXPECT_NE(Div.getError().Message.find("division overflow"),
            std::string::npos);

  auto Mod = evalBinOp(BinOp::Mod, PrimValue::makeI64(INT64_MIN),
                       PrimValue::makeI64(-1));
  ASSERT_FALSE(static_cast<bool>(Mod));
  EXPECT_EQ(Mod.getError().Kind, ErrorKind::Runtime);
  EXPECT_NE(Mod.getError().Message.find("modulo overflow"),
            std::string::npos);
}

TEST(PrimOpsTest, DivModByZeroAreRuntimeKind) {
  // The error kind matters: the resilient host runtime only retries
  // device-side faults, and the fuzzer's differential oracle treats two
  // identical runtime errors as agreement.
  auto Div = evalBinOp(BinOp::Div, PrimValue::makeI32(1),
                       PrimValue::makeI32(0));
  ASSERT_FALSE(static_cast<bool>(Div));
  EXPECT_EQ(Div.getError().Kind, ErrorKind::Runtime);
  auto Mod = evalBinOp(BinOp::Mod, PrimValue::makeI32(1),
                       PrimValue::makeI32(0));
  ASSERT_FALSE(static_cast<bool>(Mod));
  EXPECT_EQ(Mod.getError().Kind, ErrorKind::Runtime);
}

TEST(PrimOpsTest, NegativeIntegerExponentIsATypedRuntimeError) {
  auto R = evalBinOp(BinOp::Pow, PrimValue::makeI32(2),
                     PrimValue::makeI32(-1));
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_EQ(R.getError().Kind, ErrorKind::Runtime);
  EXPECT_NE(R.getError().Message.find("negative integer exponent"),
            std::string::npos);

  // Edge cases around zero stay total.
  auto Zero = evalBinOp(BinOp::Pow, PrimValue::makeI32(0),
                        PrimValue::makeI32(0));
  ASSERT_OK(Zero);
  EXPECT_EQ(Zero.take().getInt(), 1);
}

TEST(PrimOpsTest, INT32EdgesSurviveI32Division) {
  // INT32_MIN / -1 is representable at the i64 evaluation width and
  // truncates back to INT32_MIN: defined wraparound, not an error.
  auto R = evalBinOp(BinOp::Div, PrimValue::makeI32(INT32_MIN),
                     PrimValue::makeI32(-1));
  ASSERT_OK(R);
  EXPECT_EQ(R.take().getInt(), INT32_MIN);
}
