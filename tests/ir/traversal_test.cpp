//===- traversal_test.cpp - Tests for free vars, substitution, renaming ----===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "ir/Traversal.h"

#include "ir/Builder.h"
#include "ir/Printer.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;

namespace {

/// map (\x -> x + c) xs — c free, x bound.
MapExp *makeMapPlusC(NameSource &NS, const VName &Xs, const VName &C,
                     ExpPtr &Storage) {
  VName X = NS.fresh("x");
  BodyBuilder BB(NS);
  SubExp R = BB.binOp(BinOp::Add, SubExp::var(X), SubExp::var(C),
                      ScalarKind::I32);
  Lambda Fn({Param(X, Type::scalar(ScalarKind::I32))}, BB.finish({R}),
            {Type::scalar(ScalarKind::I32)});
  VName W = NS.fresh("n");
  Storage = std::make_unique<MapExp>(SubExp::var(W), std::move(Fn),
                                     std::vector<VName>{Xs});
  return expCast<MapExp>(Storage.get());
}

} // namespace

TEST(FreeVarsTest, LambdaParamsAreBound) {
  NameSource NS;
  VName Xs = NS.fresh("xs");
  VName C = NS.fresh("c");
  ExpPtr E;
  makeMapPlusC(NS, Xs, C, E);
  NameSet Free = freeVarsInExp(*E);
  EXPECT_TRUE(Free.count(Xs));
  EXPECT_TRUE(Free.count(C));
  // The lambda parameter must not leak.
  for (const VName &N : Free)
    EXPECT_NE(N.Base, "x");
}

TEST(FreeVarsTest, LoopBindsIndexAndMergeParams) {
  NameSource NS;
  VName Acc = NS.fresh("acc");
  VName I = NS.fresh("i");
  VName N = NS.fresh("n");
  BodyBuilder BB(NS);
  SubExp R = BB.binOp(BinOp::Add, SubExp::var(Acc), SubExp::var(I),
                      ScalarKind::I32);
  Body LoopBody = BB.finish({R});
  LoopExp L({Param(Acc, Type::scalar(ScalarKind::I32))}, {i32(0)}, I,
            SubExp::var(N), std::move(LoopBody));
  NameSet Free = freeVarsInExp(L);
  EXPECT_TRUE(Free.count(N));
  EXPECT_FALSE(Free.count(Acc));
  EXPECT_FALSE(Free.count(I));
}

TEST(FreeVarsTest, TypeDimensionsAreFree) {
  NameSource NS;
  VName M = NS.fresh("m");
  VName Xs = NS.fresh("xs");
  // let ys : [m]i32 = copy xs — the dim var m must count as free in a body
  // mentioning it in a pattern type.
  BodyBuilder BB(NS);
  VName Ys = BB.bind("ys", Type::array(ScalarKind::I32, {SubExp::var(M)}),
                     std::make_unique<CopyExp>(Xs));
  Body B = BB.finish({SubExp::var(Ys)});
  NameSet Free = freeVarsInBody(B);
  EXPECT_TRUE(Free.count(M));
  EXPECT_TRUE(Free.count(Xs));
  EXPECT_FALSE(Free.count(Ys));
}

TEST(SubstitutionTest, ReplacesOperandsAndDims) {
  NameSource NS;
  VName A = NS.fresh("a");
  VName B = NS.fresh("b");
  VName N = NS.fresh("n");
  VName M = NS.fresh("m");

  BinOpExp E(BinOp::Add, SubExp::var(A), SubExp::var(B));
  NameMap<SubExp> Subst;
  Subst[A] = i32(5);
  substituteInExp(Subst, E);
  EXPECT_TRUE(E.A.isConst());
  EXPECT_EQ(E.A.getConst(), PrimValue::makeI32(5));
  EXPECT_TRUE(E.B.isVar());

  Type T = Type::array(ScalarKind::F32, {SubExp::var(N), SubExp::var(M)});
  NameMap<SubExp> DimSubst;
  DimSubst[N] = i64c(4);
  Type T2 = substituteInType(DimSubst, T);
  EXPECT_TRUE(T2.shape()[0].isConst());
  EXPECT_TRUE(T2.shape()[1].isVar());
}

TEST(SubstitutionTest, VariablePositionRequiresVariable) {
  NameSource NS;
  VName A = NS.fresh("a");
  VName B = NS.fresh("b");
  IndexExp E(A, {i32(0)});
  NameMap<SubExp> Subst;
  Subst[A] = SubExp::var(B);
  substituteInExp(Subst, E);
  EXPECT_EQ(E.Arr, B);
}

TEST(RenamingTest, RenameBodyFreshensBindings) {
  NameSource NS;
  VName Xs = NS.fresh("xs");
  VName C = NS.fresh("c");
  ExpPtr E;
  makeMapPlusC(NS, Xs, C, E);

  BodyBuilder BB(NS);
  VName Out = BB.bind(
      "out", Type::array(ScalarKind::I32, {i64c(3)}), std::move(E));
  Body B = BB.finish({SubExp::var(Out)});

  Body R = renameBody(B, NS);
  // The bound name must change, free names must not.
  ASSERT_EQ(R.Stms.size(), 1u);
  EXPECT_NE(R.Stms[0].Pat[0].Name, Out);
  const auto *M = expCast<MapExp>(R.Stms[0].E.get());
  EXPECT_EQ(M->Arrays[0], Xs);
  NameSet Free = freeVarsInBody(R);
  EXPECT_TRUE(Free.count(Xs));
  EXPECT_TRUE(Free.count(C));
}

TEST(RenamingTest, RenamedBodyEvaluatesIdentically) {
  NameSource NS;
  VName Xs = NS.fresh("xs");
  VName N = NS.fresh("n");
  ExpPtr E;
  VName C = NS.fresh("c");
  MapExp *M = makeMapPlusC(NS, Xs, C, E);
  M->Width = SubExp::var(N);

  BodyBuilder BB(NS);
  VName Out =
      BB.bind("out", Type::array(ScalarKind::I32, {SubExp::var(N)}),
              std::move(E));
  Body B = BB.finish({SubExp::var(Out)});
  Body R = renameBody(B, NS);

  Program P1 = test::singleFun(
      {Param(N, Type::scalar(ScalarKind::I32)),
       Param(Xs, Type::array(ScalarKind::I32, {SubExp::var(N)})),
       Param(C, Type::scalar(ScalarKind::I32))},
      {Type::array(ScalarKind::I32, {SubExp::var(N)})}, std::move(B));
  Program P2 = test::singleFun(
      {Param(N, Type::scalar(ScalarKind::I32)),
       Param(Xs, Type::array(ScalarKind::I32, {SubExp::var(N)})),
       Param(C, Type::scalar(ScalarKind::I32))},
      {Type::array(ScalarKind::I32, {SubExp::var(N)})}, std::move(R));

  std::vector<Value> Args = {Value::scalar(PrimValue::makeI32(3)),
                             makeIntVectorValue(ScalarKind::I32, {1, 2, 3}),
                             Value::scalar(PrimValue::makeI32(10))};
  auto R1 = test::runOk(P1, Args);
  auto R2 = test::runOk(P2, Args);
  ASSERT_EQ(R1.size(), 1u);
  ASSERT_EQ(R2.size(), 1u);
  EXPECT_EQ(R1[0], R2[0]);
}

TEST(PermTest, ComposeAndInvert) {
  std::vector<int> P = {2, 0, 1};
  EXPECT_EQ(composePerms(P, inversePerm(P)), identityPerm(3));
  EXPECT_EQ(composePerms(inversePerm(P), P), identityPerm(3));
  EXPECT_TRUE(isIdentityPerm(identityPerm(4)));
  EXPECT_FALSE(isIdentityPerm(P));
}

TEST(CSEHelpersTest, StructuralEquality) {
  NameSource NS;
  VName A = NS.fresh("a");
  VName B = NS.fresh("b");
  BinOpExp E1(BinOp::Add, SubExp::var(A), SubExp::var(B));
  BinOpExp E2(BinOp::Add, SubExp::var(A), SubExp::var(B));
  BinOpExp E3(BinOp::Sub, SubExp::var(A), SubExp::var(B));
  EXPECT_TRUE(expsStructurallyEqual(E1, E2));
  EXPECT_EQ(hashExpShallow(E1), hashExpShallow(E2));
  EXPECT_FALSE(expsStructurallyEqual(E1, E3));

  // Expressions with bodies are never CSE-able.
  ExpPtr M;
  makeMapPlusC(NS, A, B, M);
  EXPECT_FALSE(expIsCSEable(*M));
}

TEST(PrinterTest, ProducesReadableOutput) {
  NameSource NS;
  VName Xs = NS.fresh("xs");
  VName C = NS.fresh("c");
  ExpPtr E;
  makeMapPlusC(NS, Xs, C, E);
  std::string S = printExp(*E);
  EXPECT_NE(S.find("map"), std::string::npos);
  EXPECT_NE(S.find("xs_0"), std::string::npos);
}
