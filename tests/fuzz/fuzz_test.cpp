//===- fuzz_test.cpp - Tests for the seeded program fuzzer -----------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer itself is test infrastructure, so these tests pin the
/// properties the regress corpus and CI smoke depend on: seeded generation
/// is bit-stable, every rendered program is well-typed and agrees across
/// both execution paths, plan subsets stay well-typed (the shrinker's
/// soundness condition), and the .fut serialisation round-trips.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::fuzz;

TEST(FuzzTest, GenerationIsDeterministic) {
  for (uint64_t Seed : {1u, 7u, 180u, 499u}) {
    FuzzCase A = generate(Seed);
    FuzzCase B = generate(Seed);
    EXPECT_EQ(A.Source, B.Source) << "seed " << Seed;
    ASSERT_EQ(A.Args.size(), B.Args.size());
    for (size_t I = 0; I < A.Args.size(); ++I)
      EXPECT_TRUE(A.Args[I] == B.Args[I]) << "seed " << Seed << " arg " << I;
  }
}

TEST(FuzzTest, FixedSeedsAgreeAcrossPaths) {
  // A small always-on smoke; CI additionally runs futharkcc-fuzz over a
  // wider fixed range.
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Outcome O = runDifferential(generate(Seed));
    EXPECT_TRUE(O.Ok) << "seed " << Seed << ":\n" << O.Message;
  }
}

TEST(FuzzTest, CrossModelSeedsAgree) {
  // The cost model prices cycles and must not change what runs: both
  // models must produce bit-identical outputs and exactly equal
  // model-independent counters.  CI runs a 150-seed leg of this oracle.
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    Outcome O = runCrossModel(generate(Seed));
    EXPECT_TRUE(O.Ok) << "seed " << Seed << ":\n" << O.Message;
  }
}

TEST(FuzzTest, PlanSubsetsStayWellTyped) {
  // The shrinker removes arbitrary steps; any subset must still compile
  // and agree.  Exercise every leave-one-out subset of one plan.
  Plan P = samplePlan(180);
  for (size_t Drop = 0; Drop < P.Steps.size(); ++Drop) {
    Plan Q = P;
    Q.Steps.erase(Q.Steps.begin() + static_cast<long>(Drop));
    Outcome O = runDifferential(renderPlan(Q, 180));
    EXPECT_TRUE(O.Ok) << "dropped step " << Drop << ":\n" << O.Message;
  }
}

TEST(FuzzTest, RegressionFileRoundTrips) {
  FuzzCase C = generate(42);
  std::string Text = toRegressionFile(C, {"round-trip test"});
  FuzzCase Back;
  ASSERT_TRUE(loadRegressionFile(Text, Back));
  EXPECT_EQ(Back.Source, C.Source);
  ASSERT_EQ(Back.Args.size(), C.Args.size());
  for (size_t I = 0; I < C.Args.size(); ++I)
    EXPECT_TRUE(Back.Args[I] == C.Args[I]) << "arg " << I;
}

TEST(FuzzTest, ArgsLineRejectsMalformedInput) {
  std::vector<Value> Out;
  EXPECT_FALSE(parseArgsLine("args: 1", Out));
  EXPECT_FALSE(parseArgsLine("-- args: [1,2", Out));
  EXPECT_TRUE(parseArgsLine("-- args: 8 [1,-2,3]", Out));
  ASSERT_EQ(Out.size(), 2u);
}
