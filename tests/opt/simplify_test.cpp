//===- simplify_test.cpp - Tests for the simplification engine -------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "opt/Simplify.h"

#include "check/Check.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "ir/Traversal.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

Program compile(const std::string &Src, NameSource &NS) {
  auto P = frontend(Src, NS);
  EXPECT_TRUE(static_cast<bool>(P)) << P.getError().str();
  return P ? P.take() : Program{};
}

/// Counts statements of a given kind in a function body (recursively).
int countExps(const Body &B, ExpKind K) {
  int N = 0;
  for (const Stm &S : B.Stms) {
    if (S.E->kind() == K)
      ++N;
    forEachChildBody(*S.E,
                     [&](const Body &Inner) { N += countExps(Inner, K); });
  }
  return N;
}

int countStms(const Body &B) {
  int N = static_cast<int>(B.Stms.size());
  for (const Stm &S : B.Stms)
    forEachChildBody(*S.E, [&](const Body &Inner) { N += countStms(Inner); });
  return N;
}

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}

/// Checks that simplification preserves semantics on the given arguments.
void expectSamePostSimplify(const std::string &Src,
                            const std::vector<Value> &Args) {
  NameSource NS;
  Program P = compile(Src, NS);
  Interpreter I1(P);
  auto R1 = I1.run(Args);
  ASSERT_OK(R1);

  inlineFunctions(P, NS);
  simplifyProgram(P, NS);
  Interpreter I2(P);
  auto R2 = I2.run(Args);
  ASSERT_OK(R2);

  ASSERT_EQ(R1->size(), R2->size());
  for (size_t I = 0; I < R1->size(); ++I)
    EXPECT_TRUE((*R1)[I].approxEqual((*R2)[I]))
        << "mismatch at result " << I << "\n"
        << printProgram(P);
}

} // namespace

TEST(SimplifyTest, ConstantFolding) {
  NameSource NS;
  Program P = compile("fun main (x: i32): i32 = 2 + 3 * 4", NS);
  simplifyProgram(P, NS);
  // Everything folds away; the body should have no statements left.
  EXPECT_EQ(countStms(P.Funs[0].FBody), 0);
  ASSERT_EQ(P.Funs[0].FBody.Result.size(), 1u);
  EXPECT_EQ(P.Funs[0].FBody.Result[0].getConst(), PrimValue::makeI32(14));
}

TEST(SimplifyTest, AlgebraicIdentities) {
  NameSource NS;
  Program P = compile("fun main (x: i32): i32 = (x + 0) * 1 - 0", NS);
  simplifyProgram(P, NS);
  EXPECT_EQ(countStms(P.Funs[0].FBody), 0);
  EXPECT_TRUE(P.Funs[0].FBody.Result[0].isVar());
}

TEST(SimplifyTest, DivisionByZeroIsNotFolded) {
  NameSource NS;
  Program P = compile("fun main (x: i32): i32 = x + 1 / 0", NS);
  simplifyProgram(P, NS);
  // The faulting division must survive to runtime.
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::BinOpE), 2);
  Interpreter I(P);
  EXPECT_ERR_CONTAINS(I.run({iv(1)}), "division by zero");
}

TEST(SimplifyTest, DeadCodeRemoval) {
  NameSource NS;
  Program P = compile("fun main (x: i32): i32 =\n"
                      "  let dead = iota 100\n"
                      "  let alive = x + 1\n"
                      "  in alive",
                      NS);
  simplifyProgram(P, NS);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Iota), 0);
}

TEST(SimplifyTest, CSEMergesIdenticalExpressions) {
  NameSource NS;
  Program P = compile("fun main (x: i32) (ys: [n]i32): i32 =\n"
                      "  let a = ys[x]\n"
                      "  let b = ys[x]\n"
                      "  in a + b",
                      NS);
  simplifyProgram(P, NS);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Index), 1);
}

TEST(SimplifyTest, IotaIndexFolds) {
  NameSource NS;
  Program P = compile("fun main (i: i32): i32 =\n"
                      "  let r = iota 100\n"
                      "  in r[i] + 1",
                      NS);
  simplifyProgram(P, NS);
  // (iota 100)[i] == i, and then the iota is dead.
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Iota), 0);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Index), 0);
}

TEST(SimplifyTest, ReplicateIndexFolds) {
  NameSource NS;
  Program P = compile("fun main (i: i32) (x: i32): i32 =\n"
                      "  let r = replicate 10 x\n"
                      "  in r[i]",
                      NS);
  simplifyProgram(P, NS);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Replicate), 0);
}

TEST(SimplifyTest, TransposeTransposeCancels) {
  NameSource NS;
  Program P = compile("fun main (a: [n][m]i32): [n][m]i32 =\n"
                      "  transpose (transpose a)",
                      NS);
  simplifyProgram(P, NS);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Rearrange), 0);
}

TEST(SimplifyTest, ConstantIfSplices) {
  NameSource NS;
  Program P = compile("fun main (x: i32): i32 =\n"
                      "  if true then x + 1 else x - 1",
                      NS);
  simplifyProgram(P, NS);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::If), 0);
  Interpreter I(P);
  auto R = I.run({iv(5)});
  ASSERT_OK(R);
  EXPECT_EQ((*R)[0], iv(6));
}

TEST(SimplifyTest, InvariantHoistedOutOfLoop) {
  NameSource NS;
  Program P = compile("fun main (x: i32) (n: i32): i32 =\n"
                      "  loop (acc = 0) for i < n do\n"
                      "    let inv = x * 2\n"
                      "    in acc + inv",
                      NS);
  simplifyProgram(P, NS);
  // The multiplication must now be outside the loop.
  const Body &B = P.Funs[0].FBody;
  bool FoundLoop = false;
  for (const Stm &S : B.Stms) {
    if (const auto *L = expDynCast<LoopExp>(S.E.get())) {
      FoundLoop = true;
      EXPECT_EQ(countExps(L->LoopBody, ExpKind::BinOpE), 1)
          << printProgram(P); // only acc + inv remains
    }
  }
  EXPECT_TRUE(FoundLoop);
}

TEST(SimplifyTest, InvariantHoistedOutOfMapLambda) {
  NameSource NS;
  Program P = compile("fun main (x: i32) (xs: [n]i32): [n]i32 =\n"
                      "  map (\\(v: i32): i32 -> v + (x * x)) xs",
                      NS);
  simplifyProgram(P, NS);
  const Body &B = P.Funs[0].FBody;
  bool FoundMap = false;
  for (const Stm &S : B.Stms)
    if (const auto *M = expDynCast<MapExp>(S.E.get())) {
      FoundMap = true;
      EXPECT_EQ(countExps(M->Fn.B, ExpKind::BinOpE), 1) << printProgram(P);
    }
  EXPECT_TRUE(FoundMap);
}

TEST(SimplifyTest, InliningRemovesCalls) {
  NameSource NS;
  Program P = compile("fun helper (x: i32): i32 = x * 3\n"
                      "fun main (y: i32): i32 = helper (helper y)",
                      NS);
  inlineFunctions(P, NS);
  simplifyProgram(P, NS);
  removeDeadFunctions(P);
  EXPECT_EQ(P.Funs.size(), 1u);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Apply), 0);
  Interpreter I(P);
  auto R = I.run({iv(2)});
  ASSERT_OK(R);
  EXPECT_EQ((*R)[0], iv(18));
}

TEST(SimplifyTest, CopyOfFreshArrayElided) {
  NameSource NS;
  Program P = compile("fun main (n: i32): [n]i32 =\n"
                      "  let a = iota n\n"
                      "  in copy a",
                      NS);
  simplifyProgram(P, NS);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Copy), 0);
}

//===----------------------------------------------------------------------===//
// Semantics preservation (property tests): simplify(P) ≡ P on the
// reference interpreter.
//===----------------------------------------------------------------------===//

struct SimplifyCase {
  const char *Name;
  const char *Src;
  int NumInts; // arguments: scalar n, then a vector of size n
};

class SimplifyPreservation : public ::testing::TestWithParam<SimplifyCase> {};

TEST_P(SimplifyPreservation, SameResults) {
  const SimplifyCase &C = GetParam();
  std::vector<int64_t> Data = randomInts(C.NumInts, 42, 1, 50);
  expectSamePostSimplify(
      C.Src, {iv(static_cast<int32_t>(C.NumInts)), ivec(Data)});
}

INSTANTIATE_TEST_SUITE_P(
    Programs, SimplifyPreservation,
    ::testing::Values(
        SimplifyCase{"mapreduce",
                     "fun main (n: i32) (xs: [n]i32): i32 =\n"
                     "  reduce (+) 0 (map (\\(x: i32): i32 -> x * 2 + 0) xs)",
                     16},
        SimplifyCase{"loopupdate",
                     "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                     "  loop (a = replicate n 0) for i < n do\n"
                     "    a with [i] <- xs[i] * 1 + xs[i]",
                     9},
        SimplifyCase{"nested",
                     "fun main (n: i32) (xs: [n]i32): i32 =\n"
                     "  let m = map (\\(x: i32): i32 ->\n"
                     "    let y = x * x\n"
                     "    let z = y + x\n"
                     "    in z - y) xs\n"
                     "  in reduce (+) 0 m",
                     13},
        SimplifyCase{"scanstream",
                     "fun main (n: i32) (xs: [n]i32): i32 =\n"
                     "  let s = scan (+) 0 xs\n"
                     "  let r = reduce max 0 s\n"
                     "  in r + s[n - 1]",
                     7}),
    [](const ::testing::TestParamInfo<SimplifyCase> &Info) {
      return Info.param.Name;
    });

TEST(SimplifyTest, IntMinDividedByMinusOneIsNotFolded) {
  // INT64_MIN / -1 overflows two's-complement division; constant folding
  // must not evaluate it (that was UB in ir/Prim.cpp's floorDiv) but leave
  // it to fault at runtime exactly like the interpreter does.
  NameSource NS;
  BodyBuilder BB(NS);
  Type I64 = Type::scalar(ScalarKind::I64);
  VName D = BB.bind(
      "d", I64,
      std::make_unique<BinOpExp>(
          BinOp::Div, SubExp::constant(PrimValue::makeI64(INT64_MIN)),
          SubExp::constant(PrimValue::makeI64(-1))));
  Program P = singleFun({}, {I64}, BB.finish({SubExp::var(D)}));
  simplifyProgram(P, NS);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::BinOpE), 1);
  Interpreter I(P);
  EXPECT_ERR_CONTAINS(I.run({}), "division overflow");
}

TEST(SimplifyTest, NegativeExponentIsNotFolded) {
  NameSource NS;
  Program P = compile("fun main (x: i32): i32 = x + 2 ** -3", NS);
  simplifyProgram(P, NS);
  // The faulting power must survive to runtime.
  Interpreter I(P);
  EXPECT_ERR_CONTAINS(I.run({iv(1)}), "negative integer exponent");
}

TEST(SimplifyTest, CSEKeepsExistentialDimsBound) {
  // Regression for a fuzzer-found miscompile (seeds 180/190/195/479/489,
  // tests/regress/cases/concat-length-cse.fut): CSE dropped the second
  // concat binding but its existential length variable stayed referenced
  // by the second reduce's width, leaving a dangling name after simplify.
  NameSource NS;
  Program P = compile("fun main (n: i32) (a0: [n]i32): i32 =\n"
                      "  let s0 = reduce (+) (0 + 3) (concat a0 a0)\n"
                      "  let s1 = reduce (+) (0 + 1) (concat a0 a0)\n"
                      "  in s0 + s1",
                      NS);
  simplifyProgram(P, NS);
  auto Err = checkProgram(P);
  EXPECT_FALSE(static_cast<bool>(Err)) << Err.getError().str();
  // The two concats merged into one; nothing dangles.
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Concat), 1);
  Interpreter I(P);
  auto R = I.run({iv(3), ivec({1, 2, 3})});
  ASSERT_OK(R);
  EXPECT_EQ(R.take()[0].getScalar().getInt(), 28);
}
