//===- trace_counters_test.cpp - Pass counters are observable facts ----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trace layer turns "the fusion engine did its job" into a checkable
/// fact: compiling map f ∘ map g must record exactly one vertical fusion
/// and one extracted kernel, and the fused pipeline must move strictly
/// fewer global-memory transactions than the unfused ablation of the same
/// program (the intermediate array never reaches global memory).
///
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "driver/Compiler.h"
#include "trace/Trace.h"

#include <gtest/gtest.h>

using namespace fut;

namespace {

const char *kMapMap =
    "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
    "  let ys = map (\\(x: i32): i32 -> x * 3 + 1) xs\n"
    "  in map (\\(y: i32): i32 -> y % 7 - 2) ys\n";

std::vector<Value> mapMapArgs() {
  std::vector<PrimValue> Elems;
  for (int I = 0; I < 256; ++I)
    Elems.push_back(PrimValue::makeI32(I * 5 - 300));
  std::vector<Value> Args;
  Args.push_back(Value::scalar(PrimValue::makeI32(256)));
  Args.push_back(Value::array(ScalarKind::I32, {256}, std::move(Elems)));
  return Args;
}

/// Compiles and runs kMapMap under a fresh trace session; returns the
/// device.global_tx counter observed for the run.
int64_t runAndCountTx(bool Fuse, int64_t *FusedKernels = nullptr,
                      int64_t *VerticalFusions = nullptr) {
  auto &TS = trace::TraceSession::global();
  TS.clear();
  TS.setEnabled(true);

  CompilerOptions Opts;
  Opts.EnableFusion = Fuse;
  NameSource Names;
  auto C = compileSource(kMapMap, Names, Opts);
  EXPECT_TRUE(static_cast<bool>(C)) << C.getError().str();

  auto R = runOnDevice(C->P, mapMapArgs(), DeviceRunOptions());
  EXPECT_TRUE(static_cast<bool>(R)) << R.getError().str();

  if (FusedKernels)
    *FusedKernels = TS.counterValue("flatten.kernels");
  if (VerticalFusions)
    *VerticalFusions = TS.counterValue("fusion.vertical");
  int64_t Tx = TS.counterValue("device.global_tx");
  TS.setEnabled(false);
  TS.clear();
  return Tx;
}

TEST(TraceCounters, MapMapFusesToOneKernel) {
  int64_t Kernels = 0, Vertical = 0;
  runAndCountTx(/*Fuse=*/true, &Kernels, &Vertical);
  EXPECT_EQ(Vertical, 1);
  EXPECT_EQ(Kernels, 1);
}

TEST(TraceCounters, FusedRunMovesFewerGlobalTransactions) {
  int64_t FusedTx = runAndCountTx(/*Fuse=*/true);
  int64_t UnfusedKernels = 0, UnfusedVertical = 0;
  int64_t UnfusedTx =
      runAndCountTx(/*Fuse=*/false, &UnfusedKernels, &UnfusedVertical);
  EXPECT_EQ(UnfusedVertical, 0);
  EXPECT_EQ(UnfusedKernels, 2);
  EXPECT_LT(FusedTx, UnfusedTx);
  EXPECT_GT(FusedTx, 0);
}

TEST(TraceCounters, SimplifyRewritesAreCounted) {
  auto &TS = trace::TraceSession::global();
  TS.clear();
  TS.setEnabled(true);
  // Constant folding plus dead code: the rewrite counter must move.
  const char *Src = "fun main (x: i32): i32 =\n"
                    "  let a = 2 + 3\n"
                    "  let dead = x * 100\n"
                    "  in a * x\n";
  NameSource Names;
  auto C = compileSource(Src, Names, CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(C)) << C.getError().str();
  EXPECT_GT(TS.counterValue("simplify.rewrites"), 0);
  TS.setEnabled(false);
  TS.clear();
}

TEST(TraceCounters, DisabledSessionRecordsNothing) {
  auto &TS = trace::TraceSession::global();
  TS.clear();
  ASSERT_FALSE(TS.enabled());
  NameSource Names;
  auto C = compileSource(kMapMap, Names, CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(C)) << C.getError().str();
  EXPECT_TRUE(TS.events().empty());
  EXPECT_TRUE(TS.counters().empty());
}

TEST(TraceCounters, PassSpansCarryRewriteArgs) {
  auto &TS = trace::TraceSession::global();
  TS.clear();
  TS.setEnabled(true);
  NameSource Names;
  auto C = compileSource(kMapMap, Names, CompilerOptions());
  ASSERT_TRUE(static_cast<bool>(C)) << C.getError().str();

  bool SawFusion = false, SawFlatten = false;
  for (const trace::TraceEvent &E : TS.events()) {
    if (E.Name == "pass:fusion") {
      SawFusion = true;
      const trace::TraceArg *A = E.findArg("vertical");
      ASSERT_NE(A, nullptr);
      EXPECT_EQ(A->Num, 1);
    }
    if (E.Name == "pass:flatten") {
      SawFlatten = true;
      const trace::TraceArg *A = E.findArg("kernels");
      ASSERT_NE(A, nullptr);
      EXPECT_EQ(A->Num, 1);
    }
  }
  EXPECT_TRUE(SawFusion);
  EXPECT_TRUE(SawFlatten);
  TS.setEnabled(false);
  TS.clear();
}

} // namespace
