//===- stream_rules_test.cpp - Tests for the F1..F5 stream rules -----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Property tests: each Fig 9 conversion rule preserves semantics for every
// chunking of the stream input.
//
//===----------------------------------------------------------------------===//

#include "fusion/StreamRules.h"

#include "interp/Interp.h"
#include "ir/Printer.h"
#include "ir/Traversal.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}

/// Compiles a program, applies a rule to its sole SOAC of the given kind,
/// and checks that results agree for several chunk sizes.
template <typename SOAC>
void checkRule(const char *Src,
               ExpPtr (*Rule)(const SOAC &, NameSource &),
               const std::vector<Value> &Args) {
  NameSource NS;
  auto POrErr = frontend(Src, NS);
  ASSERT_OK(POrErr);
  Program P = POrErr.take();

  Interpreter Ref(P);
  auto Want = Ref.run(Args);
  ASSERT_OK(Want);

  // Rewrite the first matching SOAC.  Conversions to stream_seq add
  // leading accumulator results, so the binding pattern gains fresh names
  // for them.
  bool Rewritten = false;
  std::function<void(Body &)> Visit = [&](Body &B) {
    for (Stm &S : B.Stms) {
      if (!Rewritten)
        if (auto *X = expDynCast<SOAC>(S.E.get())) {
          S.E = Rule(*X, NS);
          Rewritten = true;
          const auto *St = expCast<StreamExp>(S.E.get());
          size_t NumResults = St->FoldFn.RetTypes.size();
          while (S.Pat.size() < NumResults) {
            size_t I = NumResults - S.Pat.size() - 1;
            S.Pat.insert(S.Pat.begin(),
                         Param(NS.fresh("extra_acc"),
                               St->FoldFn.RetTypes[I]));
          }
          return;
        }
      forEachChildBody(*S.E, Visit);
    }
  };
  Visit(P.Funs[0].FBody);
  ASSERT_TRUE(Rewritten) << "no SOAC found to rewrite";

  for (int64_t Chunk : {0, 1, 2, 3, 5, 100}) {
    InterpOptions Opts;
    Opts.StreamChunk = Chunk;
    Interpreter I(P, Opts);
    auto Got = I.run(Args);
    ASSERT_OK(Got);
    ASSERT_EQ(Got->size(), Want->size());
    for (size_t J = 0; J < Want->size(); ++J)
      EXPECT_TRUE((*Got)[J].approxEqual((*Want)[J]))
          << "chunk " << Chunk << ", result " << J << ": "
          << (*Got)[J].str() << " vs " << (*Want)[J].str() << "\n"
          << printProgram(P);
  }
}

const char *MapSrc = "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                     "  map (\\(x: i32): i32 -> x * 2 + 1) xs";
const char *ReduceSrc = "fun main (n: i32) (xs: [n]i32): i32 =\n"
                        "  reduce (+) 0 xs";
const char *ReduceMaxSrc = "fun main (n: i32) (xs: [n]i32): i32 =\n"
                           "  reduce max 0 xs";
const char *ScanSrc = "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                      "  scan (+) 0 xs";

std::vector<Value> args() {
  return {iv(11), ivec({3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5})};
}

} // namespace

TEST(StreamRulesTest, F1MapToStreamMap) {
  checkRule<MapExp>(MapSrc, ruleF1MapToStreamMap, args());
}

TEST(StreamRulesTest, F2MapToStreamSeq) {
  checkRule<MapExp>(MapSrc, ruleF2MapToStreamSeq, args());
}

TEST(StreamRulesTest, F3ReduceToStreamRed) {
  checkRule<ReduceExp>(ReduceSrc, ruleF3ReduceToStreamRed, args());
}

TEST(StreamRulesTest, F3ReduceMaxToStreamRed) {
  checkRule<ReduceExp>(ReduceMaxSrc, ruleF3ReduceToStreamRed, args());
}

TEST(StreamRulesTest, F4ReduceToStreamSeq) {
  checkRule<ReduceExp>(ReduceSrc, ruleF4ReduceToStreamSeq, args());
}

TEST(StreamRulesTest, F5ScanToStreamSeq) {
  checkRule<ScanExp>(ScanSrc, ruleF5ScanToStreamSeq, args());
}

TEST(StreamRulesTest, F5ScanMaxToStreamSeq) {
  checkRule<ScanExp>("fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                     "  scan max 0 xs",
                     ruleF5ScanToStreamSeq, args());
}

TEST(StreamRulesTest, F5ScanEmptyInput) {
  checkRule<ScanExp>(ScanSrc, ruleF5ScanToStreamSeq, {iv(0), ivec({})});
}
