//===- fusion_test.cpp - Tests for the fusion engine -----------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "fusion/Fusion.h"

#include "interp/Interp.h"
#include "ir/Printer.h"
#include "ir/Traversal.h"
#include "opt/Simplify.h"
#include "parser/Desugar.h"
#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace fut;
using namespace fut::test;

namespace {

Program compile(const std::string &Src, NameSource &NS) {
  auto P = frontend(Src, NS);
  EXPECT_TRUE(static_cast<bool>(P)) << P.getError().str();
  Program Out = P ? P.take() : Program{};
  inlineFunctions(Out, NS);
  simplifyProgram(Out, NS);
  return Out;
}

int countExps(const Body &B, ExpKind K) {
  int N = 0;
  for (const Stm &S : B.Stms) {
    if (S.E->kind() == K)
      ++N;
    forEachChildBody(*S.E,
                     [&](const Body &Inner) { N += countExps(Inner, K); });
  }
  return N;
}

/// SOACs at the top level of a body only (not nested).
int topLevelSOACs(const Body &B) {
  int N = 0;
  for (const Stm &S : B.Stms)
    if (S.E->isSOAC())
      ++N;
  return N;
}

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }
Value ivec(const std::vector<int64_t> &Xs) {
  return makeIntVectorValue(ScalarKind::I32, Xs);
}

void expectSemanticsPreserved(const Program &Before, const Program &After,
                              const std::vector<Value> &Args) {
  Interpreter I1(Before), I2(After);
  auto R1 = I1.run(Args);
  auto R2 = I2.run(Args);
  ASSERT_OK(R1);
  ASSERT_OK(R2);
  ASSERT_EQ(R1->size(), R2->size());
  for (size_t I = 0; I < R1->size(); ++I)
    EXPECT_TRUE((*R1)[I].approxEqual((*R2)[I]))
        << "result " << I << " differs:\n"
        << (*R1)[I].str() << "\nvs\n"
        << (*R2)[I].str() << "\n"
        << printProgram(After);
}

} // namespace

TEST(FusionTest, MapMapVerticalFusion) {
  NameSource NS;
  Program P = compile("fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                      "  let a = map (+1) xs\n"
                      "  in map (*2) a",
                      NS);
  Program Before;
  Before.Funs.push_back(
      {P.Funs[0].Name, P.Funs[0].Params, P.Funs[0].RetTypes,
       cloneBody(P.Funs[0].FBody)});
  FusionStats S = fuseProgram(P, NS);
  EXPECT_EQ(S.Vertical, 1);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Map), 1);
  expectSemanticsPreserved(Before, P, {iv(4), ivec({1, 2, 3, 4})});
}

TEST(FusionTest, MapMapChainFusesCompletely) {
  NameSource NS;
  Program P = compile("fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
                      "  let a = map (+1) xs\n"
                      "  let b = map (*2) a\n"
                      "  let c = map (+3) b\n"
                      "  in c",
                      NS);
  FusionStats S = fuseProgram(P, NS);
  EXPECT_EQ(S.Vertical, 2);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Map), 1);
}

TEST(FusionTest, MapReduceBecomesStreamRed) {
  NameSource NS;
  Program P = compile("fun main (n: i32) (xs: [n]i32): i32 =\n"
                      "  reduce (+) 0 (map (\\(x: i32): i32 -> x * x) xs)",
                      NS);
  Program Before;
  Before.Funs.push_back(
      {P.Funs[0].Name, P.Funs[0].Params, P.Funs[0].RetTypes,
       cloneBody(P.Funs[0].FBody)});
  FusionStats S = fuseProgram(P, NS);
  EXPECT_EQ(S.Redomap, 1);
  EXPECT_EQ(topLevelSOACs(P.Funs[0].FBody), 1);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Stream), 1);
  for (int64_t Chunk : {0, 1, 3, 7}) {
    InterpOptions Opts;
    Opts.StreamChunk = Chunk;
    Interpreter I(P, Opts);
    auto R = I.run({iv(5), ivec({1, 2, 3, 4, 5})});
    ASSERT_OK(R);
    EXPECT_EQ((*R)[0], iv(55)) << "chunk " << Chunk;
  }
  expectSemanticsPreserved(Before, P, {iv(5), ivec({1, 2, 3, 4, 5})});
}

TEST(FusionTest, MultiUseBlocksVerticalFusion) {
  NameSource NS;
  Program P = compile("fun main (n: i32) (xs: [n]i32): (i32, [n]i32) =\n"
                      "  let a = map (+1) xs\n"
                      "  let s = reduce (+) 0 a\n"
                      "  in (s, a)",
                      NS);
  FusionStats S = fuseProgram(P, NS);
  // a is used both by the reduce and as a result: no fusion.
  EXPECT_EQ(S.total(), 0);
}

TEST(FusionTest, ExplicitIndexingBlocksFusion) {
  // Section 4.2: "If an array is indexed explicitly in a target SOAC, then
  // its producer SOAC will not be fused with the target."
  NameSource NS;
  Program P = compile(
      "fun main (n: i32) (xs: [n]i32): [n]i32 =\n"
      "  let a = map (+1) xs\n"
      "  in map (\\(i: i32): i32 -> a[i]) (iota n)",
      NS);
  FusionStats S = fuseProgram(P, NS);
  EXPECT_EQ(S.Vertical, 0);
}

TEST(FusionTest, ConsumptionPointBlocksFusion) {
  // Section 4.2: do not move a SOAC past a consumption point of one of its
  // inputs: let x = map f a; let a' = a with [0] <- 0; map g x.
  NameSource NS;
  Program P = compile("fun main (n: i32): ([n]i32, [n]i32) =\n"
                      "  let a = iota n\n"
                      "  let x = map (+1) a\n"
                      "  let a2 = a with [0] <- 0\n"
                      "  let y = map (*2) x\n"
                      "  in (a2, y)",
                      NS);
  Program Before;
  Before.Funs.push_back(
      {P.Funs[0].Name, P.Funs[0].Params, P.Funs[0].RetTypes,
       cloneBody(P.Funs[0].FBody)});
  FusionStats S = fuseProgram(P, NS);
  EXPECT_EQ(S.Vertical, 0) << printProgram(P);
  expectSemanticsPreserved(Before, P, {iv(4)});
}

TEST(FusionTest, HorizontalFusionOfIndependentMaps) {
  NameSource NS;
  Program P = compile("fun main (n: i32) (xs: [n]i32): ([n]i32, [n]i32) =\n"
                      "  let a = map (+1) xs\n"
                      "  let b = map (*2) xs\n"
                      "  in (a, b)",
                      NS);
  Program Before;
  Before.Funs.push_back(
      {P.Funs[0].Name, P.Funs[0].Params, P.Funs[0].RetTypes,
       cloneBody(P.Funs[0].FBody)});
  FusionStats S = fuseProgram(P, NS);
  EXPECT_EQ(S.Horizontal, 1);
  EXPECT_EQ(countExps(P.Funs[0].FBody, ExpKind::Map), 1);
  expectSemanticsPreserved(Before, P, {iv(3), ivec({1, 2, 3})});
}

TEST(FusionTest, NestedFusionInsideMapLambda) {
  // Fusion happens at all nesting levels (T2 reduction bottom-up).
  NameSource NS;
  Program P = compile(
      "fun main (a: [n][m]i32): [n]i32 =\n"
      "  map (\\(row: [m]i32): i32 ->\n"
      "         reduce (+) 0 (map (*2) row))\n"
      "      a",
      NS);
  FusionStats S = fuseProgram(P, NS);
  EXPECT_EQ(S.Redomap, 1);
}

TEST(FusionTest, StreamMapReduceFusesLikeFig10) {
  // Fig 10a -> 10b: the outer reduce fuses into the stream_map, producing
  // a stream_red.
  NameSource NS;
  const char *Src =
      "fun main (n: i32) (xs: [n]i32): i32 =\n"
      "  let ys = stream_map (\\(c: [csz]i32): [csz]i32 ->\n"
      "                         let t = map (*3) c\n"
      "                         in scan (+) 0 t)\n"
      "                      xs\n"
      "  in reduce (+) 0 ys";
  Program P = compile(Src, NS);
  Program Before;
  Before.Funs.push_back(
      {P.Funs[0].Name, P.Funs[0].Params, P.Funs[0].RetTypes,
       cloneBody(P.Funs[0].FBody)});
  FusionStats S = fuseProgram(P, NS);
  EXPECT_EQ(S.StreamFusions, 1) << printProgram(P);
  EXPECT_EQ(topLevelSOACs(P.Funs[0].FBody), 1);
  const Body &B = P.Funs[0].FBody;
  bool FoundRed = false;
  for (const Stm &St : B.Stms)
    if (const auto *SE = expDynCast<StreamExp>(St.E.get()))
      FoundRed = SE->Form == StreamExp::FormKind::Red;
  EXPECT_TRUE(FoundRed);
  // NOTE: chunking must give identical results only chunk-wise for the
  // whole-stream semantics; scan inside a chunk depends on the chunk
  // boundaries, so here we compare with the same chunk configuration.
  Interpreter I1(Before), I2(P);
  auto R1 = I1.run({iv(6), ivec({1, 2, 3, 4, 5, 6})});
  auto R2 = I2.run({iv(6), ivec({1, 2, 3, 4, 5, 6})});
  ASSERT_OK(R1);
  ASSERT_OK(R2);
  EXPECT_EQ((*R1)[0], (*R2)[0]);
}

TEST(FusionTest, KMeansFig4bDoesNotFuseVectorisedReduce) {
  NameSource NS;
  const char *Src =
      "fun main (k: i32) (n: i32) (membership: [n]i32): [k]i32 =\n"
      "  let increments =\n"
      "    map (\\(cluster: i32): [k]i32 ->\n"
      "           let incr = replicate k 0\n"
      "           let incr[cluster] = 1\n"
      "           in incr)\n"
      "        membership\n"
      "  in reduce (map (+)) (replicate k 0) increments";
  Program P = compile(Src, NS);
  Program Before;
  Before.Funs.push_back(
      {P.Funs[0].Name, P.Funs[0].Params, P.Funs[0].RetTypes,
       cloneBody(P.Funs[0].FBody)});
  FusionStats S = fuseProgram(P, NS);
  // A vectorised-operator reduce is left for rule G5 (segmented
  // reduction over the materialised input) rather than fused — the
  // reason Fig 4b is x8.3 slower than Fig 4c without in-place updates.
  EXPECT_EQ(S.Redomap, 0);
  expectSemanticsPreserved(Before, P,
                           {iv(3), iv(6), ivec({0, 1, 0, 2, 1, 0})});
}
