-- Two identical `concat` bindings: CSE unified them, dropping the second
-- binding, but later code (the second reduce's width) still referenced the
-- dropped binding's existential length variable, which has no definition
-- anywhere else.  Simplify then emitted IR with a dangling `concat_n` name
-- ("internal error after simplify: use of unbound variable concat_n_NN").
-- Fixed in src/opt/Simplify.cpp: on a CSE hit the substitution now also
-- remaps the dropped pattern's dim variables onto the surviving pattern's
-- dims, so existential dims keep exactly one introduction site.
-- Found by futharkcc-fuzz (seeds 180, 190, 195, 479, 489 of 1..500),
-- shrunk by hand to the two-concat core.
-- args: 4 [1,2,3,4]
fun main (n: i32) (a0: [n]i32): ([n]i32, i32) =
  let s0 = reduce (+) (0 + 3) (concat a0 a0)
  let s1 = reduce (+) (0 + 1) (concat a0 a0)
  let check = reduce (+) 0 a0
  in (a0, check + s0 + s1)
