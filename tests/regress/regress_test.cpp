//===- regress_test.cpp - Fuzzer-found miscompile regression corpus --------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every miscompile the fuzzer has ever found lives on as a minimized .fut
/// case under cases/ (one file per bug, with the fix referenced in the
/// header comment).  Each case is replayed through the same differential
/// oracle the fuzzer uses — full pipeline + simulated device vs. the
/// reference interpreter — so a regression reports exactly like the
/// original fuzzer failure.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "TestUtil.h"

#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <sstream>
#include <string>
#include <vector>

using namespace fut;
using namespace fut::fuzz;

namespace {

std::filesystem::path casesDir() {
  return std::filesystem::path(FUTHARKCC_REGRESS_DIR);
}

std::vector<std::filesystem::path> caseFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &Entry : std::filesystem::directory_iterator(casesDir()))
    if (Entry.path().extension() == ".fut")
      Files.push_back(Entry.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

std::string slurp(const std::filesystem::path &P) {
  std::ifstream In(P);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

} // namespace

TEST(RegressTest, CorpusIsNonEmpty) {
  ASSERT_TRUE(std::filesystem::is_directory(casesDir()))
      << "missing regression corpus directory " << casesDir();
  EXPECT_FALSE(caseFiles().empty())
      << "no .fut cases in " << casesDir();
}

TEST(RegressTest, EveryCaseParsesAndAgrees) {
  for (const auto &Path : caseFiles()) {
    SCOPED_TRACE(Path.filename().string());
    FuzzCase C;
    ASSERT_TRUE(loadRegressionFile(slurp(Path), C))
        << Path << ": malformed regression file (needs an '-- args:' line)";
    Outcome O = runSourceDifferential(C.Source, C.Args);
    EXPECT_TRUE(O.Ok) << Path << ":\n" << O.Message;
  }
}
