//===- nbody.cpp - N-body simulation with block tiling (Section 5.2) -------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Steps a small 2-D N-body system, showing the tiling optimisation: each
// thread folds over all bodies, so the position arrays are staged through
// workgroup-local memory.  Compare the cost reports with tiling on/off.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gpusim/Device.h"
#include "support/Utils.h"

#include <cstdio>

using namespace fut;

namespace {

const char *Step =
    "fun main (dt: f32) (xs: [n]f32) (ys: [n]f32) (vxs: [n]f32)\n"
    "         (vys: [n]f32) (ms: [n]f32):\n"
    "         ([n]f32, [n]f32, [n]f32, [n]f32) =\n"
    "  let fs = map (\\(xi: f32) (yi: f32): (f32, f32) ->\n"
    "     let ds = map (\\(xj: f32) (yj: f32) (mj: f32): (f32, f32) ->\n"
    "          let dx = xj - xi\n"
    "          let dy = yj - yi\n"
    "          let r2 = dx * dx + dy * dy + 0.01\n"
    "          let f = mj / (r2 * sqrt r2)\n"
    "          in (f * dx, f * dy)) xs ys ms\n"
    "     in reduce (\\(a1: f32, b1: f32) (a2: f32, b2: f32): "
    "(f32, f32) ->\n"
    "          (a1 + a2, b1 + b2)) (0.0, 0.0) ds) xs ys\n"
    "  let (fxs, fys) = fs\n"
    "  let nvxs = map (\\(v: f32) (f: f32): f32 -> v + f * dt) vxs fxs\n"
    "  let nvys = map (\\(v: f32) (f: f32): f32 -> v + f * dt) vys fys\n"
    "  let nxs = map (\\(x: f32) (v: f32): f32 -> x + v * dt) xs nvxs\n"
    "  let nys = map (\\(y: f32) (v: f32): f32 -> y + v * dt) ys nvys\n"
    "  in (nxs, nys, nvxs, nvys)";

} // namespace

int main() {
  printf("N-body with block tiling (the Section 5.2 pattern)\n\n");

  int64_t N = 512;
  SplitMix64 Rng(11);
  std::vector<double> X(N), Y(N), VX(N, 0), VY(N, 0), M(N);
  for (int64_t I = 0; I < N; ++I) {
    X[I] = Rng.nextDouble(-1, 1);
    Y[I] = Rng.nextDouble(-1, 1);
    M[I] = Rng.nextDouble(0.1, 1);
  }

  for (bool Tiling : {true, false}) {
    CompilerOptions O;
    O.Locality.EnableTiling = Tiling;
    NameSource NS;
    auto C = compileSource(Step, NS, O);
    if (!C) {
      fprintf(stderr, "compile error: %s\n", C.getError().str().c_str());
      return 1;
    }

    std::vector<Value> State = {Value::scalar(PrimValue::makeF32(0.01f)),
                                makeVectorValue(ScalarKind::F32, X),
                                makeVectorValue(ScalarKind::F32, Y),
                                makeVectorValue(ScalarKind::F32, VX),
                                makeVectorValue(ScalarKind::F32, VY),
                                makeVectorValue(ScalarKind::F32, M)};

    gpusim::Device D;
    double Cycles = 0;
    int64_t Transactions = 0, Local = 0;
    // Step the system a few times, feeding outputs back in.
    for (int Iter = 0; Iter < 3; ++Iter) {
      auto R = D.runMain(C->P, State);
      if (!R) {
        fprintf(stderr, "device error: %s\n", R.getError().str().c_str());
        return 1;
      }
      Cycles += R->Cost.TotalCycles;
      Transactions += R->Cost.GlobalTransactions;
      Local += R->Cost.LocalAccesses;
      for (int J = 0; J < 4; ++J)
        State[1 + J] = R->Outputs[J];
    }
    printf("tiling %-3s: %10.0f cycles, %8lld global transactions, "
           "%9lld local accesses\n",
           Tiling ? "on" : "off", Cycles,
           static_cast<long long>(Transactions),
           static_cast<long long>(Local));
  }
  printf("\n(each thread folds over all %d bodies; with tiling the "
         "position/mass arrays\n are fetched from global memory once per "
         "workgroup instead of once per thread)\n",
         512);
  return 0;
}
