//===- kmeans.cpp - K-means with in-place updates (Section 2.4 / Fig 4) ----===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Runs one full K-means iteration (assignment + centre update) built from
// the paper's stream_red formulation, and demonstrates the uniqueness type
// system: the same accumulator update is rejected when the array being
// updated is a shared (non-unique) binding.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gpusim/Device.h"
#include "support/Utils.h"

#include <cstdio>

using namespace fut;

namespace {

// Assignment + histogram in one program: each point picks its nearest
// centre, then cluster sizes are counted with the Fig 4c stream_red.
const char *Source =
    "fun main (k: i32) (points: [n]f32) (centres: [k]f32): "
    "([n]i32, [k]i32) =\n"
    "  let membership = map (\\(p: f32): i32 ->\n"
    "        let best = loop ((bi, bd) = (0, 1000000.0)) for c < k do\n"
    "          let d = abs (p - centres[c])\n"
    "          in if d < bd then (c, d) else (bi, bd)\n"
    "        let (bi, bd) = best\n"
    "        in bi)\n"
    "      points\n"
    "  let counts = stream_red (map (+))\n"
    "    (\\(acc: *[k]i32) (chunk: [chunksize]i32): [k]i32 ->\n"
    "       loop (acc) for i < chunksize do\n"
    "         let cl = chunk[i]\n"
    "         in acc with [cl] <- acc[cl] + 1)\n"
    "    (replicate k 0) membership\n"
    "  in (membership, counts)";

// The broken variant: the accumulator aliases an array bound OUTSIDE the
// fold function, so updating it in place would race across chunks.  The
// uniqueness checker rejects it (Fig 7's second example).
const char *Broken =
    "fun main (k: i32) (membership: [n]i32): [k]i32 =\n"
    "  let shared = replicate k 0\n"
    "  let r = map (\\(cl: i32): [k]i32 ->\n"
    "        shared with [cl] <- shared[cl] + 1)\n"
    "      membership\n"
    "  in r[0]";

} // namespace

int main() {
  printf("K-means on the simulated GPU (Section 2.4)\n\n");

  // The uniqueness type system at work.
  {
    NameSource NS;
    auto C = compileSource(Broken, NS);
    printf("in-place update of a shared array: %s\n",
           C ? "accepted (BUG!)" : "rejected by the uniqueness checker");
    if (!C)
      printf("  error: %s\n\n", C.getError().Message.c_str());
  }

  NameSource NS;
  auto C = compileSource(Source, NS);
  if (!C) {
    fprintf(stderr, "compile error: %s\n", C.getError().str().c_str());
    return 1;
  }

  int64_t N = 10000, K = 6;
  SplitMix64 Rng(7);
  std::vector<double> Points(N);
  for (auto &P : Points)
    P = Rng.nextDouble(0, 100);
  std::vector<double> Centres = {5, 20, 40, 60, 80, 95};

  std::vector<Value> Args = {
      Value::scalar(PrimValue::makeI32(static_cast<int32_t>(K))),
      makeVectorValue(ScalarKind::F32, Points),
      makeVectorValue(ScalarKind::F32, Centres)};

  gpusim::Device D;
  auto R = D.runMain(C->P, Args);
  if (!R) {
    fprintf(stderr, "device error: %s\n", R.getError().str().c_str());
    return 1;
  }

  printf("cluster sizes for %lld points around centres "
         "{5,20,40,60,80,95}:\n  %s\n",
         static_cast<long long>(N), R->Outputs[1].str().c_str());
  printf("\ndevice cost: %s\n", R->Cost.str().c_str());
  printf("kernels extracted: %d (assignment map, chunked fold, segmented "
         "combine)\n",
         C->Flatten.kernels());
  return 0;
}
