//===- quickstart.cpp - Minimal end-to-end use of the public API -----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Compiles a small data-parallel program through the full pipeline of
// Fig 3 (desugar -> uniqueness check -> fusion -> kernel extraction ->
// locality optimisation), runs it on both the reference interpreter and
// the simulated GPU, and prints the results and the cost report.
//
// Build and run:  cmake --build build && ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gpusim/Device.h"
#include "interp/Interp.h"
#include "ir/Printer.h"
#include "parser/Desugar.h"

#include <cstdio>

using namespace fut;

int main() {
  // Dot product with a squared transform: a map fused into a reduce
  // (the paper's "redomap"), extracted as a single kernel.
  const char *Source =
      "fun main (n: i32) (xs: [n]f32) (ys: [n]f32): f32 =\n"
      "  reduce (+) 0.0 (map (\\(x: f32) (y: f32): f32 -> x * y) xs ys)";

  // 1. Compile through the full pipeline.
  NameSource Names;
  auto Compiled = compileSource(Source, Names);
  if (!Compiled) {
    fprintf(stderr, "compile error: %s\n",
            Compiled.getError().str().c_str());
    return 1;
  }
  printf("fused %d map/reduce pairs; extracted %d kernel(s)\n\n",
         Compiled->Fusion.Redomap, Compiled->Flatten.kernels());
  printf("compiled program:\n%s\n", printProgram(Compiled->P).c_str());

  // 2. Prepare inputs.
  std::vector<double> A, B;
  for (int I = 0; I < 1000; ++I) {
    A.push_back(I * 0.001);
    B.push_back(1.0 - I * 0.001);
  }
  std::vector<Value> Args = {Value::scalar(PrimValue::makeI32(1000)),
                             makeVectorValue(ScalarKind::F32, A),
                             makeVectorValue(ScalarKind::F32, B)};

  // 3. Run on the reference interpreter (the semantic oracle)...
  NameSource Names2;
  auto Reference = frontend(Source, Names2);
  Interpreter I(*Reference);
  auto Want = I.run(Args);
  if (!Want) {
    fprintf(stderr, "interpreter error: %s\n",
            Want.getError().str().c_str());
    return 1;
  }

  // 4. ... and on the simulated GPU.
  gpusim::Device D(gpusim::DeviceParams::gtx780());
  auto Got = D.runMain(Compiled->P, Args);
  if (!Got) {
    fprintf(stderr, "device error: %s\n", Got.getError().str().c_str());
    return 1;
  }

  printf("interpreter result: %s\n", (*Want)[0].str().c_str());
  printf("device result:      %s\n", Got->Outputs[0].str().c_str());
  printf("device cost:        %s\n", Got->Cost.str().c_str());
  printf("\nmatch: %s\n",
         Got->Outputs[0].approxEqual((*Want)[0]) ? "yes" : "NO");
  return 0;
}
