//===- mandelbrot.cpp - ASCII Mandelbrot via the compiled pipeline ---------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
// Renders the Mandelbrot set with the Accelerate-derived benchmark program:
// a perfectly parallel 2-D map whose per-pixel escape-time loop stays
// sequential inside the thread (the G7 heuristic keeps it compute-bound).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "gpusim/Device.h"

#include <cstdio>

using namespace fut;

int main() {
  const char *Source =
      "fun main (w: i32) (h: i32) (limit: i32): [h][w]i32 =\n"
      "  map (\\(i: i32): [w]i32 ->\n"
      "    map (\\(j: i32): i32 ->\n"
      "      let cr = -2.2 + 3.2 * f32 j / f32 w\n"
      "      let ci = -1.2 + 2.4 * f32 i / f32 h\n"
      "      let res = loop ((zr, zi, cnt) = (0.0, 0.0, 0))\n"
      "                for t < limit do\n"
      "        let zr2 = zr * zr - zi * zi + cr\n"
      "        let zi2 = 2.0 * zr * zi + ci\n"
      "        let inside = zr2 * zr2 + zi2 * zi2 < 4.0\n"
      "        in (if inside then zr2 else zr,\n"
      "            if inside then zi2 else zi,\n"
      "            if inside then cnt + 1 else cnt)\n"
      "      let (zr, zi, cnt) = res\n"
      "      in cnt) (iota w)) (iota h)";

  NameSource NS;
  auto C = compileSource(Source, NS);
  if (!C) {
    fprintf(stderr, "compile error: %s\n", C.getError().str().c_str());
    return 1;
  }

  int W = 78, H = 30, Limit = 48;
  std::vector<Value> Args = {Value::scalar(PrimValue::makeI32(W)),
                             Value::scalar(PrimValue::makeI32(H)),
                             Value::scalar(PrimValue::makeI32(Limit))};
  gpusim::Device D;
  auto R = D.runMain(C->P, Args);
  if (!R) {
    fprintf(stderr, "device error: %s\n", R.getError().str().c_str());
    return 1;
  }

  const char *Shades = " .:-=+*#%@";
  const Value &Img = R->Outputs[0];
  for (int I = 0; I < H; ++I) {
    for (int J = 0; J < W; ++J) {
      int64_t V = Img.at({I, J}).asInt64();
      putchar(Shades[(V * 9) / Limit]);
    }
    putchar('\n');
  }
  printf("\n%dx%d pixels, escape limit %d; device cost: %s\n", W, H, Limit,
         R->Cost.str().c_str());
  printf("map-loop interchanges applied: %d (none, by the G7 heuristic — "
         "interchange\nwould make this memory-bound, as Section 5.1 "
         "notes)\n",
         C->Flatten.Interchanges);
  return 0;
}
