-- K-means iteration (Section 2.4 / Fig 4) as a self-contained program:
-- the point set and initial centres are generated internally so main
-- takes no arguments and `futharkcc --trace-out=t.json examples/kmeans.fut`
-- runs it and emits one Chrome-trace span per pass and per kernel launch.

fun nearest (k: i32) (centres: [k]f32) (p: f32): i32 =
  let best = loop ((bi, bd) = (0, 1000000.0)) for c < k do
    let d = abs (p - centres[c])
    in if d < bd then (c, d) else (bi, bd)
  let (bi, bd) = best
  in bi

-- Cluster sizes via the Fig 4c stream_red: each chunk folds its points
-- into a unique accumulator, chunk results combine with map (+).
fun histogram (k: i32) (n: i32) (membership: [n]i32): [k]i32 =
  stream_red (map (+))
    (\(acc: *[k]i32) (chunk: [chunksize]i32): [k]i32 ->
       loop (acc) for i < chunksize do
         let cl = chunk[i]
         in acc with [cl] <- acc[cl] + 1)
    (replicate k 0) membership

fun main: (i32, i32) =
  let n = 4096
  let k = 6
  let points = map (\(i: i32): f32 -> f32 (i * 73 % 1000) / 10.0) (iota n)
  let centres = map (\(c: i32): f32 -> f32 (c * 16 + 8)) (iota k)
  let membership = map (\(p: f32): i32 -> nearest k centres p) points
  let counts = histogram k n membership
  in (reduce (+) 0 membership, reduce (+) 0 counts)
