#!/usr/bin/env bash
#===- scripts/ci.sh - tier-1 verification pipeline -----------------------===//
#
# Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
#
# The canonical local/CI entry point.  Runs the full tier-1 verify
# (configure, build, complete ctest suite) and then re-runs the fault and
# differential suites on their own so a resilience or bit-identity
# regression is named explicitly in the log even when someone trims the
# main suite.
#
# Environment:
#   FUTHARKCC_SANITIZE=ON   build with ASan+UBSan (default OFF)
#   BUILD_DIR=<path>        build tree (default: build)
#   JOBS=<n>                parallelism (default: nproc)
#
#===----------------------------------------------------------------------===//

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"
SANITIZE="${FUTHARKCC_SANITIZE:-OFF}"

echo "== configure (sanitize=${SANITIZE}) =="
cmake -B "$BUILD_DIR" -S . -DFUTHARKCC_SANITIZE="$SANITIZE"

echo "== build =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tier-1: full test suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

echo "== verifier + fuzz regression corpus =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'VerifyTest|RegressTest|FuzzTest'

echo "== smoke: fixed-seed differential fuzz (compiled vs interpreter) =="
# A deterministic 300-program sweep through the full pipeline (with the
# IR verifier enabled after every pass) against the reference
# interpreter.  Runs in every configuration, so the sanitized matrix leg
# executes it under ASan+UBSan.  300 seeds keeps the leg under a minute;
# the full 1..1200 sweep is clean and worth re-running by hand after
# planner or flattening changes.
"$BUILD_DIR"/src/fuzz/futharkcc-fuzz --seed-range 1..300 \
  --out "$BUILD_DIR"/fuzz-failures

echo "== mem-plan leg: ablation fuzz + planned-vs-runtime peaks =="
# The same sweep with the static memory planner disabled: the runtime
# best-fit manager must agree bit-for-bit with the planned placement
# (cycles, counters, results), so both modes see identical pass/agree
# verdicts on every seed.
"$BUILD_DIR"/src/fuzz/futharkcc-fuzz --seed-range 1..300 --no-mem-plan \
  --out "$BUILD_DIR"/fuzz-failures-noplan
# Plan-mode PeakDeviceBytes stays within the plan-derived bound and never
# exceeds the runtime manager's peak on the whole bench suite, with
# bit-identical cycles/launches/outputs across modes.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'PlannedPeakNeverExceedsRuntimePeak|MemPlan|VerifyTest'
# --print-mem-plan dumps the static plan for a real program.
"$BUILD_DIR"/src/driver/futharkcc --print-mem-plan examples/kmeans.fut \
  > "$BUILD_DIR"/ci_memplan.txt 2>/dev/null
grep -q "memory plan" "$BUILD_DIR"/ci_memplan.txt
grep -q "slab 0" "$BUILD_DIR"/ci_memplan.txt
# The observed plan-mode peak must stay within the planner's static bound
# and never exceed the --no-mem-plan runtime manager's peak.
"$BUILD_DIR"/src/driver/futharkcc examples/kmeans.fut --run \
  >/dev/null 2>"$BUILD_DIR"/ci_plan.log
"$BUILD_DIR"/src/driver/futharkcc --no-mem-plan examples/kmeans.fut --run \
  >/dev/null 2>"$BUILD_DIR"/ci_noplan.log
python3 - "$BUILD_DIR" <<'EOF'
import re, sys
bd = sys.argv[1]
def field(log, key):
    m = re.search(key + r"=(\d+)", open(log).read())
    assert m, f"no {key} in {log}"
    return int(m.group(1))
planned = field(f"{bd}/ci_plan.log", "plannedpeak")
peak_plan = field(f"{bd}/ci_plan.log", "peakbytes")
peak_runtime = field(f"{bd}/ci_noplan.log", "peakbytes")
assert planned > 0, "planner produced no placement for kmeans"
assert peak_plan <= planned, \
    f"plan-mode peak {peak_plan} exceeds static bound {planned}"
assert peak_plan <= peak_runtime, \
    f"plan-mode peak {peak_plan} exceeds runtime peak {peak_runtime}"
print(f"ok: kmeans plan peak {peak_plan} <= bound {planned}, "
      f"<= runtime {peak_runtime} bytes")
EOF

echo "== fault-injection suite =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'FaultPlanTest|FaultsTest'

echo "== differential suite (reference interpreter vs device) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'Differential'

echo "== trace suite (counters + Chrome export) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'TraceCounters|TraceExport'

echo "== smoke: --trace-out produces a loadable Chrome trace =="
"$BUILD_DIR"/src/driver/futharkcc --trace-out "$BUILD_DIR"/ci_trace.json \
  examples/kmeans.fut >/dev/null
python3 - "$BUILD_DIR"/ci_trace.json <<'EOF'
import json, sys
t = json.load(open(sys.argv[1]))
evs = t["traceEvents"]
kernels = [e for e in evs if e["ph"] == "X" and e["name"].startswith("kernel:")]
passes = [e for e in evs if e["ph"] == "X" and e["name"].startswith("pass:")]
assert kernels, "no kernel spans in trace"
assert passes, "no pass spans in trace"
assert all("cycles" in e.get("args", {}) for e in kernels)
print(f"ok: {len(passes)} pass spans, {len(kernels)} kernel spans")
EOF

echo "== smoke: async two-engine timeline vs --sync serial model =="
"$BUILD_DIR"/src/driver/futharkcc --sync \
  --trace-out "$BUILD_DIR"/ci_trace_sync.json \
  examples/kmeans.fut >/dev/null 2>"$BUILD_DIR"/ci_sync.log
"$BUILD_DIR"/src/driver/futharkcc \
  --trace-out "$BUILD_DIR"/ci_trace_async.json \
  examples/kmeans.fut >/dev/null 2>"$BUILD_DIR"/ci_async.log
python3 - "$BUILD_DIR" <<'EOF'
import json, re, sys
bd = sys.argv[1]
def cycles(log):
    m = re.search(r"cycles=(\d+)", open(log).read())
    assert m, f"no device cycle line in {log}"
    return int(m.group(1))
sync, async_ = cycles(f"{bd}/ci_sync.log"), cycles(f"{bd}/ci_async.log")
assert async_ <= sync, f"async timeline slower than serial: {async_} > {sync}"
evs = json.load(open(f"{bd}/ci_trace_async.json"))["traceEvents"]
names = {e["args"]["name"] for e in evs
         if e["ph"] == "M" and e["name"] == "thread_name"}
assert {"copy-engine", "compute-engine"} <= names, f"engine tracks missing: {names}"
print(f"ok: kmeans async {async_} <= sync {sync} cycles; engine tracks present")
EOF

echo "== serve suite (artifact cache, admission, quarantine) =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'Serve|ArtifactHash'

echo "== serve soak: seeded fault-injected workload drains clean =="
# 32 requests over the built-in program mix with a 40% injected
# launch-failure rate and 10% corruption: every request must complete
# (retried, quarantine-recompiled, or degraded to the interpreter),
# every successful response must be bit-identical to the reference
# interpreter (--check exits 1 on any cross-request contamination), and
# the queue must drain to exactly one response per submission (the
# binary exits 1 on a count mismatch).
"$BUILD_DIR"/src/serve/futharkcc-serve --builtin 32 --fault-rate 0.4 \
  --corrupt-rate 0.1 --fault-seed 1 --check --quiet \
  2>"$BUILD_DIR"/ci_serve_soak.log
grep -q "0 mismatches" "$BUILD_DIR"/ci_serve_soak.log
# Nothing may be silently dropped or left hanging under faults.
grep -Eq "32 submitted, 32 admitted, 32 completed, 0 failed" \
  "$BUILD_DIR"/ci_serve_soak.log

echo "== serve bench: sustained rate + cache hit rate into BENCH_trace =="
# bench_serve exits 1 itself when any request fails or the hit rate on
# the repeated-program workload drops below 90%; the python pass
# re-asserts from the machine-readable BENCH_trace.json that CI and
# notebooks consume.
(cd "$BUILD_DIR" && ./bench/bench_serve >/dev/null)
python3 - "$BUILD_DIR"/BENCH_trace.json <<'EOF'
import json, sys
rows = {r["benchmark"]: r for r in json.load(open(sys.argv[1]))["benchmarks"]}
tp, soak = rows["serve_throughput"], rows["serve_soak"]
assert tp["completed"] == tp["requests"], "throughput leg dropped requests"
assert tp["cache_hit_rate"] >= 0.9, \
    f"cache hit rate {tp['cache_hit_rate']:.2%} below 90%"
assert tp["requests_per_sec"] > 0, "no sustained rate reported"
assert soak["completed"] == soak["requests"], \
    "soak leg dropped requests under 40% faults"
assert soak["counters"].get("serve.cache_evictions", 0) == 0, \
    "fault recovery evicted healthy artifacts"
print(f"ok: {tp['requests_per_sec']:.0f} req/s simulated, "
      f"{tp['cache_hit_rate']:.1%} hit rate, "
      f"soak {soak['completed']:.0f}/{soak['requests']:.0f} under faults")
EOF

echo "== shard leg: multi-device differential, fuzz and scaling =="
# The sharding test layer: property tests that the shard-plan verifier
# rejects corrupted plans (overlapping ownership, dropped transfers,
# over-budget shards), the pinned plan dumps + N=1 no-op invariant, and
# the 20-seed differential sweep at 1/2/4 devices (Sharded* legs).
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'ShardVerifyTest|ShardPlanGolden|Sharded'
# Fixed-seed differential fuzz through the sharded path: 150 seeds at
# two devices, bit-identical to the reference interpreter.
"$BUILD_DIR"/src/fuzz/futharkcc-fuzz --seed-range 1..150 --devices 2 \
  --out "$BUILD_DIR"/fuzz-failures-shard
# --print-shard-plan dumps the decomposition for a real program.
"$BUILD_DIR"/src/driver/futharkcc --devices 4 --print-shard-plan \
  examples/kmeans.fut > "$BUILD_DIR"/ci_shardplan.txt 2>/dev/null
grep -q "shard plan (devices=4)" "$BUILD_DIR"/ci_shardplan.txt
grep -q "sharded width=" "$BUILD_DIR"/ci_shardplan.txt
# Scaling: bench_shard exits 1 itself unless >= 2 aligned-chain members
# reach 1.5x at 4 devices; the python pass re-asserts from the
# machine-readable trace that the 2-device makespan never exceeds the
# 1-device makespan on every member that must scale.  bench_shard
# overwrites BENCH_trace.json, so the serve leg's rows are set aside
# first (both files are uploaded as CI artifacts).
cp "$BUILD_DIR"/BENCH_trace.json "$BUILD_DIR"/BENCH_trace_serve.json
(cd "$BUILD_DIR" && ./bench/bench_shard >/dev/null)
python3 - "$BUILD_DIR"/BENCH_trace.json <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))["benchmarks"]
by = {}
for r in rows:
    by.setdefault(r["benchmark"], {})[int(r["devices"])] = r
wins = 0
for name, curve in sorted(by.items()):
    if name == "reduce-tail":
        continue  # documented anti-pattern member (all-gather tax)
    assert curve[2]["makespan"] <= curve[1]["makespan"], \
        f"{name}: 2-device makespan exceeds 1-device"
    if curve[4]["speedup"] >= 1.5:
        wins += 1
assert wins >= 2, f"only {wins} members reached 1.5x at 4 devices"
print(f"ok: {wins} members >= 1.5x at 4 devices; 2-device <= 1-device")
EOF

echo "== histogram leg: lowering switch, atomic accounting, contention =="
# The reduce_by_index layer: the local-vs-global lowering switch at
# HistLocalWidthMax (bit-identical results either side, distinct cost
# profiles), exactly-once atomic accounting under fault-injected retries
# (failed launches charge nothing, corrupted attempts charge in full),
# and the pinned hist-merge shard plan.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'HistLoweringTest|HistFaultsTest|ShardPlanGolden'
# The default fuzz sweeps above exercise reduce_by_index under the local
# lowering; these two re-run the corpus with the global-atomic strategy
# forced (threshold 0), alone and through the two-device sharded path
# with partial-histogram merges.  Bit-identical to the interpreter on
# every seed.
"$BUILD_DIR"/src/fuzz/futharkcc-fuzz --seed-range 1..150 --hist-global \
  --out "$BUILD_DIR"/fuzz-failures-hist
"$BUILD_DIR"/src/fuzz/futharkcc-fuzz --seed-range 1..150 --hist-global \
  --devices 2 --out "$BUILD_DIR"/fuzz-failures-hist-shard
# bench_histogram exits 1 itself unless the CGO'20 shapes verify against
# the interpreter and beat their reference baselines, conflicts fall
# monotonically as the width grows, and the lowering switch trades
# conflicts for local traffic; the python pass re-asserts the contention
# curve from the machine-readable trace.  bench_histogram overwrites
# BENCH_trace.json, so the shard leg's rows are set aside first.
cp "$BUILD_DIR"/BENCH_trace.json "$BUILD_DIR"/BENCH_trace_shard.json
(cd "$BUILD_DIR" && ./bench/bench_histogram >/dev/null)
cp "$BUILD_DIR"/BENCH_trace.json "$BUILD_DIR"/BENCH_trace_hist.json
python3 - "$BUILD_DIR"/BENCH_trace_hist.json <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))["benchmarks"]
shapes = [r for r in rows if r["benchmark"].startswith("histogram-")]
assert len(shapes) >= 3, f"expected 3 CGO'20 shapes, got {len(shapes)}"
for r in shapes:
    assert r["speedup"] >= 1.0, \
        f"{r['benchmark']}: {r['speedup']:.2f}x below its reference baseline"
curve = sorted((r for r in rows if r["benchmark"] == "hist-contention"),
               key=lambda r: r["width"])
assert len(curve) >= 4, "contention sweep missing widths"
confl = [r["atomic_conflicts"] for r in curve]
assert all(a >= b for a, b in zip(confl, confl[1:])), \
    f"conflicts not monotone non-increasing in width: {confl}"
assert confl[0] > confl[-1], "narrowest width is not the conflict worst case"
switch = {r["device"]: r for r in rows if r["benchmark"] == "hist-switch"}
assert switch["local"]["atomic_conflicts"] == 0, \
    "local subhistograms charged global conflicts"
assert switch["global"]["atomic_conflicts"] > 0, \
    "global atomics saw no contention on the sweep input"
print(f"ok: {len(shapes)} shapes >= 1.0x; conflicts {int(confl[0])} -> "
      f"{int(confl[-1])} over the width sweep; switch local=0/global="
      f"{int(switch['global']['atomic_conflicts'])} conflicts")
EOF

echo "== cost-model leg: roofline vs pipeline, cross-model fuzz, tuner =="
# The pluggable CostModel seam: unit suites for the seam itself (exact
# roofline formula, typed Config errors, profile observables) and the
# autotuner's contracts.
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'CostModelTest|TuneTest'
# Differential fuzz with the pipeline model charged: whatever prices the
# cycles, outputs stay bit-identical to the reference interpreter.
"$BUILD_DIR"/src/fuzz/futharkcc-fuzz --seed-range 1..300 \
  --cost-model pipeline --out "$BUILD_DIR"/fuzz-failures-pipeline
# Cross-model agreement oracle over 150 seeds: both models on the same
# compiled artifact must produce bit-identical outputs and exactly equal
# model-independent counters (traffic, atomics, coalescing split).
"$BUILD_DIR"/src/fuzz/futharkcc-fuzz --seed-range 1..150 --cross-model \
  --out "$BUILD_DIR"/fuzz-failures-crossmodel
# bench_costmodel runs the sixteen-benchmark suite under both models,
# asserts output/counter agreement per benchmark, and records the E16
# calibration table (roofline vs pipeline cycles, divergence profile).
# The hist leg's rows are already set aside in BENCH_trace_hist.json.
(cd "$BUILD_DIR" && ./bench/bench_costmodel >/dev/null)
cp "$BUILD_DIR"/BENCH_trace.json "$BUILD_DIR"/BENCH_trace_costmodel.json
python3 - "$BUILD_DIR"/BENCH_trace_costmodel.json <<'EOF'
import json, sys
rows = json.load(open(sys.argv[1]))["benchmarks"]
assert len(rows) == 16, f"expected 16 calibration rows, got {len(rows)}"
for r in rows:
    assert r["outputs_identical"] == 1, f"{r['benchmark']}: outputs diverged"
    assert r["pipeline_kernel_cycles"] >= r["roofline_kernel_cycles"], \
        f"{r['benchmark']}: pipeline undercuts roofline"
div = sum(1 for r in rows if r["divergent_warps"] > 0)
print(f"ok: 16 benchmarks agree across models; {div} show warp divergence")
EOF
# Tuner smoke: the cycle-oracle autotuner must find >= 2 benchmarks that
# improve by >= 10% simulated cycles with bit-identical outputs (the
# binary exits 1 on any output mismatch or if the bar is missed).
"$BUILD_DIR"/src/tune/futharkcc-tune --rounds 2 --min-wins 2 \
  --min-improvement 10 --json "$BUILD_DIR"/ci_tune.json \
  > "$BUILD_DIR"/ci_tune.log
grep -q "benchmark(s) improved" "$BUILD_DIR"/ci_tune.log

echo "== AD leg: VJP unit suites, gradient-check fuzz, training bench =="
# The reverse-mode AD layer: per-construct adjoint rules over the core IR
# (VjpTest), and the gradient fuzzer's own contracts including the
# shrinker (GradFuzzTest).
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
  -R 'VjpTest|GradFuzzTest'
# 150-seed gradient-check sweep: random smooth f64 programs compiled
# with --vjp=main through the full pipeline (every per-pass verifier and
# the memory-plan verifier run on the adjoint code), adjoints executed
# on the simulated device and compared against central finite
# differences.  Any seed beyond the 1e-4 relative tolerance fails the
# sweep and a shrunk reproducer lands in the failure directory.
"$BUILD_DIR"/src/fuzz/futharkcc-fuzz --vjp --seed-range 1..150 \
  --out "$BUILD_DIR"/fuzz-failures-vjp
# bench_ad exits 1 itself unless both training workloads (logistic
# regression through an unrolled GD loop, kmeans by host-driven GD)
# converge, the device gradients match finite differences, and the tape
# stays within the planned peak; the python pass re-asserts the E17
# acceptance numbers from the machine-readable trace.  The cost-model
# leg's rows are already set aside in BENCH_trace_costmodel.json.
(cd "$BUILD_DIR" && ./bench/bench_ad >/dev/null)
cp "$BUILD_DIR"/BENCH_trace.json "$BUILD_DIR"/BENCH_trace_ad.json
python3 - "$BUILD_DIR"/BENCH_trace_ad.json <<'EOF'
import json, sys
rows = {r["benchmark"]: r for r in json.load(open(sys.argv[1]))["benchmarks"]}
for name in ("ad-logreg-train", "ad-kmeans-gd"):
    r = rows[name]
    assert r["grad_rel_err"] < 1e-4, \
        f"{name}: gradient error {r['grad_rel_err']:.2e} beyond 1e-4"
    assert 0 <= r["tape_planned_bytes"] <= r["planned_peak_bytes"], \
        f"{name}: tape {r['tape_planned_bytes']} outside plan peak " \
        f"{r['planned_peak_bytes']}"
    assert r["vjp_cycles"] > r["primal_cycles"] > 0, \
        f"{name}: implausible cycle counts"
lr = rows["ad-logreg-train"]
# The unrolled-loop workload must actually tape loop-carried state;
# kmeans drives GD from the host, so its device tape is legitimately 0.
assert lr["tape_planned_bytes"] > 0, "logreg taped nothing"
assert lr["loss_trained"] < lr["loss_untrained"], \
    "unrolled GD failed to reduce the training loss"
print(f"ok: grad err logreg {rows['ad-logreg-train']['grad_rel_err']:.1e} / "
      f"kmeans {rows['ad-kmeans-gd']['grad_rel_err']:.1e}; tape "
      f"{int(lr['tape_planned_bytes'])} B <= plan peak "
      f"{int(lr['planned_peak_bytes'])} B; vjp overhead "
      f"{lr['vjp_overhead']:.2f}x")
EOF

echo "== bench trajectory: merged BENCH_trace.json at repo root =="
# Each bench binary overwrites BENCH_trace.json in its own run, so the
# legs above set their rows aside (serve, shard, hist, costmodel).  Merge
# them into one trajectory file at the repo root — the single artifact CI
# uploads and notebooks diff across commits — and assert its schema: a
# non-empty benchmarks array whose rows all carry benchmark/device names
# and a counters object.
python3 - "$BUILD_DIR" <<'EOF'
import json, sys
bd = sys.argv[1]
merged = []
for leg in ("serve", "shard", "hist", "costmodel", "ad"):
    merged += json.load(open(f"{bd}/BENCH_trace_{leg}.json"))["benchmarks"]
assert merged, "no benchmark rows to merge"
json.dump({"benchmarks": merged}, open("BENCH_trace.json", "w"), indent=1)
check = json.load(open("BENCH_trace.json"))
assert isinstance(check["benchmarks"], list) and check["benchmarks"], \
    "merged trajectory is empty"
for r in check["benchmarks"]:
    assert isinstance(r.get("benchmark"), str) and r["benchmark"], \
        f"row without benchmark name: {r}"
    assert isinstance(r.get("device"), str), f"row without device: {r}"
    assert isinstance(r.get("counters"), dict), \
        f"row without counters object: {r['benchmark']}"
print(f"ok: {len(merged)} schema-checked rows merged into ./BENCH_trace.json")
EOF

echo "== hygiene: build artifacts never land in the source tree =="
# Regression guard for the stray libfut_*.a incident: a build must leave
# the tracked tree untouched and must not scatter archives or objects
# under src/ or tests/ (the out-of-tree build owns all artifacts).
STRAYS=$(find src tests bench examples -name '*.a' -o -name '*.o' | head)
if [ -n "$STRAYS" ]; then
  echo "stray build artifacts in the source tree:" >&2
  echo "$STRAYS" >&2
  exit 1
fi
DIRTY=$(git status --porcelain)
if [ -n "$DIRTY" ]; then
  echo "working tree dirty after build + test run:" >&2
  echo "$DIRTY" >&2
  exit 1
fi
echo "ok: source tree clean"

echo "== ci.sh: all green =="
