//===- Vjp.cpp - Reverse-mode AD (vector-Jacobian products) ---------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "ad/Vjp.h"

#include "ir/Builder.h"
#include "ir/Traversal.h"
#include "trace/Trace.h"

#include <algorithm>
#include <sstream>

using namespace fut;
using namespace fut::ad;

std::string fut::ad::vjpName(const std::string &Fun) { return Fun + "_vjp"; }

namespace {

/// A value is "active" when perturbing it can change a float result:
/// structurally, exactly the float-element types.  Integers and booleans
/// carry no adjoint.
bool activeType(const Type &T) { return isFloatKind(T.elemKind()); }

SubExp zeroConst(ScalarKind K) {
  switch (K) {
  case ScalarKind::F32:
    return f32c(0.0f);
  case ScalarKind::F64:
    return f64c(0.0);
  case ScalarKind::I32:
    return i32(0);
  case ScalarKind::I64:
    return i64c(0);
  case ScalarKind::Bool:
    return boolc(false);
  }
  return i32(0);
}

SubExp oneConst(ScalarKind K) {
  switch (K) {
  case ScalarKind::F32:
    return f32c(1.0f);
  case ScalarKind::F64:
    return f64c(1.0);
  case ScalarKind::I32:
    return i32(1);
  case ScalarKind::I64:
    return i64c(1);
  case ScalarKind::Bool:
    return boolc(true);
  }
  return i32(1);
}

/// Matches a two-parameter scalar lambda of the binOpLambda shape:
/// \x y -> x `op` y (one BinOp binding returned directly).  Fills \p Op.
bool matchBinOpLambda(const Lambda &L, BinOp &Op) {
  if (L.Params.size() != 2 || L.B.Stms.size() != 1 || L.B.Result.size() != 1)
    return false;
  const auto *B = expDynCast<BinOpExp>(L.B.Stms[0].E.get());
  if (!B || L.B.Stms[0].Pat.size() != 1)
    return false;
  const SubExp &R = L.B.Result[0];
  if (!R.isVar() || !(R.getVar() == L.B.Stms[0].Pat[0].Name))
    return false;
  const VName &P0 = L.Params[0].Name, &P1 = L.Params[1].Name;
  auto IsP = [](const SubExp &S, const VName &N) {
    return S.isVar() && S.getVar() == N;
  };
  if ((IsP(B->A, P0) && IsP(B->B, P1)) || (IsP(B->A, P1) && IsP(B->B, P0))) {
    Op = B->Op;
    return true;
  }
  return false;
}

/// Matches the vectorisedBinOpLambda shape: \xs ys -> map (op) xs ys on
/// rank-1 rows.  Fills the scalar \p Op.
bool matchVectorisedBinOpLambda(const Lambda &L, BinOp &Op) {
  if (L.Params.size() != 2 || L.B.Stms.size() != 1 || L.B.Result.size() != 1)
    return false;
  if (!L.Params[0].Ty.isArray())
    return false;
  const auto *M = expDynCast<MapExp>(L.B.Stms[0].E.get());
  if (!M || M->Arrays.size() != 2 || L.B.Stms[0].Pat.size() != 1)
    return false;
  const SubExp &R = L.B.Result[0];
  if (!R.isVar() || !(R.getVar() == L.B.Stms[0].Pat[0].Name))
    return false;
  const VName &P0 = L.Params[0].Name, &P1 = L.Params[1].Name;
  bool ArraysMatch = (M->Arrays[0] == P0 && M->Arrays[1] == P1) ||
                     (M->Arrays[0] == P1 && M->Arrays[1] == P0);
  return ArraysMatch && matchBinOpLambda(M->Fn, Op);
}

/// Matches the identity lambda \x -> x (reduce_by_index's unfused value
/// function).
bool matchIdentityLambda(const Lambda &L) {
  return L.Params.size() == 1 && L.B.Stms.empty() && L.B.Result.size() == 1 &&
         L.B.Result[0].isVar() && L.B.Result[0].getVar() == L.Params[0].Name;
}

class VjpEmitter {
public:
  VjpEmitter(NameSource &Names) : Names(Names) {}

  ErrorOr<FunDef> run(const FunDef &F);
  const VjpStats &stats() const { return Stats; }

private:
  NameSource &Names;
  VjpStats Stats;
  /// Types of every name in scope anywhere in the generated function.
  /// Names are globally unique (everything we emit is freshly renamed), so
  /// one flat map suffices.
  NameMap<Type> TypeOf;

  /// Reverse-sweep state for one body.
  struct Sweep {
    NameMap<SubExp> Adj;   ///< Current adjoint per (active) name.
    NameMap<VName> Saved;  ///< Consumed name -> save-on-consume copy.
  };

  CompilerError unsupported(const std::string &What) {
    return CompilerError("vjp: " + What);
  }

  void know(const VName &N, Type T) { TypeOf[N] = std::move(T); }
  void knowPat(const std::vector<Param> &Pat) {
    for (const Param &P : Pat)
      know(P.Name, P.Ty);
  }

  ErrorOr<Type> typeOfSub(const SubExp &S) {
    if (S.isConst())
      return Type::scalar(S.getConst().kind());
    auto It = TypeOf.find(S.getVar());
    if (It == TypeOf.end())
      return unsupported("unknown type of " + S.getVar().str() +
                         " during differentiation");
    return It->second;
  }

  /// Primal read: routes a variable through its save-on-consume copy.
  SubExp prim(const Sweep &SW, const SubExp &S) const {
    if (S.isConst())
      return S;
    auto It = SW.Saved.find(S.getVar());
    return It == SW.Saved.end() ? S : SubExp::var(It->second);
  }
  VName primVar(const Sweep &SW, const VName &N) const {
    auto It = SW.Saved.find(N);
    return It == SW.Saved.end() ? N : It->second;
  }

  /// A zero value of type \p T (rank arbitrary), emitted into \p BB.
  SubExp zeroOf(const Type &T, BodyBuilder &BB) {
    if (T.isScalar())
      return zeroConst(T.elemKind());
    Type Row = T.rowType();
    SubExp Z = zeroOf(Row, BB);
    VName N = BB.bind("adz", T.asNonUnique(),
                      std::make_unique<ReplicateExp>(T.outerDim(), Z, Row));
    know(N, T.asNonUnique());
    return SubExp::var(N);
  }

  /// Loop bounds in generated reverse loops: the verifier types every loop
  /// index variable as i32 and the interpreter gives index values the
  /// bound's kind, so index arithmetic is only well-kinded when the bound
  /// itself is i32.  Normalises a bound of any integer kind.
  ErrorOr<SubExp> boundAsI32(const SubExp &W, BodyBuilder &BB) {
    auto T = typeOfSub(W);
    if (!T)
      return T.getError();
    if (T->elemKind() == ScalarKind::I32)
      return W;
    SubExp C = BB.convOp(T->elemKind(), ScalarKind::I32, W, "adw");
    know(C.getVar(), Type::scalar(ScalarKind::I32));
    return C;
  }

  /// A lambda (\a b -> a + b) on values of type \p T (elementwise for
  /// arrays, any rank).
  Lambda addLambda(const Type &T) {
    std::vector<Param> Ps{Param(Names.fresh("aa"), T.asNonUnique()),
                          Param(Names.fresh("ab"), T.asNonUnique())};
    BodyBuilder LB(Names);
    know(Ps[0].Name, Ps[0].Ty);
    know(Ps[1].Name, Ps[1].Ty);
    SubExp R = addValues(SubExp::var(Ps[0].Name), SubExp::var(Ps[1].Name), T,
                         LB);
    return Lambda(std::move(Ps), LB.finish({R}), {T.asNonUnique()});
  }

  /// Emits A + B of type \p T (elementwise for arrays).
  SubExp addValues(const SubExp &A, const SubExp &B, const Type &T,
                   BodyBuilder &BB) {
    if (T.isScalar())
      return BB.binOp(BinOp::Add, A, B, T.elemKind(), "adj");
    Lambda L = addLambda(T.rowType());
    std::vector<Type> RT{T.asNonUnique()};
    std::vector<VName> Out = BB.bindMulti(
        "adj", RT,
        std::make_unique<MapExp>(T.outerDim(), std::move(L),
                                 std::vector<VName>{A.getVar(), B.getVar()}));
    know(Out[0], T.asNonUnique());
    return SubExp::var(Out[0]);
  }

  /// Accumulates \p C into the adjoint of \p N (no-op for inactive types).
  MaybeError addAdj(Sweep &SW, const VName &N, const SubExp &C,
                    BodyBuilder &BB) {
    auto It = TypeOf.find(N);
    if (It == TypeOf.end())
      return MaybeError::success(); // e.g. a function-external constant name
    const Type &T = It->second;
    if (!activeType(T))
      return MaybeError::success();
    auto Cur = SW.Adj.find(N);
    if (Cur == SW.Adj.end()) {
      SW.Adj.emplace(N, C);
      return MaybeError::success();
    }
    SubExp Sum = addValues(Cur->second, C, T, BB);
    Cur->second = Sum;
    return MaybeError::success();
  }
  /// addAdj through a SubExp (constants have no adjoint).
  MaybeError addAdjSub(Sweep &SW, const SubExp &S, const SubExp &C,
                       BodyBuilder &BB) {
    if (S.isConst())
      return MaybeError::success();
    return addAdj(SW, S.getVar(), C, BB);
  }

  /// The current adjoint of \p N, or a fresh zero of its type.
  ErrorOr<SubExp> adjOf(Sweep &SW, const VName &N, BodyBuilder &BB) {
    auto It = SW.Adj.find(N);
    if (It != SW.Adj.end())
      return It->second;
    auto T = typeOfSub(SubExp::var(N));
    if (!T)
      return T.getError();
    SubExp Z = zeroOf(*T, BB);
    SW.Adj.emplace(N, Z);
    return Z;
  }

  bool hasAdj(const Sweep &SW, const VName &N) const {
    return SW.Adj.count(N) != 0;
  }
  bool anyPatAdj(const Sweep &SW, const std::vector<Param> &Pat) const {
    for (const Param &P : Pat)
      if (hasAdj(SW, P.Name))
        return true;
    return false;
  }

  /// Emits `copy A` and returns the fresh name (same type as A).
  ErrorOr<VName> copyArray(const VName &A, BodyBuilder &BB,
                           const char *Base = "adc") {
    auto T = typeOfSub(SubExp::var(A));
    if (!T)
      return T.getError();
    VName C = BB.bind(Base, T->asNonUnique(), std::make_unique<CopyExp>(A));
    know(C, T->asNonUnique());
    return C;
  }

  /// Converts an integer SubExp to kind \p To if needed.
  ErrorOr<SubExp> intAs(const SubExp &S, ScalarKind To, BodyBuilder &BB) {
    auto T = typeOfSub(S);
    if (!T)
      return T.getError();
    if (T->elemKind() == To)
      return S;
    SubExp C = BB.convOp(T->elemKind(), To, S, "adi");
    know(C.getVar(), Type::scalar(To));
    return C;
  }

  /// The active ("adjoint-carrying") free variables of \p E, excluding
  /// \p Exclude, in deterministic order.
  std::vector<VName> activeFreeVars(const Exp &E, const NameSet &Exclude) {
    NameSet FV = freeVarsInExp(E);
    std::vector<VName> Out;
    for (const VName &N : FV) {
      if (Exclude.count(N))
        continue;
      auto It = TypeOf.find(N);
      if (It != TypeOf.end() && activeType(It->second))
        Out.push_back(N);
    }
    std::sort(Out.begin(), Out.end());
    return Out;
  }

  /// The core routine: appends to \p BB a freshly renamed forward clone of
  /// \p B (under \p Outer, with save-on-consume copies), then the reverse
  /// sweep seeded by \p Seeds (aligned with B.Result), and returns the
  /// renamed primal results together with the adjoints of \p Targets
  /// (zeros where nothing flowed).  Target names must be valid after the
  /// \p Outer substitution (enclosing-scope names or substituted params).
  struct BodyVjp {
    std::vector<SubExp> PrimalResults;
    std::vector<SubExp> TargetAdjoints;
  };
  ErrorOr<BodyVjp> emitBodyVjp(const Body &B, const NameMap<SubExp> &Outer,
                               const std::vector<SubExp> &Seeds,
                               const std::vector<VName> &Targets,
                               BodyBuilder &BB, bool TopLevel = false);

  /// Per-iteration tape bookkeeping for an augmented loop.
  struct LoopTape {
    std::vector<VName> TapeArrays; ///< One [bound]xT per merge param.
  };

  MaybeError emitForward(Stm S, Sweep &SW, BodyBuilder &BB,
                         NameMap<LoopTape> &Tapes);
  MaybeError reverseStm(const Stm &S, Sweep &SW, BodyBuilder &BB,
                        const NameMap<LoopTape> &Tapes);

  // Reverse rules for individual constructs (S is the renamed stm as
  // emitted by the forward sweep; for loops the *original* un-augmented
  // exp plus its LoopTape).
  MaybeError reverseBinOp(const Stm &S, const BinOpExp &E, Sweep &SW,
                          BodyBuilder &BB);
  MaybeError reverseUnOp(const Stm &S, const UnOpExp &E, Sweep &SW,
                         BodyBuilder &BB);
  MaybeError reverseIndex(const Stm &S, const IndexExp &E, Sweep &SW,
                          BodyBuilder &BB);
  MaybeError reverseUpdate(const Stm &S, const UpdateExp &E, Sweep &SW,
                           BodyBuilder &BB);
  MaybeError reverseIf(const Stm &S, const IfExp &E, Sweep &SW,
                       BodyBuilder &BB);
  MaybeError reverseMap(const Stm &S, const MapExp &E, Sweep &SW,
                        BodyBuilder &BB);
  MaybeError reverseReduce(const Stm &S, const ReduceExp &E, Sweep &SW,
                           BodyBuilder &BB);
  MaybeError reverseScan(const Stm &S, const ScanExp &E, Sweep &SW,
                         BodyBuilder &BB);
  MaybeError reverseReduceByIndex(const Stm &S, const ReduceByIndexExp &E,
                                  Sweep &SW, BodyBuilder &BB);
  MaybeError reverseLoop(const Stm &S, const LoopExp &E, Sweep &SW,
                         BodyBuilder &BB, const LoopTape &Tape);
  MaybeError reverseConcat(const Stm &S, const ConcatExp &E, Sweep &SW,
                           BodyBuilder &BB);
  MaybeError reverseSlice(const Stm &S, const SliceExp &E, Sweep &SW,
                          BodyBuilder &BB);
  MaybeError reverseReplicate(const Stm &S, const ReplicateExp &E, Sweep &SW,
                              BodyBuilder &BB);

  /// Emits the map-of-pulled-back-lambda shared by reverseMap and the
  /// reduce_by_index value-function pullback: maps \p Fn's pullback over
  /// \p Arrays with per-element result seeds \p SeedArrs (aligned with the
  /// active results of Fn), accumulating adjoints of the active arrays and
  /// of the lambda's free variables.
  MaybeError pullbackThroughMap(const Lambda &Fn,
                                const std::vector<VName> &Arrays,
                                const SubExp &Width,
                                const std::vector<VName> &SeedArrs,
                                Sweep &SW, BodyBuilder &BB);
};

ErrorOr<FunDef> VjpEmitter::run(const FunDef &F) {
  FunDef G;
  G.Name = vjpName(F.Name);

  // Primal parameters, renamed and stripped of uniqueness (the VJP reads
  // every input twice: forward and reverse).
  NameMap<SubExp> ParamSub;
  for (const Param &P : F.Params) {
    VName N = Names.freshFrom(P.Name);
    Type T = P.Ty.asNonUnique();
    ParamSub[P.Name] = SubExp::var(N);
    G.Params.emplace_back(N, T);
    know(N, T);
  }

  // Seed parameters: one per active result, typed like the result with
  // parameter-expressible dimensions.
  std::vector<SubExp> Seeds(F.RetTypes.size(), i32(0));
  for (size_t I = 0; I < F.RetTypes.size(); ++I) {
    Type RT = substituteInType(ParamSub, F.RetTypes[I]).asNonUnique();
    if (!activeType(RT))
      continue;
    for (const Dim &D : RT.shape())
      if (D.isVar() && !TypeOf.count(D.getVar()))
        return unsupported("result " + std::to_string(I) + " of " + F.Name +
                           " has a size (" + D.getVar().str() +
                           ") not expressible from the parameters");
    VName S = Names.fresh("seed");
    G.Params.emplace_back(S, RT);
    know(S, RT);
    Seeds[I] = SubExp::var(S);
  }

  // Return types: primal results, then the adjoint of every active param.
  std::vector<VName> Targets;
  for (const Type &RT : F.RetTypes)
    G.RetTypes.push_back(substituteInType(ParamSub, RT).asNonUnique());
  for (size_t I = 0; I < F.Params.size(); ++I) {
    const Param &NP = G.Params[I];
    if (activeType(NP.Ty)) {
      Targets.push_back(NP.Name);
      G.RetTypes.push_back(NP.Ty);
    }
  }

  BodyBuilder BB(Names);
  auto Out = emitBodyVjp(F.FBody, ParamSub, Seeds, Targets, BB,
                         /*TopLevel=*/true);
  if (!Out)
    return Out.getError();
  std::vector<SubExp> Results = std::move(Out->PrimalResults);
  for (SubExp &A : Out->TargetAdjoints)
    Results.push_back(std::move(A));
  G.FBody = BB.finish(std::move(Results));
  return G;
}

ErrorOr<VjpEmitter::BodyVjp>
VjpEmitter::emitBodyVjp(const Body &B, const NameMap<SubExp> &Outer,
                        const std::vector<SubExp> &Seeds,
                        const std::vector<VName> &Targets, BodyBuilder &BB,
                        bool TopLevel) {
  Body RB = renameBody(B, Names, Outer);

  // Forward sweep: save-on-consume copies, loop tape augmentation, and the
  // renamed statements themselves.
  Sweep SW;
  NameMap<LoopTape> Tapes;
  std::vector<Stm> Order; // reverse-sweep worklist (forward order)
  for (Stm &S : RB.Stms) {
    Order.push_back(S); // copy: the emitted form may be augmented
    if (auto Err = emitForward(std::move(S), SW, BB, Tapes))
      return Err;
  }

  // Seed the result adjoints.  An integer-constant seed is the "no seed"
  // placeholder for a non-active result (a real seed for a float target is
  // never an integer constant), so it is skipped rather than mixed in.
  if (Seeds.size() != RB.Result.size())
    return unsupported("seed arity mismatch (" + std::to_string(Seeds.size()) +
                       " seeds for " + std::to_string(RB.Result.size()) +
                       " results)");
  for (size_t I = 0; I < RB.Result.size(); ++I) {
    if (!RB.Result[I].isVar())
      continue;
    if (Seeds[I].isConst() && !isFloatKind(Seeds[I].getConst().kind()))
      continue;
    if (auto Err = addAdjSub(SW, RB.Result[I], Seeds[I], BB))
      return Err;
  }

  // Reverse sweep.
  for (auto It = Order.rbegin(); It != Order.rend(); ++It)
    if (auto Err = reverseStm(*It, SW, BB, Tapes))
      return Err;

  BodyVjp Out;
  Out.PrimalResults = RB.Result;
  for (const VName &T : Targets) {
    auto A = adjOf(SW, T, BB);
    if (!A)
      return A.getError();
    Out.TargetAdjoints.push_back(*A);
  }
  (void)TopLevel;
  return Out;
}

MaybeError VjpEmitter::emitForward(Stm S, Sweep &SW, BodyBuilder &BB,
                                   NameMap<LoopTape> &Tapes) {
  knowPat(S.Pat);

  // Save-on-consume: before a statement consumes an array, copy it so the
  // reverse sweep can still read the primal value.  (Update and
  // reduce_by_index consume outright; a loop aliases array merge inits
  // into mutable merge state, which the compiled path may overwrite.)
  auto MaybeSave = [&](const VName &A) -> MaybeError {
    if (SW.Saved.count(A))
      return MaybeError::success();
    auto T = typeOfSub(SubExp::var(A));
    if (!T)
      return T.getError();
    if (!T->isArray())
      return MaybeError::success();
    auto C = copyArray(A, BB, "adsave");
    if (!C)
      return C.getError();
    SW.Saved[A] = *C;
    ++Stats.SavedArrays;
    return MaybeError::success();
  };

  if (const auto *U = expDynCast<UpdateExp>(S.E.get())) {
    if (auto Err = MaybeSave(U->Arr))
      return Err;
  } else if (const auto *R = expDynCast<ReduceByIndexExp>(S.E.get())) {
    if (auto Err = MaybeSave(R->Dest))
      return Err;
  } else if (auto *L = expDynCast<LoopExp>(S.E.get())) {
    for (const SubExp &Init : L->MergeInit)
      if (Init.isVar()) {
        auto T = typeOfSub(Init);
        if (T && T->isArray())
          if (auto Err = MaybeSave(Init.getVar()))
            return Err;
      }

    // Tape the loop when any merge parameter is active: record every merge
    // parameter's entry value per iteration (the stack of iterates).
    bool AnyActive = false;
    for (const Param &MP : L->MergeParams)
      if (activeType(MP.Ty))
        AnyActive = true;
    if (AnyActive) {
      LoopTape Tape;
      auto BoundT = typeOfSub(L->Bound);
      if (!BoundT)
        return BoundT.getError();
      std::vector<Param> AugParams = L->MergeParams;
      std::vector<SubExp> AugInit = L->MergeInit;
      std::vector<Stm> TapeWrites;
      std::vector<SubExp> TapeResults;
      for (const Param &MP : L->MergeParams) {
        Type TapeTy = MP.Ty.asNonUnique().arrayOf(L->Bound);
        SubExp TZ = zeroOf(TapeTy, BB);
        VName TP = Names.fresh("adtape");
        know(TP, TapeTy);
        AugParams.emplace_back(TP, TapeTy);
        AugInit.push_back(TZ);
        // adtape' = adtape with [i] <- merge-param (observed before the
        // body can consume the merge parameter).
        VName TPW = Names.fresh("adtape");
        know(TPW, TapeTy);
        TapeWrites.emplace_back(
            std::vector<Param>{Param(TPW, TapeTy)},
            std::make_unique<UpdateExp>(
                TP, std::vector<SubExp>{SubExp::var(L->IndexVar)},
                SubExp::var(MP.Name)));
        TapeResults.push_back(SubExp::var(TPW));
      }
      Body AugBody;
      AugBody.Stms = std::move(TapeWrites);
      for (Stm &BS : L->LoopBody.Stms)
        AugBody.Stms.push_back(std::move(BS));
      AugBody.Result = L->LoopBody.Result;
      for (SubExp &TR : TapeResults)
        AugBody.Result.push_back(TR);

      std::vector<Param> AugPat = S.Pat;
      for (size_t J = 0; J < L->MergeParams.size(); ++J) {
        Type TapeTy = L->MergeParams[J].Ty.asNonUnique().arrayOf(L->Bound);
        VName TO = Names.fresh("adtape");
        know(TO, TapeTy);
        AugPat.emplace_back(TO, TapeTy);
        Tape.TapeArrays.push_back(TO);
      }
      ++Stats.TapedLoops;
      Tapes.emplace(S.Pat[0].Name, Tape);
      BB.append(std::move(AugPat),
                std::make_unique<LoopExp>(std::move(AugParams),
                                          std::move(AugInit), L->IndexVar,
                                          L->Bound, std::move(AugBody)));
      return MaybeError::success();
    }
  }

  BB.append(std::move(S));
  return MaybeError::success();
}

MaybeError VjpEmitter::reverseStm(const Stm &S, Sweep &SW, BodyBuilder &BB,
                                  const NameMap<LoopTape> &Tapes) {
  const Exp &E = *S.E;
  // A statement participates in the reverse sweep only when an adjoint
  // actually reached one of its bindings.
  if (!anyPatAdj(SW, S.Pat))
    return MaybeError::success();
  ++Stats.DifferentiatedStms;

  switch (E.kind()) {
  case ExpKind::SubExpE: {
    const auto *X = expCast<SubExpExp>(&E);
    auto A = adjOf(SW, S.Pat[0].Name, BB);
    if (!A)
      return A.getError();
    return addAdjSub(SW, X->Val, *A, BB);
  }
  case ExpKind::BinOpE:
    return reverseBinOp(S, *expCast<BinOpExp>(&E), SW, BB);
  case ExpKind::UnOpE:
    return reverseUnOp(S, *expCast<UnOpExp>(&E), SW, BB);
  case ExpKind::ConvOpE: {
    const auto *X = expCast<ConvOpExp>(&E);
    if (!isFloatKind(X->Op.From))
      return MaybeError::success(); // d(conv int->float)/d int = 0
    auto A = adjOf(SW, S.Pat[0].Name, BB);
    if (!A)
      return A.getError();
    if (!isFloatKind(X->Op.To))
      return MaybeError::success();
    SubExp C = BB.convOp(X->Op.To, X->Op.From, *A, "adj");
    know(C.getVar(), Type::scalar(X->Op.From));
    return addAdjSub(SW, X->A, C, BB);
  }
  case ExpKind::If:
    return reverseIf(S, *expCast<IfExp>(&E), SW, BB);
  case ExpKind::Index:
    return reverseIndex(S, *expCast<IndexExp>(&E), SW, BB);
  case ExpKind::Apply:
    return unsupported("cannot differentiate a call to " +
                       expCast<ApplyExp>(&E)->Func +
                       " (functions must be inlined before --vjp)");
  case ExpKind::Loop: {
    auto It = Tapes.find(S.Pat[0].Name);
    if (It == Tapes.end())
      return MaybeError::success(); // no active merge: nothing flows
    return reverseLoop(S, *expCast<LoopExp>(&E), SW, BB, It->second);
  }
  case ExpKind::Update:
    return reverseUpdate(S, *expCast<UpdateExp>(&E), SW, BB);
  case ExpKind::Iota:
    return MaybeError::success();
  case ExpKind::Replicate:
    return reverseReplicate(S, *expCast<ReplicateExp>(&E), SW, BB);
  case ExpKind::Rearrange: {
    const auto *X = expCast<RearrangeExp>(&E);
    auto A = adjOf(SW, S.Pat[0].Name, BB);
    if (!A)
      return A.getError();
    auto XT = typeOfSub(SubExp::var(X->Arr));
    if (!XT)
      return XT.getError();
    VName R = BB.bind("adj", XT->asNonUnique(),
                      std::make_unique<RearrangeExp>(inversePerm(X->Perm),
                                                     A->getVar()));
    know(R, XT->asNonUnique());
    return addAdj(SW, X->Arr, SubExp::var(R), BB);
  }
  case ExpKind::Reshape: {
    const auto *X = expCast<ReshapeExp>(&E);
    auto A = adjOf(SW, S.Pat[0].Name, BB);
    if (!A)
      return A.getError();
    auto XT = typeOfSub(SubExp::var(X->Arr));
    if (!XT)
      return XT.getError();
    VName R = BB.bind("adj", XT->asNonUnique(),
                      std::make_unique<ReshapeExp>(XT->shape(), A->getVar()));
    know(R, XT->asNonUnique());
    return addAdj(SW, X->Arr, SubExp::var(R), BB);
  }
  case ExpKind::Concat:
    return reverseConcat(S, *expCast<ConcatExp>(&E), SW, BB);
  case ExpKind::Copy: {
    const auto *X = expCast<CopyExp>(&E);
    auto A = adjOf(SW, S.Pat[0].Name, BB);
    if (!A)
      return A.getError();
    return addAdj(SW, X->Arr, *A, BB);
  }
  case ExpKind::Slice:
    return reverseSlice(S, *expCast<SliceExp>(&E), SW, BB);
  case ExpKind::Map:
    return reverseMap(S, *expCast<MapExp>(&E), SW, BB);
  case ExpKind::Reduce:
    return reverseReduce(S, *expCast<ReduceExp>(&E), SW, BB);
  case ExpKind::Scan:
    return reverseScan(S, *expCast<ScanExp>(&E), SW, BB);
  case ExpKind::Stream:
    return unsupported(std::string("cannot differentiate ") +
                       expCast<StreamExp>(&E)->formName());
  case ExpKind::ReduceByIndex:
    return reverseReduceByIndex(S, *expCast<ReduceByIndexExp>(&E), SW, BB);
  case ExpKind::Kernel:
    return unsupported("cannot differentiate an extracted kernel (run "
                       "--vjp before kernel extraction)");
  }
  return MaybeError::success();
}

MaybeError VjpEmitter::reverseBinOp(const Stm &S, const BinOpExp &E, Sweep &SW,
                                    BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT))
    return MaybeError::success();
  ScalarKind K = YT.elemKind();
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  SubExp A = prim(SW, E.A), B = prim(SW, E.B);
  SubExp Y = SubExp::var(S.Pat[0].Name);
  switch (E.Op) {
  case BinOp::Add: {
    if (auto Err = addAdjSub(SW, E.A, *YB, BB))
      return Err;
    return addAdjSub(SW, E.B, *YB, BB);
  }
  case BinOp::Sub: {
    if (auto Err = addAdjSub(SW, E.A, *YB, BB))
      return Err;
    SubExp N = BB.unOp(UnOp::Neg, *YB, K, "adj");
    know(N.getVar(), Type::scalar(K));
    return addAdjSub(SW, E.B, N, BB);
  }
  case BinOp::Mul: {
    SubExp DA = BB.binOp(BinOp::Mul, *YB, B, K, "adj");
    know(DA.getVar(), Type::scalar(K));
    if (auto Err = addAdjSub(SW, E.A, DA, BB))
      return Err;
    SubExp DB = BB.binOp(BinOp::Mul, *YB, A, K, "adj");
    know(DB.getVar(), Type::scalar(K));
    return addAdjSub(SW, E.B, DB, BB);
  }
  case BinOp::Div: {
    SubExp DA = BB.binOp(BinOp::Div, *YB, B, K, "adj");
    know(DA.getVar(), Type::scalar(K));
    if (auto Err = addAdjSub(SW, E.A, DA, BB))
      return Err;
    if (E.B.isVar()) {
      // d/db (a/b) = -a/b^2 = -(y/b)
      SubExp T1 = BB.binOp(BinOp::Mul, *YB, Y, K, "adj");
      SubExp T2 = BB.binOp(BinOp::Div, T1, B, K, "adj");
      SubExp T3 = BB.unOp(UnOp::Neg, T2, K, "adj");
      know(T3.getVar(), Type::scalar(K));
      return addAdjSub(SW, E.B, T3, BB);
    }
    return MaybeError::success();
  }
  case BinOp::Pow: {
    // d/da a^b = b * a^(b-1); d/db a^b = a^b * log a.
    SubExp BM1 = BB.binOp(BinOp::Sub, B, oneConst(K), K, "adj");
    SubExp P = BB.binOp(BinOp::Pow, A, BM1, K, "adj");
    SubExp T1 = BB.binOp(BinOp::Mul, *YB, B, K, "adj");
    SubExp DA = BB.binOp(BinOp::Mul, T1, P, K, "adj");
    know(DA.getVar(), Type::scalar(K));
    if (auto Err = addAdjSub(SW, E.A, DA, BB))
      return Err;
    if (E.B.isVar()) {
      SubExp L = BB.unOp(UnOp::Log, A, K, "adj");
      SubExp T2 = BB.binOp(BinOp::Mul, *YB, Y, K, "adj");
      SubExp DB = BB.binOp(BinOp::Mul, T2, L, K, "adj");
      know(DB.getVar(), Type::scalar(K));
      return addAdjSub(SW, E.B, DB, BB);
    }
    return MaybeError::success();
  }
  case BinOp::Min:
  case BinOp::Max: {
    // The seed routes to whichever operand attains the result (ties to A,
    // matching the evaluator's pick).
    BinOp Cmp = E.Op == BinOp::Min ? BinOp::Leq : BinOp::Geq;
    SubExp C = BB.binOp(Cmp, A, B, K, "adc");
    know(C.getVar(), Type::scalar(ScalarKind::Bool));
    std::vector<Type> RT{Type::scalar(K), Type::scalar(K)};
    Body Then({}, {*YB, zeroConst(K)});
    Body Else({}, {zeroConst(K), *YB});
    std::vector<VName> Split = BB.bindMulti(
        "adj", RT,
        std::make_unique<IfExp>(C, std::move(Then), std::move(Else), RT));
    know(Split[0], Type::scalar(K));
    know(Split[1], Type::scalar(K));
    if (auto Err = addAdjSub(SW, E.A, SubExp::var(Split[0]), BB))
      return Err;
    return addAdjSub(SW, E.B, SubExp::var(Split[1]), BB);
  }
  default:
    // Comparisons and logical operators produce booleans: inactive.
    return MaybeError::success();
  }
}

MaybeError VjpEmitter::reverseUnOp(const Stm &S, const UnOpExp &E, Sweep &SW,
                                   BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT))
    return MaybeError::success();
  ScalarKind K = YT.elemKind();
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  SubExp A = prim(SW, E.A);
  SubExp Y = SubExp::var(S.Pat[0].Name);
  SubExp D;
  switch (E.Op) {
  case UnOp::Neg:
    D = BB.unOp(UnOp::Neg, *YB, K, "adj");
    break;
  case UnOp::Abs: {
    SubExp Sg = BB.unOp(UnOp::Signum, A, K, "adj");
    D = BB.binOp(BinOp::Mul, *YB, Sg, K, "adj");
    break;
  }
  case UnOp::Sqrt: {
    // d sqrt a = 1/(2 sqrt a) = 0.5/y.
    SubExp H = K == ScalarKind::F32 ? f32c(0.5f) : f64c(0.5);
    SubExp T = BB.binOp(BinOp::Mul, *YB, H, K, "adj");
    D = BB.binOp(BinOp::Div, T, Y, K, "adj");
    break;
  }
  case UnOp::Exp:
    D = BB.binOp(BinOp::Mul, *YB, Y, K, "adj");
    break;
  case UnOp::Log:
    D = BB.binOp(BinOp::Div, *YB, A, K, "adj");
    break;
  case UnOp::Sin: {
    SubExp C = BB.unOp(UnOp::Cos, A, K, "adj");
    D = BB.binOp(BinOp::Mul, *YB, C, K, "adj");
    break;
  }
  case UnOp::Cos: {
    SubExp Sn = BB.unOp(UnOp::Sin, A, K, "adj");
    SubExp T = BB.binOp(BinOp::Mul, *YB, Sn, K, "adj");
    D = BB.unOp(UnOp::Neg, T, K, "adj");
    break;
  }
  case UnOp::Tan: {
    SubExp C = BB.unOp(UnOp::Cos, A, K, "adj");
    SubExp C2 = BB.binOp(BinOp::Mul, C, C, K, "adj");
    D = BB.binOp(BinOp::Div, *YB, C2, K, "adj");
    break;
  }
  case UnOp::Atan: {
    SubExp A2 = BB.binOp(BinOp::Mul, A, A, K, "adj");
    SubExp Dn = BB.binOp(BinOp::Add, oneConst(K), A2, K, "adj");
    D = BB.binOp(BinOp::Div, *YB, Dn, K, "adj");
    break;
  }
  case UnOp::Floor:
  case UnOp::Signum:
    return MaybeError::success(); // zero derivative a.e.
  case UnOp::Not:
    return MaybeError::success();
  }
  know(D.getVar(), Type::scalar(K));
  return addAdjSub(SW, E.A, D, BB);
}

MaybeError VjpEmitter::reverseIndex(const Stm &S, const IndexExp &E, Sweep &SW,
                                    BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT))
    return MaybeError::success();
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  auto AT = typeOfSub(SubExp::var(E.Arr));
  if (!AT)
    return AT.getError();
  auto XB = adjOf(SW, E.Arr, BB);
  if (!XB)
    return XB.getError();
  std::vector<SubExp> Idx;
  for (const SubExp &I : E.Indices)
    Idx.push_back(prim(SW, I));

  // Read-add-update on the adjoint array.  The current adjoint may be
  // shared with another name's adjoint (aliasing lets), so update a fresh
  // copy rather than consuming the shared value.
  VName Cell = BB.bind("adx", YT.asNonUnique(),
                       std::make_unique<IndexExp>(XB->getVar(), Idx));
  know(Cell, YT.asNonUnique());
  SubExp Sum = addValues(SubExp::var(Cell), *YB, YT.asNonUnique(), BB);
  auto Copy = copyArray(XB->getVar(), BB);
  if (!Copy)
    return Copy.getError();
  VName Upd = BB.bind("adj", AT->asNonUnique(),
                      std::make_unique<UpdateExp>(*Copy, Idx, Sum));
  know(Upd, AT->asNonUnique());
  SW.Adj[E.Arr] = SubExp::var(Upd);
  return MaybeError::success();
}

MaybeError VjpEmitter::reverseUpdate(const Stm &S, const UpdateExp &E,
                                     Sweep &SW, BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT))
    return MaybeError::success();
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  std::vector<SubExp> Idx;
  for (const SubExp &I : E.Indices)
    Idx.push_back(prim(SW, I));
  Type CellT = YT.peel(static_cast<int>(Idx.size())).asNonUnique();

  // The stored value receives the adjoint of the overwritten cell.
  if (E.Value.isVar()) {
    VName Cell = BB.bind("adx", CellT,
                         std::make_unique<IndexExp>(YB->getVar(), Idx));
    know(Cell, CellT);
    if (auto Err = addAdjSub(SW, E.Value, SubExp::var(Cell), BB))
      return Err;
  }

  // The array's adjoint is the result adjoint with the written cell
  // masked out (that cell's pre-update value never reached the output).
  auto Copy = copyArray(YB->getVar(), BB);
  if (!Copy)
    return Copy.getError();
  SubExp Z = zeroOf(CellT, BB);
  VName Masked = BB.bind("adj", YT.asNonUnique(),
                         std::make_unique<UpdateExp>(*Copy, Idx, Z));
  know(Masked, YT.asNonUnique());
  return addAdj(SW, E.Arr, SubExp::var(Masked), BB);
}

MaybeError VjpEmitter::reverseIf(const Stm &S, const IfExp &E, Sweep &SW,
                                 BodyBuilder &BB) {
  // Adjoint targets: every active free variable either branch touches
  // (the bool condition is structurally non-active).
  NameSet Exclude;
  std::vector<VName> Targets = activeFreeVars(E, Exclude);
  if (Targets.empty())
    return MaybeError::success();

  // Seeds: the adjoints of the if's bindings.
  std::vector<SubExp> ThenSeeds, ElseSeeds;
  for (const Param &P : S.Pat) {
    if (activeType(P.Ty) && hasAdj(SW, P.Name)) {
      auto A = adjOf(SW, P.Name, BB);
      if (!A)
        return A.getError();
      ThenSeeds.push_back(*A);
    } else {
      ThenSeeds.push_back(i32(0)); // inactive: never read
    }
  }
  ElseSeeds = ThenSeeds;

  // Re-run each branch forward (recompute; branch bodies are pure) and
  // pull back, substituting save-on-consume copies for anything the
  // enclosing forward sweep consumed.
  NameMap<SubExp> Outer;
  for (const auto &KV : SW.Saved)
    Outer[KV.first] = SubExp::var(KV.second);

  std::vector<Type> RT;
  for (const VName &T : Targets) {
    auto TT = typeOfSub(SubExp::var(T));
    if (!TT)
      return TT.getError();
    RT.push_back(TT->asNonUnique());
  }

  BodyBuilder ThenBB(Names);
  auto ThenOut = emitBodyVjp(E.Then, Outer, ThenSeeds, Targets, ThenBB);
  if (!ThenOut)
    return ThenOut.getError();
  Body ThenBody = ThenBB.finish(std::move(ThenOut->TargetAdjoints));

  BodyBuilder ElseBB(Names);
  auto ElseOut = emitBodyVjp(E.Else, Outer, ElseSeeds, Targets, ElseBB);
  if (!ElseOut)
    return ElseOut.getError();
  Body ElseBody = ElseBB.finish(std::move(ElseOut->TargetAdjoints));

  std::vector<VName> Contribs = BB.bindMulti(
      "adj", RT,
      std::make_unique<IfExp>(E.Cond, std::move(ThenBody),
                              std::move(ElseBody), RT));
  for (size_t I = 0; I < Targets.size(); ++I) {
    know(Contribs[I], RT[I]);
    if (auto Err = addAdj(SW, Targets[I], SubExp::var(Contribs[I]), BB))
      return Err;
  }
  return MaybeError::success();
}

MaybeError VjpEmitter::pullbackThroughMap(const Lambda &Fn,
                                          const std::vector<VName> &Arrays,
                                          const SubExp &Width,
                                          const std::vector<VName> &SeedArrs,
                                          Sweep &SW, BodyBuilder &BB) {
  // Fresh lambda parameters for the pullback instance.
  NameMap<SubExp> Outer;
  for (const auto &KV : SW.Saved)
    Outer[KV.first] = SubExp::var(KV.second);
  std::vector<Param> GParams;
  for (const Param &P : Fn.Params) {
    VName N = Names.freshFrom(P.Name);
    Type T = P.Ty.asNonUnique();
    Outer[P.Name] = SubExp::var(N);
    GParams.emplace_back(N, T);
    know(N, T);
  }
  // Seed-row parameters, one per active lambda result.
  std::vector<SubExp> Seeds(Fn.RetTypes.size(), i32(0));
  size_t SeedIdx = 0;
  for (size_t I = 0; I < Fn.RetTypes.size(); ++I) {
    if (!activeType(Fn.RetTypes[I]))
      continue;
    VName SN = Names.fresh("adseed");
    Type ST = Fn.RetTypes[I].asNonUnique();
    GParams.emplace_back(SN, ST);
    know(SN, ST);
    Seeds[I] = SubExp::var(SN);
    ++SeedIdx;
  }
  if (SeedIdx != SeedArrs.size())
    return unsupported("internal: seed-array arity mismatch in map pullback");

  // Targets: the active inputs (by their fresh parameter names), then the
  // lambda's active free variables.
  NameSet ParamNames;
  for (const Param &P : Fn.Params)
    ParamNames.insert(P.Name);
  std::vector<VName> FreeTargets;
  {
    NameSet FV = freeVarsInLambda(Fn);
    std::vector<VName> Sorted(FV.begin(), FV.end());
    std::sort(Sorted.begin(), Sorted.end());
    for (const VName &N : Sorted) {
      auto It = TypeOf.find(N);
      if (It != TypeOf.end() && activeType(It->second))
        FreeTargets.push_back(N);
    }
  }
  std::vector<int> ActiveInputs;
  std::vector<VName> Targets;
  for (size_t I = 0; I < Fn.Params.size(); ++I)
    if (activeType(Fn.Params[I].Ty)) {
      ActiveInputs.push_back(static_cast<int>(I));
      Targets.push_back(GParams[I].Name);
    }
  for (const VName &N : FreeTargets)
    Targets.push_back(N);
  if (Targets.empty())
    return MaybeError::success();

  std::vector<Type> GRet;
  for (int I : ActiveInputs)
    GRet.push_back(Fn.Params[I].Ty.asNonUnique());
  for (const VName &N : FreeTargets)
    GRet.push_back(TypeOf.at(N).asNonUnique());

  BodyBuilder GB(Names);
  auto GOut = emitBodyVjp(Fn.B, Outer, Seeds, Targets, GB);
  if (!GOut)
    return GOut.getError();
  Lambda G(std::move(GParams), GB.finish(std::move(GOut->TargetAdjoints)),
           GRet);

  std::vector<VName> MapArrays = Arrays;
  for (const VName &SA : SeedArrs)
    MapArrays.push_back(SA);
  std::vector<Type> ColTypes;
  for (const Type &T : GRet)
    ColTypes.push_back(T.arrayOf(Width));
  std::vector<VName> Cols = BB.bindMulti(
      "adcol", ColTypes,
      std::make_unique<MapExp>(Width, std::move(G), std::move(MapArrays)));
  for (size_t I = 0; I < Cols.size(); ++I)
    know(Cols[I], ColTypes[I]);

  // Input adjoints: elementwise accumulation of the contribution columns.
  size_t Col = 0;
  for (int I : ActiveInputs) {
    if (auto Err = addAdj(SW, Arrays[I], SubExp::var(Cols[Col]), BB))
      return Err;
    ++Col;
  }
  // Free-variable adjoints: reduce each contribution column with (+).
  for (const VName &N : FreeTargets) {
    Type T = TypeOf.at(N).asNonUnique();
    Lambda AddL = addLambda(T);
    SubExp Z = zeroOf(T, BB);
    std::vector<Type> RT{T};
    std::vector<VName> Red = BB.bindMulti(
        "adred", RT,
        std::make_unique<ReduceExp>(Width, std::move(AddL),
                                    std::vector<SubExp>{Z},
                                    std::vector<VName>{Cols[Col]},
                                    /*Commutative=*/true));
    know(Red[0], T);
    if (auto Err = addAdj(SW, N, SubExp::var(Red[0]), BB))
      return Err;
    ++Col;
  }
  return MaybeError::success();
}

MaybeError VjpEmitter::reverseMap(const Stm &S, const MapExp &E, Sweep &SW,
                                  BodyBuilder &BB) {
  // Seed arrays: the adjoints of the active outputs.
  std::vector<VName> SeedArrs;
  bool Any = false;
  for (size_t I = 0; I < S.Pat.size(); ++I)
    if (activeType(S.Pat[I].Ty) && hasAdj(SW, S.Pat[I].Name))
      Any = true;
  if (!Any)
    return MaybeError::success();
  for (size_t I = 0; I < S.Pat.size(); ++I) {
    if (!activeType(S.Pat[I].Ty))
      continue;
    auto A = adjOf(SW, S.Pat[I].Name, BB);
    if (!A)
      return A.getError();
    SeedArrs.push_back(A->getVar());
  }
  std::vector<VName> Arrays;
  for (const VName &A : E.Arrays)
    Arrays.push_back(primVar(SW, A));
  return pullbackThroughMap(E.Fn, Arrays, E.Width, SeedArrs, SW, BB);
}

MaybeError VjpEmitter::reverseReduce(const Stm &S, const ReduceExp &E,
                                     Sweep &SW, BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT))
    return MaybeError::success();
  if (E.Arrays.size() != 1 || S.Pat.size() != 1)
    return unsupported("cannot differentiate a multi-array reduce");
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  VName Xs = primVar(SW, E.Arrays[0]);
  auto XT = typeOfSub(SubExp::var(Xs));
  if (!XT)
    return XT.getError();

  BinOp Op;
  bool Vectorised = false;
  if (!matchBinOpLambda(E.Fn, Op)) {
    if (matchVectorisedBinOpLambda(E.Fn, Op))
      Vectorised = true;
    else
      return unsupported("cannot differentiate a reduce with a "
                         "non-linearisable operator");
  }

  if (Op == BinOp::Add) {
    // d/dx_i (ne + sum x) = 1: broadcast the seed.
    Type RowT = YT.asNonUnique();
    VName Contrib = BB.bind(
        "adj", RowT.arrayOf(E.Width),
        std::make_unique<ReplicateExp>(E.Width, *YB, RowT));
    know(Contrib, RowT.arrayOf(E.Width));
    if (auto Err = addAdj(SW, E.Arrays[0], SubExp::var(Contrib), BB))
      return Err;
    return addAdjSub(SW, E.Neutral[0], *YB, BB);
  }
  if (Vectorised)
    return unsupported("cannot differentiate a vectorised reduce with a "
                       "non-additive operator");

  ScalarKind K = YT.elemKind();

  if (Op == BinOp::Mul) {
    // Linearise-exchange for products: xbar_i = ybar * ne * pfx_i * sfx_i
    // with exclusive prefix/suffix products, via two sequential host
    // sweeps (the exchange stage; map-level adjoints stay parallel).
    Type ArrT = Type::array(K, {E.Width});
    SubExp PfxZ = zeroOf(ArrT, BB);
    VName Pa = Names.fresh("adpfx");
    VName Acc = Names.fresh("adacc");
    VName Iv = Names.fresh("adi");
    know(Pa, ArrT);
    know(Acc, Type::scalar(K));
    {
      BodyBuilder LB(Names);
      VName PaW = LB.bind("adpfx", ArrT,
                          std::make_unique<UpdateExp>(
                              Pa, std::vector<SubExp>{SubExp::var(Iv)},
                              SubExp::var(Acc)));
      VName Xi = LB.bind("adx", Type::scalar(K),
                         std::make_unique<IndexExp>(
                             Xs, std::vector<SubExp>{SubExp::var(Iv)}));
      SubExp AccN = LB.binOp(BinOp::Mul, SubExp::var(Acc), SubExp::var(Xi), K,
                             "adacc");
      std::vector<Param> MPs{Param(Pa, ArrT), Param(Acc, Type::scalar(K))};
      std::vector<SubExp> MInit{PfxZ, oneConst(K)};
      std::vector<Type> PatT{ArrT, Type::scalar(K)};
      std::vector<VName> Out = BB.bindMulti(
          "adpfxr", PatT,
          std::make_unique<LoopExp>(std::move(MPs), std::move(MInit), Iv,
                                    E.Width,
                                    LB.finish({SubExp::var(PaW), AccN})));
      know(Out[0], ArrT);
      know(Out[1], Type::scalar(K));
      Pa = Out[0];
      Acc = Out[1]; // total product of xs
    }
    // Neutral adjoint: d/dne (ne * prod x) = prod x.
    if (E.Neutral[0].isVar()) {
      SubExp DN = BB.binOp(BinOp::Mul, *YB, SubExp::var(Acc), K, "adj");
      if (auto Err = addAdjSub(SW, E.Neutral[0], DN, BB))
        return Err;
    }
    // Backward sweep: xbar_i = ybar * ne * pfx_i * sfx, sfx *= x_i.
    SubExp Ne = prim(SW, E.Neutral[0]);
    Type XArrT = XT->asNonUnique();
    SubExp XbZ = zeroOf(XArrT, BB);
    auto W32 = boundAsI32(E.Width, BB);
    if (!W32)
      return W32.getError();
    VName Xb = Names.fresh("adxb");
    VName Sfx = Names.fresh("adsfx");
    VName Ir = Names.fresh("adir");
    know(Xb, XArrT);
    know(Sfx, Type::scalar(K));
    {
      BodyBuilder LB(Names);
      SubExp WM1 = LB.binOp(BinOp::Sub, *W32, oneConst(ScalarKind::I32),
                            ScalarKind::I32, "adi");
      SubExp I = LB.binOp(BinOp::Sub, WM1, SubExp::var(Ir), ScalarKind::I32,
                          "adi");
      VName Pi = LB.bind("adp", Type::scalar(K),
                         std::make_unique<IndexExp>(Pa,
                                                    std::vector<SubExp>{I}));
      SubExp T1 = LB.binOp(BinOp::Mul, *YB, Ne, K, "adj");
      SubExp T2 = LB.binOp(BinOp::Mul, T1, SubExp::var(Pi), K, "adj");
      SubExp T3 = LB.binOp(BinOp::Mul, T2, SubExp::var(Sfx), K, "adj");
      VName XbW = LB.bind("adxb", XArrT,
                          std::make_unique<UpdateExp>(
                              Xb, std::vector<SubExp>{I}, T3));
      VName Xi = LB.bind("adx", Type::scalar(K),
                         std::make_unique<IndexExp>(Xs,
                                                    std::vector<SubExp>{I}));
      SubExp SfxN = LB.binOp(BinOp::Mul, SubExp::var(Sfx), SubExp::var(Xi), K,
                             "adsfx");
      std::vector<Param> MPs{Param(Xb, XArrT), Param(Sfx, Type::scalar(K))};
      std::vector<SubExp> MInit{XbZ, oneConst(K)};
      std::vector<Type> PatT{XArrT, Type::scalar(K)};
      std::vector<VName> Out = BB.bindMulti(
          "adxbr", PatT,
          std::make_unique<LoopExp>(std::move(MPs), std::move(MInit), Ir,
                                    *W32,
                                    LB.finish({SubExp::var(XbW), SfxN})));
      know(Out[0], XArrT);
      return addAdj(SW, E.Arrays[0], SubExp::var(Out[0]), BB);
    }
  }

  if (Op == BinOp::Min || Op == BinOp::Max) {
    // Route the seed to the first element attaining the result; when the
    // neutral element wins, the seed goes to it instead.
    SubExp Y = SubExp::var(S.Pat[0].Name);
    Type XArrT = XT->asNonUnique();
    SubExp XbZ = zeroOf(XArrT, BB);
    VName Xb = Names.fresh("adxb");
    VName Best = Names.fresh("adk");
    VName Iv = Names.fresh("adi");
    know(Xb, XArrT);
    know(Best, Type::scalar(ScalarKind::Bool));
    {
      // One sweep: find-first-and-write.  done' = done || (x_i == y);
      // xbar_i = (!done && x_i == y) ? ybar : 0.
      BodyBuilder LB(Names);
      VName Xi = LB.bind("adx", Type::scalar(K),
                         std::make_unique<IndexExp>(
                             Xs, std::vector<SubExp>{SubExp::var(Iv)}));
      SubExp IsY = LB.binOp(BinOp::Eq, SubExp::var(Xi), Y, K, "adc");
      SubExp NotDone = LB.unOp(UnOp::Not, SubExp::var(Best), ScalarKind::Bool,
                               "adc");
      SubExp Take = LB.binOp(BinOp::LogAnd, NotDone, IsY, ScalarKind::Bool,
                             "adc");
      std::vector<Type> CT{Type::scalar(K)};
      Body Then({}, {*YB});
      Body Else({}, {zeroConst(K)});
      std::vector<VName> Val = LB.bindMulti(
          "adj", CT,
          std::make_unique<IfExp>(Take, std::move(Then), std::move(Else), CT));
      VName XbW = LB.bind("adxb", XArrT,
                          std::make_unique<UpdateExp>(
                              Xb, std::vector<SubExp>{SubExp::var(Iv)},
                              SubExp::var(Val[0])));
      SubExp DoneN = LB.binOp(BinOp::LogOr, SubExp::var(Best), IsY,
                              ScalarKind::Bool, "add");
      std::vector<Param> MPs{Param(Xb, XArrT),
                             Param(Best, Type::scalar(ScalarKind::Bool))};
      std::vector<SubExp> MInit{XbZ, boolc(false)};
      std::vector<Type> PatT{XArrT, Type::scalar(ScalarKind::Bool)};
      std::vector<VName> Out = BB.bindMulti(
          "adxbr", PatT,
          std::make_unique<LoopExp>(std::move(MPs), std::move(MInit), Iv,
                                    E.Width,
                                    LB.finish({SubExp::var(XbW), DoneN})));
      know(Out[0], XArrT);
      know(Out[1], Type::scalar(ScalarKind::Bool));
      if (auto Err = addAdj(SW, E.Arrays[0], SubExp::var(Out[0]), BB))
        return Err;
      // Neutral adjoint: the seed when no element attained the result.
      if (E.Neutral[0].isVar()) {
        std::vector<Type> CT{Type::scalar(K)};
        SubExp NotAny = BB.unOp(UnOp::Not, SubExp::var(Out[1]),
                                ScalarKind::Bool, "adc");
        Body Then({}, {*YB});
        Body Else({}, {zeroConst(K)});
        std::vector<VName> NeC = BB.bindMulti(
            "adj", CT,
            std::make_unique<IfExp>(NotAny, std::move(Then), std::move(Else),
                                    CT));
        know(NeC[0], Type::scalar(K));
        return addAdjSub(SW, E.Neutral[0], SubExp::var(NeC[0]), BB);
      }
      return MaybeError::success();
    }
  }
  return unsupported("cannot differentiate reduce (" +
                     std::string(binOpName(Op)) + ")");
}

MaybeError VjpEmitter::reverseScan(const Stm &S, const ScanExp &E, Sweep &SW,
                                   BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT))
    return MaybeError::success();
  if (E.Arrays.size() != 1 || S.Pat.size() != 1)
    return unsupported("cannot differentiate a multi-array scan");
  BinOp Op;
  if (!matchBinOpLambda(E.Fn, Op) || Op != BinOp::Add)
    return unsupported("cannot differentiate a scan with a non-(+) operator");
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  ScalarKind K = YT.elemKind();
  auto XT = typeOfSub(SubExp::var(E.Arrays[0]));
  if (!XT)
    return XT.getError();

  // scan(+): xbar_i = sum_{j >= i} ybar_j — the suffix sum, swept
  // backwards sequentially (the exchange stage of the decomposition).
  Type XArrT = XT->asNonUnique();
  SubExp XbZ = zeroOf(XArrT, BB);
  auto W32 = boundAsI32(E.Width, BB);
  if (!W32)
    return W32.getError();
  VName Xb = Names.fresh("adxb");
  VName Run = Names.fresh("adrun");
  VName Ir = Names.fresh("adir");
  know(Xb, XArrT);
  know(Run, Type::scalar(K));
  BodyBuilder LB(Names);
  SubExp WM1 = LB.binOp(BinOp::Sub, *W32, oneConst(ScalarKind::I32),
                        ScalarKind::I32, "adi");
  SubExp I = LB.binOp(BinOp::Sub, WM1, SubExp::var(Ir), ScalarKind::I32,
                      "adi");
  VName Yi = LB.bind("ady", Type::scalar(K),
                     std::make_unique<IndexExp>(YB->getVar(),
                                                std::vector<SubExp>{I}));
  SubExp RunN = LB.binOp(BinOp::Add, SubExp::var(Run), SubExp::var(Yi), K,
                         "adrun");
  VName XbW = LB.bind("adxb", XArrT,
                      std::make_unique<UpdateExp>(Xb, std::vector<SubExp>{I},
                                                  RunN));
  std::vector<Param> MPs{Param(Xb, XArrT), Param(Run, Type::scalar(K))};
  std::vector<SubExp> MInit{XbZ, zeroConst(K)};
  std::vector<Type> PatT{XArrT, Type::scalar(K)};
  std::vector<VName> Out = BB.bindMulti(
      "adxbr", PatT,
      std::make_unique<LoopExp>(std::move(MPs), std::move(MInit), Ir, *W32,
                                LB.finish({SubExp::var(XbW), RunN})));
  know(Out[0], XArrT);
  know(Out[1], Type::scalar(K));
  if (auto Err = addAdj(SW, E.Arrays[0], SubExp::var(Out[0]), BB))
    return Err;
  // Neutral adjoint: ne enters every prefix, so it receives sum ybar.
  if (E.Neutral[0].isVar())
    return addAdjSub(SW, E.Neutral[0], SubExp::var(Out[1]), BB);
  return MaybeError::success();
}

MaybeError VjpEmitter::reverseReduceByIndex(const Stm &S,
                                            const ReduceByIndexExp &E,
                                            Sweep &SW, BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT))
    return MaybeError::success();
  BinOp Op;
  if (!matchBinOpLambda(E.CombineFn, Op) || Op != BinOp::Add)
    return unsupported("cannot differentiate reduce_by_index with a "
                       "non-(+) combine function");
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  ScalarKind K = YT.elemKind();

  // dest adjoint: with (+) combine, y = dest + contributions elementwise.
  if (auto Err = addAdj(SW, E.Dest, *YB, BB))
    return Err;

  // Gather-of-contributions: element j receives ybar[is[j]] when its bin
  // was in range, 0 otherwise — a sequential gather sweep (mirroring the
  // forward histogram loop's schedule on the host).
  VName Is = primVar(SW, E.IndexArr);
  auto IsT = typeOfSub(SubExp::var(Is));
  if (!IsT)
    return IsT.getError();
  ScalarKind BK = IsT->elemKind();
  SubExp N = IsT->outerDim();
  Type SeedArrT = Type::array(K, {N});
  SubExp SaZ = zeroOf(SeedArrT, BB);
  VName Sa = Names.fresh("adga");
  VName Jv = Names.fresh("adj_i");
  know(Sa, SeedArrT);
  BodyBuilder LB(Names);
  VName Bj = LB.bind("adb", Type::scalar(BK),
                     std::make_unique<IndexExp>(
                         Is, std::vector<SubExp>{SubExp::var(Jv)}));
  SubExp WAsBK = [&]() -> SubExp {
    auto WT = typeOfSub(E.Width);
    if (WT && WT->elemKind() != BK) {
      SubExp C = LB.convOp(WT->elemKind(), BK, E.Width, "adw");
      know(C.getVar(), Type::scalar(BK));
      return C;
    }
    return E.Width;
  }();
  SubExp Ge = LB.binOp(BinOp::Geq, SubExp::var(Bj), zeroConst(BK), BK, "adc");
  SubExp Lt = LB.binOp(BinOp::Lt, SubExp::var(Bj), WAsBK, BK, "adc");
  SubExp Ok = LB.binOp(BinOp::LogAnd, Ge, Lt, ScalarKind::Bool, "adc");
  // In-range: read the seed at the bin; out of range: 0.
  std::vector<Type> CT{Type::scalar(K)};
  BodyBuilder TB(Names);
  VName Cell = TB.bind("adx", Type::scalar(K),
                       std::make_unique<IndexExp>(
                           YB->getVar(),
                           std::vector<SubExp>{SubExp::var(Bj)}));
  Body Then = TB.finish({SubExp::var(Cell)});
  Body Else({}, {zeroConst(K)});
  std::vector<VName> Val = LB.bindMulti(
      "adj", CT,
      std::make_unique<IfExp>(Ok, std::move(Then), std::move(Else), CT));
  VName SaW = LB.bind("adga", SeedArrT,
                      std::make_unique<UpdateExp>(
                          Sa, std::vector<SubExp>{SubExp::var(Jv)},
                          SubExp::var(Val[0])));
  std::vector<Param> MPs{Param(Sa, SeedArrT)};
  std::vector<SubExp> MInit{SaZ};
  std::vector<Type> PatT{SeedArrT};
  std::vector<VName> Out = BB.bindMulti(
      "adgar", PatT,
      std::make_unique<LoopExp>(std::move(MPs), std::move(MInit), Jv, N,
                                LB.finish({SubExp::var(SaW)})));
  know(Out[0], SeedArrT);

  // Chain through the value function's pullback (identity in the unfused
  // case).
  std::vector<VName> ValArrs;
  for (const VName &V : E.ValueArrs)
    ValArrs.push_back(primVar(SW, V));
  if (matchIdentityLambda(E.ValueFn))
    return addAdj(SW, ValArrs[0], SubExp::var(Out[0]), BB);
  return pullbackThroughMap(E.ValueFn, ValArrs, N, {Out[0]}, SW, BB);
}

MaybeError VjpEmitter::reverseLoop(const Stm &S, const LoopExp &E, Sweep &SW,
                                   BodyBuilder &BB, const LoopTape &Tape) {
  size_t K = E.MergeParams.size();

  // Free-variable targets of the loop body (beyond the merge parameters;
  // merge *inits* receive their adjoint from the final reverse state, not
  // here).
  NameSet BodyFV = freeVarsInBody(E.LoopBody);
  NameSet Exclude;
  for (const Param &MP : E.MergeParams)
    Exclude.insert(MP.Name);
  Exclude.insert(E.IndexVar);
  std::vector<VName> FreeTargets;
  for (const VName &N : BodyFV) {
    if (Exclude.count(N))
      continue;
    auto It = TypeOf.find(N);
    if (It != TypeOf.end() && activeType(It->second))
      FreeTargets.push_back(N);
  }
  std::sort(FreeTargets.begin(), FreeTargets.end());

  // Adjoint merge state: one per active merge param, plus the free-var
  // accumulators.
  std::vector<int> ActiveMerge;
  for (size_t J = 0; J < K; ++J)
    if (activeType(E.MergeParams[J].Ty))
      ActiveMerge.push_back(static_cast<int>(J));
  if (ActiveMerge.empty() && FreeTargets.empty())
    return MaybeError::success();

  std::vector<Param> RevMerge;
  std::vector<SubExp> RevInit;
  std::vector<Type> RevTypes;
  for (int J : ActiveMerge) {
    auto A = adjOf(SW, S.Pat[J].Name, BB);
    if (!A)
      return A.getError();
    Type T = E.MergeParams[J].Ty.asNonUnique();
    VName N = Names.fresh("adm");
    know(N, T);
    RevMerge.emplace_back(N, T);
    RevInit.push_back(*A);
    RevTypes.push_back(T);
  }
  for (const VName &F : FreeTargets) {
    Type T = TypeOf.at(F).asNonUnique();
    VName N = Names.fresh("adf");
    know(N, T);
    RevMerge.emplace_back(N, T);
    RevInit.push_back(zeroOf(T, BB));
    RevTypes.push_back(T);
  }

  auto W32 = boundAsI32(E.Bound, BB);
  if (!W32)
    return W32.getError();
  VName Ir = Names.fresh("adir");
  BodyBuilder LB(Names);
  SubExp WM1 = LB.binOp(BinOp::Sub, *W32, oneConst(ScalarKind::I32),
                        ScalarKind::I32, "adi");
  SubExp Iv = LB.binOp(BinOp::Sub, WM1, SubExp::var(Ir), ScalarKind::I32,
                       "adi");

  // Restore the iterate: every merge parameter's entry value at forward
  // iteration Iv, from its tape (copied, so an in-place body cannot
  // corrupt the tape through the restored alias).
  NameMap<SubExp> Outer;
  for (const auto &KV : SW.Saved)
    Outer[KV.first] = SubExp::var(KV.second);
  Outer[E.IndexVar] = Iv;
  std::vector<VName> Restored;
  for (size_t J = 0; J < K; ++J) {
    Type T = E.MergeParams[J].Ty.asNonUnique();
    VName Row = LB.bind("adrest", T,
                        std::make_unique<IndexExp>(Tape.TapeArrays[J],
                                                   std::vector<SubExp>{Iv}));
    know(Row, T);
    if (T.isArray()) {
      VName C = LB.bind("adrest", T, std::make_unique<CopyExp>(Row));
      know(C, T);
      Row = C;
    }
    Restored.push_back(Row);
    Outer[E.MergeParams[J].Name] = SubExp::var(Row);
  }

  // Seeds: the current adjoint merge state (the adjoint of this
  // iteration's *results* = the next iteration's entry state).
  std::vector<SubExp> Seeds(E.LoopBody.Result.size(), i32(0));
  for (size_t A = 0; A < ActiveMerge.size(); ++A)
    Seeds[ActiveMerge[A]] = SubExp::var(RevMerge[A].Name);

  std::vector<VName> AllTargets;
  for (int J : ActiveMerge)
    AllTargets.push_back(Restored[J]);
  for (const VName &F : FreeTargets)
    AllTargets.push_back(F);

  auto BodyOut = emitBodyVjp(E.LoopBody, Outer, Seeds, AllTargets, LB);
  if (!BodyOut)
    return BodyOut.getError();

  // Results: the merge-entry adjoints replace the adjoint state; free-var
  // contributions accumulate.
  std::vector<SubExp> RevResults;
  size_t Idx = 0;
  for (size_t A = 0; A < ActiveMerge.size(); ++A, ++Idx)
    RevResults.push_back(BodyOut->TargetAdjoints[Idx]);
  for (size_t F = 0; F < FreeTargets.size(); ++F, ++Idx) {
    Type T = RevTypes[ActiveMerge.size() + F];
    SubExp Sum = addValues(SubExp::var(RevMerge[ActiveMerge.size() + F].Name),
                           BodyOut->TargetAdjoints[Idx], T, LB);
    RevResults.push_back(Sum);
  }

  std::vector<VName> Out = BB.bindMulti(
      "adloop", RevTypes,
      std::make_unique<LoopExp>(std::move(RevMerge), std::move(RevInit), Ir,
                                *W32, LB.finish(std::move(RevResults))));
  for (size_t I = 0; I < Out.size(); ++I)
    know(Out[I], RevTypes[I]);

  // The final adjoint state is the adjoint of the merge inits.
  Idx = 0;
  for (int J : ActiveMerge) {
    if (E.MergeInit[J].isVar())
      if (auto Err = addAdjSub(SW, E.MergeInit[J], SubExp::var(Out[Idx]), BB))
        return Err;
    ++Idx;
  }
  for (const VName &F : FreeTargets) {
    if (auto Err = addAdj(SW, F, SubExp::var(Out[Idx]), BB))
      return Err;
    ++Idx;
  }
  return MaybeError::success();
}

MaybeError VjpEmitter::reverseConcat(const Stm &S, const ConcatExp &E,
                                     Sweep &SW, BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT))
    return MaybeError::success();
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  // Slices of the seed at the accumulated offsets.
  SubExp Off = i64c(0);
  for (size_t I = 0; I < E.Arrays.size(); ++I) {
    const VName &A = E.Arrays[I];
    auto AT = typeOfSub(SubExp::var(A));
    if (!AT)
      return AT.getError();
    auto Len = intAs(AT->outerDim(), ScalarKind::I64, BB);
    if (!Len)
      return Len.getError();
    VName Piece = BB.bind(
        "adj", AT->asNonUnique(),
        std::make_unique<SliceExp>(YB->getVar(), Off, *Len, i64c(1)));
    know(Piece, AT->asNonUnique());
    if (auto Err = addAdj(SW, A, SubExp::var(Piece), BB))
      return Err;
    if (I + 1 == E.Arrays.size())
      break;
    Off = BB.binOp(BinOp::Add, Off, *Len, ScalarKind::I64, "adoff");
    know(Off.getVar(), Type::scalar(ScalarKind::I64));
  }
  return MaybeError::success();
}

MaybeError VjpEmitter::reverseSlice(const Stm &S, const SliceExp &E, Sweep &SW,
                                    BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT))
    return MaybeError::success();
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  auto AT = typeOfSub(SubExp::var(E.Arr));
  if (!AT)
    return AT.getError();
  // Scatter the seed back: xbar[off + j*stride] += ybar[j], sequentially.
  auto XB = adjOf(SW, E.Arr, BB);
  if (!XB)
    return XB.getError();
  auto Copy = copyArray(XB->getVar(), BB);
  if (!Copy)
    return Copy.getError();
  Type XArrT = AT->asNonUnique();
  Type CellT = YT.rowType().asNonUnique();
  auto W32 = boundAsI32(prim(SW, E.Len), BB);
  if (!W32)
    return W32.getError();
  VName Xb = Names.fresh("adxb");
  VName Jv = Names.fresh("adj_i");
  know(Xb, XArrT);
  BodyBuilder LB(Names);
  SubExp J64 = [&]() -> SubExp {
    SubExp C = LB.convOp(ScalarKind::I32, ScalarKind::I64, SubExp::var(Jv),
                         "adi");
    know(C.getVar(), Type::scalar(ScalarKind::I64));
    return C;
  }();
  auto Off = intAs(prim(SW, E.Offset), ScalarKind::I64, LB);
  if (!Off)
    return Off.getError();
  auto Str = intAs(prim(SW, E.Stride), ScalarKind::I64, LB);
  if (!Str)
    return Str.getError();
  SubExp T1 = LB.binOp(BinOp::Mul, J64, *Str, ScalarKind::I64, "adi");
  SubExp Idx = LB.binOp(BinOp::Add, *Off, T1, ScalarKind::I64, "adi");
  VName Yj = LB.bind("ady", CellT,
                     std::make_unique<IndexExp>(
                         YB->getVar(), std::vector<SubExp>{SubExp::var(Jv)}));
  know(Yj, CellT);
  VName Cur = LB.bind("adx", CellT,
                      std::make_unique<IndexExp>(Xb,
                                                 std::vector<SubExp>{Idx}));
  know(Cur, CellT);
  SubExp Sum = addValues(SubExp::var(Cur), SubExp::var(Yj), CellT, LB);
  VName XbW = LB.bind("adxb", XArrT,
                      std::make_unique<UpdateExp>(Xb, std::vector<SubExp>{Idx},
                                                  Sum));
  std::vector<Param> MPs{Param(Xb, XArrT)};
  std::vector<SubExp> MInit{SubExp::var(*Copy)};
  std::vector<Type> PatT{XArrT};
  std::vector<VName> Out = BB.bindMulti(
      "adxbr", PatT,
      std::make_unique<LoopExp>(std::move(MPs), std::move(MInit), Jv, *W32,
                                LB.finish({SubExp::var(XbW)})));
  know(Out[0], XArrT);
  SW.Adj[E.Arr] = SubExp::var(Out[0]);
  return MaybeError::success();
}

MaybeError VjpEmitter::reverseReplicate(const Stm &S, const ReplicateExp &E,
                                        Sweep &SW, BodyBuilder &BB) {
  const Type &YT = S.Pat[0].Ty;
  if (!activeType(YT) || !E.Val.isVar())
    return MaybeError::success();
  auto YB = adjOf(SW, S.Pat[0].Name, BB);
  if (!YB)
    return YB.getError();
  Type VT = E.ValType.asNonUnique();
  Lambda AddL = addLambda(VT);
  SubExp Z = zeroOf(VT, BB);
  std::vector<Type> RT{VT};
  std::vector<VName> Red = BB.bindMulti(
      "adred", RT,
      std::make_unique<ReduceExp>(E.N, std::move(AddL),
                                  std::vector<SubExp>{Z},
                                  std::vector<VName>{YB->getVar()},
                                  /*Commutative=*/true));
  know(Red[0], VT);
  return addAdjSub(SW, E.Val, SubExp::var(Red[0]), BB);
}

} // namespace

ErrorOr<VjpStats> fut::ad::vjpProgram(Program &P, const std::string &Fun,
                                      NameSource &Names) {
  const FunDef *F = P.findFun(Fun);
  if (!F)
    return CompilerError("vjp: no function named '" + Fun + "'");
  VjpEmitter Emitter(Names);
  auto G = Emitter.run(*F);
  if (!G)
    return G.getError();
  // Replace any stale previous derivative.
  std::string GName = G->Name;
  P.Funs.erase(std::remove_if(P.Funs.begin(), P.Funs.end(),
                              [&](const FunDef &D) { return D.Name == GName; }),
               P.Funs.end());
  P.Funs.push_back(G.take());
  trace::counter("ad.vjp_functions");
  return Emitter.stats();
}
