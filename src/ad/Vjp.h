//===- Vjp.h - Reverse-mode AD (vector-Jacobian products) -------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reverse-mode automatic differentiation over the core IR, following
/// "Reverse-Mode AD of Reduce-by-Index and Scan in Futhark" (PAPERS.md):
/// a function-level transform that takes a primal function f and adds its
/// vector-Jacobian product f_vjp to the program.
///
/// Shape of the generated function, for
///   f : (p_1: t_1) ... (p_n: t_n) -> (r_1, ..., r_m)
/// with A = the indices of float-element ("active") parameters and
/// S = the indices of float-element results:
///   f_vjp : (p_1: t_1) ... (p_n: t_n) (seed_s: r_s | s in S)
///           -> (r_1, ..., r_m, adj(p_a) | a in A)
/// i.e. the primal outputs followed by the adjoint of every active
/// parameter under the output seeds.  Integer and boolean values are
/// structurally non-active: no adjoint is built or returned for them.
///
/// The transform is forward-sweep + reverse-sweep over each body:
///
///  * In a pure ANF IR the forward statements *are* the tape: every
///    intermediate stays in scope for the reverse sweep.  Explicit taping
///    is only needed where purity is locally given up — in-place updates
///    (save-on-consume copies of consumed arrays, so the reverse sweep
///    never observes a consumed name) and loops (a stack of iterates:
///    every merge parameter is recorded per iteration into an "adtape"
///    array carried alongside the loop, and the reverse loop restores the
///    iterate, re-runs the body forward, and pulls the adjoint back).
///
///  * map pulls back through a map of the pulled-back lambda; adjoints of
///    free variables in the lambda become per-element contribution columns
///    reduced with (+).
///  * reduce/scan use the linearise-exchange decomposition: the adjoint of
///    reduce(+) is a broadcast of the seed, reduce(*) multiplies the seed
///    by exclusive prefix/suffix products, reduce(min/max) routes the seed
///    to the first attaining element, and scan(+)'s adjoint is the suffix
///    sum of the seeds.  The exchange stage is emitted as host-level code;
///    map-level adjoints stay parallel.
///  * reduce_by_index (combine (+)) pulls the seed back through a
///    gather-of-contributions: element j receives seed[is[j]] (0 when the
///    bin was out of range), chained through the value-function pullback.
///  * In-place updates are differentiated *through* the consumption rules:
///    the adjoint of the overwritten cell is routed to the stored value
///    and masked out of the array adjoint, and all primal re-reads go via
///    the save-on-consume copies, so the generated code passes the
///    verifier's consumption check unchanged.
///
/// Unsupported constructs (streams, non-inlined calls, non-linearisable
/// reduction operators) fail with a typed ErrorKind::Compile
/// diagnostic naming the construct — but only when an adjoint actually
/// flows through them; inactive (integer) uses are skipped.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_AD_VJP_H
#define FUTHARKCC_AD_VJP_H

#include "ir/IR.h"
#include "support/Error.h"

#include <string>

namespace fut {
namespace ad {

/// Statistics of one vjpProgram run (reported on the trace session).
struct VjpStats {
  /// Statements given a reverse rule in the top-level sweep.
  int DifferentiatedStms = 0;
  /// Loops augmented with a stack-of-iterates tape.
  int TapedLoops = 0;
  /// Save-on-consume copies inserted for the reverse sweep.
  int SavedArrays = 0;
};

/// The name of the generated VJP function for \p Fun.
std::string vjpName(const std::string &Fun);

/// Adds vjpName(Fun) to \p P (replacing any previous function of that
/// name).  \p Fun must exist, must be call-free (run the inliner first)
/// and must only contain differentiable constructs on active paths.
ErrorOr<VjpStats> vjpProgram(Program &P, const std::string &Fun,
                             NameSource &Names);

} // namespace ad
} // namespace fut

#endif // FUTHARKCC_AD_VJP_H
