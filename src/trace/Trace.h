//===- Trace.h - Structured tracing and metrics -----------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight span/counter subsystem threaded through the whole stack:
/// every compiler pass opens a span (so the pipeline is visible as a
/// timeline), the device simulator opens a span per kernel launch (carrying
/// simulated cycles and the coalesced/scattered transaction breakdown as
/// args), and passes/devices bump named counters ("fusion.vertical",
/// "device.global_tx", ...) that turn "the fusion pass ran" into a
/// checkable fact.
///
/// The process-global TraceSession is disabled by default; when disabled,
/// spans and counters cost one branch.  Two exporters are provided:
///
///  * summary(): a human-readable digest (printed by futharkcc --trace),
///  * chromeTraceJson(): Chrome trace_event JSON ("X" complete events with
///    microsecond wall-clock timestamps, simulated costs in args, instant
///    events for faults/retries, and trailing "C" counter samples), loadable
///    directly in chrome://tracing or Perfetto (futharkcc --trace-out=FILE).
///
/// Timestamps are wall-clock so compiler passes and simulated kernels share
/// one timeline; all *simulated* quantities (cycles, transactions) travel in
/// span args, never in the time axis.  The session is single-threaded, like
/// the rest of the compiler.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_TRACE_TRACE_H
#define FUTHARKCC_TRACE_TRACE_H

#include "support/Error.h"

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace fut {
namespace trace {

/// Chrome-trace thread ids ("tracks") used by the exporters.  The
/// compiler and host-side simulation live on the default track; the
/// device simulator puts kernel commands and transfer commands on one
/// track per engine, mirroring its two-engine timeline.
constexpr int kHostTid = 1;
constexpr int kCopyEngineTid = 2;
constexpr int kComputeEngineTid = 3;
/// The serving layer (futharkcc-serve): one span per request, plus
/// admission/shedding/quarantine instants.
constexpr int kServeTid = 4;

/// Multi-device runs: devices 1..N-1 of a DeviceGroup get their own pair
/// of engine tracks above the single-device tids (device 0 keeps
/// kCopyEngineTid/kComputeEngineTid, so single-device traces are
/// unchanged).
constexpr int kDeviceTidBase = 5;
inline int deviceCopyTid(int Device) {
  return Device == 0 ? kCopyEngineTid : kDeviceTidBase + 2 * (Device - 1);
}
inline int deviceComputeTid(int Device) {
  return Device == 0 ? kComputeEngineTid
                     : kDeviceTidBase + 2 * (Device - 1) + 1;
}

/// One key/value argument attached to a span or instant event.  Numeric
/// args stay numeric in the exported JSON.
struct TraceArg {
  std::string Key;
  bool IsNumber = true;
  double Num = 0;
  std::string Str;
};

/// A recorded event: a completed span ("X"), an instant ("i"), or a counter
/// sample ("C", synthesised at export time).
struct TraceEvent {
  std::string Name;
  std::string Category;
  double StartUs = 0; ///< Wall-clock microseconds since session start.
  double DurUs = 0;   ///< Spans only.
  int Depth = 0;      ///< Nesting depth at begin (0 = top level).
  int Tid = kHostTid; ///< Chrome-trace track the event is exported on.
  bool Instant = false;
  std::vector<TraceArg> Args;

  const TraceArg *findArg(const std::string &Key) const {
    for (const TraceArg &A : Args)
      if (A.Key == Key)
        return &A;
    return nullptr;
  }
};

/// The process-global trace sink.  All spans, instants and counters land
/// here; exporters read the recorded state back out.
class TraceSession {
  bool Enabled = false;
  uint64_t EpochNs = 0;
  std::vector<TraceEvent> Events;
  std::vector<size_t> OpenSpans; ///< Indices into Events, innermost last.
  std::map<std::string, int64_t> Counters;
  std::map<int, std::string> ThreadNames; ///< Tid -> exported track name.

public:
  static TraceSession &global();

  bool enabled() const { return Enabled; }
  /// Enabling (re)starts the clock when the session was previously empty.
  void setEnabled(bool On);

  /// Drops all recorded events and counters and restarts the clock.
  void clear();

  //===-- Recording --------------------------------------------------------===//

  /// Opens a span; returns its event index (pass to endSpan/spanArg), or
  /// SIZE_MAX when disabled.  Prefer the RAII ScopedSpan.  \p Tid selects
  /// the exported Chrome-trace track (kHostTid by default).
  size_t beginSpan(const std::string &Name, const std::string &Category,
                   int Tid = kHostTid);
  void endSpan(size_t Idx);

  void spanArg(size_t Idx, const std::string &Key, double Num);
  void spanArg(size_t Idx, const std::string &Key, const std::string &Str);

  /// Records an instant event (faults, retries, watchdog kills).
  size_t instant(const std::string &Name, const std::string &Category,
                 int Tid = kHostTid);

  /// Names a track in the Chrome export (emitted as a thread_name
  /// metadata event).  Idempotent; survives until clear().
  void setThreadName(int Tid, const std::string &Name);

  /// Adds \p Delta to the named counter.
  void counter(const std::string &Name, int64_t Delta = 1);

  //===-- Reading back -----------------------------------------------------===//

  const std::vector<TraceEvent> &events() const { return Events; }
  const std::map<std::string, int64_t> &counters() const { return Counters; }
  int64_t counterValue(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  //===-- Exporters --------------------------------------------------------===//

  /// Human-readable digest: the span tree with durations, then counters.
  std::string summary() const;

  /// Chrome trace_event JSON (the {"traceEvents": [...]} envelope).
  std::string chromeTraceJson() const;

  /// Writes chromeTraceJson() to \p Path.
  MaybeError writeChromeTrace(const std::string &Path) const;

private:
  double nowUs() const;
};

/// RAII span on the global session.  Args added through it attach to the
/// span event; all calls are no-ops when tracing is disabled.
class ScopedSpan {
  size_t Idx;

public:
  ScopedSpan(const std::string &Name, const std::string &Category,
             int Tid = kHostTid)
      : Idx(TraceSession::global().beginSpan(Name, Category, Tid)) {}
  ~ScopedSpan() { TraceSession::global().endSpan(Idx); }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

  void arg(const std::string &Key, double Num) {
    TraceSession::global().spanArg(Idx, Key, Num);
  }
  void arg(const std::string &Key, int64_t Num) {
    TraceSession::global().spanArg(Idx, Key, static_cast<double>(Num));
  }
  void arg(const std::string &Key, int Num) {
    TraceSession::global().spanArg(Idx, Key, static_cast<double>(Num));
  }
  void arg(const std::string &Key, const std::string &Str) {
    TraceSession::global().spanArg(Idx, Key, Str);
  }
};

/// Convenience: bumps a counter on the global session.
inline void counter(const std::string &Name, int64_t Delta = 1) {
  TraceSession::global().counter(Name, Delta);
}

} // namespace trace
} // namespace fut

#endif // FUTHARKCC_TRACE_TRACE_H
