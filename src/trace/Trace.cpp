//===- Trace.cpp - Structured tracing and metrics -----------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "trace/Trace.h"

#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>

using namespace fut;
using namespace fut::trace;

namespace {

uint64_t monotonicNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

TraceSession &TraceSession::global() {
  static TraceSession S;
  return S;
}

double TraceSession::nowUs() const {
  return static_cast<double>(monotonicNs() - EpochNs) / 1000.0;
}

void TraceSession::setEnabled(bool On) {
  if (On && !Enabled && Events.empty())
    EpochNs = monotonicNs();
  Enabled = On;
}

void TraceSession::clear() {
  Events.clear();
  OpenSpans.clear();
  Counters.clear();
  ThreadNames.clear();
  EpochNs = monotonicNs();
}

size_t TraceSession::beginSpan(const std::string &Name,
                               const std::string &Category, int Tid) {
  if (!Enabled)
    return SIZE_MAX;
  TraceEvent E;
  E.Name = Name;
  E.Category = Category;
  E.StartUs = nowUs();
  E.Depth = static_cast<int>(OpenSpans.size());
  E.Tid = Tid;
  Events.push_back(std::move(E));
  OpenSpans.push_back(Events.size() - 1);
  return Events.size() - 1;
}

void TraceSession::endSpan(size_t Idx) {
  if (Idx == SIZE_MAX || Idx >= Events.size())
    return;
  Events[Idx].DurUs = nowUs() - Events[Idx].StartUs;
  // Spans close LIFO (RAII); tolerate out-of-order closes by popping
  // through the target so the depth bookkeeping cannot wedge.
  while (!OpenSpans.empty()) {
    size_t Top = OpenSpans.back();
    OpenSpans.pop_back();
    if (Top == Idx)
      break;
  }
}

void TraceSession::spanArg(size_t Idx, const std::string &Key, double Num) {
  if (Idx == SIZE_MAX || Idx >= Events.size())
    return;
  TraceArg A;
  A.Key = Key;
  A.Num = Num;
  Events[Idx].Args.push_back(std::move(A));
}

void TraceSession::spanArg(size_t Idx, const std::string &Key,
                           const std::string &Str) {
  if (Idx == SIZE_MAX || Idx >= Events.size())
    return;
  TraceArg A;
  A.Key = Key;
  A.IsNumber = false;
  A.Str = Str;
  Events[Idx].Args.push_back(std::move(A));
}

size_t TraceSession::instant(const std::string &Name,
                             const std::string &Category, int Tid) {
  if (!Enabled)
    return SIZE_MAX;
  TraceEvent E;
  E.Name = Name;
  E.Category = Category;
  E.StartUs = nowUs();
  E.Depth = static_cast<int>(OpenSpans.size());
  E.Tid = Tid;
  E.Instant = true;
  Events.push_back(std::move(E));
  return Events.size() - 1;
}

void TraceSession::setThreadName(int Tid, const std::string &Name) {
  if (!Enabled)
    return;
  ThreadNames[Tid] = Name;
}

void TraceSession::counter(const std::string &Name, int64_t Delta) {
  if (!Enabled)
    return;
  Counters[Name] += Delta;
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

std::string TraceSession::summary() const {
  std::ostringstream OS;
  OS << "=== trace: spans ===\n";
  for (const TraceEvent &E : Events) {
    for (int I = 0; I < E.Depth; ++I)
      OS << "  ";
    if (E.Instant) {
      OS << "! " << E.Name;
    } else {
      char Buf[32];
      snprintf(Buf, sizeof(Buf), "%.1f", E.DurUs);
      OS << E.Name << " (" << Buf << " us)";
    }
    bool First = true;
    for (const TraceArg &A : E.Args) {
      OS << (First ? "  [" : ", ") << A.Key << "=";
      OS << (A.IsNumber ? json::number(A.Num) : A.Str);
      First = false;
    }
    if (!First)
      OS << "]";
    OS << "\n";
  }
  OS << "=== trace: counters ===\n";
  for (const auto &[Name, Val] : Counters)
    OS << Name << " = " << Val << "\n";
  return OS.str();
}

std::string TraceSession::chromeTraceJson() const {
  // Sort spans so parents precede children (Perfetto accepts any order,
  // but deterministic output keeps the schema tests simple).
  std::vector<size_t> Order(Events.size());
  for (size_t I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(), [&](size_t A, size_t B) {
    if (Events[A].StartUs != Events[B].StartUs)
      return Events[A].StartUs < Events[B].StartUs;
    return Events[A].Depth < Events[B].Depth;
  });

  std::ostringstream OS;
  OS << "{\"traceEvents\":[";
  bool FirstEvent = true;
  auto Emit = [&](const std::string &Body) {
    if (!FirstEvent)
      OS << ",";
    FirstEvent = false;
    OS << "\n" << Body;
  };

  // Track names first, as thread_name metadata events, so viewers label
  // the engine tracks before any of their events appear.
  for (const auto &[Tid, Name] : ThreadNames) {
    std::ostringstream EO;
    EO << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << Tid
       << ",\"args\":{\"name\":\"" << json::escape(Name) << "\"}}";
    Emit(EO.str());
  }

  for (size_t I : Order) {
    const TraceEvent &E = Events[I];
    std::ostringstream EO;
    EO << "{\"name\":\"" << json::escape(E.Name) << "\",\"cat\":\""
       << json::escape(E.Category) << "\",\"ph\":\""
       << (E.Instant ? "i" : "X") << "\",\"ts\":" << json::number(E.StartUs);
    if (!E.Instant)
      EO << ",\"dur\":" << json::number(E.DurUs);
    else
      EO << ",\"s\":\"t\"";
    EO << ",\"pid\":1,\"tid\":" << E.Tid;
    if (!E.Args.empty()) {
      EO << ",\"args\":{";
      bool FirstArg = true;
      for (const TraceArg &A : E.Args) {
        if (!FirstArg)
          EO << ",";
        FirstArg = false;
        EO << "\"" << json::escape(A.Key) << "\":";
        if (A.IsNumber)
          EO << json::number(A.Num);
        else
          EO << "\"" << json::escape(A.Str) << "\"";
      }
      EO << "}";
    }
    EO << "}";
    Emit(EO.str());
  }

  // Counters as trailing "C" samples so they show up as tracks.
  double EndUs = 0;
  for (const TraceEvent &E : Events)
    EndUs = std::max(EndUs, E.StartUs + E.DurUs);
  for (const auto &[Name, Val] : Counters) {
    std::ostringstream EO;
    EO << "{\"name\":\"" << json::escape(Name)
       << "\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":"
       << json::number(EndUs) << ",\"pid\":1,\"args\":{\"value\":"
       << Val << "}}";
    Emit(EO.str());
  }

  OS << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return OS.str();
}

MaybeError TraceSession::writeChromeTrace(const std::string &Path) const {
  std::ofstream Out(Path);
  if (!Out)
    return CompilerError("cannot open trace output file " + Path);
  Out << chromeTraceJson();
  if (!Out)
    return CompilerError("failed writing trace output file " + Path);
  return MaybeError::success();
}
