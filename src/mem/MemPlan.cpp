//===- MemPlan.cpp - Static device-memory planning ------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "mem/MemPlan.h"

#include "ir/Traversal.h"

#include <algorithm>
#include <climits>
#include <sstream>

using namespace fut;
using namespace fut::mem;

namespace {

int64_t elemBytes(ScalarKind K) {
  switch (K) {
  case ScalarKind::Bool:
    return 1;
  case ScalarKind::I32:
  case ScalarKind::F32:
    return 4;
  case ScalarKind::I64:
  case ScalarKind::F64:
    return 8;
  }
  return 4;
}

/// Byte size of \p Ty when every dimension is constant; -1 otherwise.
int64_t staticBytes(const Type &Ty) {
  if (!Ty.isArray())
    return -1;
  int64_t N = 1;
  for (const Dim &D : Ty.shape()) {
    if (!D.isConst())
      return -1;
    N *= D.getConst().asInt64();
  }
  return N * elemBytes(Ty.elemKind());
}

//===----------------------------------------------------------------------===//
// The statement walk: intervals, alias edges, consumption candidates
//===----------------------------------------------------------------------===//

/// Walks a function body in execution order, numbering every host-level
/// statement (loop and branch bodies recursively; kernel thread bodies
/// are leaves charged to the kernel's own index).  Collects the live
/// interval of every array-typed binding, alias edges, and candidate
/// in-kernel consumptions (validated against the finished intervals by
/// analyseFun, since "no use after the kernel" needs the whole walk).
struct Walker {
  LiveIntervals LI;
  std::vector<AliasEdge> Edges;
  NameSet KernelIO; ///< Kernel inputs and outputs: device-storage names.
  NameSet ParamSet;
  int Counter = 0;

  struct ConsumeCand {
    VName Out, In;
    int T;
  };
  std::vector<ConsumeCand> ConsumeCands;

  void define(const VName &N, const Type &Ty, int T, bool Merge = false) {
    if (!Ty.isArray() || LI.Index.count(N))
      return;
    LiveInterval I;
    I.Name = N;
    I.Ty = Ty;
    I.Start = T;
    I.End = T;
    I.MergeParam = Merge;
    I.Bytes = staticBytes(Ty);
    LI.Index[N] = static_cast<int>(LI.Intervals.size());
    LI.Intervals.push_back(std::move(I));
  }

  void use(const VName &N, int T) {
    auto It = LI.Index.find(N);
    if (It != LI.Index.end())
      LI.Intervals[It->second].End =
          std::max(LI.Intervals[It->second].End, T);
  }

  void extendTo(const VName &N, int L0, int L1, bool Carried) {
    auto It = LI.Index.find(N);
    if (It == LI.Index.end())
      return;
    LiveInterval &I = LI.Intervals[It->second];
    I.Start = std::min(I.Start, L0);
    I.End = std::max(I.End, L1);
    if (Carried)
      I.LoopCarried = true;
  }

  void walkBody(const Body &B) {
    for (const Stm &S : B.Stms) {
      int T = ++Counter;
      if (const auto *L = expDynCast<LoopExp>(S.E.get())) {
        walkLoop(S, *L, T);
        continue;
      }
      if (const auto *IE = expDynCast<IfExp>(S.E.get())) {
        // Branch bodies execute once; their statements get their own
        // indices.  The If's pattern names are host-materialised at
        // runtime (never device-bound), so no definition is recorded.
        if (IE->Cond.isVar())
          use(IE->Cond.getVar(), T);
        walkBody(IE->Then);
        walkBody(IE->Else);
        continue;
      }

      // Leaf statement: every free name (including ones read inside
      // kernel thread bodies and lambdas) is used at this index.
      for (const VName &N : freeVarsInExp(*S.E))
        use(N, T);

      if (const auto *K = expDynCast<KernelExp>(S.E.get())) {
        for (const KernelExp::KInput &In : K->Inputs)
          KernelIO.insert(In.Arr);
        for (const Param &Prm : S.Pat)
          if (Prm.Ty.isArray()) {
            define(Prm.Name, Prm.Ty, T);
            KernelIO.insert(Prm.Name);
          }
        findKernelConsumption(*K, S, T);
      } else if (const auto *SE = expDynCast<SubExpExp>(S.E.get())) {
        if (SE->Val.isVar() && S.Pat.size() == 1 &&
            S.Pat[0].Ty.isArray()) {
          define(S.Pat[0].Name, S.Pat[0].Ty, T);
          Edges.push_back({S.Pat[0].Name, SE->Val.getVar(), AliasKind::Let});
        }
      } else if (const auto *U = expDynCast<UpdateExp>(S.E.get())) {
        // Host-level in-place update: the result owns the consumed
        // source's block (Section 3's uniqueness semantics).
        if (S.Pat.size() == 1 && S.Pat[0].Ty.isArray()) {
          define(S.Pat[0].Name, S.Pat[0].Ty, T);
          Edges.push_back({S.Pat[0].Name, U->Arr, AliasKind::Consume});
        }
      } else {
        // Other host-level producers (iota, concat, copy, slices...):
        // plain host values, relevant only as later kernel inputs.
        for (const Param &Prm : S.Pat)
          define(Prm.Name, Prm.Ty, T);
      }
    }
    // Body results stay live through the body's last statement.
    for (const SubExp &R : B.Result)
      if (R.isVar())
        use(R.getVar(), Counter);
  }

  void walkLoop(const Stm &S, const LoopExp &L, int T) {
    for (const SubExp &SE : L.MergeInit)
      if (SE.isVar())
        use(SE.getVar(), T);
    if (L.Bound.isVar())
      use(L.Bound.getVar(), T);

    int L0 = T;
    for (const Param &MP : L.MergeParams)
      define(MP.Name, MP.Ty, L0, /*Merge=*/true);
    walkBody(L.LoopBody);
    int L1 = Counter;

    // Anything defined before the loop and read inside it must survive
    // every iteration: extend to the loop's end.
    for (const VName &N : freeVarsInBody(L.LoopBody)) {
      auto It = LI.Index.find(N);
      if (It != LI.Index.end() && LI.Intervals[It->second].Start < L0)
        LI.Intervals[It->second].End =
            std::max(LI.Intervals[It->second].End, L1);
    }

    // Loop-carried storage: a body-result array defined inside the loop
    // feeds the next iteration's merge parameter, so its storage (and the
    // merge parameter's, the other double-buffer half) is live across the
    // whole loop.  A result that merely passes outer storage through is
    // not carried storage.
    const Body &LB = L.LoopBody;
    size_t NRes = std::min(
        {S.Pat.size(), LB.Result.size(), L.MergeParams.size()});
    for (size_t I = 0; I < NRes; ++I) {
      if (!LB.Result[I].isVar())
        continue;
      const VName &R = LB.Result[I].getVar();
      auto It = LI.Index.find(R);
      if (It == LI.Index.end() || LI.Intervals[It->second].Start <= L0)
        continue;
      extendTo(R, L0, L1, /*Carried=*/true);
      if (S.Pat[I].Ty.isArray()) {
        define(S.Pat[I].Name, S.Pat[I].Ty, L0);
        extendTo(S.Pat[I].Name, L0, L1, /*Carried=*/true);
        Edges.push_back({S.Pat[I].Name, R, AliasKind::LoopResult});
      }
      if (L.MergeParams[I].Ty.isArray()) {
        extendTo(L.MergeParams[I].Name, L0, L1, /*Carried=*/true);
        Edges.push_back({L.MergeParams[I].Name, R, AliasKind::LoopResult});
      }
    }
    // Merge parameters that never become carried storage (scalar results,
    // pass-throughs) still cover the loop span.
    for (const Param &MP : L.MergeParams)
      if (MP.Ty.isArray())
        extendTo(MP.Name, L0, L1, /*Carried=*/false);
  }

  /// A ThreadBody kernel output that is an in-place update of one of the
  /// kernel's own inputs (thread body: row = input[tid...]; out = row
  /// with [...] <- v) is a consumption candidate: if the input has no use
  /// after this kernel and is not a function parameter, the output may
  /// own the input's block.
  void findKernelConsumption(const KernelExp &K, const Stm &S, int T) {
    // A histogram kernel consumes its destination outright (Section 3's
    // uniqueness semantics, enforced by the verifier): the result is the
    // same width and element kind, so it owns the destination's slab —
    // the subhistogram accumulator is a planned allocation, not a fresh
    // runtime buffer next to a dead destination.
    if (K.Op == KernelExp::OpKind::SegHist) {
      if (S.Pat.size() == 1 && S.Pat[0].Ty.isArray())
        for (const KernelExp::KInput &KI : K.Inputs)
          if (KI.Arr == K.HistDest && KI.Ty == S.Pat[0].Ty)
            ConsumeCands.push_back({S.Pat[0].Name, K.HistDest, T});
      return;
    }
    if (K.Op != KernelExp::OpKind::ThreadBody)
      return;
    const Body &TB = K.ThreadBody;
    NameMap<const Exp *> Defs;
    for (const Stm &TS : TB.Stms)
      if (TS.Pat.size() == 1)
        Defs[TS.Pat[0].Name] = TS.E.get();

    auto Resolve = [&](VName N) -> const Exp * {
      for (int Hops = 0; Hops < 16; ++Hops) {
        auto It = Defs.find(N);
        if (It == Defs.end())
          return nullptr;
        if (const auto *A = expDynCast<SubExpExp>(It->second)) {
          if (A->Val.isVar()) {
            N = A->Val.getVar();
            continue;
          }
          return nullptr;
        }
        return It->second;
      }
      return nullptr;
    };

    for (size_t J = 0; J < TB.Result.size() && J < S.Pat.size(); ++J) {
      if (!TB.Result[J].isVar() || !S.Pat[J].Ty.isArray())
        continue;
      const Exp *RD = Resolve(TB.Result[J].getVar());
      const auto *Upd = RD ? expDynCast<UpdateExp>(RD) : nullptr;
      if (!Upd)
        continue;
      const Exp *AD = Resolve(Upd->Arr);
      const auto *Idx = AD ? expDynCast<IndexExp>(AD) : nullptr;
      if (!Idx)
        continue;
      const KernelExp::KInput *In = nullptr;
      for (const KernelExp::KInput &KI : K.Inputs)
        if (KI.Arr == Idx->Arr) {
          In = &KI;
          break;
        }
      // Only an update of the whole input, row by row, keeps the output
      // congruent with the input's block: same element kind and shape.
      if (!In || !(In->Ty == S.Pat[J].Ty))
        continue;
      ConsumeCands.push_back({S.Pat[J].Name, In->Arr, T});
    }
  }
};

} // namespace

FunMemAnalysis mem::analyseFun(const FunDef &F) {
  Walker W;
  for (const Param &Prm : F.Params) {
    W.define(Prm.Name, Prm.Ty, 0);
    W.ParamSet.insert(Prm.Name);
  }
  W.walkBody(F.FBody);

  // Consumption candidates become alias edges only when the consumed
  // input's storage genuinely dies at the kernel: no later use, not a
  // function parameter (host-owned), not a merge parameter (the other
  // half of a double buffer must stay intact while the new half is
  // written).
  for (const Walker::ConsumeCand &C : W.ConsumeCands) {
    const LiveInterval *In = W.LI.lookup(C.In);
    if (!In || In->End > C.T || In->MergeParam || W.ParamSet.count(C.In))
      continue;
    W.Edges.push_back({C.Out, C.In, AliasKind::Consume});
  }

  FunMemAnalysis A;
  A.Intervals = std::move(W.LI);
  A.Aliases = std::move(W.Edges);
  return A;
}

LiveIntervals mem::computeDeviceIntervals(const FunDef &F) {
  return analyseFun(F).Intervals;
}

std::vector<AliasEdge> mem::computeAliasEdges(const FunDef &F) {
  return analyseFun(F).Aliases;
}

//===----------------------------------------------------------------------===//
// Slab assignment
//===----------------------------------------------------------------------===//

namespace {

/// Collects every kernel input/output name of \p B (the names whose
/// storage the plan must place).
void collectKernelIO(const Body &B, NameSet &IO) {
  for (const Stm &S : B.Stms) {
    if (const auto *K = expDynCast<KernelExp>(S.E.get())) {
      for (const KernelExp::KInput &In : K->Inputs)
        IO.insert(In.Arr);
      for (const Param &Prm : S.Pat)
        if (Prm.Ty.isArray())
          IO.insert(Prm.Name);
      continue;
    }
    forEachChildBody(*S.E, [&](const Body &Inner) {
      collectKernelIO(Inner, IO);
    });
  }
}

struct UnionFind {
  NameMap<VName> Parent;

  VName find(VName N) {
    std::vector<VName> Path;
    for (;;) {
      auto It = Parent.find(N);
      if (It == Parent.end() || It->second == N)
        break;
      Path.push_back(N);
      N = It->second;
    }
    for (const VName &P : Path)
      Parent[P] = N;
    return N;
  }

  void unite(const VName &A, const VName &B) {
    VName RA = find(A), RB = find(B);
    if (!(RA == RB))
      Parent[RA] = RB;
  }
};

/// Accounts the AD tape: every loop-result binding named adtape* is one
/// stack-of-iterates array (the VJP pass binds exactly one per taped loop
/// and merge parameter; the in-loop adtape versions alias its storage).
void countTape(const Body &B, FunPlan &FP) {
  for (const Stm &S : B.Stms) {
    if (expDynCast<LoopExp>(S.E.get()))
      for (const Param &P : S.Pat)
        if (P.Name.Base.rfind("adtape", 0) == 0) {
          ++FP.TapeArrays;
          int64_t Sz = staticBytes(P.Ty);
          if (Sz < 0)
            ++FP.TapeSymbolic;
          else
            FP.TapeBytes += Sz;
        }
    forEachChildBody(*S.E,
                     [&](const Body &Inner) { countTape(Inner, FP); });
  }
}

FunPlan planFun(const FunDef &F) {
  FunMemAnalysis A = analyseFun(F);
  NameSet KernelIO;
  collectKernelIO(F.FBody, KernelIO);

  UnionFind UF;
  for (const AliasEdge &E : A.Aliases)
    if (A.Intervals.lookup(E.Dst) && A.Intervals.lookup(E.Src))
      UF.unite(E.Dst, E.Src);

  // One storage class per union-find root, members in definition order.
  struct Class {
    std::vector<int> Members; ///< Indices into A.Intervals.Intervals.
    int Start = INT_MAX, End = 0;
    bool Hoisted = false, Device = false;
    int64_t Bytes = -1; ///< Static per-buffer size; -1 when symbolic.
    std::string SizeExpr;
  };
  std::vector<Class> Classes;
  NameMap<int> ClassOf;
  const auto &Ivs = A.Intervals.Intervals;
  for (size_t I = 0; I < Ivs.size(); ++I) {
    VName Rep = UF.find(Ivs[I].Name);
    auto It = ClassOf.find(Rep);
    int CI;
    if (It == ClassOf.end()) {
      CI = static_cast<int>(Classes.size());
      ClassOf[Rep] = CI;
      Classes.emplace_back();
    } else {
      CI = It->second;
    }
    Class &C = Classes[CI];
    C.Members.push_back(static_cast<int>(I));
    C.Start = std::min(C.Start, Ivs[I].Start);
    C.End = std::max(C.End, Ivs[I].End);
    C.Hoisted = C.Hoisted || Ivs[I].LoopCarried;
    C.Device = C.Device || KernelIO.count(Ivs[I].Name);
    if (C.Members.size() == 1) {
      C.Bytes = Ivs[I].Bytes;
      C.SizeExpr = Ivs[I].Ty.str();
    } else if (C.Bytes >= 0) {
      // All-static classes take the widest member; any symbolic member
      // makes the whole class symbolic (the executor charges actual
      // bytes regardless).
      C.Bytes = Ivs[I].Bytes < 0 ? -1 : std::max(C.Bytes, Ivs[I].Bytes);
    }
  }

  // Linear-scan best-fit colouring over classes ordered by first
  // definition.  Hoisted (loop-carried) classes get a dedicated
  // double-buffered slab; other classes reuse any compatible slab whose
  // previous tenant's lifetime has ended.
  std::vector<int> Order;
  for (size_t I = 0; I < Classes.size(); ++I)
    if (Classes[I].Device)
      Order.push_back(static_cast<int>(I));
  std::stable_sort(Order.begin(), Order.end(), [&](int X, int Y) {
    if (Classes[X].Start != Classes[Y].Start)
      return Classes[X].Start < Classes[Y].Start;
    return Classes[X].Members.front() < Classes[Y].Members.front();
  });

  FunPlan FP;
  FP.Fun = F.Name;
  struct SlabState {
    int LastEnd = -1;
    int64_t PerBuf = -1;
    std::string SizeExpr;
    bool Hoisted = false;
  };
  std::vector<SlabState> SlabStates;

  NameMap<int> FirstEdge; // Dst -> index into A.Aliases, for entry labels.
  for (size_t I = 0; I < A.Aliases.size(); ++I)
    if (!FirstEdge.count(A.Aliases[I].Dst))
      FirstEdge[A.Aliases[I].Dst] = static_cast<int>(I);

  for (int CI : Order) {
    Class &C = Classes[CI];
    int Slab = -1;
    bool Reused = false;
    if (!C.Hoisted) {
      // Best fit: the compatible free slab wasting the fewest bytes
      // (static classes), or the first free slab of structurally equal
      // symbolic size.
      int64_t BestWaste = -1;
      for (size_t SI = 0; SI < SlabStates.size(); ++SI) {
        SlabState &SS = SlabStates[SI];
        if (SS.Hoisted || SS.LastEnd >= C.Start)
          continue;
        if (C.Bytes >= 0) {
          if (SS.PerBuf < C.Bytes)
            continue;
          int64_t Waste = SS.PerBuf - C.Bytes;
          if (BestWaste < 0 || Waste < BestWaste) {
            BestWaste = Waste;
            Slab = static_cast<int>(SI);
          }
        } else if (SS.PerBuf < 0 && SS.SizeExpr == C.SizeExpr) {
          Slab = static_cast<int>(SI);
          break;
        }
      }
      if (Slab >= 0) {
        Reused = true;
        ++FP.ReuseLinks;
      }
    }
    if (Slab < 0) {
      Slab = static_cast<int>(SlabStates.size());
      SlabState SS;
      SS.PerBuf = C.Bytes;
      SS.SizeExpr = C.SizeExpr;
      SS.Hoisted = C.Hoisted;
      SlabStates.push_back(SS);
      SlabInfo Info;
      Info.Id = Slab;
      Info.Bytes = C.Bytes < 0 ? -1 : (C.Hoisted ? 2 * C.Bytes : C.Bytes);
      Info.SizeExpr = C.SizeExpr;
      Info.Hoisted = C.Hoisted;
      FP.Slabs.push_back(Info);
      if (C.Hoisted)
        ++FP.HoistedSlabs;
    }
    SlabStates[Slab].LastEnd = std::max(SlabStates[Slab].LastEnd, C.End);

    for (int MI : C.Members) {
      const LiveInterval &Iv = Ivs[MI];
      PlanEntry E;
      E.Name = Iv.Name;
      E.Slab = Slab;
      E.Bytes = Iv.Bytes;
      E.SizeExpr = Iv.Ty.str();
      E.Hoisted = C.Hoisted;
      E.BufferIndex = (C.Hoisted && Iv.MergeParam) ? 1 : 0;
      E.Offset =
          (E.BufferIndex == 1 && C.Bytes >= 0) ? C.Bytes : 0;
      E.Reused = Reused;
      E.Start = Iv.Start;
      E.End = Iv.End;
      auto EI = FirstEdge.find(Iv.Name);
      if (EI != FirstEdge.end()) {
        E.HasAlias = true;
        E.AliasOf = A.Aliases[EI->second].Src;
        E.Alias = A.Aliases[EI->second].Kind;
      }
      FP.EntryIndex[E.Name] = static_cast<int>(FP.Entries.size());
      FP.Entries.push_back(std::move(E));
    }
  }

  for (const SlabInfo &SI : FP.Slabs)
    if (SI.Bytes >= 0)
      FP.StaticArenaBytes += SI.Bytes;
  countTape(F.FBody, FP);
  return FP;
}

const char *aliasKindStr(AliasKind K) {
  switch (K) {
  case AliasKind::Let:
    return "let";
  case AliasKind::Consume:
    return "consume";
  case AliasKind::LoopResult:
    return "loop";
  }
  return "?";
}

} // namespace

MemoryPlan mem::planMemory(const Program &P) {
  MemoryPlan MP;
  for (const FunDef &F : P.Funs)
    MP.Funs.push_back(planFun(F));
  return MP;
}

std::string MemoryPlan::str() const {
  std::ostringstream OS;
  OS << "memory plan\n";
  for (const FunPlan &FP : Funs) {
    OS << "fun " << FP.Fun << ": " << FP.Slabs.size() << " slabs, arena "
       << FP.StaticArenaBytes << " bytes, " << FP.HoistedSlabs
       << " hoisted, " << FP.ReuseLinks << " reused\n";
    if (FP.TapeArrays) {
      OS << "  tape: " << FP.TapeBytes << " bytes in " << FP.TapeArrays
         << " stack-of-iterates array(s)";
      if (FP.TapeSymbolic)
        OS << ", " << FP.TapeSymbolic << " runtime-sized";
      OS << "\n";
    }
    for (const SlabInfo &SI : FP.Slabs) {
      OS << "  slab " << SI.Id << ": ";
      if (SI.Hoisted) {
        if (SI.Bytes >= 0)
          OS << "2x " << (SI.Bytes / 2) << " bytes";
        else
          OS << "2x dyn " << SI.SizeExpr;
        OS << ", hoisted double-buffer";
      } else if (SI.Bytes >= 0) {
        OS << SI.Bytes << " bytes";
      } else {
        OS << "dyn " << SI.SizeExpr;
      }
      OS << "\n";
      for (const PlanEntry &E : FP.Entries) {
        if (E.Slab != SI.Id)
          continue;
        OS << "    " << E.Name.str() << ": ";
        if (SI.Hoisted)
          OS << "half " << E.BufferIndex;
        else
          OS << "offset " << E.Offset;
        if (E.Bytes >= 0)
          OS << ", " << E.Bytes << " bytes";
        else
          OS << ", dyn " << E.SizeExpr;
        if (E.HasAlias)
          OS << ", alias of " << E.AliasOf.str() << " ("
             << aliasKindStr(E.Alias) << ")";
        if (E.Hoisted && !E.HasAlias)
          OS << ", loop-carried";
        if (E.Reused)
          OS << ", reuse";
        OS << ", live [" << E.Start << "," << E.End << "]\n";
      }
    }
  }
  return OS.str();
}
