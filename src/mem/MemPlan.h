//===- MemPlan.h - Static device-memory planning ----------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The post-flattening memory-planning stage: instead of leaving every
/// device allocation decision to the runtime buffer manager, the compiler
/// computes per-program liveness over device arrays, builds an
/// interference relation, and assigns every kernel input/output a static
/// (slab, offset, bytes) position in an arena layout.  Three placement
/// rules carry the paper's memory story (Sections 3 and 6):
///
///  * consumed-in-place arrays alias their source's slab — a kernel whose
///    output is an in-place update of a consumed input, or a host-level
///    `a with [i] <- v`, reuses the block instead of doubling it;
///  * loop-carried arrays get one hoisted, double-buffered slab outside
///    the LoopExp (the previous iteration's value is read from one half
///    while the new one is written to the other) instead of a fresh
///    alloc/free per iteration;
///  * non-interfering temporaries share slabs via best-fit colouring.
///
/// The plan is an artifact of compilation: driver/Compiler runs
/// planMemory after locality, check/Verify re-derives the liveness and
/// alias relations to reject unsound plans, and gpusim's buffer manager
/// *executes* the plan (the legacy best-fit/refcounting manager survives
/// only as the --no-mem-plan ablation).  The analyses are exposed
/// separately so the verifier and tests never trust the planner's own
/// bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_MEM_MEMPLAN_H
#define FUTHARKCC_MEM_MEMPLAN_H

#include "ir/IR.h"
#include "ir/Name.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fut {
namespace mem {

/// The live range of one device array, in statement-walk order (the walk
/// numbers every host-level statement, recursing into loop and branch
/// bodies; kernel thread bodies are leaves).  Loop-carried names and
/// names live into a loop are extended to the loop's last statement, so
/// an interval is the span during which the array's *storage* must
/// survive, not merely its syntactic uses.
struct LiveInterval {
  VName Name;
  Type Ty;
  int Start = 0; ///< Statement index of the definition (0 for params).
  int End = 0;   ///< Last statement index needing the storage, inclusive.
  /// Fed back through a loop's merge parameters: live across the whole
  /// loop, eligible for a hoisted double-buffered slab.
  bool LoopCarried = false;
  /// Bound as a loop merge parameter (reads the previous iteration's
  /// carried value — the other half of a double buffer).
  bool MergeParam = false;
  /// Byte size when every dimension is constant; -1 when symbolic.
  int64_t Bytes = -1;
};

struct LiveIntervals {
  std::vector<LiveInterval> Intervals; ///< In definition order.
  NameMap<int> Index;

  const LiveInterval *lookup(const VName &N) const {
    auto It = Index.find(N);
    return It == Index.end() ? nullptr : &Intervals[It->second];
  }
};

/// Why two names may legally share storage.
enum class AliasKind : uint8_t {
  Let,        ///< let y = x.
  Consume,    ///< y is an in-place update of x (x consumed; Section 3).
  LoopResult, ///< Loop pattern / merge parameter <-> body result.
};

struct AliasEdge {
  VName Dst, Src;
  AliasKind Kind;
};

/// Liveness + alias analysis of one flattened function, the common input
/// of the planner and the plan verifier.
struct FunMemAnalysis {
  LiveIntervals Intervals;
  std::vector<AliasEdge> Aliases;
};

FunMemAnalysis analyseFun(const FunDef &F);

/// The liveness half of analyseFun.
LiveIntervals computeDeviceIntervals(const FunDef &F);

/// The alias half of analyseFun: let-aliases, consumption aliases and
/// loop-result feedback edges over device arrays.
std::vector<AliasEdge> computeAliasEdges(const FunDef &F);

/// True when the two storage lifetimes overlap (an interference edge).
inline bool interfere(const LiveInterval &A, const LiveInterval &B) {
  return A.Start <= B.End && B.Start <= A.End;
}

/// One array's assigned position: a slab id, a byte offset within the
/// slab, and the byte extent (-1 when the size is symbolic, in which case
/// BufferIndex disambiguates double-buffer halves).
struct PlanEntry {
  VName Name;
  int Slab = 0;
  int64_t Offset = 0;
  int64_t Bytes = -1;   ///< -1: symbolic size (see SizeExpr).
  std::string SizeExpr; ///< Stable textual size, e.g. "[n_3]i32".
  bool HasAlias = false;
  VName AliasOf;
  AliasKind Alias = AliasKind::Let;
  bool Hoisted = false;  ///< Lives in a hoisted double-buffered slab.
  int BufferIndex = 0;   ///< Double-buffer half (0 or 1).
  bool Reused = false;   ///< Placed in a slab another class used earlier.
  int Start = 0, End = 0; ///< Planned live range (informational; the
                          ///< verifier re-derives its own).
};

struct SlabInfo {
  int Id = 0;
  int64_t Bytes = -1;   ///< Static total extent; -1 when symbolic.
  std::string SizeExpr; ///< Per-buffer size text when symbolic.
  bool Hoisted = false; ///< Double-buffered loop-carried slab (2x extent).
};

struct FunPlan {
  std::string Fun;
  std::vector<PlanEntry> Entries; ///< In first-definition order.
  std::vector<SlabInfo> Slabs;
  NameMap<int> EntryIndex;
  /// Sum of the statically sized slabs' extents (hoisted slabs count both
  /// halves); symbolic slabs are excluded.
  int64_t StaticArenaBytes = 0;
  int HoistedSlabs = 0;
  int ReuseLinks = 0; ///< Classes placed into an already-used slab.
  /// The AD tape: stack-of-iterates arrays the VJP pass binds as adtape*
  /// loop results (one per taped loop and merge parameter).  They are
  /// host-resident and never join the slab colouring, but the plan
  /// accounts for them so the tape footprint can be checked against the
  /// device peak bound (bench_ad, the CI AD leg).
  int64_t TapeBytes = 0; ///< Sum of the statically sized tape extents.
  int TapeArrays = 0;
  int TapeSymbolic = 0; ///< Tape arrays whose trip count is runtime-sized.

  const PlanEntry *lookup(const VName &N) const {
    auto It = EntryIndex.find(N);
    return It == EntryIndex.end() ? nullptr : &Entries[It->second];
  }
};

struct MemoryPlan {
  std::vector<FunPlan> Funs;

  const FunPlan *forFun(const std::string &Name) const {
    for (const FunPlan &FP : Funs)
      if (FP.Fun == Name)
        return &FP;
    return nullptr;
  }

  /// Stable textual dump (the --print-mem-plan format, pinned by a golden
  /// test): deterministic order, no pointers, no unordered iteration.
  std::string str() const;
};

/// Plans every function of a flattened program.  Pure and deterministic:
/// the same program always yields the same plan.
MemoryPlan planMemory(const Program &P);

} // namespace mem
} // namespace fut

#endif // FUTHARKCC_MEM_MEMPLAN_H
