//===- BenchTrace.h - Machine-readable benchmark trace output ---*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lets the report-style bench binaries emit the same counters the trace
/// layer records — fusion/flatten pass counters, device transaction and
/// fault counters — into a machine-readable BENCH_trace.json, so CI and
/// notebooks consume the numbers without scraping stdout.
///
/// Usage per run:
///   BenchTraceWriter W;
///   W.beginRun();                 // clears the global trace session
///   ... compile and run ...
///   W.record("kmeans", "gtx780", {{"fut_cycles", X}, ...});
///   ...
///   W.write("BENCH_trace.json");
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_BENCH_SUITE_BENCHTRACE_H
#define FUTHARKCC_BENCH_SUITE_BENCHTRACE_H

#include "support/Json.h"
#include "trace/Trace.h"

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace fut {
namespace bench {

class BenchTraceWriter {
  std::ostringstream Rows;
  bool First = true;

public:
  BenchTraceWriter() {
    trace::TraceSession::global().clear();
    trace::TraceSession::global().setEnabled(true);
  }
  ~BenchTraceWriter() {
    trace::TraceSession::global().setEnabled(false);
    trace::TraceSession::global().clear();
  }

  /// Starts a fresh counter window for the next record() call.
  void beginRun() { trace::TraceSession::global().clear(); }

  /// Snapshots the trace counters accumulated since beginRun() together
  /// with caller-supplied metrics under one benchmark/device entry.
  void
  record(const std::string &Benchmark, const std::string &Device,
         const std::vector<std::pair<std::string, double>> &Metrics = {}) {
    if (!First)
      Rows << ",\n";
    First = false;
    Rows << "  {\"benchmark\":\"" << json::escape(Benchmark)
         << "\",\"device\":\"" << json::escape(Device) << "\"";
    for (const auto &KV : Metrics)
      Rows << ",\"" << json::escape(KV.first)
           << "\":" << json::number(KV.second);
    Rows << ",\"counters\":{";
    bool FirstCtr = true;
    for (const auto &KV : trace::TraceSession::global().counters()) {
      if (!FirstCtr)
        Rows << ",";
      FirstCtr = false;
      Rows << "\"" << json::escape(KV.first)
           << "\":" << json::number(static_cast<double>(KV.second));
    }
    Rows << "}}";
  }

  std::string str() const {
    return "{\"benchmarks\":[\n" + Rows.str() + "\n]}\n";
  }

  /// Writes the collected entries; returns false on I/O failure.
  bool write(const std::string &Path) const {
    std::ofstream Out(Path);
    if (!Out)
      return false;
    Out << str();
    return static_cast<bool>(Out);
  }
};

} // namespace bench
} // namespace fut

#endif // FUTHARKCC_BENCH_SUITE_BENCHTRACE_H
