//===- Benchmarks.h - The sixteen paper benchmarks --------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sixteen benchmarks of Section 6 (Rodinia, FinPar, Parboil and
/// Accelerate ports), written in the surface language with synthetic
/// datasets whose shapes follow Table 2 at simulator-friendly scale.
/// Each benchmark carries the reference-implementation model (RefConfig)
/// and the paper's measured speedups for comparison in EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_BENCH_SUITE_BENCHMARKS_H
#define FUTHARKCC_BENCH_SUITE_BENCHMARKS_H

#include "gpusim/Device.h"
#include "interp/Value.h"
#include "refimpl/RefImpl.h"

#include <functional>
#include <string>
#include <vector>

namespace fut {
namespace bench {

struct BenchmarkDef {
  std::string Name;
  std::string Suite; ///< rodinia / finpar / parboil / accelerate
  std::string Source;
  std::function<std::vector<Value>()> MakeInputs;
  RefConfig Ref;
  /// Chunking-sensitive streams (the paper's programmer obligation is
  /// relied upon, as in OptionPricing): verify against the interpreter
  /// with this interleaved chunk count (0 = one maximal chunk), matching
  /// the device's interleaved stream chunking.
  int64_t VerifyInterleave = 0;

  /// Paper speedups (reference time / Futhark time), Fig 13 / Table 1.
  double PaperSpeedupGTX = 0;
  double PaperSpeedupW8100 = 0; ///< 0: not measured in the paper.
  const char *Notes = "";
};

/// All sixteen benchmarks, in the paper's order.
const std::vector<BenchmarkDef> &allBenchmarks();

/// Finds one by name (nullptr if unknown).
const BenchmarkDef *findBenchmark(const std::string &Name);

/// The result of running one benchmark under one configuration.
struct BenchRun {
  gpusim::CostReport Cost;
  std::vector<Value> Outputs;
};

/// Compiles with \p Opts and runs on \p DP; also verifies the outputs
/// against the reference interpreter when \p Verify is set.
ErrorOr<BenchRun> runBenchmark(const BenchmarkDef &B,
                               const CompilerOptions &Opts,
                               const gpusim::DeviceParams &DP,
                               bool Verify = false);

/// Convenience: simulated speedup of the fully optimised program over the
/// reference model on the given device (reference cycles are divided by
/// its hand-tuning factor first).
struct SpeedupResult {
  double FutharkCycles = 0;
  double RefCycles = 0;
  double Speedup = 0;
  /// Full cost report of the Futhark run (engine busy times, overlap
  /// savings, device-memory history), for the bench trace counters.
  gpusim::CostReport FutharkCost;
};
ErrorOr<SpeedupResult> measureSpeedup(const BenchmarkDef &B,
                                      const gpusim::DeviceParams &DP);

} // namespace bench
} // namespace fut

#endif // FUTHARKCC_BENCH_SUITE_BENCHMARKS_H
