//===- Benchmarks.cpp - The sixteen paper benchmarks ---------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "bench_suite/Benchmarks.h"

#include "interp/Interp.h"
#include "parser/Desugar.h"
#include "support/Utils.h"

using namespace fut;
using namespace fut::bench;

namespace {

Value iv(int32_t V) { return Value::scalar(PrimValue::makeI32(V)); }

Value fvecR(size_t N, uint64_t Seed, double Lo = 0.0, double Hi = 1.0) {
  SplitMix64 Rng(Seed);
  std::vector<double> Xs(N);
  for (double &X : Xs)
    X = Rng.nextDouble(Lo, Hi);
  return makeVectorValue(ScalarKind::F32, Xs);
}

Value ivecR(size_t N, uint64_t Seed, int64_t Lo, int64_t Hi) {
  SplitMix64 Rng(Seed);
  std::vector<int64_t> Xs(N);
  for (int64_t &X : Xs)
    X = Lo + static_cast<int64_t>(Rng.nextBelow(Hi - Lo + 1));
  return makeIntVectorValue(ScalarKind::I32, Xs);
}

Value fmatR(int64_t R, int64_t C, uint64_t Seed, double Lo = 0.0,
            double Hi = 1.0) {
  SplitMix64 Rng(Seed);
  std::vector<double> Xs(R * C);
  for (double &X : Xs)
    X = Rng.nextDouble(Lo, Hi);
  return makeMatrixValue(ScalarKind::F32, R, C, Xs);
}

Value imatR(int64_t R, int64_t C, uint64_t Seed, int64_t Lo, int64_t Hi) {
  SplitMix64 Rng(Seed);
  std::vector<PrimValue> Data;
  Data.reserve(R * C);
  for (int64_t I = 0; I < R * C; ++I)
    Data.push_back(PrimValue::makeI32(static_cast<int32_t>(
        Lo + static_cast<int64_t>(Rng.nextBelow(Hi - Lo + 1)))));
  return Value::array(ScalarKind::I32, {R, C}, std::move(Data));
}

std::vector<BenchmarkDef> makeBenchmarks() {
  std::vector<BenchmarkDef> Bs;

  //===------------------------------------------------------------------===//
  // Rodinia
  //===------------------------------------------------------------------===//

  {
    BenchmarkDef B;
    B.Name = "backprop";
    B.Suite = "rodinia";
    // Forward pass of one layer plus the output error reduction, which the
    // Rodinia reference leaves sequential on the host.
    B.Source =
        "fun main (xs: [n]f32) (ws: [h][n]f32) (ts: [h]f32): ([h]f32, f32) =\n"
        "  let hidden = map (\\(w: [n]f32): f32 ->\n"
        "        let s = reduce (+) 0.0 (map (*) w xs)\n"
        "        in 1.0 / (1.0 + exp (0.0 - s))) ws\n"
        "  let err = reduce (+) 0.0\n"
        "        (map (\\(o: f32) (t: f32): f32 -> (o - t) * (o - t))\n"
        "             hidden ts)\n"
        "  in (hidden, err)";
    B.MakeInputs = [] {
      return std::vector<Value>{fvecR(2048, 101, -1, 1),
                                fmatR(96, 2048, 102, -0.1, 0.1),
                                fvecR(96, 103)};
    };
    B.Ref.ReduceOnHost = true; // the reduction Rodinia left sequential
    B.Ref.Coalescing = false;
    B.Ref.HandTuningGTX = 1.32;  // otherwise decent training kernels
    B.Ref.HandTuningW8100 = 0.41;
    B.PaperSpeedupGTX = 2.27;
    B.PaperSpeedupW8100 = 3.22;
    B.Notes = "speedup related to a reduction Rodinia left sequential";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "cfd";
    B.Suite = "rodinia";
    // Flux computation with an indirect neighbour gather.
    B.Source =
        "fun main (rho: [n]f32) (nbs: [n][4]i32): [n]f32 =\n"
        "  map (\\(i: i32): f32 ->\n"
        "         let c = rho[i]\n"
        "         let f = loop (f = 0.0) for j < 4 do\n"
        "           let nb = nbs[i, j]\n"
        "           let other = if nb >= 0 then rho[nb] else c\n"
        "           in f + (other - c) * 0.5\n"
        "         in c + f * 0.25)\n"
        "      (iota n)";
    B.MakeInputs = [] {
      int64_t N = 8192;
      return std::vector<Value>{fvecR(N, 111, 0.5, 2),
                                imatR(N, 4, 112, -1, N - 1)};
    };
    // The CFD reference is well-tuned hand-written OpenCL.
    B.Ref.HandTuningGTX = 1.19;
    B.Ref.HandTuningW8100 = 1.16;
    B.PaperSpeedupGTX = 0.84;
    B.PaperSpeedupW8100 = 0.86;
    B.Notes = "reference is well-tuned; Futhark pays for extra copies";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "hotspot";
    B.Suite = "rodinia";
    B.Source =
        "fun main (t0: [r][c]f32) (p: [r][c]f32) (iters: i32): [r][c]f32 =\n"
        "  loop (t = t0) for it < iters do\n"
        "    map (\\(i: i32): [c]f32 ->\n"
        "      map (\\(j: i32): f32 ->\n"
        "        let ct = t[i, j]\n"
        "        let up = if i > 0 then t[i - 1, j] else ct\n"
        "        let dn = if i < r - 1 then t[i + 1, j] else ct\n"
        "        let lf = if j > 0 then t[i, j - 1] else ct\n"
        "        let rt = if j < c - 1 then t[i, j + 1] else ct\n"
        "        in ct + 0.1 * (up + dn + lf + rt - 4.0 * ct)\n"
        "           + 0.05 * p[i, j])\n"
        "        (iota c))\n"
        "      (iota r)";
    B.MakeInputs = [] {
      return std::vector<Value>{fmatR(96, 96, 121, 20, 80),
                                fmatR(96, 96, 122, 0, 1), iv(12)};
    };
    // The reference uses time tiling, which pays off on the NVIDIA part
    // but not on the AMD one (Section 6.1).
    B.Ref.HandTuningGTX = 1.27;
    B.Ref.HandTuningW8100 = 0.28;
    B.PaperSpeedupGTX = 0.79;
    B.PaperSpeedupW8100 = 3.59;
    B.Notes = "ref time tiling pays on NVIDIA, not on AMD; Futhark "
              "double-buffers by copy";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "kmeans";
    B.Suite = "rodinia";
    // Cluster sizes (Fig 4c) and flattened centre sums.
    B.Source =
        "fun main (k: i32) (kd: i32) (d: i32) (points: [n][d]f32)\n"
        "         (membership: [n]i32): ([k]i32, [kd]f32) =\n"
        "  let counts = stream_red (map (+))\n"
        "    (\\(acc: *[k]i32) (chunk: [chunksize]i32): [k]i32 ->\n"
        "       loop (acc) for i < chunksize do\n"
        "         let cl = chunk[i]\n"
        "         in acc with [cl] <- acc[cl] + 1)\n"
        "    (replicate k 0) membership\n"
        "  let sums = stream_red (map (+))\n"
        "    (\\(acc: *[kd]f32) (ps: [cs][d]f32) (ms: [cs]i32): [kd]f32 ->\n"
        "       loop (acc) for i < cs do\n"
        "         let cl = ms[i]\n"
        "         in loop (acc) for j < d do\n"
        "              let acc[cl * d + j] = acc[cl * d + j] + ps[i, j]\n"
        "              in acc)\n"
        "    (replicate kd 0.0) points membership\n"
        "  in (counts, sums)";
    B.MakeInputs = [] {
      int64_t N = 8192, K = 5, D = 4;
      return std::vector<Value>{iv(K), iv(K * D), iv(D),
                                fmatR(N, D, 131), ivecR(N, 132, 0, K - 1)};
    };
    // Rodinia does not parallelise the segmented reduction for the new
    // cluster centres: the cross-chunk combine runs on the host.
    B.Ref.SegReduceInterchange = false;
    B.Ref.ReduceOnHost = true;
    B.Ref.HandTuningGTX = 10.3; // counts/assignment kernels are tight
    B.Ref.HandTuningW8100 = 10.9; // the AMD ref run is faster (Table 1)
    B.PaperSpeedupGTX = 2.79;
    B.PaperSpeedupW8100 = 0.79;
    B.Notes = "ref leaves the segmented reduction (new centres) serial";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "lavamd";
    B.Suite = "rodinia";
    // Particles in boxes; forces from the home box's neighbour list
    // (indirect indexing), the tiling pattern the paper highlights.
    B.Source =
        "fun main (p: i32) (nn: i32) (pos: [b][p]f32)\n"
        "         (nbrs: [b][nn]i32): [b][p]f32 =\n"
        "  map (\\(bi: i32): [p]f32 ->\n"
        "    map (\\(pi: i32): f32 ->\n"
        "      let x = pos[bi, pi]\n"
        "      in loop (f = 0.0) for ni < nn do\n"
        "        let nb = nbrs[bi, ni]\n"
        "        let fi = loop (fi = 0.0) for qj < p do\n"
        "          let q = pos[nb, qj]\n"
        "          let dx = x - q\n"
        "          in fi + dx * 0.01 - dx * dx * 0.001\n"
        "        in f + fi)\n"
        "      (iota p))\n"
        "    (iota b)";
    B.MakeInputs = [] {
      int64_t BX = 48, PP = 24, NN = 8;
      return std::vector<Value>{iv(PP), iv(NN), fmatR(BX, PP, 141),
                                imatR(BX, NN, 142, 0, BX - 1)};
    };
    B.Ref.Tiling = false;
    B.Ref.HandTuningGTX = 2.43; // hand-written kernel is otherwise tighter
    B.Ref.HandTuningW8100 = 0.95;
    B.PaperSpeedupGTX = 0.76;
    B.PaperSpeedupW8100 = 1.27;
    B.Notes = "indirectly indexed tiling (Section 5.2's LavaMD pattern)";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "myocyte";
    B.Suite = "rodinia";
    // Per-instance sequential ODE solver over a state vector with
    // in-place updates; wins come from automatic coalescing.
    B.Source =
        "fun main (inits: [w][s]f32) (steps: i32): [w][s]f32 =\n"
        "  map (\\(st0: [s]f32): [s]f32 ->\n"
        "    let st1 = copy st0\n"
        "    in loop (st = st1) for t < steps do\n"
        "      loop (st) for j < s do\n"
        "        let prev = st[j]\n"
        "        let nb = st[(j + 1) % s]\n"
        "        let st[j] = prev + 0.01 * (nb - prev) * (1.0 - prev)\n"
        "        in st)\n"
        "  inits";
    B.MakeInputs = [] {
      return std::vector<Value>{fmatR(2048, 32, 151, 0, 1), iv(16)};
    };
    B.Ref.Coalescing = false; // tedious to do by hand on such programs
    B.Ref.HandTuningGTX = 0.66; // ref also misses other locality opts
    B.PaperSpeedupGTX = 4.92;
    B.Notes = "win attributed to automatic coalescing";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "nn";
    B.Suite = "rodinia";
    // k nearest neighbours: per iteration a fused distance map + min/argmin
    // reduction; the reference leaves the reductions on the CPU.
    B.Source =
        "fun main (xs: [n]f32) (ys: [n]f32) (k: i32): ([k]f32, [k]i32) =\n"
        "  let ds = map (\\(x: f32) (y: f32): f32 ->\n"
        "                  abs (x - 3.0) + abs (y - 4.0)) xs ys\n"
        "  let r = loop ((prev, bd, bi) =\n"
        "                  (-1.0, replicate k 0.0, replicate k 0))\n"
        "          for it < k do\n"
        "    let (mv, mi) = reduce\n"
        "        (\\(v1: f32, i1: i32) (v2: f32, i2: i32): (f32, i32) ->\n"
        "           if v1 < v2 then (v1, i1) else (v2, i2))\n"
        "        (1000000.0, -1)\n"
        "        (zip (map (\\(d: f32): f32 ->\n"
        "                     if d > prev then d else 1000000.0) ds)\n"
        "             (iota n))\n"
        "    in (mv, bd with [it] <- mv, bi with [it] <- mi)\n"
        "  let (prev, bd, bi) = r\n"
        "  in (bd, bi)";
    B.MakeInputs = [] {
      return std::vector<Value>{fvecR(16384, 161, 0, 100),
                                fvecR(16384, 162, 0, 100), iv(6)};
    };
    B.Ref.ReduceOnHost = true; // 100 reduces left on the CPU
    B.Ref.HandTuningGTX = 1.44; // the distance kernel itself is tight
    B.Ref.HandTuningW8100 = 1.17;
    B.PaperSpeedupGTX = 16.26;
    B.PaperSpeedupW8100 = 5.14;
    B.Notes = "ref reduces on the host; AMD gains less due to launch "
              "overhead";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "pathfinder";
    B.Suite = "rodinia";
    B.Source =
        "fun main (wall: [r][c]i32): [c]i32 =\n"
        "  let first = map (\\(j: i32): i32 -> wall[0, j]) (iota c)\n"
        "  in loop (cur = first) for i < r - 1 do\n"
        "    map (\\(j: i32): i32 ->\n"
        "           let l = if j > 0 then cur[j - 1] else cur[j]\n"
        "           let m = cur[j]\n"
        "           let rr = if j < c - 1 then cur[j + 1] else cur[j]\n"
        "           in wall[i + 1, j] + min (min l m) rr)\n"
        "        (iota c)";
    B.MakeInputs = [] { return std::vector<Value>{imatR(64, 4096, 171, 0, 9)}; };
    // The reference's time tiling does redundant work here.
    B.Ref.HandTuningGTX = 0.40;
    B.Ref.HandTuningW8100 = 0.36;
    B.PaperSpeedupGTX = 2.49;
    B.PaperSpeedupW8100 = 2.8;
    B.Notes = "ref time tiling does not pay off on the tested hardware";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "srad";
    B.Suite = "rodinia";
    // Speckle-reducing anisotropic diffusion: global statistics reduces
    // plus a stencil update per iteration.
    B.Source =
        "fun main (img0: [r][c]f32) (iters: i32): [r][c]f32 =\n"
        "  loop (img = img0) for it < iters do\n"
        "    let total = reduce (+) 0.0\n"
        "        (map (\\(row: [c]f32): f32 -> reduce (+) 0.0 row) img)\n"
        "    let mean = total / (f32 r * f32 c)\n"
        "    in map (\\(i: i32): [c]f32 ->\n"
        "         map (\\(j: i32): f32 ->\n"
        "            let ct = img[i, j]\n"
        "            let up = if i > 0 then img[i - 1, j] else ct\n"
        "            let lf = if j > 0 then img[i, j - 1] else ct\n"
        "            in ct + 0.2 * (up + lf - 2.0 * ct) * (ct / mean))\n"
        "           (iota c))\n"
        "         (iota r)";
    B.MakeInputs = [] {
      return std::vector<Value>{fmatR(96, 96, 181, 1, 2), iv(8)};
    };
    B.Ref.ReduceOnHost = true; // statistics reduces left unoptimised
    B.Ref.HandTuningGTX = 0.65; // plus per-iteration host bookkeeping
    B.Ref.HandTuningW8100 = 0.14;
    B.PaperSpeedupGTX = 1.24;
    B.PaperSpeedupW8100 = 5.6;
    B.Notes = "ref leaves (nested) reduces unoptimised";
    Bs.push_back(std::move(B));
  }

  //===------------------------------------------------------------------===//
  // FinPar
  //===------------------------------------------------------------------===//

  {
    BenchmarkDef B;
    B.Name = "locvolcalib";
    B.Suite = "finpar";
    // The outer map over options contains a sequential time loop which
    // itself contains inner maps and a scan — exploiting all parallelism
    // needs the G7 map-loop interchange.
    B.Source =
        "fun main (os: [o][m]f32) (steps: i32): [o][m]f32 =\n"
        "  map (\\(row0: [m]f32): [m]f32 ->\n"
        "    loop (row = row0) for t < steps do\n"
        "      let a = map (\\(j: i32): f32 ->\n"
        "           let lf = if j > 0 then row[j - 1] else row[j]\n"
        "           let rt = if j < m - 1 then row[j + 1] else row[j]\n"
        "           in 0.25 * lf + 0.5 * row[j] + 0.25 * rt)\n"
        "          (iota m)\n"
        "      let sc = scan (+) 0.0 a\n"
        "      let total = sc[m - 1]\n"
        "      in map (\\(v: f32): f32 -> v / (1.0 + total * 0.001)) sc)\n"
        "    os";
    B.MakeInputs = [] {
      return std::vector<Value>{fmatR(64, 128, 191, 0, 1), iv(12)};
    };
    // The FinPar reference is expert-tuned.
    B.Ref.HandTuningGTX = 1.1;
    B.Ref.HandTuningW8100 = 1.6;
    B.PaperSpeedupGTX = 0.94;
    B.PaperSpeedupW8100 = 0.62;
    B.Notes = "needs map-loop interchange (G7); AMD pays more for the "
              "coalescing transpositions";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "optionpricing";
    B.Suite = "finpar";
    // Fig 10's structure: a stream_map with an expensive independent
    // formula per chunk and a cheap recurrence within, fused with the
    // outer reduce into a stream_red; a Brownian-bridge-style in-place
    // loop per element (inexpressible without in-place updates).
    B.Source =
        "fun main (n: i32) (m: i32) (dirs: [m]f32): f32 =\n"
        "  let ys = stream_map (\\(is: [cs]i32): [cs]f32 ->\n"
        "        let seed = if cs > 0 then is[0] else 0\n"
        "        let a = loop (a = f32 seed) for q < 20 do\n"
        "                  a * 0.9 + 0.1\n"
        "        let t = map (\\(i: i32): f32 -> a + f32 i * 0.001) is\n"
        "        let y = scan (+) 0.0 t\n"
        "        in map (\\(v: f32): f32 ->\n"
        "             let bb = replicate m 0.0\n"
        "             let bb2 = loop (bb) for j < m do\n"
        "                 let bb[j] = v * dirs[j]\n"
        "                     + (if j > 0 then bb[j - 1] else 0.0) * 0.5\n"
        "                 in bb\n"
        "             in reduce (+) 0.0 bb2 * 0.001 + v * 0.01) y)\n"
        "      (iota n)\n"
        "  in reduce (+) 0.0 ys";
    B.MakeInputs = [] {
      return std::vector<Value>{iv(8192), iv(32), fvecR(32, 201, 0, 1)};
    };
    B.VerifyInterleave = 4096; // matches the device chunk count
    B.Ref.HandTuningGTX = 0.8;
    B.Ref.HandTuningW8100 = 0.85;
    B.PaperSpeedupGTX = 1.27;
    B.PaperSpeedupW8100 = 1.19;
    B.Notes = "measures sequentialisation of excess parallelism";
    Bs.push_back(std::move(B));
  }

  //===------------------------------------------------------------------===//
  // Parboil
  //===------------------------------------------------------------------===//

  {
    BenchmarkDef B;
    B.Name = "mriq";
    B.Suite = "parboil";
    // Per-voxel sum over the (invariant) k-space sample tables — the
    // one-dimensional tiling pattern.
    B.Source =
        "fun main (xs: [x]f32) (kx: [ks]f32) (phi: [ks]f32): [x]f32 =\n"
        "  map (\\(p: f32): f32 ->\n"
        "         reduce (+) 0.0\n"
        "           (map (\\(k: f32) (ph: f32): f32 -> ph * cos (k * p))\n"
        "                kx phi))\n"
        "      xs";
    B.MakeInputs = [] {
      return std::vector<Value>{fvecR(4096, 211, -1, 1),
                                fvecR(256, 212, 0, 6.28),
                                fvecR(256, 213, -1, 1)};
    };
    B.Ref.Tiling = false;
    B.Ref.HandTuningGTX = 2.81; // otherwise tight hand-written kernel
    B.Ref.HandTuningW8100 = 1.55;
    B.PaperSpeedupGTX = 1.30;
    B.PaperSpeedupW8100 = 1.25;
    B.Notes = "selected to demonstrate tiling";
    Bs.push_back(std::move(B));
  }

  //===------------------------------------------------------------------===//
  // Accelerate
  //===------------------------------------------------------------------===//

  {
    BenchmarkDef B;
    B.Name = "crystal";
    B.Suite = "accelerate";
    B.Source =
        "fun main (w: i32) (xs: [npix]f32): [npix]f32 =\n"
        "  map (\\(x: f32): f32 ->\n"
        "         reduce (+) 0.0\n"
        "           (map (\\(wi: i32): f32 ->\n"
        "                   cos (x * f32 (wi + 1) + f32 wi))\n"
        "                (iota w)))\n"
        "      xs";
    B.MakeInputs = [] {
      return std::vector<Value>{iv(24), fvecR(8192, 221, 0, 6.28)};
    };
    B.Ref.Fusion = false; // combinator-at-a-time execution
    B.Ref.HandTuningGTX = 1.13; // the unfused pipeline is itself decent
    B.PaperSpeedupGTX = 4.88;
    B.Notes = "fusion impact x10.1 in the paper's ablation";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "fluid";
    B.Suite = "accelerate";
    B.Source =
        "fun main (g0: [r][c]f32) (b: [r][c]f32) (iters: i32): [r][c]f32 =\n"
        "  loop (g = g0) for it < iters do\n"
        "    map (\\(i: i32): [c]f32 ->\n"
        "      map (\\(j: i32): f32 ->\n"
        "        let up = if i > 0 then g[i - 1, j] else 0.0\n"
        "        let dn = if i < r - 1 then g[i + 1, j] else 0.0\n"
        "        let lf = if j > 0 then g[i, j - 1] else 0.0\n"
        "        let rt = if j < c - 1 then g[i, j + 1] else 0.0\n"
        "        in (b[i, j] + 0.2 * (up + dn + lf + rt)) / 1.8)\n"
        "        (iota c))\n"
        "      (iota r)";
    B.MakeInputs = [] {
      return std::vector<Value>{fmatR(64, 64, 231), fmatR(64, 64, 232),
                                iv(10)};
    };
    B.Ref.Fusion = false;
    B.Ref.HandTuningGTX = 0.37; // Accelerate per-combinator scheduling
    B.PaperSpeedupGTX = 2.68;
    B.Notes = "iterated Jacobi solver";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "mandelbrot";
    B.Suite = "accelerate";
    B.Source =
        "fun main (w: i32) (h: i32) (limit: i32): [h][w]i32 =\n"
        "  map (\\(i: i32): [w]i32 ->\n"
        "    map (\\(j: i32): i32 ->\n"
        "      let cr = -2.0 + 3.0 * f32 j / f32 w\n"
        "      let ci = -1.5 + 3.0 * f32 i / f32 h\n"
        "      let res = loop ((zr, zi, cnt) = (0.0, 0.0, 0))\n"
        "                for t < limit do\n"
        "        let zr2 = zr * zr - zi * zi + cr\n"
        "        let zi2 = 2.0 * zr * zi + ci\n"
        "        let inside = zr2 * zr2 + zi2 * zi2 < 4.0\n"
        "        in (if inside then zr2 else zr,\n"
        "            if inside then zi2 else zi,\n"
        "            if inside then cnt + 1 else cnt)\n"
        "      let (zr, zi, cnt) = res\n"
        "      in cnt) (iota w)) (iota h)";
    B.MakeInputs = [] {
      return std::vector<Value>{iv(96), iv(96), iv(32)};
    };
    // Nothing to fuse; Accelerate's overhead is per-combinator scheduling.
    B.Ref.HandTuningGTX = 0.27;
    B.PaperSpeedupGTX = 3.80;
    B.Notes = "kept compute-bound: the loop is NOT interchanged (G7 "
              "heuristic)";
    Bs.push_back(std::move(B));
  }

  {
    BenchmarkDef B;
    B.Name = "nbody";
    B.Suite = "accelerate";
    B.Source =
        "fun main (xs: [n]f32) (ys: [n]f32) (ms: [n]f32): "
        "([n]f32, [n]f32) =\n"
        "  let r = map (\\(xi: f32) (yi: f32): (f32, f32) ->\n"
        "     let ds = map (\\(xj: f32) (yj: f32) (mj: f32): (f32, f32) ->\n"
        "          let dx = xj - xi\n"
        "          let dy = yj - yi\n"
        "          let r2 = dx * dx + dy * dy + 0.01\n"
        "          let f = mj / (r2 * sqrt r2)\n"
        "          in (f * dx, f * dy)) xs ys ms\n"
        "     in reduce (\\(a1: f32, b1: f32) (a2: f32, b2: f32): "
        "(f32, f32) ->\n"
        "          (a1 + a2, b1 + b2)) (0.0, 0.0) ds) xs ys\n"
        "  in r";
    B.MakeInputs = [] {
      return std::vector<Value>{fvecR(768, 241, -1, 1),
                                fvecR(768, 242, -1, 1),
                                fvecR(768, 243, 0.1, 1)};
    };
    B.Ref.Fusion = false;
    B.Ref.Tiling = false;
    B.Ref.HandTuningGTX = 1.99; // the CUDA kernels are otherwise decent
    B.Ref.HandTuningW8100 = 1.15;
    B.PaperSpeedupGTX = 6.85;
    B.Notes = "width-N map of folds over all N bodies; tiling impact "
              "x2.29";
    Bs.push_back(std::move(B));
  }

  return Bs;
}

} // namespace

const std::vector<BenchmarkDef> &fut::bench::allBenchmarks() {
  static const std::vector<BenchmarkDef> Bs = makeBenchmarks();
  return Bs;
}

const BenchmarkDef *fut::bench::findBenchmark(const std::string &Name) {
  for (const BenchmarkDef &B : allBenchmarks())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

ErrorOr<BenchRun> fut::bench::runBenchmark(const BenchmarkDef &B,
                                           const CompilerOptions &Opts,
                                           const gpusim::DeviceParams &DP,
                                           bool Verify) {
  NameSource NS;
  auto C = compileSource(B.Source, NS, Opts);
  if (!C)
    return CompilerError(B.Name + ": " + C.getError().Message);
  std::vector<Value> Inputs = B.MakeInputs();

  gpusim::Device D(DP);
  auto R = D.runMain(C->P, Inputs);
  if (!R)
    return CompilerError(B.Name + " (device): " + R.getError().Message);

  if (Verify) {
    NameSource NS2;
    auto Ref = frontend(B.Source, NS2);
    if (!Ref)
      return Ref.getError();
    InterpOptions IOpts;
    IOpts.StreamInterleave = B.VerifyInterleave;
    Interpreter I(*Ref, IOpts);
    auto Want = I.run(Inputs);
    if (!Want)
      return CompilerError(B.Name + " (reference): " +
                           Want.getError().Message);
    if (Want->size() != R->Outputs.size())
      return CompilerError(B.Name + ": result arity mismatch");
    for (size_t J = 0; J < Want->size(); ++J)
      if (!R->Outputs[J].approxEqual((*Want)[J], 1e-4, 1e-5))
        return CompilerError(B.Name + ": device result " +
                             std::to_string(J) +
                             " deviates from the reference semantics");
  }

  BenchRun Out;
  Out.Cost = R->Cost;
  Out.Outputs = std::move(R->Outputs);
  return Out;
}

ErrorOr<SpeedupResult> fut::bench::measureSpeedup(
    const BenchmarkDef &B, const gpusim::DeviceParams &DP) {
  CompilerOptions Full;
  auto F = runBenchmark(B, Full, DP);
  if (!F)
    return F.getError();
  auto R = runBenchmark(B, refCompilerOptions(B.Ref), DP);
  if (!R)
    return R.getError();

  double Tuning =
      DP.Name == "w8100" ? B.Ref.HandTuningW8100 : B.Ref.HandTuningGTX;
  SpeedupResult S;
  S.FutharkCycles = F->Cost.TotalCycles;
  S.RefCycles = R->Cost.TotalCycles / Tuning;
  S.Speedup = S.RefCycles / S.FutharkCycles;
  S.FutharkCost = F->Cost;
  return S;
}
