//===- Parser.h - Recursive-descent parser ----------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the surface syntax into an SProgram.  See SurfaceAST.h for the
/// shape of the result and Desugar.h for the translation to core IR.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_PARSER_PARSER_H
#define FUTHARKCC_PARSER_PARSER_H

#include "parser/SurfaceAST.h"
#include "support/Error.h"

namespace fut {

ErrorOr<SProgram> parseProgram(const std::string &Source);

} // namespace fut

#endif // FUTHARKCC_PARSER_PARSER_H
