//===- SurfaceAST.h - Parsed surface syntax ---------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax produced by the parser, before desugaring to the
/// core IR.  Surface expressions are full trees (not ANF) and may contain
/// tuples, lambdas with tuple patterns, operator sections, and the `let
/// x[i] = v` / `a with [i] <- v` in-place update sugar of Section 2.2.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_PARSER_SURFACEAST_H
#define FUTHARKCC_PARSER_SURFACEAST_H

#include "ir/Prim.h"
#include "support/Error.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace fut {

/// A dimension in a surface type annotation.
struct SDim {
  enum class Kind { Anon, Name, Const } K = Kind::Anon;
  std::string Name;
  int64_t Const = 0;

  static SDim anon() { return SDim(); }
  static SDim name(std::string N) {
    SDim D;
    D.K = Kind::Name;
    D.Name = std::move(N);
    return D;
  }
  static SDim constant(int64_t C) {
    SDim D;
    D.K = Kind::Const;
    D.Const = C;
    return D;
  }
};

/// A surface type: either a scalar/array type or a tuple of such.
struct SType {
  bool IsTuple = false;
  std::vector<SType> Elems; // when IsTuple

  bool Unique = false;
  std::vector<SDim> Dims;
  ScalarKind Elem = ScalarKind::I32;

  /// Flattens tuples into a list of non-tuple surface types.
  void flattenInto(std::vector<SType> &Out) const {
    if (!IsTuple) {
      Out.push_back(*this);
      return;
    }
    for (const SType &T : Elems)
      T.flattenInto(Out);
  }
};

struct SExp;
using SExpPtr = std::unique_ptr<SExp>;

/// One element of a (possibly tuple-) pattern.
struct SPatElem {
  std::string Name;
  std::optional<SType> Ty;
};
using SPat = std::vector<SPatElem>;

enum class SExpKind : uint8_t {
  IntLit,
  FloatLit,
  BoolLit,
  Var,
  BinOpE,
  UnOpE,
  If,      // Args = {cond, then, else}
  Index,   // Args = {arr, i...}
  Apply,   // Name = head (builtin/function), Args = arguments
  Lambda,  // LParams, LRet, Args = {body}
  OpSection, // Bin; Args empty = (op); one element = bound operand
  Let,     // Pat, Args = {rhs, body}
  LetWith, // Name = array, Args = {i..., rhs, body}
  With,    // Args = {arr, i..., value}
  Loop,    // LoopMerge, Name2 = index var, Args = {bound, body,
           //                                       init... (aligned w/ merge)}
  Tuple,   // Args = elements
};

struct SExp {
  SExpKind K;
  SrcLoc Loc;

  // Literals.
  int64_t IntVal = 0;
  double FloatVal = 0;
  bool BoolVal = false;
  std::string Suffix; ///< Numeric literal suffix ("", "i32", "f64", ...).

  std::string Name;  ///< Var / Apply head / LetWith array.
  std::string Name2; ///< Loop index variable.

  BinOp Bin = BinOp::Add;
  UnOp Un = UnOp::Neg;
  bool SectionLeftBound = false; ///< (e op) vs (op e).

  std::vector<SExpPtr> Args;

  // Lambda.
  std::vector<SPat> LParams;
  std::optional<SType> LRet;

  // Let / Loop.
  SPat Pat;
  /// Loop merge entries: a group of names (one, or a tuple pattern) and
  /// whether an init expression was given (inits are stored in Args after
  /// bound and body).
  std::vector<std::pair<std::vector<std::string>, bool>> LoopMerge;

  explicit SExp(SExpKind K) : K(K) {}
};

/// A surface function definition.
struct SFun {
  std::string Name;
  std::vector<std::pair<std::string, SType>> Params;
  SType RetType;
  SExpPtr Body;
  SrcLoc Loc;
};

struct SProgram {
  std::vector<SFun> Funs;
};

} // namespace fut

#endif // FUTHARKCC_PARSER_SURFACEAST_H
