//===- Parser.cpp - Recursive-descent parser ---------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "parser/Parser.h"

#include "parser/Lexer.h"

#include <cassert>

using namespace fut;

namespace {

/// Keywords that terminate an application's argument list.
bool isStopKeyword(const Token &T) {
  if (T.Kind != TokKind::Id)
    return false;
  static const char *Stops[] = {"then", "else", "do",  "in",   "let",
                                "for",  "with", "fun", "loop", "if"};
  for (const char *S : Stops)
    if (T.Text == S)
      return true;
  return false;
}

/// Binary operator tokens with precedence; Prec 0 = not a binop.
int binOpPrec(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return 1;
  case TokKind::AmpAmp:
    return 2;
  case TokKind::EqEq:
  case TokKind::NotEq:
  case TokKind::Lt:
  case TokKind::Leq:
  case TokKind::Gt:
  case TokKind::Geq:
    return 3;
  case TokKind::Plus:
  case TokKind::Minus:
    return 4;
  case TokKind::Star:
  case TokKind::Slash:
  case TokKind::Percent:
    return 5;
  case TokKind::StarStar:
    return 6;
  default:
    return 0;
  }
}

BinOp tokToBinOp(TokKind K) {
  switch (K) {
  case TokKind::PipePipe:
    return BinOp::LogOr;
  case TokKind::AmpAmp:
    return BinOp::LogAnd;
  case TokKind::EqEq:
    return BinOp::Eq;
  case TokKind::NotEq:
    return BinOp::Neq;
  case TokKind::Lt:
    return BinOp::Lt;
  case TokKind::Leq:
    return BinOp::Leq;
  case TokKind::Gt:
    return BinOp::Gt;
  case TokKind::Geq:
    return BinOp::Geq;
  case TokKind::Plus:
    return BinOp::Add;
  case TokKind::Minus:
    return BinOp::Sub;
  case TokKind::Star:
    return BinOp::Mul;
  case TokKind::Slash:
    return BinOp::Div;
  case TokKind::Percent:
    return BinOp::Mod;
  case TokKind::StarStar:
    return BinOp::Pow;
  default:
    assert(false && "not a binop token");
    return BinOp::Add;
  }
}

class Parser {
  std::vector<Token> Toks;
  size_t Pos = 0;

public:
  explicit Parser(std::vector<Token> Toks) : Toks(std::move(Toks)) {}

  ErrorOr<SProgram> parse() {
    SProgram P;
    while (!cur().is(TokKind::Eof)) {
      auto F = parseFun();
      if (!F)
        return F.getError();
      P.Funs.push_back(std::move(*F));
    }
    if (P.Funs.empty())
      return CompilerError(cur().Loc, "empty program");
    return P;
  }

private:
  const Token &cur() const { return Toks[Pos]; }
  const Token &peek(size_t Ahead = 1) const {
    size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  Token advance() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }

  bool accept(TokKind K) {
    if (!cur().is(K))
      return false;
    advance();
    return true;
  }
  bool acceptId(const char *S) {
    if (!cur().isId(S))
      return false;
    advance();
    return true;
  }

  MaybeError expect(TokKind K, const char *What) {
    if (accept(K))
      return MaybeError::success();
    return CompilerError(cur().Loc, std::string("expected ") + What);
  }
  MaybeError expectId(const char *S) {
    if (acceptId(S))
      return MaybeError::success();
    return CompilerError(cur().Loc, std::string("expected '") + S + "'");
  }

  ErrorOr<std::string> expectIdent(const char *What) {
    if (cur().Kind != TokKind::Id || isStopKeyword(cur()))
      return CompilerError(cur().Loc, std::string("expected ") + What);
    return advance().Text;
  }

  SExpPtr mk(SExpKind K, SrcLoc Loc) {
    auto E = std::make_unique<SExp>(K);
    E->Loc = Loc;
    return E;
  }

  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  static bool scalarKindFromName(const std::string &S, ScalarKind &K) {
    if (S == "i32" || S == "int") {
      K = ScalarKind::I32;
      return true;
    }
    if (S == "i64") {
      K = ScalarKind::I64;
      return true;
    }
    if (S == "f32" || S == "real") {
      K = ScalarKind::F32;
      return true;
    }
    if (S == "f64") {
      K = ScalarKind::F64;
      return true;
    }
    if (S == "bool") {
      K = ScalarKind::Bool;
      return true;
    }
    return false;
  }

  ErrorOr<SType> parseSType() {
    if (accept(TokKind::LParen)) {
      std::vector<SType> Elems;
      do {
        auto T = parseSType();
        if (!T)
          return T.getError();
        Elems.push_back(std::move(*T));
      } while (accept(TokKind::Comma));
      if (auto Err = expect(TokKind::RParen, "')' in type"))
        return Err.getError();
      if (Elems.size() == 1)
        return Elems[0];
      SType T;
      T.IsTuple = true;
      T.Elems = std::move(Elems);
      return T;
    }

    SType T;
    if (accept(TokKind::Star))
      T.Unique = true;
    while (accept(TokKind::LBracket)) {
      if (accept(TokKind::RBracket)) {
        T.Dims.push_back(SDim::anon());
        continue;
      }
      if (cur().is(TokKind::IntLit)) {
        T.Dims.push_back(SDim::constant(advance().IntVal));
      } else if (cur().is(TokKind::Id)) {
        T.Dims.push_back(SDim::name(advance().Text));
      } else {
        return CompilerError(cur().Loc, "expected dimension in type");
      }
      if (auto Err = expect(TokKind::RBracket, "']' in type"))
        return Err.getError();
    }
    auto Base = expectIdent("base type");
    if (!Base)
      return Base.getError();
    if (!scalarKindFromName(*Base, T.Elem))
      return CompilerError(cur().Loc, "unknown base type '" + *Base + "'");
    return T;
  }

  //===--------------------------------------------------------------------===//
  // Patterns
  //===--------------------------------------------------------------------===//

  /// Parses "x" or "(x, y, ...)" with optional ": type" per element.
  ErrorOr<SPat> parsePattern() {
    SPat Pat;
    if (cur().is(TokKind::Id) && !isStopKeyword(cur())) {
      SPatElem E;
      E.Name = advance().Text;
      Pat.push_back(std::move(E));
      return Pat;
    }
    if (auto Err = expect(TokKind::LParen, "pattern"))
      return Err.getError();
    do {
      // A nested parenthesised element: "(x: t)".
      bool Nested = accept(TokKind::LParen);
      auto Name = expectIdent("pattern variable");
      if (!Name)
        return Name.getError();
      SPatElem E;
      E.Name = std::move(*Name);
      if (accept(TokKind::Colon)) {
        auto T = parseSType();
        if (!T)
          return T.getError();
        E.Ty = std::move(*T);
      }
      if (Nested)
        if (auto Err = expect(TokKind::RParen, "')' in pattern"))
          return Err.getError();
      Pat.push_back(std::move(E));
    } while (accept(TokKind::Comma));
    if (auto Err = expect(TokKind::RParen, "')' in pattern"))
      return Err.getError();
    return Pat;
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  ErrorOr<SExpPtr> parseExp() {
    if (cur().isId("let"))
      return parseLet();
    if (cur().isId("loop"))
      return parseLoop();
    if (cur().isId("if"))
      return parseIf();

    auto E = parseBinOps(1);
    if (!E)
      return E;

    // Postfix in-place update: e with [i, ...] <- v.
    if (cur().isId("with")) {
      SrcLoc Loc = advance().Loc;
      auto W = mk(SExpKind::With, Loc);
      W->Args.push_back(std::move(*E));
      if (auto Err = expect(TokKind::LBracket, "'[' after 'with'"))
        return Err.getError();
      do {
        auto I = parseExp();
        if (!I)
          return I;
        W->Args.push_back(std::move(*I));
      } while (accept(TokKind::Comma));
      if (auto Err = expect(TokKind::RBracket, "']' in update"))
        return Err.getError();
      if (auto Err = expect(TokKind::LeftArrow, "'<-' in update"))
        return Err.getError();
      auto V = parseExp();
      if (!V)
        return V;
      W->Args.push_back(std::move(*V));
      return W;
    }
    return E;
  }

  ErrorOr<SExpPtr> parseLet() {
    SrcLoc Loc = cur().Loc;
    if (auto Err = expectId("let"))
      return Err.getError();

    // "let x[i, ...] = v" sugar.
    if (cur().is(TokKind::Id) && peek().is(TokKind::LBracket) &&
        !isStopKeyword(cur())) {
      std::string Arr = advance().Text;
      advance(); // '['
      auto E = mk(SExpKind::LetWith, Loc);
      E->Name = Arr;
      do {
        auto I = parseExp();
        if (!I)
          return I;
        E->Args.push_back(std::move(*I));
      } while (accept(TokKind::Comma));
      if (auto Err = expect(TokKind::RBracket, "']' in let-with"))
        return Err.getError();
      if (auto Err = expect(TokKind::Equals, "'=' in let-with"))
        return Err.getError();
      auto RHS = parseExp();
      if (!RHS)
        return RHS;
      E->Args.push_back(std::move(*RHS));
      auto BodyE = parseLetBody();
      if (!BodyE)
        return BodyE;
      E->Args.push_back(std::move(*BodyE));
      return E;
    }

    auto Pat = parsePattern();
    if (!Pat)
      return Pat.getError();
    if (auto Err = expect(TokKind::Equals, "'=' in let"))
      return Err.getError();
    auto RHS = parseExp();
    if (!RHS)
      return RHS;
    auto BodyE = parseLetBody();
    if (!BodyE)
      return BodyE;
    auto E = mk(SExpKind::Let, Loc);
    E->Pat = std::move(*Pat);
    E->Args.push_back(std::move(*RHS));
    E->Args.push_back(std::move(*BodyE));
    return E;
  }

  /// After a let binding: either "in e" or an immediately following "let"
  /// (the paper's examples chain lets without "in").
  ErrorOr<SExpPtr> parseLetBody() {
    if (acceptId("in"))
      return parseExp();
    if (cur().isId("let"))
      return parseLet();
    if (cur().isId("loop"))
      return parseLoop();
    return CompilerError(cur().Loc, "expected 'in' or another 'let'");
  }

  ErrorOr<SExpPtr> parseLoop() {
    SrcLoc Loc = cur().Loc;
    if (auto Err = expectId("loop"))
      return Err.getError();
    if (auto Err = expect(TokKind::LParen, "'(' after loop"))
      return Err.getError();

    auto E = mk(SExpKind::Loop, Loc);
    std::vector<SExpPtr> Inits;
    do {
      std::vector<std::string> Names;
      if (accept(TokKind::LParen)) {
        // A tuple pattern: loop ((a, b) = e).
        do {
          auto Name = expectIdent("loop variable");
          if (!Name)
            return Name.getError();
          Names.push_back(std::move(*Name));
        } while (accept(TokKind::Comma));
        if (auto Err = expect(TokKind::RParen, "')' in loop pattern"))
          return Err.getError();
      } else {
        auto Name = expectIdent("loop variable");
        if (!Name)
          return Name.getError();
        Names.push_back(std::move(*Name));
      }
      bool HasInit = accept(TokKind::Equals);
      if (HasInit) {
        auto Init = parseExp();
        if (!Init)
          return Init;
        Inits.push_back(std::move(*Init));
      } else if (Names.size() != 1) {
        return CompilerError(cur().Loc,
                             "tuple loop pattern needs an initialiser");
      }
      E->LoopMerge.emplace_back(std::move(Names), HasInit);
    } while (accept(TokKind::Comma));
    if (auto Err = expect(TokKind::RParen, "')' in loop header"))
      return Err.getError();

    if (auto Err = expectId("for"))
      return Err.getError();
    auto IVar = expectIdent("loop index");
    if (!IVar)
      return IVar.getError();
    E->Name2 = std::move(*IVar);
    if (auto Err = expect(TokKind::Lt, "'<' in loop header"))
      return Err.getError();
    auto Bound = parseExp();
    if (!Bound)
      return Bound;
    if (auto Err = expectId("do"))
      return Err.getError();
    auto BodyE = parseExp();
    if (!BodyE)
      return BodyE;

    E->Args.push_back(std::move(*Bound));
    E->Args.push_back(std::move(*BodyE));
    for (auto &I : Inits)
      E->Args.push_back(std::move(I));
    return E;
  }

  ErrorOr<SExpPtr> parseIf() {
    SrcLoc Loc = cur().Loc;
    if (auto Err = expectId("if"))
      return Err.getError();
    auto C = parseExp();
    if (!C)
      return C;
    if (auto Err = expectId("then"))
      return Err.getError();
    auto T = parseExp();
    if (!T)
      return T;
    if (auto Err = expectId("else"))
      return Err.getError();
    auto F = parseExp();
    if (!F)
      return F;
    auto E = mk(SExpKind::If, Loc);
    E->Args.push_back(std::move(*C));
    E->Args.push_back(std::move(*T));
    E->Args.push_back(std::move(*F));
    return E;
  }

  ErrorOr<SExpPtr> parseBinOps(int MinPrec) {
    auto LHS = parseUnary();
    if (!LHS)
      return LHS;
    for (;;) {
      int Prec = binOpPrec(cur().Kind);
      if (Prec == 0 || Prec < MinPrec)
        return LHS;
      // Left-section lookahead: "(e op)" — leave the operator for the
      // enclosing parenthesis handler.
      if (peek().is(TokKind::RParen))
        return LHS;
      TokKind OpTok = cur().Kind;
      SrcLoc Loc = advance().Loc;
      int NextMin = OpTok == TokKind::StarStar ? Prec : Prec + 1;
      auto RHS = parseBinOps(NextMin);
      if (!RHS)
        return RHS;
      auto E = mk(SExpKind::BinOpE, Loc);
      E->Bin = tokToBinOp(OpTok);
      E->Args.push_back(std::move(*LHS));
      E->Args.push_back(std::move(*RHS));
      LHS = ErrorOr<SExpPtr>(std::move(E));
    }
  }

  ErrorOr<SExpPtr> parseUnary() {
    if (cur().is(TokKind::Minus)) {
      SrcLoc Loc = advance().Loc;
      auto A = parseUnary();
      if (!A)
        return A;
      auto E = mk(SExpKind::UnOpE, Loc);
      E->Un = UnOp::Neg;
      E->Args.push_back(std::move(*A));
      return E;
    }
    if (cur().is(TokKind::Bang)) {
      SrcLoc Loc = advance().Loc;
      auto A = parseUnary();
      if (!A)
        return A;
      auto E = mk(SExpKind::UnOpE, Loc);
      E->Un = UnOp::Not;
      E->Args.push_back(std::move(*A));
      return E;
    }
    return parseApply();
  }

  bool startsAtom() const {
    switch (cur().Kind) {
    case TokKind::IntLit:
    case TokKind::FloatLit:
    case TokKind::LParen:
    case TokKind::Backslash:
      return true;
    case TokKind::Id:
      return !isStopKeyword(cur());
    default:
      return false;
    }
  }

  ErrorOr<SExpPtr> parseApply() {
    SrcLoc Loc = cur().Loc;
    auto Head = parseAtom();
    if (!Head)
      return Head;
    if (!startsAtom())
      return Head;

    std::vector<SExpPtr> Args;
    while (startsAtom()) {
      auto A = parseAtom();
      if (!A)
        return A;
      Args.push_back(std::move(*A));
    }
    auto E = mk(SExpKind::Apply, Loc);
    SExp *H = Head->get();
    if (H->K == SExpKind::Var) {
      E->Name = H->Name;
    } else {
      // Immediate application of a lambda or section: keep the head as the
      // first argument with an empty name.
      E->Args.push_back(std::move(*Head));
    }
    for (auto &A : Args)
      E->Args.push_back(std::move(A));
    return E;
  }

  ErrorOr<SExpPtr> parseAtom() {
    auto Base = parseAtomBase();
    if (!Base)
      return Base;
    // Indexing suffixes (repeatable): a[i][j] etc.
    while (cur().is(TokKind::LBracket)) {
      SrcLoc Loc = advance().Loc;
      auto E = mk(SExpKind::Index, Loc);
      E->Args.push_back(std::move(*Base));
      do {
        auto I = parseExp();
        if (!I)
          return I;
        E->Args.push_back(std::move(*I));
      } while (accept(TokKind::Comma));
      if (auto Err = expect(TokKind::RBracket, "']' in index"))
        return Err.getError();
      Base = ErrorOr<SExpPtr>(std::move(E));
    }
    return Base;
  }

  ErrorOr<SExpPtr> parseAtomBase() {
    SrcLoc Loc = cur().Loc;

    if (cur().is(TokKind::IntLit)) {
      Token T = advance();
      auto E = mk(SExpKind::IntLit, Loc);
      E->IntVal = T.IntVal;
      E->Suffix = T.Suffix;
      return E;
    }
    if (cur().is(TokKind::FloatLit)) {
      Token T = advance();
      auto E = mk(SExpKind::FloatLit, Loc);
      E->FloatVal = T.FloatVal;
      E->Suffix = T.Suffix;
      return E;
    }
    if (cur().is(TokKind::Id)) {
      Token T = advance();
      if (T.Text == "true" || T.Text == "false") {
        auto E = mk(SExpKind::BoolLit, Loc);
        E->BoolVal = T.Text == "true";
        return E;
      }
      auto E = mk(SExpKind::Var, Loc);
      E->Name = T.Text;
      return E;
    }
    if (cur().is(TokKind::Backslash))
      return parseLambda();
    if (cur().is(TokKind::LParen))
      return parseParenExp();
    return CompilerError(Loc, "expected an expression");
  }

  ErrorOr<SExpPtr> parseLambda() {
    SrcLoc Loc = cur().Loc;
    if (auto Err = expect(TokKind::Backslash, "lambda"))
      return Err.getError();
    auto E = mk(SExpKind::Lambda, Loc);
    while (cur().is(TokKind::Id) && !isStopKeyword(cur()) ? true
           : cur().is(TokKind::LParen)) {
      auto P = parsePattern();
      if (!P)
        return P.getError();
      E->LParams.push_back(std::move(*P));
    }
    if (E->LParams.empty())
      return CompilerError(Loc, "lambda without parameters");
    if (accept(TokKind::Colon)) {
      auto T = parseSType();
      if (!T)
        return T.getError();
      E->LRet = std::move(*T);
    }
    if (auto Err = expect(TokKind::Arrow, "'->' in lambda"))
      return Err.getError();
    auto BodyE = parseExp();
    if (!BodyE)
      return BodyE;
    E->Args.push_back(std::move(*BodyE));
    return E;
  }

  ErrorOr<SExpPtr> parseParenExp() {
    SrcLoc Loc = cur().Loc;
    if (auto Err = expect(TokKind::LParen, "'('"))
      return Err.getError();

    // Operator section: "(+)", "(+ e)"; '-' only as a bare section.
    int Prec = binOpPrec(cur().Kind);
    if (Prec != 0 &&
        (cur().Kind != TokKind::Minus || peek().is(TokKind::RParen))) {
      TokKind OpTok = advance().Kind;
      auto E = mk(SExpKind::OpSection, Loc);
      E->Bin = tokToBinOp(OpTok);
      if (accept(TokKind::RParen))
        return E;
      auto A = parseExp();
      if (!A)
        return A;
      E->Args.push_back(std::move(*A));
      E->SectionLeftBound = false;
      if (auto Err = expect(TokKind::RParen, "')' in operator section"))
        return Err.getError();
      return E;
    }

    auto First = parseExp();
    if (!First)
      return First;

    // Left operator section: "(e +)".
    if (binOpPrec(cur().Kind) != 0 && peek().is(TokKind::RParen)) {
      TokKind OpTok = advance().Kind;
      advance(); // ')'
      auto E = mk(SExpKind::OpSection, Loc);
      E->Bin = tokToBinOp(OpTok);
      E->Args.push_back(std::move(*First));
      E->SectionLeftBound = true;
      return E;
    }

    if (accept(TokKind::RParen))
      return First;

    if (auto Err = expect(TokKind::Comma, "',' or ')'"))
      return Err.getError();
    auto E = mk(SExpKind::Tuple, Loc);
    E->Args.push_back(std::move(*First));
    do {
      auto Elem = parseExp();
      if (!Elem)
        return Elem;
      E->Args.push_back(std::move(*Elem));
    } while (accept(TokKind::Comma));
    if (auto Err = expect(TokKind::RParen, "')' in tuple"))
      return Err.getError();
    return E;
  }

  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  ErrorOr<SFun> parseFun() {
    SFun F;
    F.Loc = cur().Loc;
    if (auto Err = expectId("fun"))
      return Err.getError();
    auto Name = expectIdent("function name");
    if (!Name)
      return Name.getError();
    F.Name = std::move(*Name);

    while (cur().is(TokKind::LParen)) {
      advance();
      auto PName = expectIdent("parameter name");
      if (!PName)
        return PName.getError();
      if (auto Err = expect(TokKind::Colon, "':' in parameter"))
        return Err.getError();
      auto T = parseSType();
      if (!T)
        return T.getError();
      if (auto Err = expect(TokKind::RParen, "')' in parameter"))
        return Err.getError();
      F.Params.emplace_back(std::move(*PName), std::move(*T));
    }
    if (auto Err = expect(TokKind::Colon, "':' before return type"))
      return Err.getError();
    auto RT = parseSType();
    if (!RT)
      return RT.getError();
    F.RetType = std::move(*RT);
    if (auto Err = expect(TokKind::Equals, "'=' before function body"))
      return Err.getError();
    auto B = parseExp();
    if (!B)
      return B.getError();
    F.Body = std::move(*B);
    return F;
  }
};

} // namespace

ErrorOr<SProgram> fut::parseProgram(const std::string &Source) {
  auto Toks = lexSource(Source);
  if (!Toks)
    return Toks.getError();
  return Parser(std::move(*Toks)).parse();
}
