//===- Lexer.h - Tokeniser for the surface language -------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenises the Futhark-like surface syntax of Fig 1 and the paper's
/// examples: fun/let/loop/if, SOAC names, lambdas, in-place updates
/// ("a with [i] <- v", "let a[i] = v"), type annotations with shapes and
/// uniqueness (*[n]f32), and '--' line comments.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_PARSER_LEXER_H
#define FUTHARKCC_PARSER_LEXER_H

#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fut {

enum class TokKind : uint8_t {
  Eof,
  Id,        // identifiers and keywords (keyword test by text)
  IntLit,    // 123, 123i64
  FloatLit,  // 1.5, 1.5f64, 1e-3
  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Colon,
  Equals,
  Arrow,      // ->
  LeftArrow,  // <-
  Backslash,
  Star,
  Plus,
  Minus,
  Slash,
  Percent,
  StarStar,
  EqEq,
  NotEq,
  Lt,
  Leq,
  Gt,
  Geq,
  AmpAmp,
  PipePipe,
  Bang,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;   // for Id
  int64_t IntVal = 0; // for IntLit
  double FloatVal = 0;
  std::string Suffix; // numeric suffix, e.g. "i64", "f32"
  SrcLoc Loc;

  bool is(TokKind K) const { return Kind == K; }
  bool isId(const char *S) const { return Kind == TokKind::Id && Text == S; }
};

/// Tokenises \p Source in full; returns an error on malformed input.
ErrorOr<std::vector<Token>> lexSource(const std::string &Source);

} // namespace fut

#endif // FUTHARKCC_PARSER_LEXER_H
