//===- Desugar.cpp - Surface AST to core IR -----------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "parser/Desugar.h"

#include "ir/Builder.h"
#include "ir/Traversal.h"
#include "parser/Parser.h"

#include <map>

using namespace fut;

namespace {

/// An operand together with its type — the desugarer's currency.
struct TSub {
  SubExp SE;
  Type Ty;
};

struct FunSig {
  std::vector<Param> Params;
  std::vector<Type> RetTypes;
};

/// Lexical scope: surface names to typed operand tuples (a single value is
/// a one-element tuple).  Dimension names map to the operand standing for
/// that size.
using Scope = std::map<std::string, std::vector<TSub>>;

void bindOne(Scope &Sc, const std::string &N, TSub V) {
  Sc[N] = std::vector<TSub>{std::move(V)};
}

class Desugarer {
  NameSource &NS;
  std::map<std::string, FunSig> FunSigs;

public:
  explicit Desugarer(NameSource &NS) : NS(NS) {}

  ErrorOr<Program> run(const SProgram &SP) {
    Program P;
    // Two passes so that mutual recursion and forward calls work.
    for (const SFun &F : SP.Funs) {
      if (FunSigs.count(F.Name))
        return CompilerError(F.Loc, "duplicate function " + F.Name);
      auto Sig = makeSignature(F);
      if (!Sig)
        return Sig.getError();
      FunSigs[F.Name] = std::move(*Sig);
    }
    for (const SFun &F : SP.Funs) {
      auto D = desugarFun(F);
      if (!D)
        return D.getError();
      P.Funs.push_back(std::move(*D));
    }
    return P;
  }

private:
  //===--------------------------------------------------------------------===//
  // Types
  //===--------------------------------------------------------------------===//

  /// Converts a non-tuple surface type.  Dimension names are resolved in
  /// \p Sc; unknown names are freshly bound (as i32 sizes) when \p BindDims,
  /// otherwise they become fresh, unconstrained size variables.
  Type typeFromSurface(const SType &ST, Scope &Sc, bool BindDims) {
    assert(!ST.IsTuple && "tuple type in scalar position");
    std::vector<Dim> Dims;
    for (const SDim &D : ST.Dims) {
      switch (D.K) {
      case SDim::Kind::Const:
        Dims.push_back(SubExp::constant(
            PrimValue::makeI32(static_cast<int32_t>(D.Const))));
        break;
      case SDim::Kind::Anon:
        Dims.push_back(SubExp::var(NS.fresh("anon_dim")));
        break;
      case SDim::Kind::Name: {
        auto It = Sc.find(D.Name);
        if (It != Sc.end() && It->second.size() == 1) {
          Dims.push_back(It->second.front().SE);
          break;
        }
        VName V = NS.fresh(D.Name);
        Dims.push_back(SubExp::var(V));
        if (BindDims)
          bindOne(Sc, D.Name,
                  {SubExp::var(V), Type::scalar(ScalarKind::I32)});
        break;
      }
      }
    }
    Type T(ST.Elem, std::move(Dims));
    return ST.Unique ? T.asUnique() : T;
  }

  std::vector<Type> typesFromSurface(const SType &ST, Scope &Sc,
                                     bool BindDims) {
    std::vector<SType> Flat;
    ST.flattenInto(Flat);
    std::vector<Type> Out;
    Out.reserve(Flat.size());
    for (const SType &S : Flat)
      Out.push_back(typeFromSurface(S, Sc, BindDims));
    return Out;
  }

  /// Coerces a constant operand to the wanted kind where that is a safe
  /// literal re-typing (int literal -> any numeric kind; float literal ->
  /// float kind).  Variables are never coerced.
  MaybeError coerceConst(TSub &V, ScalarKind Want, SrcLoc Loc) {
    if (!V.Ty.isScalar())
      return CompilerError(Loc, "expected a scalar value");
    ScalarKind Have = V.Ty.elemKind();
    if (Have == Want)
      return MaybeError::success();
    if (!V.SE.isConst())
      return CompilerError(Loc, std::string("type mismatch: expected ") +
                                    scalarKindName(Want) + ", got " +
                                    scalarKindName(Have));
    const PrimValue &C = V.SE.getConst();
    bool Ok = (isIntKind(Have) && (isIntKind(Want) || isFloatKind(Want))) ||
              (isFloatKind(Have) && isFloatKind(Want));
    if (!Ok)
      return CompilerError(Loc, std::string("cannot use a ") +
                                    scalarKindName(Have) + " literal as " +
                                    scalarKindName(Want));
    V.SE = SubExp::constant(evalConvOp({Have, Want}, C));
    V.Ty = Type::scalar(Want);
    return MaybeError::success();
  }

  /// Unifies the kinds of two scalar operands, coercing constants.
  MaybeError unifyScalars(TSub &A, TSub &B, SrcLoc Loc) {
    if (!A.Ty.isScalar() || !B.Ty.isScalar())
      return CompilerError(Loc, "expected scalar operands");
    if (A.Ty.elemKind() == B.Ty.elemKind())
      return MaybeError::success();
    if (A.SE.isConst() && !B.SE.isConst())
      return coerceConst(A, B.Ty.elemKind(), Loc);
    if (B.SE.isConst() && !A.SE.isConst())
      return coerceConst(B, A.Ty.elemKind(), Loc);
    if (A.SE.isConst() && B.SE.isConst()) {
      // Prefer the float kind; otherwise the wider kind.
      ScalarKind Want;
      if (isFloatKind(A.Ty.elemKind()) || isFloatKind(B.Ty.elemKind()))
        Want = isFloatKind(A.Ty.elemKind()) ? A.Ty.elemKind()
                                            : B.Ty.elemKind();
      else
        Want = ScalarKind::I64;
      if (auto Err = coerceConst(A, Want, Loc))
        return Err;
      return coerceConst(B, Want, Loc);
    }
    return CompilerError(Loc, std::string("operand kinds differ: ") +
                                  scalarKindName(A.Ty.elemKind()) + " vs " +
                                  scalarKindName(B.Ty.elemKind()));
  }

  /// The operand standing for an array variable.  Non-variable operands of
  /// array type cannot occur (arrays are always let-bound), so this asserts.
  static VName arrayVar(const TSub &V) {
    assert(V.SE.isVar() && "array operand must be a variable");
    return V.SE.getVar();
  }

  /// Materialises an operand as an array variable name.
  ErrorOr<VName> asArrayVar(const TSub &V, SrcLoc Loc) {
    if (!V.Ty.isArray())
      return CompilerError(Loc, "expected an array");
    if (!V.SE.isVar())
      return CompilerError(Loc, "expected an array variable");
    return V.SE.getVar();
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  ErrorOr<std::vector<TSub>> desugarExp(const SExp &E, Scope &Sc,
                                        BodyBuilder &BB) {
    switch (E.K) {
    case SExpKind::IntLit: {
      ScalarKind K = ScalarKind::I32;
      if (E.Suffix == "i64")
        K = ScalarKind::I64;
      PrimValue V = K == ScalarKind::I64
                        ? PrimValue::makeI64(E.IntVal)
                        : PrimValue::makeI32(static_cast<int32_t>(E.IntVal));
      return std::vector<TSub>{{SubExp::constant(V), Type::scalar(K)}};
    }
    case SExpKind::FloatLit: {
      ScalarKind K = E.Suffix == "f64" ? ScalarKind::F64 : ScalarKind::F32;
      PrimValue V = K == ScalarKind::F64
                        ? PrimValue::makeF64(E.FloatVal)
                        : PrimValue::makeF32(static_cast<float>(E.FloatVal));
      return std::vector<TSub>{{SubExp::constant(V), Type::scalar(K)}};
    }
    case SExpKind::BoolLit:
      return std::vector<TSub>{{SubExp::constant(
                                    PrimValue::makeBool(E.BoolVal)),
                                Type::scalar(ScalarKind::Bool)}};
    case SExpKind::Var: {
      auto It = Sc.find(E.Name);
      if (It == Sc.end())
        return CompilerError(E.Loc, "unbound variable '" + E.Name + "'");
      return It->second;
    }
    case SExpKind::Tuple: {
      std::vector<TSub> Out;
      for (const SExpPtr &A : E.Args) {
        auto V = desugarExp(*A, Sc, BB);
        if (!V)
          return V;
        for (TSub &T : *V)
          Out.push_back(std::move(T));
      }
      return Out;
    }
    case SExpKind::BinOpE:
      return desugarBinOp(E, Sc, BB);
    case SExpKind::UnOpE:
      return desugarUnOp(E, Sc, BB);
    case SExpKind::If:
      return desugarIf(E, Sc, BB);
    case SExpKind::Index:
      return desugarIndex(E, Sc, BB);
    case SExpKind::With:
      return desugarWith(E, Sc, BB);
    case SExpKind::Let: {
      auto RHS = desugarExp(*E.Args[0], Sc, BB);
      if (!RHS)
        return RHS;
      Scope Inner = Sc;
      if (auto Err = bindPattern(E.Pat, *RHS, Inner, E.Loc))
        return Err.getError();
      return desugarExp(*E.Args[1], Inner, BB);
    }
    case SExpKind::LetWith: {
      // let a[i,...] = v in body  ==  let a' = a with [i,...] <- v in body
      // with a rebound to a'.
      auto It = Sc.find(E.Name);
      if (It == Sc.end() || It->second.size() != 1)
        return CompilerError(E.Loc, "unbound array '" + E.Name + "'");
      TSub Arr = It->second.front();
      size_t NumIdx = E.Args.size() - 2;
      auto Upd = buildUpdate(Arr, E.Args, 0, NumIdx,
                             *E.Args[NumIdx], E.Loc, Sc, BB);
      if (!Upd)
        return Upd.getError();
      Scope Inner = Sc;
      bindOne(Inner, E.Name, *Upd);
      return desugarExp(*E.Args[NumIdx + 1], Inner, BB);
    }
    case SExpKind::Loop:
      return desugarLoop(E, Sc, BB);
    case SExpKind::Apply:
      return desugarApply(E, Sc, BB);
    case SExpKind::Lambda:
      return CompilerError(E.Loc,
                           "a lambda may only appear as a SOAC argument");
    case SExpKind::OpSection:
      return CompilerError(
          E.Loc, "an operator section may only appear as a SOAC argument");
    }
    return CompilerError(E.Loc, "unhandled surface expression");
  }

  MaybeError bindPattern(const SPat &Pat, const std::vector<TSub> &Vals,
                         Scope &Sc, SrcLoc Loc) {
    // A single name may bind a whole tuple of values.
    if (Pat.size() == 1 && Vals.size() != 1) {
      Sc[Pat[0].Name] = Vals;
      return MaybeError::success();
    }
    if (Pat.size() != Vals.size())
      return CompilerError(Loc, "pattern binds " +
                                    std::to_string(Pat.size()) +
                                    " names but expression produces " +
                                    std::to_string(Vals.size()) + " values");
    for (size_t I = 0; I < Pat.size(); ++I) {
      bindOne(Sc, Pat[I].Name, Vals[I]);
      if (Pat[I].Ty)
        bindAnnotationDims(*Pat[I].Ty, Vals[I].Ty, Sc);
    }
    return MaybeError::success();
  }

  /// Binds the dimension names of a surface annotation to the actual dims
  /// of the inferred type, e.g. "(chunk: [csz]f32)" binds csz.
  void bindAnnotationDims(const SType &Ann, const Type &Actual, Scope &Sc) {
    if (Ann.IsTuple)
      return;
    for (size_t I = 0;
         I < Ann.Dims.size() && I < Actual.shape().size(); ++I) {
      const SDim &D = Ann.Dims[I];
      if (D.K == SDim::Kind::Name && !Sc.count(D.Name))
        bindOne(Sc, D.Name,
                {Actual.shape()[I], Type::scalar(ScalarKind::I32)});
    }
  }

  ErrorOr<std::vector<TSub>> desugarBinOp(const SExp &E, Scope &Sc,
                                          BodyBuilder &BB) {
    // Short-circuit && and || via if, preserving the language's dynamic
    // checks (e.g. "i < n && a[i] > 0").
    if (E.Bin == BinOp::LogAnd || E.Bin == BinOp::LogOr) {
      auto A = desugarSingle(*E.Args[0], Sc, BB);
      if (!A)
        return A.getError();
      if (A->Ty.elemKind() != ScalarKind::Bool)
        return CompilerError(E.Loc, "logical operand is not bool");
      BodyBuilder ThenBB(NS), ElseBB(NS);
      Scope ThenSc = Sc, ElseSc = Sc;
      Body ThenB, ElseB;
      if (E.Bin == BinOp::LogAnd) {
        auto B = desugarSingle(*E.Args[1], ThenSc, ThenBB);
        if (!B)
          return B.getError();
        if (B->Ty.elemKind() != ScalarKind::Bool)
          return CompilerError(E.Loc, "logical operand is not bool");
        ThenB = ThenBB.finish({B->SE});
        ElseB = ElseBB.finish({boolc(false)});
      } else {
        ThenB = ThenBB.finish({boolc(true)});
        auto B = desugarSingle(*E.Args[1], ElseSc, ElseBB);
        if (!B)
          return B.getError();
        if (B->Ty.elemKind() != ScalarKind::Bool)
          return CompilerError(E.Loc, "logical operand is not bool");
        ElseB = ElseBB.finish({B->SE});
      }
      Type BoolT = Type::scalar(ScalarKind::Bool);
      VName R = BB.bind("b", BoolT,
                        std::make_unique<IfExp>(A->SE, std::move(ThenB),
                                                std::move(ElseB),
                                                std::vector<Type>{BoolT}));
      return std::vector<TSub>{{SubExp::var(R), BoolT}};
    }

    auto A = desugarSingle(*E.Args[0], Sc, BB);
    if (!A)
      return A.getError();
    auto B = desugarSingle(*E.Args[1], Sc, BB);
    if (!B)
      return B.getError();
    if (auto Err = unifyScalars(*A, *B, E.Loc))
      return Err.getError();
    ScalarKind K = A->Ty.elemKind();
    if (!binOpDefinedOn(E.Bin, K))
      return CompilerError(E.Loc, std::string("operator ") +
                                      binOpName(E.Bin) + " undefined on " +
                                      scalarKindName(K));
    SubExp R = BB.binOp(E.Bin, A->SE, B->SE, K);
    return std::vector<TSub>{{R, Type::scalar(binOpResultKind(E.Bin, K))}};
  }

  ErrorOr<std::vector<TSub>> desugarUnOp(const SExp &E, Scope &Sc,
                                         BodyBuilder &BB) {
    auto A = desugarSingle(*E.Args[0], Sc, BB);
    if (!A)
      return A.getError();
    if (!A->Ty.isScalar())
      return CompilerError(E.Loc, "unary operator on non-scalar");
    ScalarKind K = A->Ty.elemKind();
    if (!unOpDefinedOn(E.Un, K))
      return CompilerError(E.Loc, std::string("operator ") + unOpName(E.Un) +
                                      " undefined on " + scalarKindName(K));
    SubExp R = BB.unOp(E.Un, A->SE, K);
    return std::vector<TSub>{{R, Type::scalar(unOpResultKind(E.Un, K))}};
  }

  ErrorOr<std::vector<TSub>> desugarIf(const SExp &E, Scope &Sc,
                                       BodyBuilder &BB) {
    auto C = desugarSingle(*E.Args[0], Sc, BB);
    if (!C)
      return C.getError();
    if (!C->Ty.isScalar() || C->Ty.elemKind() != ScalarKind::Bool)
      return CompilerError(E.Loc, "if condition is not a bool");

    BodyBuilder ThenBB(NS), ElseBB(NS);
    Scope ThenSc = Sc, ElseSc = Sc;
    auto TV = desugarExp(*E.Args[1], ThenSc, ThenBB);
    if (!TV)
      return TV;
    auto EV = desugarExp(*E.Args[2], ElseSc, ElseBB);
    if (!EV)
      return EV;
    if (TV->size() != EV->size())
      return CompilerError(E.Loc, "if branches produce different arities");
    // Unify constant kinds between branches.
    for (size_t I = 0; I < TV->size(); ++I) {
      TSub &A = (*TV)[I];
      TSub &B = (*EV)[I];
      if (A.Ty.isScalar() && B.Ty.isScalar()) {
        if (auto Err = unifyScalars(A, B, E.Loc))
          return Err.getError();
      } else if (!A.Ty.equalRankAndElem(B.Ty)) {
        return CompilerError(E.Loc, "if branches produce different types: " +
                                        A.Ty.str() + " vs " + B.Ty.str());
      }
    }
    std::vector<SubExp> ThenRes, ElseRes;
    std::vector<Type> RetTypes;
    for (size_t I = 0; I < TV->size(); ++I) {
      ThenRes.push_back((*TV)[I].SE);
      ElseRes.push_back((*EV)[I].SE);
      RetTypes.push_back((*TV)[I].Ty.asNonUnique());
    }
    Body ThenB = ThenBB.finish(std::move(ThenRes));
    Body ElseB = ElseBB.finish(std::move(ElseRes));
    auto Names = BB.bindMulti("r", RetTypes,
                              std::make_unique<IfExp>(C->SE, std::move(ThenB),
                                                      std::move(ElseB),
                                                      RetTypes));
    std::vector<TSub> Out;
    for (size_t I = 0; I < Names.size(); ++I)
      Out.push_back({SubExp::var(Names[I]), RetTypes[I]});
    return Out;
  }

  ErrorOr<std::vector<TSub>> desugarIndex(const SExp &E, Scope &Sc,
                                          BodyBuilder &BB) {
    auto Arr = desugarSingle(*E.Args[0], Sc, BB);
    if (!Arr)
      return Arr.getError();
    auto ArrV = asArrayVar(*Arr, E.Loc);
    if (!ArrV)
      return ArrV.getError();
    std::vector<SubExp> Idx;
    for (size_t I = 1; I < E.Args.size(); ++I) {
      auto V = desugarSingle(*E.Args[I], Sc, BB);
      if (!V)
        return V.getError();
      if (!V->Ty.isScalar() || !isIntKind(V->Ty.elemKind()))
        return CompilerError(E.Loc, "array index is not an integer");
      Idx.push_back(V->SE);
    }
    int K = static_cast<int>(Idx.size());
    if (K > Arr->Ty.rank())
      return CompilerError(E.Loc, "too many indices for array of rank " +
                                      std::to_string(Arr->Ty.rank()));
    Type RT = Arr->Ty.peel(K).asNonUnique();
    VName R = BB.bind("elem", RT,
                      std::make_unique<IndexExp>(*ArrV, std::move(Idx)));
    return std::vector<TSub>{{SubExp::var(R), RT}};
  }

  /// Builds "arr with [indices] <- value".  Indices are E.Args[IdxBegin ..
  /// IdxBegin+NumIdx).
  ErrorOr<TSub> buildUpdate(const TSub &Arr,
                            const std::vector<SExpPtr> &Args, size_t IdxBegin,
                            size_t NumIdx, const SExp &ValueE, SrcLoc Loc,
                            Scope &Sc, BodyBuilder &BB) {
    auto ArrV = asArrayVar(Arr, Loc);
    if (!ArrV)
      return ArrV.getError();
    std::vector<SubExp> Idx;
    for (size_t I = 0; I < NumIdx; ++I) {
      auto V = desugarSingle(*Args[IdxBegin + I], Sc, BB);
      if (!V)
        return V.getError();
      if (!V->Ty.isScalar() || !isIntKind(V->Ty.elemKind()))
        return CompilerError(Loc, "update index is not an integer");
      Idx.push_back(V->SE);
    }
    auto Val = desugarSingle(ValueE, Sc, BB);
    if (!Val)
      return Val.getError();
    Type Want = Arr.Ty.peel(static_cast<int>(NumIdx));
    if (Want.isScalar()) {
      if (auto Err = coerceConst(*Val, Want.elemKind(), Loc))
        return Err.getError();
    } else if (!Val->Ty.equalRankAndElem(Want)) {
      return CompilerError(Loc, "update value has wrong type");
    }
    Type RT = Arr.Ty.asNonUnique();
    VName R = BB.bind(ArrV->Base, RT,
                      std::make_unique<UpdateExp>(*ArrV, std::move(Idx),
                                                  Val->SE));
    return TSub{SubExp::var(R), RT};
  }

  ErrorOr<std::vector<TSub>> desugarWith(const SExp &E, Scope &Sc,
                                         BodyBuilder &BB) {
    auto Arr = desugarSingle(*E.Args[0], Sc, BB);
    if (!Arr)
      return Arr.getError();
    size_t NumIdx = E.Args.size() - 2;
    auto R = buildUpdate(*Arr, E.Args, 1, NumIdx, *E.Args[NumIdx + 1], E.Loc,
                         Sc, BB);
    if (!R)
      return R.getError();
    return std::vector<TSub>{std::move(*R)};
  }

  ErrorOr<std::vector<TSub>> desugarLoop(const SExp &E, Scope &Sc,
                                         BodyBuilder &BB) {
    // Args: {bound, body, inits...}.  Each merge entry may bind a tuple.
    std::vector<std::vector<TSub>> Inits;
    size_t InitIdx = 2;
    for (const auto &[Names, HasInit] : E.LoopMerge) {
      if (HasInit) {
        auto V = desugarExp(*E.Args[InitIdx++], Sc, BB);
        if (!V)
          return V;
        if (Names.size() > 1 && V->size() != Names.size())
          return CompilerError(E.Loc, "loop pattern binds " +
                                          std::to_string(Names.size()) +
                                          " names but the initialiser "
                                          "produces " +
                                          std::to_string(V->size()) +
                                          " values");
        Inits.push_back(std::move(*V));
      } else {
        auto It = Sc.find(Names[0]);
        if (It == Sc.end())
          return CompilerError(E.Loc, "loop variable '" + Names[0] +
                                          "' has no initial value in scope");
        Inits.push_back(It->second);
      }
    }
    auto Bound = desugarSingle(*E.Args[0], Sc, BB);
    if (!Bound)
      return Bound.getError();
    if (!Bound->Ty.isScalar() || !isIntKind(Bound->Ty.elemKind()))
      return CompilerError(E.Loc, "loop bound is not an integer");

    // Fresh merge parameters and index variable.
    Scope Inner = Sc;
    std::vector<Param> MergeParams;
    std::vector<SubExp> MergeInit;
    for (size_t I = 0; I < E.LoopMerge.size(); ++I) {
      const auto &Names = E.LoopMerge[I].first;
      std::vector<TSub> Bound1;
      for (size_t J = 0; J < Inits[I].size(); ++J) {
        const TSub &Init = Inits[I][J];
        VName P = NS.fresh(Names.size() == 1 ? Names[0] : Names[J]);
        Type PT = Init.Ty.asNonUnique();
        MergeParams.emplace_back(P, PT);
        MergeInit.push_back(Init.SE);
        Bound1.push_back({SubExp::var(P), PT});
      }
      if (Names.size() == 1) {
        Inner[Names[0]] = std::move(Bound1);
      } else {
        for (size_t J = 0; J < Names.size(); ++J)
          bindOne(Inner, Names[J], Bound1[J]);
      }
    }
    VName IVar = NS.fresh(E.Name2);
    bindOne(Inner, E.Name2, {SubExp::var(IVar), Bound->Ty});

    BodyBuilder LoopBB(NS);
    auto Res = desugarExp(*E.Args[1], Inner, LoopBB);
    if (!Res)
      return Res;
    if (Res->size() != MergeParams.size())
      return CompilerError(E.Loc, "loop body produces " +
                                      std::to_string(Res->size()) +
                                      " values for " +
                                      std::to_string(MergeParams.size()) +
                                      " loop variables");
    std::vector<SubExp> BodyRes;
    for (size_t I = 0; I < Res->size(); ++I) {
      TSub &V = (*Res)[I];
      if (V.Ty.isScalar())
        if (auto Err = coerceConst(V, MergeParams[I].Ty.elemKind(), E.Loc))
          return Err.getError();
      BodyRes.push_back(V.SE);
    }
    Body LoopBody = LoopBB.finish(std::move(BodyRes));

    std::vector<Type> RetTypes;
    for (const Param &P : MergeParams)
      RetTypes.push_back(P.Ty);
    auto Names = BB.bindMulti(
        "loopres", RetTypes,
        std::make_unique<LoopExp>(std::move(MergeParams),
                                  std::move(MergeInit), IVar, Bound->SE,
                                  std::move(LoopBody)));
    std::vector<TSub> Out;
    for (size_t I = 0; I < Names.size(); ++I)
      Out.push_back({SubExp::var(Names[I]), RetTypes[I]});
    return Out;
  }

  ErrorOr<TSub> desugarSingle(const SExp &E, Scope &Sc, BodyBuilder &BB) {
    auto V = desugarExp(E, Sc, BB);
    if (!V)
      return V.getError();
    if (V->size() != 1)
      return CompilerError(E.Loc, "expected a single value, got " +
                                      std::to_string(V->size()));
    return std::move((*V)[0]);
  }

  //===--------------------------------------------------------------------===//
  // Applications: builtins, SOACs, user functions
  //===--------------------------------------------------------------------===//

  ErrorOr<std::vector<TSub>> desugarApply(const SExp &E, Scope &Sc,
                                          BodyBuilder &BB);

  /// Desugars a SOAC function argument into a core Lambda given the
  /// positional parameter types.
  ErrorOr<Lambda> desugarFunArg(const SExp &F,
                                const std::vector<Type> &ParamTypes,
                                Scope &Sc);

  ErrorOr<Lambda> desugarLambda(const SExp &L,
                                const std::vector<Type> &ParamTypes,
                                Scope &Sc);

  /// Desugars a streaming fold function: the surface lambda takes acc
  /// params then chunk-array params; the core lambda gets a fresh leading
  /// chunk-size parameter whose name is bound to any annotation dim.
  ErrorOr<Lambda> desugarStreamFold(const SExp &L,
                                    const std::vector<Type> &AccTypes,
                                    const std::vector<Type> &RowTypes,
                                    Scope &Sc);

  /// Desugars SOAC array arguments (each may contribute several arrays via
  /// zip) and checks the common outer size.
  ErrorOr<std::vector<TSub>>
  desugarArrayArgs(const std::vector<SExpPtr> &Args, size_t Begin, Scope &Sc,
                   BodyBuilder &BB, SrcLoc Loc) {
    std::vector<TSub> Arrays;
    for (size_t I = Begin; I < Args.size(); ++I) {
      auto V = desugarExp(*Args[I], Sc, BB);
      if (!V)
        return V;
      for (TSub &T : *V) {
        if (!T.Ty.isArray())
          return CompilerError(Loc, "SOAC argument is not an array");
        Arrays.push_back(std::move(T));
      }
    }
    if (Arrays.empty())
      return CompilerError(Loc, "SOAC without array arguments");
    return Arrays;
  }

  ErrorOr<std::vector<TSub>> emitSOACResult(BodyBuilder &BB,
                                            const std::vector<Type> &Types,
                                            ExpPtr Exp,
                                            const std::string &Base) {
    auto Names = BB.bindMulti(Base, Types, std::move(Exp));
    std::vector<TSub> Out;
    for (size_t I = 0; I < Names.size(); ++I)
      Out.push_back({SubExp::var(Names[I]), Types[I]});
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Functions
  //===--------------------------------------------------------------------===//

  ErrorOr<FunSig> makeSignature(const SFun &F) {
    Scope Sc;
    FunSig Sig;
    for (const auto &[Name, ST] : F.Params) {
      if (ST.IsTuple)
        return CompilerError(F.Loc,
                             "tuple-typed parameters are not supported; "
                             "pass the components separately");
      Type T = typeFromSurface(ST, Sc, /*BindDims=*/true);
      VName V = NS.fresh(Name);
      Sig.Params.emplace_back(V, T);
      bindOne(Sc, Name, {SubExp::var(V), T.asNonUnique()});
    }
    // Map the dim names used above to the actual fresh names: handled by
    // typeFromSurface having placed them in Sc already.
    Sig.RetTypes = typesFromSurface(F.RetType, Sc, /*BindDims=*/false);
    return Sig;
  }

  ErrorOr<FunDef> desugarFun(const SFun &F) {
    // Recreate the scope so that dim names map to the *same* VNames used in
    // the signature.
    const FunSig &Sig = FunSigs.at(F.Name);
    Scope Sc;
    for (size_t I = 0; I < F.Params.size(); ++I) {
      const auto &[Name, ST] = F.Params[I];
      const Param &P = Sig.Params[I];
      bindOne(Sc, Name, {SubExp::var(P.Name), P.Ty.asNonUnique()});
      // Dim names bind to the signature's dim operands.
      for (size_t D = 0; D < ST.Dims.size(); ++D)
        if (ST.Dims[D].K == SDim::Kind::Name && !Sc.count(ST.Dims[D].Name))
          bindOne(Sc, ST.Dims[D].Name,
                  {P.Ty.shape()[D], Type::scalar(ScalarKind::I32)});
    }

    BodyBuilder BB(NS);
    auto Res = desugarExp(*F.Body, Sc, BB);
    if (!Res)
      return Res.getError();
    if (Res->size() != Sig.RetTypes.size())
      return CompilerError(F.Loc, "function " + F.Name + " returns " +
                                      std::to_string(Res->size()) +
                                      " values but declares " +
                                      std::to_string(Sig.RetTypes.size()));
    std::vector<SubExp> Result;
    for (size_t I = 0; I < Res->size(); ++I) {
      TSub &V = (*Res)[I];
      const Type &Want = Sig.RetTypes[I];
      if (V.Ty.isScalar() && Want.isScalar()) {
        if (auto Err = coerceConst(V, Want.elemKind(), F.Loc))
          return Err.getError();
      } else if (!V.Ty.equalRankAndElem(Want)) {
        return CompilerError(F.Loc, "function " + F.Name +
                                        " returns a value of type " +
                                        V.Ty.str() + " where " + Want.str() +
                                        " is declared");
      }
      Result.push_back(V.SE);
    }

    FunDef D;
    D.Name = F.Name;
    D.Params = Sig.Params;
    D.RetTypes = Sig.RetTypes;
    D.FBody = BB.finish(std::move(Result));
    return D;
  }

  friend ErrorOr<Program> fut::desugarProgram(const SProgram &, NameSource &);
};

#include "parser/DesugarApply.inc"

} // namespace

ErrorOr<Program> fut::desugarProgram(const SProgram &SP, NameSource &Names) {
  return Desugarer(Names).run(SP);
}

ErrorOr<Program> fut::frontend(const std::string &Source, NameSource &Names) {
  auto SP = parseProgram(Source);
  if (!SP)
    return SP.getError();
  return desugarProgram(*SP, Names);
}
