//===- Desugar.h - Surface AST to core IR -----------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates the surface AST into the tuple-free ANF core IR of Fig 1,
/// inferring and checking types as it goes (the "Desugaring/Typechecking"
/// stages of the pipeline in Fig 3).  Tuples become multi-value bindings,
/// arrays-of-tuples become tuples-of-arrays, operator sections become
/// lambdas, and every intermediate expression is let-bound to a fresh name.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_PARSER_DESUGAR_H
#define FUTHARKCC_PARSER_DESUGAR_H

#include "ir/IR.h"
#include "parser/SurfaceAST.h"
#include "support/Error.h"

namespace fut {

/// Desugars a parsed program.  Fresh names are drawn from \p Names.
ErrorOr<Program> desugarProgram(const SProgram &SP, NameSource &Names);

/// Convenience: parse + desugar.
ErrorOr<Program> frontend(const std::string &Source, NameSource &Names);

} // namespace fut

#endif // FUTHARKCC_PARSER_DESUGAR_H
