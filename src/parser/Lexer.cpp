//===- Lexer.cpp - Tokeniser for the surface language -----------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "parser/Lexer.h"

#include <cctype>

using namespace fut;

namespace {

class Lexer {
  const std::string &Src;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;

public:
  explicit Lexer(const std::string &Src) : Src(Src) {}

  ErrorOr<std::vector<Token>> lexAll() {
    std::vector<Token> Out;
    for (;;) {
      skipWhitespaceAndComments();
      Token T;
      T.Loc = {Line, Col};
      if (atEnd()) {
        T.Kind = TokKind::Eof;
        Out.push_back(T);
        return Out;
      }
      char C = peek();
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        lexIdent(T);
      } else if (std::isdigit(static_cast<unsigned char>(C))) {
        if (auto Err = lexNumber(T))
          return Err.getError();
      } else {
        if (auto Err = lexPunct(T))
          return Err.getError();
      }
      Out.push_back(std::move(T));
    }
  }

private:
  bool atEnd() const { return Pos >= Src.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Src.size() ? Src[Pos + Ahead] : '\0';
  }
  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipWhitespaceAndComments() {
    for (;;) {
      while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
        advance();
      if (peek() == '-' && peek(1) == '-') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      return;
    }
  }

  void lexIdent(Token &T) {
    std::string S;
    while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                        peek() == '_' || peek() == '\''))
      S += advance();
    T.Kind = TokKind::Id;
    T.Text = std::move(S);
  }

  MaybeError lexNumber(Token &T) {
    std::string S;
    bool IsFloat = false;
    while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
      S += advance();
    if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
      IsFloat = true;
      S += advance();
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        S += advance();
    }
    if (peek() == 'e' || peek() == 'E') {
      char Next = peek(1);
      char Next2 = peek(2);
      if (std::isdigit(static_cast<unsigned char>(Next)) ||
          ((Next == '+' || Next == '-') &&
           std::isdigit(static_cast<unsigned char>(Next2)))) {
        IsFloat = true;
        S += advance();
        if (peek() == '+' || peek() == '-')
          S += advance();
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
          S += advance();
      }
    }
    // Optional kind suffix: i32, i64, f32, f64.
    std::string Suffix;
    if ((peek() == 'i' || peek() == 'f') && std::isdigit(
            static_cast<unsigned char>(peek(1)))) {
      Suffix += advance();
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Suffix += advance();
      if (Suffix != "i32" && Suffix != "i64" && Suffix != "f32" &&
          Suffix != "f64")
        return CompilerError(T.Loc, "unknown numeric suffix '" + Suffix + "'");
    }
    if (!Suffix.empty() && Suffix[0] == 'f')
      IsFloat = true;
    T.Suffix = Suffix;
    if (IsFloat) {
      T.Kind = TokKind::FloatLit;
      T.FloatVal = std::stod(S);
    } else {
      T.Kind = TokKind::IntLit;
      T.IntVal = std::stoll(S);
    }
    return MaybeError::success();
  }

  MaybeError lexPunct(Token &T) {
    char C = advance();
    auto Two = [&](char Next, TokKind K2, TokKind K1) {
      if (peek() == Next) {
        advance();
        T.Kind = K2;
      } else {
        T.Kind = K1;
      }
    };
    switch (C) {
    case '(':
      T.Kind = TokKind::LParen;
      break;
    case ')':
      T.Kind = TokKind::RParen;
      break;
    case '[':
      T.Kind = TokKind::LBracket;
      break;
    case ']':
      T.Kind = TokKind::RBracket;
      break;
    case ',':
      T.Kind = TokKind::Comma;
      break;
    case ':':
      T.Kind = TokKind::Colon;
      break;
    case '\\':
      T.Kind = TokKind::Backslash;
      break;
    case '+':
      T.Kind = TokKind::Plus;
      break;
    case '%':
      T.Kind = TokKind::Percent;
      break;
    case '/':
      T.Kind = TokKind::Slash;
      break;
    case '*':
      Two('*', TokKind::StarStar, TokKind::Star);
      break;
    case '=':
      Two('=', TokKind::EqEq, TokKind::Equals);
      break;
    case '!':
      Two('=', TokKind::NotEq, TokKind::Bang);
      break;
    case '-':
      if (peek() == '>') {
        advance();
        T.Kind = TokKind::Arrow;
      } else {
        T.Kind = TokKind::Minus;
      }
      break;
    case '<':
      if (peek() == '-') {
        advance();
        T.Kind = TokKind::LeftArrow;
      } else if (peek() == '=') {
        advance();
        T.Kind = TokKind::Leq;
      } else {
        T.Kind = TokKind::Lt;
      }
      break;
    case '>':
      Two('=', TokKind::Geq, TokKind::Gt);
      break;
    case '&':
      if (peek() == '&') {
        advance();
        T.Kind = TokKind::AmpAmp;
        break;
      }
      return CompilerError(T.Loc, "expected '&&'");
    case '|':
      if (peek() == '|') {
        advance();
        T.Kind = TokKind::PipePipe;
        break;
      }
      return CompilerError(T.Loc, "expected '||'");
    default:
      return CompilerError(T.Loc, std::string("unexpected character '") + C +
                                      "'");
    }
    return MaybeError::success();
  }
};

} // namespace

ErrorOr<std::vector<Token>> fut::lexSource(const std::string &Source) {
  return Lexer(Source).lexAll();
}
