//===- ArtifactStore.cpp - On-disk compiled-artifact persistence ----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
//
// The binary format is deliberately dumb: a magic/version header, the
// saved fingerprint, then a field-by-field encoding of CompileResult in
// declaration order.  There is no forward/backward compatibility — the
// version bump *is* the migration story (an old file fails the header
// check and the server recompiles).  Robustness comes from the decoder
// never trusting the input: every read is bounds-checked, every count is
// sanity-capped, and the decoded artifact must reproduce the recorded
// fingerprint before anyone gets to run it.
//
//===----------------------------------------------------------------------===//

#include "serve/ArtifactStore.h"

#include "ir/IR.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace fut;
using namespace fut::serve;

namespace {

constexpr char kMagic[4] = {'F', 'U', 'T', 'A'};
constexpr uint32_t kVersion = 1;
/// Upper bound on any single decoded count (functions, statements,
/// dimensions, ...).  Real artifacts are far below it; a corrupt length
/// field fails fast instead of attempting a multi-gigabyte reserve.
constexpr uint64_t kMaxCount = 1u << 24;

//===----------------------------------------------------------------------===//
// Encoder
//===----------------------------------------------------------------------===//

struct Writer {
  std::string Out;

  void u8(uint8_t V) { Out.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) { raw(&V, sizeof V); }
  void u64(uint64_t V) { raw(&V, sizeof V); }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void i32(int32_t V) { u32(static_cast<uint32_t>(V)); }
  void f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }
  void boolean(bool V) { u8(V ? 1 : 0); }
  void str(const std::string &S) {
    u64(S.size());
    Out.append(S);
  }
  void raw(const void *P, size_t N) {
    Out.append(static_cast<const char *>(P), N);
  }

  void name(const VName &N) {
    str(N.Base);
    i32(N.Tag);
  }
  void prim(const PrimValue &V) {
    u8(static_cast<uint8_t>(V.kind()));
    switch (V.kind()) {
    case ScalarKind::Bool:
      u8(V.getBool() ? 1 : 0);
      break;
    case ScalarKind::I32:
    case ScalarKind::I64:
      i64(V.getInt());
      break;
    case ScalarKind::F32:
    case ScalarKind::F64:
      f64(V.getFloat());
      break;
    }
  }
  void sub(const SubExp &S) {
    boolean(S.isConst());
    if (S.isConst())
      prim(S.getConst());
    else
      name(S.getVar());
  }
  void type(const Type &T) {
    u8(static_cast<uint8_t>(T.elemKind()));
    boolean(T.isUnique());
    u64(T.shape().size());
    for (const Dim &D : T.shape())
      sub(D);
  }
  void param(const Param &P) {
    name(P.Name);
    type(P.Ty);
  }

  template <typename T, typename F> void vec(const std::vector<T> &V, F Fn) {
    u64(V.size());
    for (const T &X : V)
      Fn(X);
  }
  void subs(const std::vector<SubExp> &V) {
    vec(V, [&](const SubExp &S) { sub(S); });
  }
  void names(const std::vector<VName> &V) {
    vec(V, [&](const VName &N) { name(N); });
  }
  void types(const std::vector<Type> &V) {
    vec(V, [&](const Type &T) { type(T); });
  }
  void params(const std::vector<Param> &V) {
    vec(V, [&](const Param &P) { param(P); });
  }

  void body(const Body &B);
  void lambda(const Lambda &L) {
    params(L.Params);
    body(L.B);
    types(L.RetTypes);
  }
  void exp(const Exp &E);
};

void Writer::body(const Body &B) {
  u64(B.Stms.size());
  for (const Stm &S : B.Stms) {
    params(S.Pat);
    exp(*S.E);
  }
  subs(B.Result);
}

void Writer::exp(const Exp &E) {
  u8(static_cast<uint8_t>(E.kind()));
  switch (E.kind()) {
  case ExpKind::SubExpE:
    sub(expCast<SubExpExp>(&E)->Val);
    break;
  case ExpKind::BinOpE: {
    const auto *X = expCast<BinOpExp>(&E);
    u8(static_cast<uint8_t>(X->Op));
    sub(X->A);
    sub(X->B);
    break;
  }
  case ExpKind::UnOpE: {
    const auto *X = expCast<UnOpExp>(&E);
    u8(static_cast<uint8_t>(X->Op));
    sub(X->A);
    break;
  }
  case ExpKind::ConvOpE: {
    const auto *X = expCast<ConvOpExp>(&E);
    u8(static_cast<uint8_t>(X->Op.From));
    u8(static_cast<uint8_t>(X->Op.To));
    sub(X->A);
    break;
  }
  case ExpKind::If: {
    const auto *X = expCast<IfExp>(&E);
    sub(X->Cond);
    body(X->Then);
    body(X->Else);
    types(X->RetTypes);
    break;
  }
  case ExpKind::Index: {
    const auto *X = expCast<IndexExp>(&E);
    name(X->Arr);
    subs(X->Indices);
    break;
  }
  case ExpKind::Apply: {
    const auto *X = expCast<ApplyExp>(&E);
    str(X->Func);
    subs(X->Args);
    break;
  }
  case ExpKind::Loop: {
    const auto *X = expCast<LoopExp>(&E);
    params(X->MergeParams);
    subs(X->MergeInit);
    name(X->IndexVar);
    sub(X->Bound);
    body(X->LoopBody);
    break;
  }
  case ExpKind::Update: {
    const auto *X = expCast<UpdateExp>(&E);
    name(X->Arr);
    subs(X->Indices);
    sub(X->Value);
    break;
  }
  case ExpKind::Iota: {
    const auto *X = expCast<IotaExp>(&E);
    sub(X->N);
    u8(static_cast<uint8_t>(X->Elem));
    break;
  }
  case ExpKind::Replicate: {
    const auto *X = expCast<ReplicateExp>(&E);
    sub(X->N);
    sub(X->Val);
    type(X->ValType);
    break;
  }
  case ExpKind::Rearrange: {
    const auto *X = expCast<RearrangeExp>(&E);
    u64(X->Perm.size());
    for (int P : X->Perm)
      i32(P);
    name(X->Arr);
    break;
  }
  case ExpKind::Reshape: {
    const auto *X = expCast<ReshapeExp>(&E);
    subs(X->NewShape);
    name(X->Arr);
    break;
  }
  case ExpKind::Concat:
    names(expCast<ConcatExp>(&E)->Arrays);
    break;
  case ExpKind::Copy:
    name(expCast<CopyExp>(&E)->Arr);
    break;
  case ExpKind::Slice: {
    const auto *X = expCast<SliceExp>(&E);
    name(X->Arr);
    sub(X->Offset);
    sub(X->Len);
    sub(X->Stride);
    break;
  }
  case ExpKind::Map: {
    const auto *X = expCast<MapExp>(&E);
    sub(X->Width);
    lambda(X->Fn);
    names(X->Arrays);
    break;
  }
  case ExpKind::Reduce: {
    const auto *X = expCast<ReduceExp>(&E);
    sub(X->Width);
    lambda(X->Fn);
    subs(X->Neutral);
    names(X->Arrays);
    boolean(X->Commutative);
    break;
  }
  case ExpKind::Scan: {
    const auto *X = expCast<ScanExp>(&E);
    sub(X->Width);
    lambda(X->Fn);
    subs(X->Neutral);
    names(X->Arrays);
    break;
  }
  case ExpKind::Stream: {
    const auto *X = expCast<StreamExp>(&E);
    u8(static_cast<uint8_t>(X->Form));
    sub(X->Width);
    lambda(X->ReduceFn);
    i32(X->NumAccs);
    subs(X->AccInit);
    lambda(X->FoldFn);
    names(X->Arrays);
    break;
  }
  case ExpKind::ReduceByIndex: {
    const auto *X = expCast<ReduceByIndexExp>(&E);
    sub(X->Width);
    name(X->Dest);
    lambda(X->CombineFn);
    sub(X->Neutral);
    lambda(X->ValueFn);
    name(X->IndexArr);
    names(X->ValueArrs);
    break;
  }
  case ExpKind::Kernel: {
    const auto *X = expCast<KernelExp>(&E);
    u8(static_cast<uint8_t>(X->Op));
    subs(X->GridDims);
    names(X->ThreadIndices);
    sub(X->SegSize);
    name(X->SegIndex);
    lambda(X->ReduceFn);
    subs(X->Neutral);
    u64(X->Inputs.size());
    for (const KernelExp::KInput &In : X->Inputs) {
      name(In.Arr);
      type(In.Ty);
      u64(In.LayoutPerm.size());
      for (int P : In.LayoutPerm)
        i32(P);
      boolean(In.Tiled);
    }
    body(X->ThreadBody);
    types(X->RetTypes);
    name(X->HistDest);
    sub(X->HistWidth);
    boolean(X->TransposedOutputs);
    break;
  }
  }
}

//===----------------------------------------------------------------------===//
// Decoder
//===----------------------------------------------------------------------===//

struct Reader {
  const std::string &In;
  size_t Pos = 0;
  bool Fail = false;

  explicit Reader(const std::string &In) : In(In) {}

  bool take(void *P, size_t N) {
    if (Fail || In.size() - Pos < N) {
      Fail = true;
      return false;
    }
    std::memcpy(P, In.data() + Pos, N);
    Pos += N;
    return true;
  }
  uint8_t u8() {
    uint8_t V = 0;
    take(&V, sizeof V);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    take(&V, sizeof V);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    take(&V, sizeof V);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  int32_t i32() { return static_cast<int32_t>(u32()); }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof V);
    return V;
  }
  bool boolean() { return u8() != 0; }
  /// A decoded collection size, capped so corrupt lengths fail instead of
  /// allocating.
  size_t count() {
    uint64_t N = u64();
    if (N > kMaxCount) {
      Fail = true;
      return 0;
    }
    return static_cast<size_t>(N);
  }
  std::string str() {
    size_t N = count();
    if (Fail || In.size() - Pos < N) {
      Fail = true;
      return {};
    }
    std::string S(In, Pos, N);
    Pos += N;
    return S;
  }
  /// An enum discriminator with an inclusive upper bound.
  uint8_t tag(uint8_t Max) {
    uint8_t V = u8();
    if (V > Max)
      Fail = true;
    return Fail ? 0 : V;
  }

  VName name() {
    std::string Base = str();
    int Tag = i32();
    return VName(std::move(Base), Tag);
  }
  ScalarKind scalarKind() {
    return static_cast<ScalarKind>(tag(static_cast<uint8_t>(ScalarKind::F64)));
  }
  PrimValue prim() {
    ScalarKind K = scalarKind();
    switch (K) {
    case ScalarKind::Bool:
      return PrimValue::makeBool(u8() != 0);
    case ScalarKind::I32:
      return PrimValue::makeI32(static_cast<int32_t>(i64()));
    case ScalarKind::I64:
      return PrimValue::makeI64(i64());
    case ScalarKind::F32:
      return PrimValue::makeF32(static_cast<float>(f64()));
    case ScalarKind::F64:
      return PrimValue::makeF64(f64());
    }
    Fail = true;
    return PrimValue();
  }
  SubExp sub() {
    if (boolean())
      return SubExp::constant(prim());
    return SubExp::var(name());
  }
  Type type() {
    ScalarKind K = scalarKind();
    bool Unique = boolean();
    std::vector<Dim> Shape(count());
    for (Dim &D : Shape)
      D = sub();
    return Type(K, std::move(Shape), Unique);
  }
  Param param() {
    VName N = name();
    Type T = type();
    return Param(std::move(N), std::move(T));
  }

  std::vector<SubExp> subs() {
    std::vector<SubExp> V(count());
    for (SubExp &S : V)
      S = sub();
    return V;
  }
  std::vector<VName> names() {
    std::vector<VName> V(count());
    for (VName &N : V)
      N = name();
    return V;
  }
  std::vector<Type> types() {
    std::vector<Type> V(count());
    for (Type &T : V)
      T = type();
    return V;
  }
  std::vector<Param> params() {
    std::vector<Param> V(count());
    for (Param &P : V)
      P = param();
    return V;
  }
  std::vector<int> ints() {
    std::vector<int> V(count());
    for (int &X : V)
      X = i32();
    return V;
  }

  Body body();
  Lambda lambda() {
    Lambda L;
    L.Params = params();
    L.B = body();
    L.RetTypes = types();
    return L;
  }
  ExpPtr exp();
};

Body Reader::body() {
  Body B;
  size_t N = count();
  B.Stms.reserve(Fail ? 0 : N);
  for (size_t I = 0; I < N && !Fail; ++I) {
    std::vector<Param> Pat = params();
    ExpPtr E = exp();
    if (Fail || !E)
      break;
    B.Stms.emplace_back(std::move(Pat), std::move(E));
  }
  B.Result = subs();
  return B;
}

ExpPtr Reader::exp() {
  ExpKind K =
      static_cast<ExpKind>(tag(static_cast<uint8_t>(ExpKind::Kernel)));
  if (Fail)
    return nullptr;
  switch (K) {
  case ExpKind::SubExpE:
    return std::make_unique<SubExpExp>(sub());
  case ExpKind::BinOpE: {
    BinOp Op = static_cast<BinOp>(tag(static_cast<uint8_t>(BinOp::Geq)));
    SubExp A = sub(), B = sub();
    return std::make_unique<BinOpExp>(Op, std::move(A), std::move(B));
  }
  case ExpKind::UnOpE: {
    UnOp Op = static_cast<UnOp>(tag(static_cast<uint8_t>(UnOp::Floor)));
    return std::make_unique<UnOpExp>(Op, sub());
  }
  case ExpKind::ConvOpE: {
    ConvOp Op;
    Op.From = scalarKind();
    Op.To = scalarKind();
    return std::make_unique<ConvOpExp>(Op, sub());
  }
  case ExpKind::If: {
    SubExp Cond = sub();
    Body Then = body(), Else = body();
    return std::make_unique<IfExp>(std::move(Cond), std::move(Then),
                                   std::move(Else), types());
  }
  case ExpKind::Index: {
    VName Arr = name();
    return std::make_unique<IndexExp>(std::move(Arr), subs());
  }
  case ExpKind::Apply: {
    std::string F = str();
    return std::make_unique<ApplyExp>(std::move(F), subs());
  }
  case ExpKind::Loop: {
    std::vector<Param> MP = params();
    std::vector<SubExp> MI = subs();
    VName IV = name();
    SubExp Bound = sub();
    Body B = body();
    return std::make_unique<LoopExp>(std::move(MP), std::move(MI),
                                     std::move(IV), std::move(Bound),
                                     std::move(B));
  }
  case ExpKind::Update: {
    VName Arr = name();
    std::vector<SubExp> Idx = subs();
    SubExp V = sub();
    return std::make_unique<UpdateExp>(std::move(Arr), std::move(Idx),
                                       std::move(V));
  }
  case ExpKind::Iota: {
    SubExp N = sub();
    ScalarKind Elem = scalarKind();
    return std::make_unique<IotaExp>(std::move(N), Elem);
  }
  case ExpKind::Replicate: {
    SubExp N = sub(), V = sub();
    return std::make_unique<ReplicateExp>(std::move(N), std::move(V), type());
  }
  case ExpKind::Rearrange: {
    std::vector<int> Perm = ints();
    return std::make_unique<RearrangeExp>(std::move(Perm), name());
  }
  case ExpKind::Reshape: {
    std::vector<SubExp> Shape = subs();
    return std::make_unique<ReshapeExp>(std::move(Shape), name());
  }
  case ExpKind::Concat:
    return std::make_unique<ConcatExp>(names());
  case ExpKind::Copy:
    return std::make_unique<CopyExp>(name());
  case ExpKind::Slice: {
    VName Arr = name();
    SubExp Off = sub(), Len = sub(), Stride = sub();
    return std::make_unique<SliceExp>(std::move(Arr), std::move(Off),
                                      std::move(Len), std::move(Stride));
  }
  case ExpKind::Map: {
    SubExp W = sub();
    Lambda Fn = lambda();
    return std::make_unique<MapExp>(std::move(W), std::move(Fn), names());
  }
  case ExpKind::Reduce: {
    SubExp W = sub();
    Lambda Fn = lambda();
    std::vector<SubExp> Ne = subs();
    std::vector<VName> Arrs = names();
    bool Comm = boolean();
    return std::make_unique<ReduceExp>(std::move(W), std::move(Fn),
                                       std::move(Ne), std::move(Arrs), Comm);
  }
  case ExpKind::Scan: {
    SubExp W = sub();
    Lambda Fn = lambda();
    std::vector<SubExp> Ne = subs();
    return std::make_unique<ScanExp>(std::move(W), std::move(Fn),
                                     std::move(Ne), names());
  }
  case ExpKind::Stream: {
    StreamExp::FormKind Form = static_cast<StreamExp::FormKind>(
        tag(static_cast<uint8_t>(StreamExp::FormKind::Seq)));
    SubExp W = sub();
    Lambda RFn = lambda();
    int NumAccs = i32();
    std::vector<SubExp> Acc = subs();
    Lambda FFn = lambda();
    return std::make_unique<StreamExp>(Form, std::move(W), std::move(RFn),
                                       NumAccs, std::move(Acc),
                                       std::move(FFn), names());
  }
  case ExpKind::ReduceByIndex: {
    SubExp W = sub();
    VName Dest = name();
    Lambda CFn = lambda();
    SubExp Ne = sub();
    Lambda VFn = lambda();
    VName Idx = name();
    return std::make_unique<ReduceByIndexExp>(
        std::move(W), std::move(Dest), std::move(CFn), std::move(Ne),
        std::move(VFn), std::move(Idx), names());
  }
  case ExpKind::Kernel: {
    auto X = std::make_unique<KernelExp>();
    X->Op = static_cast<KernelExp::OpKind>(
        tag(static_cast<uint8_t>(KernelExp::OpKind::SegHist)));
    X->GridDims = subs();
    X->ThreadIndices = names();
    X->SegSize = sub();
    X->SegIndex = name();
    X->ReduceFn = lambda();
    X->Neutral = subs();
    size_t NI = count();
    for (size_t I = 0; I < NI && !Fail; ++I) {
      KernelExp::KInput In;
      In.Arr = name();
      In.Ty = type();
      In.LayoutPerm = ints();
      In.Tiled = boolean();
      X->Inputs.push_back(std::move(In));
    }
    X->ThreadBody = body();
    X->RetTypes = types();
    X->HistDest = name();
    X->HistWidth = sub();
    X->TransposedOutputs = boolean();
    return X;
  }
  }
  Fail = true;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// The plans and statistics
//===----------------------------------------------------------------------===//

void putMemPlan(Writer &W, const mem::MemoryPlan &MP) {
  W.u64(MP.Funs.size());
  for (const mem::FunPlan &FP : MP.Funs) {
    W.str(FP.Fun);
    W.u64(FP.Entries.size());
    for (const mem::PlanEntry &E : FP.Entries) {
      W.name(E.Name);
      W.i32(E.Slab);
      W.i64(E.Offset);
      W.i64(E.Bytes);
      W.str(E.SizeExpr);
      W.boolean(E.HasAlias);
      W.name(E.AliasOf);
      W.u8(static_cast<uint8_t>(E.Alias));
      W.boolean(E.Hoisted);
      W.i32(E.BufferIndex);
      W.boolean(E.Reused);
      W.i32(E.Start);
      W.i32(E.End);
    }
    W.u64(FP.Slabs.size());
    for (const mem::SlabInfo &SI : FP.Slabs) {
      W.i32(SI.Id);
      W.i64(SI.Bytes);
      W.str(SI.SizeExpr);
      W.boolean(SI.Hoisted);
    }
    W.i64(FP.StaticArenaBytes);
    W.i32(FP.HoistedSlabs);
    W.i32(FP.ReuseLinks);
    W.i64(FP.TapeBytes);
    W.i32(FP.TapeArrays);
    W.i32(FP.TapeSymbolic);
  }
}

mem::MemoryPlan getMemPlan(Reader &R) {
  mem::MemoryPlan MP;
  size_t NF = R.count();
  for (size_t I = 0; I < NF && !R.Fail; ++I) {
    mem::FunPlan FP;
    FP.Fun = R.str();
    size_t NE = R.count();
    for (size_t J = 0; J < NE && !R.Fail; ++J) {
      mem::PlanEntry E;
      E.Name = R.name();
      E.Slab = R.i32();
      E.Offset = R.i64();
      E.Bytes = R.i64();
      E.SizeExpr = R.str();
      E.HasAlias = R.boolean();
      E.AliasOf = R.name();
      E.Alias = static_cast<mem::AliasKind>(
          R.tag(static_cast<uint8_t>(mem::AliasKind::LoopResult)));
      E.Hoisted = R.boolean();
      E.BufferIndex = R.i32();
      E.Reused = R.boolean();
      E.Start = R.i32();
      E.End = R.i32();
      FP.EntryIndex[E.Name] = static_cast<int>(FP.Entries.size());
      FP.Entries.push_back(std::move(E));
    }
    size_t NS = R.count();
    for (size_t J = 0; J < NS && !R.Fail; ++J) {
      mem::SlabInfo SI;
      SI.Id = R.i32();
      SI.Bytes = R.i64();
      SI.SizeExpr = R.str();
      SI.Hoisted = R.boolean();
      FP.Slabs.push_back(std::move(SI));
    }
    FP.StaticArenaBytes = R.i64();
    FP.HoistedSlabs = R.i32();
    FP.ReuseLinks = R.i32();
    FP.TapeBytes = R.i64();
    FP.TapeArrays = R.i32();
    FP.TapeSymbolic = R.i32();
    MP.Funs.push_back(std::move(FP));
  }
  return MP;
}

void putShardPlan(Writer &W, const shard::ShardPlan &SP) {
  W.i32(SP.Devices);
  W.u64(SP.Funs.size());
  for (const shard::FunShardPlan &FP : SP.Funs) {
    W.str(FP.Fun);
    W.u64(FP.Kernels.size());
    for (const shard::KernelShard &K : FP.Kernels) {
      W.i32(K.KernelId);
      W.boolean(K.Sharded);
      W.str(K.WhyNot);
      W.boolean(K.HistMerge);
      W.sub(K.Width);
      W.i64(K.ConstWidth);
      W.u64(K.Blocks.size());
      for (const auto &B : K.Blocks) {
        W.i64(B.first);
        W.i64(B.second);
      }
      W.u64(K.Inputs.size());
      for (const shard::ShardInput &In : K.Inputs) {
        W.name(In.Arr);
        W.u8(static_cast<uint8_t>(In.Class));
      }
      W.names(K.Outputs);
    }
    W.u64(FP.Transfers.size());
    for (const shard::TransferEdge &T : FP.Transfers) {
      W.name(T.Arr);
      W.i32(T.ProducerKernel);
      W.i32(T.ConsumerKernel);
      W.i64(T.Bytes);
    }
    W.u64(FP.PlannedPeakBytes.size());
    for (int64_t B : FP.PlannedPeakBytes)
      W.i64(B);
    W.i64(FP.PerDeviceMemBytes);
  }
}

shard::ShardPlan getShardPlan(Reader &R) {
  shard::ShardPlan SP;
  SP.Devices = R.i32();
  size_t NF = R.count();
  for (size_t I = 0; I < NF && !R.Fail; ++I) {
    shard::FunShardPlan FP;
    FP.Fun = R.str();
    size_t NK = R.count();
    for (size_t J = 0; J < NK && !R.Fail; ++J) {
      shard::KernelShard K;
      K.KernelId = R.i32();
      K.Sharded = R.boolean();
      K.WhyNot = R.str();
      K.HistMerge = R.boolean();
      K.Width = R.sub();
      K.ConstWidth = R.i64();
      size_t NB = R.count();
      for (size_t L = 0; L < NB && !R.Fail; ++L) {
        int64_t A = R.i64(), B = R.i64();
        K.Blocks.emplace_back(A, B);
      }
      size_t NI = R.count();
      for (size_t L = 0; L < NI && !R.Fail; ++L) {
        shard::ShardInput In;
        In.Arr = R.name();
        In.Class = static_cast<shard::InputClass>(
            R.tag(static_cast<uint8_t>(shard::InputClass::Broadcast)));
        K.Inputs.push_back(std::move(In));
      }
      K.Outputs = R.names();
      FP.Kernels.push_back(std::move(K));
    }
    size_t NT = R.count();
    for (size_t J = 0; J < NT && !R.Fail; ++J) {
      shard::TransferEdge T;
      T.Arr = R.name();
      T.ProducerKernel = R.i32();
      T.ConsumerKernel = R.i32();
      T.Bytes = R.i64();
      FP.Transfers.push_back(std::move(T));
    }
    size_t NP = R.count();
    for (size_t J = 0; J < NP && !R.Fail; ++J)
      FP.PlannedPeakBytes.push_back(R.i64());
    FP.PerDeviceMemBytes = R.i64();
    SP.Funs.push_back(std::move(FP));
  }
  return SP;
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

std::string serve::serializeArtifact(const CompileResult &C) {
  Writer W;
  W.raw(kMagic, sizeof kMagic);
  W.u32(kVersion);
  W.u64(C.fingerprint());

  W.u64(C.P.Funs.size());
  for (const FunDef &F : C.P.Funs) {
    W.str(F.Name);
    W.params(F.Params);
    W.types(F.RetTypes);
    W.body(F.FBody);
  }

  W.i32(C.Fusion.Vertical);
  W.i32(C.Fusion.Redomap);
  W.i32(C.Fusion.StreamFusions);
  W.i32(C.Fusion.Horizontal);
  W.i32(C.Fusion.HistFusions);

  W.i32(C.Flatten.ThreadKernels);
  W.i32(C.Flatten.SegReduces);
  W.i32(C.Flatten.SegScans);
  W.i32(C.Flatten.SegHists);
  W.i32(C.Flatten.Interchanges);
  W.i32(C.Flatten.VectorisedReduceInterchanges);
  W.i32(C.Flatten.SequentialisedSOACs);

  W.i32(C.Locality.CoalescedInputs);
  W.i32(C.Locality.TiledInputs);

  putMemPlan(W, C.MemPlan);
  putShardPlan(W, C.Shards);
  return std::move(W.Out);
}

ErrorOr<CompileResult> serve::deserializeArtifact(const std::string &Bytes) {
  Reader R(Bytes);
  char Magic[4];
  if (!R.take(Magic, sizeof Magic) || std::memcmp(Magic, kMagic, 4) != 0)
    return CompilerError::runtime("artifact: bad magic");
  if (R.u32() != kVersion)
    return CompilerError::runtime("artifact: version mismatch");
  uint64_t SavedFp = R.u64();

  CompileResult C;
  Program P;
  size_t NF = R.count();
  for (size_t I = 0; I < NF && !R.Fail; ++I) {
    FunDef F;
    F.Name = R.str();
    F.Params = R.params();
    F.RetTypes = R.types();
    F.FBody = R.body();
    P.Funs.push_back(std::move(F));
  }
  C.P = DeviceProgram(std::move(P));

  C.Fusion.Vertical = R.i32();
  C.Fusion.Redomap = R.i32();
  C.Fusion.StreamFusions = R.i32();
  C.Fusion.Horizontal = R.i32();
  C.Fusion.HistFusions = R.i32();

  C.Flatten.ThreadKernels = R.i32();
  C.Flatten.SegReduces = R.i32();
  C.Flatten.SegScans = R.i32();
  C.Flatten.SegHists = R.i32();
  C.Flatten.Interchanges = R.i32();
  C.Flatten.VectorisedReduceInterchanges = R.i32();
  C.Flatten.SequentialisedSOACs = R.i32();

  C.Locality.CoalescedInputs = R.i32();
  C.Locality.TiledInputs = R.i32();

  C.MemPlan = getMemPlan(R);
  C.Shards = getShardPlan(R);

  if (R.Fail)
    return CompilerError::runtime("artifact: truncated or corrupt");
  if (R.Pos != Bytes.size())
    return CompilerError::runtime("artifact: trailing garbage");
  // The content-hash check: the decoded artifact must reproduce the hash
  // recorded at save time, or the file is not the artifact it claims.
  if (C.fingerprint() != SavedFp)
    return CompilerError::runtime(
        "artifact: fingerprint mismatch (corrupt store)");
  return C;
}

std::string ArtifactStore::pathFor(uint64_t Key) const {
  char Hex[17];
  std::snprintf(Hex, sizeof Hex, "%016llx",
                static_cast<unsigned long long>(Key));
  return Dir + "/" + Hex + ".futa";
}

bool ArtifactStore::exists(uint64_t Key) const {
  std::error_code EC;
  return std::filesystem::exists(pathFor(Key), EC);
}

bool ArtifactStore::save(uint64_t Key, const CompileResult &C) const {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string Bytes = serializeArtifact(C);
  std::string Path = pathFor(Key);
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream OS(Tmp, std::ios::binary | std::ios::trunc);
    if (!OS)
      return false;
    OS.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!OS)
      return false;
  }
  std::filesystem::rename(Tmp, Path, EC);
  if (EC) {
    std::filesystem::remove(Tmp, EC);
    return false;
  }
  return true;
}

ErrorOr<CompileResult> ArtifactStore::load(uint64_t Key) const {
  std::ifstream IS(pathFor(Key), std::ios::binary);
  if (!IS)
    return CompilerError::runtime("artifact: not stored");
  std::ostringstream OS;
  OS << IS.rdbuf();
  return deserializeArtifact(OS.str());
}
