//===- ArtifactStore.h - On-disk compiled-artifact persistence --*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Durable storage for compiled artifacts, so a restarted futharkcc-serve
/// process serves its former working set from disk instead of recompiling
/// it (the cold-start half of compile-once/serve-many).
///
/// A stored artifact is the complete CompileResult: the lowered device
/// program, the memory plan, the shard plan and the pass statistics, in a
/// versioned binary format.  Files are *named* by the pre-compile cache
/// key (artifactCacheKey: source + canonical options, computable without
/// compiling — the same key the in-memory cache uses), and *verified* by
/// the post-compile content hash: every load re-derives
/// CompileResult::fingerprint() from the decoded artifact and rejects the
/// file unless it reproduces the fingerprint recorded at save time.  A
/// flipped bit, a truncated write, or a format drift therefore degrades to
/// a recompile, never to serving a corrupt artifact.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_SERVE_ARTIFACTSTORE_H
#define FUTHARKCC_SERVE_ARTIFACTSTORE_H

#include "driver/Compiler.h"
#include "support/Error.h"

#include <cstdint>
#include <string>

namespace fut {
namespace serve {

/// Encodes the complete artifact (program, memory plan, shard plan, pass
/// statistics) into the versioned binary format, fingerprint first.
std::string serializeArtifact(const CompileResult &C);

/// Decodes \p Bytes and verifies it: structural decode errors and a
/// fingerprint that fails to reproduce both come back as typed errors.
ErrorOr<CompileResult> deserializeArtifact(const std::string &Bytes);

/// A directory of serialized artifacts, one file per cache key.  Pure
/// functions of (Dir, Key): the store keeps no state, so any number of
/// server instances may share a directory.
class ArtifactStore {
public:
  explicit ArtifactStore(std::string Dir) : Dir(std::move(Dir)) {}

  std::string pathFor(uint64_t Key) const;
  bool exists(uint64_t Key) const;

  /// Serializes and writes atomically (temp file + rename), creating the
  /// directory if needed.  Returns false on any I/O failure; persistence
  /// is an optimisation, so callers treat failure as "not stored".
  bool save(uint64_t Key, const CompileResult &C) const;

  /// Reads, decodes and fingerprint-verifies the artifact for \p Key.
  ErrorOr<CompileResult> load(uint64_t Key) const;

private:
  std::string Dir;
};

} // namespace serve
} // namespace fut

#endif // FUTHARKCC_SERVE_ARTIFACTSTORE_H
