//===- Serve.h - Compile-once/serve-many request service --------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// futharkcc-serve: a fault-isolated compile-once/serve-many service in
/// front of the compiler and the simulated device.  The paper's pipeline
/// (flatten -> fuse -> plan -> launch) runs once per distinct program; the
/// resulting immutable artifact (DeviceProgram + MemoryPlan + cost
/// metadata) is cached by a content hash of the source text plus the
/// canonical compiler options, and every further request for the same
/// program executes straight from the cache.
///
/// The server simulates a request timeline in device cycles.  Requests
/// arrive at ArrivalCycle, wait in a bounded FIFO queue, and are admitted
/// onto a shared simulated device by a capacity-aware admission
/// controller:
///
///  * the first run of an (artifact, arguments) pair executes *solo* and
///    profiles the plan-derived PlannedPeakBytes residency bound;
///  * subsequent identical requests are *packed*: the controller reserves
///    the profiled bound and admits concurrent tenants only while the sum
///    of reservations fits DeviceMemBytes — the static memory plan is the
///    admission contract, checked before launch, never after;
///  * each packed tenant runs with the rest of the device marked
///    ReservedBytes, so a tenant that outgrows its reservation OOMs inside
///    its own sandbox instead of corrupting a neighbour.
///
/// Robustness is the point of the layer:
///
///  * fault isolation — artifacts are immutable (shared_ptr<const ...>);
///    a request's injected faults, watchdog kills or OOMs can never poison
///    the cache or another in-flight request;
///  * per-request limits — watchdog budgets, retry counts, fault rates and
///    deadlines travel in ServeLimits and are threaded into a private
///    DeviceRunOptions per request, so two tenants with different limits
///    cannot clobber each other;
///  * bounded queue with load shedding — a full queue rejects with a typed
///    ErrorKind::Overload error instead of growing without bound;
///  * deadlines — a request whose deadline expires while queued is shed
///    with ErrorKind::Deadline before any work is done; a run that
///    completes past its deadline is reported as a Deadline failure;
///  * quarantine — an artifact whose runs fail persistently is evicted and
///    recompiled once (the fingerprint must reproduce); only if the fresh
///    artifact also fails does the request degrade to the reference
///    interpreter, so one bad artifact never becomes a permanent outage;
///  * graceful degradation — every admitted request completes: retried,
///    recompiled, or interpreted, never hung.
///
/// Everything is observable through the trace layer (serve track spans per
/// request, instants for shed/quarantine/fallback, counters for
/// admitted/shed/cache hits/...).
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_SERVE_SERVE_H
#define FUTHARKCC_SERVE_SERVE_H

#include "driver/Compiler.h"
#include "gpusim/Device.h"
#include "support/Error.h"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace fut {
namespace serve {

/// Per-request execution limits: the PR 1 resilience knobs plus a
/// client-facing deadline.  Each request's limits are materialised into a
/// private DeviceRunOptions — nothing here is process- or service-global.
struct ServeLimits {
  /// Per-kernel / per-run watchdog budgets in simulated cycles (0 = off).
  double WatchdogKernelCycles = 0;
  double WatchdogTotalCycles = 0;
  /// Device-level transient-fault retries per kernel.
  int MaxRetries = 3;
  /// Injected fault rates and the seed of the request's own fault stream.
  double LaunchFailRate = 0;
  double CorruptRate = 0;
  uint64_t FaultSeed = 0;
  /// Deadline in simulated cycles relative to arrival; 0 = none.
  double DeadlineCycles = 0;
  /// Allow degradation to the reference interpreter when the device fails
  /// persistently even after quarantine-recompile.  When false the typed
  /// device error is returned instead.
  bool AllowFallback = true;
};

struct ServeRequest {
  std::string Source;
  std::string Fun = "main";
  std::vector<Value> Args;
  /// Simulated cycle at which the request reaches the server.
  double ArrivalCycle = 0;
  ServeLimits Limits;
  /// Compiler options; part of the artifact cache key.
  CompilerOptions Compile;
};

struct ServeResponse {
  uint64_t Id = 0;
  bool Ok = false;
  /// Valid when !Ok: the typed failure (Overload, Deadline, Compile,
  /// Runtime, or a device kind when fallback was disabled).
  ErrorKind Error = ErrorKind::Runtime;
  std::string Message;
  std::vector<Value> Outputs;

  /// Artifact served from the cache (no compilation on this request).
  bool CacheHit = false;
  /// The quarantine path evicted and recompiled the artifact here.
  bool Recompiled = false;
  /// Completed by the reference interpreter (service-level degradation).
  bool InterpFallback = false;
  /// Admitted exclusively (no profiled bound yet, or bound > capacity).
  bool Solo = false;
  /// Bytes reserved by the admission controller (packed runs: the
  /// profiled PlannedPeakBytes bound; solo runs: 0 = whole device).
  int64_t ReservedBytes = 0;
  /// Device attempts made (>= 1 once admitted; 0 when shed).
  int Attempts = 0;

  double ArrivalCycle = 0;
  double StartCycle = 0;      ///< Admission instant.
  double CompletionCycle = 0; ///< Response instant (== shed instant).
  double queuedCycles() const { return StartCycle - ArrivalCycle; }
  double serviceCycles() const { return CompletionCycle - StartCycle; }

  /// Cost report of the final device attempt (empty when shed or when the
  /// request completed on the interpreter).
  gpusim::CostReport Cost;
};

struct ServerConfig {
  /// The shared device; DeviceMemBytes is the capacity the admission
  /// controller packs reservations into.
  gpusim::DeviceParams Device = gpusim::DeviceParams::gtx780();
  /// Pending requests beyond this are shed with ErrorKind::Overload.
  size_t MaxQueueDepth = 64;
  /// Artifact-cache capacity in entries; least-recently-used beyond it.
  size_t MaxCacheEntries = 64;
  /// Consecutive device-kind failures of one artifact before it is
  /// evicted and recompiled once.
  int QuarantineThreshold = 2;
  /// Simulated cycles charged for a compile (cache misses only): the
  /// compile-once cost that cache hits amortise away.
  double CompileCycles = 50000;
  /// First serve-level retry backoff in simulated cycles (doubles per
  /// attempt), charged on top of the device's own per-kernel backoff.
  double RequestRetryBackoffCycles = 16000;
  /// Default limits for requests that do not override them.
  ServeLimits DefaultLimits;
  /// Directory for the on-disk artifact store (--artifact-dir); empty
  /// disables persistence.  A cache miss consults the store before
  /// compiling, so a restarted server serves its former working set as
  /// cache hits (no compile cycles charged); every fresh compile and
  /// quarantine recompile is written back.  Loads are fingerprint-verified
  /// (ArtifactStore.h), so a corrupt file degrades to a recompile.
  std::string ArtifactDir;
};

/// Aggregate service counters (mirrored into the trace session as
/// "serve.*" counters).
struct ServerStats {
  int64_t Submitted = 0;
  int64_t Admitted = 0;
  int64_t Completed = 0; ///< Ok responses (including fallbacks).
  int64_t Failed = 0;    ///< Typed non-Ok responses that were admitted.
  int64_t ShedOverload = 0;
  int64_t ShedDeadline = 0;
  int64_t DeadlineMissed = 0; ///< Ran, but finished past the deadline.
  int64_t CacheHits = 0;
  int64_t CacheMisses = 0;
  /// On-disk artifact store traffic (0 unless ArtifactDir is set).  A
  /// DiskHit is also a CacheHit: the request was served without
  /// compiling.
  int64_t DiskHits = 0;
  int64_t DiskStores = 0;
  int64_t DiskCorrupt = 0; ///< Files that failed decode/fingerprint check.
  int64_t Compiles = 0;
  int64_t Recompiles = 0;
  int64_t Quarantined = 0;
  int64_t Fallbacks = 0;
  int64_t DeviceFailures = 0; ///< Device-kind attempt failures observed.
  /// Requests rejected before launch because the materialised device
  /// configuration was inconsistent (e.g. over-reservation at or above
  /// capacity) — a typed ErrorKind::Config response, never a 1-byte card.
  int64_t ConfigRejected = 0;
  int64_t SoloRuns = 0;
  int64_t PackedRuns = 0;
  /// Admission-controller audit trail: the high-water marks of
  /// co-resident tenants and of the summed reservations.  The invariant
  /// PeakReservedBytes <= Device.DeviceMemBytes is the acceptance bound.
  int64_t PeakResidentTenants = 0;
  int64_t PeakReservedBytes = 0;
  size_t PeakQueueDepth = 0;
  double LastCompletionCycle = 0;

  double cacheHitRate() const {
    int64_t N = CacheHits + CacheMisses;
    return N ? static_cast<double>(CacheHits) / static_cast<double>(N) : 0;
  }
};

/// One cached compiled artifact plus its serving metadata.  The artifact
/// itself is immutable; only the metadata (profiled bounds, failure
/// counters, recency) changes, which is what makes cross-request fault
/// isolation structural rather than disciplined.
struct CacheEntry {
  std::shared_ptr<const CompileResult> Artifact;
  uint64_t Fingerprint = 0;
  /// Profiled PlannedPeakBytes reservation per argument signature.
  std::map<uint64_t, int64_t> BoundByArgs;
  int ConsecutiveDeviceFailures = 0;
  bool Recompiled = false;
  uint64_t LastUse = 0;
  int64_t Hits = 0;
};

class Server {
public:
  explicit Server(ServerConfig C = {});

  /// Enqueues a request; returns its id.  Shedding decisions happen at
  /// simulated arrival time inside drain(), so a submission is never
  /// refused here.
  uint64_t submit(ServeRequest R);

  /// Runs the simulated request loop until every submitted request has a
  /// response (completed, degraded, or typed-shed — never dropped).
  /// Responses are in completion order.  Admitted work executes eagerly in
  /// host time; concurrency exists on the simulated timeline.
  std::vector<ServeResponse> drain();

  const ServerConfig &config() const { return Config; }
  const ServerStats &stats() const { return Stats; }
  size_t cacheSize() const { return Cache.size(); }
  /// Fingerprint of the cached artifact for (source, options), or 0 when
  /// not cached (test hook for hash-stability assertions).
  uint64_t cachedFingerprint(const std::string &Source,
                             const CompilerOptions &Opts) const;

private:
  struct Submission {
    uint64_t Id;
    ServeRequest Req;
  };
  struct Resident {
    double CompletionCycle = 0;
    int64_t Reservation = 0;
    bool Solo = false;
    ServeResponse Response;
  };

  ServerConfig Config;
  ServerStats Stats;
  std::vector<Submission> Submissions;
  std::unordered_map<uint64_t, CacheEntry> Cache;
  uint64_t UseClock = 0; ///< LRU recency stamp.
  uint64_t NextId = 1;

  CacheEntry *lookupOrCompile(const ServeRequest &Req, bool &Hit,
                              CompilerError &Err);
  void evictIfOverCapacity();
  /// Executes one admitted request against the cache (attempt ladder:
  /// run, serve-level retry, quarantine-recompile, interpreter fallback).
  /// Returns the response with ServiceCycles-relevant fields filled;
  /// StartCycle/CompletionCycle are set by the caller.
  ServeResponse execute(const ServeRequest &Req, uint64_t Id,
                        int64_t Reservation, bool Solo, double &DurationOut);
  /// The per-request DeviceRunOptions (the satellite fix: every limit is
  /// per-request, nothing is shared between tenants).
  DeviceRunOptions makeRunOptions(const ServeRequest &Req, int64_t Reservation,
                                  bool Solo) const;
};

/// Stable hash of an argument vector (shapes and contents), keying the
/// profiled-bound table.
uint64_t argSignature(const std::vector<Value> &Args);

} // namespace serve
} // namespace fut

#endif // FUTHARKCC_SERVE_SERVE_H
