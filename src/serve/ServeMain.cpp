//===- ServeMain.cpp - The futharkcc-serve command-line service -----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Command-line front end of the serving layer: builds a workload of
/// compile/run requests (from source files or from the built-in program
/// mix), drains it through serve::Server on one shared simulated device,
/// and reports per-request outcomes plus the service counters.
///
///   futharkcc-serve prog.fut --requests 16        # 16 requests, one source
///   futharkcc-serve a.fut b.fut --requests 8      # interleaved tenants
///   futharkcc-serve --builtin 32 --fault-rate 0.4 # soak the failure paths
///   futharkcc-serve --builtin 32 --check          # verify vs interpreter
///
/// --check recomputes every successful response on the reference
/// interpreter (unoptimised frontend output, no faults, no sharing) and
/// demands bit-identical results: the cross-request contamination check
/// used by the CI soak leg.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "parser/Desugar.h"
#include "serve/Serve.h"
#include "trace/Trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

using namespace fut;

namespace {

void usage() {
  fprintf(stderr,
          "usage: futharkcc-serve [file.fut ...] [options]\n"
          "workload:\n"
          "  --builtin <n>      synthesise n requests over the built-in\n"
          "                     program mix instead of reading files\n"
          "  --requests <n>     requests per source file (default 8)\n"
          "  --arrival-gap <c>  simulated cycles between arrivals\n"
          "                     (default 20000)\n"
          "service:\n"
          "  --queue-depth <n>  bounded queue capacity (default 64)\n"
          "  --cache-entries <n> artifact cache capacity (default 64)\n"
          "  --compile-cycles <c> simulated cost of a cache miss\n"
          "  --device <name>    gtx780 (default) or w8100\n"
          "  --device-mem <b>   device capacity in bytes (0 = unlimited)\n"
          "  --artifact-dir <d> persist compiled artifacts to directory d;\n"
          "                     a restarted server serves them as cache\n"
          "                     hits without recompiling\n"
          "per-request limits:\n"
          "  --deadline <c>     per-request deadline in simulated cycles\n"
          "  --watchdog <c>     per-kernel watchdog budget\n"
          "  --max-retries <n>  device retries per kernel (default 3)\n"
          "  --fault-rate <p>   injected launch-failure probability\n"
          "  --corrupt-rate <p> injected corruption probability\n"
          "  --fault-seed <n>   base seed; request i uses seed n + i\n"
          "  --no-fallback      typed error instead of interpreter fallback\n"
          "validation and reporting:\n"
          "  --check            recompute every Ok response on the\n"
          "                     reference interpreter; exit 1 on mismatch\n"
          "  --quiet            suppress per-request lines\n"
          "  --trace            print the span/counter summary to stderr\n"
          "  --trace-out <file> write Chrome trace_event JSON\n");
}

/// The built-in workload mix: small programs exercising map/reduce/scan
/// pipelines, each served with a few argument sizes so the admission
/// controller sees several (artifact, signature) profiles.
struct Builtin {
  const char *Name;
  const char *Source;
};

const Builtin kBuiltins[] = {
    {"sumsq",
     "fun main (n: i32): i32 =\n"
     "  reduce (+) 0 (map (\\(i: i32): i32 -> i * i) (iota n))\n"},
    {"polyfold",
     "fun main (n: i32): i32 =\n"
     "  reduce (+) 0 (map (\\(i: i32): i32 -> (i * 3 + 1) * (i % 7))\n"
     "                    (iota n))\n"},
    {"scanlast",
     "fun main (n: i32): i32 =\n"
     "  let s = scan (+) 0 (iota n)\n"
     "  in s[n - 1]\n"},
    {"maskedsum",
     "fun main (n: i32): i32 =\n"
     "  reduce (+) 0 (map (\\(i: i32): i32 -> if i % 3 == 0 then i else 0)\n"
     "                    (iota n))\n"},
};

std::string readFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path);
  Ok = static_cast<bool>(In);
  std::stringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

/// Reference result for --check: the unoptimised frontend output on the
/// plain interpreter, computed once per (source, args) pair.
ErrorOr<std::vector<Value>> referenceRun(const std::string &Source,
                                         const std::string &Fun,
                                         const std::vector<Value> &Args) {
  NameSource Names;
  auto P = frontend(Source, Names);
  if (!P)
    return P.getError();
  InterpOptions IO;
  IO.ConsumeOnUpdate = true;
  Program Prog = P.take();
  Interpreter I(Prog, IO);
  return I.runFunction(Fun, Args);
}

} // namespace

int main(int argc, char **argv) {
  std::vector<std::string> Files;
  int BuiltinN = 0;
  int RequestsPerFile = 8;
  double ArrivalGap = 20000;
  bool Check = false, Quiet = false, TraceSummary = false;
  std::string TraceOut;
  serve::ServerConfig SC;
  serve::ServeLimits Limits;
  uint64_t BaseSeed = 1;

  auto NumArg = [&](int &I, double &Out) {
    if (++I >= argc)
      return false;
    try {
      Out = std::stod(argv[I]);
    } catch (...) {
      return false;
    }
    return true;
  };

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    double N = 0;
    if (A == "--builtin") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      BuiltinN = static_cast<int>(N);
    } else if (A == "--requests") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      RequestsPerFile = static_cast<int>(N);
    } else if (A == "--arrival-gap") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      ArrivalGap = N;
    } else if (A == "--queue-depth") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      SC.MaxQueueDepth = static_cast<size_t>(N);
    } else if (A == "--cache-entries") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      SC.MaxCacheEntries = static_cast<size_t>(N);
    } else if (A == "--compile-cycles") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      SC.CompileCycles = N;
    } else if (A == "--device") {
      if (++I >= argc) {
        usage();
        return 2;
      }
      std::string Name = argv[I];
      if (Name == "w8100")
        SC.Device = gpusim::DeviceParams::w8100();
      else if (Name != "gtx780") {
        fprintf(stderr, "unknown device '%s'\n", Name.c_str());
        return 2;
      }
    } else if (A == "--device-mem") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      SC.Device.DeviceMemBytes = static_cast<int64_t>(N);
    } else if (A == "--artifact-dir") {
      if (++I >= argc) {
        usage();
        return 2;
      }
      SC.ArtifactDir = argv[I];
    } else if (A.rfind("--artifact-dir=", 0) == 0) {
      SC.ArtifactDir = A.substr(strlen("--artifact-dir="));
    } else if (A == "--deadline") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      Limits.DeadlineCycles = N;
    } else if (A == "--watchdog") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      Limits.WatchdogKernelCycles = N;
    } else if (A == "--max-retries") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      Limits.MaxRetries = static_cast<int>(N);
    } else if (A == "--fault-rate") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      Limits.LaunchFailRate = N;
    } else if (A == "--corrupt-rate") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      Limits.CorruptRate = N;
    } else if (A == "--fault-seed") {
      if (!NumArg(I, N)) {
        usage();
        return 2;
      }
      BaseSeed = static_cast<uint64_t>(N);
    } else if (A == "--no-fallback") {
      Limits.AllowFallback = false;
    } else if (A == "--check") {
      Check = true;
    } else if (A == "--quiet") {
      Quiet = true;
    } else if (A == "--trace") {
      TraceSummary = true;
    } else if (A == "--trace-out") {
      if (++I >= argc) {
        usage();
        return 2;
      }
      TraceOut = argv[I];
    } else if (A.rfind("--trace-out=", 0) == 0) {
      TraceOut = A.substr(strlen("--trace-out="));
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      fprintf(stderr, "unknown option '%s'\n", A.c_str());
      usage();
      return 2;
    } else {
      Files.push_back(A);
    }
  }
  if (Files.empty() && BuiltinN <= 0) {
    usage();
    return 2;
  }

  bool Tracing = TraceSummary || !TraceOut.empty();
  if (Tracing) {
    trace::TraceSession::global().clear();
    trace::TraceSession::global().setEnabled(true);
  }

  // Assemble the workload: (label, source, args) per request, round-robin
  // over sources so concurrent tenants genuinely interleave.
  struct WorkItem {
    std::string Label;
    std::string Source;
    std::vector<Value> Args;
  };
  std::vector<WorkItem> Work;

  if (BuiltinN > 0) {
    const int kNumBuiltins =
        static_cast<int>(sizeof(kBuiltins) / sizeof(kBuiltins[0]));
    const int32_t Sizes[] = {256, 512, 1024};
    for (int I = 0; I < BuiltinN; ++I) {
      const Builtin &B = kBuiltins[I % kNumBuiltins];
      int32_t N = Sizes[(I / kNumBuiltins) % 3];
      WorkItem W;
      W.Label = std::string(B.Name) + "/" + std::to_string(N);
      W.Source = B.Source;
      W.Args.push_back(Value::scalar(PrimValue::makeI32(N)));
      Work.push_back(std::move(W));
    }
  } else {
    std::vector<std::pair<std::string, std::string>> Sources;
    for (const std::string &F : Files) {
      bool Ok = false;
      std::string S = readFile(F, Ok);
      if (!Ok) {
        fprintf(stderr, "error: cannot open %s\n", F.c_str());
        return 1;
      }
      Sources.emplace_back(F, std::move(S));
    }
    for (int I = 0; I < RequestsPerFile; ++I)
      for (auto &SP : Sources) {
        WorkItem W;
        W.Label = SP.first;
        W.Source = SP.second;
        Work.push_back(std::move(W));
      }
  }

  serve::Server Server(SC);
  std::vector<WorkItem> ById(Work.size() + 1);
  for (size_t I = 0; I < Work.size(); ++I) {
    serve::ServeRequest R;
    R.Source = Work[I].Source;
    R.Args = Work[I].Args;
    R.ArrivalCycle = static_cast<double>(I) * ArrivalGap;
    R.Limits = Limits;
    R.Limits.FaultSeed = BaseSeed + I;
    uint64_t Id = Server.submit(std::move(R));
    if (Id < ById.size())
      ById[Id] = Work[I];
  }

  std::vector<serve::ServeResponse> Responses = Server.drain();

  int Mismatches = 0, CheckedOk = 0;
  for (const serve::ServeResponse &R : Responses) {
    const WorkItem &W = R.Id < ById.size() ? ById[R.Id] : ById[0];
    if (!Quiet) {
      std::string Outcome;
      if (R.Ok)
        Outcome = R.InterpFallback ? "ok (interp-fallback)"
                  : R.Recompiled   ? "ok (recompiled)"
                                   : "ok";
      else
        Outcome = std::string("failed [") + errorKindName(R.Error) + "]";
      printf("#%llu %-18s %-22s %s attempts=%d queued=%.0f service=%.0f%s\n",
             static_cast<unsigned long long>(R.Id), W.Label.c_str(),
             Outcome.c_str(),
             R.CacheHit  ? "hit " :
             R.Attempts  ? "miss" : "-   ",
             R.Attempts, R.queuedCycles(), R.serviceCycles(),
             R.Solo ? " solo" : "");
    }
    if (Check && R.Ok) {
      auto Ref = referenceRun(W.Source, "main", W.Args);
      bool Match = static_cast<bool>(Ref) && Ref->size() == R.Outputs.size();
      if (Match)
        for (size_t J = 0; J < R.Outputs.size(); ++J)
          if (!(R.Outputs[J] == (*Ref)[J]))
            Match = false;
      if (!Match) {
        ++Mismatches;
        fprintf(stderr,
                "CONTAMINATION: request %llu (%s) diverged from the "
                "reference interpreter\n",
                static_cast<unsigned long long>(R.Id), W.Label.c_str());
      } else {
        ++CheckedOk;
      }
    }
  }

  const serve::ServerStats &St = Server.stats();
  fprintf(stderr,
          "serve: %lld submitted, %lld admitted, %lld completed, %lld "
          "failed, %lld shed (overload %lld, deadline %lld)\n"
          "serve: cache %zu entries, %lld hits / %lld misses (%.1f%% hit "
          "rate), %lld compiles, %lld recompiles\n"
          "serve: %lld device failures, %lld quarantined, %lld interpreter "
          "fallbacks\n"
          "serve: %lld solo + %lld packed runs, peak %lld tenants, peak "
          "reserved %lld / %lld bytes, peak queue %zu\n",
          static_cast<long long>(St.Submitted),
          static_cast<long long>(St.Admitted),
          static_cast<long long>(St.Completed),
          static_cast<long long>(St.Failed),
          static_cast<long long>(St.ShedOverload + St.ShedDeadline),
          static_cast<long long>(St.ShedOverload),
          static_cast<long long>(St.ShedDeadline), Server.cacheSize(),
          static_cast<long long>(St.CacheHits),
          static_cast<long long>(St.CacheMisses), 100.0 * St.cacheHitRate(),
          static_cast<long long>(St.Compiles),
          static_cast<long long>(St.Recompiles),
          static_cast<long long>(St.DeviceFailures),
          static_cast<long long>(St.Quarantined),
          static_cast<long long>(St.Fallbacks),
          static_cast<long long>(St.SoloRuns),
          static_cast<long long>(St.PackedRuns),
          static_cast<long long>(St.PeakResidentTenants),
          static_cast<long long>(St.PeakReservedBytes),
          static_cast<long long>(SC.Device.DeviceMemBytes),
          St.PeakQueueDepth);
  if (!SC.ArtifactDir.empty())
    fprintf(stderr,
            "serve: artifact store '%s': %lld disk hits, %lld stores, %lld "
            "corrupt\n",
            SC.ArtifactDir.c_str(), static_cast<long long>(St.DiskHits),
            static_cast<long long>(St.DiskStores),
            static_cast<long long>(St.DiskCorrupt));
  if (Check)
    fprintf(stderr, "serve: --check verified %d responses, %d mismatches\n",
            CheckedOk, Mismatches);

  if (Tracing) {
    if (TraceSummary)
      fprintf(stderr, "%s", trace::TraceSession::global().summary().c_str());
    if (!TraceOut.empty()) {
      if (auto Err =
              trace::TraceSession::global().writeChromeTrace(TraceOut)) {
        fprintf(stderr, "trace error: %s\n", Err.getError().Message.c_str());
        return 1;
      }
      fprintf(stderr, "trace written to %s\n", TraceOut.c_str());
    }
  }

  // Completeness is the robustness contract: every submission must have
  // produced exactly one response.
  if (Responses.size() != static_cast<size_t>(St.Submitted)) {
    fprintf(stderr, "serve: INTERNAL: %zu responses for %lld submissions\n",
            Responses.size(), static_cast<long long>(St.Submitted));
    return 1;
  }
  return Mismatches ? 1 : 0;
}
