//===- Serve.cpp - Compile-once/serve-many request service ----------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "serve/Serve.h"

#include "interp/Interp.h"
#include "serve/ArtifactStore.h"
#include "parser/Desugar.h"
#include "support/Utils.h"
#include "trace/Trace.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace fut;
using namespace fut::serve;

uint64_t fut::serve::argSignature(const std::vector<Value> &Args) {
  uint64_t H = fnv1a64("args");
  for (const Value &V : Args) {
    H = fnv1a64(V.str(), H);
    H = fnv1a64(std::string(1, '\0'), H);
  }
  return H;
}

Server::Server(ServerConfig C) : Config(std::move(C)) {
  trace::TraceSession::global().setThreadName(trace::kServeTid, "serve");
}

uint64_t Server::submit(ServeRequest R) {
  uint64_t Id = NextId++;
  Submissions.push_back({Id, std::move(R)});
  ++Stats.Submitted;
  return Id;
}

uint64_t Server::cachedFingerprint(const std::string &Source,
                                   const CompilerOptions &Opts) const {
  auto It = Cache.find(artifactCacheKey(Source, Opts));
  return It == Cache.end() ? 0 : It->second.Fingerprint;
}

CacheEntry *Server::lookupOrCompile(const ServeRequest &Req, bool &Hit,
                                    CompilerError &Err) {
  uint64_t Key = artifactCacheKey(Req.Source, Req.Compile);
  auto It = Cache.find(Key);
  if (It != Cache.end()) {
    Hit = true;
    It->second.LastUse = ++UseClock;
    ++It->second.Hits;
    return &It->second;
  }
  Hit = false;
  // A memory miss consults the on-disk store before paying for a compile:
  // this is the warm-restart path.  A served load *is* a cache hit — the
  // caller charges no compile cycles and the response reports CacheHit.
  if (!Config.ArtifactDir.empty()) {
    ArtifactStore Store(Config.ArtifactDir);
    if (Store.exists(Key)) {
      auto Loaded = Store.load(Key);
      if (Loaded) {
        Hit = true;
        ++Stats.DiskHits;
        trace::counter("serve.disk_hits");
        CacheEntry E;
        E.Artifact = std::make_shared<const CompileResult>(Loaded.take());
        E.Fingerprint = E.Artifact->fingerprint();
        E.LastUse = ++UseClock;
        E.Hits = 1;
        auto Ins = Cache.emplace(Key, std::move(E));
        evictIfOverCapacity();
        return &Ins.first->second;
      }
      // Truncated, bit-flipped or stale-format file: fall through to a
      // fresh compile, whose save below overwrites the bad artifact.
      ++Stats.DiskCorrupt;
      trace::counter("serve.disk_corrupt");
    }
  }
  NameSource Names;
  trace::ScopedSpan Span("serve:compile", "serve", trace::kServeTid);
  auto C = compileSource(Req.Source, Names, Req.Compile);
  ++Stats.Compiles;
  trace::counter("serve.compiles");
  if (!C) {
    Err = C.getError();
    return nullptr;
  }
  CacheEntry E;
  E.Artifact = std::make_shared<const CompileResult>(C.take());
  E.Fingerprint = E.Artifact->fingerprint();
  E.LastUse = ++UseClock;
  if (!Config.ArtifactDir.empty() &&
      ArtifactStore(Config.ArtifactDir).save(Key, *E.Artifact)) {
    ++Stats.DiskStores;
    trace::counter("serve.disk_stores");
  }
  auto Ins = Cache.emplace(Key, std::move(E));
  evictIfOverCapacity();
  return &Ins.first->second;
}

void Server::evictIfOverCapacity() {
  while (Cache.size() > Config.MaxCacheEntries) {
    auto Victim = Cache.end();
    for (auto It = Cache.begin(); It != Cache.end(); ++It)
      if (Victim == Cache.end() || It->second.LastUse < Victim->second.LastUse)
        Victim = It;
    trace::counter("serve.cache_evictions");
    Cache.erase(Victim);
  }
}

DeviceRunOptions Server::makeRunOptions(const ServeRequest &Req,
                                                int64_t Reservation,
                                                bool Solo) const {
  const ServeLimits &L = Req.Limits;
  DeviceRunOptions RO;
  RO.Device = Config.Device;
  RO.Device.WatchdogKernelCycles = L.WatchdogKernelCycles;
  RO.Device.WatchdogTotalCycles = L.WatchdogTotalCycles;
  // A packed tenant's sandbox is exactly its reservation: everything else
  // on the device is marked reserved, so outgrowing the profiled bound
  // OOMs this request without touching a co-tenant's bytes.  A solo run
  // sees the whole device.
  if (!Solo && Config.Device.DeviceMemBytes > 0 && Reservation > 0)
    RO.Device.ReservedBytes = Config.Device.DeviceMemBytes - Reservation;
  RO.Resilience.MaxRetries = L.MaxRetries;
  RO.Resilience.Faults.LaunchFailRate = L.LaunchFailRate;
  RO.Resilience.Faults.CorruptRate = L.CorruptRate;
  RO.Resilience.Faults.Seed = L.FaultSeed;
  // The serving layer owns graceful degradation: device failures must
  // surface here so the quarantine/recompile/fallback ladder can react.
  RO.Resilience.InterpFallback = false;
  return RO;
}

namespace {

bool isDeviceFailure(const CompilerError &E) {
  return E.Kind == ErrorKind::DeviceOOM || E.Kind == ErrorKind::Watchdog ||
         E.Kind == ErrorKind::TransientFault;
}

} // namespace

ServeResponse Server::execute(const ServeRequest &Req, uint64_t Id,
                              int64_t Reservation, bool Solo,
                              double &DurationOut) {
  ServeResponse Resp;
  Resp.Id = Id;
  Resp.ArrivalCycle = Req.ArrivalCycle;
  Resp.Solo = Solo;
  Resp.ReservedBytes = Reservation;
  double Duration = 0;

  trace::ScopedSpan Span("serve:request", "serve", trace::kServeTid);
  Span.arg("id", static_cast<int64_t>(Id));

  // Admission sanity: an inconsistent device configuration — most notably
  // a reservation at or above the card's capacity, which the old
  // effectiveMemBytes() clamp used to shrink to a pathological 1-byte
  // device — is a typed Config error surfaced before any compile or
  // launch.  It is the server's fault, not the program's, and never
  // degrades to the interpreter.
  if (auto CfgErr = makeRunOptions(Req, Solo ? 0 : Reservation, Solo)
                        .Device.validate()) {
    ++Stats.ConfigRejected;
    trace::counter("serve.config_rejected");
    Resp.Ok = false;
    Resp.Error = CfgErr.getError().Kind;
    Resp.Message = CfgErr.getError().str();
    Span.arg("outcome", "config-error");
    DurationOut = 0;
    return Resp;
  }

  bool Hit = false;
  CompilerError CErr;
  CacheEntry *E = lookupOrCompile(Req, Hit, CErr);
  Resp.CacheHit = Hit;
  if (Hit) {
    ++Stats.CacheHits;
    trace::counter("serve.cache_hits");
  } else {
    ++Stats.CacheMisses;
    trace::counter("serve.cache_misses");
    Duration += Config.CompileCycles;
  }
  Span.arg("cache", Hit ? "hit" : "miss");
  if (!E) {
    Resp.Ok = false;
    Resp.Error = CErr.Kind;
    Resp.Message = CErr.str();
    Span.arg("outcome", "compile-error");
    DurationOut = Duration;
    return Resp;
  }

  const ServeLimits &L = Req.Limits;
  CompilerError LastErr;
  constexpr int kMaxAttempts = 3;
  for (int Attempt = 1; Attempt <= kMaxAttempts; ++Attempt) {
    Resp.Attempts = Attempt;
    // Pin the artifact for the duration of the run: quarantine (or LRU
    // eviction on behalf of another request) can drop the cache entry,
    // never the memory an in-flight run reads.
    std::shared_ptr<const CompileResult> Artifact = E->Artifact;
    DeviceRunOptions RO = makeRunOptions(Req, Reservation, Solo);
    if (Req.Compile.PlanMemory)
      RO.MemPlan = &Artifact->MemPlan;
    else
      RO.Device.UseMemPlan = false;
    auto R = runOnDevice(Artifact->P, Req.Args, RO, Req.Fun);
    if (R) {
      Duration += R->Cost.TotalCycles;
      Resp.Ok = true;
      Resp.Outputs = std::move(R->Outputs);
      Resp.Cost = R->Cost;
      E->ConsecutiveDeviceFailures = 0;
      // Profile the residency bound for this argument signature: future
      // identical requests can be packed by it.  The demand peak covers
      // the launch-time overlap of live inputs with materialising
      // results, which the plain residency peaks miss.
      int64_t Bound = std::max(
          {R->Cost.PlannedPeakBytes, R->Cost.PeakDeviceBytes,
           R->Cost.PeakDemandBytes});
      if (Bound > 0)
        E->BoundByArgs[argSignature(Req.Args)] = Bound;
      Span.arg("outcome", "ok");
      Span.arg("cycles", R->Cost.TotalCycles);
      DurationOut = Duration;
      return Resp;
    }

    LastErr = R.getError();
    if (!isDeviceFailure(LastErr)) {
      // The program's own fault (bad index, shape mismatch): surfaces
      // directly and does not count against the artifact.
      Resp.Ok = false;
      Resp.Error = LastErr.Kind;
      Resp.Message = LastErr.str();
      Span.arg("outcome", "runtime-error");
      DurationOut = Duration;
      return Resp;
    }

    ++Stats.DeviceFailures;
    trace::counter("serve.device_failures");
    ++E->ConsecutiveDeviceFailures;
    if (Attempt == kMaxAttempts)
      break;

    // Serve-level backoff before the next attempt (on top of the
    // device's own per-kernel retry backoff, which is inside TotalCycles
    // of successful attempts only).
    Duration += Config.RequestRetryBackoffCycles * std::ldexp(1.0, Attempt - 1);

    // Quarantine: a persistently failing artifact is evicted and
    // recompiled once.  The fresh artifact must reproduce the original
    // fingerprint (compilation is deterministic) — this is defence
    // against a corrupted cached artifact, and the fingerprint check
    // would catch nondeterministic compilation.
    if (E->ConsecutiveDeviceFailures >= Config.QuarantineThreshold &&
        !E->Recompiled) {
      ++Stats.Quarantined;
      trace::counter("serve.quarantined");
      trace::TraceSession::global().instant("serve:quarantine", "serve",
                                            trace::kServeTid);
      NameSource Names;
      auto C = compileSource(Req.Source, Names, Req.Compile);
      ++Stats.Compiles;
      ++Stats.Recompiles;
      trace::counter("serve.compiles");
      trace::counter("serve.recompiles");
      Duration += Config.CompileCycles;
      if (C) {
        E->Artifact = std::make_shared<const CompileResult>(C.take());
        E->Fingerprint = E->Artifact->fingerprint();
        E->Recompiled = true;
        E->ConsecutiveDeviceFailures = 0;
        Resp.Recompiled = true;
        // The quarantine hypothesis is a corrupted artifact; refresh the
        // on-disk copy too so the next cold start gets the clean one.
        if (!Config.ArtifactDir.empty() &&
            ArtifactStore(Config.ArtifactDir)
                .save(artifactCacheKey(Req.Source, Req.Compile),
                      *E->Artifact)) {
          ++Stats.DiskStores;
          trace::counter("serve.disk_stores");
        }
      }
    }
  }

  // Device attempts exhausted: graceful degradation to the reference
  // interpreter, unless this request opted out.
  if (!L.AllowFallback) {
    Resp.Ok = false;
    Resp.Error = LastErr.Kind;
    Resp.Message = LastErr.str();
    Span.arg("outcome", "device-error");
    DurationOut = Duration;
    return Resp;
  }
  ++Stats.Fallbacks;
  trace::counter("serve.fallbacks");
  trace::TraceSession::global().instant("serve:fallback", "serve",
                                        trace::kServeTid);
  std::shared_ptr<const CompileResult> Artifact = E->Artifact;
  InterpOptions IO;
  IO.ConsumeOnUpdate = true;
  int64_t HostOps = 0;
  IO.OnExp = [&](const Exp &, const NameMap<Value> &) { ++HostOps; };
  Interpreter I(Artifact->P, IO);
  auto Out = I.runFunction(Req.Fun, Req.Args);
  if (!Out) {
    Resp.Ok = false;
    Resp.Error = ErrorKind::FallbackExhausted;
    Resp.Message = "device failed (" + LastErr.Message +
                   ") and the interpreter fallback also failed: " +
                   Out.getError().Message;
    Span.arg("outcome", "fallback-exhausted");
    DurationOut = Duration;
    return Resp;
  }
  Duration += static_cast<double>(HostOps) * Config.Device.HostCyclesPerOp;
  Resp.Ok = true;
  Resp.InterpFallback = true;
  Resp.Outputs = Out.take();
  Span.arg("outcome", "interp-fallback");
  DurationOut = Duration;
  return Resp;
}

std::vector<ServeResponse> Server::drain() {
  trace::TraceSession::global().setThreadName(trace::kServeTid, "serve");
  std::stable_sort(Submissions.begin(), Submissions.end(),
                   [](const Submission &A, const Submission &B) {
                     return A.Req.ArrivalCycle < B.Req.ArrivalCycle;
                   });

  const int64_t Capacity = Config.Device.DeviceMemBytes;
  std::deque<Submission> Queue;
  std::vector<Resident> Residents;
  std::vector<ServeResponse> Responses;
  size_t NextArrival = 0;
  double SimNow = 0;
  int64_t Reserved = 0;
  bool SoloActive = false;

  auto Shed = [&](const Submission &S, ErrorKind Kind,
                  const std::string &Msg) {
    ServeResponse Resp;
    Resp.Id = S.Id;
    Resp.Ok = false;
    Resp.Error = Kind;
    Resp.Message = Msg;
    Resp.ArrivalCycle = S.Req.ArrivalCycle;
    Resp.StartCycle = SimNow;
    Resp.CompletionCycle = SimNow;
    if (Kind == ErrorKind::Overload) {
      ++Stats.ShedOverload;
      trace::counter("serve.shed_overload");
      trace::TraceSession::global().instant("serve:shed-overload", "serve",
                                            trace::kServeTid);
    } else {
      ++Stats.ShedDeadline;
      trace::counter("serve.shed_deadline");
      trace::TraceSession::global().instant("serve:shed-deadline", "serve",
                                            trace::kServeTid);
    }
    Responses.push_back(std::move(Resp));
  };

  auto IngestArrivals = [&] {
    while (NextArrival < Submissions.size() &&
           Submissions[NextArrival].Req.ArrivalCycle <= SimNow) {
      Submission &S = Submissions[NextArrival++];
      if (Queue.size() >= Config.MaxQueueDepth) {
        Shed(S, ErrorKind::Overload,
             "request shed: queue full (" +
                 std::to_string(Config.MaxQueueDepth) + " pending)");
        continue;
      }
      Queue.push_back(std::move(S));
      Stats.PeakQueueDepth = std::max(Stats.PeakQueueDepth, Queue.size());
      trace::counter("serve.enqueued");
    }
  };

  auto Retire = [&](double UpTo) {
    for (size_t I = 0; I < Residents.size();) {
      if (Residents[I].CompletionCycle <= UpTo) {
        Resident R = std::move(Residents[I]);
        Residents.erase(Residents.begin() + I);
        Reserved -= R.Reservation;
        if (R.Solo)
          SoloActive = false;
        if (R.Response.Ok) {
          ++Stats.Completed;
          trace::counter("serve.completed");
        } else {
          ++Stats.Failed;
          trace::counter("serve.failed");
        }
        Stats.LastCompletionCycle =
            std::max(Stats.LastCompletionCycle, R.Response.CompletionCycle);
        Responses.push_back(std::move(R.Response));
      } else {
        ++I;
      }
    }
  };

  auto KnownBound = [&](const Submission &S) -> int64_t {
    auto It = Cache.find(artifactCacheKey(S.Req.Source, S.Req.Compile));
    if (It == Cache.end())
      return -1;
    auto B = It->second.BoundByArgs.find(argSignature(S.Req.Args));
    return B == It->second.BoundByArgs.end() ? -1 : B->second;
  };

  auto Admit = [&](Submission S, int64_t Reservation, bool Solo) {
    ++Stats.Admitted;
    trace::counter("serve.admitted");
    if (Solo) {
      ++Stats.SoloRuns;
      SoloActive = true;
    } else {
      ++Stats.PackedRuns;
      Reserved += Reservation;
      Stats.PeakReservedBytes = std::max(Stats.PeakReservedBytes, Reserved);
    }
    Stats.PeakResidentTenants = std::max(
        Stats.PeakResidentTenants, static_cast<int64_t>(Residents.size() + 1));

    double Duration = 0;
    ServeResponse Resp =
        execute(S.Req, S.Id, Solo ? 0 : Reservation, Solo, Duration);
    Resp.StartCycle = SimNow;
    Resp.CompletionCycle = SimNow + Duration;

    // A run that finished past its deadline is a typed Deadline failure:
    // the latency contract was broken even though the work completed.
    const double DL = S.Req.Limits.DeadlineCycles;
    if (Resp.Ok && DL > 0 && Resp.CompletionCycle - Resp.ArrivalCycle > DL) {
      ++Stats.DeadlineMissed;
      trace::counter("serve.deadline_missed");
      Resp.Ok = false;
      Resp.Error = ErrorKind::Deadline;
      Resp.Message =
          "completed past deadline: " +
          std::to_string(
              static_cast<int64_t>(Resp.CompletionCycle - Resp.ArrivalCycle)) +
          " cycles elapsed, deadline " +
          std::to_string(static_cast<int64_t>(DL));
      Resp.Outputs.clear();
    }

    Resident R;
    R.CompletionCycle = Resp.CompletionCycle;
    R.Reservation = Solo ? 0 : Reservation;
    R.Solo = Solo;
    R.Response = std::move(Resp);
    Residents.push_back(std::move(R));
  };

  while (NextArrival < Submissions.size() || !Queue.empty() ||
         !Residents.empty()) {
    IngestArrivals();

    // Admit from the queue front (FIFO; no reordering, so admission is
    // starvation-free by construction).
    while (!Queue.empty()) {
      Submission &S = Queue.front();
      const double DL = S.Req.Limits.DeadlineCycles;
      if (DL > 0 && SimNow - S.Req.ArrivalCycle > DL) {
        Shed(S, ErrorKind::Deadline,
             "request shed: deadline expired after " +
                 std::to_string(
                     static_cast<int64_t>(SimNow - S.Req.ArrivalCycle)) +
                 " queued cycles (deadline " +
                 std::to_string(static_cast<int64_t>(DL)) + ")");
        Queue.pop_front();
        continue;
      }
      int64_t Bound = KnownBound(S);
      bool Packable = Bound >= 0 && (Capacity <= 0 || Bound <= Capacity);
      if (Packable && !SoloActive &&
          (Capacity <= 0 || Reserved + Bound <= Capacity)) {
        Submission Own = std::move(S);
        Queue.pop_front();
        Admit(std::move(Own), Bound, /*Solo=*/false);
        continue;
      }
      if (Residents.empty()) {
        // No profiled bound yet (or the bound exceeds the device): run
        // exclusively.  An oversized program OOMs inside the run and
        // degrades to the interpreter, so even it completes.
        Submission Own = std::move(S);
        Queue.pop_front();
        Admit(std::move(Own), 0, /*Solo=*/true);
        continue;
      }
      break; // Wait for capacity.
    }

    // Advance simulated time to the next event.
    double NextT = std::numeric_limits<double>::infinity();
    for (const Resident &R : Residents)
      NextT = std::min(NextT, R.CompletionCycle);
    if (Queue.empty() && NextArrival < Submissions.size())
      NextT = std::min(NextT, Submissions[NextArrival].Req.ArrivalCycle);
    if (!std::isfinite(NextT))
      break; // Nothing in flight and nothing to arrive.
    SimNow = std::max(SimNow, NextT);
    Retire(SimNow);
  }

  Retire(std::numeric_limits<double>::infinity());
  Submissions.clear();
  NextArrival = 0;
  return Responses;
}
