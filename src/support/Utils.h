//===- Utils.h - Small string/sequence helpers ------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String-joining and hashing helpers shared across the compiler.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_SUPPORT_UTILS_H
#define FUTHARKCC_SUPPORT_UTILS_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fut {

/// Joins the str()/to_string representations produced by \p Fn over \p Items
/// with \p Sep between elements.
template <typename Seq, typename Fn>
std::string joinMapped(const Seq &Items, const char *Sep, Fn Format) {
  std::string Out;
  bool First = true;
  for (const auto &Item : Items) {
    if (!First)
      Out += Sep;
    First = false;
    Out += Format(Item);
  }
  return Out;
}

/// Combines a hash value into a running seed (boost::hash_combine style).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ULL + (Seed << 6) + (Seed >> 2);
}

/// 64-bit FNV-1a over a byte string.  Used for content-addressing compiled
/// artifacts: platform-independent and stable across processes, unlike
/// std::hash.
inline uint64_t fnv1a64(const std::string &S,
                        uint64_t H = 0xcbf29ce484222325ULL) {
  for (unsigned char C : S) {
    H ^= C;
    H *= 0x100000001b3ULL;
  }
  return H;
}

/// A deterministic splitmix64-based PRNG used by tests and workload
/// generators so results are reproducible across platforms.
class SplitMix64 {
  uint64_t State;

public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) { return Bound ? next() % Bound : 0; }

  /// Uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [Lo, Hi).
  double nextDouble(double Lo, double Hi) {
    return Lo + (Hi - Lo) * nextDouble();
  }
};

} // namespace fut

#endif // FUTHARKCC_SUPPORT_UTILS_H
