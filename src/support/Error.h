//===- Error.h - Lightweight error propagation utilities -------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error handling for the compiler pipeline.  Library code never throws;
/// fallible stages return ErrorOr<T> carrying either a value or a
/// CompilerError with a source location and message, in the spirit of LLVM's
/// Expected<T>.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_SUPPORT_ERROR_H
#define FUTHARKCC_SUPPORT_ERROR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace fut {

/// A position in a source file, 1-based; line 0 means "unknown".
struct SrcLoc {
  int Line = 0;
  int Col = 0;

  bool isKnown() const { return Line > 0; }
  std::string str() const {
    if (!isKnown())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// A diagnostic produced by any compiler stage.  The message follows the
/// LLVM style: starts lowercase, no trailing period.
struct CompilerError {
  SrcLoc Loc;
  std::string Message;

  CompilerError() = default;
  CompilerError(std::string Msg) : Message(std::move(Msg)) {}
  CompilerError(SrcLoc Loc, std::string Msg)
      : Loc(Loc), Message(std::move(Msg)) {}

  std::string str() const {
    if (Loc.isKnown())
      return Loc.str() + ": error: " + Message;
    return "error: " + Message;
  }
};

/// Either a T or a CompilerError.  Implicitly convertible to bool (true on
/// success); the value is accessed with operator* / operator->.
template <typename T> class ErrorOr {
  std::variant<T, CompilerError> Storage;

public:
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  ErrorOr(CompilerError Err) : Storage(std::move(Err)) {}

  explicit operator bool() const { return Storage.index() == 0; }

  T &operator*() {
    assert(*this && "accessing value of failed ErrorOr");
    return std::get<0>(Storage);
  }
  const T &operator*() const {
    assert(*this && "accessing value of failed ErrorOr");
    return std::get<0>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const CompilerError &getError() const {
    assert(!*this && "accessing error of successful ErrorOr");
    return std::get<1>(Storage);
  }

  /// Moves the contained value out; only valid on success.
  T take() {
    assert(*this && "taking value of failed ErrorOr");
    return std::move(std::get<0>(Storage));
  }
};

/// Result of a stage that produces no value.  Success is the default state.
class MaybeError {
  bool Failed = false;
  CompilerError Err;

public:
  MaybeError() = default;
  MaybeError(CompilerError E) : Failed(true), Err(std::move(E)) {}

  static MaybeError success() { return MaybeError(); }

  /// True when an error is present (mirrors llvm::Error's convention).
  explicit operator bool() const { return Failed; }

  const CompilerError &getError() const {
    assert(Failed && "no error present");
    return Err;
  }
};

} // namespace fut

#endif // FUTHARKCC_SUPPORT_ERROR_H
