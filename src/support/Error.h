//===- Error.h - Lightweight error propagation utilities -------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error handling for the compiler pipeline.  Library code never throws;
/// fallible stages return ErrorOr<T> carrying either a value or a
/// CompilerError with a source location and message, in the spirit of LLVM's
/// Expected<T>.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_SUPPORT_ERROR_H
#define FUTHARKCC_SUPPORT_ERROR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace fut {

/// A position in a source file, 1-based; line 0 means "unknown".
struct SrcLoc {
  int Line = 0;
  int Col = 0;

  bool isKnown() const { return Line > 0; }
  std::string str() const {
    if (!isKnown())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }
};

/// What kind of failure a diagnostic describes.  Compile covers everything
/// static (parse, type, uniqueness, pass bugs); the remaining kinds are
/// runtime outcomes the host runtime and drivers dispatch on: generic
/// runtime errors (bad index, shape mismatch), device out-of-memory,
/// watchdog kills of runaway executions, transient injected/device faults,
/// and exhaustion of every recovery path including the interpreter
/// fallback.
enum class ErrorKind {
  Compile,
  /// The IR verifier rejected the output of a compiler pass: static like
  /// Compile, but distinguished so harnesses can tell "the input program is
  /// wrong" from "the compiler broke its own IR".
  Verify,
  Runtime,
  DeviceOOM,
  Watchdog,
  TransientFault,
  FallbackExhausted,
  /// The serving layer shed the request because a bounded queue or the
  /// device's admission capacity was saturated; the request was never
  /// executed and retrying later is safe.
  Overload,
  /// The request's deadline expired (while queued, or by the time its run
  /// completed); distinguished from Watchdog, which is the *device's* own
  /// runaway-kernel budget rather than a client-facing latency contract.
  Deadline,
  /// The run was rejected before launch because its configuration is
  /// inconsistent: an admission reservation at or above the device's
  /// capacity, an unknown cost model, a negative tuning knob.  Distinct
  /// from Runtime (the program never ran) and from Overload (the
  /// configuration is wrong, not merely saturated; retrying is useless
  /// until it changes).
  Config,
};

inline const char *errorKindName(ErrorKind K) {
  switch (K) {
  case ErrorKind::Compile:
    return "compile";
  case ErrorKind::Verify:
    return "verify";
  case ErrorKind::Runtime:
    return "runtime";
  case ErrorKind::DeviceOOM:
    return "device-oom";
  case ErrorKind::Watchdog:
    return "watchdog";
  case ErrorKind::TransientFault:
    return "transient-fault";
  case ErrorKind::FallbackExhausted:
    return "fallback-exhausted";
  case ErrorKind::Overload:
    return "overload";
  case ErrorKind::Deadline:
    return "deadline";
  case ErrorKind::Config:
    return "config";
  }
  return "unknown";
}

/// A diagnostic produced by any compiler stage.  The message follows the
/// LLVM style: starts lowercase, no trailing period.
struct CompilerError {
  SrcLoc Loc;
  std::string Message;
  ErrorKind Kind = ErrorKind::Compile;

  CompilerError() = default;
  CompilerError(std::string Msg) : Message(std::move(Msg)) {}
  CompilerError(SrcLoc Loc, std::string Msg)
      : Loc(Loc), Message(std::move(Msg)) {}
  CompilerError(ErrorKind Kind, std::string Msg)
      : Message(std::move(Msg)), Kind(Kind) {}

  static CompilerError runtime(std::string Msg) {
    return CompilerError(ErrorKind::Runtime, std::move(Msg));
  }
  static CompilerError runtime(SrcLoc Loc, std::string Msg) {
    CompilerError E(Loc, std::move(Msg));
    E.Kind = ErrorKind::Runtime;
    return E;
  }
  static CompilerError deviceOOM(std::string Msg) {
    return CompilerError(ErrorKind::DeviceOOM, std::move(Msg));
  }
  static CompilerError watchdog(std::string Msg) {
    return CompilerError(ErrorKind::Watchdog, std::move(Msg));
  }
  static CompilerError transientFault(std::string Msg) {
    return CompilerError(ErrorKind::TransientFault, std::move(Msg));
  }
  static CompilerError fallbackExhausted(std::string Msg) {
    return CompilerError(ErrorKind::FallbackExhausted, std::move(Msg));
  }
  static CompilerError overload(std::string Msg) {
    return CompilerError(ErrorKind::Overload, std::move(Msg));
  }
  static CompilerError deadline(std::string Msg) {
    return CompilerError(ErrorKind::Deadline, std::move(Msg));
  }
  static CompilerError config(std::string Msg) {
    return CompilerError(ErrorKind::Config, std::move(Msg));
  }

  /// True for any failure that happens while running a program (as opposed
  /// to compiling or verifying it).
  bool isRuntime() const {
    return Kind != ErrorKind::Compile && Kind != ErrorKind::Verify;
  }

  std::string str() const {
    std::string Tag = Kind == ErrorKind::Compile
                          ? "error: "
                          : "error [" + std::string(errorKindName(Kind)) +
                                "]: ";
    if (Loc.isKnown())
      return Loc.str() + ": " + Tag + Message;
    return Tag + Message;
  }
};

/// Result of a stage that produces no value.  Success is the default state.
class MaybeError {
  bool Failed = false;
  CompilerError Err;

public:
  MaybeError() = default;
  MaybeError(CompilerError E) : Failed(true), Err(std::move(E)) {}

  static MaybeError success() { return MaybeError(); }

  /// True when an error is present (mirrors llvm::Error's convention).
  explicit operator bool() const { return Failed; }

  const CompilerError &getError() const {
    assert(Failed && "no error present");
    return Err;
  }
};

/// Either a T or a CompilerError.  Implicitly convertible to bool (true on
/// success); the value is accessed with operator* / operator->.
template <typename T> class ErrorOr {
  std::variant<T, CompilerError> Storage;

public:
  ErrorOr(T Value) : Storage(std::move(Value)) {}
  ErrorOr(CompilerError Err) : Storage(std::move(Err)) {}
  /// Propagates a failed MaybeError (asserts it actually holds an error).
  ErrorOr(const MaybeError &Err) : Storage(Err.getError()) {}

  explicit operator bool() const { return Storage.index() == 0; }

  T &operator*() {
    assert(*this && "accessing value of failed ErrorOr");
    return std::get<0>(Storage);
  }
  const T &operator*() const {
    assert(*this && "accessing value of failed ErrorOr");
    return std::get<0>(Storage);
  }
  T *operator->() { return &**this; }
  const T *operator->() const { return &**this; }

  const CompilerError &getError() const {
    assert(!*this && "accessing error of successful ErrorOr");
    return std::get<1>(Storage);
  }

  /// Moves the contained value out; only valid on success.
  T take() {
    assert(*this && "taking value of failed ErrorOr");
    return std::move(std::get<0>(Storage));
  }
};

} // namespace fut

#endif // FUTHARKCC_SUPPORT_ERROR_H
