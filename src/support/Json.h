//===- Json.h - Minimal JSON writing and parsing ----------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value model with a writer and a recursive-descent parser,
/// shared by the trace exporters (which emit Chrome trace_event files and
/// BENCH_trace.json) and by the tests that validate the emitted schema.
/// Only what those clients need is implemented: objects, arrays, strings,
/// doubles, bools and null, with standard escaping.  Numbers parse as
/// double, which is exact for the integer counters we emit (< 2^53).
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_SUPPORT_JSON_H
#define FUTHARKCC_SUPPORT_JSON_H

#include "support/Error.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace fut {
namespace json {

/// Escapes \p S for inclusion in a JSON string literal (without quotes).
inline std::string escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Formats a double the way JSON expects: integers without a fraction,
/// everything else with enough digits to round-trip.
inline std::string number(double V) {
  if (std::isfinite(V) && V == std::floor(V) && std::fabs(V) < 1e15) {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    return Buf;
  }
  if (!std::isfinite(V))
    return "0"; // JSON has no inf/nan; clamp rather than corrupt the file
  char Buf[40];
  snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Parsed values
//===----------------------------------------------------------------------===//

enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

/// A parsed JSON value.  Object member order is not preserved (std::map),
/// which is fine for schema validation.
struct Value {
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::map<std::string, Value> Obj;

  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  /// Object member lookup; null when absent or not an object.
  const Value *get(const std::string &Key) const {
    if (K != Kind::Object)
      return nullptr;
    auto It = Obj.find(Key);
    return It == Obj.end() ? nullptr : &It->second;
  }
  /// Member as number; \p Missing when absent or of another kind.
  double getNumber(const std::string &Key, double Missing = 0) const {
    const Value *V = get(Key);
    return V && V->K == Kind::Number ? V->Num : Missing;
  }
  /// Member as string; empty when absent or of another kind.
  std::string getString(const std::string &Key) const {
    const Value *V = get(Key);
    return V && V->K == Kind::String ? V->Str : std::string();
  }
};

namespace detail {

class Parser {
  const std::string &S;
  size_t Pos = 0;

public:
  explicit Parser(const std::string &S) : S(S) {}

  ErrorOr<Value> parse() {
    auto V = parseValue();
    if (!V)
      return V;
    skipWs();
    if (Pos != S.size())
      return err("trailing characters after JSON value");
    return V;
  }

private:
  CompilerError err(const std::string &Msg) const {
    return CompilerError("json: " + Msg + " at offset " +
                         std::to_string(Pos));
  }

  void skipWs() {
    while (Pos < S.size() && (S[Pos] == ' ' || S[Pos] == '\t' ||
                              S[Pos] == '\n' || S[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < S.size() && S[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  ErrorOr<Value> parseValue() {
    skipWs();
    if (Pos >= S.size())
      return err("unexpected end of input");
    char C = S[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return parseString();
    if (C == 't' || C == 'f')
      return parseBool();
    if (C == 'n') {
      if (S.compare(Pos, 4, "null") != 0)
        return err("bad literal");
      Pos += 4;
      return Value();
    }
    return parseNumber();
  }

  ErrorOr<Value> parseObject() {
    ++Pos; // '{'
    Value V;
    V.K = Kind::Object;
    if (consume('}'))
      return V;
    for (;;) {
      auto Key = parseString();
      if (!Key)
        return Key;
      if (!consume(':'))
        return err("expected ':' in object");
      auto Member = parseValue();
      if (!Member)
        return Member;
      V.Obj[Key->Str] = Member.take();
      if (consume(','))
        continue;
      if (consume('}'))
        return V;
      return err("expected ',' or '}' in object");
    }
  }

  ErrorOr<Value> parseArray() {
    ++Pos; // '['
    Value V;
    V.K = Kind::Array;
    if (consume(']'))
      return V;
    for (;;) {
      auto Elem = parseValue();
      if (!Elem)
        return Elem;
      V.Arr.push_back(Elem.take());
      if (consume(','))
        continue;
      if (consume(']'))
        return V;
      return err("expected ',' or ']' in array");
    }
  }

  ErrorOr<Value> parseString() {
    skipWs();
    if (Pos >= S.size() || S[Pos] != '"')
      return err("expected string");
    ++Pos;
    Value V;
    V.K = Kind::String;
    while (Pos < S.size() && S[Pos] != '"') {
      char C = S[Pos++];
      if (C != '\\') {
        V.Str += C;
        continue;
      }
      if (Pos >= S.size())
        return err("unterminated escape");
      char E = S[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        V.Str += E;
        break;
      case 'n':
        V.Str += '\n';
        break;
      case 'r':
        V.Str += '\r';
        break;
      case 't':
        V.Str += '\t';
        break;
      case 'b':
        V.Str += '\b';
        break;
      case 'f':
        V.Str += '\f';
        break;
      case 'u': {
        if (Pos + 4 > S.size())
          return err("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = S[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= H - '0';
          else if (H >= 'a' && H <= 'f')
            Code |= H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code |= H - 'A' + 10;
          else
            return err("bad \\u escape");
        }
        // Basic-multilingual-plane only; enough for our ASCII emitters.
        if (Code < 0x80) {
          V.Str += static_cast<char>(Code);
        } else if (Code < 0x800) {
          V.Str += static_cast<char>(0xC0 | (Code >> 6));
          V.Str += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          V.Str += static_cast<char>(0xE0 | (Code >> 12));
          V.Str += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          V.Str += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return err("bad escape");
      }
    }
    if (Pos >= S.size())
      return err("unterminated string");
    ++Pos; // closing '"'
    return V;
  }

  ErrorOr<Value> parseBool() {
    Value V;
    V.K = Kind::Bool;
    if (S.compare(Pos, 4, "true") == 0) {
      V.B = true;
      Pos += 4;
      return V;
    }
    if (S.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      return V;
    }
    return err("bad literal");
  }

  ErrorOr<Value> parseNumber() {
    size_t Start = Pos;
    if (Pos < S.size() && (S[Pos] == '-' || S[Pos] == '+'))
      ++Pos;
    while (Pos < S.size() &&
           (isdigit(static_cast<unsigned char>(S[Pos])) || S[Pos] == '.' ||
            S[Pos] == 'e' || S[Pos] == 'E' || S[Pos] == '-' ||
            S[Pos] == '+'))
      ++Pos;
    if (Pos == Start)
      return err("expected a value");
    Value V;
    V.K = Kind::Number;
    try {
      V.Num = std::stod(S.substr(Start, Pos - Start));
    } catch (...) {
      return err("malformed number");
    }
    return V;
  }
};

} // namespace detail

/// Parses a complete JSON document.
inline ErrorOr<Value> parse(const std::string &S) {
  return detail::Parser(S).parse();
}

} // namespace json
} // namespace fut

#endif // FUTHARKCC_SUPPORT_JSON_H
