//===- Locality.cpp - Coalescing and tiling (Section 5.2) ---------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "locality/Locality.h"

#include "trace/Trace.h"

#include "ir/Builder.h"
#include "ir/Traversal.h"

#include <algorithm>

using namespace fut;

namespace {

/// How an index expression varies across the threads of a warp.
enum class IdxClass : uint8_t {
  Seq,  // invariant across the warp (loop counters, computed values)
  Tid,  // varies with a slow (outer) thread dimension
  Fast, // varies with the warp-fast thread dimension
};

IdxClass maxClass(IdxClass A, IdxClass B) {
  return static_cast<IdxClass>(
      std::max(static_cast<int>(A), static_cast<int>(B)));
}

/// The access patterns observed for one kernel input: one entry per
/// completed access chain, each a per-dimension classification.
struct InputAccesses {
  std::vector<std::vector<IdxClass>> Patterns;
};

/// Walks a kernel's thread body, classifying how each input array is
/// indexed.  View-producing bindings (partial indexing, slices) are
/// followed; when an array value is consumed wholesale (as a SOAC input or
/// similar), the remaining dimensions are treated as sequential reads.
class AccessAnalysis {
  const KernelExp &K;
  NameMap<IdxClass> ScalarClass;

  /// In-flight view chains: name -> (input index, classes so far).
  struct ViewState {
    int InputIdx;
    std::vector<IdxClass> Classes;
  };
  NameMap<ViewState> Views;

public:
  std::vector<InputAccesses> PerInput;

  explicit AccessAnalysis(const KernelExp &K) : K(K) {
    PerInput.resize(K.Inputs.size());
    // Mirror the device's thread mapping: segmented kernels with a grid
    // run one thread per segment (the segment position is sequential);
    // a gridless segmented kernel parallelises within the segment.
    for (size_t I = 0; I + 1 < K.ThreadIndices.size(); ++I)
      ScalarClass[K.ThreadIndices[I]] = IdxClass::Tid;
    if (!K.ThreadIndices.empty())
      ScalarClass[K.ThreadIndices.back()] = IdxClass::Fast;
    if (K.isSegmented())
      ScalarClass[K.SegIndex] =
          K.ThreadIndices.empty() ? IdxClass::Fast : IdxClass::Seq;
    for (size_t I = 0; I < K.Inputs.size(); ++I)
      Views[K.Inputs[I].Arr] = ViewState{static_cast<int>(I), {}};
    analyseBody(K.ThreadBody);
  }

private:
  IdxClass classify(const SubExp &S) const {
    if (S.isConst())
      return IdxClass::Seq;
    auto It = ScalarClass.find(S.getVar());
    return It == ScalarClass.end() ? IdxClass::Seq : It->second;
  }

  int rankOfInput(int Idx) const { return K.Inputs[Idx].Ty.rank(); }

  void complete(const ViewState &V) {
    std::vector<IdxClass> P = V.Classes;
    while (static_cast<int>(P.size()) < rankOfInput(V.InputIdx))
      P.push_back(IdxClass::Seq);
    PerInput[V.InputIdx].Patterns.push_back(std::move(P));
  }

  /// Consumption of a view as a whole array: remaining dims read
  /// sequentially.
  void consumeWhole(const VName &N) {
    auto It = Views.find(N);
    if (It == Views.end())
      return;
    complete(It->second);
  }

  void analyseExp(const Stm &S, const Exp &E) {
    switch (E.kind()) {
    case ExpKind::BinOpE: {
      const auto *X = expCast<BinOpExp>(&E);
      if (S.Pat.size() == 1)
        ScalarClass[S.Pat[0].Name] =
            maxClass(classify(X->A), classify(X->B));
      return;
    }
    case ExpKind::UnOpE:
      if (S.Pat.size() == 1)
        ScalarClass[S.Pat[0].Name] = classify(expCast<UnOpExp>(&E)->A);
      return;
    case ExpKind::ConvOpE:
      if (S.Pat.size() == 1)
        ScalarClass[S.Pat[0].Name] = classify(expCast<ConvOpExp>(&E)->A);
      return;
    case ExpKind::SubExpE: {
      const auto *X = expCast<SubExpExp>(&E);
      if (S.Pat.size() == 1) {
        if (X->Val.isVar()) {
          auto It = Views.find(X->Val.getVar());
          if (It != Views.end()) {
            Views[S.Pat[0].Name] = It->second;
            return;
          }
        }
        ScalarClass[S.Pat[0].Name] = classify(X->Val);
      }
      return;
    }

    case ExpKind::Index: {
      const auto *X = expCast<IndexExp>(&E);
      auto It = Views.find(X->Arr);
      if (It == Views.end())
        return;
      ViewState V = It->second;
      for (const SubExp &I : X->Indices)
        V.Classes.push_back(classify(I));
      if (static_cast<int>(V.Classes.size()) >= rankOfInput(V.InputIdx)) {
        complete(V);
        if (S.Pat.size() == 1)
          ScalarClass[S.Pat[0].Name] = IdxClass::Seq;
      } else if (S.Pat.size() == 1) {
        Views[S.Pat[0].Name] = std::move(V);
      }
      return;
    }

    case ExpKind::Slice: {
      const auto *X = expCast<SliceExp>(&E);
      auto It = Views.find(X->Arr);
      if (It == Views.end())
        return;
      ViewState V = It->second;
      // The slice dimension: elements are later read per position; the
      // warp-variation comes from the offset.
      V.Classes.push_back(classify(X->Offset));
      // Remaining inner dims default to Seq when consumed; track the view
      // so that consumption completes it (the slice's first dim class was
      // just pushed; subsequent element reads vary it sequentially too,
      // which the offset class conservatively dominates).
      if (S.Pat.size() == 1)
        Views[S.Pat[0].Name] = std::move(V);
      return;
    }

    default:
      break;
    }

    // Anything else consuming a view wholesale: the remaining dims are
    // sequential reads (SOAC inputs, copies, updates, rearranges...).
    forEachFreeOperand(E, [&](const SubExp &Op) {
      if (Op.isVar())
        consumeWhole(Op.getVar());
    });
    // Also look inside nested bodies for direct reads of views.
    forEachChildBody(E, [&](const Body &Inner) { analyseBody(Inner); });
  }

  void analyseBody(const Body &B) {
    for (const Stm &S : B.Stms)
      analyseExp(S, *S.E);
    for (const SubExp &R : B.Result)
      if (R.isVar())
        consumeWhole(R.getVar());
  }
};

class LocalityPass {
  const LocalityOptions &Opts;
  LocalityStats Stats;

public:
  explicit LocalityPass(const LocalityOptions &Opts) : Opts(Opts) {}

  LocalityStats run(Program &P) {
    for (FunDef &F : P.Funs)
      visitBody(F.FBody);
    return Stats;
  }

private:
  void visitBody(Body &B) {
    for (Stm &S : B.Stms) {
      if (auto *K = expDynCast<KernelExp>(S.E.get()))
        optimiseKernel(*K);
      forEachChildBody(*S.E, [&](Body &Inner) { visitBody(Inner); });
    }
  }

  void optimiseKernel(KernelExp &K) {
    // Per-thread array results are stored with the thread index innermost
    // so the writes coalesce (the paper transposes results and
    // temporaries, not just inputs).
    if (Opts.EnableCoalescing && K.Op == KernelExp::OpKind::ThreadBody) {
      for (const Type &T : K.RetTypes)
        if (T.rank() > static_cast<int>(K.GridDims.size())) {
          K.TransposedOutputs = true;
          ++Stats.CoalescedInputs;
          break;
        }
    }
    if (K.Inputs.empty())
      return;
    AccessAnalysis AA(K);

    for (size_t I = 0; I < K.Inputs.size(); ++I) {
      KernelExp::KInput &In = K.Inputs[I];
      const auto &Patterns = AA.PerInput[I].Patterns;
      if (Patterns.empty())
        continue;
      int Rank = In.Ty.rank();

      // Tiling: some access reads the array wholesale with thread-
      // invariant indices — every thread of the workgroup streams the
      // same elements (the N-body/MRI-Q/LavaMD pattern).
      bool AnySeqOnly = false;
      for (const auto &P : Patterns) {
        bool AllSeq = true;
        for (IdxClass C : P)
          AllSeq = AllSeq && C == IdxClass::Seq;
        AnySeqOnly = AnySeqOnly || AllSeq;
      }
      if (AnySeqOnly) {
        if (Opts.EnableTiling && !In.Tiled) {
          bool BigEnough = true;
          if (In.Ty.outerDim().isConst())
            BigEnough =
                In.Ty.outerDim().getConst().asInt64() >= Opts.MinTileElems;
          if (BigEnough) {
            In.Tiled = true;
            ++Stats.TiledInputs;
          }
        }
        continue;
      }

      if (!Opts.EnableCoalescing || Rank < 2)
        continue;

      // Coalescing: find the unique dimension that carries the warp-fast
      // index in every pattern; if it is not the innermost dimension and
      // the dims after it are sequential, rotate it innermost.
      int FastDim = -1;
      bool Consistent = true;
      for (const auto &P : Patterns) {
        int ThisFast = -1;
        for (int D = 0; D < static_cast<int>(P.size()); ++D)
          if (P[D] == IdxClass::Fast)
            ThisFast = D; // last Fast position
        if (ThisFast < 0) {
          continue; // a pure-sequential access doesn't constrain layout
        }
        if (FastDim < 0)
          FastDim = ThisFast;
        else if (FastDim != ThisFast)
          Consistent = false;
        // Dims after the fast one must be warp-constant (sequential or
        // outer-thread-indexed) for the rotation to help.
        for (int D = ThisFast + 1; D < static_cast<int>(P.size()); ++D)
          if (P[D] == IdxClass::Fast)
            Consistent = false;
      }
      if (!Consistent || FastDim < 0 || FastDim == Rank - 1)
        continue;

      // Storage order: all other dims first, the fast dim last.
      std::vector<int> Perm;
      for (int D = 0; D < Rank; ++D)
        if (D != FastDim)
          Perm.push_back(D);
      Perm.push_back(FastDim);
      if (In.LayoutPerm == Perm)
        continue;
      In.LayoutPerm = std::move(Perm);
      ++Stats.CoalescedInputs;
    }
  }
};

} // namespace

LocalityStats fut::optimiseLocality(Program &P, const LocalityOptions &Opts) {
  trace::ScopedSpan Span("pass:locality", "compiler");
  LocalityStats S = LocalityPass(Opts).run(P);
  trace::counter("locality.coalesced", S.CoalescedInputs);
  trace::counter("locality.tiled", S.TiledInputs);
  Span.arg("coalesced", S.CoalescedInputs);
  Span.arg("tiled", S.TiledInputs);
  return S;
}
