//===- Locality.h - Coalescing and tiling (Section 5.2) ---------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The locality-of-reference optimisations of Section 5.2, run on extracted
/// kernels:
///
///  * Memory coalescing: when a kernel reads an input with its parallel
///    (thread-varying) index on an outer dimension and sequential indices
///    inner, the input's representation is changed to place the
///    non-parallel dimensions innermost (a symbolic layout permutation;
///    the device charges a manifest transposition per array).  This is
///    the paper's "as_column_major" transformation, resolving the
///    one-order-of-magnitude slowdowns of uncoalesced access.
///
///  * Block tiling: an input read only through thread-invariant
///    (sequential) indices is the same for every thread of a workgroup —
///    the N-body/MRI-Q pattern — and is staged through fast local memory
///    (KInput::Tiled), so each element is fetched from global memory once
///    per workgroup instead of once per thread.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_LOCALITY_LOCALITY_H
#define FUTHARKCC_LOCALITY_LOCALITY_H

#include "ir/IR.h"

namespace fut {

struct LocalityOptions {
  bool EnableCoalescing = true;
  bool EnableTiling = true;
  /// Arrays smaller than this many elements are not worth tiling.
  /// (Checked dynamically only via shape constants; symbolic sizes tile.)
  int64_t MinTileElems = 32;
};

struct LocalityStats {
  int CoalescedInputs = 0;
  int TiledInputs = 0;
};

/// Optimises every kernel in the program.
LocalityStats optimiseLocality(Program &P, const LocalityOptions &Opts = {});

} // namespace fut

#endif // FUTHARKCC_LOCALITY_LOCALITY_H
