//===- Value.h - Runtime values ---------------------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values for the reference interpreter and the GPU simulator: a
/// scalar PrimValue, or a regular multi-dimensional array stored flat in
/// row-major order.  Array payloads are shared (copy-on-write) so that
/// aliasing is cheap and in-place updates of uniquely-held arrays are O(1) —
/// the operational counterpart of the paper's uniqueness types.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_INTERP_VALUE_H
#define FUTHARKCC_INTERP_VALUE_H

#include "ir/Prim.h"
#include "ir/Type.h"

#include <memory>
#include <vector>

namespace fut {

class Value {
  bool Scalar = true;
  PrimValue SVal;
  ScalarKind Elem = ScalarKind::I32;
  std::vector<int64_t> Shape;
  std::shared_ptr<std::vector<PrimValue>> Data;

public:
  Value() = default;

  static Value scalar(PrimValue V) {
    Value Out;
    Out.Scalar = true;
    Out.SVal = V;
    return Out;
  }

  static Value array(ScalarKind Elem, std::vector<int64_t> Shape,
                     std::vector<PrimValue> Data) {
    Value Out;
    Out.Scalar = false;
    Out.Elem = Elem;
    Out.Shape = std::move(Shape);
    Out.Data = std::make_shared<std::vector<PrimValue>>(std::move(Data));
    int64_t N = 1;
    for (int64_t D : Out.Shape)
      N *= D;
    assert(static_cast<int64_t>(Out.Data->size()) == N &&
           "array payload does not match shape");
    return Out;
  }

  /// An array filled with zeroes (or a given fill value).
  static Value filledArray(ScalarKind Elem, std::vector<int64_t> Shape,
                           PrimValue Fill) {
    int64_t N = 1;
    for (int64_t D : Shape)
      N *= D;
    return array(Elem, std::move(Shape),
                 std::vector<PrimValue>(static_cast<size_t>(N), Fill));
  }

  bool isScalar() const { return Scalar; }
  bool isArray() const { return !Scalar; }

  const PrimValue &getScalar() const {
    assert(Scalar && "not a scalar value");
    return SVal;
  }

  ScalarKind elemKind() const { return Scalar ? SVal.kind() : Elem; }
  const std::vector<int64_t> &shape() const {
    assert(!Scalar && "scalar has no shape");
    return Shape;
  }
  int rank() const { return Scalar ? 0 : static_cast<int>(Shape.size()); }

  int64_t outerSize() const {
    assert(!Scalar && !Shape.empty() && "no outer dimension");
    return Shape[0];
  }

  int64_t numElems() const {
    if (Scalar)
      return 1;
    int64_t N = 1;
    for (int64_t D : Shape)
      N *= D;
    return N;
  }

  /// Size in elements of one row (product of inner dimensions).
  int64_t rowElems() const {
    assert(!Scalar && !Shape.empty());
    int64_t N = 1;
    for (size_t I = 1; I < Shape.size(); ++I)
      N *= Shape[I];
    return N;
  }

  const std::vector<PrimValue> &flat() const {
    assert(!Scalar && "scalar has no payload");
    return *Data;
  }

  /// Mutable access to the payload; copies it first if shared.
  std::vector<PrimValue> &flatMut() {
    assert(!Scalar && "scalar has no payload");
    if (Data.use_count() > 1)
      Data = std::make_shared<std::vector<PrimValue>>(*Data);
    return *Data;
  }

  /// True if the payload is exclusively held (an in-place update is O(1)).
  bool uniquelyHeld() const { return Scalar || Data.use_count() == 1; }

  /// Flat row-major offset of a full index.
  int64_t flatIndex(const std::vector<int64_t> &Index) const {
    assert(Index.size() == Shape.size() && "index rank mismatch");
    int64_t Off = 0;
    for (size_t I = 0; I < Index.size(); ++I) {
      assert(Index[I] >= 0 && Index[I] < Shape[I] && "index out of bounds");
      Off = Off * Shape[I] + Index[I];
    }
    return Off;
  }

  bool inBounds(const std::vector<int64_t> &Index) const {
    if (Index.size() > Shape.size())
      return false;
    for (size_t I = 0; I < Index.size(); ++I)
      if (Index[I] < 0 || Index[I] >= Shape[I])
        return false;
    return true;
  }

  PrimValue at(const std::vector<int64_t> &Index) const {
    return (*Data)[flatIndex(Index)];
  }

  /// Reads a full row / subarray at a partial index (copies the slice).
  Value slice(const std::vector<int64_t> &Prefix) const;

  /// The row at index I of the outer dimension.
  Value row(int64_t I) const { return slice({I}); }

  /// Element-wise equality (exact, including kinds and shape).
  bool operator==(const Value &Other) const;
  bool operator!=(const Value &Other) const { return !(*this == Other); }

  /// Approximate equality with relative/absolute tolerance on floats.
  bool approxEqual(const Value &Other, double RelTol = 1e-5,
                   double AbsTol = 1e-8) const;

  std::string str() const;
};

/// Builds a rank-1 value from a vector of doubles/ints with a given kind.
Value makeVectorValue(ScalarKind K, const std::vector<double> &Xs);
Value makeIntVectorValue(ScalarKind K, const std::vector<int64_t> &Xs);
/// Builds a rank-2 value (RxC) from row-major doubles.
Value makeMatrixValue(ScalarKind K, int64_t R, int64_t C,
                      const std::vector<double> &Xs);

} // namespace fut

#endif // FUTHARKCC_INTERP_VALUE_H
