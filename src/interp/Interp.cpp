//===- Interp.cpp - Reference interpreter -----------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "ir/Printer.h"

using namespace fut;

// Local helper for propagating errors out of ErrorOr-returning calls.
#define FUT_TRY(VAR, EXPR)                                                     \
  auto VAR##OrErr = (EXPR);                                                    \
  if (!VAR##OrErr)                                                             \
    return VAR##OrErr.getError();                                              \
  auto VAR = VAR##OrErr.take();

#define FUT_CHECK(EXPR)                                                        \
  do {                                                                         \
    if (auto Err = (EXPR))                                                     \
      return Err.getError();                                                   \
  } while (false)

ErrorOr<Value> fut::assembleArray(const std::vector<Value> &Elems) {
  if (Elems.empty())
    return CompilerError::runtime(
        "cannot assemble an empty array without an element type");
  const Value &First = Elems.front();
  if (First.isScalar()) {
    std::vector<PrimValue> Data;
    Data.reserve(Elems.size());
    for (const Value &V : Elems) {
      if (!V.isScalar() || V.getScalar().kind() != First.getScalar().kind())
        return CompilerError("irregular array: element kind mismatch");
      Data.push_back(V.getScalar());
    }
    return Value::array(First.getScalar().kind(),
                        {static_cast<int64_t>(Elems.size())},
                        std::move(Data));
  }
  std::vector<PrimValue> Data;
  Data.reserve(Elems.size() * First.numElems());
  for (const Value &V : Elems) {
    if (V.isScalar() || V.shape() != First.shape() ||
        V.elemKind() != First.elemKind())
      return CompilerError(
          "irregular array: all rows must have the same shape");
    Data.insert(Data.end(), V.flat().begin(), V.flat().end());
  }
  std::vector<int64_t> Shape;
  Shape.push_back(static_cast<int64_t>(Elems.size()));
  Shape.insert(Shape.end(), First.shape().begin(), First.shape().end());
  return Value::array(First.elemKind(), std::move(Shape), std::move(Data));
}

ErrorOr<Value> fut::concatValues(const std::vector<Value> &Vs) {
  if (Vs.empty())
    return CompilerError::runtime("cannot concat zero arrays");
  const Value &First = Vs.front();
  if (First.isScalar())
    return CompilerError("cannot concat scalars");
  std::vector<int64_t> Inner(First.shape().begin() + 1, First.shape().end());
  int64_t Outer = 0;
  std::vector<PrimValue> Data;
  for (const Value &V : Vs) {
    if (V.isScalar() || V.elemKind() != First.elemKind())
      return CompilerError("concat: element kind mismatch");
    std::vector<int64_t> VInner(V.shape().begin() + 1, V.shape().end());
    if (VInner != Inner)
      return CompilerError("concat: inner shapes differ");
    Outer += V.outerSize();
    Data.insert(Data.end(), V.flat().begin(), V.flat().end());
  }
  std::vector<int64_t> Shape;
  Shape.push_back(Outer);
  Shape.insert(Shape.end(), Inner.begin(), Inner.end());
  return Value::array(First.elemKind(), std::move(Shape), std::move(Data));
}

namespace {

/// Binds a parameter to a value and binds/checks the symbolic dimensions of
/// its declared type against the value's actual shape.
MaybeError bindParamValue(const Param &P, const Value &V,
                          NameMap<Value> &Env) {
  Env[P.Name] = V;
  if (P.Ty.isScalar())
    return MaybeError::success();
  if (V.isScalar() || V.rank() != P.Ty.rank())
    return CompilerError("value for " + P.Name.str() +
                         " has wrong rank for type " + P.Ty.str());
  for (int I = 0; I < P.Ty.rank(); ++I) {
    const Dim &D = P.Ty.shape()[I];
    int64_t Actual = V.shape()[I];
    if (D.isConst()) {
      if (D.getConst().asInt64() != Actual)
        return CompilerError("shape mismatch for " + P.Name.str() +
                             ": expected " + D.getConst().str() + ", got " +
                             std::to_string(Actual));
      continue;
    }
    auto It = Env.find(D.getVar());
    if (It == Env.end()) {
      Env[D.getVar()] = Value::scalar(
          PrimValue::makeI32(static_cast<int32_t>(Actual)));
      continue;
    }
    if (!It->second.isScalar())
      return CompilerError::runtime("shape dimension " + D.getVar().str() +
                                    " of " + P.Name.str() +
                                    " is bound to a non-scalar value");
    if (It->second.getScalar().asInt64() != Actual)
      return CompilerError("shape mismatch for " + P.Name.str() + ": " +
                           D.getVar().str() + " = " +
                           It->second.getScalar().str() + " but dimension is " +
                           std::to_string(Actual));
  }
  return MaybeError::success();
}

/// The integer value of a scalar, or an error for non-scalars.
ErrorOr<int64_t> scalarInt(const Value &V, const char *What) {
  if (!V.isScalar())
    return CompilerError(std::string(What) + " must be a scalar");
  return V.getScalar().asInt64();
}

PrimValue intOfKind(ScalarKind K, int64_t V) {
  switch (K) {
  case ScalarKind::I64:
    return PrimValue::makeI64(V);
  case ScalarKind::I32:
  default:
    return PrimValue::makeI32(static_cast<int32_t>(V));
  }
}

} // namespace

MaybeError Interpreter::step(const Exp &E) {
  if (++Steps > Opts.MaxSteps)
    return CompilerError::runtime(E.Loc, "interpreter step limit exceeded");
  return MaybeError::success();
}

ErrorOr<Value> Interpreter::evalSubExp(const SubExp &S,
                                       const NameMap<Value> &Env) {
  if (S.isConst())
    return Value::scalar(S.getConst());
  auto It = Env.find(S.getVar());
  if (It == Env.end())
    return CompilerError("unbound variable " + S.getVar().str() +
                         " (possibly used after being consumed)");
  return It->second;
}

ErrorOr<std::vector<Value>>
Interpreter::evalLambda(const Lambda &L, const std::vector<Value> &Args,
                        const NameMap<Value> &Env) {
  if (Args.size() != L.Params.size())
    return CompilerError("lambda arity mismatch: expected " +
                         std::to_string(L.Params.size()) + " arguments, got " +
                         std::to_string(Args.size()));
  NameMap<Value> Inner = Env;
  for (size_t I = 0; I < Args.size(); ++I)
    FUT_CHECK(bindParamValue(L.Params[I], Args[I], Inner));
  return evalBody(L.B, std::move(Inner));
}

ErrorOr<std::vector<Value>> Interpreter::evalBody(const Body &B,
                                                  NameMap<Value> Env) {
  for (const Stm &S : B.Stms) {
    FUT_TRY(Vals, evalExp(*S.E, Env));
    if (Vals.size() != S.Pat.size())
      return CompilerError(S.E->Loc,
                           "pattern arity mismatch: " +
                               std::to_string(S.Pat.size()) + " names for " +
                               std::to_string(Vals.size()) + " values");
    for (size_t I = 0; I < Vals.size(); ++I)
      FUT_CHECK(bindParamValue(S.Pat[I], Vals[I], Env));
    if (Opts.OnBind)
      Opts.OnBind(S, Vals);
  }
  std::vector<Value> Out;
  Out.reserve(B.Result.size());
  for (const SubExp &S : B.Result) {
    FUT_TRY(V, evalSubExp(S, Env));
    Out.push_back(std::move(V));
  }
  return Out;
}

ErrorOr<std::vector<Value>>
Interpreter::runFunction(const std::string &Name,
                         const std::vector<Value> &Args) {
  const FunDef *F = Prog.findFun(Name);
  if (!F)
    return CompilerError("unknown function " + Name);
  if (Args.size() != F->Params.size())
    return CompilerError("function " + Name + " expects " +
                         std::to_string(F->Params.size()) + " arguments, got " +
                         std::to_string(Args.size()));
  NameMap<Value> Env;
  for (size_t I = 0; I < Args.size(); ++I)
    FUT_CHECK(bindParamValue(F->Params[I], Args[I], Env));
  return evalBody(F->FBody, std::move(Env));
}

ErrorOr<std::vector<Value>> Interpreter::evalExp(const Exp &E,
                                                 NameMap<Value> &Env) {
  FUT_CHECK(step(E));
  if (Opts.OnExp)
    Opts.OnExp(E, Env);

  switch (E.kind()) {
  case ExpKind::SubExpE: {
    FUT_TRY(V, evalSubExp(expCast<SubExpExp>(&E)->Val, Env));
    return std::vector<Value>{std::move(V)};
  }

  case ExpKind::BinOpE: {
    const auto *X = expCast<BinOpExp>(&E);
    FUT_TRY(A, evalSubExp(X->A, Env));
    FUT_TRY(B, evalSubExp(X->B, Env));
    if (!A.isScalar() || !B.isScalar())
      return CompilerError(E.Loc, "binop on non-scalar");
    FUT_TRY(R, evalBinOp(X->Op, A.getScalar(), B.getScalar()));
    return std::vector<Value>{Value::scalar(R)};
  }

  case ExpKind::UnOpE: {
    const auto *X = expCast<UnOpExp>(&E);
    FUT_TRY(A, evalSubExp(X->A, Env));
    if (!A.isScalar())
      return CompilerError(E.Loc, "unop on non-scalar");
    FUT_TRY(R, evalUnOp(X->Op, A.getScalar()));
    return std::vector<Value>{Value::scalar(R)};
  }

  case ExpKind::ConvOpE: {
    const auto *X = expCast<ConvOpExp>(&E);
    FUT_TRY(A, evalSubExp(X->A, Env));
    if (!A.isScalar())
      return CompilerError(E.Loc, "conversion of non-scalar");
    return std::vector<Value>{Value::scalar(evalConvOp(X->Op, A.getScalar()))};
  }

  case ExpKind::If: {
    const auto *X = expCast<IfExp>(&E);
    FUT_TRY(C, evalSubExp(X->Cond, Env));
    if (!C.isScalar() || C.getScalar().kind() != ScalarKind::Bool)
      return CompilerError(E.Loc, "if condition is not a bool");
    return evalBody(C.getScalar().getBool() ? X->Then : X->Else, Env);
  }

  case ExpKind::Index: {
    const auto *X = expCast<IndexExp>(&E);
    FUT_TRY(A, evalSubExp(SubExp::var(X->Arr), Env));
    if (!A.isArray())
      return CompilerError(E.Loc, "indexing into a scalar");
    std::vector<int64_t> Idx;
    for (const SubExp &S : X->Indices) {
      FUT_TRY(I, evalSubExp(S, Env));
      FUT_TRY(IV, scalarInt(I, "index"));
      Idx.push_back(IV);
    }
    if (Idx.size() > A.shape().size())
      return CompilerError(E.Loc, "index rank exceeds array rank");
    if (!A.inBounds(Idx))
      return CompilerError::runtime(E.Loc,
                                    "index out of bounds for " + X->Arr.str());
    return std::vector<Value>{A.slice(Idx)};
  }

  case ExpKind::Apply: {
    const auto *X = expCast<ApplyExp>(&E);
    std::vector<Value> Args;
    for (const SubExp &S : X->Args) {
      FUT_TRY(V, evalSubExp(S, Env));
      Args.push_back(std::move(V));
    }
    return runFunction(X->Func, Args);
  }

  case ExpKind::Loop: {
    const auto *X = expCast<LoopExp>(&E);
    FUT_TRY(BoundV, evalSubExp(X->Bound, Env));
    FUT_TRY(Bound, scalarInt(BoundV, "loop bound"));
    std::vector<Value> Merge;
    for (const SubExp &S : X->MergeInit) {
      FUT_TRY(V, evalSubExp(S, Env));
      Merge.push_back(std::move(V));
    }
    ScalarKind IdxKind = BoundV.getScalar().kind();
    for (int64_t I = 0; I < Bound; ++I) {
      NameMap<Value> Inner = Env;
      Inner[X->IndexVar] = Value::scalar(intOfKind(IdxKind, I));
      for (size_t J = 0; J < X->MergeParams.size(); ++J)
        FUT_CHECK(bindParamValue(X->MergeParams[J], Merge[J], Inner));
      FUT_TRY(Next, evalBody(X->LoopBody, std::move(Inner)));
      if (Next.size() != Merge.size())
        return CompilerError(E.Loc, "loop body arity mismatch");
      Merge = std::move(Next);
    }
    return Merge;
  }

  case ExpKind::Update: {
    const auto *X = expCast<UpdateExp>(&E);
    FUT_TRY(A, evalSubExp(SubExp::var(X->Arr), Env));
    if (Opts.ConsumeOnUpdate)
      Env.erase(X->Arr);
    std::vector<int64_t> Idx;
    for (const SubExp &S : X->Indices) {
      FUT_TRY(I, evalSubExp(S, Env));
      FUT_TRY(IV, scalarInt(I, "index"));
      Idx.push_back(IV);
    }
    FUT_TRY(V, evalSubExp(X->Value, Env));
    if (!A.inBounds(Idx))
      return CompilerError::runtime(E.Loc, "update index out of bounds for " +
                                                X->Arr.str());
    if (Idx.size() == A.shape().size()) {
      if (!V.isScalar())
        return CompilerError(E.Loc, "updating element with non-scalar");
      int64_t Off = A.flatIndex(Idx);
      A.flatMut()[Off] = V.getScalar();
      return std::vector<Value>{std::move(A)};
    }
    // Bulk update of a whole subarray.
    if (V.isScalar() ||
        static_cast<int64_t>(V.numElems()) !=
            A.numElems() / [&] {
              int64_t N = 1;
              for (size_t I = 0; I < Idx.size(); ++I)
                N *= A.shape()[I];
              return N;
            }())
      return CompilerError(E.Loc, "bulk update value has wrong size");
    int64_t Inner = V.numElems();
    int64_t Off = 0;
    for (size_t I = 0; I < Idx.size(); ++I)
      Off = Off * A.shape()[I] + Idx[I];
    Off *= Inner;
    auto &Flat = A.flatMut();
    for (int64_t I = 0; I < Inner; ++I)
      Flat[Off + I] = V.flat()[I];
    return std::vector<Value>{std::move(A)};
  }

  case ExpKind::Iota: {
    const auto *X = expCast<IotaExp>(&E);
    FUT_TRY(NV, evalSubExp(X->N, Env));
    FUT_TRY(N, scalarInt(NV, "iota length"));
    if (N < 0)
      return CompilerError::runtime(E.Loc, "iota of negative length");
    std::vector<PrimValue> Data;
    Data.reserve(N);
    for (int64_t I = 0; I < N; ++I)
      Data.push_back(intOfKind(X->Elem, I));
    return std::vector<Value>{Value::array(X->Elem, {N}, std::move(Data))};
  }

  case ExpKind::Replicate: {
    const auto *X = expCast<ReplicateExp>(&E);
    FUT_TRY(NV, evalSubExp(X->N, Env));
    FUT_TRY(N, scalarInt(NV, "replicate count"));
    if (N < 0)
      return CompilerError::runtime(E.Loc, "replicate of negative count");
    FUT_TRY(V, evalSubExp(X->Val, Env));
    if (V.isScalar()) {
      return std::vector<Value>{Value::filledArray(V.getScalar().kind(), {N},
                                                   V.getScalar())};
    }
    std::vector<int64_t> Shape;
    Shape.push_back(N);
    Shape.insert(Shape.end(), V.shape().begin(), V.shape().end());
    std::vector<PrimValue> Data;
    Data.reserve(N * V.numElems());
    for (int64_t I = 0; I < N; ++I)
      Data.insert(Data.end(), V.flat().begin(), V.flat().end());
    return std::vector<Value>{
        Value::array(V.elemKind(), std::move(Shape), std::move(Data))};
  }

  case ExpKind::Rearrange: {
    const auto *X = expCast<RearrangeExp>(&E);
    FUT_TRY(A, evalSubExp(SubExp::var(X->Arr), Env));
    if (A.rank() != static_cast<int>(X->Perm.size()))
      return CompilerError(E.Loc, "rearrange rank mismatch");
    std::vector<int64_t> NewShape(X->Perm.size());
    for (size_t I = 0; I < X->Perm.size(); ++I)
      NewShape[I] = A.shape()[X->Perm[I]];
    std::vector<PrimValue> Data(A.numElems());
    // For each output position, locate the source element.
    int Rank = A.rank();
    std::vector<int64_t> OutIdx(Rank, 0), SrcIdx(Rank, 0);
    for (int64_t Flat = 0; Flat < A.numElems(); ++Flat) {
      for (int I = 0; I < Rank; ++I)
        SrcIdx[X->Perm[I]] = OutIdx[I];
      Data[Flat] = A.at(SrcIdx);
      // Increment OutIdx (row-major).
      for (int I = Rank - 1; I >= 0; --I) {
        if (++OutIdx[I] < NewShape[I])
          break;
        OutIdx[I] = 0;
      }
    }
    return std::vector<Value>{
        Value::array(A.elemKind(), std::move(NewShape), std::move(Data))};
  }

  case ExpKind::Reshape: {
    const auto *X = expCast<ReshapeExp>(&E);
    FUT_TRY(A, evalSubExp(SubExp::var(X->Arr), Env));
    std::vector<int64_t> NewShape;
    int64_t N = 1;
    for (const SubExp &S : X->NewShape) {
      FUT_TRY(DV, evalSubExp(S, Env));
      FUT_TRY(D, scalarInt(DV, "reshape dimension"));
      if (D < 0)
        return CompilerError::runtime(E.Loc,
                                      "reshape to a negative dimension");
      NewShape.push_back(D);
      N *= D;
    }
    if (N != A.numElems())
      return CompilerError(E.Loc, "reshape changes number of elements");
    std::vector<PrimValue> Data = A.flat();
    return std::vector<Value>{
        Value::array(A.elemKind(), std::move(NewShape), std::move(Data))};
  }

  case ExpKind::Concat: {
    const auto *X = expCast<ConcatExp>(&E);
    std::vector<Value> Vs;
    for (const VName &N : X->Arrays) {
      FUT_TRY(V, evalSubExp(SubExp::var(N), Env));
      Vs.push_back(std::move(V));
    }
    FUT_TRY(R, concatValues(Vs));
    return std::vector<Value>{std::move(R)};
  }

  case ExpKind::Slice: {
    const auto *X = expCast<SliceExp>(&E);
    FUT_TRY(A, evalSubExp(SubExp::var(X->Arr), Env));
    FUT_TRY(OffV, evalSubExp(X->Offset, Env));
    FUT_TRY(Off, scalarInt(OffV, "slice offset"));
    FUT_TRY(LenV, evalSubExp(X->Len, Env));
    FUT_TRY(Len, scalarInt(LenV, "slice length"));
    FUT_TRY(StrV, evalSubExp(X->Stride, Env));
    FUT_TRY(Str, scalarInt(StrV, "slice stride"));
    if (!A.isArray() || Off < 0 || Len < 0 || Str <= 0 ||
        (Len > 0 && Off + (Len - 1) * Str >= A.outerSize()))
      return CompilerError::runtime(E.Loc, "slice out of bounds");
    std::vector<int64_t> Shape = A.shape();
    Shape[0] = Len;
    int64_t RowElems = A.rowElems();
    std::vector<PrimValue> Data;
    Data.reserve(Len * RowElems);
    for (int64_t I = 0; I < Len; ++I) {
      int64_t Row = Off + I * Str;
      Data.insert(Data.end(), A.flat().begin() + Row * RowElems,
                  A.flat().begin() + (Row + 1) * RowElems);
    }
    return std::vector<Value>{
        Value::array(A.elemKind(), std::move(Shape), std::move(Data))};
  }

  case ExpKind::Copy: {
    FUT_TRY(A, evalSubExp(SubExp::var(expCast<CopyExp>(&E)->Arr), Env));
    if (A.isArray()) {
      std::vector<PrimValue> Data = A.flat();
      std::vector<int64_t> Shape = A.shape();
      A = Value::array(A.elemKind(), std::move(Shape), std::move(Data));
    }
    return std::vector<Value>{std::move(A)};
  }

  case ExpKind::Map: {
    const auto *X = expCast<MapExp>(&E);
    FUT_TRY(WV, evalSubExp(X->Width, Env));
    FUT_TRY(W, scalarInt(WV, "map width"));
    std::vector<Value> Arrays;
    for (const VName &N : X->Arrays) {
      FUT_TRY(A, evalSubExp(SubExp::var(N), Env));
      if (!A.isArray() || A.outerSize() != W)
        return CompilerError(E.Loc, "map input " + N.str() +
                                        " has wrong outer size");
      Arrays.push_back(std::move(A));
    }
    size_t NumRes = X->Fn.RetTypes.size();
    std::vector<std::vector<Value>> Columns(NumRes);
    for (int64_t I = 0; I < W; ++I) {
      std::vector<Value> Args;
      Args.reserve(Arrays.size());
      for (const Value &A : Arrays)
        Args.push_back(A.row(I));
      FUT_TRY(Res, evalLambda(X->Fn, Args, Env));
      if (Res.size() != NumRes)
        return CompilerError(E.Loc, "map function arity mismatch");
      for (size_t J = 0; J < NumRes; ++J)
        Columns[J].push_back(std::move(Res[J]));
    }
    std::vector<Value> Out;
    for (size_t J = 0; J < NumRes; ++J) {
      if (W == 0) {
        // Empty result with the statically known row shape where possible.
        Out.push_back(Value::array(X->Fn.RetTypes[J].elemKind(), {0}, {}));
        continue;
      }
      FUT_TRY(Col, assembleArray(Columns[J]));
      Out.push_back(std::move(Col));
    }
    return Out;
  }

  case ExpKind::Reduce: {
    const auto *X = expCast<ReduceExp>(&E);
    FUT_TRY(WV, evalSubExp(X->Width, Env));
    FUT_TRY(W, scalarInt(WV, "reduce width"));
    std::vector<Value> Acc;
    for (const SubExp &S : X->Neutral) {
      FUT_TRY(V, evalSubExp(S, Env));
      Acc.push_back(std::move(V));
    }
    std::vector<Value> Arrays;
    for (const VName &N : X->Arrays) {
      FUT_TRY(A, evalSubExp(SubExp::var(N), Env));
      if (!A.isArray() || A.outerSize() != W)
        return CompilerError(E.Loc, "reduce input has wrong outer size");
      Arrays.push_back(std::move(A));
    }
    for (int64_t I = 0; I < W; ++I) {
      std::vector<Value> Args = Acc;
      for (const Value &A : Arrays)
        Args.push_back(A.row(I));
      FUT_TRY(Res, evalLambda(X->Fn, Args, Env));
      Acc = std::move(Res);
    }
    return Acc;
  }

  case ExpKind::Scan: {
    const auto *X = expCast<ScanExp>(&E);
    FUT_TRY(WV, evalSubExp(X->Width, Env));
    FUT_TRY(W, scalarInt(WV, "scan width"));
    std::vector<Value> Acc;
    for (const SubExp &S : X->Neutral) {
      FUT_TRY(V, evalSubExp(S, Env));
      Acc.push_back(std::move(V));
    }
    std::vector<Value> Arrays;
    for (const VName &N : X->Arrays) {
      FUT_TRY(A, evalSubExp(SubExp::var(N), Env));
      if (!A.isArray() || A.outerSize() != W)
        return CompilerError(E.Loc, "scan input has wrong outer size");
      Arrays.push_back(std::move(A));
    }
    std::vector<std::vector<Value>> Columns(Acc.size());
    for (int64_t I = 0; I < W; ++I) {
      std::vector<Value> Args = Acc;
      for (const Value &A : Arrays)
        Args.push_back(A.row(I));
      FUT_TRY(Res, evalLambda(X->Fn, Args, Env));
      Acc = std::move(Res);
      for (size_t J = 0; J < Acc.size(); ++J)
        Columns[J].push_back(Acc[J]);
    }
    std::vector<Value> Out;
    for (size_t J = 0; J < Columns.size(); ++J) {
      if (W == 0) {
        Out.push_back(Value::array(X->Fn.RetTypes[J].elemKind(), {0}, {}));
        continue;
      }
      FUT_TRY(Col, assembleArray(Columns[J]));
      Out.push_back(std::move(Col));
    }
    return Out;
  }

  case ExpKind::ReduceByIndex: {
    const auto *X = expCast<ReduceByIndexExp>(&E);
    FUT_TRY(WV, evalSubExp(X->Width, Env));
    FUT_TRY(W, scalarInt(WV, "reduce_by_index width"));
    FUT_TRY(D, evalSubExp(SubExp::var(X->Dest), Env));
    if (!D.isArray() || D.outerSize() != W)
      return CompilerError(E.Loc,
                           "reduce_by_index destination has wrong outer size");
    if (Opts.ConsumeOnUpdate)
      Env.erase(X->Dest);
    FUT_TRY(IA, evalSubExp(SubExp::var(X->IndexArr), Env));
    if (!IA.isArray())
      return CompilerError(E.Loc, "reduce_by_index indices are not an array");
    int64_t N = IA.outerSize();
    std::vector<Value> Arrays;
    for (const VName &A : X->ValueArrs) {
      FUT_TRY(V, evalSubExp(SubExp::var(A), Env));
      if (!V.isArray() || V.outerSize() != N)
        return CompilerError(E.Loc, "reduce_by_index value array " + A.str() +
                                        " has wrong outer size");
      Arrays.push_back(std::move(V));
    }
    std::vector<PrimValue> Data = D.flat();
    for (int64_t J = 0; J < N; ++J) {
      FUT_TRY(Bin, scalarInt(IA.row(J), "reduce_by_index bin"));
      // The value is computed before the bounds check (every device thread
      // runs its body), so runtime errors inside the value function agree
      // between the interpreter and the compiled path.
      std::vector<Value> VArgs;
      VArgs.reserve(Arrays.size());
      for (const Value &A : Arrays)
        VArgs.push_back(A.row(J));
      FUT_TRY(Val, evalLambda(X->ValueFn, VArgs, Env));
      if (Val.size() != 1 || !Val[0].isScalar())
        return CompilerError(E.Loc, "reduce_by_index value function must "
                                    "produce one scalar");
      if (Bin < 0 || Bin >= W)
        continue; // Out-of-range bins are skipped, never an error.
      std::vector<Value> CArgs{Value::scalar(Data[Bin]), std::move(Val[0])};
      FUT_TRY(Comb, evalLambda(X->CombineFn, CArgs, Env));
      if (Comb.size() != 1 || !Comb[0].isScalar())
        return CompilerError(E.Loc,
                             "reduce_by_index operator must produce one "
                             "scalar");
      Data[Bin] = Comb[0].getScalar();
    }
    std::vector<int64_t> Shape = D.shape();
    return std::vector<Value>{
        Value::array(D.elemKind(), std::move(Shape), std::move(Data))};
  }

  case ExpKind::Stream:
    return evalStream(*expCast<StreamExp>(&E), Env);

  case ExpKind::Kernel:
    if (Opts.HandleKernel)
      return Opts.HandleKernel(*expCast<KernelExp>(&E), Env);
    return evalKernel(*expCast<KernelExp>(&E), Env);
  }
  return CompilerError(E.Loc, "unhandled expression kind in interpreter");
}

ErrorOr<std::vector<Value>> Interpreter::evalStream(const StreamExp &S,
                                                    NameMap<Value> &Env) {
  FUT_TRY(WV, evalSubExp(S.Width, Env));
  FUT_TRY(W, scalarInt(WV, "stream width"));
  std::vector<Value> Arrays;
  for (const VName &N : S.Arrays) {
    FUT_TRY(A, evalSubExp(SubExp::var(N), Env));
    if (!A.isArray() || A.outerSize() != W)
      return CompilerError(S.Loc, "stream input has wrong outer size");
    Arrays.push_back(std::move(A));
  }
  std::vector<Value> AccInit;
  for (const SubExp &I : S.AccInit) {
    FUT_TRY(V, evalSubExp(I, Env));
    AccInit.push_back(std::move(V));
  }
  if (static_cast<int>(AccInit.size()) != S.NumAccs)
    return CompilerError::runtime(
        "stream accumulator count mismatch: " +
        std::to_string(AccInit.size()) + " initialisers for " +
        std::to_string(S.NumAccs) + " accumulators");

  // Partitioning: contiguous chunks of StreamChunk elements, or, when
  // StreamInterleave is set, P interleaved chunks (chunk g holds elements
  // g, g+P, g+2P, ... — the partitioning the compiler's device chunking
  // uses so warp accesses coalesce).
  int64_t Chunk = Opts.StreamChunk > 0 ? Opts.StreamChunk : (W > 0 ? W : 1);
  int64_t Interleave = 0;
  if (Opts.StreamInterleave > 0)
    Interleave = std::min<int64_t>(W > 0 ? W : 1, Opts.StreamInterleave);
  int64_t NumChunks =
      Interleave > 0 ? Interleave : std::max<int64_t>(1, (W + Chunk - 1) /
                                                             Chunk);
  if (W == 0)
    NumChunks = 1;
  ScalarKind ChunkKind = S.FoldFn.Params.empty()
                             ? ScalarKind::I32
                             : S.FoldFn.Params[0].Ty.elemKind();

  size_t NumMapped = S.FoldFn.RetTypes.size() - S.NumAccs;
  std::vector<std::vector<Value>> MappedChunks(NumMapped);
  std::vector<Value> Accs = AccInit;

  for (int64_t G = 0; G < NumChunks; ++G) {
    int64_t Start = Interleave > 0 ? G : G * Chunk;
    int64_t Stride = Interleave > 0 ? Interleave : 1;
    int64_t Len;
    if (W == 0)
      Len = 0;
    else if (Interleave > 0)
      Len = Start < W ? (W - Start + Interleave - 1) / Interleave : 0;
    else
      Len = std::min(Chunk, W - Start);
    // Slice out this chunk of every input array.
    std::vector<Value> Args;
    Args.push_back(Value::scalar(intOfKind(ChunkKind, Len)));
    std::vector<Value> ChunkAccs =
        (S.Form == StreamExp::FormKind::Seq) ? Accs : AccInit;
    if (S.Form != StreamExp::FormKind::Par)
      for (const Value &A : ChunkAccs)
        Args.push_back(A);
    for (const Value &A : Arrays) {
      std::vector<int64_t> Shape = A.shape();
      Shape[0] = Len;
      int64_t RowElems = A.rowElems();
      std::vector<PrimValue> Data;
      Data.reserve(Len * RowElems);
      for (int64_t I = 0; I < Len; ++I) {
        int64_t Row = Start + I * Stride;
        Data.insert(Data.end(), A.flat().begin() + Row * RowElems,
                    A.flat().begin() + (Row + 1) * RowElems);
      }
      Args.push_back(Value::array(A.elemKind(), std::move(Shape),
                                  std::move(Data)));
    }
    FUT_TRY(Res, evalLambda(S.FoldFn, Args, Env));
    if (Res.size() != S.FoldFn.RetTypes.size())
      return CompilerError(S.Loc, "stream fold arity mismatch");

    std::vector<Value> ChunkOut(Res.begin(), Res.begin() + S.NumAccs);
    switch (S.Form) {
    case StreamExp::FormKind::Par:
      break;
    case StreamExp::FormKind::Seq:
      Accs = std::move(ChunkOut);
      break;
    case StreamExp::FormKind::Red: {
      // Combine with the running accumulator via the associative operator.
      std::vector<Value> CombArgs = Accs;
      CombArgs.insert(CombArgs.end(), ChunkOut.begin(), ChunkOut.end());
      FUT_TRY(Combined, evalLambda(S.ReduceFn, CombArgs, Env));
      Accs = std::move(Combined);
      break;
    }
    }
    for (size_t J = 0; J < NumMapped; ++J)
      MappedChunks[J].push_back(std::move(Res[S.NumAccs + J]));
  }

  std::vector<Value> Out = Accs;
  for (size_t J = 0; J < NumMapped; ++J) {
    if (MappedChunks[J].empty()) {
      Out.push_back(Value::array(
          S.FoldFn.RetTypes[S.NumAccs + J].elemKind(), {0}, {}));
      continue;
    }
    FUT_TRY(Col, concatValues(MappedChunks[J]));
    Out.push_back(std::move(Col));
  }
  return Out;
}

ErrorOr<std::vector<Value>> Interpreter::evalKernel(const KernelExp &K,
                                                    NameMap<Value> &Env) {
  // Resolve grid dimensions.
  std::vector<int64_t> Grid;
  for (const SubExp &D : K.GridDims) {
    FUT_TRY(V, evalSubExp(D, Env));
    FUT_TRY(I, scalarInt(V, "grid dimension"));
    Grid.push_back(I);
  }
  int64_t NumGroups = 1;
  for (int64_t G : Grid)
    NumGroups *= G;

  if (K.Op == KernelExp::OpKind::SegHist) {
    // One thread per grid position computes (bin, value); values fold into
    // the destination bins with ReduceFn.  Ascending thread order keeps the
    // result bit-identical to the device, which serialises conflicting
    // atomics deterministically.
    FUT_TRY(WV, evalSubExp(K.HistWidth, Env));
    FUT_TRY(W, scalarInt(WV, "histogram width"));
    FUT_TRY(D, evalSubExp(SubExp::var(K.HistDest), Env));
    if (!D.isArray() || D.outerSize() != W)
      return CompilerError(K.Loc, "seghist destination has wrong outer size");
    if (Opts.ConsumeOnUpdate)
      Env.erase(K.HistDest);
    std::vector<PrimValue> Data = D.flat();
    std::vector<int64_t> HIdx(Grid.size(), 0);
    for (int64_t G = 0; G < NumGroups; ++G) {
      NameMap<Value> TEnv = Env;
      for (size_t I = 0; I < Grid.size(); ++I)
        TEnv[K.ThreadIndices[I]] = Value::scalar(
            PrimValue::makeI32(static_cast<int32_t>(HIdx[I])));
      FUT_TRY(Res, evalBody(K.ThreadBody, TEnv));
      if (Res.size() != 2 || !Res[0].isScalar() || !Res[1].isScalar())
        return CompilerError(K.Loc,
                             "seghist thread body must produce (bin, value)");
      FUT_TRY(Bin, scalarInt(Res[0], "seghist bin"));
      if (Bin >= 0 && Bin < W) {
        std::vector<Value> Args{Value::scalar(Data[Bin]), Res[1]};
        FUT_TRY(Comb, evalLambda(K.ReduceFn, Args, Env));
        if (Comb.size() != 1 || !Comb[0].isScalar())
          return CompilerError(K.Loc,
                               "seghist operator must produce one scalar");
        Data[Bin] = Comb[0].getScalar();
      }
      for (int I = static_cast<int>(Grid.size()) - 1; I >= 0; --I) {
        if (++HIdx[I] < Grid[I])
          break;
        HIdx[I] = 0;
      }
    }
    std::vector<int64_t> Shape = D.shape();
    return std::vector<Value>{
        Value::array(D.elemKind(), std::move(Shape), std::move(Data))};
  }

  int64_t SegSize = 1;
  if (K.isSegmented()) {
    FUT_TRY(V, evalSubExp(K.SegSize, Env));
    FUT_TRY(I, scalarInt(V, "segment size"));
    SegSize = I;
  }

  size_t NumRes = K.isSegmented() ? K.Neutral.size() : K.RetTypes.size();
  std::vector<std::vector<Value>> PerPos(NumRes);

  std::vector<int64_t> Idx(Grid.size(), 0);
  for (int64_t G = 0; G < NumGroups; ++G) {
    NameMap<Value> TEnv = Env;
    for (size_t I = 0; I < Grid.size(); ++I)
      TEnv[K.ThreadIndices[I]] = Value::scalar(
          PrimValue::makeI32(static_cast<int32_t>(Idx[I])));

    if (!K.isSegmented()) {
      FUT_TRY(Res, evalBody(K.ThreadBody, TEnv));
      for (size_t J = 0; J < NumRes; ++J)
        PerPos[J].push_back(std::move(Res[J]));
    } else {
      // Evaluate the per-element values, then combine within the segment.
      std::vector<Value> Acc;
      for (const SubExp &N : K.Neutral) {
        FUT_TRY(V, evalSubExp(N, Env));
        Acc.push_back(std::move(V));
      }
      std::vector<std::vector<Value>> ScanCols(NumRes);
      for (int64_t S = 0; S < SegSize; ++S) {
        NameMap<Value> SEnv = TEnv;
        SEnv[K.SegIndex] =
            Value::scalar(PrimValue::makeI32(static_cast<int32_t>(S)));
        FUT_TRY(Elem, evalBody(K.ThreadBody, SEnv));
        std::vector<Value> Args = Acc;
        for (Value &V : Elem)
          Args.push_back(std::move(V));
        FUT_TRY(Comb, evalLambda(K.ReduceFn, Args, Env));
        Acc = std::move(Comb);
        if (K.Op == KernelExp::OpKind::SegScan)
          for (size_t J = 0; J < NumRes; ++J)
            ScanCols[J].push_back(Acc[J]);
      }
      if (K.Op == KernelExp::OpKind::SegReduce) {
        for (size_t J = 0; J < NumRes; ++J)
          PerPos[J].push_back(std::move(Acc[J]));
      } else {
        for (size_t J = 0; J < NumRes; ++J) {
          if (SegSize == 0) {
            PerPos[J].push_back(
                Value::array(K.RetTypes[J].elemKind(), {0}, {}));
            continue;
          }
          FUT_TRY(Col, assembleArray(ScanCols[J]));
          PerPos[J].push_back(std::move(Col));
        }
      }
    }

    // Advance the multi-index row-major.
    for (int I = static_cast<int>(Grid.size()) - 1; I >= 0; --I) {
      if (++Idx[I] < Grid[I])
        break;
      Idx[I] = 0;
    }
  }

  // Assemble results: nested per grid dimensions.
  std::vector<Value> Out;
  for (size_t J = 0; J < NumRes; ++J) {
    if (Grid.empty()) {
      Out.push_back(std::move(PerPos[J][0]));
      continue;
    }
    if (NumGroups == 0) {
      std::vector<int64_t> Shape = Grid;
      Out.push_back(Value::array(K.RetTypes[J].elemKind(), Shape, {}));
      continue;
    }
    FUT_TRY(FlatV, assembleArray(PerPos[J]));
    // Reshape the flat outer dimension into the grid shape.
    std::vector<int64_t> Shape = Grid;
    const Value &First = PerPos[J][0];
    if (First.isArray())
      Shape.insert(Shape.end(), First.shape().begin(), First.shape().end());
    std::vector<PrimValue> Data = FlatV.flat();
    Out.push_back(
        Value::array(FlatV.elemKind(), std::move(Shape), std::move(Data)));
  }
  return Out;
}
