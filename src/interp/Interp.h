//===- Interp.h - Reference interpreter -------------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct implementation of the core language's denotational semantics
/// (Section 2.1).  The interpreter is the oracle against which every
/// compiler pass is property-tested: a pass is correct when the transformed
/// program computes the same values as the original.
///
/// Streaming SOACs take an arbitrary partitioning of their input; the chunk
/// size is configurable so tests can verify the paper's invariant that
/// "any partitioning leads to the same result".
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_INTERP_INTERP_H
#define FUTHARKCC_INTERP_INTERP_H

#include "interp/Value.h"
#include "ir/IR.h"
#include "support/Error.h"

#include <cstdint>
#include <functional>

namespace fut {

struct InterpOptions {
  /// Chunk size used when splitting streaming SOAC inputs; 0 means one
  /// maximal chunk (the "recover all inner parallelism" extreme).
  int64_t StreamChunk = 0;

  /// When positive, split streams into min(width, StreamInterleave)
  /// interleaved chunks instead (chunk g holds elements g, g+P, ...),
  /// matching the device chunking of compiled stream_reds.
  int64_t StreamInterleave = 0;

  /// When true, the source array of an in-place update is removed from the
  /// environment (sound only on uniqueness-checked programs) so that the
  /// update really is O(element size), as Section 3 promises.
  bool ConsumeOnUpdate = false;

  /// Abort with an error after this many evaluation steps (guards tests
  /// against runaway loops).
  int64_t MaxSteps = INT64_MAX;

  /// Observation hook, invoked once per expression evaluation with the
  /// current environment.  The GPU simulator uses it to charge host-side
  /// costs and to track host/device residency of arrays.
  std::function<void(const Exp &, const NameMap<Value> &)> OnExp;

  /// Binding hook, invoked after a statement's pattern has been bound,
  /// with the values just bound.  The GPU simulator uses it to register
  /// kernel results as device-resident buffers under their bound names
  /// (and to release the buffer a loop-body rebinding replaces).
  std::function<void(const Stm &, const std::vector<Value> &)> OnBind;

  /// When set, KernelExp evaluation is delegated here (the GPU simulator's
  /// entry point); otherwise kernels are interpreted functionally.
  std::function<ErrorOr<std::vector<Value>>(const KernelExp &,
                                            const NameMap<Value> &)>
      HandleKernel;
};

class Interpreter {
  const Program &Prog;
  InterpOptions Opts;
  int64_t Steps = 0;

public:
  explicit Interpreter(const Program &Prog, InterpOptions Opts = {})
      : Prog(Prog), Opts(Opts) {}

  /// Runs the named function on the given arguments.
  ErrorOr<std::vector<Value>> runFunction(const std::string &Name,
                                          const std::vector<Value> &Args);

  /// Runs "main".
  ErrorOr<std::vector<Value>> run(const std::vector<Value> &Args) {
    return runFunction("main", Args);
  }

  /// Evaluates a body under an initial environment (used by the GPU
  /// simulator for host-side code and by tests).
  ErrorOr<std::vector<Value>> evalBody(const Body &B, NameMap<Value> Env);

  /// Evaluates a lambda applied to the given values.
  ErrorOr<std::vector<Value>> evalLambda(const Lambda &L,
                                         const std::vector<Value> &Args,
                                         const NameMap<Value> &Env);

private:
  ErrorOr<std::vector<Value>> evalExp(const Exp &E, NameMap<Value> &Env);
  ErrorOr<Value> evalSubExp(const SubExp &S, const NameMap<Value> &Env);
  ErrorOr<std::vector<Value>> evalStream(const StreamExp &S,
                                         NameMap<Value> &Env);
  ErrorOr<std::vector<Value>> evalKernel(const KernelExp &K,
                                         NameMap<Value> &Env);
  MaybeError step(const Exp &E);
};

/// Concatenates rank>=1 values along the outer dimension (shapes of inner
/// dimensions must agree).
ErrorOr<Value> concatValues(const std::vector<Value> &Vs);

/// Assembles an array value from equally-shaped element values.
ErrorOr<Value> assembleArray(const std::vector<Value> &Elems);

} // namespace fut

#endif // FUTHARKCC_INTERP_INTERP_H
