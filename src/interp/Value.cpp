//===- Value.cpp - Runtime values ------------------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "interp/Value.h"

#include <cmath>
#include <sstream>

using namespace fut;

Value Value::slice(const std::vector<int64_t> &Prefix) const {
  assert(!Scalar && "cannot slice a scalar");
  assert(Prefix.size() <= Shape.size() && "slice rank too deep");
  if (Prefix.size() == Shape.size())
    return Value::scalar(at(Prefix));

  // Compute the contiguous range covered by the prefix.
  int64_t InnerElems = 1;
  for (size_t I = Prefix.size(); I < Shape.size(); ++I)
    InnerElems *= Shape[I];
  int64_t Off = 0;
  for (size_t I = 0; I < Prefix.size(); ++I) {
    assert(Prefix[I] >= 0 && Prefix[I] < Shape[I] && "slice out of bounds");
    Off = Off * Shape[I] + Prefix[I];
  }
  Off *= InnerElems;

  std::vector<int64_t> NewShape(Shape.begin() + Prefix.size(), Shape.end());
  std::vector<PrimValue> NewData(Data->begin() + Off,
                                 Data->begin() + Off + InnerElems);
  return Value::array(Elem, std::move(NewShape), std::move(NewData));
}

bool Value::operator==(const Value &Other) const {
  if (Scalar != Other.Scalar)
    return false;
  if (Scalar)
    return SVal == Other.SVal;
  return Elem == Other.Elem && Shape == Other.Shape && *Data == *Other.Data;
}

namespace {

bool primApproxEqual(const PrimValue &A, const PrimValue &B, double RelTol,
                     double AbsTol) {
  if (A.kind() != B.kind())
    return false;
  if (!A.isFloat())
    return A == B;
  double X = A.getFloat(), Y = B.getFloat();
  if (std::isnan(X) && std::isnan(Y))
    return true;
  double Diff = std::fabs(X - Y);
  return Diff <= AbsTol ||
         Diff <= RelTol * std::fmax(std::fabs(X), std::fabs(Y));
}

} // namespace

bool Value::approxEqual(const Value &Other, double RelTol,
                        double AbsTol) const {
  if (Scalar != Other.Scalar)
    return false;
  if (Scalar)
    return primApproxEqual(SVal, Other.SVal, RelTol, AbsTol);
  if (Elem != Other.Elem || Shape != Other.Shape)
    return false;
  for (size_t I = 0; I < Data->size(); ++I)
    if (!primApproxEqual((*Data)[I], (*Other.Data)[I], RelTol, AbsTol))
      return false;
  return true;
}

std::string Value::str() const {
  if (Scalar)
    return SVal.str();
  std::ostringstream OS;
  // Print rank-1 inline; higher ranks as nested rows (possibly truncated).
  const int64_t MaxShown = 32;
  if (Shape.size() == 1) {
    OS << "[";
    for (int64_t I = 0; I < Shape[0] && I < MaxShown; ++I) {
      if (I)
        OS << ", ";
      OS << (*Data)[I].str();
    }
    if (Shape[0] > MaxShown)
      OS << ", ...";
    OS << "]";
    return OS.str();
  }
  OS << "[";
  for (int64_t I = 0; I < Shape[0] && I < MaxShown; ++I) {
    if (I)
      OS << ",\n ";
    OS << row(I).str();
  }
  if (Shape[0] > MaxShown)
    OS << ", ...";
  OS << "]";
  return OS.str();
}

Value fut::makeVectorValue(ScalarKind K, const std::vector<double> &Xs) {
  std::vector<PrimValue> Data;
  Data.reserve(Xs.size());
  for (double X : Xs) {
    switch (K) {
    case ScalarKind::F32:
      Data.push_back(PrimValue::makeF32(static_cast<float>(X)));
      break;
    case ScalarKind::F64:
      Data.push_back(PrimValue::makeF64(X));
      break;
    case ScalarKind::I32:
      Data.push_back(PrimValue::makeI32(static_cast<int32_t>(X)));
      break;
    case ScalarKind::I64:
      Data.push_back(PrimValue::makeI64(static_cast<int64_t>(X)));
      break;
    case ScalarKind::Bool:
      Data.push_back(PrimValue::makeBool(X != 0));
      break;
    }
  }
  return Value::array(K, {static_cast<int64_t>(Xs.size())}, std::move(Data));
}

Value fut::makeIntVectorValue(ScalarKind K, const std::vector<int64_t> &Xs) {
  std::vector<PrimValue> Data;
  Data.reserve(Xs.size());
  for (int64_t X : Xs)
    Data.push_back(K == ScalarKind::I64 ? PrimValue::makeI64(X)
                                        : PrimValue::makeI32(
                                              static_cast<int32_t>(X)));
  return Value::array(K, {static_cast<int64_t>(Xs.size())}, std::move(Data));
}

Value fut::makeMatrixValue(ScalarKind K, int64_t R, int64_t C,
                           const std::vector<double> &Xs) {
  assert(static_cast<int64_t>(Xs.size()) == R * C && "bad matrix payload");
  Value V = makeVectorValue(K, Xs);
  std::vector<PrimValue> Data = V.flat();
  return Value::array(K, {R, C}, std::move(Data));
}
