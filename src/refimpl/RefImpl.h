//===- RefImpl.h - Reference-implementation models --------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Models of the hand-written reference implementations the paper compares
/// against (Section 6).  Each reference is the same benchmark program
/// compiled with a configuration that reproduces the structural properties
/// the paper reports for that reference:
///
///  * ReduceOnHost      — Rodinia NN/Backprop/K-means leave reductions
///                        sequential on the CPU (host cycles + transfers),
///  * Fusion off        — Accelerate executes one combinator at a time,
///  * Coalescing off    — Myocyte/MRI-Q references are not coalesced,
///  * Tiling off        — references without local-memory staging,
///  * SegReduce (G5) off— histogram-style vectorised reductions.
///
/// Residual hand-tuning effects our simulator cannot express structurally
/// (time tiling in HotSpot, the expert-tuned LocVolCalib kernels, general
/// micro-optimisation) are modelled by a per-device calibration factor on
/// the reference's cycle count, documented per benchmark in
/// EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_REFIMPL_REFIMPL_H
#define FUTHARKCC_REFIMPL_REFIMPL_H

#include "driver/Compiler.h"

namespace fut {

struct RefConfig {
  bool Fusion = true;
  bool Coalescing = true;
  bool Tiling = true;
  bool SegReduceInterchange = true;
  bool ReduceOnHost = false;

  /// Calibration of hand-tuning effects: the reference's simulated cycles
  /// are divided by this factor (>1 = the reference is faster than its
  /// structural model; <1 = slower, e.g. framework overheads).
  double HandTuningGTX = 1.0;
  double HandTuningW8100 = 1.0;
};

/// The compiler configuration realising a reference model.
CompilerOptions refCompilerOptions(const RefConfig &R);

} // namespace fut

#endif // FUTHARKCC_REFIMPL_REFIMPL_H
