//===- RefImpl.cpp - Reference-implementation models ---------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "refimpl/RefImpl.h"

using namespace fut;

CompilerOptions fut::refCompilerOptions(const RefConfig &R) {
  CompilerOptions O;
  O.EnableFusion = R.Fusion;
  O.Locality.EnableCoalescing = R.Coalescing;
  O.Locality.EnableTiling = R.Tiling;
  O.Flatten.EnableSegReduce = R.SegReduceInterchange;
  O.Flatten.KernelizeReduce = !R.ReduceOnHost;
  return O;
}
