//===- Simplify.h - The simplification engine -------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "simplification engine" of Fig 3: constant folding, algebraic
/// rewrites, copy propagation, common-subexpression elimination, dead-code
/// removal and hoisting of invariant bindings out of loops and SOAC
/// lambdas (let-floating).  Also function inlining, which the pipeline runs
/// before fusion so that the fusion engine sees whole dataflow graphs.
///
/// All expressions in the core language are pure (in-place updates consume
/// their source, so each binding still denotes a value), which makes every
/// one of these rewrites unconditionally sound on uniqueness-checked
/// programs.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_OPT_SIMPLIFY_H
#define FUTHARKCC_OPT_SIMPLIFY_H

#include "ir/IR.h"

namespace fut {

struct SimplifyOptions {
  bool EnableCSE = true;
  bool EnableHoisting = true;
  /// Fixpoint iteration bound per body.
  int MaxRounds = 8;
};

/// Simplifies every function in the program; returns the number of
/// individual rewrites applied (also recorded on the trace session as the
/// "simplify.rewrites" counter).
int simplifyProgram(Program &P, NameSource &Names,
                    const SimplifyOptions &Opts = {});

/// Simplifies one body in place (used by passes on nested code); returns
/// the number of rewrites applied.
int simplifyBody(Body &B, NameSource &Names,
                 const SimplifyOptions &Opts = {});

/// Inlines all calls to non-recursive functions, bottom-up.  After this,
/// the entry function is typically call-free.
void inlineFunctions(Program &P, NameSource &Names);

/// Removes functions unreachable from "main" or any of \p ExtraRoots
/// (e.g. a function about to be differentiated by --vjp, which must
/// survive dead-function elimination even if main never calls it).
void removeDeadFunctions(Program &P,
                         const std::vector<std::string> &ExtraRoots = {});

} // namespace fut

#endif // FUTHARKCC_OPT_SIMPLIFY_H
