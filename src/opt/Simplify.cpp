//===- Simplify.cpp - The simplification engine ------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "opt/Simplify.h"

#include "ir/Builder.h"
#include "ir/Traversal.h"
#include "trace/Trace.h"

#include <unordered_map>
#include <unordered_set>

using namespace fut;

namespace {

/// One simplification round over a body: forward rewriting with a
/// definitions table, copy propagation, CSE; then backward dead-code
/// elimination.  Returns true if anything changed.
class BodySimplifier {
  NameSource &NS;
  const SimplifyOptions &Opts;
  /// Number of individual rewrites applied (constant folds, copy props,
  /// CSE hits, dead statements removed); 0 means a fixed point.
  int Rewrites = 0;

  /// Definitions visible at the current program point (outer bodies
  /// included); maps a name to the expression that bound it.
  NameMap<const Exp *> Defs;

  /// Names whose array may be consumed somewhere in the body under
  /// simplification (in-place update sources, reduce_by_index / SegHist
  /// destinations, loop merge initialisers, function-call arguments, SOAC
  /// inputs whose lambda consumes the matching parameter), closed over
  /// aliases.  CSE must not merge a binding whose name lands here: sharing
  /// one array between two consumers is exactly the aliasing the
  /// uniqueness rules forbid, and the verifier would reject the output.
  NameSet ConsumedMaybe;

public:
  BodySimplifier(NameSource &NS, const SimplifyOptions &Opts)
      : NS(NS), Opts(Opts) {}

  int run(Body &B) {
    std::vector<std::pair<VName, VName>> AliasEdges;
    collectConsumed(B, ConsumedMaybe, AliasEdges);
    // Close over aliasing both ways: consuming an alias consumes its
    // source, and a consumed source poisons every alias of it.
    for (bool Changed = true; Changed;) {
      Changed = false;
      for (const auto &E : AliasEdges) {
        if (ConsumedMaybe.count(E.first) && !ConsumedMaybe.count(E.second)) {
          ConsumedMaybe.insert(E.second);
          Changed = true;
        }
        if (ConsumedMaybe.count(E.second) && !ConsumedMaybe.count(E.first)) {
          ConsumedMaybe.insert(E.first);
          Changed = true;
        }
      }
    }
    simplify(B);
    return Rewrites;
  }

private:
  const Exp *defOf(const SubExp &S) const {
    if (!S.isVar())
      return nullptr;
    auto It = Defs.find(S.getVar());
    return It == Defs.end() ? nullptr : It->second;
  }
  const Exp *defOf(const VName &V) const { return defOf(SubExp::var(V)); }

  static bool isZero(const SubExp &S) {
    return S.isConst() && S.getConst().asDouble() == 0.0 &&
           !S.getConst().isFloat();
  }
  static bool isIntOne(const SubExp &S) {
    return S.isConst() && !S.getConst().isFloat() &&
           S.getConst().asInt64() == 1;
  }

  /// Attempts to replace \p E by a cheaper expression; returns the
  /// replacement or null.
  ExpPtr rewrite(const Exp &E) {
    switch (E.kind()) {
    case ExpKind::BinOpE: {
      const auto *X = expCast<BinOpExp>(&E);
      if (X->A.isConst() && X->B.isConst()) {
        auto R = evalBinOp(X->Op, X->A.getConst(), X->B.getConst());
        if (R) // Keep failing ops (e.g. div by zero) for runtime semantics.
          return subExpE(SubExp::constant(R.take()));
        return nullptr;
      }
      // Integer algebraic identities (float identities are unsound for
      // NaN/-0.0 and are left alone, except the safe x*1 and x+0-like ones
      // are also skipped for floats for simplicity).
      switch (X->Op) {
      case BinOp::Add:
        if (isZero(X->A))
          return subExpE(X->B);
        if (isZero(X->B))
          return subExpE(X->A);
        break;
      case BinOp::Sub:
        if (isZero(X->B))
          return subExpE(X->A);
        break;
      case BinOp::Mul:
        if (isIntOne(X->A))
          return subExpE(X->B);
        if (isIntOne(X->B))
          return subExpE(X->A);
        if (isZero(X->A))
          return subExpE(X->A);
        if (isZero(X->B))
          return subExpE(X->B);
        break;
      case BinOp::Div:
        if (isIntOne(X->B))
          return subExpE(X->A);
        break;
      default:
        break;
      }
      return nullptr;
    }

    case ExpKind::UnOpE: {
      const auto *X = expCast<UnOpExp>(&E);
      if (X->A.isConst()) {
        auto R = evalUnOp(X->Op, X->A.getConst());
        if (R)
          return subExpE(SubExp::constant(R.take()));
      }
      return nullptr;
    }

    case ExpKind::ConvOpE: {
      const auto *X = expCast<ConvOpExp>(&E);
      if (X->Op.From == X->Op.To)
        return subExpE(X->A);
      if (X->A.isConst())
        return subExpE(SubExp::constant(evalConvOp(X->Op, X->A.getConst())));
      return nullptr;
    }

    case ExpKind::Index: {
      const auto *X = expCast<IndexExp>(&E);
      const Exp *D = defOf(X->Arr);
      if (!D)
        return nullptr;
      // iota-index: (iota n)[i] == i.
      if (const auto *I = expDynCast<IotaExp>(D)) {
        if (X->Indices.size() == 1) {
          const SubExp &Idx = X->Indices[0];
          (void)I;
          return subExpE(Idx);
        }
        return nullptr;
      }
      // replicate-index: (replicate n v)[i, rest...] == v[rest...].
      if (const auto *R = expDynCast<ReplicateExp>(D)) {
        if (X->Indices.size() == 1)
          return subExpE(R->Val);
        if (R->Val.isVar()) {
          std::vector<SubExp> Rest(X->Indices.begin() + 1,
                                   X->Indices.end());
          return std::make_unique<IndexExp>(R->Val.getVar(),
                                            std::move(Rest));
        }
        return nullptr;
      }
      // rearrange-index (full rank): (rearrange p a)[i...] == a[p(i)...].
      if (const auto *RA = expDynCast<RearrangeExp>(D)) {
        if (X->Indices.size() == RA->Perm.size()) {
          std::vector<SubExp> SrcIdx(X->Indices.size());
          for (size_t I = 0; I < RA->Perm.size(); ++I)
            SrcIdx[RA->Perm[I]] = X->Indices[I];
          return std::make_unique<IndexExp>(RA->Arr, std::move(SrcIdx));
        }
        return nullptr;
      }
      return nullptr;
    }

    case ExpKind::Rearrange: {
      const auto *X = expCast<RearrangeExp>(&E);
      if (isIdentityPerm(X->Perm))
        return varE(X->Arr);
      if (const auto *Inner = expDynCast<RearrangeExp>(defOf(X->Arr)))
        return std::make_unique<RearrangeExp>(
            composePerms(Inner->Perm, X->Perm), Inner->Arr);
      return nullptr;
    }

    case ExpKind::Copy: {
      // copy of a fresh (alias-free) array is the array itself, provided
      // the source is not consumed elsewhere; freshness means its defining
      // expression constructs a new array.
      const Exp *D = defOf(expCast<CopyExp>(&E)->Arr);
      if (D && (D->kind() == ExpKind::Iota ||
                D->kind() == ExpKind::Replicate || D->isSOAC() ||
                D->kind() == ExpKind::Copy ||
                D->kind() == ExpKind::Concat))
        return varE(expCast<CopyExp>(&E)->Arr);
      return nullptr;
    }

    default:
      return nullptr;
    }
  }

  /// Gathers every name a body may consume, plus alias edges between
  /// bindings (reshape/rearrange/slice/indexing and plain copies), for
  /// the CSE consumption guard above.  Conservative on purpose: apply
  /// arguments count as consumers without looking at the callee's
  /// uniqueness signature, and a lambda consuming its parameter marks the
  /// whole corresponding input array.
  static void collectConsumed(const Body &B, NameSet &Out,
                              std::vector<std::pair<VName, VName>> &Edges) {
    for (const Stm &S : B.Stms) {
      const Exp &E = *S.E;
      switch (E.kind()) {
      case ExpKind::Update:
        Out.insert(expCast<UpdateExp>(&E)->Arr);
        break;
      case ExpKind::ReduceByIndex:
        Out.insert(expCast<ReduceByIndexExp>(&E)->Dest);
        break;
      case ExpKind::Kernel: {
        const auto *K = expCast<KernelExp>(&E);
        if (K->Op == KernelExp::OpKind::SegHist)
          Out.insert(K->HistDest);
        break;
      }
      case ExpKind::Loop:
        for (const SubExp &I : expCast<LoopExp>(&E)->MergeInit)
          if (I.isVar())
            Out.insert(I.getVar());
        break;
      case ExpKind::Apply:
        for (const SubExp &A : expCast<ApplyExp>(&E)->Args)
          if (A.isVar())
            Out.insert(A.getVar());
        break;
      case ExpKind::Map: {
        // map is the one SOAC whose lambda may consume its parameters
        // (uniqueness: one row per thread); that consumes the input array.
        const auto *M = expCast<MapExp>(&E);
        NameSet Inner;
        collectConsumed(M->Fn.B, Inner, Edges);
        for (size_t I = 0; I < M->Fn.Params.size() && I < M->Arrays.size();
             ++I)
          if (Inner.count(M->Fn.Params[I].Name))
            Out.insert(M->Arrays[I]);
        Out.insert(Inner.begin(), Inner.end());
        continue; // lambda body already walked
      }
      case ExpKind::SubExpE: {
        const auto *SE = expCast<SubExpExp>(&E);
        if (SE->Val.isVar() && S.Pat.size() == 1)
          Edges.push_back({S.Pat[0].Name, SE->Val.getVar()});
        break;
      }
      case ExpKind::Reshape:
      case ExpKind::Rearrange:
      case ExpKind::Slice:
      case ExpKind::Index:
        // Alias-producing forms: link the result to the source array so
        // the closure reaches consumption through views.
        if (S.Pat.size() == 1) {
          NameSet Free = freeVarsInExp(E);
          for (const VName &V : Free)
            Edges.push_back({S.Pat[0].Name, V});
        }
        break;
      default:
        break;
      }
      forEachChildBody(E, [&](const Body &Inner) {
        collectConsumed(Inner, Out, Edges);
      });
    }
  }

  struct CSEKey {
    const Exp *E;
    size_t Hash;
  };
  struct CSEKeyHash {
    size_t operator()(const CSEKey &K) const { return K.Hash; }
  };
  struct CSEKeyEq {
    bool operator()(const CSEKey &A, const CSEKey &B) const {
      return expsStructurallyEqual(*A.E, *B.E);
    }
  };
  using CSETable =
      std::unordered_map<CSEKey, std::vector<Param>, CSEKeyHash, CSEKeyEq>;

  void simplify(Body &B) {
    NameMap<SubExp> Subst;
    CSETable CSE;
    std::vector<Stm> Out;
    Out.reserve(B.Stms.size());

    for (Stm &S : B.Stms) {
      substituteInExp(Subst, *S.E);
      for (Param &P : S.Pat)
        P.Ty = substituteInType(Subst, P.Ty);

      // Recurse into nested bodies first.
      forEachChildBody(*S.E, [&](Body &Inner) { simplify(Inner); });

      // Constant-condition if: splice the taken branch.
      if (auto *If = expDynCast<IfExp>(S.E.get());
          If && If->Cond.isConst()) {
        Body &Taken = If->Cond.getConst().getBool() ? If->Then : If->Else;
        for (Stm &Inner : Taken.Stms)
          Out.push_back(std::move(Inner));
        for (size_t I = 0; I < S.Pat.size(); ++I)
          Subst[S.Pat[I].Name] = Taken.Result[I];
        ++Rewrites;
        continue;
      }

      // Rule-based rewriting to a fixed point on this one expression.
      for (ExpPtr R = rewrite(*S.E); R; R = rewrite(*S.E)) {
        S.E = std::move(R);
        ++Rewrites;
      }

      // Copy propagation.
      if (const auto *SE = expDynCast<SubExpExp>(S.E.get());
          SE && S.Pat.size() == 1) {
        Subst[S.Pat[0].Name] = SE->Val;
        ++Rewrites;
        continue;
      }

      // CSE.  Bindings whose array may be consumed are excluded entirely
      // — neither dropped in favour of an earlier twin nor offered as a
      // merge target — because two consumers must keep distinct arrays.
      bool MayBeConsumed = false;
      for (const Param &P : S.Pat)
        MayBeConsumed = MayBeConsumed || ConsumedMaybe.count(P.Name);
      if (Opts.EnableCSE && !MayBeConsumed && expIsCSEable(*S.E)) {
        CSEKey Key{S.E.get(), hashExpShallow(*S.E)};
        auto It = CSE.find(Key);
        if (It != CSE.end() && It->second.size() == S.Pat.size()) {
          for (size_t I = 0; I < S.Pat.size(); ++I) {
            const Param &Dropped = S.Pat[I];
            const Param &Kept = It->second[I];
            Subst[Dropped.Name] = SubExp::var(Kept.Name);
            // A dropped pattern may be the sole introduction of an
            // existential dim (e.g. concat's result length); remap it to
            // the surviving pattern's dim or later uses dangle.
            if (Dropped.Ty.rank() == Kept.Ty.rank())
              for (int D = 0; D < Dropped.Ty.rank(); ++D) {
                const Dim &DD = Dropped.Ty.shape()[D];
                const Dim &KD = Kept.Ty.shape()[D];
                if (DD.isVar() && !(DD == KD) && !Subst.count(DD.getVar()))
                  Subst[DD.getVar()] = KD;
              }
          }
          ++Rewrites;
          continue;
        }
        std::vector<Param> Pat = S.Pat;
        // The key references the expression now owned by Out; push first.
        Out.push_back(std::move(S));
        CSE.emplace(CSEKey{Out.back().E.get(),
                           hashExpShallow(*Out.back().E)},
                    std::move(Pat));
        for (const Param &P : Out.back().Pat)
          Defs[P.Name] = Out.back().E.get();
        continue;
      }

      Out.push_back(std::move(S));
      for (const Param &P : Out.back().Pat)
        Defs[P.Name] = Out.back().E.get();
    }

    for (SubExp &R : B.Result)
      if (R.isVar()) {
        auto It = Subst.find(R.getVar());
        if (It != Subst.end())
          R = It->second;
      }
    // Also rewrite any remaining references in the collected statements'
    // nested bodies (substitution was applied eagerly above, so nothing to
    // do here).
    B.Stms = std::move(Out);

    deadCodeElim(B);
  }

  void deadCodeElim(Body &B) {
    NameSet Live;
    for (const SubExp &R : B.Result)
      if (R.isVar())
        Live.insert(R.getVar());

    std::vector<Stm> Kept;
    for (auto It = B.Stms.rbegin(); It != B.Stms.rend(); ++It) {
      bool Needed = false;
      for (const Param &P : It->Pat)
        Needed = Needed || Live.count(P.Name);
      if (!Needed) {
        ++Rewrites;
        continue;
      }
      NameSet Free = freeVarsInExp(*It->E);
      Live.insert(Free.begin(), Free.end());
      for (const Param &P : It->Pat)
        for (const Dim &D : P.Ty.shape())
          if (D.isVar())
            Live.insert(D.getVar());
      Kept.push_back(std::move(*It));
    }
    B.Stms.assign(std::make_move_iterator(Kept.rbegin()),
                  std::make_move_iterator(Kept.rend()));
  }
};

/// Hoists invariant, cheap bindings out of loops and SOAC lambdas
/// (let-floating / hoisting in Fig 3).  Returns true on change.
class Hoister {
  int Rewrites = 0;

public:
  int run(Body &B) {
    hoistInBody(B);
    return Rewrites;
  }

private:
  /// Names bound by the binder expression itself (lambda params etc.).
  static NameSet binderBound(const Exp &E) {
    NameSet S;
    switch (E.kind()) {
    case ExpKind::Loop: {
      const auto *L = expCast<LoopExp>(&E);
      for (const Param &P : L->MergeParams)
        S.insert(P.Name);
      S.insert(L->IndexVar);
      break;
    }
    case ExpKind::Map:
      for (const Param &P : expCast<MapExp>(&E)->Fn.Params)
        S.insert(P.Name);
      break;
    case ExpKind::Reduce:
      for (const Param &P : expCast<ReduceExp>(&E)->Fn.Params)
        S.insert(P.Name);
      break;
    case ExpKind::Scan:
      for (const Param &P : expCast<ScanExp>(&E)->Fn.Params)
        S.insert(P.Name);
      break;
    case ExpKind::Stream: {
      const auto *St = expCast<StreamExp>(&E);
      for (const Param &P : St->ReduceFn.Params)
        S.insert(P.Name);
      for (const Param &P : St->FoldFn.Params)
        S.insert(P.Name);
      break;
    }
    case ExpKind::ReduceByIndex: {
      const auto *R = expCast<ReduceByIndexExp>(&E);
      for (const Param &P : R->CombineFn.Params)
        S.insert(P.Name);
      for (const Param &P : R->ValueFn.Params)
        S.insert(P.Name);
      break;
    }
    default:
      break;
    }
    return S;
  }

  static bool hoistable(const Exp &E) {
    // Cheap, pure, *total* expressions without nested bodies.  Loops and
    // SOACs stay put.  iota/replicate hoisting is the paper's aggressive
    // allocation hoisting.  Indexing and partial operators (div/mod/pow)
    // are not speculated past a possibly zero-trip binder.
    switch (E.kind()) {
    case ExpKind::SubExpE:
    case ExpKind::UnOpE:
    case ExpKind::ConvOpE:
    case ExpKind::Iota:
    case ExpKind::Replicate:
    case ExpKind::Rearrange:
    case ExpKind::Reshape:
    case ExpKind::Copy:
      return true;
    case ExpKind::BinOpE: {
      BinOp Op = expCast<BinOpExp>(&E)->Op;
      return Op != BinOp::Div && Op != BinOp::Mod && Op != BinOp::Pow;
    }
    default:
      return false;
    }
  }

  void hoistInBody(Body &B) {
    std::vector<Stm> Out;
    for (Stm &S : B.Stms) {
      // First recurse so inner hoists surface to this level in one round.
      forEachChildBody(*S.E, [&](Body &Inner) { hoistInBody(Inner); });

      bool IsBinder = S.E->kind() == ExpKind::Loop || S.E->isSOAC();
      if (IsBinder && S.E->kind() != ExpKind::If) {
        NameSet Bound = binderBound(*S.E);
        forEachChildBody(*S.E, [&](Body &Inner) {
          std::vector<Stm> Stay;
          for (Stm &IS : Inner.Stms) {
            bool CanHoist = hoistable(*IS.E);
            if (CanHoist) {
              NameSet Free = freeVarsInExp(*IS.E);
              for (const VName &V : Free)
                if (Bound.count(V)) {
                  CanHoist = false;
                  break;
                }
            }
            if (CanHoist) {
              Out.push_back(std::move(IS));
              ++Rewrites;
            } else {
              for (const Param &P : IS.Pat)
                Bound.insert(P.Name);
              Stay.push_back(std::move(IS));
            }
          }
          Inner.Stms = std::move(Stay);
        });
      }
      Out.push_back(std::move(S));
    }
    B.Stms = std::move(Out);
  }
};

} // namespace

int fut::simplifyBody(Body &B, NameSource &Names,
                      const SimplifyOptions &Opts) {
  int Total = 0;
  for (int Round = 0; Round < Opts.MaxRounds; ++Round) {
    int N = BodySimplifier(Names, Opts).run(B);
    if (Opts.EnableHoisting)
      N += Hoister().run(B);
    if (!N)
      break;
    Total += N;
  }
  trace::counter("simplify.rewrites", Total);
  return Total;
}

int fut::simplifyProgram(Program &P, NameSource &Names,
                         const SimplifyOptions &Opts) {
  trace::ScopedSpan Span("pass:simplify", "compiler");
  int Total = 0;
  for (FunDef &F : P.Funs)
    Total += simplifyBody(F.FBody, Names, Opts);
  Span.arg("rewrites", Total);
  return Total;
}

namespace {

/// Splices calls to callees into the caller's bodies.
class Inliner {
  Program &P;
  NameSource &NS;

public:
  Inliner(Program &P, NameSource &NS) : P(P), NS(NS) {}

  void run() {
    for (FunDef &F : P.Funs)
      inlineInBody(F.FBody, F.Name);
  }

private:
  bool callsSelf(const FunDef &F, const std::string &Name, int Depth = 0) {
    if (Depth > 16)
      return true; // Deep chains: conservatively treat as recursive.
    bool Found = false;
    scanBodyForCalls(F.FBody, [&](const std::string &Callee) {
      if (Callee == Name)
        Found = true;
      else if (const FunDef *C = P.findFun(Callee))
        Found = Found || callsSelf(*C, Name, Depth + 1);
    });
    return Found;
  }

  static void
  scanBodyForCalls(const Body &B,
                   const std::function<void(const std::string &)> &Fn) {
    for (const Stm &S : B.Stms) {
      if (const auto *A = expDynCast<ApplyExp>(S.E.get()))
        Fn(A->Func);
      forEachChildBody(*S.E,
                       [&](const Body &Inner) { scanBodyForCalls(Inner, Fn); });
    }
  }

  void inlineInBody(Body &B, const std::string &Current) {
    std::vector<Stm> Out;
    for (Stm &S : B.Stms) {
      forEachChildBody(*S.E,
                       [&](Body &Inner) { inlineInBody(Inner, Current); });
      auto *A = expDynCast<ApplyExp>(S.E.get());
      const FunDef *Callee = A ? P.findFun(A->Func) : nullptr;
      if (!A || !Callee || A->Func == Current ||
          callsSelf(*Callee, A->Func)) {
        Out.push_back(std::move(S));
        continue;
      }
      // Bind arguments to parameters, then alpha-rename the callee body.
      NameMap<SubExp> Map;
      for (size_t I = 0; I < Callee->Params.size(); ++I)
        Map[Callee->Params[I].Name] = A->Args[I];
      Body Spliced = renameBody(Callee->FBody, NS, Map);
      // Recursively inline in the freshly spliced code too.
      inlineInBody(Spliced, Current);
      for (Stm &IS : Spliced.Stms)
        Out.push_back(std::move(IS));
      for (size_t I = 0; I < S.Pat.size(); ++I)
        Out.emplace_back(std::vector<Param>{S.Pat[I]},
                         subExpE(Spliced.Result[I]));
    }
    B.Stms = std::move(Out);
  }
};

} // namespace

void fut::inlineFunctions(Program &P, NameSource &Names) {
  Inliner(P, Names).run();
}

void fut::removeDeadFunctions(Program &P,
                              const std::vector<std::string> &ExtraRoots) {
  std::vector<FunDef> Kept;
  // Reachability from main.  A set, not a defaulting bool map: membership
  // queries must never insert the queried name.
  std::unordered_set<std::string> Reachable;
  std::vector<std::string> Work{"main"};
  Work.insert(Work.end(), ExtraRoots.begin(), ExtraRoots.end());
  while (!Work.empty()) {
    std::string Name = Work.back();
    Work.pop_back();
    if (!Reachable.insert(Name).second)
      continue;
    const FunDef *F = P.findFun(Name);
    if (!F)
      continue;
    std::function<void(const Body &)> Scan = [&](const Body &B) {
      for (const Stm &S : B.Stms) {
        if (const auto *A = expDynCast<ApplyExp>(S.E.get()))
          Work.push_back(A->Func);
        forEachChildBody(*S.E, Scan);
      }
    };
    Scan(F->FBody);
  }
  for (FunDef &F : P.Funs)
    if (Reachable.count(F.Name))
      Kept.push_back(std::move(F));
  P.Funs = std::move(Kept);
}
