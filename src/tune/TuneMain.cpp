//===- TuneMain.cpp - The futharkcc-tune driver ---------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tunes device-parameter knobs per benchmark with simulated cycles as the
/// oracle and bit-identical outputs as the hard constraint, then prints a
/// per-benchmark table and (optionally) a JSON report.  --min-wins /
/// --min-improvement turn the run into an assertion for CI: exit nonzero
/// unless at least N benchmarks improved by at least the given percentage.
///
//===----------------------------------------------------------------------===//

#include "tune/Tune.h"

#include "gpusim/CostModel.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace fut;
using namespace fut::tune;

namespace {

void usage() {
  fprintf(stderr,
          "usage: futharkcc-tune [options]\n"
          "  --bench <name>       tune one benchmark (repeatable);\n"
          "                       default: the full suite\n"
          "  --device <d>         gtx780 (default) or w8100\n"
          "  --cost-model <m>     oracle cycle model: roofline (default)\n"
          "                       or pipeline\n"
          "  --seed <n>           axis-order shuffle seed (default 1)\n"
          "  --rounds <n>         coordinate-descent rounds (default 2)\n"
          "  --json <file>        write the results as JSON\n"
          "  --min-wins <n>       with --min-improvement: fail unless at\n"
          "                       least n benchmarks improve that much\n"
          "  --min-improvement <pct>  the improvement bar (percent)\n"
          "  --list               list benchmark names and exit\n");
}

} // namespace

int main(int argc, char **argv) {
  TuneOptions O;
  std::vector<std::string> Benches;
  std::string JsonPath;
  int MinWins = 0;
  double MinImprovement = 0;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return ++I < argc ? argv[I] : nullptr;
    };
    if (A == "--bench") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      Benches.push_back(V);
    } else if (A == "--device") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      std::string Knobs = std::string(V);
      if (Knobs == "gtx780")
        O.Device = gpusim::DeviceParams::gtx780();
      else if (Knobs == "w8100")
        O.Device = gpusim::DeviceParams::w8100();
      else {
        fprintf(stderr, "unknown device '%s'\n", V);
        return 2;
      }
    } else if (A == "--cost-model" || A.rfind("--cost-model=", 0) == 0) {
      const char *V =
          A == "--cost-model" ? Next() : A.c_str() + strlen("--cost-model=");
      if (!V || !gpusim::CostModel::byName(V)) {
        usage();
        return 2;
      }
      O.Device.CostModelName = V;
    } else if (A == "--seed") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      O.Seed = std::stoull(V);
    } else if (A == "--rounds") {
      const char *V = Next();
      if (!V || (O.Rounds = std::stoi(V)) < 1) {
        usage();
        return 2;
      }
    } else if (A == "--json") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      JsonPath = V;
    } else if (A == "--min-wins") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      MinWins = std::stoi(V);
    } else if (A == "--min-improvement") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      MinImprovement = std::stod(V);
    } else if (A == "--list") {
      for (const auto &B : bench::allBenchmarks())
        printf("%s\n", B.Name.c_str());
      return 0;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  std::vector<const bench::BenchmarkDef *> Defs;
  if (Benches.empty()) {
    for (const auto &B : bench::allBenchmarks())
      Defs.push_back(&B);
  } else {
    for (const std::string &Name : Benches) {
      const bench::BenchmarkDef *B = bench::findBenchmark(Name);
      if (!B) {
        fprintf(stderr, "unknown benchmark '%s' (--list shows them)\n",
                Name.c_str());
        return 2;
      }
      Defs.push_back(B);
    }
  }

  printf("futharkcc-tune: oracle=%s seed=%llu rounds=%d\n",
         O.Device.CostModelName.c_str(),
         static_cast<unsigned long long>(O.Seed), O.Rounds);
  printf("%-16s %14s %14s %7s %6s  %s\n", "benchmark", "baseline", "tuned",
         "gain", "evals", "best knobs");

  std::vector<TuneResult> Results;
  int Failures = 0;
  for (const bench::BenchmarkDef *B : Defs) {
    auto R = tuneBenchmark(*B, O);
    if (!R) {
      ++Failures;
      fprintf(stderr, "%-16s FAILED: %s\n", B->Name.c_str(),
              R.getError().str().c_str());
      continue;
    }
    printf("%-16s %14lld %14lld %6.1f%% %6d  %s\n", R->Bench.c_str(),
           static_cast<long long>(R->BaselineCycles),
           static_cast<long long>(R->BestCycles), R->improvementPct(),
           R->Evals, R->Best.str().c_str());
    if (R->OutputMismatches > 0) {
      // The knobs are semantics-preserving; a divergent output is a
      // compiler bug the tuner refuses to paper over.
      ++Failures;
      fprintf(stderr,
              "%-16s %d candidate configuration(s) changed the outputs\n",
              R->Bench.c_str(), R->OutputMismatches);
    }
    Results.push_back(*R);
  }

  if (!JsonPath.empty()) {
    std::ofstream OS(JsonPath);
    if (!OS) {
      fprintf(stderr, "cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    OS << toJson(Results);
    printf("wrote %s\n", JsonPath.c_str());
  }

  if (MinWins > 0) {
    int Wins = 0;
    for (const TuneResult &R : Results)
      if (R.improvementPct() >= MinImprovement)
        ++Wins;
    printf("%d/%zu benchmark(s) improved by >= %.1f%% (required: %d)\n",
           Wins, Results.size(), MinImprovement, MinWins);
    if (Wins < MinWins)
      return 1;
  }
  return Failures == 0 ? 0 : 1;
}
