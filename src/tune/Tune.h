//===- Tune.h - Cycle-oracle autotuner over DeviceParams knobs --*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// futharkcc-tune: a seeded autotuner that searches the device-parameter
/// knobs the compiler exposes — workgroup size, the histogram local-width
/// threshold, the tiling width, and the pipelined-launch fraction — using
/// simulated cycles as the oracle.  Outputs must stay bit-identical to the
/// baseline configuration's outputs: a configuration that changes any
/// result value is rejected outright, whatever its cycle count, so the
/// tuner can only ever trade time, never meaning.
///
/// The search is coordinate descent: sweep one knob at a time over a small
/// pinned candidate set, keep the best, repeat for a fixed number of
/// rounds.  The axis order is shuffled deterministically from the seed, so
/// runs are reproducible and different seeds explore different descent
/// paths through the same lattice.  Every evaluation is cached by knob
/// tuple — the search space is a few hundred points, the cache keeps the
/// wall-clock linear in the distinct points visited.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_TUNE_TUNE_H
#define FUTHARKCC_TUNE_TUNE_H

#include "bench_suite/Benchmarks.h"
#include "gpusim/Device.h"
#include "support/Error.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fut {
namespace tune {

/// The tuned subset of DeviceParams.  Everything else (memory sizes,
/// throughputs, the cost model) is the fixed machine; these four are the
/// mapping decisions a programmer (or this tuner) is free to change.
struct TuneKnobs {
  int WorkgroupSize = 256;
  int64_t HistLocalWidthMax = 4096;
  int TileWidth = 0; ///< 0 = follow WorkgroupSize (the historical tiling)
  double PipelinedLaunchFraction = 0.5;

  void applyTo(gpusim::DeviceParams &P) const {
    P.WorkgroupSize = WorkgroupSize;
    P.HistLocalWidthMax = HistLocalWidthMax;
    P.TileWidth = TileWidth;
    P.PipelinedLaunchFraction = PipelinedLaunchFraction;
  }
  static TuneKnobs from(const gpusim::DeviceParams &P) {
    TuneKnobs K;
    K.WorkgroupSize = P.WorkgroupSize;
    K.HistLocalWidthMax = P.HistLocalWidthMax;
    K.TileWidth = P.TileWidth;
    K.PipelinedLaunchFraction = P.PipelinedLaunchFraction;
    return K;
  }
  bool operator==(const TuneKnobs &O) const {
    return WorkgroupSize == O.WorkgroupSize &&
           HistLocalWidthMax == O.HistLocalWidthMax &&
           TileWidth == O.TileWidth &&
           PipelinedLaunchFraction == O.PipelinedLaunchFraction;
  }
  std::string str() const;
};

struct TuneOptions {
  /// The machine (and the oracle: Device.CostModelName picks which cycle
  /// model scores candidates).  Its knob fields are the baseline.
  gpusim::DeviceParams Device = gpusim::DeviceParams::gtx780();
  /// Seed of the deterministic axis-order shuffle.
  uint64_t Seed = 1;
  /// Coordinate-descent sweeps over all axes.
  int Rounds = 2;
};

struct TuneResult {
  std::string Bench;
  TuneKnobs Baseline;
  TuneKnobs Best;
  double BaselineCycles = 0;
  double BestCycles = 0;
  /// Distinct configurations actually simulated (cache misses).
  int Evals = 0;
  /// Candidates rejected for output divergence (must be 0: the knobs are
  /// semantics-preserving by construction; nonzero means a compiler bug
  /// and the tuner reports it loudly rather than exploiting it).
  int OutputMismatches = 0;

  double improvementPct() const {
    return BaselineCycles > 0
               ? 100.0 * (BaselineCycles - BestCycles) / BaselineCycles
               : 0;
  }
};

/// Tunes one benchmark; the hard constraint is bit-identical outputs
/// against the baseline configuration's run.
ErrorOr<TuneResult> tuneBenchmark(const bench::BenchmarkDef &B,
                                  const TuneOptions &O);

/// Serialises results as a JSON array (stable key order, no trailing
/// floats beyond %.1f for percentages).
std::string toJson(const std::vector<TuneResult> &Results);

} // namespace tune
} // namespace fut

#endif // FUTHARKCC_TUNE_TUNE_H
