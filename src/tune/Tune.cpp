//===- Tune.cpp - Cycle-oracle autotuner over DeviceParams knobs ----------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "tune/Tune.h"

#include "support/Utils.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <sstream>

using namespace fut;
using namespace fut::tune;

std::string TuneKnobs::str() const {
  std::ostringstream OS;
  OS << "wg=" << WorkgroupSize << " histlocal=" << HistLocalWidthMax
     << " tile=" << TileWidth << " launchfrac=" << PipelinedLaunchFraction;
  return OS.str();
}

namespace {

/// The candidate lattice.  Small and pinned: the point of the tuner is the
/// oracle and the bit-identity constraint, not an exotic search.
const int kWorkgroupSizes[] = {64, 128, 256, 512, 1024};
const int64_t kHistLocalWidths[] = {0, 1024, 4096, 16384, 1 << 20};
const int kTileWidths[] = {0, 128, 256, 512, 1024};
const double kLaunchFractions[] = {0.25, 0.5, 0.75, 0.95};

struct KnobKey {
  int WG;
  int64_t HL;
  int TW;
  double LF;
  bool operator<(const KnobKey &O) const {
    if (WG != O.WG)
      return WG < O.WG;
    if (HL != O.HL)
      return HL < O.HL;
    if (TW != O.TW)
      return TW < O.TW;
    return LF < O.LF;
  }
};

KnobKey keyOf(const TuneKnobs &K) {
  return {K.WorkgroupSize, K.HistLocalWidthMax, K.TileWidth,
          K.PipelinedLaunchFraction};
}

} // namespace

ErrorOr<TuneResult> fut::tune::tuneBenchmark(const bench::BenchmarkDef &B,
                                             const TuneOptions &O) {
  TuneResult R;
  R.Bench = B.Name;
  R.Baseline = TuneKnobs::from(O.Device);

  CompilerOptions CO;

  // Baseline run: its outputs are the hard constraint every candidate
  // must reproduce bit-for-bit, and its cycles are the bar to beat.
  gpusim::DeviceParams BaseDP = O.Device;
  auto Base = bench::runBenchmark(B, CO, BaseDP);
  if (!Base)
    return Base.getError();
  R.BaselineCycles = Base->Cost.TotalCycles;
  R.Evals = 1;
  const std::vector<Value> &Golden = Base->Outputs;

  // Eval cache: cycles of every configuration tried, +inf for rejected
  // (output-divergent or failing) ones so descent never revisits them.
  std::map<KnobKey, double> Cache;
  Cache[keyOf(R.Baseline)] = R.BaselineCycles;

  auto Eval = [&](const TuneKnobs &K) -> double {
    auto It = Cache.find(keyOf(K));
    if (It != Cache.end())
      return It->second;
    gpusim::DeviceParams DP = O.Device;
    K.applyTo(DP);
    ++R.Evals;
    auto Run = bench::runBenchmark(B, CO, DP);
    double Cycles = std::numeric_limits<double>::infinity();
    if (Run) {
      bool Identical = Run->Outputs.size() == Golden.size();
      for (size_t I = 0; Identical && I < Golden.size(); ++I)
        Identical = Run->Outputs[I] == Golden[I];
      if (Identical)
        Cycles = Run->Cost.TotalCycles;
      else
        ++R.OutputMismatches;
    }
    Cache[keyOf(K)] = Cycles;
    return Cycles;
  };

  TuneKnobs Cur = R.Baseline;
  double CurCycles = R.BaselineCycles;

  // Coordinate descent, axis order shuffled deterministically per round.
  SplitMix64 Rng(O.Seed * 0x9e3779b97f4a7c15ULL + 0xd1b54a32d192ed03ULL);
  for (int Round = 0; Round < O.Rounds; ++Round) {
    int Axes[] = {0, 1, 2, 3};
    for (int I = 3; I > 0; --I)
      std::swap(Axes[I], Axes[Rng.nextBelow(static_cast<uint64_t>(I) + 1)]);
    for (int Axis : Axes) {
      TuneKnobs BestK = Cur;
      double BestC = CurCycles;
      auto Try = [&](const TuneKnobs &K) {
        double C = Eval(K);
        if (C < BestC) {
          BestC = C;
          BestK = K;
        }
      };
      switch (Axis) {
      case 0:
        for (int V : kWorkgroupSizes) {
          TuneKnobs K = Cur;
          K.WorkgroupSize = V;
          Try(K);
        }
        break;
      case 1:
        for (int64_t V : kHistLocalWidths) {
          TuneKnobs K = Cur;
          K.HistLocalWidthMax = V;
          Try(K);
        }
        break;
      case 2:
        for (int V : kTileWidths) {
          TuneKnobs K = Cur;
          K.TileWidth = V;
          Try(K);
        }
        break;
      case 3:
        for (double V : kLaunchFractions) {
          TuneKnobs K = Cur;
          K.PipelinedLaunchFraction = V;
          Try(K);
        }
        break;
      }
      Cur = BestK;
      CurCycles = BestC;
    }
  }

  R.Best = Cur;
  R.BestCycles = CurCycles;
  return R;
}

std::string fut::tune::toJson(const std::vector<TuneResult> &Results) {
  std::ostringstream OS;
  auto Knobs = [&](const TuneKnobs &K) {
    OS << "{\"workgroup\": " << K.WorkgroupSize
       << ", \"hist_local_width_max\": " << K.HistLocalWidthMax
       << ", \"tile_width\": " << K.TileWidth
       << ", \"pipelined_launch_fraction\": " << K.PipelinedLaunchFraction
       << "}";
  };
  OS << "[\n";
  for (size_t I = 0; I < Results.size(); ++I) {
    const TuneResult &R = Results[I];
    OS << "  {\"bench\": \"" << R.Bench << "\", \"baseline_cycles\": "
       << static_cast<int64_t>(R.BaselineCycles)
       << ", \"best_cycles\": " << static_cast<int64_t>(R.BestCycles)
       << ", \"improvement_pct\": ";
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%.1f", R.improvementPct());
    OS << Buf << ", \"evals\": " << R.Evals
       << ", \"output_mismatches\": " << R.OutputMismatches
       << ", \"baseline\": ";
    Knobs(R.Baseline);
    OS << ", \"best\": ";
    Knobs(R.Best);
    OS << "}" << (I + 1 < Results.size() ? "," : "") << "\n";
  }
  OS << "]\n";
  return OS.str();
}
