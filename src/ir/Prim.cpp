//===- Prim.cpp - Primitive scalar semantics ------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "ir/Prim.h"

#include <cassert>
#include <cmath>
#include <cstdint>
#include <sstream>

using namespace fut;

const char *fut::scalarKindName(ScalarKind K) {
  switch (K) {
  case ScalarKind::Bool:
    return "bool";
  case ScalarKind::I32:
    return "i32";
  case ScalarKind::I64:
    return "i64";
  case ScalarKind::F32:
    return "f32";
  case ScalarKind::F64:
    return "f64";
  }
  assert(false && "unhandled scalar kind");
  return "?";
}

bool fut::isFloatKind(ScalarKind K) {
  return K == ScalarKind::F32 || K == ScalarKind::F64;
}

bool fut::isIntKind(ScalarKind K) {
  return K == ScalarKind::I32 || K == ScalarKind::I64;
}

PrimValue PrimValue::makeBool(bool V) {
  PrimValue P;
  P.Kind = ScalarKind::Bool;
  P.B = V;
  return P;
}

PrimValue PrimValue::makeI32(int32_t V) {
  PrimValue P;
  P.Kind = ScalarKind::I32;
  P.I = V;
  return P;
}

PrimValue PrimValue::makeI64(int64_t V) {
  PrimValue P;
  P.Kind = ScalarKind::I64;
  P.I = V;
  return P;
}

PrimValue PrimValue::makeF32(float V) {
  PrimValue P;
  P.Kind = ScalarKind::F32;
  P.F = V;
  return P;
}

PrimValue PrimValue::makeF64(double V) {
  PrimValue P;
  P.Kind = ScalarKind::F64;
  P.F = V;
  return P;
}

PrimValue PrimValue::zeroOf(ScalarKind K) {
  switch (K) {
  case ScalarKind::Bool:
    return makeBool(false);
  case ScalarKind::I32:
    return makeI32(0);
  case ScalarKind::I64:
    return makeI64(0);
  case ScalarKind::F32:
    return makeF32(0.0f);
  case ScalarKind::F64:
    return makeF64(0.0);
  }
  assert(false && "unhandled scalar kind");
  return PrimValue();
}

bool PrimValue::getBool() const {
  assert(Kind == ScalarKind::Bool && "not a bool");
  return B;
}

int64_t PrimValue::getInt() const {
  assert(isInt() && "not an integer");
  return I;
}

double PrimValue::getFloat() const {
  assert(isFloat() && "not a float");
  return F;
}

double PrimValue::asDouble() const {
  switch (Kind) {
  case ScalarKind::Bool:
    return B ? 1.0 : 0.0;
  case ScalarKind::I32:
  case ScalarKind::I64:
    return static_cast<double>(I);
  case ScalarKind::F32:
  case ScalarKind::F64:
    return F;
  }
  return 0.0;
}

int64_t PrimValue::asInt64() const {
  switch (Kind) {
  case ScalarKind::Bool:
    return B ? 1 : 0;
  case ScalarKind::I32:
  case ScalarKind::I64:
    return I;
  case ScalarKind::F32:
  case ScalarKind::F64:
    return static_cast<int64_t>(F);
  }
  return 0;
}

bool PrimValue::operator==(const PrimValue &Other) const {
  if (Kind != Other.Kind)
    return false;
  switch (Kind) {
  case ScalarKind::Bool:
    return B == Other.B;
  case ScalarKind::I32:
  case ScalarKind::I64:
    return I == Other.I;
  case ScalarKind::F32:
  case ScalarKind::F64:
    return F == Other.F;
  }
  return false;
}

size_t PrimValue::hash() const {
  size_t Seed = std::hash<int>()(static_cast<int>(Kind));
  switch (Kind) {
  case ScalarKind::Bool:
    hashCombine(Seed, std::hash<bool>()(B));
    break;
  case ScalarKind::I32:
  case ScalarKind::I64:
    hashCombine(Seed, std::hash<int64_t>()(I));
    break;
  case ScalarKind::F32:
  case ScalarKind::F64:
    hashCombine(Seed, std::hash<double>()(F));
    break;
  }
  return Seed;
}

std::string PrimValue::str() const {
  std::ostringstream OS;
  switch (Kind) {
  case ScalarKind::Bool:
    OS << (B ? "true" : "false");
    break;
  case ScalarKind::I32:
    OS << I << "i32";
    break;
  case ScalarKind::I64:
    OS << I << "i64";
    break;
  case ScalarKind::F32:
    OS << F << "f32";
    break;
  case ScalarKind::F64:
    OS << F << "f64";
    break;
  }
  return OS.str();
}

const char *fut::binOpName(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Mod:
    return "%";
  case BinOp::Pow:
    return "**";
  case BinOp::Min:
    return "min";
  case BinOp::Max:
    return "max";
  case BinOp::LogAnd:
    return "&&";
  case BinOp::LogOr:
    return "||";
  case BinOp::Eq:
    return "==";
  case BinOp::Neq:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Leq:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Geq:
    return ">=";
  }
  assert(false && "unhandled binop");
  return "?";
}

const char *fut::unOpName(UnOp Op) {
  switch (Op) {
  case UnOp::Neg:
    return "neg";
  case UnOp::Not:
    return "!";
  case UnOp::Abs:
    return "abs";
  case UnOp::Signum:
    return "signum";
  case UnOp::Sqrt:
    return "sqrt";
  case UnOp::Exp:
    return "exp";
  case UnOp::Log:
    return "log";
  case UnOp::Sin:
    return "sin";
  case UnOp::Cos:
    return "cos";
  case UnOp::Tan:
    return "tan";
  case UnOp::Atan:
    return "atan";
  case UnOp::Floor:
    return "floor";
  }
  assert(false && "unhandled unop");
  return "?";
}

bool fut::isCompareOp(BinOp Op) {
  switch (Op) {
  case BinOp::Eq:
  case BinOp::Neq:
  case BinOp::Lt:
  case BinOp::Leq:
  case BinOp::Gt:
  case BinOp::Geq:
    return true;
  default:
    return false;
  }
}

bool fut::binOpDefinedOn(BinOp Op, ScalarKind K) {
  switch (Op) {
  case BinOp::LogAnd:
  case BinOp::LogOr:
    return K == ScalarKind::Bool;
  case BinOp::Eq:
  case BinOp::Neq:
    return true;
  case BinOp::Lt:
  case BinOp::Leq:
  case BinOp::Gt:
  case BinOp::Geq:
    return K != ScalarKind::Bool;
  case BinOp::Mod:
    return isIntKind(K);
  default:
    return K != ScalarKind::Bool;
  }
}

bool fut::unOpDefinedOn(UnOp Op, ScalarKind K) {
  switch (Op) {
  case UnOp::Not:
    return K == ScalarKind::Bool;
  case UnOp::Neg:
  case UnOp::Abs:
  case UnOp::Signum:
    return K != ScalarKind::Bool;
  case UnOp::Sqrt:
  case UnOp::Exp:
  case UnOp::Log:
  case UnOp::Sin:
  case UnOp::Cos:
  case UnOp::Tan:
  case UnOp::Atan:
  case UnOp::Floor:
    return isFloatKind(K);
  }
  return false;
}

ScalarKind fut::binOpResultKind(BinOp Op, ScalarKind K) {
  return isCompareOp(Op) ? ScalarKind::Bool : K;
}

ScalarKind fut::unOpResultKind(UnOp Op, ScalarKind K) { return K; }

namespace {

/// Truncates \p V to the representation width of kind \p K.
PrimValue normalizeInt(ScalarKind K, int64_t V) {
  if (K == ScalarKind::I32)
    return PrimValue::makeI32(static_cast<int32_t>(V));
  return PrimValue::makeI64(V);
}

PrimValue normalizeFloat(ScalarKind K, double V) {
  if (K == ScalarKind::F32)
    return PrimValue::makeF32(static_cast<float>(V));
  return PrimValue::makeF64(V);
}

/// Wrapping two's-complement arithmetic: signed overflow is undefined
/// behaviour in C++, so wrap-prone operations go through unsigned and the
/// result is truncated back to the operand kind by normalizeInt.
int64_t wrapAdd(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) +
                              static_cast<uint64_t>(B));
}
int64_t wrapSub(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) -
                              static_cast<uint64_t>(B));
}
int64_t wrapMul(int64_t A, int64_t B) {
  return static_cast<int64_t>(static_cast<uint64_t>(A) *
                              static_cast<uint64_t>(B));
}
int64_t wrapNeg(int64_t A) {
  return static_cast<int64_t>(-static_cast<uint64_t>(A));
}

/// Futhark-style floor division.  Callers must reject B == 0 and the
/// INT64_MIN / -1 overflow before calling (A / B would be UB).
int64_t floorDiv(int64_t A, int64_t B) {
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t floorMod(int64_t A, int64_t B) {
  return wrapSub(A, wrapMul(floorDiv(A, B), B));
}

/// Wrapping integer exponentiation; Exp must be non-negative.
int64_t intPow(int64_t Base, int64_t Exp) {
  int64_t R = 1;
  for (int64_t I = 0; I < Exp; ++I)
    R = wrapMul(R, Base);
  return R;
}

} // namespace

ErrorOr<PrimValue> fut::evalBinOp(BinOp Op, const PrimValue &A,
                                  const PrimValue &B) {
  if (A.kind() != B.kind())
    return CompilerError("binop operands have mismatched kinds: " + A.str() +
                         " vs " + B.str());
  ScalarKind K = A.kind();
  if (!binOpDefinedOn(Op, K))
    return CompilerError(std::string("operator ") + binOpName(Op) +
                         " undefined on " + scalarKindName(K));

  switch (Op) {
  case BinOp::LogAnd:
    return PrimValue::makeBool(A.getBool() && B.getBool());
  case BinOp::LogOr:
    return PrimValue::makeBool(A.getBool() || B.getBool());
  case BinOp::Eq:
    return PrimValue::makeBool(A == B);
  case BinOp::Neq:
    return PrimValue::makeBool(!(A == B));
  default:
    break;
  }

  if (isFloatKind(K)) {
    double X = A.getFloat(), Y = B.getFloat();
    switch (Op) {
    case BinOp::Add:
      return normalizeFloat(K, X + Y);
    case BinOp::Sub:
      return normalizeFloat(K, X - Y);
    case BinOp::Mul:
      return normalizeFloat(K, X * Y);
    case BinOp::Div:
      return normalizeFloat(K, X / Y);
    case BinOp::Pow:
      return normalizeFloat(K, std::pow(X, Y));
    case BinOp::Min:
      return normalizeFloat(K, std::fmin(X, Y));
    case BinOp::Max:
      return normalizeFloat(K, std::fmax(X, Y));
    case BinOp::Lt:
      return PrimValue::makeBool(X < Y);
    case BinOp::Leq:
      return PrimValue::makeBool(X <= Y);
    case BinOp::Gt:
      return PrimValue::makeBool(X > Y);
    case BinOp::Geq:
      return PrimValue::makeBool(X >= Y);
    default:
      break;
    }
  }

  if (isIntKind(K)) {
    int64_t X = A.getInt(), Y = B.getInt();
    switch (Op) {
    case BinOp::Add:
      return normalizeInt(K, wrapAdd(X, Y));
    case BinOp::Sub:
      return normalizeInt(K, wrapSub(X, Y));
    case BinOp::Mul:
      return normalizeInt(K, wrapMul(X, Y));
    // Faulting operations are typed runtime errors, never UB: the
    // simplifier leaves the expression unfolded when evalBinOp fails, and
    // the interpreter and gpusim surface the identical diagnostic, so
    // fold == interpreter == device on every edge case by construction.
    case BinOp::Div:
      if (Y == 0)
        return CompilerError::runtime("integer division by zero");
      if (X == INT64_MIN && Y == -1)
        return CompilerError::runtime("integer division overflow");
      return normalizeInt(K, floorDiv(X, Y));
    case BinOp::Mod:
      if (Y == 0)
        return CompilerError::runtime("integer modulo by zero");
      if (X == INT64_MIN && Y == -1)
        return CompilerError::runtime("integer modulo overflow");
      return normalizeInt(K, floorMod(X, Y));
    case BinOp::Pow:
      if (Y < 0)
        return CompilerError::runtime("negative integer exponent");
      return normalizeInt(K, intPow(X, Y));
    case BinOp::Min:
      return normalizeInt(K, X < Y ? X : Y);
    case BinOp::Max:
      return normalizeInt(K, X > Y ? X : Y);
    case BinOp::Lt:
      return PrimValue::makeBool(X < Y);
    case BinOp::Leq:
      return PrimValue::makeBool(X <= Y);
    case BinOp::Gt:
      return PrimValue::makeBool(X > Y);
    case BinOp::Geq:
      return PrimValue::makeBool(X >= Y);
    default:
      break;
    }
  }

  return CompilerError(std::string("cannot evaluate operator ") +
                       binOpName(Op) + " on " + scalarKindName(K));
}

ErrorOr<PrimValue> fut::evalUnOp(UnOp Op, const PrimValue &A) {
  ScalarKind K = A.kind();
  if (!unOpDefinedOn(Op, K))
    return CompilerError(std::string("operator ") + unOpName(Op) +
                         " undefined on " + scalarKindName(K));

  if (Op == UnOp::Not)
    return PrimValue::makeBool(!A.getBool());

  if (isIntKind(K)) {
    int64_t X = A.getInt();
    switch (Op) {
    case UnOp::Neg:
      return normalizeInt(K, wrapNeg(X));
    case UnOp::Abs:
      return normalizeInt(K, X < 0 ? wrapNeg(X) : X);
    case UnOp::Signum:
      return normalizeInt(K, X > 0 ? 1 : (X < 0 ? -1 : 0));
    default:
      break;
    }
  }

  if (isFloatKind(K)) {
    double X = A.getFloat();
    switch (Op) {
    case UnOp::Neg:
      return normalizeFloat(K, -X);
    case UnOp::Abs:
      return normalizeFloat(K, std::fabs(X));
    case UnOp::Signum:
      return normalizeFloat(K, X > 0 ? 1.0 : (X < 0 ? -1.0 : 0.0));
    case UnOp::Sqrt:
      return normalizeFloat(K, std::sqrt(X));
    case UnOp::Exp:
      return normalizeFloat(K, std::exp(X));
    case UnOp::Log:
      return normalizeFloat(K, std::log(X));
    case UnOp::Sin:
      return normalizeFloat(K, std::sin(X));
    case UnOp::Cos:
      return normalizeFloat(K, std::cos(X));
    case UnOp::Tan:
      return normalizeFloat(K, std::tan(X));
    case UnOp::Atan:
      return normalizeFloat(K, std::atan(X));
    case UnOp::Floor:
      return normalizeFloat(K, std::floor(X));
    default:
      break;
    }
  }

  return CompilerError(std::string("cannot evaluate operator ") +
                       unOpName(Op) + " on " + scalarKindName(K));
}

PrimValue fut::evalConvOp(ConvOp Op, const PrimValue &A) {
  assert(A.kind() == Op.From && "conversion from wrong kind");
  switch (Op.To) {
  case ScalarKind::Bool:
    return PrimValue::makeBool(A.asDouble() != 0.0);
  case ScalarKind::I32:
    return PrimValue::makeI32(static_cast<int32_t>(A.asInt64()));
  case ScalarKind::I64:
    return PrimValue::makeI64(A.asInt64());
  case ScalarKind::F32:
    return PrimValue::makeF32(static_cast<float>(A.asDouble()));
  case ScalarKind::F64:
    return PrimValue::makeF64(A.asDouble());
  }
  assert(false && "unhandled conversion target");
  return PrimValue();
}
