//===- Traversal.cpp - IR walking, free variables, renaming ---------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "ir/Traversal.h"

using namespace fut;

//===----------------------------------------------------------------------===//
// Operand enumeration
//===----------------------------------------------------------------------===//

namespace {

/// Calls Use on every operand of E, treating array names as variable
/// operands.  Does not descend into nested bodies or lambdas.
void visitOperands(const Exp &E, const std::function<void(const SubExp &)> &Use) {
  auto UseV = [&](const VName &N) { Use(SubExp::var(N)); };
  auto UseT = [&](const Type &T) {
    for (const Dim &D : T.shape())
      Use(D);
  };

  switch (E.kind()) {
  case ExpKind::SubExpE:
    Use(expCast<SubExpExp>(&E)->Val);
    break;
  case ExpKind::BinOpE: {
    const auto *B = expCast<BinOpExp>(&E);
    Use(B->A);
    Use(B->B);
    break;
  }
  case ExpKind::UnOpE:
    Use(expCast<UnOpExp>(&E)->A);
    break;
  case ExpKind::ConvOpE:
    Use(expCast<ConvOpExp>(&E)->A);
    break;
  case ExpKind::If: {
    const auto *I = expCast<IfExp>(&E);
    Use(I->Cond);
    for (const Type &T : I->RetTypes)
      UseT(T);
    break;
  }
  case ExpKind::Index: {
    const auto *I = expCast<IndexExp>(&E);
    UseV(I->Arr);
    for (const SubExp &S : I->Indices)
      Use(S);
    break;
  }
  case ExpKind::Apply:
    for (const SubExp &S : expCast<ApplyExp>(&E)->Args)
      Use(S);
    break;
  case ExpKind::Loop: {
    const auto *L = expCast<LoopExp>(&E);
    for (const SubExp &S : L->MergeInit)
      Use(S);
    Use(L->Bound);
    break;
  }
  case ExpKind::Update: {
    const auto *U = expCast<UpdateExp>(&E);
    UseV(U->Arr);
    for (const SubExp &S : U->Indices)
      Use(S);
    Use(U->Value);
    break;
  }
  case ExpKind::Iota:
    Use(expCast<IotaExp>(&E)->N);
    break;
  case ExpKind::Replicate: {
    const auto *R = expCast<ReplicateExp>(&E);
    Use(R->N);
    Use(R->Val);
    UseT(R->ValType);
    break;
  }
  case ExpKind::Rearrange:
    UseV(expCast<RearrangeExp>(&E)->Arr);
    break;
  case ExpKind::Reshape: {
    const auto *R = expCast<ReshapeExp>(&E);
    for (const SubExp &S : R->NewShape)
      Use(S);
    UseV(R->Arr);
    break;
  }
  case ExpKind::Concat:
    for (const VName &N : expCast<ConcatExp>(&E)->Arrays)
      UseV(N);
    break;
  case ExpKind::Copy:
    UseV(expCast<CopyExp>(&E)->Arr);
    break;
  case ExpKind::Slice: {
    const auto *S = expCast<SliceExp>(&E);
    UseV(S->Arr);
    Use(S->Offset);
    Use(S->Len);
    Use(S->Stride);
    break;
  }
  case ExpKind::Map: {
    const auto *M = expCast<MapExp>(&E);
    Use(M->Width);
    for (const VName &N : M->Arrays)
      UseV(N);
    break;
  }
  case ExpKind::Reduce: {
    const auto *R = expCast<ReduceExp>(&E);
    Use(R->Width);
    for (const SubExp &S : R->Neutral)
      Use(S);
    for (const VName &N : R->Arrays)
      UseV(N);
    break;
  }
  case ExpKind::Scan: {
    const auto *S = expCast<ScanExp>(&E);
    Use(S->Width);
    for (const SubExp &N : S->Neutral)
      Use(N);
    for (const VName &N : S->Arrays)
      UseV(N);
    break;
  }
  case ExpKind::Stream: {
    const auto *S = expCast<StreamExp>(&E);
    Use(S->Width);
    for (const SubExp &N : S->AccInit)
      Use(N);
    for (const VName &N : S->Arrays)
      UseV(N);
    break;
  }
  case ExpKind::ReduceByIndex: {
    const auto *R = expCast<ReduceByIndexExp>(&E);
    Use(R->Width);
    UseV(R->Dest);
    Use(R->Neutral);
    UseV(R->IndexArr);
    for (const VName &N : R->ValueArrs)
      UseV(N);
    break;
  }
  case ExpKind::Kernel: {
    const auto *K = expCast<KernelExp>(&E);
    for (const SubExp &D : K->GridDims)
      Use(D);
    if (K->isSegmented())
      Use(K->SegSize);
    if (K->Op == KernelExp::OpKind::SegHist) {
      UseV(K->HistDest);
      Use(K->HistWidth);
    }
    for (const SubExp &N : K->Neutral)
      Use(N);
    for (const KernelExp::KInput &In : K->Inputs) {
      UseV(In.Arr);
      UseT(In.Ty);
    }
    for (const Type &T : K->RetTypes)
      UseT(T);
    break;
  }
  }
}

} // namespace

void fut::forEachFreeOperand(const Exp &E,
                             const std::function<void(const SubExp &)> &Fn) {
  visitOperands(E, Fn);
}

void fut::forEachChildBody(Exp &E, const std::function<void(Body &)> &Fn) {
  switch (E.kind()) {
  case ExpKind::If: {
    auto *I = expCast<IfExp>(&E);
    Fn(I->Then);
    Fn(I->Else);
    break;
  }
  case ExpKind::Loop:
    Fn(expCast<LoopExp>(&E)->LoopBody);
    break;
  case ExpKind::Map:
    Fn(expCast<MapExp>(&E)->Fn.B);
    break;
  case ExpKind::Reduce:
    Fn(expCast<ReduceExp>(&E)->Fn.B);
    break;
  case ExpKind::Scan:
    Fn(expCast<ScanExp>(&E)->Fn.B);
    break;
  case ExpKind::Stream: {
    auto *S = expCast<StreamExp>(&E);
    Fn(S->ReduceFn.B);
    Fn(S->FoldFn.B);
    break;
  }
  case ExpKind::ReduceByIndex: {
    auto *R = expCast<ReduceByIndexExp>(&E);
    Fn(R->CombineFn.B);
    Fn(R->ValueFn.B);
    break;
  }
  case ExpKind::Kernel: {
    auto *K = expCast<KernelExp>(&E);
    Fn(K->ReduceFn.B);
    Fn(K->ThreadBody);
    break;
  }
  default:
    break;
  }
}

void fut::forEachChildBody(const Exp &E,
                           const std::function<void(const Body &)> &Fn) {
  forEachChildBody(const_cast<Exp &>(E),
                   [&](Body &B) { Fn(const_cast<const Body &>(B)); });
}

//===----------------------------------------------------------------------===//
// Free variables
//===----------------------------------------------------------------------===//

namespace {

struct FreeVarScan {
  NameSet Free;
  NameSet Bound;

  void use(const VName &N) {
    if (!Bound.count(N))
      Free.insert(N);
  }
  void use(const SubExp &S) {
    if (S.isVar())
      use(S.getVar());
  }
  void useType(const Type &T) {
    for (const Dim &D : T.shape())
      use(D);
  }
  void bindParams(const std::vector<Param> &Ps) {
    for (const Param &P : Ps)
      Bound.insert(P.Name);
    for (const Param &P : Ps)
      useType(P.Ty);
  }

  void scanExp(const Exp &E) {
    visitOperands(E, [&](const SubExp &S) { use(S); });
    switch (E.kind()) {
    case ExpKind::If: {
      const auto *I = expCast<IfExp>(&E);
      scanBody(I->Then);
      scanBody(I->Else);
      break;
    }
    case ExpKind::Loop: {
      const auto *L = expCast<LoopExp>(&E);
      Bound.insert(L->IndexVar);
      bindParams(L->MergeParams);
      scanBody(L->LoopBody);
      break;
    }
    case ExpKind::Map:
      scanLambda(expCast<MapExp>(&E)->Fn);
      break;
    case ExpKind::Reduce:
      scanLambda(expCast<ReduceExp>(&E)->Fn);
      break;
    case ExpKind::Scan:
      scanLambda(expCast<ScanExp>(&E)->Fn);
      break;
    case ExpKind::Stream: {
      const auto *S = expCast<StreamExp>(&E);
      if (S->Form == StreamExp::FormKind::Red)
        scanLambda(S->ReduceFn);
      scanLambda(S->FoldFn);
      break;
    }
    case ExpKind::ReduceByIndex: {
      const auto *R = expCast<ReduceByIndexExp>(&E);
      scanLambda(R->CombineFn);
      scanLambda(R->ValueFn);
      break;
    }
    case ExpKind::Kernel: {
      const auto *K = expCast<KernelExp>(&E);
      for (const VName &N : K->ThreadIndices)
        Bound.insert(N);
      if (K->isSegmented())
        Bound.insert(K->SegIndex);
      if (K->usesReduceFn())
        scanLambda(K->ReduceFn);
      scanBody(K->ThreadBody);
      break;
    }
    default:
      break;
    }
  }

  void scanBody(const Body &B) {
    for (const Stm &S : B.Stms) {
      scanExp(*S.E);
      for (const Param &P : S.Pat)
        Bound.insert(P.Name);
      for (const Param &P : S.Pat)
        useType(P.Ty);
    }
    for (const SubExp &S : B.Result)
      use(S);
  }

  void scanLambda(const Lambda &L) {
    bindParams(L.Params);
    for (const Type &T : L.RetTypes)
      useType(T);
    scanBody(L.B);
  }
};

} // namespace

NameSet fut::freeVarsInExp(const Exp &E) {
  FreeVarScan Scan;
  Scan.scanExp(E);
  return std::move(Scan.Free);
}

NameSet fut::freeVarsInBody(const Body &B) {
  FreeVarScan Scan;
  Scan.scanBody(B);
  return std::move(Scan.Free);
}

NameSet fut::freeVarsInLambda(const Lambda &L) {
  FreeVarScan Scan;
  Scan.scanLambda(L);
  return std::move(Scan.Free);
}

//===----------------------------------------------------------------------===//
// Substitution
//===----------------------------------------------------------------------===//

namespace {

struct Subst {
  const NameMap<SubExp> &M;

  SubExp sub(const SubExp &S) const {
    if (S.isVar()) {
      auto It = M.find(S.getVar());
      if (It != M.end())
        return It->second;
    }
    return S;
  }

  VName subV(const VName &N) const {
    auto It = M.find(N);
    if (It == M.end())
      return N;
    assert(It->second.isVar() &&
           "variable-only position substituted by a constant");
    return It->second.getVar();
  }

  Type subT(const Type &T) const {
    std::vector<Dim> Shape;
    Shape.reserve(T.shape().size());
    for (const Dim &D : T.shape())
      Shape.push_back(sub(D));
    Type R(T.elemKind(), std::move(Shape));
    return T.isUnique() ? R.asUnique() : R;
  }

  void params(std::vector<Param> &Ps) const {
    for (Param &P : Ps)
      P.Ty = subT(P.Ty);
  }

  void types(std::vector<Type> &Ts) const {
    for (Type &T : Ts)
      T = subT(T);
  }

  void operandsOnly(Exp &E) const {
    switch (E.kind()) {
    case ExpKind::SubExpE: {
      auto *X = expCast<SubExpExp>(&E);
      X->Val = sub(X->Val);
      break;
    }
    case ExpKind::BinOpE: {
      auto *X = expCast<BinOpExp>(&E);
      X->A = sub(X->A);
      X->B = sub(X->B);
      break;
    }
    case ExpKind::UnOpE: {
      auto *X = expCast<UnOpExp>(&E);
      X->A = sub(X->A);
      break;
    }
    case ExpKind::ConvOpE: {
      auto *X = expCast<ConvOpExp>(&E);
      X->A = sub(X->A);
      break;
    }
    case ExpKind::If: {
      auto *X = expCast<IfExp>(&E);
      X->Cond = sub(X->Cond);
      types(X->RetTypes);
      break;
    }
    case ExpKind::Index: {
      auto *X = expCast<IndexExp>(&E);
      X->Arr = subV(X->Arr);
      for (SubExp &S : X->Indices)
        S = sub(S);
      break;
    }
    case ExpKind::Apply: {
      auto *X = expCast<ApplyExp>(&E);
      for (SubExp &S : X->Args)
        S = sub(S);
      break;
    }
    case ExpKind::Loop: {
      auto *X = expCast<LoopExp>(&E);
      for (SubExp &S : X->MergeInit)
        S = sub(S);
      X->Bound = sub(X->Bound);
      params(X->MergeParams);
      break;
    }
    case ExpKind::Update: {
      auto *X = expCast<UpdateExp>(&E);
      X->Arr = subV(X->Arr);
      for (SubExp &S : X->Indices)
        S = sub(S);
      X->Value = sub(X->Value);
      break;
    }
    case ExpKind::Iota: {
      auto *X = expCast<IotaExp>(&E);
      X->N = sub(X->N);
      break;
    }
    case ExpKind::Replicate: {
      auto *X = expCast<ReplicateExp>(&E);
      X->N = sub(X->N);
      X->Val = sub(X->Val);
      X->ValType = subT(X->ValType);
      break;
    }
    case ExpKind::Rearrange: {
      auto *X = expCast<RearrangeExp>(&E);
      X->Arr = subV(X->Arr);
      break;
    }
    case ExpKind::Reshape: {
      auto *X = expCast<ReshapeExp>(&E);
      for (SubExp &S : X->NewShape)
        S = sub(S);
      X->Arr = subV(X->Arr);
      break;
    }
    case ExpKind::Concat: {
      auto *X = expCast<ConcatExp>(&E);
      for (VName &N : X->Arrays)
        N = subV(N);
      break;
    }
    case ExpKind::Copy: {
      auto *X = expCast<CopyExp>(&E);
      X->Arr = subV(X->Arr);
      break;
    }
    case ExpKind::Slice: {
      auto *X = expCast<SliceExp>(&E);
      X->Arr = subV(X->Arr);
      X->Offset = sub(X->Offset);
      X->Len = sub(X->Len);
      X->Stride = sub(X->Stride);
      break;
    }
    case ExpKind::Map: {
      auto *X = expCast<MapExp>(&E);
      X->Width = sub(X->Width);
      for (VName &N : X->Arrays)
        N = subV(N);
      break;
    }
    case ExpKind::Reduce: {
      auto *X = expCast<ReduceExp>(&E);
      X->Width = sub(X->Width);
      for (SubExp &S : X->Neutral)
        S = sub(S);
      for (VName &N : X->Arrays)
        N = subV(N);
      break;
    }
    case ExpKind::Scan: {
      auto *X = expCast<ScanExp>(&E);
      X->Width = sub(X->Width);
      for (SubExp &S : X->Neutral)
        S = sub(S);
      for (VName &N : X->Arrays)
        N = subV(N);
      break;
    }
    case ExpKind::Stream: {
      auto *X = expCast<StreamExp>(&E);
      X->Width = sub(X->Width);
      for (SubExp &S : X->AccInit)
        S = sub(S);
      for (VName &N : X->Arrays)
        N = subV(N);
      break;
    }
    case ExpKind::ReduceByIndex: {
      auto *X = expCast<ReduceByIndexExp>(&E);
      X->Width = sub(X->Width);
      X->Dest = subV(X->Dest);
      X->Neutral = sub(X->Neutral);
      X->IndexArr = subV(X->IndexArr);
      for (VName &N : X->ValueArrs)
        N = subV(N);
      break;
    }
    case ExpKind::Kernel: {
      auto *X = expCast<KernelExp>(&E);
      for (SubExp &D : X->GridDims)
        D = sub(D);
      X->SegSize = sub(X->SegSize);
      if (X->Op == KernelExp::OpKind::SegHist) {
        X->HistDest = subV(X->HistDest);
        X->HistWidth = sub(X->HistWidth);
      }
      for (SubExp &S : X->Neutral)
        S = sub(S);
      for (KernelExp::KInput &In : X->Inputs) {
        In.Arr = subV(In.Arr);
        In.Ty = subT(In.Ty);
      }
      types(X->RetTypes);
      break;
    }
    }
  }

  void exp(Exp &E) const {
    operandsOnly(E);
    switch (E.kind()) {
    case ExpKind::If: {
      auto *X = expCast<IfExp>(&E);
      body(X->Then);
      body(X->Else);
      break;
    }
    case ExpKind::Loop:
      body(expCast<LoopExp>(&E)->LoopBody);
      break;
    case ExpKind::Map:
      lambda(expCast<MapExp>(&E)->Fn);
      break;
    case ExpKind::Reduce:
      lambda(expCast<ReduceExp>(&E)->Fn);
      break;
    case ExpKind::Scan:
      lambda(expCast<ScanExp>(&E)->Fn);
      break;
    case ExpKind::Stream: {
      auto *X = expCast<StreamExp>(&E);
      lambda(X->ReduceFn);
      lambda(X->FoldFn);
      break;
    }
    case ExpKind::ReduceByIndex: {
      auto *X = expCast<ReduceByIndexExp>(&E);
      lambda(X->CombineFn);
      lambda(X->ValueFn);
      break;
    }
    case ExpKind::Kernel: {
      auto *X = expCast<KernelExp>(&E);
      lambda(X->ReduceFn);
      body(X->ThreadBody);
      break;
    }
    default:
      break;
    }
  }

  void body(Body &B) const {
    for (Stm &S : B.Stms) {
      exp(*S.E);
      params(S.Pat);
    }
    for (SubExp &S : B.Result)
      S = sub(S);
  }

  void lambda(Lambda &L) const {
    params(L.Params);
    types(L.RetTypes);
    body(L.B);
  }
};

} // namespace

void fut::substituteInBody(const NameMap<SubExp> &M, Body &B) {
  if (M.empty())
    return;
  Subst{M}.body(B);
}

void fut::substituteInExp(const NameMap<SubExp> &M, Exp &E) {
  if (M.empty())
    return;
  Subst{M}.exp(E);
}

void fut::substituteInLambda(const NameMap<SubExp> &M, Lambda &L) {
  if (M.empty())
    return;
  Subst{M}.lambda(L);
}

Type fut::substituteInType(const NameMap<SubExp> &M, const Type &T) {
  return Subst{M}.subT(T);
}

//===----------------------------------------------------------------------===//
// Alpha-renaming
//===----------------------------------------------------------------------===//

namespace {

struct Renamer {
  NameSource &Names;

  void freshenParams(std::vector<Param> &Ps, NameMap<SubExp> &Map) {
    for (Param &P : Ps) {
      VName Fresh = Names.freshFrom(P.Name);
      Map[P.Name] = SubExp::var(Fresh);
      P.Name = Fresh;
    }
    for (Param &P : Ps)
      P.Ty = Subst{Map}.subT(P.Ty);
  }

  void renameExp(Exp &E, NameMap<SubExp> Map) {
    Subst{Map}.operandsOnly(E);
    switch (E.kind()) {
    case ExpKind::If: {
      auto *X = expCast<IfExp>(&E);
      renameBodyIn(X->Then, Map);
      renameBodyIn(X->Else, Map);
      break;
    }
    case ExpKind::Loop: {
      auto *X = expCast<LoopExp>(&E);
      VName FreshIdx = Names.freshFrom(X->IndexVar);
      Map[X->IndexVar] = SubExp::var(FreshIdx);
      X->IndexVar = FreshIdx;
      freshenParams(X->MergeParams, Map);
      renameBodyIn(X->LoopBody, Map);
      break;
    }
    case ExpKind::Map:
      renameLambdaIn(expCast<MapExp>(&E)->Fn, Map);
      break;
    case ExpKind::Reduce:
      renameLambdaIn(expCast<ReduceExp>(&E)->Fn, Map);
      break;
    case ExpKind::Scan:
      renameLambdaIn(expCast<ScanExp>(&E)->Fn, Map);
      break;
    case ExpKind::Stream: {
      auto *X = expCast<StreamExp>(&E);
      renameLambdaIn(X->ReduceFn, Map);
      renameLambdaIn(X->FoldFn, Map);
      break;
    }
    case ExpKind::ReduceByIndex: {
      auto *X = expCast<ReduceByIndexExp>(&E);
      renameLambdaIn(X->CombineFn, Map);
      renameLambdaIn(X->ValueFn, Map);
      break;
    }
    case ExpKind::Kernel: {
      auto *X = expCast<KernelExp>(&E);
      for (VName &N : X->ThreadIndices) {
        VName Fresh = Names.freshFrom(N);
        Map[N] = SubExp::var(Fresh);
        N = Fresh;
      }
      if (X->isSegmented()) {
        VName Fresh = Names.freshFrom(X->SegIndex);
        Map[X->SegIndex] = SubExp::var(Fresh);
        X->SegIndex = Fresh;
      }
      renameLambdaIn(X->ReduceFn, Map);
      renameBodyIn(X->ThreadBody, Map);
      break;
    }
    default:
      break;
    }
  }

  void renameBodyIn(Body &B, NameMap<SubExp> Map) {
    for (Stm &S : B.Stms) {
      renameExp(*S.E, Map);
      for (Param &P : S.Pat) {
        VName Fresh = Names.freshFrom(P.Name);
        Map[P.Name] = SubExp::var(Fresh);
        P.Name = Fresh;
      }
      for (Param &P : S.Pat)
        P.Ty = Subst{Map}.subT(P.Ty);
    }
    for (SubExp &S : B.Result)
      S = Subst{Map}.sub(S);
  }

  void renameLambdaIn(Lambda &L, NameMap<SubExp> Map) {
    freshenParams(L.Params, Map);
    for (Type &T : L.RetTypes)
      T = Subst{Map}.subT(T);
    renameBodyIn(L.B, Map);
  }
};

} // namespace

Body fut::renameBody(const Body &B, NameSource &Names,
                     const NameMap<SubExp> &Outer) {
  Body Out = cloneBody(B);
  Renamer{Names}.renameBodyIn(Out, Outer);
  return Out;
}

Lambda fut::renameLambda(const Lambda &L, NameSource &Names,
                         const NameMap<SubExp> &Outer) {
  Lambda Out = cloneLambda(L);
  Renamer{Names}.renameLambdaIn(Out, Outer);
  return Out;
}

void fut::uniquifyProgram(Program &P, NameSource &Names) {
  for (FunDef &F : P.Funs) {
    NameMap<SubExp> Map;
    Renamer R{Names};
    R.freshenParams(F.Params, Map);
    for (Type &T : F.RetTypes)
      T = Subst{Map}.subT(T);
    R.renameBodyIn(F.FBody, Map);
  }
}

//===----------------------------------------------------------------------===//
// Structural hashing for CSE
//===----------------------------------------------------------------------===//

bool fut::expIsCSEable(const Exp &E) {
  switch (E.kind()) {
  case ExpKind::SubExpE:
  case ExpKind::BinOpE:
  case ExpKind::UnOpE:
  case ExpKind::ConvOpE:
  case ExpKind::Index:
  case ExpKind::Iota:
  case ExpKind::Replicate:
  case ExpKind::Rearrange:
  case ExpKind::Reshape:
  case ExpKind::Concat:
  case ExpKind::Slice:
    return true;
  default:
    return false;
  }
}

size_t fut::hashExpShallow(const Exp &E) {
  size_t Seed = std::hash<int>()(static_cast<int>(E.kind()));
  visitOperands(E, [&](const SubExp &S) { hashCombine(Seed, S.hash()); });
  // Kind-specific non-operand payload.
  switch (E.kind()) {
  case ExpKind::BinOpE:
    hashCombine(Seed, static_cast<size_t>(expCast<BinOpExp>(&E)->Op));
    break;
  case ExpKind::UnOpE:
    hashCombine(Seed, static_cast<size_t>(expCast<UnOpExp>(&E)->Op));
    break;
  case ExpKind::ConvOpE: {
    const auto *C = expCast<ConvOpExp>(&E);
    hashCombine(Seed, static_cast<size_t>(C->Op.From));
    hashCombine(Seed, static_cast<size_t>(C->Op.To));
    break;
  }
  case ExpKind::Iota:
    hashCombine(Seed, static_cast<size_t>(expCast<IotaExp>(&E)->Elem));
    break;
  case ExpKind::Rearrange:
    for (int P : expCast<RearrangeExp>(&E)->Perm)
      hashCombine(Seed, std::hash<int>()(P));
    break;
  default:
    break;
  }
  return Seed;
}

bool fut::expsStructurallyEqual(const Exp &A, const Exp &B) {
  if (A.kind() != B.kind())
    return false;
  if (!expIsCSEable(A) || !expIsCSEable(B))
    return false;

  // Compare operand sequences.
  std::vector<SubExp> OpsA, OpsB;
  visitOperands(A, [&](const SubExp &S) { OpsA.push_back(S); });
  visitOperands(B, [&](const SubExp &S) { OpsB.push_back(S); });
  if (OpsA != OpsB)
    return false;

  switch (A.kind()) {
  case ExpKind::BinOpE:
    return expCast<BinOpExp>(&A)->Op == expCast<BinOpExp>(&B)->Op;
  case ExpKind::UnOpE:
    return expCast<UnOpExp>(&A)->Op == expCast<UnOpExp>(&B)->Op;
  case ExpKind::ConvOpE: {
    const auto *CA = expCast<ConvOpExp>(&A);
    const auto *CB = expCast<ConvOpExp>(&B);
    return CA->Op.From == CB->Op.From && CA->Op.To == CB->Op.To;
  }
  case ExpKind::Iota:
    return expCast<IotaExp>(&A)->Elem == expCast<IotaExp>(&B)->Elem;
  case ExpKind::Rearrange:
    return expCast<RearrangeExp>(&A)->Perm == expCast<RearrangeExp>(&B)->Perm;
  default:
    return true;
  }
}
