//===- IR.h - The core ANF intermediate representation ----------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The core language of Fig 1 in administrative normal form: a Body is a
/// sequence of bindings (each binding a multi-name pattern to one Exp)
/// followed by a result vector; expression operands are SubExps (constants
/// or variables).  SOACs take and produce several arrays, as in the paper's
/// compiler IR.  KernelExp is the flattened form produced by kernel
/// extraction (Section 5): a perfect map nest with an optional segmented
/// reduction/scan at the innermost level, which the GPU simulator executes
/// directly.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_IR_IR_H
#define FUTHARKCC_IR_IR_H

#include "ir/Type.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace fut {

class Exp;
using ExpPtr = std::unique_ptr<Exp>;

/// One binding: let (p1, ..., pn) = e.
struct Stm {
  std::vector<Param> Pat;
  ExpPtr E;

  Stm() = default;
  Stm(std::vector<Param> Pat, ExpPtr E);
  Stm(const Stm &Other);
  Stm(Stm &&) = default;
  Stm &operator=(const Stm &Other);
  Stm &operator=(Stm &&) = default;
};

/// A sequence of bindings and a multi-value result.
struct Body {
  std::vector<Stm> Stms;
  std::vector<SubExp> Result;

  Body() = default;
  Body(std::vector<Stm> Stms, std::vector<SubExp> Result)
      : Stms(std::move(Stms)), Result(std::move(Result)) {}
};

/// An anonymous first-order function (the argument of a SOAC).
struct Lambda {
  std::vector<Param> Params;
  Body B;
  std::vector<Type> RetTypes;

  Lambda() = default;
  Lambda(std::vector<Param> Params, Body B, std::vector<Type> RetTypes)
      : Params(std::move(Params)), B(std::move(B)),
        RetTypes(std::move(RetTypes)) {}
};

/// Discriminator for the Exp hierarchy (LLVM-style kind-based RTTI).
enum class ExpKind : uint8_t {
  SubExpE,
  BinOpE,
  UnOpE,
  ConvOpE,
  If,
  Index,
  Apply,
  Loop,
  Update,
  Iota,
  Replicate,
  Rearrange,
  Reshape,
  Concat,
  Copy,
  Slice,
  Map,
  Reduce,
  Scan,
  Stream,
  ReduceByIndex,
  Kernel,
};

const char *expKindName(ExpKind K);

/// Base class of all expressions.
class Exp {
  const ExpKind Kind;

public:
  SrcLoc Loc;

  explicit Exp(ExpKind K) : Kind(K) {}
  virtual ~Exp();

  ExpKind kind() const { return Kind; }
  virtual ExpPtr clone() const = 0;

  /// True for the SOACs of Section 2: map, reduce, scan and streams.
  bool isSOAC() const {
    switch (Kind) {
    case ExpKind::Map:
    case ExpKind::Reduce:
    case ExpKind::Scan:
    case ExpKind::Stream:
    case ExpKind::ReduceByIndex:
      return true;
    default:
      return false;
    }
  }
};

template <typename T> T *expCast(Exp *E) {
  assert(E && E->kind() == T::ClassKind && "expCast to wrong kind");
  return static_cast<T *>(E);
}
template <typename T> const T *expCast(const Exp *E) {
  assert(E && E->kind() == T::ClassKind && "expCast to wrong kind");
  return static_cast<const T *>(E);
}
template <typename T> T *expDynCast(Exp *E) {
  return (E && E->kind() == T::ClassKind) ? static_cast<T *>(E) : nullptr;
}
template <typename T> const T *expDynCast(const Exp *E) {
  return (E && E->kind() == T::ClassKind) ? static_cast<const T *>(E)
                                          : nullptr;
}

/// A bare operand: constant or variable copy-by-reference.
class SubExpExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::SubExpE;
  SubExp Val;

  explicit SubExpExp(SubExp Val) : Exp(ClassKind), Val(std::move(Val)) {}
  ExpPtr clone() const override;
};

class BinOpExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::BinOpE;
  BinOp Op;
  SubExp A, B;

  BinOpExp(BinOp Op, SubExp A, SubExp B)
      : Exp(ClassKind), Op(Op), A(std::move(A)), B(std::move(B)) {}
  ExpPtr clone() const override;
};

class UnOpExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::UnOpE;
  UnOp Op;
  SubExp A;

  UnOpExp(UnOp Op, SubExp A) : Exp(ClassKind), Op(Op), A(std::move(A)) {}
  ExpPtr clone() const override;
};

class ConvOpExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::ConvOpE;
  ConvOp Op;
  SubExp A;

  ConvOpExp(ConvOp Op, SubExp A) : Exp(ClassKind), Op(Op), A(std::move(A)) {}
  ExpPtr clone() const override;
};

/// if c then e1 else e2, producing RetTypes.size() values.
class IfExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::If;
  SubExp Cond;
  Body Then, Else;
  std::vector<Type> RetTypes;

  IfExp(SubExp Cond, Body Then, Body Else, std::vector<Type> RetTypes)
      : Exp(ClassKind), Cond(std::move(Cond)), Then(std::move(Then)),
        Else(std::move(Else)), RetTypes(std::move(RetTypes)) {}
  ExpPtr clone() const override;
};

/// a[i1, ..., ik] — a full scalar read when k equals the rank of a, a slice
/// (which aliases a, cf. ALIAS-SLICEARRAY) when k is smaller.
class IndexExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Index;
  VName Arr;
  std::vector<SubExp> Indices;

  IndexExp(VName Arr, std::vector<SubExp> Indices)
      : Exp(ClassKind), Arr(std::move(Arr)), Indices(std::move(Indices)) {}
  ExpPtr clone() const override;
};

/// Call of a named top-level function.
class ApplyExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Apply;
  std::string Func;
  std::vector<SubExp> Args;

  ApplyExp(std::string Func, std::vector<SubExp> Args)
      : Exp(ClassKind), Func(std::move(Func)), Args(std::move(Args)) {}
  ExpPtr clone() const override;
};

/// loop (p1 = a1, ..., pn = an) for i < w do body — sequential semantics,
/// equivalent to the tail-recursive function of Fig 2.
class LoopExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Loop;
  std::vector<Param> MergeParams;
  std::vector<SubExp> MergeInit;
  VName IndexVar;
  SubExp Bound;
  Body LoopBody;

  LoopExp(std::vector<Param> MergeParams, std::vector<SubExp> MergeInit,
          VName IndexVar, SubExp Bound, Body LoopBody)
      : Exp(ClassKind), MergeParams(std::move(MergeParams)),
        MergeInit(std::move(MergeInit)), IndexVar(std::move(IndexVar)),
        Bound(std::move(Bound)), LoopBody(std::move(LoopBody)) {}
  ExpPtr clone() const override;
};

/// a with [i1, ..., ik] <- v — the in-place update of Section 3, consuming a.
class UpdateExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Update;
  VName Arr;
  std::vector<SubExp> Indices;
  SubExp Value;

  UpdateExp(VName Arr, std::vector<SubExp> Indices, SubExp Value)
      : Exp(ClassKind), Arr(std::move(Arr)), Indices(std::move(Indices)),
        Value(std::move(Value)) {}
  ExpPtr clone() const override;
};

/// iota n = [0, 1, ..., n-1] of the given integer kind.
class IotaExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Iota;
  SubExp N;
  ScalarKind Elem;

  IotaExp(SubExp N, ScalarKind Elem = ScalarKind::I32)
      : Exp(ClassKind), N(std::move(N)), Elem(Elem) {}
  ExpPtr clone() const override;
};

/// replicate n v = [v, ..., v] (n copies); v may itself be an array.
class ReplicateExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Replicate;
  SubExp N;
  SubExp Val;
  Type ValType; ///< Type of Val, so the result type is known locally.

  ReplicateExp(SubExp N, SubExp Val, Type ValType)
      : Exp(ClassKind), N(std::move(N)), Val(std::move(Val)),
        ValType(std::move(ValType)) {}
  ExpPtr clone() const override;
};

/// rearrange (k0, ..., k_{r-1}) a — reorder dimensions by a static
/// permutation; transpose a is rearrange (1,0,...).
class RearrangeExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Rearrange;
  std::vector<int> Perm;
  VName Arr;

  RearrangeExp(std::vector<int> Perm, VName Arr)
      : Exp(ClassKind), Perm(std::move(Perm)), Arr(std::move(Arr)) {}
  ExpPtr clone() const override;
};

/// reshape (d1, ..., dk) a — same elements, new regular shape.
class ReshapeExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Reshape;
  std::vector<SubExp> NewShape;
  VName Arr;

  ReshapeExp(std::vector<SubExp> NewShape, VName Arr)
      : Exp(ClassKind), NewShape(std::move(NewShape)), Arr(std::move(Arr)) {}
  ExpPtr clone() const override;
};

/// concat a1 ... ak along the outer dimension.
class ConcatExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Concat;
  std::vector<VName> Arrays;

  explicit ConcatExp(std::vector<VName> Arrays)
      : Exp(ClassKind), Arrays(std::move(Arrays)) {}
  ExpPtr clone() const override;
};

/// slice a off len stride — the rows off, off+stride, ..., (len of them);
/// aliases a.  Introduced by the flattener to hand stream chunks to device
/// threads (with stride = the chunk count, so that simultaneous accesses
/// from consecutive chunks coalesce); also the bulk form of
/// ALIAS-SLICEARRAY with stride 1.
class SliceExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Slice;
  VName Arr;
  SubExp Offset;
  SubExp Len;
  SubExp Stride;

  SliceExp(VName Arr, SubExp Offset, SubExp Len,
           SubExp Stride = SubExp::constant(PrimValue::makeI32(1)))
      : Exp(ClassKind), Arr(std::move(Arr)), Offset(std::move(Offset)),
        Len(std::move(Len)), Stride(std::move(Stride)) {}
  ExpPtr clone() const override;
};

/// copy a — a fresh, alias-free duplicate (used to satisfy uniqueness).
class CopyExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Copy;
  VName Arr;

  explicit CopyExp(VName Arr) : Exp(ClassKind), Arr(std::move(Arr)) {}
  ExpPtr clone() const override;
};

/// map f a1 ... aq over arrays of outer size Width.
class MapExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Map;
  SubExp Width;
  Lambda Fn;
  std::vector<VName> Arrays;

  MapExp(SubExp Width, Lambda Fn, std::vector<VName> Arrays)
      : Exp(ClassKind), Width(std::move(Width)), Fn(std::move(Fn)),
        Arrays(std::move(Arrays)) {}
  ExpPtr clone() const override;
};

/// reduce f (n1, ..., nk) a1 ... ak — f must be associative (a programmer
/// obligation, as in the paper); Commutative additionally promises
/// commutativity, enabling more scheduling freedom in the simulator.
class ReduceExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Reduce;
  SubExp Width;
  Lambda Fn;
  std::vector<SubExp> Neutral;
  std::vector<VName> Arrays;
  bool Commutative;

  ReduceExp(SubExp Width, Lambda Fn, std::vector<SubExp> Neutral,
            std::vector<VName> Arrays, bool Commutative = false)
      : Exp(ClassKind), Width(std::move(Width)), Fn(std::move(Fn)),
        Neutral(std::move(Neutral)), Arrays(std::move(Arrays)),
        Commutative(Commutative) {}
  ExpPtr clone() const override;
};

/// scan f (n1, ..., nk) a1 ... ak — inclusive prefix sums.
class ScanExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Scan;
  SubExp Width;
  Lambda Fn;
  std::vector<SubExp> Neutral;
  std::vector<VName> Arrays;

  ScanExp(SubExp Width, Lambda Fn, std::vector<SubExp> Neutral,
          std::vector<VName> Arrays)
      : Exp(ClassKind), Width(std::move(Width)), Fn(std::move(Fn)),
        Neutral(std::move(Neutral)), Arrays(std::move(Arrays)) {}
  ExpPtr clone() const override;
};

/// reduce_by_index dest f ne is vs1 ... vsq — the generalized histogram
/// SOAC (diku-dk/futhark-cgo20).  Dest is a one-dimensional accumulator of
/// Width elements, consumed in place; IndexArr and the value arrays share
/// an outer size n.  For every j in ascending order with
/// 0 <= is[j] < Width:
///   dest[is[j]] = CombineFn(dest[is[j]], ValueFn(vs1[j], ..., vsq[j]))
/// Out-of-bounds indices are skipped (not an error) on every execution
/// path, so the compiled and interpreted results agree bit for bit.
/// CombineFn must be associative and commutative with neutral element
/// Neutral (a programmer obligation, as for reduce); ValueFn starts as the
/// identity and grows by fusing producer maps into it.
class ReduceByIndexExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::ReduceByIndex;
  SubExp Width;   ///< Number of bins (outer size of Dest).
  VName Dest;     ///< The consumed destination array, type [Width]t.
  Lambda CombineFn; ///< (t, t) -> t, associative + commutative.
  SubExp Neutral; ///< Neutral element of CombineFn, type t.
  Lambda ValueFn; ///< (row(vs1), ..., row(vsq)) -> t.
  VName IndexArr; ///< [n] of an integer kind: the bin per element.
  std::vector<VName> ValueArrs; ///< q arrays of outer size n.

  ReduceByIndexExp(SubExp Width, VName Dest, Lambda CombineFn, SubExp Neutral,
                   Lambda ValueFn, VName IndexArr, std::vector<VName> ValueArrs)
      : Exp(ClassKind), Width(std::move(Width)), Dest(std::move(Dest)),
        CombineFn(std::move(CombineFn)), Neutral(std::move(Neutral)),
        ValueFn(std::move(ValueFn)), IndexArr(std::move(IndexArr)),
        ValueArrs(std::move(ValueArrs)) {}
  ExpPtr clone() const override;
};

/// The streaming SOACs of Section 4 (Fig 8), unified in one node.
///
/// The fold function's parameter convention is:
///   params = [ chunkSize : i64 ] ++ accParams (NumAccs) ++ chunkArrayParams
/// where each chunk array param has outer dimension chunkSize.  Its results
/// are NumAccs accumulator values followed by per-chunk mapped arrays (whose
/// concatenation across chunks forms the stream's array results).
///
///  - Par ("stream_map"):   NumAccs == 0; chunks processed in parallel.
///  - Red ("stream_red"):   chunks in parallel; accumulator results combined
///                          across chunks with ReduceFn (associative).
///  - Seq ("stream_seq"):   chunks in order; accumulator threads through.
class StreamExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Stream;
  enum class FormKind : uint8_t { Par, Red, Seq };

  FormKind Form;
  SubExp Width;
  Lambda ReduceFn; ///< Only meaningful for Red.
  int NumAccs;
  std::vector<SubExp> AccInit;
  Lambda FoldFn;
  std::vector<VName> Arrays;

  StreamExp(FormKind Form, SubExp Width, Lambda ReduceFn, int NumAccs,
            std::vector<SubExp> AccInit, Lambda FoldFn,
            std::vector<VName> Arrays)
      : Exp(ClassKind), Form(Form), Width(std::move(Width)),
        ReduceFn(std::move(ReduceFn)), NumAccs(NumAccs),
        AccInit(std::move(AccInit)), FoldFn(std::move(FoldFn)),
        Arrays(std::move(Arrays)) {}
  ExpPtr clone() const override;

  const char *formName() const {
    switch (Form) {
    case FormKind::Par:
      return "stream_map";
    case FormKind::Red:
      return "stream_red";
    case FormKind::Seq:
      return "stream_seq";
    }
    return "?";
  }
};

/// A GPU kernel: the perfect nest produced by the flattening rules of
/// Section 5.  GridDims are the parallel map dimensions (outermost first);
/// ThreadIndices bind the per-thread coordinates inside ThreadBody.
///
/// For Op == ThreadBody, each thread computes ThreadBody and its results are
/// gathered into arrays of shape GridDims ++ (per-result inner shape).
/// For Op == SegReduce/SegScan there is an additional innermost dimension
/// SegSize; ThreadBody computes the per-element values which the device then
/// combines per segment with ReduceFn (a segmented reduction/scan, cf. the
/// paper's footnote 5 and rule G5).
class KernelExp : public Exp {
public:
  static constexpr ExpKind ClassKind = ExpKind::Kernel;
  enum class OpKind : uint8_t { ThreadBody, SegReduce, SegScan, SegHist };

  /// An input array visible to threads, with its global-memory layout.
  /// LayoutPerm maps logical indices to storage order: the stored shape is
  /// shape permuted by LayoutPerm, row-major.  Identity = row-major.
  /// Tiled marks arrays staged through workgroup-local memory (Section 5.2).
  struct KInput {
    VName Arr;
    Type Ty;
    std::vector<int> LayoutPerm;
    bool Tiled = false;
  };

  OpKind Op;
  std::vector<SubExp> GridDims;
  std::vector<VName> ThreadIndices;
  SubExp SegSize;           ///< Only for SegReduce/SegScan.
  VName SegIndex;           ///< Position within segment (SegReduce/SegScan).
  Lambda ReduceFn;          ///< Only for SegReduce/SegScan.
  std::vector<SubExp> Neutral;
  std::vector<KInput> Inputs;
  Body ThreadBody;
  std::vector<Type> RetTypes; ///< Full result-array types.

  /// For Op == SegHist only: the consumed destination accumulator (a host
  /// array of HistWidth elements) and the bin count.  ThreadBody computes
  /// (bin index, value) per element; the device folds each value into the
  /// destination bin with ReduceFn, atomically.
  VName HistDest;
  SubExp HistWidth;

  /// Store per-thread array results transposed (thread index innermost),
  /// so output writes coalesce — Section 5.2's treatment of results and
  /// temporaries.  Set by the locality pass.
  bool TransposedOutputs = false;

  KernelExp() : Exp(ClassKind), Op(OpKind::ThreadBody) {}
  ExpPtr clone() const override;

  /// SegReduce/SegScan: grid × SegSize threads with a per-segment combine.
  /// SegHist is NOT segmented — it is grid-shaped like ThreadBody (one
  /// thread per input element) but folds (bin, value) pairs into HistDest
  /// with ReduceFn instead of gathering results.
  bool isSegmented() const {
    return Op == OpKind::SegReduce || Op == OpKind::SegScan;
  }
  /// True when ReduceFn/Neutral are meaningful (everything but ThreadBody).
  bool usesReduceFn() const { return Op != OpKind::ThreadBody; }
  KInput *findInput(const VName &N) {
    for (KInput &In : Inputs)
      if (In.Arr == N)
        return &In;
    return nullptr;
  }
};

/// A top-level function definition.
struct FunDef {
  std::string Name;
  std::vector<Param> Params;
  std::vector<Type> RetTypes;
  Body FBody;
};

/// A whole program: a set of named functions; "main" is the entry point.
struct Program {
  std::vector<FunDef> Funs;

  FunDef *findFun(const std::string &Name) {
    for (FunDef &F : Funs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
  const FunDef *findFun(const std::string &Name) const {
    for (const FunDef &F : Funs)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
};

/// Deep copies.
Body cloneBody(const Body &B);
Lambda cloneLambda(const Lambda &L);

} // namespace fut

#endif // FUTHARKCC_IR_IR_H
