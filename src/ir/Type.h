//===- Type.h - Array types with symbolic shapes ----------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of the core language (Fig 1 of the paper): a scalar kind plus a
/// shape of symbolic dimensions, optionally marked unique (*t).  Every array
/// type is parametrised with exact shape information; a dimension is either
/// a constant or a variable in scope (SubExp).  Tuples are not types: the IR
/// is tuple-free, with multi-value patterns instead.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_IR_TYPE_H
#define FUTHARKCC_IR_TYPE_H

#include "ir/Name.h"
#include "ir/Prim.h"

#include <cassert>
#include <vector>

namespace fut {

/// An operand: either a primitive constant or a variable.  Also used for
/// array dimensions, which are always of kind i64 when symbolic.
class SubExp {
  bool IsConst = true;
  PrimValue ConstVal;
  VName VarName;

public:
  SubExp() : ConstVal(PrimValue::makeI64(0)) {}

  static SubExp constant(PrimValue V) {
    SubExp S;
    S.IsConst = true;
    S.ConstVal = V;
    return S;
  }
  static SubExp intConst(int64_t V) {
    return constant(PrimValue::makeI64(V));
  }
  static SubExp var(VName N) {
    SubExp S;
    S.IsConst = false;
    S.VarName = std::move(N);
    return S;
  }

  bool isConst() const { return IsConst; }
  bool isVar() const { return !IsConst; }

  const PrimValue &getConst() const {
    assert(IsConst && "not a constant");
    return ConstVal;
  }
  const VName &getVar() const {
    assert(!IsConst && "not a variable");
    return VarName;
  }

  bool operator==(const SubExp &Other) const {
    if (IsConst != Other.IsConst)
      return false;
    return IsConst ? ConstVal == Other.ConstVal : VarName == Other.VarName;
  }
  bool operator!=(const SubExp &Other) const { return !(*this == Other); }

  size_t hash() const {
    size_t Seed = IsConst ? ConstVal.hash() : VNameHash()(VarName);
    hashCombine(Seed, IsConst ? 17u : 31u);
    return Seed;
  }

  std::string str() const {
    return IsConst ? ConstVal.str() : VarName.str();
  }
};

/// A dimension of an array type.
using Dim = SubExp;

/// A core-language type: rank-0 means scalar.  Unique corresponds to the
/// paper's *t annotation and is only meaningful on function parameter and
/// return types.
class Type {
  ScalarKind Elem = ScalarKind::I32;
  std::vector<Dim> Shape;
  bool Unique = false;

public:
  Type() = default;
  Type(ScalarKind Elem, std::vector<Dim> Shape = {}, bool Unique = false)
      : Elem(Elem), Shape(std::move(Shape)), Unique(Unique) {}

  static Type scalar(ScalarKind K) { return Type(K); }
  static Type array(ScalarKind K, std::vector<Dim> Shape, bool Unique = false) {
    return Type(K, std::move(Shape), Unique);
  }

  ScalarKind elemKind() const { return Elem; }
  const std::vector<Dim> &shape() const { return Shape; }
  int rank() const { return static_cast<int>(Shape.size()); }
  bool isScalar() const { return Shape.empty(); }
  bool isArray() const { return !Shape.empty(); }
  bool isUnique() const { return Unique; }

  const Dim &outerDim() const {
    assert(isArray() && "scalar has no dimensions");
    return Shape.front();
  }

  /// The type of a row of this array (one dimension peeled off).
  Type rowType() const {
    assert(isArray() && "scalar has no row type");
    return Type(Elem, std::vector<Dim>(Shape.begin() + 1, Shape.end()));
  }

  /// The type of the array obtained by peeling \p N outer dimensions.
  Type peel(int N) const {
    assert(N <= rank() && "peeling too many dimensions");
    return Type(Elem, std::vector<Dim>(Shape.begin() + N, Shape.end()));
  }

  /// An array of \p D elements of this type.
  Type arrayOf(Dim D) const {
    std::vector<Dim> NewShape;
    NewShape.reserve(Shape.size() + 1);
    NewShape.push_back(std::move(D));
    NewShape.insert(NewShape.end(), Shape.begin(), Shape.end());
    return Type(Elem, std::move(NewShape));
  }

  /// The same type with several outer dimensions prepended.
  Type arrayOfShape(const std::vector<Dim> &Outer) const {
    Type T = *this;
    for (auto It = Outer.rbegin(); It != Outer.rend(); ++It)
      T = T.arrayOf(*It);
    return T;
  }

  Type asUnique() const {
    Type T = *this;
    T.Unique = true;
    return T;
  }
  Type asNonUnique() const {
    Type T = *this;
    T.Unique = false;
    return T;
  }

  /// Structural equality modulo uniqueness.
  bool equalModuloUniqueness(const Type &Other) const {
    return Elem == Other.Elem && Shape == Other.Shape;
  }

  /// Equality of ranks and element kind only (shape-oblivious), used where
  /// dimension identity cannot be established statically.
  bool equalRankAndElem(const Type &Other) const {
    return Elem == Other.Elem && Shape.size() == Other.Shape.size();
  }

  bool operator==(const Type &Other) const {
    return Unique == Other.Unique && equalModuloUniqueness(Other);
  }
  bool operator!=(const Type &Other) const { return !(*this == Other); }

  std::string str() const {
    std::string S = Unique ? "*" : "";
    for (const Dim &D : Shape)
      S += "[" + D.str() + "]";
    S += scalarKindName(Elem);
    return S;
  }
};

/// A name binding with its type: function/lambda parameters and the
/// left-hand sides of let patterns.
struct Param {
  VName Name;
  Type Ty;

  Param() = default;
  Param(VName Name, Type Ty) : Name(std::move(Name)), Ty(std::move(Ty)) {}

  std::string str() const { return Name.str() + ": " + Ty.str(); }
};

} // namespace fut

#endif // FUTHARKCC_IR_TYPE_H
