//===- Builder.h - Convenient IR construction -------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small helper for building ANF bodies: allocates fresh names from a
/// NameSource and accumulates bindings.  Used by the desugarer, the
/// compiler passes, tests, and the hand-written reference implementations.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_IR_BUILDER_H
#define FUTHARKCC_IR_BUILDER_H

#include "ir/IR.h"

namespace fut {

class BodyBuilder {
  NameSource &Names;
  std::vector<Stm> Stms;

public:
  explicit BodyBuilder(NameSource &Names) : Names(Names) {}

  NameSource &nameSource() { return Names; }

  /// Appends an already-formed binding.
  void append(Stm S) { Stms.push_back(std::move(S)); }
  void append(std::vector<Param> Pat, ExpPtr E) {
    Stms.emplace_back(std::move(Pat), std::move(E));
  }

  /// Binds \p E to a single fresh name of type \p Ty.
  VName bind(const std::string &Base, Type Ty, ExpPtr E) {
    VName N = Names.fresh(Base);
    append({Param(N, std::move(Ty))}, std::move(E));
    return N;
  }

  /// Binds \p E to several fresh names of the given types.
  std::vector<VName> bindMulti(const std::string &Base,
                               const std::vector<Type> &Tys, ExpPtr E) {
    std::vector<Param> Pat;
    std::vector<VName> Out;
    Pat.reserve(Tys.size());
    for (const Type &T : Tys) {
      VName N = Names.fresh(Base);
      Out.push_back(N);
      Pat.emplace_back(N, T);
    }
    append(std::move(Pat), std::move(E));
    return Out;
  }

  /// let x = a `op` b, returning x.
  SubExp binOp(BinOp Op, SubExp A, SubExp B, ScalarKind OperandKind,
               const std::string &Base = "t") {
    Type Ty = Type::scalar(binOpResultKind(Op, OperandKind));
    return SubExp::var(
        bind(Base, Ty, std::make_unique<BinOpExp>(Op, std::move(A),
                                                  std::move(B))));
  }

  SubExp unOp(UnOp Op, SubExp A, ScalarKind OperandKind,
              const std::string &Base = "t") {
    Type Ty = Type::scalar(unOpResultKind(Op, OperandKind));
    return SubExp::var(
        bind(Base, Ty, std::make_unique<UnOpExp>(Op, std::move(A))));
  }

  SubExp convOp(ScalarKind From, ScalarKind To, SubExp A,
                const std::string &Base = "t") {
    return SubExp::var(bind(Base, Type::scalar(To),
                            std::make_unique<ConvOpExp>(ConvOp{From, To},
                                                        std::move(A))));
  }

  /// let x = a[indices], returning x (a scalar of kind \p ElemKind when the
  /// index is full).
  SubExp index(const VName &Arr, std::vector<SubExp> Indices, Type ResultTy,
               const std::string &Base = "x") {
    return SubExp::var(bind(Base, std::move(ResultTy),
                            std::make_unique<IndexExp>(Arr,
                                                       std::move(Indices))));
  }

  size_t numStms() const { return Stms.size(); }

  /// Finalises the body with the given result operands.
  Body finish(std::vector<SubExp> Result) {
    return Body(std::move(Stms), std::move(Result));
  }
};

/// Shorthand constructors for common operand forms.
inline SubExp i32(int32_t V) { return SubExp::constant(PrimValue::makeI32(V)); }
inline SubExp i64c(int64_t V) {
  return SubExp::constant(PrimValue::makeI64(V));
}
inline SubExp f32c(float V) { return SubExp::constant(PrimValue::makeF32(V)); }
inline SubExp f64c(double V) {
  return SubExp::constant(PrimValue::makeF64(V));
}
inline SubExp boolc(bool V) {
  return SubExp::constant(PrimValue::makeBool(V));
}
inline ExpPtr subExpE(SubExp S) {
  return std::make_unique<SubExpExp>(std::move(S));
}
inline ExpPtr varE(const VName &N) {
  return std::make_unique<SubExpExp>(SubExp::var(N));
}

/// The identity permutation of the given rank.
std::vector<int> identityPerm(int Rank);
/// Composition: result[i] = A[B[i]].
std::vector<int> composePerms(const std::vector<int> &A,
                              const std::vector<int> &B);
/// Inverse permutation.
std::vector<int> inversePerm(const std::vector<int> &P);
/// True if P is the identity.
bool isIdentityPerm(const std::vector<int> &P);

/// Builds a binary-operator lambda (\x y -> x op y) on scalars of kind K,
/// e.g. for reduce (+) — the workhorse of tests and desugaring.
Lambda binOpLambda(BinOp Op, ScalarKind K, NameSource &Names);

/// Builds a lambda that applies \p Op component-wise on arrays of type
/// [D]K, i.e. the paper's vectorised operator map(op) used by K-means.
Lambda vectorisedBinOpLambda(BinOp Op, ScalarKind K, Dim D,
                             NameSource &Names);

} // namespace fut

#endif // FUTHARKCC_IR_BUILDER_H
