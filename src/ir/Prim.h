//===- Prim.h - Primitive scalar types, values and operators ----*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar kinds (bool/i32/i64/f32/f64), boxed primitive values, and the
/// binary/unary/conversion operator vocabulary of the core language,
/// together with their evaluation semantics (shared by the constant folder,
/// the reference interpreter and the GPU simulator).
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_IR_PRIM_H
#define FUTHARKCC_IR_PRIM_H

#include "support/Error.h"
#include "support/Utils.h"

#include <cstdint>
#include <string>

namespace fut {

/// The primitive element types of the language.
enum class ScalarKind : uint8_t { Bool, I32, I64, F32, F64 };

const char *scalarKindName(ScalarKind K);
bool isFloatKind(ScalarKind K);
bool isIntKind(ScalarKind K);

/// A single scalar value, tagged with its kind.  I32/F32 values are kept
/// truncated to 32-bit semantics at every operation.
class PrimValue {
  ScalarKind Kind;
  union {
    bool B;
    int64_t I;
    double F;
  };

public:
  PrimValue() : Kind(ScalarKind::I32), I(0) {}

  static PrimValue makeBool(bool V);
  static PrimValue makeI32(int32_t V);
  static PrimValue makeI64(int64_t V);
  static PrimValue makeF32(float V);
  static PrimValue makeF64(double V);
  /// Zero (or false) of kind \p K — the canonical "blank" element.
  static PrimValue zeroOf(ScalarKind K);

  ScalarKind kind() const { return Kind; }
  bool isFloat() const { return isFloatKind(Kind); }
  bool isInt() const { return isIntKind(Kind); }

  bool getBool() const;
  int64_t getInt() const;
  double getFloat() const;

  /// Numeric value as a double regardless of kind (bools become 0/1).
  double asDouble() const;
  /// Numeric value as int64 regardless of kind (floats truncate).
  int64_t asInt64() const;

  bool operator==(const PrimValue &Other) const;
  bool operator!=(const PrimValue &Other) const { return !(*this == Other); }

  size_t hash() const;
  std::string str() const;
};

/// Binary operators.  Comparison operators yield Bool; the rest preserve the
/// operand kind.  Semantics of Div/Mod on integers follow Futhark (floor
/// division, sign of divisor).
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Pow,
  Min,
  Max,
  LogAnd,
  LogOr,
  Eq,
  Neq,
  Lt,
  Leq,
  Gt,
  Geq,
};

/// Unary operators.
enum class UnOp : uint8_t {
  Neg,
  Not,
  Abs,
  Signum,
  Sqrt,
  Exp,
  Log,
  Sin,
  Cos,
  Tan,
  Atan,
  Floor,
};

/// Kind-to-kind conversions (e.g. i32 -> f32).
struct ConvOp {
  ScalarKind From;
  ScalarKind To;
};

const char *binOpName(BinOp Op);
const char *unOpName(UnOp Op);

/// True for operators whose result kind is Bool regardless of operands.
bool isCompareOp(BinOp Op);
/// True if \p Op is defined on operands of kind \p K.
bool binOpDefinedOn(BinOp Op, ScalarKind K);
bool unOpDefinedOn(UnOp Op, ScalarKind K);
/// Result kind of applying \p Op to operands of kind \p K.
ScalarKind binOpResultKind(BinOp Op, ScalarKind K);
ScalarKind unOpResultKind(UnOp Op, ScalarKind K);

/// Evaluates a binary operator on two values of the same kind.  Division by
/// zero on integers yields an error; on floats it follows IEEE.
ErrorOr<PrimValue> evalBinOp(BinOp Op, const PrimValue &A, const PrimValue &B);
ErrorOr<PrimValue> evalUnOp(UnOp Op, const PrimValue &A);
PrimValue evalConvOp(ConvOp Op, const PrimValue &A);

} // namespace fut

#endif // FUTHARKCC_IR_PRIM_H
