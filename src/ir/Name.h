//===- Name.h - Tagged variable names ---------------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable names in the core IR.  A VName is a human-readable base name
/// plus a unique integer tag; after the frontend every binding in a program
/// carries a distinct tag, which lets passes treat names as globally unique.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_IR_NAME_H
#define FUTHARKCC_IR_NAME_H

#include "support/Utils.h"

#include <atomic>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace fut {

/// A tagged variable name.  Tag -1 marks a "source" name straight out of the
/// parser that has not been uniquified yet.
struct VName {
  std::string Base;
  int Tag = -1;

  VName() = default;
  VName(std::string Base, int Tag) : Base(std::move(Base)), Tag(Tag) {}
  explicit VName(std::string Base) : Base(std::move(Base)), Tag(-1) {}

  bool operator==(const VName &Other) const {
    return Tag == Other.Tag && Base == Other.Base;
  }
  bool operator!=(const VName &Other) const { return !(*this == Other); }
  bool operator<(const VName &Other) const {
    if (Tag != Other.Tag)
      return Tag < Other.Tag;
    return Base < Other.Base;
  }

  std::string str() const {
    if (Tag < 0)
      return Base;
    return Base + "_" + std::to_string(Tag);
  }
};

struct VNameHash {
  size_t operator()(const VName &N) const {
    size_t Seed = std::hash<std::string>()(N.Base);
    hashCombine(Seed, std::hash<int>()(N.Tag));
    return Seed;
  }
};

using NameSet = std::unordered_set<VName, VNameHash>;
template <typename T> using NameMap = std::unordered_map<VName, T, VNameHash>;

/// Produces fresh tags.  One NameSource is threaded through the whole
/// pipeline so that freshly invented names never collide.
class NameSource {
  int Counter = 0;

public:
  VName fresh(const std::string &Base) { return VName(Base, Counter++); }

  /// A fresh name reusing \p Old's base name (for renaming).
  VName freshFrom(const VName &Old) { return fresh(Old.Base); }

  /// Ensures future fresh names have tags strictly above \p Tag.
  void reserveAbove(int Tag) {
    if (Tag >= Counter)
      Counter = Tag + 1;
  }

  int peek() const { return Counter; }
};

} // namespace fut

#endif // FUTHARKCC_IR_NAME_H
