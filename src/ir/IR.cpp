//===- IR.cpp - Core IR node implementations -------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "ir/IR.h"

using namespace fut;

Exp::~Exp() = default;

const char *fut::expKindName(ExpKind K) {
  switch (K) {
  case ExpKind::SubExpE:
    return "subexp";
  case ExpKind::BinOpE:
    return "binop";
  case ExpKind::UnOpE:
    return "unop";
  case ExpKind::ConvOpE:
    return "convop";
  case ExpKind::If:
    return "if";
  case ExpKind::Index:
    return "index";
  case ExpKind::Apply:
    return "apply";
  case ExpKind::Loop:
    return "loop";
  case ExpKind::Update:
    return "update";
  case ExpKind::Iota:
    return "iota";
  case ExpKind::Replicate:
    return "replicate";
  case ExpKind::Rearrange:
    return "rearrange";
  case ExpKind::Reshape:
    return "reshape";
  case ExpKind::Concat:
    return "concat";
  case ExpKind::Copy:
    return "copy";
  case ExpKind::Slice:
    return "slice";
  case ExpKind::Map:
    return "map";
  case ExpKind::Reduce:
    return "reduce";
  case ExpKind::Scan:
    return "scan";
  case ExpKind::Stream:
    return "stream";
  case ExpKind::ReduceByIndex:
    return "reduce_by_index";
  case ExpKind::Kernel:
    return "kernel";
  }
  return "?";
}

Stm::Stm(std::vector<Param> Pat, ExpPtr E)
    : Pat(std::move(Pat)), E(std::move(E)) {}

Stm::Stm(const Stm &Other) : Pat(Other.Pat) {
  if (Other.E)
    E = Other.E->clone();
}

Stm &Stm::operator=(const Stm &Other) {
  if (this == &Other)
    return *this;
  Pat = Other.Pat;
  E = Other.E ? Other.E->clone() : nullptr;
  return *this;
}

Body fut::cloneBody(const Body &B) {
  Body Out;
  Out.Stms.reserve(B.Stms.size());
  for (const Stm &S : B.Stms)
    Out.Stms.emplace_back(S.Pat, S.E->clone());
  Out.Result = B.Result;
  return Out;
}

Lambda fut::cloneLambda(const Lambda &L) {
  return Lambda(L.Params, cloneBody(L.B), L.RetTypes);
}

namespace {

/// Copies the source location when cloning.
template <typename T> ExpPtr withLoc(const Exp &Src, std::unique_ptr<T> E) {
  E->Loc = Src.Loc;
  return E;
}

} // namespace

ExpPtr SubExpExp::clone() const {
  return withLoc(*this, std::make_unique<SubExpExp>(Val));
}

ExpPtr BinOpExp::clone() const {
  return withLoc(*this, std::make_unique<BinOpExp>(Op, A, B));
}

ExpPtr UnOpExp::clone() const {
  return withLoc(*this, std::make_unique<UnOpExp>(Op, A));
}

ExpPtr ConvOpExp::clone() const {
  return withLoc(*this, std::make_unique<ConvOpExp>(Op, A));
}

ExpPtr IfExp::clone() const {
  return withLoc(*this, std::make_unique<IfExp>(Cond, cloneBody(Then),
                                                cloneBody(Else), RetTypes));
}

ExpPtr IndexExp::clone() const {
  return withLoc(*this, std::make_unique<IndexExp>(Arr, Indices));
}

ExpPtr ApplyExp::clone() const {
  return withLoc(*this, std::make_unique<ApplyExp>(Func, Args));
}

ExpPtr LoopExp::clone() const {
  return withLoc(*this,
                 std::make_unique<LoopExp>(MergeParams, MergeInit, IndexVar,
                                           Bound, cloneBody(LoopBody)));
}

ExpPtr UpdateExp::clone() const {
  return withLoc(*this, std::make_unique<UpdateExp>(Arr, Indices, Value));
}

ExpPtr IotaExp::clone() const {
  return withLoc(*this, std::make_unique<IotaExp>(N, Elem));
}

ExpPtr ReplicateExp::clone() const {
  return withLoc(*this, std::make_unique<ReplicateExp>(N, Val, ValType));
}

ExpPtr RearrangeExp::clone() const {
  return withLoc(*this, std::make_unique<RearrangeExp>(Perm, Arr));
}

ExpPtr ReshapeExp::clone() const {
  return withLoc(*this, std::make_unique<ReshapeExp>(NewShape, Arr));
}

ExpPtr ConcatExp::clone() const {
  return withLoc(*this, std::make_unique<ConcatExp>(Arrays));
}

ExpPtr SliceExp::clone() const {
  return withLoc(*this,
                 std::make_unique<SliceExp>(Arr, Offset, Len, Stride));
}

ExpPtr CopyExp::clone() const {
  return withLoc(*this, std::make_unique<CopyExp>(Arr));
}

ExpPtr MapExp::clone() const {
  return withLoc(*this,
                 std::make_unique<MapExp>(Width, cloneLambda(Fn), Arrays));
}

ExpPtr ReduceExp::clone() const {
  return withLoc(*this, std::make_unique<ReduceExp>(Width, cloneLambda(Fn),
                                                    Neutral, Arrays,
                                                    Commutative));
}

ExpPtr ScanExp::clone() const {
  return withLoc(
      *this, std::make_unique<ScanExp>(Width, cloneLambda(Fn), Neutral,
                                       Arrays));
}

ExpPtr StreamExp::clone() const {
  return withLoc(*this, std::make_unique<StreamExp>(
                            Form, Width, cloneLambda(ReduceFn), NumAccs,
                            AccInit, cloneLambda(FoldFn), Arrays));
}

ExpPtr ReduceByIndexExp::clone() const {
  return withLoc(*this, std::make_unique<ReduceByIndexExp>(
                            Width, Dest, cloneLambda(CombineFn), Neutral,
                            cloneLambda(ValueFn), IndexArr, ValueArrs));
}

ExpPtr KernelExp::clone() const {
  auto K = std::make_unique<KernelExp>();
  K->Op = Op;
  K->GridDims = GridDims;
  K->ThreadIndices = ThreadIndices;
  K->SegSize = SegSize;
  K->SegIndex = SegIndex;
  K->ReduceFn = cloneLambda(ReduceFn);
  K->Neutral = Neutral;
  K->Inputs = Inputs;
  K->ThreadBody = cloneBody(ThreadBody);
  K->RetTypes = RetTypes;
  K->TransposedOutputs = TransposedOutputs;
  K->HistDest = HistDest;
  K->HistWidth = HistWidth;
  return withLoc(*this, std::move(K));
}
