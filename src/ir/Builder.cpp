//===- Builder.cpp - Convenient IR construction ----------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"

using namespace fut;

std::vector<int> fut::identityPerm(int Rank) {
  std::vector<int> P(Rank);
  for (int I = 0; I < Rank; ++I)
    P[I] = I;
  return P;
}

std::vector<int> fut::composePerms(const std::vector<int> &A,
                                   const std::vector<int> &B) {
  assert(A.size() == B.size() && "permutation ranks differ");
  std::vector<int> Out(B.size());
  for (size_t I = 0; I < B.size(); ++I)
    Out[I] = A[B[I]];
  return Out;
}

std::vector<int> fut::inversePerm(const std::vector<int> &P) {
  std::vector<int> Out(P.size());
  for (size_t I = 0; I < P.size(); ++I)
    Out[P[I]] = static_cast<int>(I);
  return Out;
}

bool fut::isIdentityPerm(const std::vector<int> &P) {
  for (size_t I = 0; I < P.size(); ++I)
    if (P[I] != static_cast<int>(I))
      return false;
  return true;
}

Lambda fut::binOpLambda(BinOp Op, ScalarKind K, NameSource &Names) {
  VName X = Names.fresh("x");
  VName Y = Names.fresh("y");
  BodyBuilder BB(Names);
  SubExp R = BB.binOp(Op, SubExp::var(X), SubExp::var(Y), K);
  Type ST = Type::scalar(K);
  return Lambda({Param(X, ST), Param(Y, ST)}, BB.finish({R}),
                {Type::scalar(binOpResultKind(Op, K))});
}

Lambda fut::vectorisedBinOpLambda(BinOp Op, ScalarKind K, Dim D,
                                  NameSource &Names) {
  VName Xs = Names.fresh("xs");
  VName Ys = Names.fresh("ys");
  Type ArrT = Type::array(K, {D});
  BodyBuilder BB(Names);
  Lambda Inner = binOpLambda(Op, K, Names);
  VName R = BB.bind("r", ArrT,
                    std::make_unique<MapExp>(D, std::move(Inner),
                                             std::vector<VName>{Xs, Ys}));
  return Lambda({Param(Xs, ArrT), Param(Ys, ArrT)},
                BB.finish({SubExp::var(R)}), {ArrT});
}
