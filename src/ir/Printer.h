//===- Printer.h - Human-readable IR dumping --------------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pretty-printing of the core IR in a syntax close to the paper's Fig 1.
/// Used for debugging, golden tests and the --dump-ir driver options.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_IR_PRINTER_H
#define FUTHARKCC_IR_PRINTER_H

#include "ir/IR.h"

#include <string>

namespace fut {

std::string printExp(const Exp &E, int Indent = 0);
std::string printBody(const Body &B, int Indent = 0);
std::string printLambda(const Lambda &L, int Indent = 0);
std::string printFunDef(const FunDef &F);
std::string printProgram(const Program &P);

} // namespace fut

#endif // FUTHARKCC_IR_PRINTER_H
