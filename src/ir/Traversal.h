//===- Traversal.h - IR walking, free variables, renaming ------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generic traversal utilities over the core IR: free-variable computation,
/// capture-free substitution of names by operands (including inside the
/// symbolic dimensions of types), and alpha-renaming used when lambdas and
/// bodies are duplicated by fusion, inlining and flattening.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_IR_TRAVERSAL_H
#define FUTHARKCC_IR_TRAVERSAL_H

#include "ir/IR.h"

#include <functional>

namespace fut {

/// Invokes \p Fn on every operand SubExp of \p E itself (not of nested
/// bodies), including array-name operands wrapped as variables.
void forEachFreeOperand(const Exp &E,
                        const std::function<void(const SubExp &)> &Fn);

/// Invokes \p Fn on every nested Body of \p E (if/loop bodies, lambda
/// bodies, kernel thread bodies).
void forEachChildBody(Exp &E, const std::function<void(Body &)> &Fn);
void forEachChildBody(const Exp &E,
                      const std::function<void(const Body &)> &Fn);

/// Free variables (both scalar and array uses, and uses inside nested
/// bodies and types).
NameSet freeVarsInExp(const Exp &E);
NameSet freeVarsInBody(const Body &B);
NameSet freeVarsInLambda(const Lambda &L);

/// Capture-free substitution.  Every free occurrence of a key is replaced by
/// its mapped operand; occurrences in positions that require a variable
/// (array operands, update targets) assert that the operand is a variable.
/// Also rewrites symbolic dimensions inside types.
void substituteInBody(const NameMap<SubExp> &Subst, Body &B);
void substituteInExp(const NameMap<SubExp> &Subst, Exp &E);
void substituteInLambda(const NameMap<SubExp> &Subst, Lambda &L);
Type substituteInType(const NameMap<SubExp> &Subst, const Type &T);

/// Alpha-renames every name bound inside the body/lambda/exp to a fresh one
/// (free names are rewritten through \p Outer).  Used when cloning code.
Body renameBody(const Body &B, NameSource &Names,
                const NameMap<SubExp> &Outer = {});
Lambda renameLambda(const Lambda &L, NameSource &Names,
                    const NameMap<SubExp> &Outer = {});

/// Ensures every tag in \p P is unique, renaming where needed; also makes
/// \p Names produce tags above anything in \p P.
void uniquifyProgram(Program &P, NameSource &Names);

/// A shallow structural hash/equality for expressions without nested bodies
/// (used by CSE).  Expressions with bodies hash to distinct sentinels and
/// never compare equal.
size_t hashExpShallow(const Exp &E);
bool expsStructurallyEqual(const Exp &A, const Exp &B);
/// True if \p E has no nested body and no side conditions preventing CSE.
bool expIsCSEable(const Exp &E);

} // namespace fut

#endif // FUTHARKCC_IR_TRAVERSAL_H
