//===- Printer.cpp - Human-readable IR dumping -----------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"

#include "support/Utils.h"

#include <sstream>

using namespace fut;

namespace {

std::string ind(int N) { return std::string(N, ' '); }

std::string subExps(const std::vector<SubExp> &Ss) {
  return joinMapped(Ss, ", ", [](const SubExp &S) { return S.str(); });
}

std::string names(const std::vector<VName> &Ns) {
  return joinMapped(Ns, " ", [](const VName &N) { return N.str(); });
}

std::string pattern(const std::vector<Param> &Ps) {
  if (Ps.size() == 1)
    return Ps[0].str();
  return "(" + joinMapped(Ps, ", ", [](const Param &P) { return P.str(); }) +
         ")";
}

} // namespace

std::string fut::printLambda(const Lambda &L, int Indent) {
  std::ostringstream OS;
  OS << "(\\"
     << joinMapped(L.Params, " ",
                   [](const Param &P) { return "(" + P.str() + ")"; })
     << ": ("
     << joinMapped(L.RetTypes, ", ", [](const Type &T) { return T.str(); })
     << ") ->\n";
  OS << printBody(L.B, Indent + 2) << ind(Indent) << ")";
  return OS.str();
}

std::string fut::printExp(const Exp &E, int Indent) {
  std::ostringstream OS;
  switch (E.kind()) {
  case ExpKind::SubExpE:
    OS << expCast<SubExpExp>(&E)->Val.str();
    break;
  case ExpKind::BinOpE: {
    const auto *X = expCast<BinOpExp>(&E);
    OS << X->A.str() << " " << binOpName(X->Op) << " " << X->B.str();
    break;
  }
  case ExpKind::UnOpE: {
    const auto *X = expCast<UnOpExp>(&E);
    OS << unOpName(X->Op) << " " << X->A.str();
    break;
  }
  case ExpKind::ConvOpE: {
    const auto *X = expCast<ConvOpExp>(&E);
    OS << scalarKindName(X->Op.To) << " " << X->A.str();
    break;
  }
  case ExpKind::If: {
    const auto *X = expCast<IfExp>(&E);
    OS << "if " << X->Cond.str() << "\n"
       << ind(Indent) << "then\n"
       << printBody(X->Then, Indent + 2) << ind(Indent) << "else\n"
       << printBody(X->Else, Indent + 2) << ind(Indent) << "fi";
    break;
  }
  case ExpKind::Index: {
    const auto *X = expCast<IndexExp>(&E);
    OS << X->Arr.str() << "[" << subExps(X->Indices) << "]";
    break;
  }
  case ExpKind::Apply: {
    const auto *X = expCast<ApplyExp>(&E);
    OS << X->Func << "(" << subExps(X->Args) << ")";
    break;
  }
  case ExpKind::Loop: {
    const auto *X = expCast<LoopExp>(&E);
    OS << "loop (";
    for (size_t I = 0; I < X->MergeParams.size(); ++I) {
      if (I)
        OS << ", ";
      OS << X->MergeParams[I].str() << " = " << X->MergeInit[I].str();
    }
    OS << ") for " << X->IndexVar.str() << " < " << X->Bound.str() << " do\n"
       << printBody(X->LoopBody, Indent + 2) << ind(Indent) << "pool";
    break;
  }
  case ExpKind::Update: {
    const auto *X = expCast<UpdateExp>(&E);
    OS << X->Arr.str() << " with [" << subExps(X->Indices) << "] <- "
       << X->Value.str();
    break;
  }
  case ExpKind::Iota: {
    const auto *X = expCast<IotaExp>(&E);
    OS << "iota " << X->N.str() << " : " << scalarKindName(X->Elem);
    break;
  }
  case ExpKind::Replicate: {
    const auto *X = expCast<ReplicateExp>(&E);
    OS << "replicate " << X->N.str() << " " << X->Val.str();
    break;
  }
  case ExpKind::Rearrange: {
    const auto *X = expCast<RearrangeExp>(&E);
    OS << "rearrange ("
       << joinMapped(X->Perm, ",", [](int P) { return std::to_string(P); })
       << ") " << X->Arr.str();
    break;
  }
  case ExpKind::Reshape: {
    const auto *X = expCast<ReshapeExp>(&E);
    OS << "reshape (" << subExps(X->NewShape) << ") " << X->Arr.str();
    break;
  }
  case ExpKind::Concat: {
    const auto *X = expCast<ConcatExp>(&E);
    OS << "concat " << names(X->Arrays);
    break;
  }
  case ExpKind::Copy:
    OS << "copy " << expCast<CopyExp>(&E)->Arr.str();
    break;
  case ExpKind::Slice: {
    const auto *X = expCast<SliceExp>(&E);
    OS << "slice " << X->Arr.str() << " " << X->Offset.str() << " "
       << X->Len.str() << " " << X->Stride.str();
    break;
  }
  case ExpKind::Map: {
    const auto *X = expCast<MapExp>(&E);
    OS << "map<" << X->Width.str() << "> " << printLambda(X->Fn, Indent)
       << " " << names(X->Arrays);
    break;
  }
  case ExpKind::Reduce: {
    const auto *X = expCast<ReduceExp>(&E);
    OS << "reduce<" << X->Width.str() << "> " << printLambda(X->Fn, Indent)
       << " (" << subExps(X->Neutral) << ") " << names(X->Arrays);
    break;
  }
  case ExpKind::Scan: {
    const auto *X = expCast<ScanExp>(&E);
    OS << "scan<" << X->Width.str() << "> " << printLambda(X->Fn, Indent)
       << " (" << subExps(X->Neutral) << ") " << names(X->Arrays);
    break;
  }
  case ExpKind::Stream: {
    const auto *X = expCast<StreamExp>(&E);
    OS << X->formName() << "<" << X->Width.str() << "> ";
    if (X->Form == StreamExp::FormKind::Red)
      OS << printLambda(X->ReduceFn, Indent) << " ";
    OS << printLambda(X->FoldFn, Indent);
    if (!X->AccInit.empty())
      OS << " (" << subExps(X->AccInit) << ")";
    OS << " " << names(X->Arrays);
    break;
  }
  case ExpKind::ReduceByIndex: {
    const auto *X = expCast<ReduceByIndexExp>(&E);
    OS << "reduce_by_index<" << X->Width.str() << "> " << X->Dest.str() << " "
       << printLambda(X->CombineFn, Indent) << " (" << X->Neutral.str() << ") "
       << printLambda(X->ValueFn, Indent) << " " << X->IndexArr.str() << " "
       << names(X->ValueArrs);
    break;
  }
  case ExpKind::Kernel: {
    const auto *X = expCast<KernelExp>(&E);
    OS << "kernel";
    switch (X->Op) {
    case KernelExp::OpKind::ThreadBody:
      break;
    case KernelExp::OpKind::SegReduce:
      OS << "_segreduce";
      break;
    case KernelExp::OpKind::SegScan:
      OS << "_segscan";
      break;
    case KernelExp::OpKind::SegHist:
      OS << "_seghist";
      break;
    }
    OS << " grid=[" << subExps(X->GridDims) << "]";
    OS << " tids=(" << names(X->ThreadIndices) << ")";
    if (X->Op == KernelExp::OpKind::SegHist)
      OS << " dest=" << X->HistDest.str() << " bins=" << X->HistWidth.str();
    if (X->isSegmented())
      OS << " seg=" << X->SegIndex.str() << "<" << X->SegSize.str();
    OS << "\n" << ind(Indent + 2) << "inputs: ";
    for (const KernelExp::KInput &In : X->Inputs) {
      OS << In.Arr.str() << ":" << In.Ty.str();
      bool Identity = true;
      for (size_t I = 0; I < In.LayoutPerm.size(); ++I)
        Identity = Identity && In.LayoutPerm[I] == static_cast<int>(I);
      if (!Identity)
        OS << "@("
           << joinMapped(In.LayoutPerm, ",",
                         [](int P) { return std::to_string(P); })
           << ")";
      if (In.Tiled)
        OS << "[tiled]";
      OS << " ";
    }
    OS << "\n";
    if (X->usesReduceFn()) {
      OS << ind(Indent + 2) << "op: " << printLambda(X->ReduceFn, Indent + 2)
         << " (" << subExps(X->Neutral) << ")\n";
    }
    OS << printBody(X->ThreadBody, Indent + 2);
    OS << ind(Indent) << "lenrek : ("
       << joinMapped(X->RetTypes, ", ", [](const Type &T) { return T.str(); })
       << ")";
    break;
  }
  }
  return OS.str();
}

std::string fut::printBody(const Body &B, int Indent) {
  std::ostringstream OS;
  for (const Stm &S : B.Stms) {
    OS << ind(Indent) << "let " << pattern(S.Pat) << " =\n      " << ind(Indent)
       << printExp(*S.E, Indent + 6) << "\n";
  }
  OS << ind(Indent) << "in (" << subExps(B.Result) << ")\n";
  return OS.str();
}

std::string fut::printFunDef(const FunDef &F) {
  std::ostringstream OS;
  OS << "fun " << F.Name << " "
     << joinMapped(F.Params, " ",
                   [](const Param &P) { return "(" + P.str() + ")"; })
     << ": ("
     << joinMapped(F.RetTypes, ", ", [](const Type &T) { return T.str(); })
     << ") =\n"
     << printBody(F.FBody, 2);
  return OS.str();
}

std::string fut::printProgram(const Program &P) {
  return joinMapped(P.Funs, "\n",
                    [](const FunDef &F) { return printFunDef(F); });
}
