//===- FuzzMain.cpp - The futharkcc-fuzz driver ---------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differentially fuzzes the compiler: for each seed, generate a small
/// well-typed program, run it through the full pipeline + simulated device
/// and through the reference interpreter, and demand bit-identical results
/// (or the identical typed runtime error).  Failures are shrunk to minimal
/// plans and written out as self-contained .fut regression files.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"
#include "fuzz/GradFuzz.h"

#include "gpusim/CostModel.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

using namespace fut;
using namespace fut::fuzz;

namespace {

void usage() {
  fprintf(stderr,
          "usage: futharkcc-fuzz [options]\n"
          "  --seed <n>          fuzz exactly one seed\n"
          "  --seed-range <a..b> fuzz seeds a through b inclusive "
          "(default 1..100)\n"
          "  --count <n>         fuzz seeds 1..n (shorthand)\n"
          "  --out <dir>         where to write minimized .fut failures\n"
          "                      (default: fuzz-failures)\n"
          "  --no-shrink         report raw failures without minimizing\n"
          "  --no-mem-plan       run the device side with the static\n"
          "                      memory planner disabled (ablation sweep)\n"
          "  --devices <n>       run the device side sharded across n\n"
          "                      simulated devices (default 1)\n"
          "  --hist-global       force the global-atomic histogram\n"
          "                      lowering (local-width threshold 0), so\n"
          "                      the sweep covers both strategies\n"
          "  --cost-model <m>    run the device leg under cost model m\n"
          "                      (roofline | pipeline); outputs must stay\n"
          "                      bit-identical to the reference either way\n"
          "  --cross-model       additionally run each seed's device leg\n"
          "                      under BOTH cost models and demand\n"
          "                      bit-identical outputs and exactly equal\n"
          "                      model-independent counters\n"
          "  --vjp               gradient-check sweep: generate smooth f64\n"
          "                      programs, compile each with --vjp=main,\n"
          "                      and compare the adjoints on the simulated\n"
          "                      device against central finite differences\n"
          "                      through the reference interpreter\n"
          "  --dump <n>          print the program for seed n and exit\n"
          "  -v                  print every seed as it runs\n");
}

bool parseRange(const std::string &S, uint64_t &Lo, uint64_t &Hi) {
  size_t Dots = S.find("..");
  if (Dots == std::string::npos)
    return false;
  try {
    Lo = std::stoull(S.substr(0, Dots));
    Hi = std::stoull(S.substr(Dots + 2));
  } catch (...) {
    return false;
  }
  return Lo <= Hi;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Lo = 1, Hi = 100;
  std::string OutDir = "fuzz-failures";
  bool Shrink = true, Verbose = false, CrossModel = false, VjpMode = false;
  int64_t DumpSeed = -1;
  int Devices = 1;
  gpusim::DeviceParams DP = gpusim::DeviceParams::gtx780();

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return ++I < argc ? argv[I] : nullptr;
    };
    if (A == "--seed") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      Lo = Hi = std::stoull(V);
    } else if (A == "--seed-range") {
      const char *V = Next();
      if (!V || !parseRange(V, Lo, Hi)) {
        usage();
        return 2;
      }
    } else if (A.rfind("--seed-range=", 0) == 0) {
      if (!parseRange(A.substr(strlen("--seed-range=")), Lo, Hi)) {
        usage();
        return 2;
      }
    } else if (A == "--count") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      Lo = 1;
      Hi = std::stoull(V);
    } else if (A == "--out") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      OutDir = V;
    } else if (A == "--no-shrink") {
      Shrink = false;
    } else if (A == "--no-mem-plan") {
      DP.UseMemPlan = false;
    } else if (A == "--hist-global") {
      DP.HistLocalWidthMax = 0;
    } else if (A == "--cost-model" || A.rfind("--cost-model=", 0) == 0) {
      const char *V =
          A == "--cost-model" ? Next() : A.c_str() + strlen("--cost-model=");
      if (!V || !gpusim::CostModel::byName(V)) {
        usage();
        return 2;
      }
      DP.CostModelName = V;
    } else if (A == "--cross-model") {
      CrossModel = true;
    } else if (A == "--vjp") {
      VjpMode = true;
    } else if (A == "--devices" || A.rfind("--devices=", 0) == 0) {
      const char *V =
          A == "--devices" ? Next() : A.c_str() + strlen("--devices=");
      try {
        if (!V || (Devices = std::stoi(V)) < 1)
          throw std::invalid_argument("devices");
      } catch (...) {
        usage();
        return 2;
      }
    } else if (A == "--dump") {
      const char *V = Next();
      if (!V) {
        usage();
        return 2;
      }
      DumpSeed = std::stoll(V);
    } else if (A == "-v") {
      Verbose = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  if (DumpSeed >= 0) {
    FuzzCase C = VjpMode ? generateGrad(static_cast<uint64_t>(DumpSeed))
                         : generate(static_cast<uint64_t>(DumpSeed));
    printf("%s", toRegressionFile(C, {"seed " + std::to_string(DumpSeed)})
                     .c_str());
    return 0;
  }

  if (VjpMode) {
    // Gradient-check sweep: every seed's adjoints (compiled VJP, full
    // verified pipeline, simulated device) vs. central finite differences
    // of the primal through the reference interpreter.
    uint64_t Failures = 0;
    double MaxRelErr = 0.0;
    for (uint64_t Seed = Lo; Seed <= Hi; ++Seed) {
      GradPlan P = sampleGradPlan(Seed);
      FuzzCase C = renderGradPlan(P, Seed);
      GradOutcome O = runGradientCheck(C, DP);
      MaxRelErr = std::max(MaxRelErr, O.MaxRelErr);
      if (O.Ok) {
        if (Verbose)
          fprintf(stderr, "seed %llu: ok (max rel err %.3g)\n",
                  static_cast<unsigned long long>(Seed), O.MaxRelErr);
        continue;
      }

      ++Failures;
      fprintf(stderr, "seed %llu: GRADIENT FAIL\n%s\n",
              static_cast<unsigned long long>(Seed), O.Message.c_str());

      FuzzCase Min = C;
      std::string MinMsg = O.Message;
      if (Shrink) {
        GradShrinkResult SR = shrinkGrad(P, Seed, DP);
        Min = SR.Minimal;
        MinMsg = SR.Message;
        fprintf(stderr, "shrunk (%d steps removed, %d attempts) to:\n%s\n",
                SR.StepsRemoved, SR.Attempts, Min.Source.c_str());
      }

      std::string Path =
          OutDir + "/gradseed" + std::to_string(Seed) + ".fut";
      std::ofstream OS(Path);
      if (OS) {
        std::string FirstLine = MinMsg.substr(0, MinMsg.find('\n'));
        OS << toRegressionFile(
            Min, {"gradient-check failure, seed " + std::to_string(Seed),
                  FirstLine});
        fprintf(stderr, "wrote %s\n", Path.c_str());
      } else {
        fprintf(stderr, "cannot write %s (create the directory first?)\n",
                Path.c_str());
      }
    }
    fprintf(stderr,
            "gradient-checked seeds %llu..%llu: %llu failure(s), max rel "
            "err %.3g (tol %.1g)\n",
            static_cast<unsigned long long>(Lo),
            static_cast<unsigned long long>(Hi),
            static_cast<unsigned long long>(Failures), MaxRelErr,
            GradRelTol);
    return Failures == 0 ? 0 : 1;
  }

  uint64_t Failures = 0, BothFailed = 0;
  for (uint64_t Seed = Lo; Seed <= Hi; ++Seed) {
    Plan P = samplePlan(Seed);
    FuzzCase C = renderPlan(P, Seed);
    Outcome O = runDifferential(C, DP, Devices);
    if (O.Ok && CrossModel) {
      // The cross-model oracle is independent of the interpreter: both
      // cost models must produce bit-identical outputs and exactly equal
      // model-independent counters.  A disagreement is reported as-is —
      // the differential shrinker would not reproduce it.
      Outcome XM = runCrossModel(C, DP, Devices);
      if (!XM.Ok) {
        ++Failures;
        fprintf(stderr, "seed %llu: CROSS-MODEL FAIL\n%s\n",
                static_cast<unsigned long long>(Seed), XM.Message.c_str());
        continue;
      }
    }
    if (O.Ok) {
      if (O.BothFailed)
        ++BothFailed;
      if (Verbose)
        fprintf(stderr, "seed %llu: ok%s\n",
                static_cast<unsigned long long>(Seed),
                O.BothFailed ? " (agreed runtime error)" : "");
      continue;
    }

    ++Failures;
    fprintf(stderr, "seed %llu: FAIL\n%s\n",
            static_cast<unsigned long long>(Seed), O.Message.c_str());

    FuzzCase Min = C;
    std::string MinMsg = O.Message;
    if (Shrink) {
      ShrinkResult SR = shrink(P, Seed, DP, Devices);
      Min = SR.Minimal;
      MinMsg = SR.Message;
      fprintf(stderr,
              "shrunk (%d steps removed, %d attempts) to:\n%s\n",
              SR.StepsRemoved, SR.Attempts, Min.Source.c_str());
    }

    std::string Path =
        OutDir + "/seed" + std::to_string(Seed) + ".fut";
    std::ofstream OS(Path);
    if (OS) {
      // First message line only: the full report repeats the source.
      std::string FirstLine = MinMsg.substr(0, MinMsg.find('\n'));
      OS << toRegressionFile(
          Min, {"fuzzer failure, seed " + std::to_string(Seed),
                FirstLine});
      fprintf(stderr, "wrote %s\n", Path.c_str());
    } else {
      fprintf(stderr,
              "cannot write %s (create the directory first?)\n",
              Path.c_str());
    }
  }

  fprintf(stderr,
          "fuzzed seeds %llu..%llu: %llu failure(s), %llu agreed runtime "
          "error(s)\n",
          static_cast<unsigned long long>(Lo),
          static_cast<unsigned long long>(Hi),
          static_cast<unsigned long long>(Failures),
          static_cast<unsigned long long>(BothFailed));
  return Failures == 0 ? 0 : 1;
}
