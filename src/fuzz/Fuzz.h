//===- Fuzz.h - Seeded well-typed program fuzzer ----------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of small well-typed surface programs, a differential
/// oracle (full pipeline on the simulated device vs. the reference
/// interpreter straight from the frontend), and a shrinker producing
/// minimal failing .fut cases.
///
/// Generation is plan-based: a seed is first sampled into a Plan — a list
/// of construct steps with all constants pinned — and the plan is then
/// rendered to source.  Because every step only consumes the newest chain
/// array and previously produced scalars, any subset of steps still renders
/// a well-typed program, so shrinking is plan-step removal plus re-render
/// rather than syntactic surgery on source text.
///
/// The construct pool covers the surface the pipeline cares about: map
/// nests (including 2D nests and transposition), reduce, scan, conditional
/// masking, in-place updates, sequential loops in threads, histogram loops,
/// reduce_by_index (commutative operators only, so compiled-vs-interpreter
/// agreement is well-defined regardless of update order), concat, indexing,
/// integer power, and division by a data-dependent divisor (so the
/// typed-runtime-error path is exercised: a program where both sides fail
/// with the identical runtime error is agreement, not a failure).
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_FUZZ_FUZZ_H
#define FUTHARKCC_FUZZ_FUZZ_H

#include "gpusim/Device.h"
#include "interp/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fut {
namespace fuzz {

/// One generation step; the meaning of the numeric fields depends on Kind.
/// All randomness is resolved at plan-sampling time so rendering is a pure
/// function of the plan.
struct Step {
  enum class Kind : uint8_t {
    Map,       ///< map of a scalar expression over the chain array
    Mask,      ///< conditional mask map (filter encoding)
    Scan,      ///< scan (+) over the chain array
    Reduce,    ///< reduce (+ | min | max) to a scalar
    InPlace,   ///< in-place update of a fresh copy
    ZipIota,   ///< two-array map against iota n
    MapLoop,   ///< sequential loop inside every thread
    MapReduce, ///< nested reduction over a thread-private iota
    Histogram, ///< histogram loop into a replicated accumulator
    Concat,    ///< reduce (+) over the chain array concat'd with itself
    Transpose, ///< 2D nest, transpose, row-sums reduced to a scalar
    MapScan,   ///< scan over a thread-private iota, reduced in-thread
    PowMap,    ///< x ** k with a small non-negative k
    DivVar,    ///< division by a data-dependent divisor (may fault)
    IndexScalar, ///< read one element into the scalar pool
    ReduceByIndex, ///< reduce_by_index with a commutative operator,
                   ///< normalized in-range bins, result checksummed
  };

  Kind K = Kind::Map;
  /// Scalar-expression variant for steps that embed one (0..4).
  int Variant = 0;
  /// Step constants: a positive constant (>= 2) and a small constant.
  int64_t Pos = 2;
  int64_t Small = 0;
  /// Index into the scalars produced so far; renderers clamp it against
  /// the actually available pool (which shrinking may have emptied).
  int SRef = 0;
};

/// A fully pinned generation plan: rendering it is deterministic.
struct Plan {
  int64_t N = 8;               ///< length of every chain array
  std::vector<Step> Steps;
  std::vector<int32_t> Input;  ///< the a0 argument, N elements
};

/// A renderable program with matching entry-point arguments.
struct FuzzCase {
  uint64_t Seed = 0;
  std::string Source;
  std::vector<Value> Args;
};

/// Deterministically samples plan number \p Seed: same seed, same plan,
/// forever (existing seeds' programs are pinned by the regress corpus).
Plan samplePlan(uint64_t Seed);

/// Renders \p P to surface source + arguments.  \p Seed is only recorded
/// in the result for reporting.
FuzzCase renderPlan(const Plan &P, uint64_t Seed);

/// samplePlan + renderPlan.
FuzzCase generate(uint64_t Seed);

/// The outcome of one differential run.
struct Outcome {
  bool Ok = false;
  /// Both sides failed with the identical typed runtime error — counts as
  /// agreement (Ok == true).
  bool BothFailed = false;
  /// On mismatch: the seed, the source, and both results, so the failure
  /// reproduces from the log alone.
  std::string Message;
};

/// Runs \p C through the reference interpreter (frontend output, no
/// optimisation) and the full pipeline + simulated device, comparing
/// bit-for-bit.  Typed runtime errors must agree in kind and message;
/// any compile or verifier error is a failure (generated programs are
/// well-typed by construction).  \p DP selects the simulated device —
/// the --no-mem-plan sweep passes a configuration with UseMemPlan off to
/// pin the ablation path against the same oracle.  \p Devices > 1 routes
/// the device leg through the sharded path (compiled with a shard plan,
/// executed on a DeviceGroup); results must stay bit-identical to the
/// reference at any device count.
Outcome runDifferential(const FuzzCase &C,
                        const gpusim::DeviceParams &DP =
                            gpusim::DeviceParams::gtx780(),
                        int Devices = 1);

/// Same oracle for an externally provided source + args (the regress
/// corpus runner).
Outcome runSourceDifferential(const std::string &Source,
                              const std::vector<Value> &Args,
                              const gpusim::DeviceParams &DP =
                                  gpusim::DeviceParams::gtx780(),
                              int Devices = 1);

/// Cross-model agreement oracle: compiles once and runs the device leg
/// twice — once under the roofline cost model, once under the pipeline
/// model — demanding bit-identical outputs (or the identical typed
/// runtime error) and exactly equal model-independent counters
/// (GlobalTransactions, TransferredBytes, atomic traffic, and the
/// Coalesced + Scattered == GlobalTransactions decomposition).  The cost
/// model prices cycles; it must never influence what the program computes
/// or how much memory traffic it performs.
Outcome runCrossModel(const FuzzCase &C,
                      const gpusim::DeviceParams &DP =
                          gpusim::DeviceParams::gtx780(),
                      int Devices = 1);

/// Greedy shrink: repeatedly re-render with one step removed (then with a
/// shorter array / zeroed inputs) while the differential failure persists.
/// \p DP and \p Devices must be the device configuration the failure was
/// found under — a --no-mem-plan ablation failure only reproduces with
/// the planner off, and a sharding failure only with the same device
/// count, so shrinking under the default parameters would see nothing to
/// shrink.
struct ShrinkResult {
  Plan MinimalPlan;
  FuzzCase Minimal;
  std::string Message;   ///< failure message of the minimal case
  int StepsRemoved = 0;
  int Attempts = 0;
};
ShrinkResult shrink(const Plan &P, uint64_t Seed,
                    const gpusim::DeviceParams &DP =
                        gpusim::DeviceParams::gtx780(),
                    int Devices = 1);

/// Serialises \p C as a self-contained .fut regression file: comment
/// header (one line per \p CommentLines entry), an "-- args:" line, then
/// the source.  parseArgsLine inverts the args line.
std::string toRegressionFile(const FuzzCase &C,
                             const std::vector<std::string> &CommentLines);

/// Parses an "-- args:" header line ("-- args: 8 [1,2,3]") back into
/// values; returns false on malformed input.
bool parseArgsLine(const std::string &Line, std::vector<Value> &Out);

/// Loads a .fut regression file written by toRegressionFile (or by hand):
/// splits the args header from the source.  Returns false if no valid
/// "-- args:" line is present.
bool loadRegressionFile(const std::string &Contents, FuzzCase &Out);

} // namespace fuzz
} // namespace fut

#endif // FUTHARKCC_FUZZ_FUZZ_H
