//===- GradFuzz.h - Seeded gradient-check fuzzer ----------------*- C++ -*-===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded generator of small *smooth* f64 programs and a gradient oracle
/// for the reverse-mode AD pass: each program is compiled with --vjp=main
/// through the full pipeline onto the simulated device, and the adjoints it
/// returns are checked against central finite differences of the primal
/// through the reference interpreter (frontend output, no optimisation).
///
/// Generation follows the differential fuzzer's plan-based scheme — a seed
/// samples a GradPlan whose steps each consume the newest chain array, so
/// any subset of steps renders a well-typed program and shrinking is
/// plan-step removal.  The construct pool is chosen for differentiability:
/// smooth bounded map expressions (sin/cos/exp/atan, division by 1+x^2),
/// maps capturing the active scalar input as a free variable, sum/product/
/// max reductions, scans, dot products, sequential loops (scalar- and
/// array-carried, exercising the tape), in-place updates, n-dependent (so
/// perturbation-stable) branches, and reduce_by_index gathers.  Magnitudes
/// are kept contractive so central differences stay well-conditioned.
///
//===----------------------------------------------------------------------===//

#ifndef FUTHARKCC_FUZZ_GRADFUZZ_H
#define FUTHARKCC_FUZZ_GRADFUZZ_H

#include "fuzz/Fuzz.h"

#include <cstdint>
#include <string>
#include <vector>

namespace fut {
namespace fuzz {

/// One gradient-plan step; all randomness is resolved at sampling time.
struct GradStep {
  enum class Kind : uint8_t {
    Map,        ///< smooth scalar map over the chain array
    MapFree,    ///< map whose lambda captures the active scalar x0
    SumReduce,  ///< reduce (+) into the scalar pool
    ProdReduce, ///< reduce (*) over values normalised near 1
    MaxReduce,  ///< reduce max into the scalar pool
    Scan,       ///< scan (+), rebounded with atan
    Dot,        ///< dot product of the chain with a cosine image of itself
    Loop,       ///< sequential loop: scalar-carried or array-carried
    InPlace,    ///< fresh map, then one cell overwritten with an x0 term
    Branch,     ///< if on n (perturbation-stable), both branches active
    RbiGather,  ///< reduce_by_index (+) over iota-derived bins, checksummed
  };

  Kind K = Kind::Map;
  int Variant = 0;  ///< scalar-expression / sub-shape selector
  int64_t Pos = 2;  ///< small positive constant (width, index, modulus)
  int64_t Small = 0; ///< small signed constant, |Small| <= 9
  int SRef = 0;     ///< index into the scalar pool (clamped at render)
};

/// A fully pinned gradient plan: rendering is deterministic, and the
/// rendered program has the fixed signature
///   fun main (n: i32) (x0: f64) (a0: [n]f64): f64
/// so the oracle always knows which inputs are active.
struct GradPlan {
  int64_t N = 6;
  std::vector<GradStep> Steps;
  double X0 = 0.5;
  std::vector<double> Input; ///< the a0 argument, N elements
};

/// Deterministically samples gradient plan number \p Seed.
GradPlan sampleGradPlan(uint64_t Seed);

/// Renders \p P to surface source + arguments (n, x0, a0 — no seed; the
/// oracle appends the output seed when calling main_vjp).
FuzzCase renderGradPlan(const GradPlan &P, uint64_t Seed);

/// sampleGradPlan + renderGradPlan.
FuzzCase generateGrad(uint64_t Seed);

/// The outcome of one gradient check.
struct GradOutcome {
  bool Ok = false;
  /// Largest relative gradient error over all active input components
  /// (x0 and every element of a0), whether or not it passed.
  double MaxRelErr = 0.0;
  /// On failure: the seed, the worst component, both derivatives and the
  /// source, so the failure reproduces from the log alone.
  std::string Message;
};

/// Relative-error tolerance of the oracle: |vjp - fd| below 1e-4 of
/// max(1, |vjp|, |fd|) per component.
constexpr double GradRelTol = 1e-4;

/// Compiles \p C.Source with --vjp=main through the full (verified)
/// pipeline, runs main_vjp on the simulated device with seed 1, and
/// compares every adjoint component against central finite differences of
/// the primal through the reference interpreter.  Also cross-checks the
/// primal value the VJP returns against the interpreter's.
GradOutcome runGradientCheck(const FuzzCase &C,
                             const gpusim::DeviceParams &DP =
                                 gpusim::DeviceParams::gtx780());

/// Greedy shrink under the gradient oracle: drop plan steps, shorten the
/// array, and zero inputs while the check keeps failing.
struct GradShrinkResult {
  GradPlan MinimalPlan;
  FuzzCase Minimal;
  std::string Message;
  int StepsRemoved = 0;
  int Attempts = 0;
};
GradShrinkResult shrinkGrad(const GradPlan &P, uint64_t Seed,
                            const gpusim::DeviceParams &DP =
                                gpusim::DeviceParams::gtx780());

} // namespace fuzz
} // namespace fut

#endif // FUTHARKCC_FUZZ_GRADFUZZ_H
