//===- GradFuzz.cpp - Seeded gradient-check fuzzer ------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "fuzz/GradFuzz.h"

#include "driver/Compiler.h"
#include "parser/Desugar.h"
#include "support/Utils.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace fut;
using namespace fut::fuzz;

//===----------------------------------------------------------------------===//
// Plan sampling
//===----------------------------------------------------------------------===//

GradPlan fut::fuzz::sampleGradPlan(uint64_t Seed) {
  // A different mixing constant than samplePlan, so seed k's gradient
  // program is unrelated to seed k's differential program.
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 0x6a09e667f3bcc909ULL);

  GradPlan P;
  // Small arrays keep the finite-difference loop cheap: the oracle runs
  // the interpreter twice per input component.
  P.N = 4 + static_cast<int64_t>(Rng.nextBelow(9));
  int Steps = 3 + static_cast<int>(Rng.nextBelow(5));
  for (int I = 0; I < Steps; ++I) {
    GradStep S;
    S.K = static_cast<GradStep::Kind>(Rng.nextBelow(11));
    S.Variant = static_cast<int>(Rng.nextBelow(5));
    S.Pos = static_cast<int64_t>(Rng.nextBelow(8)) + 2;
    S.Small = static_cast<int64_t>(Rng.nextBelow(19)) - 9;
    S.SRef = static_cast<int>(Rng.nextBelow(8));
    P.Steps.push_back(S);
  }
  // Full-precision continuous inputs: exact ties (which would make max
  // reductions and branch points non-differentiable) have measure zero.
  P.X0 = Rng.nextDouble() * 2.0 - 1.0;
  for (int64_t I = 0; I < P.N; ++I)
    P.Input.push_back(Rng.nextDouble() * 4.0 - 2.0);
  return P;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

/// A non-negative fixed-point f64 literal; negative values are rendered as
/// a parenthesised subtraction (the surface grammar has no unary minus).
std::string fl(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.4ff64", std::fabs(V));
  if (V < 0)
    return std::string("(0.0f64 - ") + Buf + ")";
  return Buf;
}

/// Render state, mirroring the differential fuzzer: a linear chain of
/// f64 arrays (a0, a1, ...), a pool of f64 scalars (s0, s1, ...), and
/// auxiliary names (b0, h0, ...) for the non-chain arrays some steps need.
struct GradRender {
  std::ostringstream Body;
  int NextArr = 0;
  int NextScalar = 0;
  int NextAux = 0;
  int64_t N;

  explicit GradRender(int64_t N) : N(N) {}

  std::string arr() const { return "a" + std::to_string(NextArr); }
  std::string newArr() { return "a" + std::to_string(++NextArr); }
  std::string newScalar() { return "s" + std::to_string(NextScalar++); }

  /// A small additive term reading the scalar pool (or a constant when
  /// shrinking has emptied it); scaled down so chains stay contractive.
  std::string scalarTerm(const GradStep &S) {
    if (NextScalar > 0)
      return "s" + std::to_string(S.SRef % NextScalar) + " * 0.01f64";
    return fl(static_cast<double>(S.Small) / 10.0);
  }

  /// The smooth scalar expression a Map step embeds.  All variants are
  /// differentiable everywhere and bounded or contractive, so chained
  /// steps cannot blow up the magnitudes finite differences depend on.
  std::string smoothExpr(const GradStep &S, const std::string &X) {
    switch (S.Variant) {
    case 0:
      return "sin " + X + " + cos (" + X + " * 0.5f64)";
    case 1:
      return X + " * 0.3f64 + " + fl(static_cast<double>(S.Small) / 10.0);
    case 2:
      return "exp (" + X + " * 0.1f64) * 0.5f64";
    case 3:
      return "atan " + X + " + " + scalarTerm(S);
    default:
      return X + " / (1.0f64 + " + X + " * " + X + ")";
    }
  }

  void render(const GradStep &S) {
    switch (S.K) {
    case GradStep::Kind::Map: {
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out << " = map (\\(x: f64): f64 -> "
           << smoothExpr(S, "x") << ") " << In << "\n";
      return;
    }
    case GradStep::Kind::MapFree: {
      // The active scalar input enters as a lambda free variable: its
      // per-element adjoint contributions must be reduced with (+).
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out
           << " = map (\\(x: f64): f64 -> x * (x0 * 0.2f64) + sin x0) "
           << In << "\n";
      return;
    }
    case GradStep::Kind::SumReduce: {
      std::string In = arr(), Sc = newScalar();
      Body << "  let " << Sc << " = reduce (+) 0.0f64 " << In << "\n";
      return;
    }
    case GradStep::Kind::ProdReduce: {
      // Normalised near 1 so the product of up to N factors stays small
      // and the prefix/suffix exchange is well-conditioned.
      std::string In = arr(), Norm = newArr(), Sc = newScalar();
      Body << "  let " << Norm
           << " = map (\\(x: f64): f64 -> 1.0f64 + x * x * 0.01f64) " << In
           << "\n"
           << "  let " << Sc << " = reduce (*) 1.0f64 " << Norm << "\n";
      return;
    }
    case GradStep::Kind::MaxReduce: {
      std::string In = arr(), Sc = newScalar();
      Body << "  let " << Sc << " = reduce max 0.0f64 " << In << "\n";
      return;
    }
    case GradStep::Kind::Scan: {
      // Rebound with atan: prefix sums grow with N, and later exp-style
      // steps must not see unbounded inputs.
      std::string In = arr(), Sums = newArr(), Out = newArr();
      Body << "  let " << Sums << " = scan (+) 0.0f64 " << In << "\n"
           << "  let " << Out
           << " = map (\\(x: f64): f64 -> atan (x * 0.1f64)) " << Sums
           << "\n";
      return;
    }
    case GradStep::Kind::Dot: {
      std::string In = arr(), Cos = newArr(), Sc = newScalar();
      Body << "  let " << Cos << " = map (\\(x: f64): f64 -> cos x) " << In
           << "\n"
           << "  let " << Sc
           << " = reduce (+) 0.0f64 (map (\\(x: f64) (y: f64): f64 -> "
              "x * y) "
           << In << " " << Cos << ")\n";
      return;
    }
    case GradStep::Kind::Loop: {
      if (S.Variant % 2 == 0) {
        // Scalar-carried loop indexing the chain array: the reverse loop
        // must restore each iterate from the tape and route the adjoint
        // through the indexed reads.
        std::string In = arr(), Sc = newScalar();
        Body << "  let " << Sc
             << " = loop (acc = 1.0f64) for i < n do acc * (1.0f64 + "
             << In << "[i] * " << In << "[i] * 0.01f64)\n";
        return;
      }
      // Array-carried loop over a fresh (consumable) copy: the tape must
      // checkpoint a whole array per iteration.
      int64_t Iters = 2 + S.Pos % 3;
      std::string In = arr(), Fresh = newArr(), Out = newArr();
      Body << "  let " << Fresh
           << " = map (\\(x: f64): f64 -> x * 0.5f64) " << In << "\n"
           << "  let " << Out << " = loop (acc = " << Fresh
           << ") for i < " << Iters
           << " do map (\\(x: f64): f64 -> sin x + 0.1f64) acc\n";
      return;
    }
    case GradStep::Kind::InPlace: {
      // One cell of a fresh copy is overwritten with an x0 term: the
      // overwritten cell's upstream adjoint must be masked out and the
      // stored value's routed to x0.
      int64_t Idx = S.Pos % N;
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out
           << " = map (\\(x: f64): f64 -> x * 0.5f64 + 0.2f64) " << In
           << "\n"
           << "  let " << Out << "[" << Idx << "] = x0 * 0.3f64\n";
      return;
    }
    case GradStep::Kind::Branch: {
      // The condition depends only on n, so a perturbation of any float
      // input can never flip the branch under finite differences.
      int64_t M = 2 + S.Pos % 3;
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out << " = if (n % " << M << ") == 0\n"
           << "    then map (\\(x: f64): f64 -> x * 0.4f64 + 0.1f64) "
           << In << "\n"
           << "    else map (\\(x: f64): f64 -> sin x) " << In << "\n";
      return;
    }
    case GradStep::Kind::RbiGather: {
      // Bins derive from iota, not data, so they are perturbation-stable;
      // the histogram is checksummed so every bin's adjoint flows back.
      int64_t W = 2 + S.Pos % 6;
      std::string In = arr();
      std::string Bins = "b" + std::to_string(NextAux);
      std::string Hist = "h" + std::to_string(NextAux++);
      std::string Sc = newScalar();
      Body << "  let " << Bins << " = map (\\(i: i32): i32 -> i % " << W
           << ") (iota n)\n"
           << "  let " << Hist << " = reduce_by_index (replicate " << W
           << " 0.0f64) (+) 0.0f64 " << Bins << " " << In << "\n"
           << "  let " << Sc
           << " = reduce (+) 0.0f64 (map (\\(x: f64): f64 -> sin x) "
           << Hist << ")\n";
      return;
    }
    }
  }
};

} // namespace

FuzzCase fut::fuzz::renderGradPlan(const GradPlan &P, uint64_t Seed) {
  GradRender R(P.N);
  R.Body << "fun main (n: i32) (x0: f64) (a0: [n]f64): f64 =\n";
  for (const GradStep &S : P.Steps)
    R.render(S);

  // Checksum the final chain array and fold in every scalar produced along
  // the way, each with its own weight, so no construct's adjoint path
  // escapes the comparison.  The x0 term keeps x0 active even in the empty
  // plan the shrinker may reach.
  R.Body << "  let cf = reduce (+) 0.0f64 (map (\\(x: f64): f64 -> sin x) "
         << R.arr() << ")\n";
  R.Body << "  in cf * 0.1f64 + x0 * 0.05f64";
  for (int I = 0; I < R.NextScalar; ++I) {
    char W[32];
    std::snprintf(W, sizeof(W), "%.4ff64", 0.1 / (1 + I));
    R.Body << " + s" << I << " * " << W;
  }
  R.Body << "\n";

  FuzzCase C;
  C.Seed = Seed;
  C.Source = R.Body.str();
  C.Args.push_back(
      Value::scalar(PrimValue::makeI32(static_cast<int32_t>(P.N))));
  C.Args.push_back(Value::scalar(PrimValue::makeF64(P.X0)));
  std::vector<PrimValue> Elems;
  for (double D : P.Input)
    Elems.push_back(PrimValue::makeF64(D));
  C.Args.push_back(Value::array(ScalarKind::F64, {P.N}, std::move(Elems)));
  return C;
}

FuzzCase fut::fuzz::generateGrad(uint64_t Seed) {
  return renderGradPlan(sampleGradPlan(Seed), Seed);
}

//===----------------------------------------------------------------------===//
// The gradient oracle
//===----------------------------------------------------------------------===//

GradOutcome fut::fuzz::runGradientCheck(const FuzzCase &C,
                                        const gpusim::DeviceParams &DP) {
  GradOutcome O;
  auto Fail = [&](const std::string &What) {
    O.Ok = false;
    O.Message = "seed: " + std::to_string(C.Seed) + "\n" + What +
                "\nprogram:\n" + C.Source;
    return O;
  };

  // Reference: the unoptimised frontend output on the plain interpreter.
  NameSource RefNames;
  auto RefProg = frontend(C.Source, RefNames);
  if (!RefProg)
    return Fail("frontend failed: " + RefProg.getError().str());
  Program RefP = RefProg.take();
  InterpOptions IO;
  IO.ConsumeOnUpdate = true;

  auto Primal = [&](const std::vector<Value> &Args) -> ErrorOr<double> {
    Interpreter I(RefP, IO);
    auto R = I.run(Args);
    if (!R)
      return R.getError();
    return (*R)[0].getScalar().getFloat();
  };

  auto Base = Primal(C.Args);
  if (!Base)
    return Fail("reference primal failed: " + Base.getError().str());

  // Subject: --vjp=main through the full verified pipeline, main_vjp on
  // the simulated device with output seed 1, so the adjoints *are* the
  // gradient.
  NameSource Names;
  CompilerOptions CO;
  CO.VJP = "main";
  auto Compiled = compileSource(C.Source, Names, CO);
  if (!Compiled)
    return Fail("vjp compilation failed: " + Compiled.getError().str());

  std::vector<Value> VArgs = C.Args;
  VArgs.push_back(Value::scalar(PrimValue::makeF64(1.0)));
  DeviceRunOptions RO;
  RO.Device = DP;
  if (DP.UseMemPlan)
    RO.MemPlan = &Compiled->MemPlan;
  auto R = runOnDevice(Compiled->P, VArgs, RO, "main_vjp");
  if (!R)
    return Fail("device vjp run failed: " + R.getError().str());
  if (R->Outputs.size() != 3)
    return Fail("vjp arity mismatch: expected (primal, adj x0, adj a0), "
                "got " +
                std::to_string(R->Outputs.size()) + " results");

  // The primal the VJP carries along must match the reference (loosely:
  // kernel extraction may re-associate float reductions).
  double DevPrimal = R->Outputs[0].getScalar().getFloat();
  if (std::fabs(DevPrimal - *Base) >
      1e-6 * std::max({1.0, std::fabs(DevPrimal), std::fabs(*Base)}))
    return Fail("primal mismatch: device vjp " + std::to_string(DevPrimal) +
                ", reference " + std::to_string(*Base));

  if (!R->Outputs[2].isArray() ||
      R->Outputs[2].numElems() != C.Args[2].numElems())
    return Fail("adjoint of a0 has the wrong shape");

  // Central finite differences per active input component.
  std::string WorstWhat;
  double WorstVjp = 0, WorstFd = 0;
  bool AnyBad = false;
  std::string FdError;
  auto Check = [&](const std::string &What, double Vjp, size_t ArgIdx,
                   int64_t Elem) {
    auto At = [&](double H) -> ErrorOr<double> {
      std::vector<Value> A = C.Args;
      if (A[ArgIdx].isScalar()) {
        A[ArgIdx] = Value::scalar(
            PrimValue::makeF64(A[ArgIdx].getScalar().getFloat() + H));
      } else {
        Value V = A[ArgIdx];
        V.flatMut()[static_cast<size_t>(Elem)] = PrimValue::makeF64(
            V.flat()[static_cast<size_t>(Elem)].getFloat() + H);
        A[ArgIdx] = V;
      }
      return Primal(A);
    };
    double X = ArgIdx == 1
                   ? C.Args[1].getScalar().getFloat()
                   : C.Args[2].flat()[static_cast<size_t>(Elem)].getFloat();
    double H = 1e-6 * std::max(1.0, std::fabs(X));
    auto Hi = At(H), Lo = At(-H);
    if (!Hi || !Lo) {
      FdError = "perturbed primal failed at " + What + ": " +
                (!Hi ? Hi.getError().str() : Lo.getError().str());
      return;
    }
    double Fd = (*Hi - *Lo) / (2 * H);
    double Rel =
        std::fabs(Vjp - Fd) / std::max({1.0, std::fabs(Vjp), std::fabs(Fd)});
    if (Rel > O.MaxRelErr) {
      O.MaxRelErr = Rel;
      WorstWhat = What;
      WorstVjp = Vjp;
      WorstFd = Fd;
    }
    if (Rel >= GradRelTol)
      AnyBad = true;
  };

  Check("x0", R->Outputs[1].getScalar().getFloat(), 1, 0);
  const std::vector<PrimValue> &AdjA = R->Outputs[2].flat();
  for (size_t I = 0; I < AdjA.size(); ++I)
    Check("a0[" + std::to_string(I) + "]", AdjA[I].getFloat(), 2,
          static_cast<int64_t>(I));

  if (!FdError.empty())
    return Fail(FdError);
  if (AnyBad) {
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "gradient mismatch at %s: vjp %.12g, central fd %.12g "
                  "(rel err %.3g, tol %.1g)",
                  WorstWhat.c_str(), WorstVjp, WorstFd, O.MaxRelErr,
                  GradRelTol);
    return Fail(Buf);
  }

  O.Ok = true;
  return O;
}

//===----------------------------------------------------------------------===//
// Shrinking
//===----------------------------------------------------------------------===//

GradShrinkResult fut::fuzz::shrinkGrad(const GradPlan &P, uint64_t Seed,
                                       const gpusim::DeviceParams &DP) {
  GradShrinkResult SR;
  GradPlan Cur = P;

  auto Fails = [&](const GradPlan &Cand, std::string &Msg) {
    ++SR.Attempts;
    GradOutcome O = runGradientCheck(renderGradPlan(Cand, Seed), DP);
    if (!O.Ok)
      Msg = O.Message;
    return !O.Ok;
  };

  std::string Msg;
  if (!Fails(Cur, Msg)) {
    SR.MinimalPlan = Cur;
    SR.Minimal = renderGradPlan(Cur, Seed);
    SR.Message = "case does not fail; nothing to shrink";
    return SR;
  }
  SR.Message = Msg;

  // Pass 1: drop steps greedily until no single removal keeps the failure.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (size_t I = 0; I < Cur.Steps.size(); ++I) {
      GradPlan Cand = Cur;
      Cand.Steps.erase(Cand.Steps.begin() + I);
      if (Fails(Cand, Msg)) {
        Cur = std::move(Cand);
        SR.Message = Msg;
        ++SR.StepsRemoved;
        Progress = true;
        break;
      }
    }
  }

  // Pass 2: shorten the array (halving, floor 4).
  while (Cur.N > 4) {
    GradPlan Cand = Cur;
    Cand.N = std::max<int64_t>(4, Cand.N / 2);
    Cand.Input.resize(static_cast<size_t>(Cand.N));
    if (Cand.N == Cur.N || !Fails(Cand, Msg))
      break;
    Cur = std::move(Cand);
    SR.Message = Msg;
  }

  // Pass 3: zero inputs (x0 first, then elements) where the failure
  // persists.
  if (Cur.X0 != 0.0) {
    GradPlan Cand = Cur;
    Cand.X0 = 0.0;
    if (Fails(Cand, Msg)) {
      Cur = std::move(Cand);
      SR.Message = Msg;
    }
  }
  for (size_t I = 0; I < Cur.Input.size(); ++I) {
    if (Cur.Input[I] == 0.0)
      continue;
    GradPlan Cand = Cur;
    Cand.Input[I] = 0.0;
    if (Fails(Cand, Msg)) {
      Cur = std::move(Cand);
      SR.Message = Msg;
    }
  }

  SR.MinimalPlan = Cur;
  SR.Minimal = renderGradPlan(Cur, Seed);
  return SR;
}
