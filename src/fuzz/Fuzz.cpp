//===- Fuzz.cpp - Seeded well-typed program fuzzer ------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzz.h"

#include "driver/Compiler.h"
#include "parser/Desugar.h"
#include "support/Utils.h"

#include <sstream>

using namespace fut;
using namespace fut::fuzz;

//===----------------------------------------------------------------------===//
// Plan sampling
//===----------------------------------------------------------------------===//

Plan fut::fuzz::samplePlan(uint64_t Seed) {
  // Mix the seed so consecutive seeds give unrelated plans.
  SplitMix64 Rng(Seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL);

  Plan P;
  P.N = 4 + static_cast<int64_t>(Rng.nextBelow(37));
  int Steps = 3 + static_cast<int>(Rng.nextBelow(5));
  for (int I = 0; I < Steps; ++I) {
    Step S;
    S.K = static_cast<Step::Kind>(Rng.nextBelow(16));
    S.Variant = static_cast<int>(Rng.nextBelow(5));
    S.Pos = static_cast<int64_t>(Rng.nextBelow(8)) + 2;
    S.Small = static_cast<int64_t>(Rng.nextBelow(19)) - 9;
    S.SRef = static_cast<int>(Rng.nextBelow(8));
    P.Steps.push_back(S);
  }
  for (int64_t I = 0; I < P.N; ++I)
    P.Input.push_back(static_cast<int32_t>(Rng.nextBelow(101)) - 50);
  return P;
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

namespace {

/// Render state: a linear chain of length-n arrays (a0, a1, ...) plus
/// accumulated scalars (s0, s1, ...).  Every step consumes the newest
/// array, so removing any subset of steps keeps the program well-typed.
struct Render {
  std::ostringstream Body;
  int NextArr = 0;
  int NextScalar = 0;
  int ScalarCount = 0;
  int64_t N;

  explicit Render(int64_t N) : N(N) {}

  std::string arr() const { return "a" + std::to_string(NextArr); }
  std::string newArr() { return "a" + std::to_string(++NextArr); }
  std::string newScalar() {
    ++ScalarCount;
    return "s" + std::to_string(NextScalar++);
  }

  /// The scalar expression a step embeds, fully determined by the step.
  std::string scalarExpr(const Step &S, const std::string &X) {
    switch (S.Variant) {
    case 0:
      return X + " * " + std::to_string(S.Pos) + " + " +
             std::to_string(S.Small);
    case 1:
      return X + " % " + std::to_string(S.Pos) + " - " +
             std::to_string(S.Small);
    case 2:
      return X + " - " + X + " / " + std::to_string(S.Pos);
    case 3:
      if (ScalarCount > 0)
        return X + " + s" + std::to_string(S.SRef % ScalarCount);
      return X + " + " + std::to_string(S.Small);
    default:
      return std::to_string(S.Small) + " - " + X;
    }
  }

  void render(const Step &S) {
    switch (S.K) {
    case Step::Kind::Map: {
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out << " = map (\\(x: i32): i32 -> "
           << scalarExpr(S, "x") << ") " << In << "\n";
      return;
    }
    case Step::Kind::Mask: {
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out << " = map (\\(x: i32): i32 -> if x % "
           << S.Pos << " == 0 then " << scalarExpr(S, "x") << " else "
           << std::to_string(S.Small) << ") " << In << "\n";
      return;
    }
    case Step::Kind::Scan: {
      std::string In = arr(), Out = newArr();
      // Parenthesised: a bare negative neutral would parse as binary minus.
      Body << "  let " << Out << " = scan (+) (0 + "
           << std::to_string(S.Small) << ") " << In << "\n";
      return;
    }
    case Step::Kind::Reduce: {
      std::string In = arr(), Sc = newScalar();
      switch (S.Variant % 3) {
      case 0:
        Body << "  let " << Sc << " = reduce (+) 0 " << In << "\n";
        break;
      case 1:
        Body << "  let " << Sc << " = reduce min 1000000 " << In << "\n";
        break;
      default:
        Body << "  let " << Sc << " = reduce max (0 - 1000000) " << In
             << "\n";
        break;
      }
      return;
    }
    case Step::Kind::InPlace: {
      // In-place update of a fresh copy: the chain array may be aliased by
      // an earlier binding's view, so consume a freshly mapped copy.
      std::string In = arr(), Fresh = newArr();
      Body << "  let " << Fresh << " = map (\\(x: i32): i32 -> x + 0) "
           << In << "\n";
      std::string Out = newArr();
      int64_t Idx = S.Pos % N;
      Body << "  let " << Out << " = " << Fresh << " with [" << Idx
           << "] <- " << Fresh << "[" << Idx << "] * 2 + "
           << std::to_string(S.Small) << "\n";
      return;
    }
    case Step::Kind::ZipIota: {
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out
           << " = map (\\(x: i32) (i: i32): i32 -> x * 2 - i) " << In
           << " (iota n)\n";
      return;
    }
    case Step::Kind::MapLoop: {
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out
           << " = map (\\(x: i32): i32 -> loop (acc = x) for i < " << S.Pos
           << " do acc + i * " << std::to_string((S.Small & 3) + 2) << ") "
           << In << "\n";
      return;
    }
    case Step::Kind::MapReduce: {
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out
           << " = map (\\(x: i32): i32 -> reduce (+) x (iota " << S.Pos
           << ")) " << In << "\n";
      return;
    }
    case Step::Kind::Histogram: {
      std::string In = arr(), Sc = newScalar();
      Body << "  let " << Sc << " = reduce (+) 0\n"
           << "    (loop (h = replicate " << S.Pos << " 0) for i < n do\n"
           << "      let c = " << In << "[i] % " << S.Pos << "\n"
           << "      let c = if c < 0 then c + " << S.Pos << " else c\n"
           << "      in h with [c] <- h[c] + 1)\n";
      return;
    }
    case Step::Kind::Concat: {
      std::string In = arr(), Sc = newScalar();
      Body << "  let " << Sc << " = reduce (+) (0 + " << S.Small
           << ") (concat " << In << " " << In << ")\n";
      return;
    }
    case Step::Kind::Transpose: {
      std::string In = arr(), Sc = newScalar();
      int64_t K = S.Pos;
      Body << "  let m" << Sc
           << " = map (\\(x: i32): [" << K << "]i32 -> "
           << "map (\\(i: i32): i32 -> x * " << ((S.Small & 3) + 1)
           << " + i) (iota " << K << ")) " << In << "\n"
           << "  let " << Sc
           << " = reduce (+) 0 (map (\\(r: [n]i32): i32 -> reduce (+) 0 r)"
           << " (transpose m" << Sc << "))\n";
      return;
    }
    case Step::Kind::MapScan: {
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out
           << " = map (\\(x: i32): i32 -> reduce (+) x (scan (+) 0 (iota "
           << S.Pos << "))) " << In << "\n";
      return;
    }
    case Step::Kind::PowMap: {
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out << " = map (\\(x: i32): i32 -> x ** "
           << (S.Pos % 4) << " + " << std::to_string(S.Small) << ") " << In
           << "\n";
      return;
    }
    case Step::Kind::DivVar: {
      // The divisor x % Pos + Small can be zero for some inputs, so this
      // step exercises the typed-runtime-error agreement path.
      std::string In = arr(), Out = newArr();
      Body << "  let " << Out << " = map (\\(x: i32): i32 -> " << S.Pos
           << " / (x % " << S.Pos << " + " << std::to_string(S.Small)
           << ")) " << In << "\n";
      return;
    }
    case Step::Kind::IndexScalar: {
      std::string In = arr(), Sc = newScalar();
      Body << "  let " << Sc << " = " << In << "[" << (S.Pos % N) << "] * "
           << std::to_string((S.Small & 3) + 1) << "\n";
      return;
    }
    case Step::Kind::ReduceByIndex: {
      // Indexed reduction with a commutative operator (+ / min / max), so
      // the device's per-shard fold order cannot change the result.  The
      // neutral must be the operator's true identity — shards beyond
      // device 0 prime their partial from it, so anything else would be
      // folded in once per extra device.  Bins are normalized into
      // [0, Pos); the histogram is checksummed into the scalar pool so
      // every bin reaches the comparison.
      std::string In = arr(), Sc = newScalar();
      int64_t W = S.Pos;
      const char *Op;
      std::string Ne;
      switch (S.Variant % 3) {
      case 0:
        Op = "(+)";
        Ne = "0";
        break;
      case 1:
        Op = "min";
        Ne = "2147483647";
        break;
      default:
        Op = "max";
        Ne = "(0 - 2147483647 - 1)";
        break;
      }
      Body << "  let ri" << Sc << " = map (\\(x: i32): i32 -> "
           << "let c = x % " << W << " in if c < 0 then c + " << W
           << " else c) " << In << "\n"
           << "  let rh" << Sc << " = reduce_by_index (replicate " << W
           << " " << Ne << ") " << Op << " " << Ne << " ri" << Sc << " "
           << In << "\n"
           << "  let " << Sc << " = reduce (+) 0 rh" << Sc << "\n";
      return;
    }
    }
  }
};

} // namespace

FuzzCase fut::fuzz::renderPlan(const Plan &P, uint64_t Seed) {
  Render R(P.N);
  R.Body << "fun main (n: i32) (a0: [n]i32): ([n]i32, i32) =\n";
  for (const Step &S : P.Steps)
    R.render(S);

  // Fold every scalar produced along the way into the checksum so no
  // construct's result escapes the comparison.
  R.Body << "  let check = reduce (+) 0 " << R.arr() << "\n";
  std::string Check = "check";
  for (int I = 0; I < R.NextScalar; ++I)
    Check += " + s" + std::to_string(I);
  R.Body << "  in (" << R.arr() << ", " << Check << ")\n";

  FuzzCase C;
  C.Seed = Seed;
  C.Source = R.Body.str();
  std::vector<PrimValue> Elems;
  for (int64_t I = 0; I < P.N; ++I)
    Elems.push_back(PrimValue::makeI32(
        I < static_cast<int64_t>(P.Input.size()) ? P.Input[I] : 0));
  C.Args.push_back(
      Value::scalar(PrimValue::makeI32(static_cast<int32_t>(P.N))));
  C.Args.push_back(Value::array(ScalarKind::I32, {P.N}, std::move(Elems)));
  return C;
}

FuzzCase fut::fuzz::generate(uint64_t Seed) {
  return renderPlan(samplePlan(Seed), Seed);
}

//===----------------------------------------------------------------------===//
// Differential oracle
//===----------------------------------------------------------------------===//

Outcome fut::fuzz::runSourceDifferential(const std::string &Source,
                                         const std::vector<Value> &Args,
                                         const gpusim::DeviceParams &DP,
                                         int Devices) {
  auto Fail = [&](const std::string &What) {
    Outcome O;
    O.Ok = false;
    O.Message = What + "\nprogram:\n" + Source;
    return O;
  };

  // Reference: the unoptimised frontend output on the plain interpreter.
  NameSource RefNames;
  auto RefProg = frontend(Source, RefNames);
  if (!RefProg)
    return Fail("frontend failed: " + RefProg.getError().str());
  InterpOptions IO;
  IO.ConsumeOnUpdate = true;
  Program RefP = RefProg.take(); // Interpreter holds a reference
  Interpreter I(RefP, IO);
  auto Ref = I.run(Args);

  // Subject: the full pipeline (with the IR verifier after every pass)
  // on the simulated device.
  NameSource Names;
  CompilerOptions CO;
  CO.Devices = Devices;
  auto C = compileSource(Source, Names, CO);
  if (!C)
    return Fail("compilation failed: " + C.getError().str());
  DeviceRunOptions RO;
  RO.Device = DP;
  if (DP.UseMemPlan)
    RO.MemPlan = &C->MemPlan;
  if (Devices > 1) {
    RO.Shards = &C->Shards;
    RO.Devices = Devices;
  }
  auto R = runOnDevice(C->P, Args, RO);

  // A typed runtime error is a legitimate program outcome; the two sides
  // must agree on it exactly, like they must agree on values.
  if (!Ref && !R) {
    if (Ref.getError().isRuntime() && R.getError().isRuntime() &&
        Ref.getError().Message == R.getError().Message) {
      Outcome O;
      O.Ok = true;
      O.BothFailed = true;
      return O;
    }
    return Fail("error mismatch\n  device:    " + R.getError().str() +
                "\n  reference: " + Ref.getError().str());
  }
  if (!Ref)
    return Fail("only the reference failed: " + Ref.getError().str());
  if (!R)
    return Fail("only the device failed: " + R.getError().str());

  if (R->Outputs.size() != Ref->size())
    return Fail("result arity mismatch: device returned " +
                std::to_string(R->Outputs.size()) + ", reference " +
                std::to_string(Ref->size()));
  for (size_t J = 0; J < Ref->size(); ++J)
    if (!(R->Outputs[J] == (*Ref)[J]))
      return Fail("result " + std::to_string(J) +
                  " differs\n  device:    " + R->Outputs[J].str() +
                  "\n  reference: " + (*Ref)[J].str());

  Outcome O;
  O.Ok = true;
  return O;
}

Outcome fut::fuzz::runDifferential(const FuzzCase &C,
                                   const gpusim::DeviceParams &DP,
                                   int Devices) {
  Outcome O = runSourceDifferential(C.Source, C.Args, DP, Devices);
  if (!O.Ok)
    O.Message = "seed: " + std::to_string(C.Seed) + "\n" + O.Message;
  return O;
}

Outcome fut::fuzz::runCrossModel(const FuzzCase &C,
                                 const gpusim::DeviceParams &DP,
                                 int Devices) {
  auto Fail = [&](const std::string &What) {
    Outcome O;
    O.Ok = false;
    O.Message = "seed: " + std::to_string(C.Seed) + "\ncross-model " + What +
                "\nprogram:\n" + C.Source;
    return O;
  };

  NameSource Names;
  CompilerOptions CO;
  CO.Devices = Devices;
  auto Compiled = compileSource(C.Source, Names, CO);
  if (!Compiled)
    return Fail("compilation failed: " + Compiled.getError().str());

  auto RunUnder = [&](const char *Model) {
    DeviceRunOptions RO;
    RO.Device = DP;
    RO.Device.CostModelName = Model;
    if (DP.UseMemPlan)
      RO.MemPlan = &Compiled->MemPlan;
    if (Devices > 1) {
      RO.Shards = &Compiled->Shards;
      RO.Devices = Devices;
    }
    return runOnDevice(Compiled->P, C.Args, RO);
  };

  auto Roof = RunUnder("roofline");
  auto Pipe = RunUnder("pipeline");

  if (!Roof && !Pipe) {
    if (Roof.getError().Kind == Pipe.getError().Kind &&
        Roof.getError().Message == Pipe.getError().Message) {
      Outcome O;
      O.Ok = true;
      O.BothFailed = true;
      return O;
    }
    return Fail("error mismatch\n  roofline: " + Roof.getError().str() +
                "\n  pipeline: " + Pipe.getError().str());
  }
  if (!Roof)
    return Fail("only roofline failed: " + Roof.getError().str());
  if (!Pipe)
    return Fail("only pipeline failed: " + Pipe.getError().str());

  if (Roof->Outputs.size() != Pipe->Outputs.size())
    return Fail("result arity mismatch: roofline returned " +
                std::to_string(Roof->Outputs.size()) + ", pipeline " +
                std::to_string(Pipe->Outputs.size()));
  for (size_t J = 0; J < Roof->Outputs.size(); ++J)
    if (!(Roof->Outputs[J] == Pipe->Outputs[J]))
      return Fail("result " + std::to_string(J) +
                  " differs\n  roofline: " + Roof->Outputs[J].str() +
                  "\n  pipeline: " + Pipe->Outputs[J].str());

  // Model-independent counters: the model prices cycles, it does not
  // change the traffic.  Each pair must be exactly equal, and the
  // coalescing decomposition must account for every global transaction
  // under both models.
  const gpusim::CostReport &RC = Roof->Cost;
  const gpusim::CostReport &PC = Pipe->Cost;
  auto CounterMismatch = [&](const char *Name, int64_t A, int64_t B) {
    return Fail(std::string("counter ") + Name +
                " differs\n  roofline: " + std::to_string(A) +
                "\n  pipeline: " + std::to_string(B));
  };
  if (RC.KernelLaunches != PC.KernelLaunches)
    return CounterMismatch("KernelLaunches", RC.KernelLaunches,
                           PC.KernelLaunches);
  if (RC.GlobalTransactions != PC.GlobalTransactions)
    return CounterMismatch("GlobalTransactions", RC.GlobalTransactions,
                           PC.GlobalTransactions);
  if (RC.TransferredBytes != PC.TransferredBytes)
    return CounterMismatch("TransferredBytes", RC.TransferredBytes,
                           PC.TransferredBytes);
  if (RC.AtomicTransactions != PC.AtomicTransactions)
    return CounterMismatch("AtomicTransactions", RC.AtomicTransactions,
                           PC.AtomicTransactions);
  if (RC.AtomicConflicts != PC.AtomicConflicts)
    return CounterMismatch("AtomicConflicts", RC.AtomicConflicts,
                           PC.AtomicConflicts);
  if (RC.LocalAccesses != PC.LocalAccesses)
    return CounterMismatch("LocalAccesses", RC.LocalAccesses,
                           PC.LocalAccesses);
  for (const gpusim::CostReport *CR : {&RC, &PC})
    if (CR->CoalescedTransactions + CR->ScatteredTransactions !=
        CR->GlobalTransactions)
      return Fail(std::string("coalescing decomposition broken under ") +
                  CR->CostModelUsed + ": " +
                  std::to_string(CR->CoalescedTransactions) + " + " +
                  std::to_string(CR->ScatteredTransactions) +
                  " != " + std::to_string(CR->GlobalTransactions));

  Outcome O;
  O.Ok = true;
  return O;
}

//===----------------------------------------------------------------------===//
// Shrinking
//===----------------------------------------------------------------------===//

ShrinkResult fut::fuzz::shrink(const Plan &P, uint64_t Seed,
                               const gpusim::DeviceParams &DP, int Devices) {
  ShrinkResult SR;
  Plan Cur = P;

  // Candidates rerun under the same device configuration the failure was
  // found with, so mode-specific failures (--no-mem-plan ablation sweeps,
  // --devices sharding sweeps) keep failing while they shrink.
  auto Fails = [&](const Plan &Cand, std::string &Msg) {
    ++SR.Attempts;
    Outcome O = runDifferential(renderPlan(Cand, Seed), DP, Devices);
    if (!O.Ok)
      Msg = O.Message;
    return !O.Ok;
  };

  std::string Msg;
  if (!Fails(Cur, Msg)) {
    // Not failing (e.g. flaky environment); return the input untouched.
    SR.MinimalPlan = Cur;
    SR.Minimal = renderPlan(Cur, Seed);
    SR.Message = "case does not fail; nothing to shrink";
    return SR;
  }
  SR.Message = Msg;

  // Pass 1: drop steps greedily until no single removal keeps the failure.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (size_t I = 0; I < Cur.Steps.size(); ++I) {
      Plan Cand = Cur;
      Cand.Steps.erase(Cand.Steps.begin() + I);
      if (Fails(Cand, Msg)) {
        Cur = std::move(Cand);
        SR.Message = Msg;
        ++SR.StepsRemoved;
        Progress = true;
        break;
      }
    }
  }

  // Pass 2: shorten the array (halving, floor 4).
  while (Cur.N > 4) {
    Plan Cand = Cur;
    Cand.N = std::max<int64_t>(4, Cand.N / 2);
    Cand.Input.resize(static_cast<size_t>(Cand.N));
    if (Cand.N == Cur.N || !Fails(Cand, Msg))
      break;
    Cur = std::move(Cand);
    SR.Message = Msg;
  }

  // Pass 3: zero input elements where the failure persists.
  for (size_t I = 0; I < Cur.Input.size(); ++I) {
    if (Cur.Input[I] == 0)
      continue;
    Plan Cand = Cur;
    Cand.Input[I] = 0;
    if (Fails(Cand, Msg)) {
      Cur = std::move(Cand);
      SR.Message = Msg;
    }
  }

  SR.MinimalPlan = Cur;
  SR.Minimal = renderPlan(Cur, Seed);
  return SR;
}

//===----------------------------------------------------------------------===//
// Regression-file round trip
//===----------------------------------------------------------------------===//

std::string
fut::fuzz::toRegressionFile(const FuzzCase &C,
                            const std::vector<std::string> &CommentLines) {
  std::ostringstream OS;
  for (const std::string &L : CommentLines)
    OS << "-- " << L << "\n";
  OS << "-- args:";
  for (const Value &V : C.Args) {
    if (V.isScalar()) {
      OS << " " << V.getScalar().str();
    } else {
      OS << " [";
      const std::vector<PrimValue> &Flat = V.flat();
      for (size_t I = 0; I < Flat.size(); ++I)
        OS << (I ? "," : "") << Flat[I].str();
      OS << "]";
    }
  }
  OS << "\n" << C.Source;
  return OS.str();
}

bool fut::fuzz::parseArgsLine(const std::string &Line,
                              std::vector<Value> &Out) {
  const std::string Prefix = "-- args:";
  if (Line.rfind(Prefix, 0) != 0)
    return false;
  std::string Rest = Line.substr(Prefix.size());

  auto ParseScalar = [](const std::string &T, PrimValue &V) {
    if (T == "true") {
      V = PrimValue::makeBool(true);
      return true;
    }
    if (T == "false") {
      V = PrimValue::makeBool(false);
      return true;
    }
    try {
      size_t Used = 0;
      if (T.find('.') != std::string::npos ||
          T.find("f32") != std::string::npos) {
        V = PrimValue::makeF32(std::stof(T, &Used));
        return true;
      }
      V = PrimValue::makeI32(static_cast<int32_t>(std::stol(T, &Used)));
      return Used > 0;
    } catch (...) {
      return false;
    }
  };

  size_t I = 0;
  while (I < Rest.size()) {
    while (I < Rest.size() && (Rest[I] == ' ' || Rest[I] == '\t'))
      ++I;
    if (I >= Rest.size())
      break;
    if (Rest[I] == '[') {
      size_t End = Rest.find(']', I);
      if (End == std::string::npos)
        return false;
      std::string Inner = Rest.substr(I + 1, End - I - 1);
      std::vector<PrimValue> Elems;
      std::stringstream SS(Inner);
      std::string Tok;
      while (std::getline(SS, Tok, ',')) {
        PrimValue V;
        if (!ParseScalar(Tok, V))
          return false;
        Elems.push_back(V);
      }
      if (Elems.empty())
        return false;
      ScalarKind K = Elems[0].kind();
      int64_t N = static_cast<int64_t>(Elems.size());
      Out.push_back(Value::array(K, {N}, std::move(Elems)));
      I = End + 1;
    } else {
      size_t End = Rest.find(' ', I);
      if (End == std::string::npos)
        End = Rest.size();
      PrimValue V;
      if (!ParseScalar(Rest.substr(I, End - I), V))
        return false;
      Out.push_back(Value::scalar(V));
      I = End;
    }
  }
  return !Out.empty();
}

bool fut::fuzz::loadRegressionFile(const std::string &Contents,
                                   FuzzCase &Out) {
  std::stringstream SS(Contents);
  std::string Line;
  std::ostringstream Src;
  bool HaveArgs = false;
  while (std::getline(SS, Line)) {
    if (!HaveArgs && Line.rfind("-- args:", 0) == 0) {
      if (!parseArgsLine(Line, Out.Args))
        return false;
      HaveArgs = true;
      continue;
    }
    if (Line.rfind("--", 0) == 0)
      continue; // comment header
    Src << Line << "\n";
  }
  Out.Source = Src.str();
  return HaveArgs && !Out.Source.empty();
}
