//===- Compiler.cpp - The full pipeline of Fig 3 -------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "ad/Vjp.h"
#include "check/Check.h"
#include "check/Verify.h"
#include "ir/Printer.h"
#include "parser/Desugar.h"
#include "support/Utils.h"
#include "trace/Trace.h"
#include "uniq/Uniqueness.h"

#include <sstream>

using namespace fut;

std::string fut::CompilerOptions::cacheCanonical() const {
  // One line per knob, fixed order.  InternalChecks/VerifyIR and the test
  // hooks are deliberately absent: they gate acceptance, not output.
  std::ostringstream OS;
  OS << "uniq=" << CheckUniqueness << ";inline=" << Inline
     << ";fusion=" << EnableFusion << ";kernels=" << ExtractKernels
     << ";memplan=" << PlanMemory << ";cse=" << Simplify.EnableCSE
     << ";hoist=" << Simplify.EnableHoisting
     << ";rounds=" << Simplify.MaxRounds
     << ";chunks=" << Flatten.StreamChunks
     << ";interchange=" << Flatten.EnableInterchange
     << ";segreduce=" << Flatten.EnableSegReduce
     << ";kreduce=" << Flatten.KernelizeReduce
     << ";coalesce=" << Locality.EnableCoalescing
     << ";tile=" << Locality.EnableTiling
     << ";mintile=" << Locality.MinTileElems;
  // Devices only enters the key when it changes the artifact: N=1 sharding
  // is a pinned no-op, so the default keeps every existing cache key (and
  // the golden artifact hash) byte-identical.
  if (Devices != 1)
    OS << ";devices=" << Devices;
  // Same treatment for the AD stage: no --vjp, no key change.
  if (!VJP.empty())
    OS << ";vjp=" << VJP;
  return OS.str();
}

std::string fut::DeviceProgram::str() const { return printProgram(*this); }

uint64_t fut::CompileResult::fingerprint() const {
  std::ostringstream Meta;
  Meta << "fusion=" << Fusion.Vertical << "," << Fusion.Redomap << ","
       << Fusion.StreamFusions << "," << Fusion.Horizontal
       << ";flatten=" << Flatten.kernels() << "," << Flatten.SegReduces
       << "," << Flatten.SegScans << "," << Flatten.Interchanges << ","
       << Flatten.SequentialisedSOACs
       << ";locality=" << Locality.CoalescedInputs << ","
       << Locality.TiledInputs;
  uint64_t H = fnv1a64(P.str());
  H = fnv1a64(MemPlan.str(), H);
  H = fnv1a64(Meta.str(), H);
  // The shard plan is part of the artifact only when it can change
  // execution: at one device the fingerprint (pinned by a golden test)
  // must not move.
  if (Shards.Devices > 1)
    H = fnv1a64(Shards.str(), H);
  return H;
}

uint64_t fut::artifactCacheKey(const std::string &Source,
                               const CompilerOptions &Opts) {
  uint64_t H = fnv1a64(Source);
  // NUL separator so (source, options) pairs cannot collide by sliding
  // bytes across the boundary.
  H = fnv1a64(std::string(1, '\0'), H);
  return fnv1a64(Opts.cacheCanonical(), H);
}

ErrorOr<CompileResult> fut::compileProgram(Program P, NameSource &Names,
                                           const CompilerOptions &Opts) {
  trace::ScopedSpan CompileSpan("compile", "compiler");
  auto Recheck = [&](const std::string &Phase) -> MaybeError {
    if (!Opts.InternalChecks)
      return MaybeError::success();
    if (auto Err = checkProgram(P))
      return CompilerError("internal error after " + Phase + ": " +
                           Err.getError().Message);
    return MaybeError::success();
  };
  // Each pass boundary: optional test-only corruption hook, the cheap
  // structural recheck, then the type-rederiving verifier.
  auto AfterPass = [&](const std::string &Pass,
                       bool Flattened) -> MaybeError {
    if (Opts.PostPassHook)
      Opts.PostPassHook(P, Pass);
    if (auto Err = Recheck(Pass))
      return Err;
    if (!Opts.VerifyIR)
      return MaybeError::success();
    trace::ScopedSpan Span("verify:" + Pass, "compiler");
    VerifyOptions VO;
    VO.Flattened = Flattened;
    // The ablation pipelines deliberately leave SOACs on the host: with
    // KernelizeReduce off reductions stay sequential, and without G5 a
    // vectorised reduce falls back to the histogram-style host path.
    VO.AllowHostSOACs =
        !Opts.Flatten.KernelizeReduce || !Opts.Flatten.EnableSegReduce;
    return verifyProgram(P, Pass, VO);
  };

  if (auto Err = AfterPass("frontend", false))
    return Err;
  if (Opts.CheckUniqueness) {
    trace::ScopedSpan Span("pass:uniqueness", "compiler");
    if (auto Err = checkProgramUniqueness(P))
      return Err.getError();
  }

  CompileResult R;
  if (Opts.Inline) {
    trace::ScopedSpan Span("pass:inline", "compiler");
    inlineFunctions(P, Names);
    // The function about to be differentiated must survive DCE even when
    // main does not call it (the usual case: main *is* the primal).
    removeDeadFunctions(P, Opts.VJP.empty()
                               ? std::vector<std::string>{}
                               : std::vector<std::string>{Opts.VJP});
    if (auto Err = AfterPass("inline", false))
      return Err;
  }

  // Function-transform stage: reverse-mode AD.  Runs after inlining (the
  // primal must be call-free) and before flattening, so the generated
  // adjoint SOACs are still host-level and flow through fusion and kernel
  // extraction like hand-written code.
  if (!Opts.VJP.empty()) {
    {
      trace::ScopedSpan Span("pass:ad-vjp", "compiler");
      auto Stats = ad::vjpProgram(P, Opts.VJP, Names);
      if (!Stats)
        return Stats.getError();
    }
    if (auto Err = AfterPass("ad-vjp", false))
      return Err;
  }

  simplifyProgram(P, Names, Opts.Simplify);
  if (auto Err = AfterPass("simplify", false))
    return Err;

  if (Opts.EnableFusion) {
    R.Fusion = fuseProgram(P, Names);
    if (auto Err = AfterPass("fusion", false))
      return Err;
    simplifyProgram(P, Names, Opts.Simplify);
    if (auto Err = AfterPass("simplify-post-fusion", false))
      return Err;
  }

  if (Opts.ExtractKernels) {
    R.Flatten = extractKernels(P, Names, Opts.Flatten);
    if (auto Err = AfterPass("kernel-extraction", true))
      return Err;
    simplifyProgram(P, Names, Opts.Simplify);
    if (auto Err = AfterPass("simplify-post-extraction", true))
      return Err;
    R.Locality = optimiseLocality(P, Opts.Locality);
    if (auto Err = AfterPass("locality", true))
      return Err;

    if (Opts.PlanMemory) {
      {
        trace::ScopedSpan Span("pass:memplan", "compiler");
        R.MemPlan = mem::planMemory(P);
      }
      if (Opts.PostPlanHook)
        Opts.PostPlanHook(R.MemPlan);
      if (Opts.VerifyIR) {
        trace::ScopedSpan Span("verify:memplan", "compiler");
        if (auto Err = verifyMemoryPlan(P, R.MemPlan, "memplan"))
          return Err;
      }
    }

    {
      {
        trace::ScopedSpan Span("pass:shardplan", "compiler");
        shard::ShardOptions SO;
        SO.Devices = std::max(1, Opts.Devices);
        R.Shards = shard::planShards(P, SO);
      }
      if (Opts.PostShardPlanHook)
        Opts.PostShardPlanHook(R.Shards);
      if (Opts.VerifyIR) {
        trace::ScopedSpan Span("verify:shardplan", "compiler");
        if (auto Err = verifyShardPlan(P, R.Shards, "shardplan"))
          return Err;
      }
    }
  }

  R.P = std::move(P);
  return R;
}

ErrorOr<CompileResult> fut::compileSource(const std::string &Source,
                                          NameSource &Names,
                                          const CompilerOptions &Opts) {
  ErrorOr<Program> P = [&] {
    trace::ScopedSpan Span("pass:frontend", "compiler");
    return frontend(Source, Names);
  }();
  if (!P)
    return P.getError();
  return compileProgram(P.take(), Names, Opts);
}

ErrorOr<gpusim::RunResult> fut::runOnDevice(const Program &P,
                                            const std::vector<Value> &Args,
                                            const DeviceRunOptions &Opts,
                                            const std::string &Fun) {
  gpusim::Device D(Opts.Device, Opts.Resilience);
  if (Opts.MemPlan)
    D.setMemoryPlan(Opts.MemPlan);
  if (Opts.Shards && Opts.Devices > 1)
    D.setShardPlan(Opts.Shards, Opts.Devices);
  return D.run(P, Fun, Args);
}
