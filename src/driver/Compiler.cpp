//===- Compiler.cpp - The full pipeline of Fig 3 -------------------------------===//
//
// Part of futharkcc, a C++ reproduction of the PLDI'17 Futhark compiler.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include "check/Check.h"
#include "parser/Desugar.h"
#include "trace/Trace.h"
#include "uniq/Uniqueness.h"

using namespace fut;

ErrorOr<CompileResult> fut::compileProgram(Program P, NameSource &Names,
                                           const CompilerOptions &Opts) {
  trace::ScopedSpan CompileSpan("compile", "compiler");
  auto Recheck = [&](const char *Phase) -> MaybeError {
    if (!Opts.InternalChecks)
      return MaybeError::success();
    if (auto Err = checkProgram(P))
      return CompilerError(std::string("internal error after ") + Phase +
                           ": " + Err.getError().Message);
    return MaybeError::success();
  };

  if (auto Err = Recheck("frontend"))
    return Err.getError();
  if (Opts.CheckUniqueness) {
    trace::ScopedSpan Span("pass:uniqueness", "compiler");
    if (auto Err = checkProgramUniqueness(P))
      return Err.getError();
  }

  CompileResult R;
  if (Opts.Inline) {
    trace::ScopedSpan Span("pass:inline", "compiler");
    inlineFunctions(P, Names);
    removeDeadFunctions(P);
  }
  simplifyProgram(P, Names, Opts.Simplify);
  if (auto Err = Recheck("simplification"))
    return Err.getError();

  if (Opts.EnableFusion) {
    R.Fusion = fuseProgram(P, Names);
    simplifyProgram(P, Names, Opts.Simplify);
    if (auto Err = Recheck("fusion"))
      return Err.getError();
  }

  if (Opts.ExtractKernels) {
    R.Flatten = extractKernels(P, Names, Opts.Flatten);
    simplifyProgram(P, Names, Opts.Simplify);
    R.Locality = optimiseLocality(P, Opts.Locality);
    if (auto Err = Recheck("kernel extraction"))
      return Err.getError();
  }

  R.P = std::move(P);
  return R;
}

ErrorOr<CompileResult> fut::compileSource(const std::string &Source,
                                          NameSource &Names,
                                          const CompilerOptions &Opts) {
  ErrorOr<Program> P = [&] {
    trace::ScopedSpan Span("pass:frontend", "compiler");
    return frontend(Source, Names);
  }();
  if (!P)
    return P.getError();
  return compileProgram(P.take(), Names, Opts);
}

ErrorOr<gpusim::RunResult> fut::runOnDevice(const Program &P,
                                            const std::vector<Value> &Args,
                                            const DeviceRunOptions &Opts,
                                            const std::string &Fun) {
  gpusim::Device D(Opts.Device, Opts.Resilience);
  return D.run(P, Fun, Args);
}
